// Quickstart: build a four-peer PDMS, let it discover mapping cycles and
// parallel paths with probes, run decentralized probabilistic message
// passing, and route a query that avoids the faulty mapping.
//
//   $ ./quickstart
//
// This is the paper's running example (Figures 1/4, Section 4.5): peers
// p1..p4 hold art databases under different schemas; the mapping from p2
// to p4 erroneously maps "creator" onto another attribute.

#include <cstdio>

#include "core/pdms_engine.h"
#include "graph/topology.h"
#include "mapping/mapping_generator.h"

using namespace pdms;  // NOLINT: example brevity

int main() {
  // 1. Topology: p1 -> p2 -> p3 -> p4 -> p1 plus the shortcut p2 -> p4.
  topology::ExampleEdges edges;
  const Digraph graph = topology::ExampleGraph(&edges);

  // 2. Schemas: eleven attributes each (attribute 0 plays "creator"), so
  //    every peer estimates the error-compensation probability ∆ = 1/10.
  std::vector<Schema> schemas;
  for (NodeId p = 0; p < graph.node_count(); ++p) {
    Schema schema("peer" + std::to_string(p + 1));
    for (int a = 0; a < 11; ++a) {
      if (!schema.AddAttribute("attr" + std::to_string(a)).ok()) return 1;
    }
    schemas.push_back(std::move(schema));
  }

  // 3. Mappings: identities on concepts, except m24 which garbles attr 0.
  Rng rng(42);
  std::vector<SchemaMapping> mappings(graph.edge_capacity());
  for (EdgeId e : graph.LiveEdges()) {
    const std::vector<AttributeId> wrong_on =
        e == edges.m24 ? std::vector<AttributeId>{0} : std::vector<AttributeId>{};
    mappings[e] = MakeConceptMapping("m" + std::to_string(e), 11, wrong_on, &rng);
  }

  // 4. Assemble the engine. No prior knowledge about any mapping.
  EngineOptions options;
  options.probe_ttl = 5;  // long enough to close the 4-mapping cycle
  Result<std::unique_ptr<PdmsEngine>> engine =
      PdmsEngine::Create(graph, std::move(schemas), std::move(mappings), options);
  if (!engine.ok()) {
    std::printf("engine construction failed: %s\n",
                engine.status().ToString().c_str());
    return 1;
  }
  PdmsEngine& pdms = **engine;

  // 5. Discover closures with TTL probes (cycles f1, f2 + parallel f3).
  const size_t factors = pdms.DiscoverClosures();
  std::printf("discovered %zu feedback factors\n", factors);

  // 6. Run embedded message passing to convergence.
  const ConvergenceReport report = pdms.RunToConvergence(100);
  std::printf("inference: %zu rounds, converged=%s\n\n", report.rounds,
              report.converged ? "yes" : "no");

  // 7. Inspect per-attribute mapping quality for attribute 0.
  std::printf("posterior P(correct) for attribute 0:\n");
  for (EdgeId e : pdms.graph().LiveEdges()) {
    std::printf("  %s -> %s : %.3f%s\n",
                pdms.peer(pdms.graph().edge(e).src).schema().name().c_str(),
                pdms.peer(pdms.graph().edge(e).dst).schema().name().c_str(),
                pdms.Posterior(e, 0),
                e == edges.m24 ? "   <-- the faulty mapping" : "");
  }

  // 8. Populate tiny databases and route a query with θ = 0.5.
  for (PeerId p = 0; p < pdms.peer_count(); ++p) {
    pdms.peer(p).store().Insert(/*entity=*/1,
                                {{0, "Henry Peach Robinson"}, {1, "river"}});
  }
  Query query("q1");
  query.AddProjection(0);       // SELECT attr0 (creator)
  query.AddSelection(1, "river");  // WHERE attr1 LIKE "%river%"
  const QueryReport answer = pdms.IssueQuery(/*origin=*/1, query, /*ttl=*/3);
  std::printf("\nquery from peer2: reached %zu peers, %zu rows, %zu blocked "
              "mapping(s)\n",
              answer.reached.size(), answer.rows.size(),
              answer.blocked_edges.size());
  for (const auto& [peer, row] : answer.rows) {
    std::printf("  peer%u -> %s\n", peer + 1, row.values[0].c_str());
  }
  return 0;
}
