// Quickstart: build a four-peer PDMS with the public builder API, let it
// discover mapping cycles and parallel paths with probes, run
// decentralized probabilistic message passing, and route a query that
// avoids the faulty mapping.
//
//   $ ./quickstart
//
// This is the paper's running example (Figures 1/4, Section 4.5): peers
// p1..p4 hold art databases under different schemas; the mapping from p2
// to p4 erroneously maps "creator" onto another attribute.
//
// The snippet in docs/API.md mirrors this file — keep them in sync.

#include <cstdio>

#include "pdms/pdms.h"
#include "util/rng.h"
#include "util/string_util.h"

using namespace pdms;  // NOLINT: example brevity

int main() {
  // 1. Peers: four schemas of eleven attributes each (attribute 0 plays
  //    "creator"), so every peer estimates the error-compensation
  //    probability ∆ = 1/10. AddPeer order assigns PeerIds 0..3.
  PdmsBuilder builder;
  for (int p = 0; p < 4; ++p) {
    Schema schema("peer" + std::to_string(p + 1));
    for (int a = 0; a < 11; ++a) {
      if (!schema.AddAttribute("attr" + std::to_string(a)).ok()) return 1;
    }
    builder.AddPeer(std::move(schema));
  }

  // 2. Mappings: the cycle p1 -> p2 -> p3 -> p4 -> p1 plus the shortcut
  //    p2 -> p4. All identities on concepts, except m24 (EdgeId 4), which
  //    garbles attr 0. AddMapping order assigns EdgeIds 0..4.
  Rng rng(42);
  const EdgeId kM24 = 4;
  const std::vector<std::pair<PeerId, PeerId>> links = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}};
  for (EdgeId e = 0; e < links.size(); ++e) {
    const std::vector<AttributeId> wrong_on =
        e == kM24 ? std::vector<AttributeId>{0} : std::vector<AttributeId>{};
    builder.AddMapping(
        links[e].first, links[e].second,
        MakeConceptMapping(StrFormat("m%u", e), 11, wrong_on, &rng));
  }

  // 3. Options + transport. No prior knowledge about any mapping. The
  //    instant transport is lossless and zero-delay — ideal for
  //    convergence-only workloads; swap in WithSimTransport({...}) for
  //    delay/loss experiments.
  EngineOptions options;
  options.probe_ttl = 5;  // long enough to close the 4-mapping cycle
  Result<Pdms> built = builder.WithOptions(options)
                           .WithInstantTransport()
                           .Build();
  if (!built.ok()) {
    std::printf("PDMS construction failed: %s\n",
                built.status().ToString().c_str());
    return 1;
  }
  Pdms pdms = std::move(built).value();
  Session& session = pdms.session();

  // 4. Discover closures with TTL probes (cycles f1, f2 + parallel f3).
  const size_t factors = session.Discover();
  std::printf("discovered %zu feedback factors\n", factors);

  // 5. Run embedded message passing to convergence.
  const ConvergenceReport report = session.Converge(/*max_rounds=*/100);
  std::printf("inference: %zu rounds, converged=%s\n\n", report.rounds,
              report.converged ? "yes" : "no");

  // 6. Inspect per-attribute mapping quality for attribute 0.
  std::printf("posterior P(correct) for attribute 0:\n");
  for (EdgeId e : pdms.graph().LiveEdges()) {
    std::printf("  %s -> %s : %.3f%s\n",
                pdms.peer(pdms.graph().edge(e).src).schema().name().c_str(),
                pdms.peer(pdms.graph().edge(e).dst).schema().name().c_str(),
                pdms.Posterior(e, 0),
                e == kM24 ? "   <-- the faulty mapping" : "");
  }

  // 7. Populate tiny databases and route a query with θ = 0.5.
  for (PeerId p = 0; p < pdms.peer_count(); ++p) {
    pdms.peer(p).store().Insert(/*entity=*/1,
                                {{0, "Henry Peach Robinson"}, {1, "river"}});
  }
  Query query("q1");
  query.AddProjection(0);          // SELECT attr0 (creator)
  query.AddSelection(1, "river");  // WHERE attr1 LIKE "%river%"
  const QueryReport answer = session.Query(/*origin=*/1, query, /*ttl=*/3);
  std::printf("\nquery from peer2: reached %zu peers, %zu rows, %zu blocked "
              "mapping(s)\n",
              answer.reached.size(), answer.rows.size(),
              answer.blocked_edges.size());
  for (const auto& [peer, row] : answer.rows) {
    std::printf("  peer%u -> %s\n", peer + 1, row.values[0].c_str());
  }

  // 8. Sanity for the smoke test: the faulty mapping must score below θ
  //    and must have been blocked during routing.
  if (pdms.Posterior(kM24, 0) >= 0.5 || answer.blocked_edges.empty()) {
    std::printf("unexpected: faulty mapping not identified\n");
    return 1;
  }
  return 0;
}
