// Aligns six heterogeneous bibliographic ontologies automatically, builds
// a PDMS from the (partly wrong) correspondences, and lets probabilistic
// message passing pick out the erroneous attribute mappings — the paper's
// Section 5.2 experiment as an interactive walkthrough.

#include <algorithm>
#include <cstdio>

#include "bench/bibliographic_pdms.h"
#include "util/table.h"

using namespace pdms;  // NOLINT: example brevity

int main() {
  std::printf("=== Bibliographic ontology alignment (Section 5.2) ===\n\n");

  // Show what the aligner does on one cross-language pair first.
  const auto family = MakeBibliographicOntologies();
  GroundTruth truth(&family);
  AlignerOptions aligner_options;
  aligner_options.technique = AlignmentTechnique::kCombined;
  Aligner aligner(aligner_options);
  std::printf("sample correspondences, %s -> %s (combined technique):\n",
              family[0].schema.name().c_str(), family[1].schema.name().c_str());
  TextTable sample;
  sample.SetHeader({"source", "target", "score", "ground truth"});
  size_t shown = 0;
  for (const Correspondence& c :
       aligner.Align(family[0].schema, family[1].schema)) {
    const bool ok = truth.SameConcept(0, c.source, 1, c.target);
    if (shown < 8 || !ok) {
      sample.AddRow({family[0].schema.attribute(c.source).name,
                     family[1].schema.attribute(c.target).name,
                     StrFormat("%.2f", c.score), ok ? "correct" : "WRONG"});
      ++shown;
    }
  }
  std::printf("%s\n", sample.ToString().c_str());

  // Full PDMS over all ordered pairs.
  EngineOptions options;
  options.delta_override = 0.1;
  options.probe_ttl = 4;
  options.closure_limits.max_cycle_length = 4;
  options.closure_limits.max_path_length = 3;
  options.damping = 0.5;
  bench::BibliographicPdms workload = bench::MakeBibliographicPdms(options);
  std::printf("network: %zu ontologies, %zu schema mappings, %zu attribute "
              "correspondences (%zu wrong)\n",
              workload.family.size(), workload.pdms.graph().edge_count(),
              workload.entries.size(), workload.ErroneousCount());

  const size_t factors = workload.pdms.session().Discover();
  workload.pdms.session().Converge(100);
  std::printf("discovered %zu feedback factors; inference done\n\n", factors);

  // Rank the most suspicious correspondences.
  std::vector<std::pair<double, size_t>> ranked;
  for (size_t i = 0; i < workload.entries.size(); ++i) {
    ranked.emplace_back(
        workload.pdms.Posterior(workload.entries[i].edge,
                                workload.entries[i].attribute),
        i);
  }
  std::sort(ranked.begin(), ranked.end());

  std::printf("15 most suspicious attribute mappings:\n");
  TextTable table;
  table.SetHeader({"posterior", "mapping", "attribute", "ground truth"});
  for (size_t rank = 0; rank < 15 && rank < ranked.size(); ++rank) {
    const auto [posterior, index] = ranked[rank];
    const MappingVarKey& var = workload.entries[index];
    const Edge& edge = workload.pdms.graph().edge(var.edge);
    table.AddRow(
        {StrFormat("%.3f", posterior),
         workload.family[edge.src].schema.name() + "->" +
             workload.family[edge.dst].schema.name(),
         workload.family[edge.src].schema.attribute(var.attribute).name,
         workload.erroneous[index] ? "WRONG (caught)" : "correct (false alarm)"});
  }
  std::printf("%s\n", table.ToString().c_str());

  size_t caught = 0;
  for (size_t rank = 0; rank < 30 && rank < ranked.size(); ++rank) {
    if (workload.erroneous[ranked[rank].second]) ++caught;
  }
  std::printf("precision@30: %.2f (base error rate %.2f)\n",
              static_cast<double>(caught) / 30.0,
              static_cast<double>(workload.ErroneousCount()) /
                  static_cast<double>(workload.entries.size()));
  return 0;
}
