// Network evolution and prior learning (Section 4.4): as the mapping
// network changes — closures appear, mappings are deleted — peers fold the
// posteriors they accumulated into their prior beliefs with the paper's
// EM-style update, so knowledge survives topology churn.

#include <cstdio>

#include "graph/topology.h"
#include "pdms/pdms.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace pdms;  // NOLINT: example brevity

namespace {
constexpr size_t kAttrs = 11;

Pdms BuildIntro(topology::ExampleEdges* edges) {
  Rng rng(17);
  const Digraph graph = topology::ExampleGraph(edges);
  EngineOptions options;
  options.probe_ttl = 5;
  PdmsBuilder builder;
  builder.WithOptions(options);
  for (NodeId p = 0; p < graph.node_count(); ++p) {
    Schema schema(StrFormat("p%u", p + 1));
    for (size_t a = 0; a < kAttrs; ++a) {
      if (!schema.AddAttribute(StrFormat("a%zu", a)).ok()) std::abort();
    }
    builder.AddPeer(std::move(schema));
  }
  for (EdgeId e : graph.LiveEdges()) {
    const std::vector<AttributeId> wrong =
        e == edges->m24 ? std::vector<AttributeId>{0}
                        : std::vector<AttributeId>{};
    builder.AddMapping(graph.edge(e).src, graph.edge(e).dst,
                       MakeConceptMapping(StrFormat("m%u", e), kAttrs, wrong,
                                          &rng));
  }
  Result<Pdms> built = builder.Build();
  if (!built.ok()) std::abort();
  return std::move(built).value();
}
}  // namespace

int main() {
  std::printf("=== Prior learning under network evolution ===\n\n");
  topology::ExampleEdges edges;
  Pdms pdms = BuildIntro(&edges);
  Session& session = pdms.session();

  TextTable table;
  table.SetHeader({"epoch", "event", "prior(m23,a0)", "prior(m24,a0)",
                   "post(m23,a0)", "post(m24,a0)"});

  auto snapshot = [&](const char* event) {
    table.AddRow({std::to_string(table.row_count()), event,
                  StrFormat("%.3f", pdms.Prior(edges.m23, 0)),
                  StrFormat("%.3f", pdms.Prior(edges.m24, 0)),
                  StrFormat("%.3f", pdms.Posterior(edges.m23, 0)),
                  StrFormat("%.3f", pdms.Posterior(edges.m24, 0))});
  };

  snapshot("initial (max-entropy priors)");

  // Epoch 1: discover closures, infer, learn priors.
  session.Discover();
  session.Converge(100);
  snapshot("after first inference");
  pdms.UpdatePriors();
  snapshot("after EM prior update #1");

  // Epoch 2: the network keeps running; evidence accumulates again.
  session.Converge(100);
  pdms.UpdatePriors();
  snapshot("after EM prior update #2");

  // Epoch 3: churn — the faulty mapping is deleted network-wide. The
  // replicas referencing it vanish; the learned priors remain.
  if (!pdms.RemoveMapping(edges.m24).ok()) std::abort();
  session.Discover();
  session.Converge(100);
  snapshot("after deleting m24 + re-discovery");

  // Epoch 4: learned priors now feed the next inference generation.
  pdms.UpdatePriors();
  snapshot("after EM prior update #3");

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Observations: (1) the faulty mapping's prior sinks epoch over epoch\n"
      "while correct mappings drift upward — Section 4.5's 0.55 / 0.4 after\n"
      "one update; (2) deleting m24 removes its evidence but the learned\n"
      "priors persist, so the network does not forget.\n");
  return 0;
}
