// Network evolution and prior learning (Section 4.4): as the mapping
// network changes — closures appear, mappings are deleted — peers fold the
// posteriors they accumulated into their prior beliefs with the paper's
// EM-style update, so knowledge survives topology churn.

#include <cstdio>

#include "core/pdms_engine.h"
#include "graph/topology.h"
#include "mapping/mapping_generator.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace pdms;  // NOLINT: example brevity

namespace {
constexpr size_t kAttrs = 11;

std::unique_ptr<PdmsEngine> BuildIntro(topology::ExampleEdges* edges) {
  Rng rng(17);
  const Digraph graph = topology::ExampleGraph(edges);
  std::vector<Schema> schemas;
  for (NodeId p = 0; p < graph.node_count(); ++p) {
    Schema schema("p" + std::to_string(p + 1));
    for (size_t a = 0; a < kAttrs; ++a) {
      if (!schema.AddAttribute("a" + std::to_string(a)).ok()) std::abort();
    }
    schemas.push_back(std::move(schema));
  }
  std::vector<SchemaMapping> mappings(graph.edge_capacity());
  for (EdgeId e : graph.LiveEdges()) {
    const std::vector<AttributeId> wrong =
        e == edges->m24 ? std::vector<AttributeId>{0}
                        : std::vector<AttributeId>{};
    mappings[e] = MakeConceptMapping("m" + std::to_string(e), kAttrs, wrong, &rng);
  }
  EngineOptions options;
  options.probe_ttl = 5;
  Result<std::unique_ptr<PdmsEngine>> engine =
      PdmsEngine::Create(graph, std::move(schemas), std::move(mappings), options);
  if (!engine.ok()) std::abort();
  return std::move(engine).value();
}
}  // namespace

int main() {
  std::printf("=== Prior learning under network evolution ===\n\n");
  topology::ExampleEdges edges;
  auto engine = BuildIntro(&edges);

  TextTable table;
  table.SetHeader({"epoch", "event", "prior(m23,a0)", "prior(m24,a0)",
                   "post(m23,a0)", "post(m24,a0)"});

  auto snapshot = [&](const char* event) {
    table.AddRow({std::to_string(table.row_count()), event,
                  StrFormat("%.3f", engine->Prior(edges.m23, 0)),
                  StrFormat("%.3f", engine->Prior(edges.m24, 0)),
                  StrFormat("%.3f", engine->Posterior(edges.m23, 0)),
                  StrFormat("%.3f", engine->Posterior(edges.m24, 0))});
  };

  snapshot("initial (max-entropy priors)");

  // Epoch 1: discover closures, infer, learn priors.
  engine->DiscoverClosures();
  engine->RunToConvergence(100);
  snapshot("after first inference");
  engine->UpdatePriors();
  snapshot("after EM prior update #1");

  // Epoch 2: the network keeps running; evidence accumulates again.
  engine->RunToConvergence(100);
  engine->UpdatePriors();
  snapshot("after EM prior update #2");

  // Epoch 3: churn — the faulty mapping is deleted network-wide. The
  // replicas referencing it vanish; the learned priors remain.
  if (!engine->RemoveMapping(edges.m24).ok()) std::abort();
  engine->DiscoverClosures();
  engine->RunToConvergence(100);
  snapshot("after deleting m24 + re-discovery");

  // Epoch 4: learned priors now feed the next inference generation.
  engine->UpdatePriors();
  snapshot("after EM prior update #3");

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Observations: (1) the faulty mapping's prior sinks epoch over epoch\n"
      "while correct mappings drift upward — Section 4.5's 0.55 / 0.4 after\n"
      "one update; (2) deleting m24 removes its evidence but the learned\n"
      "priors persist, so the network does not forget.\n");
  return 0;
}
