// Large-scale simulation: a scale-free semantic overlay network (the
// topology class the paper argues is typical, Section 3.2.1) with
// synthetic schemas and noisy mappings. Demonstrates closure discovery,
// embedded inference, classification quality against ground truth, and
// the periodic-vs-lazy schedule trade-off.

#include <cstdio>

#include "graph/topology.h"
#include "pdms/pdms.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace pdms;  // NOLINT: example brevity

namespace {

Pdms BuildPdms(const SyntheticPdms& synthetic, ScheduleKind schedule) {
  EngineOptions options;
  options.probe_ttl = 4;
  options.closure_limits.max_cycle_length = 4;
  options.closure_limits.max_path_length = 3;
  options.damping = 0.25;
  options.tolerance = 1e-4;
  options.schedule = schedule;
  options.theta = 0.45;
  Result<Pdms> built =
      PdmsBuilder::FromSynthetic(synthetic).WithOptions(options).Build();
  if (!built.ok()) std::abort();
  return std::move(built).value();
}

/// Mean posterior of truly-correct vs truly-erroneous mapping entries plus
/// accuracy at theta = 0.5.
void Score(const Pdms& pdms, const SyntheticPdms& synthetic) {
  OnlineStats correct_stats;
  OnlineStats wrong_stats;
  size_t right_calls = 0;
  size_t total = 0;
  for (EdgeId e : synthetic.graph.LiveEdges()) {
    for (AttributeId a = 0; a < synthetic.ground_truth[e].size(); ++a) {
      if (!synthetic.mappings[e].Apply(a).has_value()) continue;
      const double p = pdms.Posterior(e, a);
      const bool truly_correct = synthetic.ground_truth[e][a];
      (truly_correct ? correct_stats : wrong_stats).Add(p);
      if ((p > 0.5) == truly_correct) ++right_calls;
      ++total;
    }
  }
  std::printf("  mean posterior | truly correct : %.3f\n", correct_stats.mean());
  std::printf("  mean posterior | truly wrong   : %.3f\n", wrong_stats.mean());
  std::printf("  classification accuracy @0.5   : %.3f (%zu entries)\n",
              static_cast<double>(right_calls) / static_cast<double>(total),
              total);
}

}  // namespace

int main() {
  Rng rng(2026);
  const Digraph graph = topology::BarabasiAlbert(40, 2, &rng);
  std::printf("=== Scale-free PDMS simulation ===\n\n");
  std::printf("topology: %zu peers, %zu mappings, clustering coefficient "
              "%.3f,\n          average path length %.2f\n\n",
              graph.node_count(), graph.edge_count(),
              ClusteringCoefficient(graph), AveragePathLength(graph));

  MappingNetworkOptions network_options;
  network_options.attributes_per_schema = 10;
  network_options.error_rate = 0.2;
  network_options.null_rate = 0.05;
  const SyntheticPdms synthetic =
      BuildSyntheticPdms(graph, network_options, &rng);
  std::printf("workload: 10-attribute schemas, 20%% mapping errors, 5%% ⊥ "
              "entries\n          (%zu erroneous entries in total)\n\n",
              synthetic.CountErroneousEntries());

  // --- Periodic schedule -------------------------------------------------
  std::printf("[periodic schedule]\n");
  Pdms periodic = BuildPdms(synthetic, ScheduleKind::kPeriodic);
  const size_t factors = periodic.session().Discover();
  const ConvergenceReport report = periodic.session().Converge(150);
  std::printf("  feedback factors: %zu, rounds: %zu (converged=%s)\n", factors,
              report.rounds, report.converged ? "yes" : "no");
  const auto& stats = periodic.transport().stats();
  std::printf("  belief messages sent: %llu\n",
              static_cast<unsigned long long>(
                  stats.sent[static_cast<size_t>(MessageKind::kBelief)]));
  Score(periodic, synthetic);

  // --- Lazy schedule -------------------------------------------------------
  std::printf("\n[lazy schedule, beliefs piggyback on query traffic]\n");
  Pdms lazy = BuildPdms(synthetic, ScheduleKind::kLazy);
  Session& lazy_session = lazy.session();
  lazy_session.Discover();
  Rng query_rng(7);
  for (int i = 0; i < 150; ++i) {
    Query query(StrFormat("q%d", i));
    query.AddProjection(static_cast<AttributeId>(query_rng.Index(10)));
    lazy_session.Query(
        static_cast<PeerId>(query_rng.Index(graph.node_count())), query,
        /*ttl=*/4);
    lazy_session.Step();
  }
  const auto& lazy_stats = lazy.transport().stats();
  std::printf("  belief messages sent: %llu (all inference rode on %llu "
              "query messages)\n",
              static_cast<unsigned long long>(
                  lazy_stats.sent[static_cast<size_t>(MessageKind::kBelief)]),
              static_cast<unsigned long long>(
                  lazy_stats.sent[static_cast<size_t>(MessageKind::kQuery)]));
  Score(lazy, synthetic);
  return 0;
}
