// The paper's introductory scenario in full (Section 1.2): four art
// databases under heterogeneous schemas — a Photoshop-like store, a
// WinFS-like store, and two custom collections — exchanging XQuery-style
// selection/projection queries through pairwise mappings, one of which
// erroneously maps Creator onto CreatedOn.
//
// The example contrasts a standard PDMS (forwards blindly, returns false
// positives) with the probabilistic message-passing PDMS (learns that
// m24 is faulty and routes around it).

#include <cstdio>

#include "core/pdms_engine.h"
#include "graph/topology.h"
#include "util/table.h"

using namespace pdms;  // NOLINT: example brevity

namespace {

// Attribute layout shared by all four art schemas (concept-aligned):
//   0 Creator, 1 Subject, 2 CreatedOn, 3 Title, 4 Medium, 5 Location,
//   6 Guid, 7 Keywords, 8 Rights, 9 Collection, 10 Curator
constexpr int kAttrCount = 11;

Schema MakeArtSchema(const std::string& name,
                     const std::vector<std::string>& attribute_names) {
  Schema schema(name);
  for (const std::string& attr : attribute_names) {
    if (!schema.AddAttribute(attr).ok()) std::abort();
  }
  return schema;
}

std::vector<Schema> MakeSchemas() {
  std::vector<Schema> schemas;
  schemas.push_back(MakeArtSchema(
      "gallery_p1", {"Creator", "Subject", "CreatedOn", "Title", "Medium",
                     "Location", "GUID", "Keywords", "Rights", "Collection",
                     "Curator"}));
  schemas.push_back(MakeArtSchema(
      "photoshop_p2", {"Creator", "Subject", "CreateDate", "Name", "Medium",
                       "Place", "GUID", "Tags", "Copyright", "Album",
                       "Owner"}));
  schemas.push_back(MakeArtSchema(
      "winfs_p3", {"Author/DisplayName", "Keyword", "Date", "Title", "Kind",
                   "Location", "GUID", "Labels", "Rights", "Folder",
                   "Maintainer"}));
  schemas.push_back(MakeArtSchema(
      "artdb_p4", {"art/creator", "art/subject", "art/creatDate", "art/title",
                   "art/medium", "art/location", "art/id", "art/keywords",
                   "art/rights", "art/collection", "art/curator"}));
  return schemas;
}

/// Identity-on-concepts mapping; optionally swaps attribute 0 (Creator)
/// with attribute 2 (CreatedOn) — the paper's faulty m24.
SchemaMapping MakeMapping(const std::string& name, bool creator_to_created) {
  SchemaMapping mapping(name, kAttrCount);
  for (AttributeId a = 0; a < kAttrCount; ++a) {
    if (!mapping.Set(a, a).ok()) std::abort();
  }
  if (creator_to_created) {
    // "the mapping erroneously maps Creator in p2 onto CreatedOn in p4"
    if (!mapping.Set(0, 2).ok()) std::abort();
  }
  return mapping;
}

void LoadCollections(PdmsEngine* engine) {
  struct Piece {
    uint64_t entity;
    const char* creator;
    const char* subject;
    const char* created;
    const char* title;
  };
  const std::vector<Piece> pieces = {
      {1, "Henry Peach Robinson", "Tunbridge Wells river", "1852",
       "On the Way"},
      {2, "Claude Monet", "garden pond lilies", "1899", "Water Lilies"},
      {3, "John Constable", "river Stour dedham", "1816", "Flatford Mill"},
      {4, "Gustave Courbet", "forest stream rocks", "1865", "The Stream"},
  };
  for (PeerId p = 0; p < engine->peer_count(); ++p) {
    for (const Piece& piece : pieces) {
      engine->peer(p).store().Insert(
          piece.entity, {{0, piece.creator},
                         {1, piece.subject},
                         {2, piece.created},
                         {3, piece.title}});
    }
  }
}

QueryReport AskForRiverArtists(PdmsEngine* engine) {
  // q1 (Section 1.2): names of all artists with a piece related to a river.
  const Schema& p2 = engine->peer(1).schema();
  Result<Query> query =
      ParseQuery("SELECT Creator WHERE Subject LIKE \"river\"", p2, "q1");
  if (!query.ok()) std::abort();
  return engine->IssueQuery(/*origin=*/1, *query, /*ttl=*/3);
}

void PrintReport(const char* label, const QueryReport& report) {
  std::printf("%s\n", label);
  std::printf("  peers reached: %zu, mappings blocked: %zu\n",
              report.reached.size(), report.blocked_edges.size());
  TextTable table;
  table.SetHeader({"peer", "returned value", "verdict"});
  size_t false_rows = 0;
  for (const auto& [peer, row] : report.rows) {
    // Entities 1 and 3 are the river pieces; anything else, or a non-name
    // value (a date from CreatedOn), is a false positive.
    const bool name_ok = row.values[0].find_first_not_of("0123456789") !=
                         std::string::npos;
    const bool entity_ok = row.entity == 1 || row.entity == 3;
    const bool ok = name_ok && entity_ok;
    if (!ok) ++false_rows;
    table.AddRow({"p" + std::to_string(peer + 1), row.values[0],
                  ok ? "ok" : "FALSE POSITIVE"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("  false positives: %zu\n\n", false_rows);
}

}  // namespace

int main() {
  topology::ExampleEdges edges;
  const Digraph graph = topology::ExampleGraph(&edges);

  auto build = [&](bool with_message_passing) {
    std::vector<SchemaMapping> mappings(graph.edge_capacity());
    for (EdgeId e : graph.LiveEdges()) {
      mappings[e] = MakeMapping("m" + std::to_string(e), e == edges.m24);
    }
    EngineOptions options;
    options.probe_ttl = 5;
    Result<std::unique_ptr<PdmsEngine>> engine =
        PdmsEngine::Create(graph, MakeSchemas(), std::move(mappings), options);
    if (!engine.ok()) std::abort();
    LoadCollections(engine->get());
    if (with_message_passing) {
      (*engine)->DiscoverClosures();
      (*engine)->RunToConvergence(100);
    }
    return std::move(engine).value();
  };

  std::printf("=== Art network (Section 1.2) ===\n\n");
  std::printf("query q1 at photoshop_p2: SELECT Creator WHERE Subject LIKE "
              "\"river\"\n\n");

  auto standard = build(/*with_message_passing=*/false);
  PrintReport("standard PDMS (mapping quality unknown):",
              AskForRiverArtists(standard.get()));

  auto probabilistic = build(/*with_message_passing=*/true);
  std::printf("message-passing PDMS posteriors for Creator:\n");
  for (EdgeId e : probabilistic->graph().LiveEdges()) {
    std::printf("  m%u (%s -> %s): %.3f\n", e,
                probabilistic->peer(probabilistic->graph().edge(e).src)
                    .schema().name().c_str(),
                probabilistic->peer(probabilistic->graph().edge(e).dst)
                    .schema().name().c_str(),
                probabilistic->Posterior(e, 0));
  }
  std::printf("\n");
  PrintReport("message-passing PDMS (theta = 0.5):",
              AskForRiverArtists(probabilistic.get()));
  return 0;
}
