// The paper's introductory scenario in full (Section 1.2): four art
// databases under heterogeneous schemas — a Photoshop-like store, a
// WinFS-like store, and two custom collections — exchanging XQuery-style
// selection/projection queries through pairwise mappings, one of which
// erroneously maps Creator onto CreatedOn.
//
// The example contrasts a standard PDMS (forwards blindly, returns false
// positives) with the probabilistic message-passing PDMS (learns that
// m24 is faulty and routes around it).

#include <cstdio>

#include "graph/topology.h"
#include "pdms/pdms.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace pdms;  // NOLINT: example brevity

namespace {

// Attribute layout shared by all four art schemas (concept-aligned):
//   0 Creator, 1 Subject, 2 CreatedOn, 3 Title, 4 Medium, 5 Location,
//   6 Guid, 7 Keywords, 8 Rights, 9 Collection, 10 Curator
constexpr int kAttrCount = 11;

Schema MakeArtSchema(const std::string& name,
                     const std::vector<std::string>& attribute_names) {
  Schema schema(name);
  for (const std::string& attr : attribute_names) {
    if (!schema.AddAttribute(attr).ok()) std::abort();
  }
  return schema;
}

std::vector<Schema> MakeSchemas() {
  std::vector<Schema> schemas;
  schemas.push_back(MakeArtSchema(
      "gallery_p1", {"Creator", "Subject", "CreatedOn", "Title", "Medium",
                     "Location", "GUID", "Keywords", "Rights", "Collection",
                     "Curator"}));
  schemas.push_back(MakeArtSchema(
      "photoshop_p2", {"Creator", "Subject", "CreateDate", "Name", "Medium",
                       "Place", "GUID", "Tags", "Copyright", "Album",
                       "Owner"}));
  schemas.push_back(MakeArtSchema(
      "winfs_p3", {"Author/DisplayName", "Keyword", "Date", "Title", "Kind",
                   "Location", "GUID", "Labels", "Rights", "Folder",
                   "Maintainer"}));
  schemas.push_back(MakeArtSchema(
      "artdb_p4", {"art/creator", "art/subject", "art/creatDate", "art/title",
                   "art/medium", "art/location", "art/id", "art/keywords",
                   "art/rights", "art/collection", "art/curator"}));
  return schemas;
}

/// Identity-on-concepts mapping; optionally swaps attribute 0 (Creator)
/// with attribute 2 (CreatedOn) — the paper's faulty m24.
SchemaMapping MakeMapping(const std::string& name, bool creator_to_created) {
  SchemaMapping mapping(name, kAttrCount);
  for (AttributeId a = 0; a < kAttrCount; ++a) {
    if (!mapping.Set(a, a).ok()) std::abort();
  }
  if (creator_to_created) {
    // "the mapping erroneously maps Creator in p2 onto CreatedOn in p4"
    if (!mapping.Set(0, 2).ok()) std::abort();
  }
  return mapping;
}

void LoadCollections(Pdms* pdms) {
  struct Piece {
    uint64_t entity;
    const char* creator;
    const char* subject;
    const char* created;
    const char* title;
  };
  const std::vector<Piece> pieces = {
      {1, "Henry Peach Robinson", "Tunbridge Wells river", "1852",
       "On the Way"},
      {2, "Claude Monet", "garden pond lilies", "1899", "Water Lilies"},
      {3, "John Constable", "river Stour dedham", "1816", "Flatford Mill"},
      {4, "Gustave Courbet", "forest stream rocks", "1865", "The Stream"},
  };
  for (PeerId p = 0; p < pdms->peer_count(); ++p) {
    for (const Piece& piece : pieces) {
      pdms->peer(p).store().Insert(
          piece.entity, {{0, piece.creator},
                         {1, piece.subject},
                         {2, piece.created},
                         {3, piece.title}});
    }
  }
}

QueryReport AskForRiverArtists(Pdms* pdms) {
  // q1 (Section 1.2): names of all artists with a piece related to a river.
  const Schema& p2 = pdms->peer(1).schema();
  Result<Query> query =
      ParseQuery("SELECT Creator WHERE Subject LIKE \"river\"", p2, "q1");
  if (!query.ok()) std::abort();
  return pdms->session().Query(/*origin=*/1, *query, /*ttl=*/3);
}

void PrintReport(const char* label, const QueryReport& report) {
  std::printf("%s\n", label);
  std::printf("  peers reached: %zu, mappings blocked: %zu\n",
              report.reached.size(), report.blocked_edges.size());
  TextTable table;
  table.SetHeader({"peer", "returned value", "verdict"});
  size_t false_rows = 0;
  for (const auto& [peer, row] : report.rows) {
    // Entities 1 and 3 are the river pieces; anything else, or a non-name
    // value (a date from CreatedOn), is a false positive.
    const bool name_ok = row.values[0].find_first_not_of("0123456789") !=
                         std::string::npos;
    const bool entity_ok = row.entity == 1 || row.entity == 3;
    const bool ok = name_ok && entity_ok;
    if (!ok) ++false_rows;
    table.AddRow({StrFormat("p%u", peer + 1), row.values[0],
                  ok ? "ok" : "FALSE POSITIVE"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("  false positives: %zu\n\n", false_rows);
}

}  // namespace

int main() {
  topology::ExampleEdges edges;
  const Digraph graph = topology::ExampleGraph(&edges);

  auto build = [&](bool with_message_passing) {
    EngineOptions options;
    options.probe_ttl = 5;
    PdmsBuilder builder;
    builder.WithOptions(options);
    for (Schema& schema : MakeSchemas()) builder.AddPeer(std::move(schema));
    for (EdgeId e : graph.LiveEdges()) {
      builder.AddMapping(graph.edge(e).src, graph.edge(e).dst,
                         MakeMapping(StrFormat("m%u", e), e == edges.m24));
    }
    Result<Pdms> built = builder.Build();
    if (!built.ok()) std::abort();
    Pdms pdms = std::move(built).value();
    LoadCollections(&pdms);
    if (with_message_passing) {
      pdms.session().Discover();
      pdms.session().Converge(100);
    }
    return pdms;
  };

  std::printf("=== Art network (Section 1.2) ===\n\n");
  std::printf("query q1 at photoshop_p2: SELECT Creator WHERE Subject LIKE "
              "\"river\"\n\n");

  Pdms standard = build(/*with_message_passing=*/false);
  PrintReport("standard PDMS (mapping quality unknown):",
              AskForRiverArtists(&standard));

  Pdms probabilistic = build(/*with_message_passing=*/true);
  std::printf("message-passing PDMS posteriors for Creator:\n");
  for (EdgeId e : probabilistic.graph().LiveEdges()) {
    std::printf("  m%u (%s -> %s): %.3f\n", e,
                probabilistic.peer(probabilistic.graph().edge(e).src)
                    .schema().name().c_str(),
                probabilistic.peer(probabilistic.graph().edge(e).dst)
                    .schema().name().c_str(),
                probabilistic.Posterior(e, 0));
  }
  std::printf("\n");
  PrintReport("message-passing PDMS (theta = 0.5):",
              AskForRiverArtists(&probabilistic));
  return 0;
}
