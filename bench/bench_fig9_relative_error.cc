// Reproduces Figure 9: relative error of the decentralized iterative
// message passing scheme against a global exact inference process, as the
// length of cycle f1/f2 grows (the Figure 8 construction: peers are
// spliced into the p1 -> p2 mapping one at a time).
//
// Setup per the paper: example graph, ∆ = 0.1, priors at 0.8, feedback
// f1+, f2−, f3−, 10 iterations of the embedded algorithm. The paper
// reports the error biggest for very short cycles and never above 6%.

#include <cmath>
#include <cstdio>

#include "bench/fixtures.h"
#include "factor/exact.h"
#include "util/table.h"

namespace pdms {
namespace {

void Run() {
  std::printf("Figure 9 — relative error of loopy vs exact inference\n");
  std::printf("(Figure 8 construction, priors 0.8, delta 0.1, 10 iterations)\n\n");
  TextTable table;
  table.SetHeader({"inserted", "len(f1)", "mean |err| %", "max |err| %",
                   "|err(m24)| %", "mean rel err %"});

  for (size_t inserted = 0; inserted <= 8; ++inserted) {
    EngineOptions options;
    options.default_prior = 0.8;
    options.delta_override = 0.1;
    bench::IntroFixture fixture = bench::MakeIntroFixture(options, inserted);
    bench::InjectPaperFeedback(fixture);
    Pdms& pdms = fixture.pdms;
    for (int round = 0; round < 10; ++round) pdms.session().Step();

    std::vector<MappingVarKey> vars;
    const FactorGraph global = pdms.BuildGlobalFactorGraph(&vars);
    // Primary metric (the paper's): error in probability, in percentage
    // points — |P_loopy − P_exact| · 100. Relative-to-exact error is shown
    // for completeness; it blows up when the exact posterior is small.
    double max_abs = 0.0;
    double sum_abs = 0.0;
    double m24_abs = 0.0;
    double sum_rel = 0.0;
    for (VarId v = 0; v < vars.size(); ++v) {
      Result<Belief> exact = ExactMarginalVariableElimination(global, v);
      if (!exact.ok()) continue;
      const double truth = exact->ProbabilityCorrect();
      const double loopy = pdms.Posterior(vars[v].edge, vars[v].attribute);
      const double abs_err = std::abs(loopy - truth) * 100.0;
      max_abs = std::max(max_abs, abs_err);
      sum_abs += abs_err;
      sum_rel += truth > 0 ? std::abs(loopy - truth) / truth * 100.0 : 0.0;
      if (vars[v].edge == fixture.edges.m24) m24_abs = abs_err;
    }
    const auto n = static_cast<double>(vars.size());
    table.AddRow({StrFormat("%zu", inserted),
                  StrFormat("%zu", 4 + inserted),
                  StrFormat("%.3f", sum_abs / n), StrFormat("%.3f", max_abs),
                  StrFormat("%.3f", m24_abs), StrFormat("%.3f", sum_rel / n)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper: error largest for short cycles, never above 6%%\n");
}

}  // namespace
}  // namespace pdms

int main() {
  pdms::Run();
  return 0;
}
