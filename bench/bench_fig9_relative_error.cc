// Reproduces Figure 9: relative error of the decentralized iterative
// message passing scheme against a global exact inference process, as the
// length of cycle f1/f2 grows (the Figure 8 construction: peers are
// spliced into the p1 -> p2 mapping one at a time).
//
// Setup per the paper: example graph, ∆ = 0.1, priors at 0.8, feedback
// f1+, f2−, f3−, 10 iterations of the embedded algorithm. The paper
// reports the error biggest for very short cycles and never above 6%.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/fixtures.h"
#include "factor/exact.h"
#include "util/table.h"

namespace pdms {
namespace {

void Run() {
  std::printf("Figure 9 — relative error of loopy vs exact inference\n");
  std::printf("(Figure 8 construction, priors 0.8, delta 0.1, 10 iterations)\n\n");
  TextTable table;
  table.SetHeader({"inserted", "len(f1)", "mean |err| %", "max |err| %",
                   "|err(m24)| %", "mean rel err %"});

  for (size_t inserted = 0; inserted <= 8; ++inserted) {
    EngineOptions options;
    options.default_prior = 0.8;
    options.delta_override = 0.1;
    bench::IntroFixture fixture = bench::MakeIntroFixture(options, inserted);
    bench::InjectPaperFeedback(fixture);
    Pdms& pdms = fixture.pdms;
    for (int round = 0; round < 10; ++round) pdms.session().Step();

    std::vector<MappingVarKey> vars;
    const FactorGraph global = pdms.BuildGlobalFactorGraph(&vars);
    // Primary metric (the paper's): error in probability, in percentage
    // points — |P_loopy − P_exact| · 100. Relative-to-exact error is shown
    // for completeness; it blows up when the exact posterior is small.
    double max_abs = 0.0;
    double sum_abs = 0.0;
    double m24_abs = 0.0;
    double sum_rel = 0.0;
    for (VarId v = 0; v < vars.size(); ++v) {
      Result<Belief> exact = ExactMarginalVariableElimination(global, v);
      if (!exact.ok()) continue;
      const double truth = exact->ProbabilityCorrect();
      const double loopy = pdms.Posterior(vars[v].edge, vars[v].attribute);
      const double abs_err = std::abs(loopy - truth) * 100.0;
      max_abs = std::max(max_abs, abs_err);
      sum_abs += abs_err;
      sum_rel += truth > 0 ? std::abs(loopy - truth) / truth * 100.0 : 0.0;
      if (vars[v].edge == fixture.edges.m24) m24_abs = abs_err;
    }
    const auto n = static_cast<double>(vars.size());
    table.AddRow({StrFormat("%zu", inserted),
                  StrFormat("%zu", 4 + inserted),
                  StrFormat("%.3f", sum_abs / n), StrFormat("%.3f", max_abs),
                  StrFormat("%.3f", m24_abs), StrFormat("%.3f", sum_rel / n)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper: error largest for short cycles, never above 6%%\n");
}

/// The 10-iteration loopy posteriors of the Figure 8 construction, with
/// belief values optionally quantized to the given error budget.
std::vector<double> LoopyPosteriors(size_t inserted, double budget) {
  EngineOptions options;
  options.default_prior = 0.8;
  options.delta_override = 0.1;
  options.value_precision.error_budget = budget;
  bench::IntroFixture fixture = bench::MakeIntroFixture(options, inserted);
  bench::InjectPaperFeedback(fixture);
  for (int round = 0; round < 10; ++round) fixture.pdms.session().Step();
  std::vector<MappingVarKey> vars;
  fixture.pdms.BuildGlobalFactorGraph(&vars);
  std::vector<double> posteriors;
  posteriors.reserve(vars.size());
  for (const MappingVarKey& v : vars) {
    posteriors.push_back(fixture.pdms.Posterior(v.edge, v.attribute));
  }
  return posteriors;
}

/// Quantized rerun of the whole Figure 9 sweep per precision tier: the
/// mid-trajectory posteriors after 10 iterations must stay within the
/// error budget of the raw-double run at every cycle length.
int RunQuantizedTiers() {
  constexpr size_t kMaxInserted = 8;
  std::printf("\nquantized value encoding — 10-iteration posteriors vs "
              "exact wire values\n(worst over inserted = 0..%zu):\n",
              kMaxInserted);
  std::vector<std::vector<double>> exact;
  for (size_t inserted = 0; inserted <= kMaxInserted; ++inserted) {
    exact.push_back(LoopyPosteriors(inserted, 0.0));
  }
  TextTable table;
  table.SetHeader({"error budget", "max |delta|", "within budget"});
  bool ok = true;
  for (double budget : {1e-2, 1e-3, 1e-4}) {
    double worst = 0.0;
    for (size_t inserted = 0; inserted <= kMaxInserted; ++inserted) {
      const std::vector<double> quantized = LoopyPosteriors(inserted, budget);
      for (size_t i = 0; i < quantized.size(); ++i) {
        worst = std::max(worst, std::abs(quantized[i] - exact[inserted][i]));
      }
    }
    const bool within = worst <= budget;
    ok = ok && within;
    table.AddRow({StrFormat("%.0e", budget), StrFormat("%.2e", worst),
                  within ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());
  if (!ok) std::fprintf(stderr, "FAIL: quantized posteriors broke budget\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace pdms

int main() {
  pdms::Run();
  return pdms::RunQuantizedTiers();
}
