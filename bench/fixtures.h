#ifndef PDMS_BENCH_FIXTURES_H_
#define PDMS_BENCH_FIXTURES_H_

#include <vector>

#include "graph/topology.h"
#include "pdms/pdms.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace pdms {
namespace bench {

/// Schemas of 11 attributes make every peer's auto-estimated ∆ equal the
/// paper's 1/10 (Section 4.5).
constexpr size_t kIntroAttrs = 11;

struct IntroFixture {
  topology::ExampleEdges edges;
  std::vector<EdgeId> chain;  ///< p1 -> ... -> p2 chain (Figure 8 variant)
  Pdms pdms;
};

/// The running example of Figures 1/4: four peers, five mappings, all
/// concept-identities except m24 which garbles attribute 0 ("Creator").
/// With `inserted` > 0 the Figure 8 construction is used: `inserted` extra
/// peers are spliced into the p1 -> p2 mapping, lengthening cycles f1/f2.
inline IntroFixture MakeIntroFixture(EngineOptions options,
                                     size_t inserted = 0,
                                     uint64_t seed = 17) {
  IntroFixture fixture;
  Rng rng(seed);
  const Digraph graph =
      topology::ExampleGraphExtended(inserted, &fixture.edges, &fixture.chain);
  options.probe_ttl =
      std::max<uint32_t>(options.probe_ttl, 5 + static_cast<uint32_t>(inserted));
  options.closure_limits.max_cycle_length =
      std::max(options.closure_limits.max_cycle_length, 5 + inserted);

  PdmsBuilder builder;
  builder.WithOptions(options);
  for (NodeId p = 0; p < graph.node_count(); ++p) {
    Schema schema(StrFormat("p%u", p + 1));
    for (size_t a = 0; a < kIntroAttrs; ++a) {
      Result<AttributeId> added =
          schema.AddAttribute(StrFormat("p%u_a%zu", p + 1, a));
      (void)added;
    }
    builder.AddPeer(std::move(schema));
  }
  for (EdgeId e : graph.LiveEdges()) {
    const std::vector<AttributeId> wrong =
        e == fixture.edges.m24 ? std::vector<AttributeId>{0}
                               : std::vector<AttributeId>{};
    builder.AddMapping(
        graph.edge(e).src, graph.edge(e).dst,
        MakeConceptMapping(StrFormat("m%u", e), kIntroAttrs, wrong, &rng));
  }
  fixture.pdms = std::move(builder.Build()).value();
  return fixture;
}

/// Injects the paper's exact Section 4.5 feedback over the (possibly
/// extended) example topology for attribute 0 with ∆ = 0.1:
///   f1+ : chain..m23..m34..m41 (cycle)
///   f2− : chain..m24..m41      (cycle)
///   f3−⇒: m24 ‖ m23 -> m34     (parallel paths)
inline void InjectPaperFeedback(IntroFixture& fixture) {
  const topology::ExampleEdges& e = fixture.edges;
  const std::vector<EdgeId> chain =
      fixture.chain.empty() ? std::vector<EdgeId>{e.m12} : fixture.chain;

  auto members = [](const std::vector<EdgeId>& edges) {
    std::vector<MappingVarKey> vars;
    for (EdgeId edge : edges) vars.push_back(MappingVarKey{edge, 0});
    return vars;
  };
  auto cycle = [](std::vector<EdgeId> edges) {
    Closure closure;
    closure.kind = Closure::Kind::kCycle;
    closure.edges = std::move(edges);
    closure.split = closure.edges.size();
    closure.source = 0;
    closure.sink = 0;
    return closure;
  };

  std::vector<EdgeId> f1_edges = chain;
  f1_edges.insert(f1_edges.end(), {e.m23, e.m34, e.m41});
  FeedbackAnnouncement f1;
  f1.closure = cycle(f1_edges);
  f1.delta = 0.1;
  f1.feedback = {{0, FeedbackSign::kPositive, members(f1_edges)}};
  fixture.pdms.InjectFeedback(f1);

  std::vector<EdgeId> f2_edges = chain;
  f2_edges.insert(f2_edges.end(), {e.m24, e.m41});
  FeedbackAnnouncement f2;
  f2.closure = cycle(f2_edges);
  f2.delta = 0.1;
  f2.feedback = {{0, FeedbackSign::kNegative, members(f2_edges)}};
  fixture.pdms.InjectFeedback(f2);

  FeedbackAnnouncement f3;
  f3.closure.kind = Closure::Kind::kParallelPaths;
  f3.closure.edges = {e.m24, e.m23, e.m34};
  f3.closure.split = 1;
  f3.closure.source = 1;
  f3.closure.sink = 3;
  f3.delta = 0.1;
  f3.feedback = {
      {0, FeedbackSign::kNegative, members({e.m24, e.m23, e.m34})}};
  fixture.pdms.InjectFeedback(f3);
}

}  // namespace bench
}  // namespace pdms

#endif  // PDMS_BENCH_FIXTURES_H_
