// Reproduces the communication-overhead accounting of Section 4.3:
//
//  * Periodic schedule: at most Σ_ci (l_ci − 1) remote messages per peer
//    per period τ (ci = closures through the peer, l_ci their length).
//  * Lazy schedule: zero additional messages — belief updates piggyback on
//    query traffic only.
//
// Measured on the running example and on a scale-free (Barabási–Albert)
// network, whose high clustering the paper argues is typical of semantic
// overlay networks.

#include <cstdio>

#include "bench/fixtures.h"
#include "graph/topology.h"
#include "util/table.h"

namespace pdms {
namespace {

void PeriodicOverhead(Pdms* pdms, const char* label) {
  pdms->session().Discover();
  pdms->session().Step();  // populate messages
  std::printf("periodic schedule on %s:\n", label);
  TextTable table;
  table.SetHeader({"peer", "replicas", "bound sum(l-1)", "actual updates/round"});
  size_t total_bound = 0;
  size_t total_actual = 0;
  for (PeerId p = 0; p < pdms->peer_count(); ++p) {
    const Peer& peer = pdms->peer(p);
    size_t actual = 0;
    for (const Outgoing& outgoing : peer.CollectOutgoingBeliefs()) {
      actual += std::get<BeliefMessage>(outgoing.payload).update_count();
    }
    total_bound += peer.RemoteMessageBound();
    total_actual += actual;
    if (p < 8) {
      table.AddRow({StrFormat("%u", p), StrFormat("%zu", peer.replica_count()),
                    StrFormat("%zu", peer.RemoteMessageBound()),
                    StrFormat("%zu", actual)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("  total: bound=%zu actual=%zu (bound holds: %s)\n\n",
              total_bound, total_actual,
              total_actual <= total_bound ? "yes" : "NO");
}

void LazyOverhead() {
  EngineOptions options;
  options.schedule = ScheduleKind::kLazy;
  options.theta = 0.45;
  bench::IntroFixture fixture = bench::MakeIntroFixture(options);
  Pdms& pdms = fixture.pdms;
  Session& session = pdms.session();
  // Documents so queries return something.
  for (PeerId p = 0; p < pdms.peer_count(); ++p) {
    pdms.peer(p).store().Insert(0, {{0, "Robinson"}, {1, "river"}});
  }
  session.Discover();
  for (int i = 0; i < 40; ++i) {
    Query query("q");
    query.AddProjection(0);
    query.AddSelection(1, "river");
    session.Query(static_cast<PeerId>(i % 4), query, 4);
    session.Step();
  }
  const auto& stats = pdms.transport().stats();
  std::printf("lazy schedule on example graph (40 queries):\n");
  std::printf("  standalone belief messages: %llu (paper: zero overhead)\n",
              static_cast<unsigned long long>(
                  stats.sent[static_cast<size_t>(MessageKind::kBelief)]));
  std::printf("  query messages:             %llu (beliefs piggyback here)\n",
              static_cast<unsigned long long>(
                  stats.sent[static_cast<size_t>(MessageKind::kQuery)]));
  std::printf("  faulty mapping posterior:   %.4f (< 0.5: identified)\n\n",
              pdms.Posterior(fixture.edges.m24, 0));
}

void DiscoveryCost() {
  std::printf("discovery cost (probe flooding, TTL 5):\n");
  TextTable table;
  table.SetHeader({"network", "peers", "mappings", "clustering", "probes",
                   "feedback msgs", "factors"});
  for (int which = 0; which < 2; ++which) {
    Rng rng(3);
    Digraph graph;
    std::string label;
    if (which == 0) {
      graph = topology::ExampleGraph(nullptr);
      label = "example";
    } else {
      graph = topology::BarabasiAlbert(30, 2, &rng);
      label = "BA(30,2)";
    }
    MappingNetworkOptions network_options;
    network_options.attributes_per_schema = 10;
    network_options.error_rate = 0.2;
    const SyntheticPdms synthetic =
        BuildSyntheticPdms(graph, network_options, &rng);
    EngineOptions options;
    options.probe_ttl = 5;
    Pdms pdms = PdmsBuilder::FromSynthetic(synthetic)
                    .WithOptions(options)
                    .Build()
                    .value();
    const size_t factors = pdms.session().Discover();
    const auto& stats = pdms.transport().stats();
    table.AddRow(
        {label, StrFormat("%zu", graph.node_count()),
         StrFormat("%zu", graph.edge_count()),
         StrFormat("%.3f", ClusteringCoefficient(graph)),
         StrFormat("%llu", static_cast<unsigned long long>(
                               stats.sent[static_cast<size_t>(
                                   MessageKind::kProbe)])),
         StrFormat("%llu", static_cast<unsigned long long>(
                               stats.sent[static_cast<size_t>(
                                   MessageKind::kFeedback)])),
         StrFormat("%zu", factors)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void Run() {
  std::printf("Section 4.3 — communication overhead of the schedules\n\n");
  {
    bench::IntroFixture fixture = bench::MakeIntroFixture(EngineOptions{});
    PeriodicOverhead(&fixture.pdms, "example graph");
  }
  {
    Rng rng(7);
    const Digraph graph = topology::BarabasiAlbert(30, 2, &rng);
    MappingNetworkOptions network_options;
    network_options.attributes_per_schema = 10;
    network_options.error_rate = 0.2;
    const SyntheticPdms synthetic =
        BuildSyntheticPdms(graph, network_options, &rng);
    EngineOptions options;
    options.probe_ttl = 5;
    Pdms pdms = PdmsBuilder::FromSynthetic(synthetic)
                    .WithOptions(options)
                    .Build()
                    .value();
    PeriodicOverhead(&pdms, "BA(30,2) scale-free network");
  }
  LazyOverhead();
  DiscoveryCost();
}

}  // namespace
}  // namespace pdms

int main() {
  pdms::Run();
  return 0;
}
