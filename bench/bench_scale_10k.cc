// Streaming scale benchmark: how fast does a full inference round go as the
// network grows, and how far does round parallelism carry it?
//
// Builds Barabási–Albert and Erdős–Rényi mapping networks at 1k/5k/10k
// peers (symmetrized, so every mapping has an inverse and length-2 cycles
// provide dense, bounded feedback evidence), discovers closures, then
// measures rounds/sec and bytes moved at parallelism 1/2/4/8. Results are
// emitted both as a console table and as machine-readable BENCH_scale.json,
// so the performance trajectory of this workload is diffable across PRs.
//
// The run doubles as a determinism check: posteriors at every parallelism
// level must match the serial run to 1e-12 (they are in fact bitwise
// identical — see docs/PERFORMANCE.md for why).
//
// Each (topology, peers) cell is additionally rerun serially with the
// default adaptive value-error budget (--value-budget, 1e-3 unless
// overridden) so the quantized wire format's bytes/round and posterior
// accuracy delta land in the same JSON; at 10k peers the run fails unless
// quantization cuts bytes/round by at least 4x.
//
// Usage:
//   bench_scale_10k [--smoke] [--out FILE] [--peers a,b,c]
//                   [--parallelism a,b,c] [--rounds N] [--topology ba|er]
//                   [--value-budget EPS] [--no-faults] [--no-adversaries]
//                   [--require-cores=N] [--require-speedup=P:X]
//
// The adversary sweep reruns the BA workload guarded with 0/1/5/10% of
// peers lying per a seeded ByzantinePlan and gates on lying-link demotion
// recall (>= 0.95), honest-subnetwork posterior drift (<= 0.25) and the
// clean run's false-positive demotions (< 1%).
//
// --smoke (CI mode) restricts to 1k peers, parallelism 1/2, 3 measured
// rounds: fast enough for every PR, still end-to-end through discovery,
// parallel rounds, transport accounting and the JSON writer.
// --require-cores=N exits 3 up front when the host has fewer than N
// hardware threads (CI guard for the multi-core perf job);
// --require-speedup=P:X fails the run unless the best exact parallelism-P
// row reaches a speedup of at least X over serial.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "graph/topology.h"
#include "net/fault_injection.h"
#include "net/network.h"
#include "pdms/pdms.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

namespace pdms {
namespace {

constexpr uint64_t kSeed = 2026;
constexpr size_t kAttrs = 6;

struct BenchResult {
  std::string topology;
  size_t peers = 0;
  size_t edges = 0;
  size_t factors = 0;
  size_t parallelism = 0;
  size_t rounds = 0;
  /// Per-value error budget of this row (0 = exact raw doubles). Quantized
  /// rows reuse max_posterior_diff_vs_serial as "vs the exact serial run"
  /// and are held to the budget instead of the 1e-12 determinism bar.
  double value_budget = 0.0;
  double discover_seconds = 0.0;
  double seconds = 0.0;
  double rounds_per_sec = 0.0;
  double belief_updates_per_round = 0.0;
  double bytes_per_round = 0.0;
  double key_bytes_per_round = 0.0;
  double alias_bytes_per_round = 0.0;
  double value_bytes_per_round = 0.0;
  double header_bytes_per_round = 0.0;
  double round_seconds_p50 = 0.0;
  double round_seconds_p95 = 0.0;
  double speedup_vs_serial = 1.0;
  double max_posterior_diff_vs_serial = 0.0;
};

/// One point on the robustness curve: a `FaultPlan` applied to the belief
/// rounds (discovery runs fault-free, mirroring Figure 11's setup where
/// only belief messages are lossy), with convergence cost and posterior
/// error vs the fault-free run.
struct FaultRun {
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double reorder_rate = 0.0;
  size_t rounds = 0;
  bool converged = false;
  double max_posterior_error = 0.0;
  uint64_t events = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
};

/// One point on the Byzantine-resilience curve: a guarded run with a
/// fraction of peers lying per a seeded `ByzantinePlan`, scored on how
/// far honest-subnetwork posteriors drift from the adversary-free guarded
/// run and how precisely misbehaving links are demoted. The fraction-0
/// row is the clean guarded control: its false-positive rate is the
/// "guard does not demote honest traffic" gate.
struct AdversaryRun {
  double byzantine_fraction = 0.0;
  size_t adversary_count = 0;
  size_t rounds = 0;
  bool converged = false;
  /// Max |posterior - clean guarded run| over mappings whose BOTH
  /// endpoints are honest.
  double honest_posterior_delta = 0.0;
  /// Guard links at honest receivers whose neighbor is an adversary.
  size_t lying_links = 0;
  size_t demoted_lying_links = 0;
  double demotion_recall = 1.0;
  /// Guard links at honest receivers whose neighbor is also honest.
  size_t honest_links = 0;
  size_t demoted_honest_links = 0;
  double false_positive_rate = 0.0;
  uint64_t rejected_beliefs = 0;
};

/// Nearest-rank percentile of the (unsorted) per-round wall times.
double Percentile(std::vector<double> values, double fraction) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(values.size())));
  return values[std::min(values.size() - 1, rank == 0 ? 0 : rank - 1)];
}

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

EngineOptions ScaleOptions(size_t parallelism) {
  EngineOptions options;
  // Deliberately keeps the default min_peers_per_lane: the bench measures
  // the engine as shipped, so parallelism-p rows below the fan-out
  // threshold (1k peers at any p, 5k at p=8) run the inline path — their
  // speedup_vs_serial ~= 1.0 is the small-scale fix, not a pool number.
  // Length-2 cycles (a mapping and its inverse) are the evidence unit of
  // this workload: probe two hops, accept 2-cycles, skip parallel paths.
  options.probe_ttl = 2;
  options.closure_limits.min_cycle_length = 2;
  options.closure_limits.max_cycle_length = 2;
  options.closure_limits.max_path_length = 1;
  options.parallelism = parallelism;
  return options;
}

SyntheticPdms BuildWorkload(const std::string& topology, size_t peers) {
  Rng rng(kSeed + peers);
  Digraph graph = topology == "ba"
                      ? topology::BarabasiAlbert(peers, 2, &rng)
                      : topology::ErdosRenyi(peers, 2.0 / peers, &rng);
  topology::Symmetrize(&graph);
  MappingNetworkOptions options;
  options.attributes_per_schema = kAttrs;
  options.error_rate = 0.2;
  return BuildSyntheticPdms(graph, options, &rng);
}

/// Posterior of attribute 0 of every live mapping — the determinism probe.
std::vector<double> SamplePosteriors(const Pdms& pdms) {
  std::vector<double> sample;
  const std::vector<EdgeId> live = pdms.graph().LiveEdges();
  sample.reserve(live.size());
  for (EdgeId e : live) sample.push_back(pdms.Posterior(e, 0));
  return sample;
}

BenchResult RunConfig(const std::string& topology, const SyntheticPdms& workload,
                      size_t parallelism, size_t rounds,
                      const std::vector<double>* serial_sample,
                      std::vector<double>* sample_out,
                      double value_budget = 0.0) {
  BenchResult result;
  result.topology = topology;
  result.peers = workload.graph.node_count();
  result.edges = workload.graph.edge_count();
  result.parallelism = parallelism;
  result.rounds = rounds;
  result.value_budget = value_budget;

  Pdms pdms = PdmsBuilder::FromSynthetic(workload)
                  .WithOptions(ScaleOptions(parallelism))
                  .WithValueErrorBudget(value_budget)
                  .Build()
                  .value();
  Session& session = pdms.session();

  const auto discover_begin = std::chrono::steady_clock::now();
  result.factors = session.Discover();
  result.discover_seconds =
      Seconds(discover_begin, std::chrono::steady_clock::now());

  // Warm-up: the first exchange populates remote messages, and the next
  // two complete the alias negotiation (binding -> ack -> bare-alias), so
  // the measured rounds reflect the steady-state wire format.
  for (int warm = 0; warm < 3; ++warm) session.Step();
  pdms.transport().ResetStats();
  uint64_t updates = 0;
  std::vector<double> round_seconds;
  round_seconds.reserve(rounds);
  const auto begin = std::chrono::steady_clock::now();
  for (size_t r = 0; r < rounds; ++r) {
    const auto round_begin = std::chrono::steady_clock::now();
    updates += session.Step().belief_updates_sent;
    round_seconds.push_back(
        Seconds(round_begin, std::chrono::steady_clock::now()));
  }
  result.seconds = Seconds(begin, std::chrono::steady_clock::now());
  result.rounds_per_sec =
      result.seconds > 0.0 ? static_cast<double>(rounds) / result.seconds : 0.0;
  result.belief_updates_per_round =
      static_cast<double>(updates) / static_cast<double>(rounds);
  result.bytes_per_round =
      static_cast<double>(pdms.transport().stats().bytes_sent) /
      static_cast<double>(rounds);
  result.key_bytes_per_round =
      static_cast<double>(pdms.transport().stats().key_bytes_sent) /
      static_cast<double>(rounds);
  result.alias_bytes_per_round =
      static_cast<double>(pdms.transport().stats().alias_bytes_sent) /
      static_cast<double>(rounds);
  result.value_bytes_per_round =
      static_cast<double>(pdms.transport().stats().value_bytes_sent) /
      static_cast<double>(rounds);
  result.header_bytes_per_round =
      static_cast<double>(pdms.transport().stats().header_bytes_sent) /
      static_cast<double>(rounds);
  result.round_seconds_p50 = Percentile(round_seconds, 0.50);
  result.round_seconds_p95 = Percentile(round_seconds, 0.95);

  *sample_out = SamplePosteriors(pdms);
  if (serial_sample != nullptr) {
    for (size_t i = 0; i < sample_out->size(); ++i) {
      result.max_posterior_diff_vs_serial =
          std::max(result.max_posterior_diff_vs_serial,
                   std::abs((*sample_out)[i] - (*serial_sample)[i]));
    }
  }
  return result;
}

FaultRun RunFaultConfig(const SyntheticPdms& workload, const FaultPlan& plan,
                        size_t max_rounds,
                        const std::vector<double>* reference,
                        std::vector<double>* sample_out) {
  // Serial rounds: the decorator's draws are keyed on arrival order at the
  // Send() entry point, which is scheduler-dependent under parallel sends.
  Pdms pdms = PdmsBuilder::FromSynthetic(workload)
                  .WithOptions(ScaleOptions(1))
                  .WithTransport([](size_t peer_count, const EngineOptions&) {
                    return std::make_unique<FaultInjectingTransport>(
                        std::make_unique<SimTransport>(peer_count,
                                                       NetworkOptions{}),
                        FaultPlan{});
                  })
                  .Build()
                  .value();
  auto& faulty = static_cast<FaultInjectingTransport&>(pdms.transport());
  Session& session = pdms.session();
  session.Discover();

  // Faults arm right after discovery — every belief round runs under fire,
  // so the rounds column is the full convergence cost of the fault mix.
  faulty.set_plan(plan);
  const ConvergenceReport report = session.Converge(max_rounds);

  FaultRun run;
  run.drop_rate = plan.drop_rate;
  run.duplicate_rate = plan.duplicate_rate;
  run.reorder_rate = plan.reorder_rate;
  run.rounds = report.rounds;
  run.converged = report.converged;
  const FaultStats stats = faulty.fault_stats();
  run.events = stats.events;
  run.dropped = stats.dropped;
  run.duplicated = stats.duplicated;
  run.reordered = stats.reordered;

  const std::vector<double> sample = SamplePosteriors(pdms);
  if (reference != nullptr) {
    for (size_t i = 0; i < sample.size(); ++i) {
      run.max_posterior_error = std::max(
          run.max_posterior_error, std::abs(sample[i] - (*reference)[i]));
    }
  }
  if (sample_out != nullptr) *sample_out = sample;
  return run;
}

/// Figure-11-style sweep: drop × duplicate × reorder over a small BA
/// network. Faults here are engine-visible (a dropped belief is gone), so
/// the curve measures convergence cost and residual posterior error — the
/// complement of the socket layer's bitwise-identical guarantee.
std::vector<FaultRun> RunFaultSweep(bool smoke) {
  constexpr size_t kFaultPeers = 200;
  constexpr size_t kFaultMaxRounds = 400;
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.3}
            : std::vector<double>{0.0, 0.15, 0.3};

  const SyntheticPdms workload = BuildWorkload("ba", kFaultPeers);
  std::vector<double> reference;
  std::vector<FaultRun> runs;
  uint64_t index = 0;
  std::printf("\nfault sweep (ba n=%zu, faults on belief rounds only):\n",
              kFaultPeers);
  TextTable table;
  table.SetHeader({"drop", "dup", "reorder", "rounds", "converged",
                   "max |err| vs clean", "injected"});
  for (double drop : rates) {
    for (double duplicate : rates) {
      for (double reorder : rates) {
        FaultPlan plan;
        plan.seed = kSeed * 1000 + index++;
        plan.drop_rate = drop;
        plan.duplicate_rate = duplicate;
        plan.reorder_rate = reorder;
        const bool is_clean = !plan.Enabled();
        FaultRun run = RunFaultConfig(workload, plan, kFaultMaxRounds,
                                      is_clean ? nullptr : &reference,
                                      is_clean ? &reference : nullptr);
        table.AddRow(
            {StrFormat("%.2f", run.drop_rate),
             StrFormat("%.2f", run.duplicate_rate),
             StrFormat("%.2f", run.reorder_rate),
             StrFormat("%zu", run.rounds), run.converged ? "yes" : "no",
             StrFormat("%.2e", run.max_posterior_error),
             StrFormat("%llu/%llu/%llu",
                       static_cast<unsigned long long>(run.dropped),
                       static_cast<unsigned long long>(run.duplicated),
                       static_cast<unsigned long long>(run.reordered))});
        runs.push_back(run);
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  return runs;
}

/// Every `count`-th peer, spread across the id space: deterministic, and
/// at the fractions used here (<= 10%) the stride is >= 10 so the picks
/// are distinct.
std::vector<PeerId> PickAdversaries(size_t peers, size_t count) {
  std::vector<PeerId> adversaries;
  adversaries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    adversaries.push_back(static_cast<PeerId>(i * peers / count));
  }
  return adversaries;
}

AdversaryRun RunAdversaryConfig(const SyntheticPdms& workload,
                                const ByzantinePlan& plan, size_t max_rounds,
                                const std::vector<double>* reference,
                                std::vector<double>* sample_out) {
  ByzantineGuardOptions guard;
  guard.enabled = true;
  Pdms pdms = PdmsBuilder::FromSynthetic(workload)
                  .WithOptions(ScaleOptions(1))
                  .WithByzantineGuard(guard)
                  .WithByzantinePlan(plan)
                  .Build()
                  .value();
  Session& session = pdms.session();
  session.Discover();
  const ConvergenceReport report = session.Converge(max_rounds);

  AdversaryRun run;
  run.adversary_count = plan.adversaries.size();
  run.byzantine_fraction =
      static_cast<double>(plan.adversaries.size()) /
      static_cast<double>(workload.graph.node_count());
  run.rounds = report.rounds;
  run.converged = report.converged;
  run.rejected_beliefs = pdms.engine().GuardRejectedBeliefs();

  const auto is_adversary = [&plan](PeerId peer) {
    return std::binary_search(plan.adversaries.begin(), plan.adversaries.end(),
                              peer);
  };
  // Honest-subnetwork accuracy: mappings with both endpoints honest,
  // against the adversary-free guarded run.
  const std::vector<double> sample = SamplePosteriors(pdms);
  if (reference != nullptr) {
    const std::vector<EdgeId> live = pdms.graph().LiveEdges();
    for (size_t i = 0; i < live.size(); ++i) {
      const Edge& edge = pdms.graph().edge(live[i]);
      if (is_adversary(edge.src) || is_adversary(edge.dst)) continue;
      run.honest_posterior_delta = std::max(
          run.honest_posterior_delta, std::abs(sample[i] - (*reference)[i]));
    }
  }
  if (sample_out != nullptr) *sample_out = sample;

  // Demotion precision/recall over honest receivers' guard links.
  const size_t peers = workload.graph.node_count();
  for (PeerId p = 0; p < peers; ++p) {
    if (is_adversary(p)) continue;
    for (const Peer::GuardLinkView& view : pdms.peer(p).GuardViews()) {
      const bool demoted = view.demote_level >= 1;
      if (is_adversary(view.peer)) {
        ++run.lying_links;
        if (demoted) ++run.demoted_lying_links;
      } else {
        ++run.honest_links;
        if (demoted) ++run.demoted_honest_links;
      }
    }
  }
  run.demotion_recall =
      run.lying_links > 0 ? static_cast<double>(run.demoted_lying_links) /
                                static_cast<double>(run.lying_links)
                          : 1.0;
  run.false_positive_rate =
      run.honest_links > 0 ? static_cast<double>(run.demoted_honest_links) /
                                 static_cast<double>(run.honest_links)
                           : 0.0;
  return run;
}

/// Byzantine sweep: guarded runs at 0 / 1 / 5 / 10% lying peers. The
/// fraction-0 control doubles as the false-positive gate; the adversary
/// rows gate demotion recall and honest-subnetwork accuracy.
std::vector<AdversaryRun> RunAdversarySweep(bool smoke) {
  const size_t peers = smoke ? 200 : 10000;
  const size_t max_rounds = smoke ? 80 : 120;
  const std::vector<double> fractions = {0.01, 0.05, 0.10};

  const SyntheticPdms workload = BuildWorkload("ba", peers);
  std::printf("\nadversary sweep (ba n=%zu, guarded, seeded lying peers):\n",
              peers);
  std::vector<AdversaryRun> runs;
  std::vector<double> reference;

  ByzantinePlan clean;
  runs.push_back(
      RunAdversaryConfig(workload, clean, max_rounds, nullptr, &reference));

  uint64_t index = 0;
  for (double fraction : fractions) {
    ByzantinePlan plan;
    plan.seed = kSeed * 77 + index++;
    plan.lie_probability = 0.5;
    plan.invert_values = true;
    plan.equivocate_rate = 0.2;
    plan.adversaries = PickAdversaries(
        peers, std::max<size_t>(1, static_cast<size_t>(
                                       static_cast<double>(peers) * fraction)));
    runs.push_back(
        RunAdversaryConfig(workload, plan, max_rounds, &reference, nullptr));
  }

  TextTable table;
  table.SetHeader({"byzantine", "rounds", "converged", "honest |err|",
                   "recall", "false pos", "rejected"});
  for (const AdversaryRun& run : runs) {
    table.AddRow({StrFormat("%.0f%%", run.byzantine_fraction * 100.0),
                  StrFormat("%zu", run.rounds), run.converged ? "yes" : "no",
                  StrFormat("%.2e", run.honest_posterior_delta),
                  StrFormat("%zu/%zu", run.demoted_lying_links,
                            run.lying_links),
                  StrFormat("%.2f%%", run.false_positive_rate * 100.0),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        run.rejected_beliefs))});
  }
  std::printf("%s\n", table.ToString().c_str());
  return runs;
}

void WriteJson(const std::string& path, const std::vector<BenchResult>& results,
               const std::vector<FaultRun>& fault_runs,
               const std::vector<AdversaryRun>& adversary_runs, bool smoke) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"scale_10k\",\n");
  // v6: + adversary_runs — guarded runs under seeded Byzantine plans
  //     (lying / equivocating peers), scored on honest-subnetwork
  //     posterior drift, lying-link demotion recall and the clean-run
  //     false-positive rate.
  // v5: + value_budget / value_bytes_per_round / header_bytes_per_round —
  //     quantized config rows (value_budget > 0) carry adaptive fixed-point
  //     log-odds values; their max_posterior_diff_vs_serial is measured
  //     against the exact serial run instead of the determinism bar.
  // v4: + fault_runs — drop × duplicate × reorder robustness sweep
  //     (engine-visible faults on belief rounds; convergence cost and
  //     residual posterior error vs the fault-free run).
  // v3: + alias_bytes_per_round (belief-bundle alias/header overhead);
  //     key_bytes_per_round now counts only unacked binding declarations
  //     (the session-alias wire format), and measured rounds start after
  //     the 3-step negotiation warm-up.
  // v2: + key_bytes_per_round (FactorId fingerprint bytes on the wire)
  //     + round_seconds_p50 / round_seconds_p95 per-round latency.
  std::fprintf(out, "  \"schema_version\": 6,\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(out, "  \"attributes_per_schema\": %zu,\n", kAttrs);
  std::fprintf(out, "  \"configs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(
        out,
        "    {\"topology\": \"%s\", \"peers\": %zu, \"edges\": %zu, "
        "\"factors\": %zu, \"parallelism\": %zu, \"rounds\": %zu, "
        "\"value_budget\": %.1e, "
        "\"discover_seconds\": %.6f, \"seconds\": %.6f, "
        "\"rounds_per_sec\": %.3f, \"belief_updates_per_round\": %.1f, "
        "\"bytes_per_round\": %.1f, \"key_bytes_per_round\": %.1f, "
        "\"alias_bytes_per_round\": %.1f, \"value_bytes_per_round\": %.1f, "
        "\"header_bytes_per_round\": %.1f, "
        "\"round_seconds_p50\": %.6f, \"round_seconds_p95\": %.6f, "
        "\"speedup_vs_serial\": %.3f, "
        "\"max_posterior_diff_vs_serial\": %.3e}%s\n",
        r.topology.c_str(), r.peers, r.edges, r.factors, r.parallelism,
        r.rounds, r.value_budget, r.discover_seconds, r.seconds,
        r.rounds_per_sec, r.belief_updates_per_round, r.bytes_per_round,
        r.key_bytes_per_round, r.alias_bytes_per_round,
        r.value_bytes_per_round, r.header_bytes_per_round,
        r.round_seconds_p50, r.round_seconds_p95, r.speedup_vs_serial,
        r.max_posterior_diff_vs_serial, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"fault_runs\": [\n");
  for (size_t i = 0; i < fault_runs.size(); ++i) {
    const FaultRun& r = fault_runs[i];
    std::fprintf(
        out,
        "    {\"drop_rate\": %.2f, \"duplicate_rate\": %.2f, "
        "\"reorder_rate\": %.2f, \"rounds\": %zu, \"converged\": %s, "
        "\"max_posterior_error\": %.3e, \"events\": %llu, "
        "\"dropped\": %llu, \"duplicated\": %llu, \"reordered\": %llu}%s\n",
        r.drop_rate, r.duplicate_rate, r.reorder_rate, r.rounds,
        r.converged ? "true" : "false", r.max_posterior_error,
        static_cast<unsigned long long>(r.events),
        static_cast<unsigned long long>(r.dropped),
        static_cast<unsigned long long>(r.duplicated),
        static_cast<unsigned long long>(r.reordered),
        i + 1 < fault_runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"adversary_runs\": [\n");
  for (size_t i = 0; i < adversary_runs.size(); ++i) {
    const AdversaryRun& r = adversary_runs[i];
    std::fprintf(
        out,
        "    {\"byzantine_fraction\": %.4f, \"adversary_count\": %zu, "
        "\"rounds\": %zu, \"converged\": %s, "
        "\"honest_posterior_delta\": %.3e, "
        "\"lying_links\": %zu, \"demoted_lying_links\": %zu, "
        "\"demotion_recall\": %.4f, "
        "\"honest_links\": %zu, \"demoted_honest_links\": %zu, "
        "\"false_positive_rate\": %.4f, \"rejected_beliefs\": %llu}%s\n",
        r.byzantine_fraction, r.adversary_count, r.rounds,
        r.converged ? "true" : "false", r.honest_posterior_delta,
        r.lying_links, r.demoted_lying_links, r.demotion_recall,
        r.honest_links, r.demoted_honest_links, r.false_positive_rate,
        static_cast<unsigned long long>(r.rejected_beliefs),
        i + 1 < adversary_runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

std::vector<size_t> ParseSizeList(const char* text) {
  std::vector<size_t> values;
  size_t value = 0;
  bool have_digit = false;
  for (const char* c = text;; ++c) {
    if (*c >= '0' && *c <= '9') {
      value = value * 10 + static_cast<size_t>(*c - '0');
      have_digit = true;
    } else if (*c == ',' || *c == '\0') {
      if (have_digit) values.push_back(value);
      value = 0;
      have_digit = false;
      if (*c == '\0') break;
    }
  }
  return values;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_scale.json";
  std::vector<size_t> peer_counts = {1000, 5000, 10000};
  std::vector<size_t> parallelism_levels = {1, 2, 4, 8};
  std::vector<std::string> topologies = {"ba", "er"};
  size_t rounds = 10;
  bool run_faults = true;
  bool run_adversaries = true;
  size_t require_cores = 0;
  size_t speedup_parallelism = 0;
  double speedup_floor = 0.0;
  double value_budget = 1e-3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    // Rejects flags whose value is missing or contains no digits instead
    // of crashing on an empty list downstream.
    auto next_list = [&](const char* flag) {
      const std::vector<size_t> values = ParseSizeList(next());
      if (values.empty()) {
        std::fprintf(stderr, "%s needs a comma-separated number list\n", flag);
        std::exit(2);
      }
      return values;
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--no-faults") {
      run_faults = false;
    } else if (arg == "--no-adversaries") {
      run_adversaries = false;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--peers") {
      peer_counts = next_list("--peers");
    } else if (arg == "--parallelism") {
      parallelism_levels = next_list("--parallelism");
    } else if (arg == "--rounds") {
      rounds = next_list("--rounds").front();
    } else if (arg == "--topology") {
      topologies = {next()};
    } else if (arg.rfind("--require-cores=", 0) == 0) {
      require_cores = ParseSizeList(arg.c_str() + 16).front();
    } else if (arg == "--require-cores") {
      require_cores = next_list("--require-cores").front();
    } else if (arg.rfind("--require-speedup=", 0) == 0 ||
               arg == "--require-speedup") {
      // P:X — the best parallelism-P row must reach a speedup of at least X.
      const std::string spec =
          arg[17] == '=' ? arg.substr(18) : std::string(next());
      const size_t colon = spec.find(':');
      if (colon != std::string::npos) {
        const std::vector<size_t> par =
            ParseSizeList(spec.substr(0, colon).c_str());
        if (!par.empty()) speedup_parallelism = par.front();
        speedup_floor = std::strtod(spec.c_str() + colon + 1, nullptr);
      }
      if (speedup_parallelism == 0 || speedup_floor <= 0.0) {
        std::fprintf(stderr, "--require-speedup needs P:X (e.g. 4:1.2)\n");
        return 2;
      }
    } else if (arg.rfind("--value-budget=", 0) == 0) {
      value_budget = std::strtod(arg.c_str() + 15, nullptr);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (require_cores > 0) {
    const size_t cores = std::thread::hardware_concurrency();
    if (cores < require_cores) {
      std::fprintf(stderr,
                   "FAIL: need %zu hardware threads for a meaningful "
                   "multi-core run, found %zu\n",
                   require_cores, cores);
      return 3;
    }
  }
  if (smoke) {
    peer_counts = {1000};
    parallelism_levels = {1, 2};
    rounds = 3;
  }

  std::printf("scale bench: peers up to %zu, %zu measured rounds per config\n\n",
              peer_counts.back(), rounds);
  std::vector<BenchResult> results;
  bool deterministic = true;
  bool wire_reduction_ok = true;
  for (const std::string& topology : topologies) {
    for (size_t peers : peer_counts) {
      const SyntheticPdms workload = BuildWorkload(topology, peers);
      std::vector<double> serial_sample;
      double serial_rate = 0.0;
      double serial_bytes = 0.0;
      for (size_t parallelism : parallelism_levels) {
        std::vector<double> sample;
        BenchResult result = RunConfig(
            topology, workload, parallelism, rounds,
            parallelism == parallelism_levels.front() ? nullptr
                                                      : &serial_sample,
            &sample);
        if (parallelism == parallelism_levels.front()) {
          serial_sample = std::move(sample);
          serial_rate = result.rounds_per_sec;
          serial_bytes = result.bytes_per_round;
        }
        result.speedup_vs_serial =
            serial_rate > 0.0 ? result.rounds_per_sec / serial_rate : 1.0;
        if (result.max_posterior_diff_vs_serial > 1e-12) deterministic = false;
        std::printf(
            "%s n=%-6zu edges=%-6zu factors=%-7zu p=%zu  %8.2f rounds/s  "
            "(x%.2f vs serial)  %.1f MB/round (%.1f%% key, %.1f%% alias hdr)  "
            "p50/p95=%.1f/%.1f ms  max|Δposterior|=%.1e\n",
            topology.c_str(), result.peers, result.edges, result.factors,
            result.parallelism, result.rounds_per_sec,
            result.speedup_vs_serial, result.bytes_per_round / 1e6,
            result.bytes_per_round > 0.0
                ? 100.0 * result.key_bytes_per_round / result.bytes_per_round
                : 0.0,
            result.bytes_per_round > 0.0
                ? 100.0 * result.alias_bytes_per_round / result.bytes_per_round
                : 0.0,
            result.round_seconds_p50 * 1e3, result.round_seconds_p95 * 1e3,
            result.max_posterior_diff_vs_serial);
        results.push_back(std::move(result));
      }

      // Quantized rerun: same workload and round budget, serial, with the
      // default adaptive error budget. Its posterior diff is measured
      // against the exact serial run (an accuracy delta, not a determinism
      // check); the wire reduction is gated at full scale.
      if (value_budget > 0.0) {
        std::vector<double> quantized_sample;
        BenchResult quantized = RunConfig(topology, workload, 1, rounds,
                                          &serial_sample, &quantized_sample,
                                          value_budget);
        quantized.speedup_vs_serial =
            serial_rate > 0.0 ? quantized.rounds_per_sec / serial_rate : 1.0;
        const double reduction =
            quantized.bytes_per_round > 0.0
                ? serial_bytes / quantized.bytes_per_round
                : 0.0;
        std::printf(
            "%s n=%-6zu quantized eps=%.0e p=1  %8.2f rounds/s  "
            "%.1f MB/round (%.1f%% values)  x%.2f wire reduction  "
            "max|Δposterior|=%.1e\n",
            topology.c_str(), quantized.peers, quantized.value_budget,
            quantized.rounds_per_sec, quantized.bytes_per_round / 1e6,
            quantized.bytes_per_round > 0.0
                ? 100.0 * quantized.value_bytes_per_round /
                      quantized.bytes_per_round
                : 0.0,
            reduction, quantized.max_posterior_diff_vs_serial);
        if (peers >= 10000 && reduction < 4.0) {
          std::fprintf(stderr,
                       "FAIL: %s n=%zu quantized wire reduction x%.2f "
                       "< x4.00 target\n",
                       topology.c_str(), peers, reduction);
          wire_reduction_ok = false;
        }
        results.push_back(std::move(quantized));
      }
    }
  }

  const std::vector<FaultRun> fault_runs =
      run_faults ? RunFaultSweep(smoke) : std::vector<FaultRun>{};
  const std::vector<AdversaryRun> adversary_runs =
      run_adversaries ? RunAdversarySweep(smoke) : std::vector<AdversaryRun>{};
  WriteJson(out_path, results, fault_runs, adversary_runs, smoke);

  bool adversaries_ok = true;
  for (const AdversaryRun& run : adversary_runs) {
    if (run.adversary_count == 0) {
      // The clean guarded control: the guard must not demote honest
      // traffic (< 1% of honest links) nor reject any belief.
      if (run.false_positive_rate >= 0.01) {
        std::fprintf(stderr,
                     "FAIL: clean guarded run demoted %.2f%% of honest links "
                     "(>= 1%% budget)\n",
                     run.false_positive_rate * 100.0);
        adversaries_ok = false;
      }
      continue;
    }
    if (run.demotion_recall < 0.95) {
      std::fprintf(stderr,
                   "FAIL: %.0f%% byzantine run demoted only %zu/%zu lying "
                   "links (recall %.2f < 0.95)\n",
                   run.byzantine_fraction * 100.0, run.demoted_lying_links,
                   run.lying_links, run.demotion_recall);
      adversaries_ok = false;
    }
    if (run.honest_posterior_delta > 0.25) {
      std::fprintf(stderr,
                   "FAIL: %.0f%% byzantine run drifted honest posteriors by "
                   "%.3f (> 0.25)\n",
                   run.byzantine_fraction * 100.0, run.honest_posterior_delta);
      adversaries_ok = false;
    }
  }
  if (!adversary_runs.empty() && adversaries_ok) {
    std::printf("adversary guard: recall >= 0.95, honest drift <= 0.25, "
                "clean false positives < 1%%\n");
  }

  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: parallel posteriors diverged from serial (> 1e-12)\n");
    return 1;
  }
  std::printf("determinism: all parallel runs matched serial posteriors "
              "(<= 1e-12)\n");
  if (!wire_reduction_ok || !adversaries_ok) return 1;
  if (speedup_parallelism > 0) {
    double best = 0.0;
    for (const BenchResult& r : results) {
      if (r.parallelism == speedup_parallelism && r.value_budget == 0.0) {
        best = std::max(best, r.speedup_vs_serial);
      }
    }
    if (best < speedup_floor) {
      std::fprintf(stderr,
                   "FAIL: best parallelism-%zu speedup x%.2f < x%.2f floor\n",
                   speedup_parallelism, best, speedup_floor);
      return 1;
    }
    std::printf("speedup guard: parallelism-%zu reached x%.2f (floor x%.2f)\n",
                speedup_parallelism, best, speedup_floor);
  }
  return 0;
}

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) { return pdms::Main(argc, argv); }
