// Streaming scale benchmark: how fast does a full inference round go as the
// network grows, and how far does round parallelism carry it?
//
// Builds Barabási–Albert and Erdős–Rényi mapping networks at 1k/5k/10k
// peers (symmetrized, so every mapping has an inverse and length-2 cycles
// provide dense, bounded feedback evidence), discovers closures, then
// measures rounds/sec and bytes moved at parallelism 1/2/4/8. Results are
// emitted both as a console table and as machine-readable BENCH_scale.json,
// so the performance trajectory of this workload is diffable across PRs.
//
// The run doubles as a determinism check: posteriors at every parallelism
// level must match the serial run to 1e-12 (they are in fact bitwise
// identical — see docs/PERFORMANCE.md for why).
//
// Usage:
//   bench_scale_10k [--smoke] [--out FILE] [--peers a,b,c]
//                   [--parallelism a,b,c] [--rounds N] [--topology ba|er]
//
// --smoke (CI mode) restricts to 1k peers, parallelism 1/2, 3 measured
// rounds: fast enough for every PR, still end-to-end through discovery,
// parallel rounds, transport accounting and the JSON writer.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "graph/topology.h"
#include "net/fault_injection.h"
#include "net/network.h"
#include "pdms/pdms.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

namespace pdms {
namespace {

constexpr uint64_t kSeed = 2026;
constexpr size_t kAttrs = 6;

struct BenchResult {
  std::string topology;
  size_t peers = 0;
  size_t edges = 0;
  size_t factors = 0;
  size_t parallelism = 0;
  size_t rounds = 0;
  double discover_seconds = 0.0;
  double seconds = 0.0;
  double rounds_per_sec = 0.0;
  double belief_updates_per_round = 0.0;
  double bytes_per_round = 0.0;
  double key_bytes_per_round = 0.0;
  double alias_bytes_per_round = 0.0;
  double round_seconds_p50 = 0.0;
  double round_seconds_p95 = 0.0;
  double speedup_vs_serial = 1.0;
  double max_posterior_diff_vs_serial = 0.0;
};

/// One point on the robustness curve: a `FaultPlan` applied to the belief
/// rounds (discovery runs fault-free, mirroring Figure 11's setup where
/// only belief messages are lossy), with convergence cost and posterior
/// error vs the fault-free run.
struct FaultRun {
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double reorder_rate = 0.0;
  size_t rounds = 0;
  bool converged = false;
  double max_posterior_error = 0.0;
  uint64_t events = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
};

/// Nearest-rank percentile of the (unsorted) per-round wall times.
double Percentile(std::vector<double> values, double fraction) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(values.size())));
  return values[std::min(values.size() - 1, rank == 0 ? 0 : rank - 1)];
}

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

EngineOptions ScaleOptions(size_t parallelism) {
  EngineOptions options;
  // Deliberately keeps the default min_peers_per_lane: the bench measures
  // the engine as shipped, so parallelism-p rows below the fan-out
  // threshold (1k peers at any p, 5k at p=8) run the inline path — their
  // speedup_vs_serial ~= 1.0 is the small-scale fix, not a pool number.
  // Length-2 cycles (a mapping and its inverse) are the evidence unit of
  // this workload: probe two hops, accept 2-cycles, skip parallel paths.
  options.probe_ttl = 2;
  options.closure_limits.min_cycle_length = 2;
  options.closure_limits.max_cycle_length = 2;
  options.closure_limits.max_path_length = 1;
  options.parallelism = parallelism;
  return options;
}

SyntheticPdms BuildWorkload(const std::string& topology, size_t peers) {
  Rng rng(kSeed + peers);
  Digraph graph = topology == "ba"
                      ? topology::BarabasiAlbert(peers, 2, &rng)
                      : topology::ErdosRenyi(peers, 2.0 / peers, &rng);
  topology::Symmetrize(&graph);
  MappingNetworkOptions options;
  options.attributes_per_schema = kAttrs;
  options.error_rate = 0.2;
  return BuildSyntheticPdms(graph, options, &rng);
}

/// Posterior of attribute 0 of every live mapping — the determinism probe.
std::vector<double> SamplePosteriors(const Pdms& pdms) {
  std::vector<double> sample;
  const std::vector<EdgeId> live = pdms.graph().LiveEdges();
  sample.reserve(live.size());
  for (EdgeId e : live) sample.push_back(pdms.Posterior(e, 0));
  return sample;
}

BenchResult RunConfig(const std::string& topology, const SyntheticPdms& workload,
                      size_t parallelism, size_t rounds,
                      const std::vector<double>* serial_sample,
                      std::vector<double>* sample_out) {
  BenchResult result;
  result.topology = topology;
  result.peers = workload.graph.node_count();
  result.edges = workload.graph.edge_count();
  result.parallelism = parallelism;
  result.rounds = rounds;

  Pdms pdms = PdmsBuilder::FromSynthetic(workload)
                  .WithOptions(ScaleOptions(parallelism))
                  .Build()
                  .value();
  Session& session = pdms.session();

  const auto discover_begin = std::chrono::steady_clock::now();
  result.factors = session.Discover();
  result.discover_seconds =
      Seconds(discover_begin, std::chrono::steady_clock::now());

  // Warm-up: the first exchange populates remote messages, and the next
  // two complete the alias negotiation (binding -> ack -> bare-alias), so
  // the measured rounds reflect the steady-state wire format.
  for (int warm = 0; warm < 3; ++warm) session.Step();
  pdms.transport().ResetStats();
  uint64_t updates = 0;
  std::vector<double> round_seconds;
  round_seconds.reserve(rounds);
  const auto begin = std::chrono::steady_clock::now();
  for (size_t r = 0; r < rounds; ++r) {
    const auto round_begin = std::chrono::steady_clock::now();
    updates += session.Step().belief_updates_sent;
    round_seconds.push_back(
        Seconds(round_begin, std::chrono::steady_clock::now()));
  }
  result.seconds = Seconds(begin, std::chrono::steady_clock::now());
  result.rounds_per_sec =
      result.seconds > 0.0 ? static_cast<double>(rounds) / result.seconds : 0.0;
  result.belief_updates_per_round =
      static_cast<double>(updates) / static_cast<double>(rounds);
  result.bytes_per_round =
      static_cast<double>(pdms.transport().stats().bytes_sent) /
      static_cast<double>(rounds);
  result.key_bytes_per_round =
      static_cast<double>(pdms.transport().stats().key_bytes_sent) /
      static_cast<double>(rounds);
  result.alias_bytes_per_round =
      static_cast<double>(pdms.transport().stats().alias_bytes_sent) /
      static_cast<double>(rounds);
  result.round_seconds_p50 = Percentile(round_seconds, 0.50);
  result.round_seconds_p95 = Percentile(round_seconds, 0.95);

  *sample_out = SamplePosteriors(pdms);
  if (serial_sample != nullptr) {
    for (size_t i = 0; i < sample_out->size(); ++i) {
      result.max_posterior_diff_vs_serial =
          std::max(result.max_posterior_diff_vs_serial,
                   std::abs((*sample_out)[i] - (*serial_sample)[i]));
    }
  }
  return result;
}

FaultRun RunFaultConfig(const SyntheticPdms& workload, const FaultPlan& plan,
                        size_t max_rounds,
                        const std::vector<double>* reference,
                        std::vector<double>* sample_out) {
  // Serial rounds: the decorator's draws are keyed on arrival order at the
  // Send() entry point, which is scheduler-dependent under parallel sends.
  Pdms pdms = PdmsBuilder::FromSynthetic(workload)
                  .WithOptions(ScaleOptions(1))
                  .WithTransport([](size_t peer_count, const EngineOptions&) {
                    return std::make_unique<FaultInjectingTransport>(
                        std::make_unique<SimTransport>(peer_count,
                                                       NetworkOptions{}),
                        FaultPlan{});
                  })
                  .Build()
                  .value();
  auto& faulty = static_cast<FaultInjectingTransport&>(pdms.transport());
  Session& session = pdms.session();
  session.Discover();

  // Faults arm right after discovery — every belief round runs under fire,
  // so the rounds column is the full convergence cost of the fault mix.
  faulty.set_plan(plan);
  const ConvergenceReport report = session.Converge(max_rounds);

  FaultRun run;
  run.drop_rate = plan.drop_rate;
  run.duplicate_rate = plan.duplicate_rate;
  run.reorder_rate = plan.reorder_rate;
  run.rounds = report.rounds;
  run.converged = report.converged;
  const FaultStats stats = faulty.fault_stats();
  run.events = stats.events;
  run.dropped = stats.dropped;
  run.duplicated = stats.duplicated;
  run.reordered = stats.reordered;

  const std::vector<double> sample = SamplePosteriors(pdms);
  if (reference != nullptr) {
    for (size_t i = 0; i < sample.size(); ++i) {
      run.max_posterior_error = std::max(
          run.max_posterior_error, std::abs(sample[i] - (*reference)[i]));
    }
  }
  if (sample_out != nullptr) *sample_out = sample;
  return run;
}

/// Figure-11-style sweep: drop × duplicate × reorder over a small BA
/// network. Faults here are engine-visible (a dropped belief is gone), so
/// the curve measures convergence cost and residual posterior error — the
/// complement of the socket layer's bitwise-identical guarantee.
std::vector<FaultRun> RunFaultSweep(bool smoke) {
  constexpr size_t kFaultPeers = 200;
  constexpr size_t kFaultMaxRounds = 400;
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.3}
            : std::vector<double>{0.0, 0.15, 0.3};

  const SyntheticPdms workload = BuildWorkload("ba", kFaultPeers);
  std::vector<double> reference;
  std::vector<FaultRun> runs;
  uint64_t index = 0;
  std::printf("\nfault sweep (ba n=%zu, faults on belief rounds only):\n",
              kFaultPeers);
  TextTable table;
  table.SetHeader({"drop", "dup", "reorder", "rounds", "converged",
                   "max |err| vs clean", "injected"});
  for (double drop : rates) {
    for (double duplicate : rates) {
      for (double reorder : rates) {
        FaultPlan plan;
        plan.seed = kSeed * 1000 + index++;
        plan.drop_rate = drop;
        plan.duplicate_rate = duplicate;
        plan.reorder_rate = reorder;
        const bool is_clean = !plan.Enabled();
        FaultRun run = RunFaultConfig(workload, plan, kFaultMaxRounds,
                                      is_clean ? nullptr : &reference,
                                      is_clean ? &reference : nullptr);
        table.AddRow(
            {StrFormat("%.2f", run.drop_rate),
             StrFormat("%.2f", run.duplicate_rate),
             StrFormat("%.2f", run.reorder_rate),
             StrFormat("%zu", run.rounds), run.converged ? "yes" : "no",
             StrFormat("%.2e", run.max_posterior_error),
             StrFormat("%llu/%llu/%llu",
                       static_cast<unsigned long long>(run.dropped),
                       static_cast<unsigned long long>(run.duplicated),
                       static_cast<unsigned long long>(run.reordered))});
        runs.push_back(run);
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  return runs;
}

void WriteJson(const std::string& path, const std::vector<BenchResult>& results,
               const std::vector<FaultRun>& fault_runs, bool smoke) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"scale_10k\",\n");
  // v4: + fault_runs — drop × duplicate × reorder robustness sweep
  //     (engine-visible faults on belief rounds; convergence cost and
  //     residual posterior error vs the fault-free run).
  // v3: + alias_bytes_per_round (belief-bundle alias/header overhead);
  //     key_bytes_per_round now counts only unacked binding declarations
  //     (the session-alias wire format), and measured rounds start after
  //     the 3-step negotiation warm-up.
  // v2: + key_bytes_per_round (FactorId fingerprint bytes on the wire)
  //     + round_seconds_p50 / round_seconds_p95 per-round latency.
  std::fprintf(out, "  \"schema_version\": 4,\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(out, "  \"attributes_per_schema\": %zu,\n", kAttrs);
  std::fprintf(out, "  \"configs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(
        out,
        "    {\"topology\": \"%s\", \"peers\": %zu, \"edges\": %zu, "
        "\"factors\": %zu, \"parallelism\": %zu, \"rounds\": %zu, "
        "\"discover_seconds\": %.6f, \"seconds\": %.6f, "
        "\"rounds_per_sec\": %.3f, \"belief_updates_per_round\": %.1f, "
        "\"bytes_per_round\": %.1f, \"key_bytes_per_round\": %.1f, "
        "\"alias_bytes_per_round\": %.1f, "
        "\"round_seconds_p50\": %.6f, \"round_seconds_p95\": %.6f, "
        "\"speedup_vs_serial\": %.3f, "
        "\"max_posterior_diff_vs_serial\": %.3e}%s\n",
        r.topology.c_str(), r.peers, r.edges, r.factors, r.parallelism,
        r.rounds, r.discover_seconds, r.seconds, r.rounds_per_sec,
        r.belief_updates_per_round, r.bytes_per_round, r.key_bytes_per_round,
        r.alias_bytes_per_round, r.round_seconds_p50, r.round_seconds_p95,
        r.speedup_vs_serial, r.max_posterior_diff_vs_serial,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"fault_runs\": [\n");
  for (size_t i = 0; i < fault_runs.size(); ++i) {
    const FaultRun& r = fault_runs[i];
    std::fprintf(
        out,
        "    {\"drop_rate\": %.2f, \"duplicate_rate\": %.2f, "
        "\"reorder_rate\": %.2f, \"rounds\": %zu, \"converged\": %s, "
        "\"max_posterior_error\": %.3e, \"events\": %llu, "
        "\"dropped\": %llu, \"duplicated\": %llu, \"reordered\": %llu}%s\n",
        r.drop_rate, r.duplicate_rate, r.reorder_rate, r.rounds,
        r.converged ? "true" : "false", r.max_posterior_error,
        static_cast<unsigned long long>(r.events),
        static_cast<unsigned long long>(r.dropped),
        static_cast<unsigned long long>(r.duplicated),
        static_cast<unsigned long long>(r.reordered),
        i + 1 < fault_runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

std::vector<size_t> ParseSizeList(const char* text) {
  std::vector<size_t> values;
  size_t value = 0;
  bool have_digit = false;
  for (const char* c = text;; ++c) {
    if (*c >= '0' && *c <= '9') {
      value = value * 10 + static_cast<size_t>(*c - '0');
      have_digit = true;
    } else if (*c == ',' || *c == '\0') {
      if (have_digit) values.push_back(value);
      value = 0;
      have_digit = false;
      if (*c == '\0') break;
    }
  }
  return values;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_scale.json";
  std::vector<size_t> peer_counts = {1000, 5000, 10000};
  std::vector<size_t> parallelism_levels = {1, 2, 4, 8};
  std::vector<std::string> topologies = {"ba", "er"};
  size_t rounds = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    // Rejects flags whose value is missing or contains no digits instead
    // of crashing on an empty list downstream.
    auto next_list = [&](const char* flag) {
      const std::vector<size_t> values = ParseSizeList(next());
      if (values.empty()) {
        std::fprintf(stderr, "%s needs a comma-separated number list\n", flag);
        std::exit(2);
      }
      return values;
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--peers") {
      peer_counts = next_list("--peers");
    } else if (arg == "--parallelism") {
      parallelism_levels = next_list("--parallelism");
    } else if (arg == "--rounds") {
      rounds = next_list("--rounds").front();
    } else if (arg == "--topology") {
      topologies = {next()};
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (smoke) {
    peer_counts = {1000};
    parallelism_levels = {1, 2};
    rounds = 3;
  }

  std::printf("scale bench: peers up to %zu, %zu measured rounds per config\n\n",
              peer_counts.back(), rounds);
  std::vector<BenchResult> results;
  bool deterministic = true;
  for (const std::string& topology : topologies) {
    for (size_t peers : peer_counts) {
      const SyntheticPdms workload = BuildWorkload(topology, peers);
      std::vector<double> serial_sample;
      double serial_rate = 0.0;
      for (size_t parallelism : parallelism_levels) {
        std::vector<double> sample;
        BenchResult result = RunConfig(
            topology, workload, parallelism, rounds,
            parallelism == parallelism_levels.front() ? nullptr
                                                      : &serial_sample,
            &sample);
        if (parallelism == parallelism_levels.front()) {
          serial_sample = std::move(sample);
          serial_rate = result.rounds_per_sec;
        }
        result.speedup_vs_serial =
            serial_rate > 0.0 ? result.rounds_per_sec / serial_rate : 1.0;
        if (result.max_posterior_diff_vs_serial > 1e-12) deterministic = false;
        std::printf(
            "%s n=%-6zu edges=%-6zu factors=%-7zu p=%zu  %8.2f rounds/s  "
            "(x%.2f vs serial)  %.1f MB/round (%.1f%% key, %.1f%% alias hdr)  "
            "p50/p95=%.1f/%.1f ms  max|Δposterior|=%.1e\n",
            topology.c_str(), result.peers, result.edges, result.factors,
            result.parallelism, result.rounds_per_sec,
            result.speedup_vs_serial, result.bytes_per_round / 1e6,
            result.bytes_per_round > 0.0
                ? 100.0 * result.key_bytes_per_round / result.bytes_per_round
                : 0.0,
            result.bytes_per_round > 0.0
                ? 100.0 * result.alias_bytes_per_round / result.bytes_per_round
                : 0.0,
            result.round_seconds_p50 * 1e3, result.round_seconds_p95 * 1e3,
            result.max_posterior_diff_vs_serial);
        results.push_back(std::move(result));
      }
    }
  }

  const std::vector<FaultRun> fault_runs = RunFaultSweep(smoke);
  WriteJson(out_path, results, fault_runs, smoke);
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: parallel posteriors diverged from serial (> 1e-12)\n");
    return 1;
  }
  std::printf("determinism: all parallel runs matched serial posteriors "
              "(<= 1e-12)\n");
  return 0;
}

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) { return pdms::Main(argc, argv); }
