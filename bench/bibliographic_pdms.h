#ifndef PDMS_BENCH_BIBLIOGRAPHIC_PDMS_H_
#define PDMS_BENCH_BIBLIOGRAPHIC_PDMS_H_

#include <vector>

#include "pdms/pdms.h"
#include "schema/alignment.h"
#include "schema/bibliographic.h"
#include "util/string_util.h"

namespace pdms {
namespace bench {

/// The Section 5.2 workload: six bibliographic ontologies (EON stand-ins),
/// automatically aligned into a PDMS whose attribute-level mappings carry
/// genuine aligner errors, plus the ground truth needed to score them.
struct BibliographicPdms {
  std::vector<Ontology> family;
  Pdms pdms;
  /// Every attribute-level mapping entry: (edge, source attribute).
  std::vector<MappingVarKey> entries;
  /// erroneous[i] == true iff entries[i] maps across different concepts.
  std::vector<bool> erroneous;

  size_t ErroneousCount() const {
    size_t count = 0;
    for (bool e : erroneous) count += e ? 1 : 0;
    return count;
  }
};

/// Aligns every ordered ontology pair — alternating between the combined
/// (dictionary-backed) and plain edit-distance techniques, as contest
/// participants' tools did — and assembles the resulting PDMS.
inline BibliographicPdms MakeBibliographicPdms(
    EngineOptions options,
    PdmsBuilder::TransportFactory transport_factory = nullptr) {
  BibliographicPdms workload;
  workload.family = MakeBibliographicOntologies();
  const size_t n = workload.family.size();
  GroundTruth truth(&workload.family);

  PdmsBuilder builder;
  builder.WithOptions(options);
  if (transport_factory) builder.WithTransport(std::move(transport_factory));
  for (const Ontology& ontology : workload.family) {
    builder.AddPeer(ontology.schema);
  }

  std::vector<SchemaMapping> mappings;
  std::vector<std::pair<size_t, size_t>> edge_pairs;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      AlignerOptions aligner_options;
      if ((i + j) % 2 == 0) {
        aligner_options.technique = AlignmentTechnique::kCombined;
        aligner_options.min_score = 0.5;
      } else {
        aligner_options.technique = AlignmentTechnique::kEditDistance;
        aligner_options.min_score = 0.45;
      }
      const auto correspondences =
          Aligner(aligner_options)
              .Align(workload.family[i].schema, workload.family[j].schema);
      if (correspondences.empty()) continue;
      SchemaMapping mapping = SchemaMapping::FromCorrespondences(
          StrFormat("m_%s_%s", workload.family[i].schema.name().c_str(),
                    workload.family[j].schema.name().c_str()),
          workload.family[i].schema.size(), correspondences);
      builder.AddMapping(static_cast<PeerId>(i), static_cast<PeerId>(j),
                         mapping);
      mappings.push_back(std::move(mapping));
      edge_pairs.emplace_back(i, j);
    }
  }

  workload.pdms = builder.Build().value();

  for (EdgeId e = 0; e < mappings.size(); ++e) {
    const auto [i, j] = edge_pairs[e];
    for (AttributeId a = 0; a < workload.family[i].schema.size(); ++a) {
      const std::optional<AttributeId> image = mappings[e].Apply(a);
      if (!image.has_value()) continue;
      workload.entries.push_back(MappingVarKey{e, a});
      workload.erroneous.push_back(!truth.SameConcept(i, a, j, *image));
    }
  }
  return workload;
}

}  // namespace bench
}  // namespace pdms

#endif  // PDMS_BENCH_BIBLIOGRAPHIC_PDMS_H_
