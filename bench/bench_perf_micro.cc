// Micro-performance of the engine's building blocks (google-benchmark).
// Not a paper figure: this backs the release-quality claims — the O(n)
// structured feedback-factor messages vs the O(2^n) dense table, iteration
// cost of loopy sum-product, closure enumeration, per-round cost of the
// embedded engine, and aligner throughput.

#include <benchmark/benchmark.h>

#include "factor/exact.h"
#include "factor/factor.h"
#include "factor/factor_graph.h"
#include "factor/sum_product.h"
#include "graph/closure.h"
#include "graph/topology.h"
#include "pdms/pdms.h"
#include "schema/alignment.h"
#include "schema/bibliographic.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace pdms {
namespace {

void BM_CycleFactorMessageStructured(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<VarId> vars(n);
  for (size_t i = 0; i < n; ++i) vars[i] = static_cast<VarId>(i);
  CycleFeedbackFactor factor(vars, true, 0.1);
  Rng rng(1);
  std::vector<Belief> incoming(n);
  for (auto& b : incoming) b = Belief{rng.NextDouble(), rng.NextDouble()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(factor.MessageTo(0, incoming));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_CycleFactorMessageStructured)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity(benchmark::oN);

void BM_CycleFactorMessageDenseTable(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<VarId> vars(n);
  for (size_t i = 0; i < n; ++i) vars[i] = static_cast<VarId>(i);
  CycleFeedbackFactor structured(vars, true, 0.1);
  const auto dense = TableFactor::FromFactor(structured);
  Rng rng(1);
  std::vector<Belief> incoming(n);
  for (auto& b : incoming) b = Belief{rng.NextDouble(), rng.NextDouble()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense->MessageTo(0, incoming));
  }
}
BENCHMARK(BM_CycleFactorMessageDenseTable)->RangeMultiplier(2)->Range(2, 16);

FactorGraph MakeLoopyGraph(size_t cycles, size_t vars_per_cycle) {
  FactorGraph graph;
  Rng rng(7);
  std::vector<VarId> vars;
  const size_t total_vars = cycles + vars_per_cycle;
  for (size_t i = 0; i < total_vars; ++i) {
    const VarId v = graph.AddVariable("m");
    vars.push_back(v);
    Result<FactorIndex> prior =
        graph.AddFactor(std::make_unique<PriorFactor>(v, 0.6));
    (void)prior;
  }
  for (size_t c = 0; c < cycles; ++c) {
    std::vector<VarId> scope;
    for (size_t i = 0; i < vars_per_cycle; ++i) {
      scope.push_back(vars[(c + i) % vars.size()]);
    }
    Result<FactorIndex> factor = graph.AddFactor(
        std::make_unique<CycleFeedbackFactor>(scope, rng.Bernoulli(0.7), 0.1));
    (void)factor;
  }
  return graph;
}

void BM_SumProductIteration(benchmark::State& state) {
  const FactorGraph graph =
      MakeLoopyGraph(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    SumProductOptions options;
    options.max_iterations = 1;
    SumProductEngine engine(graph, options);
    benchmark::DoNotOptimize(engine.Step());
  }
  state.counters["factors"] = static_cast<double>(graph.factor_count());
}
BENCHMARK(BM_SumProductIteration)->RangeMultiplier(4)->Range(4, 256);

void BM_ExactVariableElimination(benchmark::State& state) {
  const FactorGraph graph =
      MakeLoopyGraph(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactMarginalVariableElimination(graph, 0));
  }
}
BENCHMARK(BM_ExactVariableElimination)->Arg(4)->Arg(8)->Arg(12);

void BM_DirectedCycleEnumeration(benchmark::State& state) {
  Rng rng(11);
  const Digraph graph =
      topology::BarabasiAlbert(static_cast<size_t>(state.range(0)), 2, &rng);
  ClosureFinderOptions options;
  options.max_cycle_length = 6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindDirectedCycles(graph, options));
  }
}
BENCHMARK(BM_DirectedCycleEnumeration)->Arg(20)->Arg(40)->Arg(80);

void BM_ParallelPathEnumeration(benchmark::State& state) {
  Rng rng(11);
  const Digraph graph =
      topology::BarabasiAlbert(static_cast<size_t>(state.range(0)), 2, &rng);
  ClosureFinderOptions options;
  options.max_path_length = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindParallelPaths(graph, options));
  }
}
BENCHMARK(BM_ParallelPathEnumeration)->Arg(20)->Arg(40);

void BM_EngineInferenceRound(benchmark::State& state) {
  Rng rng(3);
  const Digraph graph =
      topology::BarabasiAlbert(static_cast<size_t>(state.range(0)), 2, &rng);
  MappingNetworkOptions network_options;
  network_options.attributes_per_schema = 10;
  network_options.error_rate = 0.2;
  const SyntheticPdms synthetic =
      BuildSyntheticPdms(graph, network_options, &rng);
  EngineOptions options;
  options.probe_ttl = 5;
  Pdms pdms = PdmsBuilder::FromSynthetic(synthetic)
                  .WithOptions(options)
                  .Build()
                  .value();
  Session& session = pdms.session();
  session.Discover();
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Step());
  }
  state.counters["factors"] = static_cast<double>(pdms.UniqueFactorCount());
}
BENCHMARK(BM_EngineInferenceRound)->Arg(10)->Arg(20)->Arg(40);

void BM_ProbeDiscovery(benchmark::State& state) {
  Rng rng(3);
  const Digraph graph =
      topology::BarabasiAlbert(static_cast<size_t>(state.range(0)), 2, &rng);
  MappingNetworkOptions network_options;
  network_options.attributes_per_schema = 10;
  const SyntheticPdms synthetic =
      BuildSyntheticPdms(graph, network_options, &rng);
  EngineOptions options;
  options.probe_ttl = 4;
  for (auto _ : state) {
    Pdms pdms = PdmsBuilder::FromSynthetic(synthetic)
                    .WithOptions(options)
                    .Build()
                    .value();
    benchmark::DoNotOptimize(pdms.session().Discover());
  }
}
BENCHMARK(BM_ProbeDiscovery)->Arg(10)->Arg(20);

void BM_SchemaAlignment(benchmark::State& state) {
  const auto family = MakeBibliographicOntologies();
  AlignerOptions options;
  options.technique = static_cast<AlignmentTechnique>(state.range(0));
  Aligner aligner(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aligner.Align(family[0].schema, family[1].schema));
  }
  state.SetLabel(std::string(AlignmentTechniqueName(options.technique)));
}
BENCHMARK(BM_SchemaAlignment)->DenseRange(0, 3);

void BM_EditDistance(benchmark::State& state) {
  const std::string a = "organizationalStructure";
  const std::string b = "organisationStructure";
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistance);

}  // namespace
}  // namespace pdms

BENCHMARK_MAIN();
