// Reproduces Figure 7: convergence of the iterative (embedded, loopy)
// message passing algorithm on the example factor graph of Figure 4 with
// priors at 0.7, ∆ = 0.1 and feedback f1+, f2−, f3−.
//
// Prints the posterior P(m = correct) of all five mappings after every
// iteration, plus a sweep over random scale-free networks backing the
// Section 5.1.1 claim that convergence takes about ten iterations.

#include <cstdio>

#include "bench/fixtures.h"
#include "factor/exact.h"
#include "graph/topology.h"
#include "util/stats.h"
#include "util/table.h"

namespace pdms {
namespace {

void RunExampleTrajectory() {
  EngineOptions options;
  options.default_prior = 0.7;
  options.delta_override = 0.1;
  options.tolerance = 1e-7;
  bench::IntroFixture fixture = bench::MakeIntroFixture(options);
  bench::InjectPaperFeedback(fixture);

  Pdms& pdms = fixture.pdms;
  Session& session = pdms.session();
  const topology::ExampleEdges& e = fixture.edges;
  TrajectoryRecorder recorder({MappingVarKey{e.m12, 0}, MappingVarKey{e.m23, 0},
                               MappingVarKey{e.m34, 0}, MappingVarKey{e.m41, 0},
                               MappingVarKey{e.m24, 0}});
  session.AddObserver(&recorder);

  const ConvergenceReport report = session.Converge(30);

  std::printf("Figure 7 — convergence of iterative message passing\n");
  std::printf("(example graph, priors 0.7, delta 0.1, feedback f1+ f2- f3-)\n\n");
  TextTable table;
  table.SetHeader({"iteration", "m12", "m23", "m34", "m41", "m24"});
  const auto& trajectory = recorder.trajectory();
  for (size_t r = 0; r < trajectory.size(); ++r) {
    std::vector<double> row{static_cast<double>(r + 1)};
    row.insert(row.end(), trajectory[r].begin(), trajectory[r].end());
    table.AddNumericRow(row, 4);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("converged=%s after %zu iterations\n\n",
              report.converged ? "yes" : "no", report.rounds);

  // Reference: exact marginals of the same graph.
  std::vector<MappingVarKey> vars;
  const FactorGraph global = pdms.BuildGlobalFactorGraph(&vars);
  std::printf("exact marginals (variable elimination):\n");
  for (VarId v = 0; v < vars.size(); ++v) {
    Result<Belief> exact = ExactMarginalVariableElimination(global, v);
    std::printf("  %-12s exact=%.4f  loopy=%.4f\n",
                vars[v].ToString().c_str(),
                exact.ok() ? exact->ProbabilityCorrect() : -1.0,
                pdms.Posterior(vars[v].edge, vars[v].attribute));
  }
  std::printf("\n");
}

void RunConvergenceSweep() {
  std::printf(
      "Section 5.1.1 — iterations to convergence on random scale-free "
      "PDMS\n(BA networks, 10-attribute schemas, 20%% mapping errors, "
      "tolerance 1e-7,\n cycle length capped at 4 per the Section 5.1.2 "
      "guidance for dense graphs)\n\n");
  TextTable table;
  table.SetHeader({"peers", "mappings", "factors", "rounds", "converged"});
  OnlineStats rounds_stats;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Digraph graph = topology::BarabasiAlbert(10 + seed, 2, &rng);
    MappingNetworkOptions network_options;
    network_options.attributes_per_schema = 10;
    network_options.error_rate = 0.2;
    const SyntheticPdms synthetic =
        BuildSyntheticPdms(graph, network_options, &rng);
    EngineOptions options;
    options.probe_ttl = 4;
    options.closure_limits.max_cycle_length = 4;
    options.closure_limits.max_path_length = 3;
    options.tolerance = 1e-2;  // "approximate results" (Section 5.1.1)
    options.damping = 0.25;    // dense evidence graphs oscillate undamped
    Result<Pdms> built =
        PdmsBuilder::FromSynthetic(synthetic).WithOptions(options).Build();
    if (!built.ok()) continue;
    Pdms pdms = std::move(built).value();
    const size_t factors = pdms.session().Discover();
    const ConvergenceReport report = pdms.session().Converge(100);
    rounds_stats.Add(static_cast<double>(report.rounds));
    table.AddRow({StrFormat("%zu", graph.node_count()),
                  StrFormat("%zu", graph.edge_count()),
                  StrFormat("%zu", factors), StrFormat("%zu", report.rounds),
                  report.converged ? "yes" : "no"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("mean rounds to convergence: %.1f (paper: \"ten iterations "
              "usually\")\n",
              rounds_stats.mean());
}

}  // namespace
}  // namespace pdms

int main() {
  pdms::RunExampleTrajectory();
  pdms::RunConvergenceSweep();
  return 0;
}
