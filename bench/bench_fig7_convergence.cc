// Reproduces Figure 7: convergence of the iterative (embedded, loopy)
// message passing algorithm on the example factor graph of Figure 4 with
// priors at 0.7, ∆ = 0.1 and feedback f1+, f2−, f3−.
//
// Prints the posterior P(m = correct) of all five mappings after every
// iteration, plus a sweep over random scale-free networks backing the
// Section 5.1.1 claim that convergence takes about ten iterations.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/fixtures.h"
#include "factor/exact.h"
#include "graph/topology.h"
#include "util/stats.h"
#include "util/table.h"

namespace pdms {
namespace {

void RunExampleTrajectory() {
  EngineOptions options;
  options.default_prior = 0.7;
  options.delta_override = 0.1;
  options.tolerance = 1e-7;
  bench::IntroFixture fixture = bench::MakeIntroFixture(options);
  bench::InjectPaperFeedback(fixture);

  Pdms& pdms = fixture.pdms;
  Session& session = pdms.session();
  const topology::ExampleEdges& e = fixture.edges;
  TrajectoryRecorder recorder({MappingVarKey{e.m12, 0}, MappingVarKey{e.m23, 0},
                               MappingVarKey{e.m34, 0}, MappingVarKey{e.m41, 0},
                               MappingVarKey{e.m24, 0}});
  session.AddObserver(&recorder);

  const ConvergenceReport report = session.Converge(30);

  std::printf("Figure 7 — convergence of iterative message passing\n");
  std::printf("(example graph, priors 0.7, delta 0.1, feedback f1+ f2- f3-)\n\n");
  TextTable table;
  table.SetHeader({"iteration", "m12", "m23", "m34", "m41", "m24"});
  const auto& trajectory = recorder.trajectory();
  for (size_t r = 0; r < trajectory.size(); ++r) {
    std::vector<double> row{static_cast<double>(r + 1)};
    row.insert(row.end(), trajectory[r].begin(), trajectory[r].end());
    table.AddNumericRow(row, 4);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("converged=%s after %zu iterations\n\n",
              report.converged ? "yes" : "no", report.rounds);

  // Reference: exact marginals of the same graph.
  std::vector<MappingVarKey> vars;
  const FactorGraph global = pdms.BuildGlobalFactorGraph(&vars);
  std::printf("exact marginals (variable elimination):\n");
  for (VarId v = 0; v < vars.size(); ++v) {
    Result<Belief> exact = ExactMarginalVariableElimination(global, v);
    std::printf("  %-12s exact=%.4f  loopy=%.4f\n",
                vars[v].ToString().c_str(),
                exact.ok() ? exact->ProbabilityCorrect() : -1.0,
                pdms.Posterior(vars[v].edge, vars[v].attribute));
  }
  std::printf("\n");
}

/// Quantized rerun: the same Figure 7 trajectory per precision tier. The
/// adaptive fixed-point log-odds encoding promises converged posteriors
/// within the per-value error budget of the exact run; this asserts it.
int RunQuantizedTiers() {
  auto converged_posteriors = [](double budget) {
    EngineOptions options;
    options.default_prior = 0.7;
    options.delta_override = 0.1;
    // A wire carrying budget-eps values cannot certify a residual finer
    // than its quantization step (coarse budgets settle into a one-quantum
    // limit cycle instead of a 1e-7 fixed point); the accuracy guarantee
    // is on the converged posteriors, asserted below.
    options.tolerance = std::max(1e-7, budget / 8.0);
    options.value_precision.error_budget = budget;
    bench::IntroFixture fixture = bench::MakeIntroFixture(options);
    bench::InjectPaperFeedback(fixture);
    const ConvergenceReport report = fixture.pdms.session().Converge(60);
    const topology::ExampleEdges& e = fixture.edges;
    std::vector<double> posteriors;
    for (EdgeId m : {e.m12, e.m23, e.m34, e.m41, e.m24}) {
      posteriors.push_back(fixture.pdms.Posterior(m, 0));
    }
    posteriors.push_back(report.converged ? 1.0 : 0.0);
    return posteriors;
  };

  const std::vector<double> exact = converged_posteriors(0.0);
  std::printf("quantized value encoding — converged posteriors vs exact "
              "wire values:\n");
  TextTable table;
  table.SetHeader({"error budget", "converged", "max |delta|", "within budget"});
  bool ok = true;
  for (double budget : {1e-2, 1e-3, 1e-4}) {
    const std::vector<double> quantized = converged_posteriors(budget);
    double worst = 0.0;
    for (size_t i = 0; i + 1 < exact.size(); ++i) {
      worst = std::max(worst, std::abs(quantized[i] - exact[i]));
    }
    const bool converged = quantized.back() == 1.0;
    const bool within = converged && worst <= budget;
    ok = ok && within;
    table.AddRow({StrFormat("%.0e", budget), converged ? "yes" : "no",
                  StrFormat("%.2e", worst), within ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());
  if (!ok) std::fprintf(stderr, "FAIL: quantized posteriors broke budget\n");
  return ok ? 0 : 1;
}

void RunConvergenceSweep() {
  std::printf(
      "Section 5.1.1 — iterations to convergence on random scale-free "
      "PDMS\n(BA networks, 10-attribute schemas, 20%% mapping errors, "
      "tolerance 1e-7,\n cycle length capped at 4 per the Section 5.1.2 "
      "guidance for dense graphs)\n\n");
  TextTable table;
  table.SetHeader({"peers", "mappings", "factors", "rounds", "converged"});
  OnlineStats rounds_stats;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Digraph graph = topology::BarabasiAlbert(10 + seed, 2, &rng);
    MappingNetworkOptions network_options;
    network_options.attributes_per_schema = 10;
    network_options.error_rate = 0.2;
    const SyntheticPdms synthetic =
        BuildSyntheticPdms(graph, network_options, &rng);
    EngineOptions options;
    options.probe_ttl = 4;
    options.closure_limits.max_cycle_length = 4;
    options.closure_limits.max_path_length = 3;
    options.tolerance = 1e-2;  // "approximate results" (Section 5.1.1)
    options.damping = 0.25;    // dense evidence graphs oscillate undamped
    Result<Pdms> built =
        PdmsBuilder::FromSynthetic(synthetic).WithOptions(options).Build();
    if (!built.ok()) continue;
    Pdms pdms = std::move(built).value();
    const size_t factors = pdms.session().Discover();
    const ConvergenceReport report = pdms.session().Converge(100);
    rounds_stats.Add(static_cast<double>(report.rounds));
    table.AddRow({StrFormat("%zu", graph.node_count()),
                  StrFormat("%zu", graph.edge_count()),
                  StrFormat("%zu", factors), StrFormat("%zu", report.rounds),
                  report.converged ? "yes" : "no"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("mean rounds to convergence: %.1f (paper: \"ten iterations "
              "usually\")\n",
              rounds_stats.mean());
}

}  // namespace
}  // namespace pdms

int main() {
  pdms::RunExampleTrajectory();
  pdms::RunConvergenceSweep();
  return pdms::RunQuantizedTiers();
}
