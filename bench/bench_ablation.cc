// Ablation studies for the design choices DESIGN.md calls out. Not paper
// figures — these quantify how much each mechanism contributes:
//
//  A. ∆ sensitivity: how the compensation probability affects detection
//     (the paper fixes ∆ = 1/(s−1); what if it is badly estimated?).
//  B. Granularity: fine (per-attribute) vs coarse (per-mapping) quality.
//  C. Damping: convergence behaviour on dense evidence graphs.
//  D. Closure-length cap: evidence quality vs discovery cost (the
//     Section 5.1.2 TTL trade-off).

#include <cstdio>

#include "bench/fixtures.h"
#include "graph/topology.h"
#include "util/table.h"

namespace pdms {
namespace {

void DeltaSensitivity() {
  std::printf("A. delta sensitivity (intro example, true delta would be "
              "1/10)\n");
  TextTable table;
  table.SetHeader({"delta", "P(m23)", "P(m24)", "classified correctly"});
  for (double delta : {0.001, 0.01, 0.05, 0.1, 0.2, 0.4}) {
    EngineOptions options;
    options.delta_override = delta;
    bench::IntroFixture fixture = bench::MakeIntroFixture(options);
    fixture.pdms.session().Discover();
    fixture.pdms.session().Converge(200);
    const double m23 = fixture.pdms.Posterior(fixture.edges.m23, 0);
    const double m24 = fixture.pdms.Posterior(fixture.edges.m24, 0);
    const bool ok = m23 > 0.5 && m24 < 0.5;
    table.AddRow({StrFormat("%.3f", delta), StrFormat("%.4f", m23),
                  StrFormat("%.4f", m24), ok ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void GranularityAblation() {
  std::printf("B. fine vs coarse granularity (m24 wrong on 1 of 11 "
              "attributes)\n");
  TextTable table;
  table.SetHeader({"granularity", "factors", "P(m24, attr0)",
                   "P(m24, attr1)", "note"});
  for (Granularity granularity : {Granularity::kFine, Granularity::kCoarse}) {
    EngineOptions options;
    options.delta_override = 0.1;
    options.granularity = granularity;
    bench::IntroFixture fixture = bench::MakeIntroFixture(options);
    const size_t factors = fixture.pdms.session().Discover();
    fixture.pdms.session().Converge(200);
    if (granularity == Granularity::kFine) {
      table.AddRow({"fine", StrFormat("%zu", factors),
                    StrFormat("%.3f", fixture.pdms.Posterior(
                                          fixture.edges.m24, 0)),
                    StrFormat("%.3f", fixture.pdms.Posterior(
                                          fixture.edges.m24, 1)),
                    "only the garbled attribute is penalized"});
    } else {
      const double coarse = fixture.pdms.PosteriorCoarse(fixture.edges.m24);
      table.AddRow({"coarse", StrFormat("%zu", factors),
                    StrFormat("%.3f", coarse), StrFormat("%.3f", coarse),
                    "whole mapping penalized for one bad attribute"});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

void DampingAblation() {
  std::printf("C. damping on a dense evidence graph (BA(16,2), 20%% errors,"
              " tolerance 1e-3)\n");
  TextTable table;
  table.SetHeader({"damping", "rounds", "converged", "accuracy@0.5"});
  for (double damping : {0.0, 0.1, 0.25, 0.5}) {
    Rng rng(4);
    const Digraph graph = topology::BarabasiAlbert(16, 2, &rng);
    MappingNetworkOptions network_options;
    network_options.attributes_per_schema = 10;
    network_options.error_rate = 0.2;
    const SyntheticPdms synthetic =
        BuildSyntheticPdms(graph, network_options, &rng);
    EngineOptions options;
    options.probe_ttl = 4;
    options.closure_limits.max_cycle_length = 4;
    options.closure_limits.max_path_length = 3;
    options.tolerance = 1e-3;
    options.damping = damping;
    Pdms pdms = PdmsBuilder::FromSynthetic(synthetic)
                    .WithOptions(options)
                    .Build()
                    .value();
    pdms.session().Discover();
    const ConvergenceReport report = pdms.session().Converge(300);
    size_t right = 0;
    size_t total = 0;
    for (EdgeId e : synthetic.graph.LiveEdges()) {
      for (AttributeId a = 0; a < 10; ++a) {
        if (!synthetic.mappings[e].Apply(a).has_value()) continue;
        const bool truly_correct = synthetic.ground_truth[e][a];
        if ((pdms.Posterior(e, a) > 0.5) == truly_correct) ++right;
        ++total;
      }
    }
    table.AddRow({StrFormat("%.2f", damping), StrFormat("%zu", report.rounds),
                  report.converged ? "yes" : "no",
                  StrFormat("%.3f", static_cast<double>(right) /
                                        static_cast<double>(total))});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void ClosureLengthAblation() {
  std::printf("D. closure length cap (BA(20,2), 20%% errors): evidence vs "
              "cost\n");
  TextTable table;
  table.SetHeader({"max cycle len", "factors", "probes", "accuracy@0.5"});
  for (size_t cap : {3u, 4u, 5u, 6u}) {
    Rng rng(9);
    const Digraph graph = topology::BarabasiAlbert(20, 2, &rng);
    MappingNetworkOptions network_options;
    network_options.attributes_per_schema = 10;
    network_options.error_rate = 0.2;
    const SyntheticPdms synthetic =
        BuildSyntheticPdms(graph, network_options, &rng);
    EngineOptions options;
    options.probe_ttl = static_cast<uint32_t>(cap);
    options.closure_limits.max_cycle_length = cap;
    options.closure_limits.max_path_length = cap - 1;
    options.damping = 0.25;
    options.tolerance = 1e-3;
    Pdms pdms = PdmsBuilder::FromSynthetic(synthetic)
                    .WithOptions(options)
                    .Build()
                    .value();
    const size_t factors = pdms.session().Discover();
    pdms.session().Converge(200);
    size_t right = 0;
    size_t total = 0;
    for (EdgeId e : synthetic.graph.LiveEdges()) {
      for (AttributeId a = 0; a < 10; ++a) {
        if (!synthetic.mappings[e].Apply(a).has_value()) continue;
        if ((pdms.Posterior(e, a) > 0.5) ==
            synthetic.ground_truth[e][a]) {
          ++right;
        }
        ++total;
      }
    }
    table.AddRow(
        {StrFormat("%zu", cap), StrFormat("%zu", factors),
         StrFormat("%llu",
                   static_cast<unsigned long long>(
                       pdms.transport().stats().sent[static_cast<size_t>(
                           MessageKind::kProbe)])),
         StrFormat("%.3f",
                   static_cast<double>(right) / static_cast<double>(total))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper (Section 5.1.2): peers can stop lengthening probes once\n"
              "new cycles stop moving posteriors; short closures carry most\n"
              "of the evidence.\n");
}

}  // namespace
}  // namespace pdms

int main() {
  std::printf("Ablations — contribution of individual design choices\n\n");
  pdms::DeltaSensitivity();
  pdms::GranularityAblation();
  pdms::DampingAblation();
  pdms::ClosureLengthAblation();
  return 0;
}
