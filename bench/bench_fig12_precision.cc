// Reproduces Figure 12: precision of erroneous-mapping detection on the
// real-world bibliographic schema workload (our synthetic stand-in for the
// EON Ontology Alignment Contest set) as a function of the threshold θ.
//
// Setup per the paper: ontologies of ~30 concepts aligned automatically,
// priors 0.5, ∆ = 0.1, a single complete inference run (no prior updates).
// A mapping entry is *flagged erroneous* when its posterior falls below θ.
// Precision = correctly flagged / flagged; the paper reports >= 80%
// precision for small θ, a phase transition near θ = 0.6 where about half
// of the erroneous mappings are caught, and a consistent win over random
// guessing (whose precision equals the base error rate).

#include <cmath>
#include <cstdio>

#include "bench/bibliographic_pdms.h"
#include "util/table.h"

namespace pdms {
namespace {

void Run() {
  EngineOptions options;
  options.default_prior = 0.5;
  options.delta_override = 0.1;
  options.probe_ttl = 4;
  options.closure_limits.max_cycle_length = 4;
  options.closure_limits.max_path_length = 3;
  options.tolerance = 1e-4;
  options.damping = 0.5;  // dense evidence graph: damp loopy oscillation

  bench::BibliographicPdms workload = bench::MakeBibliographicPdms(options);
  Pdms& pdms = workload.pdms;
  Session& session = pdms.session();

  const size_t total = workload.entries.size();
  const size_t erroneous = workload.ErroneousCount();
  std::printf("Figure 12 — precision of erroneous-mapping detection\n");
  std::printf("(six bibliographic ontologies, automatic alignment)\n\n");
  std::printf("generated mappings (attribute level): %zu\n", total);
  std::printf("truly erroneous:                      %zu (%.1f%%)\n",
              erroneous, 100.0 * static_cast<double>(erroneous) /
                             static_cast<double>(total));
  std::printf("(paper: 396 generated mappings, 86 erroneous)\n\n");

  const size_t factors = session.Discover();
  const ConvergenceReport report = session.Converge(100);

  // A handful of variables sit on frustrated loops (conflicting hard
  // evidence) where plain loopy BP oscillates ([15]); average posteriors
  // over a short window, the standard stabilization.
  constexpr size_t kWindow = 10;
  std::vector<double> posteriors(total, 0.0);
  for (size_t round = 0; round < kWindow; ++round) {
    session.Step();
    for (size_t i = 0; i < total; ++i) {
      posteriors[i] += pdms.Posterior(workload.entries[i].edge,
                                      workload.entries[i].attribute);
    }
  }
  size_t stable = 0;
  for (size_t i = 0; i < total; ++i) {
    posteriors[i] /= static_cast<double>(kWindow);
    if (std::abs(posteriors[i] - pdms.Posterior(
                                     workload.entries[i].edge,
                                     workload.entries[i].attribute)) < 1e-3) {
      ++stable;
    }
  }
  std::printf(
      "factor replicas: %zu, inference rounds: %zu+%zu, stable variables: "
      "%zu/%zu\n(unstable ones oscillate on frustrated loops; posteriors "
      "averaged over the last %zu rounds)\n\n",
      factors, report.rounds, kWindow, stable, total, kWindow);

  const double random_precision =
      static_cast<double>(erroneous) / static_cast<double>(total);
  TextTable table;
  table.SetHeader({"theta", "flagged", "correct", "precision", "recall",
                   "random precision"});
  for (double theta = 0.05; theta < 1.0; theta += 0.05) {
    size_t flagged = 0;
    size_t correct = 0;
    for (size_t i = 0; i < total; ++i) {
      if (posteriors[i] < theta) {
        ++flagged;
        if (workload.erroneous[i]) ++correct;
      }
    }
    const double precision =
        flagged == 0 ? 1.0
                     : static_cast<double>(correct) / static_cast<double>(flagged);
    const double recall =
        erroneous == 0 ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(erroneous);
    table.AddRow({StrFormat("%.2f", theta), StrFormat("%zu", flagged),
                  StrFormat("%zu", correct), StrFormat("%.3f", precision),
                  StrFormat("%.3f", recall),
                  StrFormat("%.3f", random_precision)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "paper: precision >= 0.8 at small theta, phase transition near\n"
      "theta = 0.6 (about 50%% of erroneous mappings caught), always above\n"
      "the random-guess precision.\n");
}

}  // namespace
}  // namespace pdms

int main() {
  pdms::Run();
  return 0;
}
