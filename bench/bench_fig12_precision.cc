// Reproduces Figure 12: precision of erroneous-mapping detection on the
// real-world bibliographic schema workload (our synthetic stand-in for the
// EON Ontology Alignment Contest set) as a function of the threshold θ.
//
// Setup per the paper: ontologies of ~30 concepts aligned automatically,
// priors 0.5, ∆ = 0.1, a single complete inference run (no prior updates).
// A mapping entry is *flagged erroneous* when its posterior falls below θ.
// Precision = correctly flagged / flagged; the paper reports >= 80%
// precision for small θ, a phase transition near θ = 0.6 where about half
// of the erroneous mappings are caught, and a consistent win over random
// guessing (whose precision equals the base error rate).

#include <cmath>
#include <cstdio>

#include "bench/bibliographic_pdms.h"
#include "util/table.h"

namespace pdms {
namespace {

EngineOptions Fig12Options(double value_budget) {
  EngineOptions options;
  options.default_prior = 0.5;
  options.delta_override = 0.1;
  options.probe_ttl = 4;
  options.closure_limits.max_cycle_length = 4;
  options.closure_limits.max_path_length = 3;
  options.tolerance = 1e-4;
  options.damping = 0.5;  // dense evidence graph: damp loopy oscillation
  options.value_precision.error_budget = value_budget;
  return options;
}

void Run() {
  EngineOptions options = Fig12Options(0.0);

  bench::BibliographicPdms workload = bench::MakeBibliographicPdms(options);
  Pdms& pdms = workload.pdms;
  Session& session = pdms.session();

  const size_t total = workload.entries.size();
  const size_t erroneous = workload.ErroneousCount();
  std::printf("Figure 12 — precision of erroneous-mapping detection\n");
  std::printf("(six bibliographic ontologies, automatic alignment)\n\n");
  std::printf("generated mappings (attribute level): %zu\n", total);
  std::printf("truly erroneous:                      %zu (%.1f%%)\n",
              erroneous, 100.0 * static_cast<double>(erroneous) /
                             static_cast<double>(total));
  std::printf("(paper: 396 generated mappings, 86 erroneous)\n\n");

  const size_t factors = session.Discover();
  const ConvergenceReport report = session.Converge(100);

  // A handful of variables sit on frustrated loops (conflicting hard
  // evidence) where plain loopy BP oscillates ([15]); average posteriors
  // over a short window, the standard stabilization.
  constexpr size_t kWindow = 10;
  std::vector<double> posteriors(total, 0.0);
  for (size_t round = 0; round < kWindow; ++round) {
    session.Step();
    for (size_t i = 0; i < total; ++i) {
      posteriors[i] += pdms.Posterior(workload.entries[i].edge,
                                      workload.entries[i].attribute);
    }
  }
  size_t stable = 0;
  for (size_t i = 0; i < total; ++i) {
    posteriors[i] /= static_cast<double>(kWindow);
    if (std::abs(posteriors[i] - pdms.Posterior(
                                     workload.entries[i].edge,
                                     workload.entries[i].attribute)) < 1e-3) {
      ++stable;
    }
  }
  std::printf(
      "factor replicas: %zu, inference rounds: %zu+%zu, stable variables: "
      "%zu/%zu\n(unstable ones oscillate on frustrated loops; posteriors "
      "averaged over the last %zu rounds)\n\n",
      factors, report.rounds, kWindow, stable, total, kWindow);

  const double random_precision =
      static_cast<double>(erroneous) / static_cast<double>(total);
  TextTable table;
  table.SetHeader({"theta", "flagged", "correct", "precision", "recall",
                   "random precision"});
  for (double theta = 0.05; theta < 1.0; theta += 0.05) {
    size_t flagged = 0;
    size_t correct = 0;
    for (size_t i = 0; i < total; ++i) {
      if (posteriors[i] < theta) {
        ++flagged;
        if (workload.erroneous[i]) ++correct;
      }
    }
    const double precision =
        flagged == 0 ? 1.0
                     : static_cast<double>(correct) / static_cast<double>(flagged);
    const double recall =
        erroneous == 0 ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(erroneous);
    table.AddRow({StrFormat("%.2f", theta), StrFormat("%zu", flagged),
                  StrFormat("%zu", correct), StrFormat("%.3f", precision),
                  StrFormat("%.3f", recall),
                  StrFormat("%.3f", random_precision)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "paper: precision >= 0.8 at small theta, phase transition near\n"
      "theta = 0.6 (about 50%% of erroneous mappings caught), always above\n"
      "the random-guess precision.\n");
}

/// One full detection pipeline (discover, converge, stabilization window)
/// at the given value-error budget. `final_posteriors` are the post-window
/// posteriors; `stable[i]` marks variables whose window average agrees
/// with the final value (the same criterion Run() reports).
struct DetectionRun {
  std::vector<double> final_posteriors;
  std::vector<bool> stable;
  size_t stable_count = 0;
};

DetectionRun RunDetection(double value_budget) {
  bench::BibliographicPdms workload =
      bench::MakeBibliographicPdms(Fig12Options(value_budget));
  Pdms& pdms = workload.pdms;
  Session& session = pdms.session();
  session.Discover();
  session.Converge(100);

  constexpr size_t kWindow = 10;
  const size_t total = workload.entries.size();
  std::vector<double> averaged(total, 0.0);
  for (size_t round = 0; round < kWindow; ++round) {
    session.Step();
    for (size_t i = 0; i < total; ++i) {
      averaged[i] += pdms.Posterior(workload.entries[i].edge,
                                    workload.entries[i].attribute);
    }
  }
  DetectionRun run;
  run.final_posteriors.resize(total);
  run.stable.resize(total);
  for (size_t i = 0; i < total; ++i) {
    run.final_posteriors[i] = pdms.Posterior(workload.entries[i].edge,
                                             workload.entries[i].attribute);
    run.stable[i] = std::abs(averaged[i] / static_cast<double>(kWindow) -
                             run.final_posteriors[i]) < 1e-3;
    if (run.stable[i]) ++run.stable_count;
  }
  return run;
}

/// Quantized rerun of the detection workload per precision tier. Settled
/// posteriors must stay within the error budget of the exact-wire run;
/// variables oscillating on frustrated loops (in either run) are excluded,
/// but quantization must not destabilize the workload — at least 95% of
/// the variables have to remain comparable.
int RunQuantizedTiers() {
  const DetectionRun exact = RunDetection(0.0);
  const size_t total = exact.final_posteriors.size();
  std::printf("\nquantized value encoding — settled posteriors vs exact "
              "wire values:\n");
  TextTable table;
  table.SetHeader({"error budget", "compared", "max |delta|", "within budget"});
  bool ok = true;
  for (double budget : {1e-2, 1e-3, 1e-4}) {
    const DetectionRun quantized = RunDetection(budget);
    size_t compared = 0;
    double worst = 0.0;
    for (size_t i = 0; i < total; ++i) {
      if (!exact.stable[i] || !quantized.stable[i]) continue;
      ++compared;
      worst = std::max(worst, std::abs(quantized.final_posteriors[i] -
                                       exact.final_posteriors[i]));
    }
    const bool within = worst <= budget && compared * 100 >= total * 95;
    ok = ok && within;
    table.AddRow({StrFormat("%.0e", budget),
                  StrFormat("%zu/%zu", compared, total),
                  StrFormat("%.2e", worst), within ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());
  if (!ok) std::fprintf(stderr, "FAIL: quantized posteriors broke budget\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace pdms

int main() {
  pdms::Run();
  return pdms::RunQuantizedTiers();
}
