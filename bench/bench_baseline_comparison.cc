// Reproduces the Section 6 comparison against the authors' earlier
// Chatty-Web heuristics [2, 3], which analyzed cycles while "ignoring all
// interdependencies among the mappings and cycles":
//
//  * On the introductory example, the old heuristics disqualify several
//    correct mappings, while the message passing approach infers all five
//    correctly.
//  * On the bibliographic alignment workload (Figure 12's setting), the
//    probabilistic approach dominates both heuristics and random guessing
//    on precision at matched recall.

#include <cstdio>

#include "baseline/chatty_web.h"
#include "baseline/random_guess.h"
#include "bench/bibliographic_pdms.h"
#include "bench/fixtures.h"
#include "util/table.h"

namespace pdms {
namespace {

std::vector<ClosureEvidence> EvidenceFromPdms(const Pdms& pdms) {
  std::set<FactorId> seen;
  std::vector<ClosureEvidence> evidence;
  for (PeerId p = 0; p < pdms.peer_count(); ++p) {
    for (const Peer::ReplicaView& view : pdms.peer(p).ReplicaViews()) {
      if (!seen.insert(view.id).second) continue;
      evidence.push_back(ClosureEvidence{view.members, view.sign});
    }
  }
  return evidence;
}

void IntroComparison() {
  std::printf("introductory example (theta = 0.5, truth: only m24 wrong):\n\n");
  EngineOptions options;
  options.delta_override = 0.1;
  bench::IntroFixture fixture = bench::MakeIntroFixture(options);
  bench::InjectPaperFeedback(fixture);
  fixture.pdms.session().Converge(100);

  const auto evidence = EvidenceFromPdms(fixture.pdms);
  ChattyWebOptions hard;
  hard.variant = ChattyWebVariant::kHardExclusion;
  ChattyWebOptions naive;
  naive.variant = ChattyWebVariant::kNaiveBayes;
  const auto hard_scores = ChattyWebAnalyze(evidence, hard);
  const auto naive_scores = ChattyWebAnalyze(evidence, naive);

  TextTable table;
  table.SetHeader({"mapping", "truth", "message passing", "chatty naive",
                   "chatty hard"});
  const topology::ExampleEdges& e = fixture.edges;
  struct Row {
    const char* name;
    EdgeId edge;
    bool correct;
  };
  for (const Row& row : std::vector<Row>{{"m12", e.m12, true},
                                         {"m23", e.m23, true},
                                         {"m34", e.m34, true},
                                         {"m41", e.m41, true},
                                         {"m24", e.m24, false}}) {
    const MappingVarKey var{row.edge, 0};
    auto verdict = [](double score) {
      return StrFormat("%.3f %s", score, score > 0.5 ? "keep" : "drop");
    };
    table.AddRow({row.name, row.correct ? "correct" : "WRONG",
                  verdict(fixture.pdms.Posterior(row.edge, 0)),
                  verdict(naive_scores.count(var) > 0 ? naive_scores.at(var)
                                                      : 0.5),
                  verdict(hard_scores.count(var) > 0 ? hard_scores.at(var)
                                                     : 0.5)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "paper: the former heuristics disqualify correct mappings; the\n"
      "message passing approach infers all five correctly.\n\n");
}

void BibliographicComparison() {
  std::printf("bibliographic workload, detection quality at theta = 0.5:\n\n");
  EngineOptions options;
  options.delta_override = 0.1;
  options.probe_ttl = 4;
  options.closure_limits.max_cycle_length = 4;
  options.closure_limits.max_path_length = 3;
  bench::BibliographicPdms workload = bench::MakeBibliographicPdms(options);
  workload.pdms.session().Discover();
  workload.pdms.session().Converge(60);

  const auto evidence = EvidenceFromPdms(workload.pdms);
  ChattyWebOptions naive;
  naive.variant = ChattyWebVariant::kNaiveBayes;
  const auto naive_scores = ChattyWebAnalyze(evidence, naive);
  ChattyWebOptions hard;
  hard.variant = ChattyWebVariant::kHardExclusion;
  const auto hard_scores = ChattyWebAnalyze(evidence, hard);

  Rng rng(5);
  const auto random_flags = RandomGuessErroneous(
      workload.entries,
      static_cast<double>(workload.ErroneousCount()) /
          static_cast<double>(workload.entries.size()),
      &rng);

  auto score_method = [&](const char* name, auto flagged_fn) {
    size_t flagged = 0;
    size_t correct = 0;
    for (size_t i = 0; i < workload.entries.size(); ++i) {
      if (!flagged_fn(workload.entries[i])) continue;
      ++flagged;
      if (workload.erroneous[i]) ++correct;
    }
    const double precision =
        flagged == 0 ? 1.0
                     : static_cast<double>(correct) /
                           static_cast<double>(flagged);
    const double recall = static_cast<double>(correct) /
                          static_cast<double>(workload.ErroneousCount());
    return std::vector<std::string>{name, StrFormat("%zu", flagged),
                                    StrFormat("%.3f", precision),
                                    StrFormat("%.3f", recall)};
  };

  TextTable table;
  table.SetHeader({"method", "flagged", "precision", "recall"});
  table.AddRow(score_method("message passing", [&](const MappingVarKey& var) {
    return workload.pdms.Posterior(var.edge, var.attribute) < 0.5;
  }));
  table.AddRow(score_method("chatty-web naive", [&](const MappingVarKey& var) {
    const auto it = naive_scores.find(var);
    return it != naive_scores.end() && it->second < 0.5;
  }));
  table.AddRow(score_method("chatty-web hard", [&](const MappingVarKey& var) {
    const auto it = hard_scores.find(var);
    return it != hard_scores.end() && it->second < 0.5;
  }));
  table.AddRow(score_method("random guess", [&](const MappingVarKey& var) {
    return random_flags.at(var);
  }));
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace pdms

int main() {
  std::printf("Section 6 — comparison with the earlier Chatty-Web "
              "heuristics\n\n");
  pdms::IntroComparison();
  pdms::BibliographicComparison();
  return 0;
}
