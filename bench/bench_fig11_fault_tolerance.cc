// Reproduces Figure 11: robustness of the embedded message passing scheme
// against lost messages. For every remote belief message, the network
// delivers it only with probability P(send); the algorithm must still
// converge to the same posteriors, just more slowly.
//
// Setup per the paper: example network, ∆ = 0.1, priors at 0.8, feedback
// f1+, f2−, f3−. The paper observes convergence even when 90% of messages
// are discarded, with the required iterations growing roughly linearly in
// the discard rate.

#include <cstdio>

#include "bench/fixtures.h"
#include "util/table.h"

namespace pdms {
namespace {

struct LossRun {
  double p_send = 1.0;
  size_t rounds = 0;
  bool converged = false;
  double m24_posterior = 0.0;
  double max_deviation = 0.0;
};

LossRun RunWithLoss(double p_send, const std::vector<double>* reference,
                    std::vector<double>* posteriors_out) {
  EngineOptions options;
  options.default_prior = 0.8;
  options.delta_override = 0.1;
  options.network.send_probability = p_send;
  options.network.seed = 1234;
  options.tolerance = 1e-7;
  bench::IntroFixture fixture = bench::MakeIntroFixture(options);
  bench::InjectPaperFeedback(fixture);
  Pdms& pdms = fixture.pdms;
  const ConvergenceReport report = pdms.session().Converge(4000);

  LossRun run;
  run.p_send = p_send;
  run.rounds = report.rounds;
  run.converged = report.converged;
  run.m24_posterior = pdms.Posterior(fixture.edges.m24, 0);

  std::vector<double> posteriors;
  for (EdgeId e :
       {fixture.edges.m12, fixture.edges.m23, fixture.edges.m34,
        fixture.edges.m41, fixture.edges.m24}) {
    posteriors.push_back(pdms.Posterior(e, 0));
  }
  if (reference != nullptr) {
    for (size_t i = 0; i < posteriors.size(); ++i) {
      run.max_deviation = std::max(
          run.max_deviation, std::abs(posteriors[i] - (*reference)[i]));
    }
  }
  if (posteriors_out != nullptr) *posteriors_out = posteriors;
  return run;
}

void Run() {
  std::printf("Figure 11 — robustness against lost messages\n");
  std::printf("(example graph, priors 0.8, delta 0.1, feedback f1+ f2- f3-)\n\n");

  std::vector<double> reference;
  const LossRun baseline = RunWithLoss(1.0, nullptr, &reference);

  TextTable table;
  table.SetHeader({"P(send)", "rounds", "converged", "P(m24)",
                   "max |dev| vs lossless", "rounds x P(send)"});
  for (double p_send : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    const LossRun run = RunWithLoss(p_send, &reference, nullptr);
    table.AddRow({StrFormat("%.1f", run.p_send),
                  StrFormat("%zu", run.rounds),
                  run.converged ? "yes" : "no",
                  StrFormat("%.4f", run.m24_posterior),
                  StrFormat("%.2e", run.max_deviation),
                  StrFormat("%.1f", static_cast<double>(run.rounds) * p_send)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("lossless baseline: %zu rounds\n", baseline.rounds);
  std::printf(
      "paper: converges even at 90%% loss; iterations grow roughly linearly\n"
      "with the discard rate (the last column should stay near-constant).\n");
}

}  // namespace
}  // namespace pdms

int main() {
  pdms::Run();
  return 0;
}
