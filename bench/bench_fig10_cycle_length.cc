// Reproduces Figure 10: impact of the cycle length on the posterior
// probability, for a single positive cycle of 2..20 mappings, priors 0.5,
// two iterations (the factor graph is a tree, so two iterations are exact)
// and three values of ∆.
//
// The paper's observation: shorter cycles give much stronger evidence;
// past about ten mappings a positive cycle tells you almost nothing, even
// for small ∆ (large schemas where compensating errors are rare).

#include <cmath>
#include <cstdio>

#include "graph/topology.h"
#include "pdms/pdms.h"
#include "util/table.h"

namespace pdms {
namespace {

/// Closed-form posterior for one positive cycle of n mappings with uniform
/// priors (DESIGN.md Section 2).
double ClosedForm(size_t n, double delta) {
  const double half = std::pow(2.0, static_cast<double>(n - 1));
  const double numerator = 1.0 + delta * (half - static_cast<double>(n));
  return numerator / (numerator + delta * (half - 1.0));
}

double EnginePosterior(size_t n, double delta) {
  Rng rng(1);
  const Digraph graph = topology::Ring(n);
  MappingNetworkOptions network_options;
  network_options.attributes_per_schema = 4;
  network_options.error_rate = 0.0;  // all-correct ring -> positive feedback
  const SyntheticPdms synthetic =
      BuildSyntheticPdms(graph, network_options, &rng);
  EngineOptions options;
  options.delta_override = delta;
  options.default_prior = 0.5;
  options.probe_ttl = static_cast<uint32_t>(n);
  options.closure_limits.min_cycle_length = 2;
  options.closure_limits.max_cycle_length = n;
  options.closure_limits.max_path_length = 1;  // no parallel paths in a ring
  Pdms pdms = PdmsBuilder::FromSynthetic(synthetic)
                  .WithOptions(options)
                  .Build()
                  .value();
  pdms.session().Discover();
  // "2 iterations [cycle-free factor-graph]" — exact on this tree.
  pdms.session().Step();
  pdms.session().Step();
  return pdms.Posterior(0, 0);
}

void Run() {
  const double deltas[] = {0.1, 0.05, 0.01};
  std::printf("Figure 10 — impact of cycle length on the posterior\n");
  std::printf("(single positive cycle, priors 0.5, 2 iterations)\n\n");
  TextTable table;
  table.SetHeader({"cycle length", "delta=0.1", "closed(0.1)", "delta=0.05",
                   "closed(0.05)", "delta=0.01", "closed(0.01)"});
  for (size_t n = 2; n <= 20; ++n) {
    std::vector<double> row{static_cast<double>(n)};
    for (double delta : deltas) {
      row.push_back(EnginePosterior(n, delta));
      row.push_back(ClosedForm(n, delta));
    }
    table.AddNumericRow(row, 4);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper: evidence fades with cycle length; cycles beyond ~10\n"
              "mappings provide very little evidence even for delta=0.01\n");
}

}  // namespace
}  // namespace pdms

int main() {
  pdms::Run();
  return 0;
}
