// Reproduces the worked example of Section 4.5 end to end:
//  1. probes discover the cycles f1, f2 and the parallel path f3;
//  2. with the paper's exact factor graph (uniform priors, ∆ = 0.1), the
//     posteriors of p2's mappings converge to ~0.59 (m23) and ~0.3 (m24);
//  3. the faulty mapping is ignored during query routing (θ = 0.5) and the
//     query still reaches every database without false positives;
//  4. the EM prior update moves the priors to ~0.55 and ~0.4.

#include <cstdio>

#include "bench/fixtures.h"
#include "factor/exact.h"
#include "util/table.h"

namespace pdms {
namespace {

void LoadArtDocuments(Pdms* pdms) {
  const std::vector<std::string> creators = {"Henry Peach Robinson",
                                             "Claude Monet", "John Constable"};
  const std::vector<std::string> keywords = {"river wells", "garden pond",
                                             "river dedham"};
  for (PeerId p = 0; p < pdms->peer_count(); ++p) {
    for (uint64_t entity = 0; entity < creators.size(); ++entity) {
      std::map<AttributeId, std::string> values;
      for (AttributeId a = 0; a < bench::kIntroAttrs; ++a) {
        values[a] = StrFormat("filler_e%llu_a%u",
                              static_cast<unsigned long long>(entity), a);
      }
      values[0] = creators[entity];
      values[1] = keywords[entity];
      pdms->peer(p).store().Insert(entity, values);
    }
  }
}

size_t CountFalseRows(const QueryReport& report,
                      const std::vector<std::string>& creators) {
  size_t false_rows = 0;
  for (const auto& [peer, row] : report.rows) {
    if (row.values[0] != creators[row.entity]) ++false_rows;
  }
  return false_rows;
}

void Run() {
  const std::vector<std::string> creators = {"Henry Peach Robinson",
                                             "Claude Monet", "John Constable"};
  std::printf("Section 4.5 — the introductory example, end to end\n\n");

  // --- Phase 0: the standard PDMS (no message passing) -----------------------
  {
    bench::IntroFixture plain = bench::MakeIntroFixture(EngineOptions{});
    LoadArtDocuments(&plain.pdms);
    Query query("q1");
    query.AddProjection(0);   // π Creator
    query.AddSelection(1, "river");  // σ Item LIKE %river%
    const QueryReport report = plain.pdms.session().Query(1, query, 3);
    std::printf("standard PDMS (no quality model):\n");
    std::printf("  peers reached: %zu, rows: %zu, false rows: %zu\n\n",
                report.reached.size(), report.rows.size(),
                CountFalseRows(report, creators));
  }

  // --- Phase 1: organic discovery -------------------------------------------
  EngineOptions options;
  options.delta_override = 0.1;
  bench::IntroFixture fixture = bench::MakeIntroFixture(options);
  LoadArtDocuments(&fixture.pdms);
  Pdms& pdms = fixture.pdms;
  const size_t factors = pdms.session().Discover();
  std::printf("probe discovery: %zu factor replicas (3 closures x %zu "
              "attributes)\n",
              factors, bench::kIntroAttrs);
  std::printf("  f1+ : m12 -> m23 -> m34 -> m41 (cycle)\n");
  std::printf("  f2- : m12 -> m24 -> m41 (cycle)\n");
  std::printf("  f3- : m24 || m23 -> m34 (parallel paths)\n\n");

  // --- Phase 2: inference over the paper's exact factor graph ----------------
  bench::IntroFixture paper = bench::MakeIntroFixture(options);
  bench::InjectPaperFeedback(paper);
  paper.pdms.session().Converge(100);
  std::vector<MappingVarKey> vars;
  const FactorGraph global = paper.pdms.BuildGlobalFactorGraph(&vars);
  std::printf("posteriors on the paper's factor graph (uniform priors, "
              "delta=0.1):\n");
  TextTable table;
  table.SetHeader({"mapping", "loopy (ours)", "exact", "paper"});
  const topology::ExampleEdges& e = paper.edges;
  struct RowSpec {
    const char* name;
    EdgeId edge;
    const char* paper_value;
  };
  for (const RowSpec& spec :
       std::vector<RowSpec>{{"m23 (p2->p3)", e.m23, "0.59"},
                            {"m24 (p2->p4)", e.m24, "0.3"}}) {
    double exact_value = -1;
    for (VarId v = 0; v < vars.size(); ++v) {
      if (vars[v].edge == spec.edge && vars[v].attribute == 0) {
        Result<Belief> exact = ExactMarginalVariableElimination(global, v);
        if (exact.ok()) exact_value = exact->ProbabilityCorrect();
      }
    }
    table.AddRow({spec.name,
                  StrFormat("%.4f", paper.pdms.Posterior(spec.edge, 0)),
                  StrFormat("%.4f", exact_value), spec.paper_value});
  }
  std::printf("%s\n", table.ToString().c_str());

  // --- Phase 3: quality-aware routing ----------------------------------------
  pdms.session().Converge(100);
  Query query("q1");
  query.AddProjection(0);
  query.AddSelection(1, "river");
  const QueryReport routed = pdms.session().Query(1, query, 3);
  std::printf("quality-aware routing (theta = 0.5):\n");
  std::printf("  peers reached: %zu (route p2 -> p3 -> p4 -> p1)\n",
              routed.reached.size());
  std::printf("  m24 blocked: %s\n",
              std::find(routed.blocked_edges.begin(), routed.blocked_edges.end(),
                        fixture.edges.m24) != routed.blocked_edges.end()
                  ? "yes"
                  : "no");
  std::printf("  rows: %zu, false rows: %zu\n\n", routed.rows.size(),
              CountFalseRows(routed, creators));

  // --- Phase 4: EM prior update ------------------------------------------------
  paper.pdms.UpdatePriors();
  std::printf("EM prior update (Section 4.4):\n");
  std::printf("  prior(m23) = %.3f (paper: 0.55)\n",
              paper.pdms.Prior(e.m23, 0));
  std::printf("  prior(m24) = %.3f (paper: 0.4)\n",
              paper.pdms.Prior(e.m24, 0));
}

}  // namespace
}  // namespace pdms

int main() {
  pdms::Run();
  return 0;
}
