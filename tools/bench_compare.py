#!/usr/bin/env python3
"""Compare two BENCH_scale.json files and fail on metric regressions.

Usage:
  tools/bench_compare.py BASELINE CURRENT [--metric bytes_per_round]
                         [--tolerance 0.10] [--peers 1000]
                         [--parallelism 1]

Configs are matched on (topology, peers, parallelism, value_budget) — the
budget defaults to 0 for pre-v5 baselines, so exact rows keep matching
across schema versions while quantized rows only ever compare against
quantized rows. Rows present in only one file are ignored (the CI smoke
run covers a subset of the checked-in sweep). For each matched pair the relative *regression* of `--metric` over
the baseline is computed — an increase for lower-is-better metrics
(bytes_per_round, key_bytes_per_round, ...), a decrease for
higher-is-better ones (rounds_per_sec, speedup_vs_serial) — and any
regression above `--tolerance` fails the run with a per-config report.

A zero baseline (e.g. key_bytes_per_round once alias negotiation settles)
is a hard floor: any nonzero current value counts as an unbounded
regression rather than being silently skipped.

When both files carry an `adversary_runs` section (schema v6+), the
Byzantine-resilience floors are additionally re-checked on the CURRENT
file regardless of the baseline: every adversarial row must keep
demotion recall >= 0.95 and honest_posterior_delta <= 0.25, and the
clean guarded row must keep false_positive_rate < 0.01. A current file
that *dropped* the section while the baseline had it is an error — the
resilience sweep must not silently disappear.
"""

import argparse
import json
import sys

# Metrics where bigger numbers are good; everything else is lower-is-better.
HIGHER_IS_BETTER = {"rounds_per_sec", "speedup_vs_serial"}


def load_configs(path, peers_filter, parallelism_filter):
    with open(path) as f:
        data = json.load(f)
    configs = {}
    for row in data.get("configs", []):
        if peers_filter is not None and row["peers"] != peers_filter:
            continue
        if (parallelism_filter is not None
                and row["parallelism"] != parallelism_filter):
            continue
        configs[(row["topology"], row["peers"], row["parallelism"],
                 row.get("value_budget", 0))] = row
    return data.get("schema_version"), configs, data


RECALL_FLOOR = 0.95
HONEST_DELTA_CEILING = 0.25
FALSE_POSITIVE_CEILING = 0.01


def check_adversary_runs(base_data, cur_data):
    """Absolute Byzantine-resilience floors on the current file.

    Returns the number of failures (0 = all floors hold or the section is
    legitimately absent from both files).
    """
    base_runs = base_data.get("adversary_runs")
    cur_runs = cur_data.get("adversary_runs")
    if cur_runs is None:
        if base_runs:
            print("[FAIL] baseline has adversary_runs but current dropped "
                  "the section")
            return 1
        return 0

    failures = 0
    for run in cur_runs:
        fraction = run.get("byzantine_fraction", 0.0)
        if run.get("adversary_count", 0) == 0:
            fp = run.get("false_positive_rate", 0.0)
            verdict = "FAIL" if fp >= FALSE_POSITIVE_CEILING else "ok"
            print(f"[{verdict}] adversary clean run: false positives "
                  f"{fp:.2%} (< {FALSE_POSITIVE_CEILING:.0%} required)")
            failures += verdict == "FAIL"
            continue
        recall = run.get("demotion_recall", 0.0)
        verdict = "FAIL" if recall < RECALL_FLOOR else "ok"
        print(f"[{verdict}] adversary {fraction:.0%} run: demotion recall "
              f"{recall:.2%} (>= {RECALL_FLOOR:.0%} required)")
        failures += verdict == "FAIL"
        delta = run.get("honest_posterior_delta", 0.0)
        verdict = "FAIL" if delta > HONEST_DELTA_CEILING else "ok"
        print(f"[{verdict}] adversary {fraction:.0%} run: honest posterior "
              f"drift {delta:.3f} (<= {HONEST_DELTA_CEILING} required)")
        failures += verdict == "FAIL"
    return failures


def regression(metric, base_value, cur_value):
    """Relative regression of `cur_value` vs `base_value` (positive = worse)."""
    if base_value == 0:
        # Lower-is-better from a zero baseline is a hard floor: any nonzero
        # value is an unbounded regression. Higher-is-better from zero can
        # only improve or stay put.
        if metric in HIGHER_IS_BETTER:
            return 0.0
        return float("inf") if cur_value > 0 else 0.0
    if metric in HIGHER_IS_BETTER:
        return (base_value - cur_value) / base_value
    return (cur_value - base_value) / base_value


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--metric", default="bytes_per_round")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max allowed relative regression (0.10 = 10%%)")
    parser.add_argument("--peers", type=int, default=None,
                        help="only compare configs with this peer count")
    parser.add_argument("--parallelism", type=int, default=None,
                        help="only compare configs with this parallelism")
    args = parser.parse_args()

    base_version, baseline, base_data = load_configs(args.baseline, args.peers,
                                                     args.parallelism)
    cur_version, current, cur_data = load_configs(args.current, args.peers,
                                                  args.parallelism)
    if base_version != cur_version:
        print(f"note: schema_version differs (baseline v{base_version}, "
              f"current v{cur_version}); comparing shared fields")

    matched = sorted(set(baseline) & set(current))
    if not matched:
        print("error: no matching (topology, peers, parallelism) configs")
        return 2

    direction = "higher" if args.metric in HIGHER_IS_BETTER else "lower"
    failures = 0
    for key in matched:
        base_row, cur_row = baseline[key], current[key]
        if args.metric not in base_row or args.metric not in cur_row:
            print(f"error: metric '{args.metric}' missing for {key}")
            return 2
        base_value, cur_value = base_row[args.metric], cur_row[args.metric]
        delta = regression(args.metric, base_value, cur_value)
        verdict = "FAIL" if delta > args.tolerance else "ok"
        if verdict == "FAIL":
            failures += 1
        topology, peers, parallelism, value_budget = key
        budget_tag = f" eps={value_budget:.0e}" if value_budget else ""
        print(f"[{verdict}] {topology} n={peers} p={parallelism}{budget_tag} "
              f"{args.metric} ({direction} is better): "
              f"{base_value:.1f} -> {cur_value:.1f} "
              f"(regression {delta:+.1%}, tolerance +{args.tolerance:.0%})")

    adversary_failures = check_adversary_runs(base_data, cur_data)
    if failures or adversary_failures:
        if failures:
            print(f"{failures}/{len(matched)} configs regressed on "
                  f"'{args.metric}'")
        if adversary_failures:
            print(f"{adversary_failures} Byzantine-resilience floors broken")
        return 1
    print(f"all {len(matched)} matched configs within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
