#!/usr/bin/env python3
"""Compare two BENCH_scale.json files and fail on metric regressions.

Usage:
  tools/bench_compare.py BASELINE CURRENT [--metric bytes_per_round]
                         [--tolerance 0.10] [--peers 1000]

Configs are matched on (topology, peers, parallelism); rows present in only
one file are ignored (the CI smoke run covers a subset of the checked-in
sweep). For each matched pair the relative increase of `--metric` over the
baseline is computed; any increase above `--tolerance` fails the run with a
per-config report. Lower is better for every supported metric.
"""

import argparse
import json
import sys


def load_configs(path, peers_filter):
    with open(path) as f:
        data = json.load(f)
    configs = {}
    for row in data.get("configs", []):
        if peers_filter is not None and row["peers"] != peers_filter:
            continue
        configs[(row["topology"], row["peers"], row["parallelism"])] = row
    return data.get("schema_version"), configs


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--metric", default="bytes_per_round")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max allowed relative increase (0.10 = +10%%)")
    parser.add_argument("--peers", type=int, default=None,
                        help="only compare configs with this peer count")
    args = parser.parse_args()

    base_version, baseline = load_configs(args.baseline, args.peers)
    cur_version, current = load_configs(args.current, args.peers)
    if base_version != cur_version:
        print(f"note: schema_version differs (baseline v{base_version}, "
              f"current v{cur_version}); comparing shared fields")

    matched = sorted(set(baseline) & set(current))
    if not matched:
        print("error: no matching (topology, peers, parallelism) configs")
        return 2

    failures = 0
    for key in matched:
        base_row, cur_row = baseline[key], current[key]
        if args.metric not in base_row or args.metric not in cur_row:
            print(f"error: metric '{args.metric}' missing for {key}")
            return 2
        base_value, cur_value = base_row[args.metric], cur_row[args.metric]
        delta = (cur_value - base_value) / base_value if base_value else 0.0
        verdict = "FAIL" if delta > args.tolerance else "ok"
        if verdict == "FAIL":
            failures += 1
        topology, peers, parallelism = key
        print(f"[{verdict}] {topology} n={peers} p={parallelism} "
              f"{args.metric}: {base_value:.1f} -> {cur_value:.1f} "
              f"({delta:+.1%}, tolerance +{args.tolerance:.0%})")

    if failures:
        print(f"{failures}/{len(matched)} configs regressed on "
              f"'{args.metric}'")
        return 1
    print(f"all {len(matched)} matched configs within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
