// pdms_node — one shard of a partitioned PDMS as a standalone process.
//
// Runs the Section 5.2 bibliographic workload (six ontologies, automatic
// alignment) across N cooperating processes that exchange probe, feedback
// and belief traffic over framed TCP, then prints the posteriors of the
// locally owned mappings as hex floats (bitwise-comparable against the
// single-process `reference` mode).
//
//   pdms_node serve --shard=0 --shards=2 --announce-dir=/tmp/run1
//       [--max-rounds=100] [--round-delay-ms=0] [--serve-ms=0]
//       [--heartbeat-ms=0] [--quarantine-ms=0]
//       [--state-dir=/tmp/run1/state] [--rejoin-grace-ms=0]
//       [--chaos-seed=0 --chaos-drop=0 --chaos-duplicate=0 --chaos-reorder=0
//        --chaos-corrupt=0 --chaos-link-kill=0] [--kill-after-round=0]
//       [--byzantine-guard=0] [--demote-threshold=6]
//       [--chaos-lie-probability=0 --chaos-lie-seed=0 --chaos-lie-peers=]
//   pdms_node reference [--max-rounds=100] [--byzantine-guard=0]
//       [--demote-threshold=6]
//       [--chaos-lie-probability=0 --chaos-lie-seed=0 --chaos-lie-peers=]
//   pdms_node query --addr=127.0.0.1:PORT --origin=0 --ttl=3
//       --text='SELECT <attr>'
//
// Chaos knobs (CI's node-chaos job): the --chaos-* rates inject seeded
// frame-level faults on the TCP links — all masked by the retransmission
// layer, so posteriors stay bitwise-identical to the fault-free run.
//
// Byzantine knobs: --byzantine-guard=1 turns on semantic belief admission
// and per-neighbor misbehavior scoring; --demote-threshold sets the soft
// demotion score (hard quarantine fires at twice that). The --chaos-lie-*
// flags make the listed peers forge their outgoing belief values with the
// given probability — seeded, so every shard of a run draws identically.
// Guard and chaos config both fold into the state epoch: a node restarted
// with different flags refuses its old snapshots.
// --kill-after-round=K SIGKILLs this process right after round K (a real
// crash, exit 137); peers with --heartbeat-ms/--quarantine-ms set detect
// the silence, quarantine the dead shard and finish the run degraded.
//
// Recovery knobs (CI's node-recovery job): --state-dir makes the shard
// checkpoint a crash-consistent snapshot after every round barrier, and
// on startup restore from it — skipping discovery entirely — then rejoin
// the cluster with a rejoin handshake. Survivors started with
// --rejoin-grace-ms=G hold the round barrier open for up to G ms after
// quarantining a shard, roll back to the restarted shard's snapshot round
// when it asks back in, and the run resumes in lockstep: final posteriors
// stay bitwise-identical to an uninterrupted run.
//
// Shards discover each other through --announce-dir: every serve process
// writes its bound address to <dir>/shard-<k>.addr and polls for the
// others, so no ports need to be agreed on in advance.
//
// Output lines: `P <edge> <attr> <posterior-as-%a>` for every attribute of
// the mapping's source schema. Each mapping is owned by exactly one shard,
// so concatenating the shards' outputs yields every line of the reference
// output exactly once.

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench/bibliographic_pdms.h"
#include "node/pdms_node.h"
#include "util/logging.h"

using namespace pdms;  // NOLINT: tool brevity

namespace {

std::string FlagValue(int argc, char** argv, const char* name,
                      const char* fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

// --- Validated flag parsing ------------------------------------------------
//
// Every numeric flag is parsed strictly: the whole value must be a number,
// negatives are rejected where they make no sense, and rates must lie in
// [0, 1]. A bad value is a usage error (exit 2), never a silent default.

bool ParseWholeUint(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

int UsageError(const char* flag, const char* expected) {
  std::fprintf(stderr, "pdms_node: invalid value for --%s (expected %s)\n",
               flag, expected);
  std::fprintf(stderr, "usage: pdms_node <serve|reference|query> [--flags]\n");
  return 2;
}

/// Non-negative integer flag bounded to int range; returns -1 and reports
/// a usage error on malformed input.
bool ParseIntFlag(int argc, char** argv, const char* name, const char* fallback,
                  int* out) {
  uint64_t value = 0;
  if (!ParseWholeUint(FlagValue(argc, argv, name, fallback), &value) ||
      value > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

bool ParseU64Flag(int argc, char** argv, const char* name,
                  const char* fallback, uint64_t* out) {
  return ParseWholeUint(FlagValue(argc, argv, name, fallback), out);
}

/// Probability flag: a double in [0, 1].
bool ParseRateFlag(int argc, char** argv, const char* name, double* out) {
  const std::string text = FlagValue(argc, argv, name, "0");
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (!(value >= 0.0 && value <= 1.0)) return false;
  *out = value;
  return true;
}

/// Strictly positive double flag (scores, thresholds).
bool ParsePositiveFlag(int argc, char** argv, const char* name,
                       const char* fallback, double* out) {
  const std::string text = FlagValue(argc, argv, name, fallback);
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (!(value > 0.0) || !std::isfinite(value)) return false;
  *out = value;
  return true;
}

/// Comma-separated peer-id list flag; empty means no peers. Every item
/// must be a whole peer id below `peer_count` — sorted and deduplicated
/// on return.
bool ParsePeerListFlag(int argc, char** argv, const char* name,
                       size_t peer_count, std::vector<PeerId>* out) {
  const std::string text = FlagValue(argc, argv, name, "");
  out->clear();
  if (text.empty()) return true;
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t comma = text.find(',', begin);
    const size_t end = comma == std::string::npos ? text.size() : comma;
    uint64_t id = 0;
    if (!ParseWholeUint(text.substr(begin, end - begin), &id) ||
        id >= peer_count) {
      return false;
    }
    out->push_back(static_cast<PeerId>(id));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return true;
}

// The bibliographic workload is fixed at six ontologies; the Byzantine
// flags validate peer ids against this up front.
constexpr size_t kBibliographicPeers = 6;

/// Byzantine-resilience flags shared by serve and reference mode, so a
/// guarded shard run stays comparable against a guarded reference run.
struct ByzantineCli {
  bool guard = false;
  double demote_threshold = 6.0;  // soft score; hard quarantine at 2x
  double lie_probability = 0.0;
  uint64_t lie_seed = 0;
  std::vector<PeerId> lie_peers;
};

/// Parses the --byzantine-guard / --demote-threshold / --chaos-lie-*
/// family. Returns 0 on success, a process exit code (usage error)
/// otherwise.
int ParseByzantineCli(int argc, char** argv, ByzantineCli* out) {
  uint64_t guard64 = 0;
  if (!ParseU64Flag(argc, argv, "byzantine-guard", "0", &guard64) ||
      guard64 > 1) {
    return UsageError("byzantine-guard", "0 or 1");
  }
  out->guard = guard64 == 1;
  if (!ParsePositiveFlag(argc, argv, "demote-threshold", "6",
                         &out->demote_threshold)) {
    return UsageError("demote-threshold", "a positive score");
  }
  if (!ParseRateFlag(argc, argv, "chaos-lie-probability",
                     &out->lie_probability)) {
    return UsageError("chaos-lie-probability", "a probability in [0, 1]");
  }
  if (!ParseU64Flag(argc, argv, "chaos-lie-seed", "0", &out->lie_seed)) {
    return UsageError("chaos-lie-seed", "a non-negative integer");
  }
  if (!ParsePeerListFlag(argc, argv, "chaos-lie-peers", kBibliographicPeers,
                         &out->lie_peers)) {
    return UsageError("chaos-lie-peers",
                      "a comma-separated list of peer ids below 6");
  }
  return 0;
}

EngineOptions WorkloadOptions(double value_budget,
                              const ByzantineCli& byzantine) {
  // Mirrors examples/bibliographic_alignment.cpp; period_ticks stays 1
  // (required by node mode) and the wire is lossless in both modes.
  EngineOptions options;
  options.delta_override = 0.1;
  options.probe_ttl = 4;
  options.closure_limits.max_cycle_length = 4;
  options.closure_limits.max_path_length = 3;
  options.damping = 0.5;
  // Budget participates in the state epoch: a node restarted with a
  // different --value-error-budget refuses its old snapshots.
  options.value_precision.error_budget = value_budget;
  if (byzantine.guard) {
    options.byzantine_guard.enabled = true;
    options.byzantine_guard.soft_threshold = byzantine.demote_threshold;
    options.byzantine_guard.hard_threshold = 2.0 * byzantine.demote_threshold;
  }
  if (!byzantine.lie_peers.empty() && byzantine.lie_probability > 0.0) {
    options.byzantine.seed = byzantine.lie_seed;
    options.byzantine.lie_probability = byzantine.lie_probability;
    options.byzantine.adversaries = byzantine.lie_peers;
  }
  return options;
}

void PrintOwnedPosteriors(const Pdms& pdms,
                          const std::vector<Ontology>& family,
                          const SocketTransport* transport) {
  const Digraph& graph = pdms.graph();
  for (EdgeId e : graph.LiveEdges()) {
    const PeerId owner = graph.edge(e).src;
    if (transport != nullptr && !transport->IsLocalPeer(owner)) continue;
    const size_t attrs = family[owner].schema.size();
    for (AttributeId a = 0; a < attrs; ++a) {
      std::printf("P %u %u %a\n", e, a, pdms.Posterior(e, a));
    }
  }
}

int Fail(const Status& status) {
  std::fprintf(stderr, "pdms_node: %s\n", status.ToString().c_str());
  return 1;
}

int RunReference(int argc, char** argv) {
  uint64_t max_rounds = 0;
  double value_budget = 0.0;
  if (!ParseU64Flag(argc, argv, "max-rounds", "100", &max_rounds)) {
    return UsageError("max-rounds", "a non-negative integer");
  }
  if (!ParseRateFlag(argc, argv, "value-error-budget", &value_budget)) {
    return UsageError("value-error-budget", "a probability in [0, 1]");
  }
  ByzantineCli byzantine;
  if (const int usage = ParseByzantineCli(argc, argv, &byzantine);
      usage != 0) {
    return usage;
  }
  bench::BibliographicPdms workload =
      bench::MakeBibliographicPdms(WorkloadOptions(value_budget, byzantine));
  workload.pdms.session().Discover();
  workload.pdms.session().Converge(max_rounds);
  PrintOwnedPosteriors(workload.pdms, workload.family, nullptr);
  return 0;
}

int RunServe(int argc, char** argv) {
  uint64_t shard64 = 0;
  uint64_t shards64 = 0;
  uint64_t max_rounds = 0;
  uint64_t kill_after_round = 0;
  int round_delay_ms = 0;
  int serve_ms = 0;
  int heartbeat_ms = 0;
  int quarantine_ms = 0;
  int rejoin_grace_ms = 0;
  if (!ParseU64Flag(argc, argv, "shard", "0", &shard64) ||
      shard64 > std::numeric_limits<uint32_t>::max()) {
    return UsageError("shard", "a non-negative integer");
  }
  if (!ParseU64Flag(argc, argv, "shards", "1", &shards64) ||
      shards64 > std::numeric_limits<uint32_t>::max()) {
    return UsageError("shards", "a positive integer");
  }
  if (!ParseU64Flag(argc, argv, "max-rounds", "100", &max_rounds)) {
    return UsageError("max-rounds", "a non-negative integer");
  }
  if (!ParseIntFlag(argc, argv, "round-delay-ms", "0", &round_delay_ms)) {
    return UsageError("round-delay-ms", "a non-negative integer");
  }
  if (!ParseIntFlag(argc, argv, "serve-ms", "0", &serve_ms)) {
    return UsageError("serve-ms", "a non-negative integer");
  }
  if (!ParseIntFlag(argc, argv, "heartbeat-ms", "0", &heartbeat_ms)) {
    return UsageError("heartbeat-ms", "a non-negative integer");
  }
  if (!ParseIntFlag(argc, argv, "quarantine-ms", "0", &quarantine_ms)) {
    return UsageError("quarantine-ms", "a non-negative integer");
  }
  if (!ParseIntFlag(argc, argv, "rejoin-grace-ms", "0", &rejoin_grace_ms)) {
    return UsageError("rejoin-grace-ms", "a non-negative integer");
  }
  if (!ParseU64Flag(argc, argv, "kill-after-round", "0", &kill_after_round)) {
    return UsageError("kill-after-round", "a non-negative integer");
  }
  const uint32_t shard = static_cast<uint32_t>(shard64);
  const uint32_t shards = static_cast<uint32_t>(shards64);
  const std::string announce_dir = FlagValue(argc, argv, "announce-dir", "");
  const std::string state_dir = FlagValue(argc, argv, "state-dir", "");
  FaultPlan chaos;
  if (!ParseU64Flag(argc, argv, "chaos-seed", "0", &chaos.seed)) {
    return UsageError("chaos-seed", "a non-negative integer");
  }
  if (!ParseRateFlag(argc, argv, "chaos-drop", &chaos.drop_rate)) {
    return UsageError("chaos-drop", "a probability in [0, 1]");
  }
  if (!ParseRateFlag(argc, argv, "chaos-duplicate", &chaos.duplicate_rate)) {
    return UsageError("chaos-duplicate", "a probability in [0, 1]");
  }
  if (!ParseRateFlag(argc, argv, "chaos-reorder", &chaos.reorder_rate)) {
    return UsageError("chaos-reorder", "a probability in [0, 1]");
  }
  if (!ParseRateFlag(argc, argv, "chaos-corrupt", &chaos.corrupt_rate)) {
    return UsageError("chaos-corrupt", "a probability in [0, 1]");
  }
  if (!ParseRateFlag(argc, argv, "chaos-link-kill", &chaos.link_kill_rate)) {
    return UsageError("chaos-link-kill", "a probability in [0, 1]");
  }
  double value_budget = 0.0;
  if (!ParseRateFlag(argc, argv, "value-error-budget", &value_budget)) {
    return UsageError("value-error-budget", "a probability in [0, 1]");
  }
  ByzantineCli byzantine;
  if (const int usage = ParseByzantineCli(argc, argv, &byzantine);
      usage != 0) {
    return usage;
  }
  if (shards == 0 || shard >= shards) {
    std::fprintf(stderr, "pdms_node: need 0 <= --shard < --shards\n");
    return 2;
  }
  if (shards > 1 && announce_dir.empty()) {
    std::fprintf(stderr, "pdms_node: multi-shard runs need --announce-dir\n");
    return 2;
  }
  if (!state_dir.empty()) {
    // Create the snapshot directory up front so a typo'd path fails here,
    // not silently round after round.
    if (mkdir(state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "pdms_node: cannot create --state-dir %s: %s\n",
                   state_dir.c_str(), std::strerror(errno));
      return 2;
    }
  }

  // All processes build the identical workload deterministically; only
  // the shard assignment below decides which peers this one runs.
  SocketTransport* transport = nullptr;
  bench::BibliographicPdms workload = bench::MakeBibliographicPdms(
      WorkloadOptions(value_budget, byzantine),
      [&](size_t peer_count, const EngineOptions&)
          -> std::unique_ptr<Transport> {
        SocketTransportOptions transport_options;
        transport_options.peer_count = peer_count;
        transport_options.local_shard = shard;
        transport_options.shard_addresses.assign(shards, "127.0.0.1:0");
        transport_options.shard_of.resize(peer_count);
        for (PeerId p = 0; p < peer_count; ++p) {
          transport_options.shard_of[p] = p % shards;  // round-robin
        }
        transport_options.link_fault_plan = chaos;
        if (chaos.Enabled()) {
          // Tight recovery timers keep chaos runs fast: a dropped tail
          // frame stalls its barrier step only until the retransmit timer.
          transport_options.retransmit_timeout_ms = 50;
          transport_options.reconnect_backoff_initial_ms = 5;
          transport_options.reconnect_backoff_max_ms = 100;
        }
        auto created = SocketTransport::Create(std::move(transport_options));
        if (!created.ok()) {
          std::fprintf(stderr, "pdms_node: %s\n",
                       created.status().ToString().c_str());
          return nullptr;
        }
        transport = created->get();
        return std::move(created).value();
      });
  if (transport == nullptr ||
      workload.pdms.peer_count() != kBibliographicPeers) {
    std::fprintf(stderr, "pdms_node: workload construction failed\n");
    return 1;
  }

  NodeOptions node_options;
  node_options.max_rounds = max_rounds;
  node_options.round_delay_ms = round_delay_ms;
  node_options.heartbeat_interval_ms = heartbeat_ms;
  node_options.quarantine_after_ms = quarantine_ms;
  node_options.state_dir = state_dir;
  node_options.rejoin_grace_ms = rejoin_grace_ms;
  if (kill_after_round > 0) {
    node_options.round_hook = [kill_after_round, shard](uint64_t round) {
      if (round == kill_after_round) {
        std::fprintf(stderr,
                     "pdms_node: shard %u self-SIGKILL after round %llu\n",
                     shard, static_cast<unsigned long long>(round));
        std::fflush(stderr);
        raise(SIGKILL);  // a real crash: no destructors, no goodbyes
      }
    };
  }
  Result<std::unique_ptr<PdmsNode>> node =
      PdmsNode::Create(std::move(workload.pdms), std::move(node_options));
  if (!node.ok()) return Fail(node.status());

  if (shards > 1) {
    // Announce our bound address, then poll for every other shard's.
    const std::string mine =
        announce_dir + "/shard-" + std::to_string(shard) + ".addr";
    const std::string tmp = mine + ".tmp";
    FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "pdms_node: cannot write %s\n", tmp.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", (*node)->local_address().c_str());
    std::fclose(f);
    std::rename(tmp.c_str(), mine.c_str());

    for (uint32_t s = 0; s < shards; ++s) {
      if (s == shard) continue;
      const std::string theirs =
          announce_dir + "/shard-" + std::to_string(s) + ".addr";
      std::string address;
      for (int attempt = 0; attempt < 600; ++attempt) {  // up to ~60s
        FILE* in = std::fopen(theirs.c_str(), "r");
        if (in != nullptr) {
          char buffer[128] = {};
          if (std::fgets(buffer, sizeof(buffer), in) != nullptr) {
            address = buffer;
            while (!address.empty() &&
                   (address.back() == '\n' || address.back() == '\r')) {
              address.pop_back();
            }
          }
          std::fclose(in);
          if (!address.empty()) break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      if (address.empty()) {
        std::fprintf(stderr, "pdms_node: shard %u never announced\n", s);
        return 1;
      }
      const Status status = (*node)->SetShardAddress(s, address);
      if (!status.ok()) return Fail(status);
    }
  }

  Status status = (*node)->Connect();
  if (!status.ok()) return Fail(status);
  bool restored = false;
  if (!state_dir.empty()) {
    const Result<uint64_t> round = (*node)->TryRestoreFromState();
    if (round.ok()) {
      std::fprintf(stderr,
                   "pdms_node: shard %u restored from snapshot at round %llu\n",
                   shard, static_cast<unsigned long long>(*round));
      const Status rejoined = (*node)->PerformRejoin();
      if (!rejoined.ok()) return Fail(rejoined);
      restored = true;
    } else if (round.status().code() == StatusCode::kNotFound) {
      std::fprintf(stderr, "pdms_node: shard %u has no snapshot; cold start\n",
                   shard);
    } else {
      // Torn / corrupt snapshots are rejected, surfaced, and fall back to
      // a cold start rather than resuming from bad state.
      std::fprintf(stderr, "pdms_node: shard %u snapshot rejected (%s); "
                           "cold start\n",
                   shard, round.status().ToString().c_str());
    }
  }
  if (!restored) {
    Result<size_t> factors = (*node)->RunDiscovery();
    if (!factors.ok()) return Fail(factors.status());
    std::fprintf(stderr, "pdms_node: shard %u discovered %zu local replicas\n",
                 shard, *factors);
  }
  Result<ConvergenceReport> converged = (*node)->RunRounds();
  if (!converged.ok()) return Fail(converged.status());
  std::fprintf(stderr,
               "pdms_node: shard %u ran %zu rounds (converged=%d "
               "rejected_beliefs=%llu demoted_links=%llu)\n",
               shard, converged->rounds, converged->converged ? 1 : 0,
               static_cast<unsigned long long>((*node)->rejected_beliefs()),
               static_cast<unsigned long long>((*node)->demoted_links()));

  PrintOwnedPosteriors((*node)->pdms(), workload.family,
                       &(*node)->transport());
  std::fflush(stdout);

  if (serve_ms > 0) {
    // Keep answering queries (and keep the listen socket alive) a while.
    std::this_thread::sleep_for(std::chrono::milliseconds(serve_ms));
  }
  return 0;
}

int RunQuery(int argc, char** argv) {
  QueryRequestFrame request;
  request.request_id = 1;
  uint64_t origin = 0;
  uint64_t ttl = 0;
  if (!ParseU64Flag(argc, argv, "origin", "0", &origin) ||
      origin > std::numeric_limits<uint32_t>::max()) {
    return UsageError("origin", "a peer id");
  }
  if (!ParseU64Flag(argc, argv, "ttl", "3", &ttl) ||
      ttl > std::numeric_limits<uint32_t>::max()) {
    return UsageError("ttl", "a non-negative integer");
  }
  request.origin = static_cast<PeerId>(origin);
  request.ttl = static_cast<uint32_t>(ttl);
  request.text = FlagValue(argc, argv, "text", "");
  const std::string address = FlagValue(argc, argv, "addr", "");
  if (address.empty() || request.text.empty()) {
    std::fprintf(stderr, "pdms_node: query mode needs --addr and --text\n");
    return 1;
  }
  Result<QueryResponseFrame> response =
      PdmsNode::QueryNode(address, request);
  if (!response.ok()) return Fail(response.status());
  if (!response->ok) {
    std::fprintf(stderr, "pdms_node: query failed: %s\n",
                 response->error.c_str());
    return 1;
  }
  std::printf("reached %llu peers, %zu rows\n",
              static_cast<unsigned long long>(response->reached),
              response->rows.size());
  for (const std::string& row : response->rows) {
    std::printf("%s\n", row.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // PDMS_LOG_LEVEL=debug|info|warning|error raises or lowers the stderr
  // log threshold; the default (warning) keeps posterior output clean.
  if (const char* level = std::getenv("PDMS_LOG_LEVEL")) {
    const std::string name = level;
    if (name == "debug") {
      Logger::Get().set_min_level(LogLevel::kDebug);
    } else if (name == "info") {
      Logger::Get().set_min_level(LogLevel::kInfo);
    } else if (name == "warning") {
      Logger::Get().set_min_level(LogLevel::kWarning);
    } else if (name == "error") {
      Logger::Get().set_min_level(LogLevel::kError);
    } else {
      std::fprintf(stderr, "pdms_node: unknown PDMS_LOG_LEVEL '%s'\n",
                   level);
      return 2;
    }
  }
  const std::string mode = argc > 1 ? argv[1] : "";
  if (mode == "serve") return RunServe(argc, argv);
  if (mode == "reference") return RunReference(argc, argv);
  if (mode == "query") return RunQuery(argc, argv);
  std::fprintf(stderr,
               "usage: pdms_node <serve|reference|query> [--flags]\n"
               "  serve      run one shard (see file comment)\n"
               "  reference  single-process run, same workload\n"
               "  query      client: --addr --origin --ttl --text\n");
  return 2;
}
