#include "baseline/chatty_web.h"

#include <cmath>
#include <set>

namespace pdms {

std::map<MappingVarKey, double> ChattyWebAnalyze(
    const std::vector<ClosureEvidence>& evidence,
    const ChattyWebOptions& options) {
  std::map<MappingVarKey, double> quality;

  // Collect the variable universe first.
  for (const ClosureEvidence& closure : evidence) {
    for (const MappingVarKey& var : closure.members) {
      quality.emplace(var, options.prior);
    }
  }

  if (options.variant == ChattyWebVariant::kHardExclusion) {
    for (auto& [var, score] : quality) score = 1.0;
    for (const ClosureEvidence& closure : evidence) {
      if (closure.sign != FeedbackSign::kNegative) continue;
      for (const MappingVarKey& var : closure.members) quality[var] = 0.0;
    }
    return quality;
  }

  // kNaiveBayes: per variable, odds = prior-odds × Π_closures LR(closure).
  // For a closure of n members with per-other-member correctness prior p:
  //   P(f+ | m correct)   = p^{n-1} + (1 - p^{n-1}) · ∆'
  //   P(f+ | m incorrect) = ∆
  // where ∆' approximates compensation among the others and is taken = ∆
  // (the heuristic's coarseness is the point). Negative feedback uses the
  // complements. Contributions multiply across closures as if independent.
  for (auto& [var, score] : quality) {
    double odds = options.prior / (1.0 - options.prior);
    for (const ClosureEvidence& closure : evidence) {
      bool member = false;
      for (const MappingVarKey& candidate : closure.members) {
        if (candidate == var) {
          member = true;
          break;
        }
      }
      if (!member || closure.sign == FeedbackSign::kNeutral) continue;
      const auto n = static_cast<double>(closure.members.size());
      const double others_correct = std::pow(options.prior, n - 1.0);
      const double p_pos_given_correct =
          others_correct + (1.0 - others_correct) * options.delta;
      const double p_pos_given_incorrect = options.delta;
      double likelihood_correct;
      double likelihood_incorrect;
      if (closure.sign == FeedbackSign::kPositive) {
        likelihood_correct = p_pos_given_correct;
        likelihood_incorrect = p_pos_given_incorrect;
      } else {
        likelihood_correct = 1.0 - p_pos_given_correct;
        likelihood_incorrect = 1.0 - p_pos_given_incorrect;
      }
      if (likelihood_incorrect <= 0.0) {
        odds = likelihood_correct > 0.0
                   ? std::numeric_limits<double>::infinity()
                   : odds;
        continue;
      }
      odds *= likelihood_correct / likelihood_incorrect;
    }
    score = std::isinf(odds) ? 1.0 : odds / (1.0 + odds);
  }
  return quality;
}

}  // namespace pdms
