#ifndef PDMS_BASELINE_CHATTY_WEB_H_
#define PDMS_BASELINE_CHATTY_WEB_H_

#include <cstdint>
#include <map>
#include <vector>

#include "mapping/mapping.h"
#include "net/message.h"

namespace pdms {

/// One piece of closure evidence as the baselines consume it.
struct ClosureEvidence {
  std::vector<MappingVarKey> members;
  FeedbackSign sign = FeedbackSign::kNeutral;
};

/// Variants of the authors' earlier Chatty-Web cycle heuristics [2, 3],
/// which the paper's Section 6 compares against: they analyze each closure
/// independently, "ignoring all interdependencies among the mappings and
/// cycles".
enum class ChattyWebVariant : uint8_t {
  /// Hard exclusion: any mapping occurring in a negative closure is
  /// disqualified outright. On the introductory example this disqualifies
  /// every mapping of cycle f2 — the paper's "all three mappings on the
  /// left, while only one is erroneous".
  kHardExclusion = 0,
  /// Independence-assuming probabilistic voting: each closure contributes
  /// a likelihood ratio for each member computed as if all other members
  /// independently had the prior probability of being correct, and the
  /// per-closure contributions multiply (double-counting shared evidence).
  kNaiveBayes = 1,
};

struct ChattyWebOptions {
  ChattyWebVariant variant = ChattyWebVariant::kNaiveBayes;
  /// Prior probability of a mapping being correct.
  double prior = 0.5;
  /// Compensation probability ∆ (same role as in the paper's model).
  double delta = 0.1;
};

/// Centralized reimplementation of the earlier heuristics as a baseline.
/// Returns a quality score in [0, 1] per mapping variable appearing in the
/// evidence.
std::map<MappingVarKey, double> ChattyWebAnalyze(
    const std::vector<ClosureEvidence>& evidence,
    const ChattyWebOptions& options);

}  // namespace pdms

#endif  // PDMS_BASELINE_CHATTY_WEB_H_
