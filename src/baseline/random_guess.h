#ifndef PDMS_BASELINE_RANDOM_GUESS_H_
#define PDMS_BASELINE_RANDOM_GUESS_H_

#include <map>

#include "net/message.h"
#include "util/rng.h"

namespace pdms {

/// Random-guess baseline for the precision experiment (Figure 12): flags
/// each mapping variable as erroneous independently with probability
/// `flag_probability`. Its expected precision equals the base error rate
/// of the mapping population, which is the floor the paper's method is
/// compared against.
std::map<MappingVarKey, bool> RandomGuessErroneous(
    const std::vector<MappingVarKey>& variables, double flag_probability,
    Rng* rng);

}  // namespace pdms

#endif  // PDMS_BASELINE_RANDOM_GUESS_H_
