#include "baseline/random_guess.h"

namespace pdms {

std::map<MappingVarKey, bool> RandomGuessErroneous(
    const std::vector<MappingVarKey>& variables, double flag_probability,
    Rng* rng) {
  std::map<MappingVarKey, bool> flags;
  for (const MappingVarKey& var : variables) {
    flags[var] = rng->Bernoulli(flag_probability);
  }
  return flags;
}

}  // namespace pdms
