#ifndef PDMS_NODE_PDMS_NODE_H_
#define PDMS_NODE_PDMS_NODE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/codec.h"
#include "net/socket_transport.h"
#include "pdms/pdms.h"
#include "util/status.h"

namespace pdms {

/// Knobs of one `PdmsNode` daemon. The network topology itself — which
/// shard this process is, where the others listen, which peers are local —
/// lives in the `SocketTransport` the node is built over.
struct NodeOptions {
  /// Convergence bound handed to `RunRounds` (the sharded counterpart of
  /// `Session::Converge(max_rounds)`).
  size_t max_rounds = 200;

  /// Artificial hold after each round, in milliseconds. Test hook: keeps
  /// the round loop open long enough for a client to query mid-run.
  int round_delay_ms = 0;

  /// How long to wait for the other shards' mark frames before giving up
  /// on a step (a vanished peer process surfaces as Unavailable here —
  /// unless quarantine, below, degrades around it first).
  int mark_timeout_ms = 120000;

  /// Heartbeat period. While a node waits between rounds (or holds in
  /// `round_delay_ms`), a background thread broadcasts liveness marks
  /// (phase 2) so peers can tell "slow" from "dead". 0 = disabled.
  int heartbeat_interval_ms = 0;

  /// Failure detector: a shard whose mark is awaited and from which
  /// *nothing* (mark or heartbeat) has been heard for this long is
  /// quarantined — its link is abandoned, every mapping with an endpoint
  /// it owns is removed, and the surviving shards finish the run without
  /// it. 0 = disabled (a vanished peer then ends the run with
  /// Unavailable after `mark_timeout_ms`).
  int quarantine_after_ms = 0;

  /// Invoked after every completed inference round with the round number.
  /// Chaos hook: the node-chaos CI job uses it to SIGKILL a shard
  /// mid-run.
  std::function<void(uint64_t round)> round_hook;
};

/// One process of a partitioned PDMS deployment: owns the shard of peers
/// its `SocketTransport` marks local, exchanges probe / feedback / belief
/// traffic with the other shards over framed TCP, and serves θ-gated
/// queries from read-only posterior snapshots while rounds are running.
///
/// Lifecycle: `Create` (over a `Pdms` built with a sharded socket
/// transport) → `SetShardAddress`/`Connect` → `RunDiscovery` →
/// `RunRounds` → read posteriors / keep serving queries.
///
/// Cross-shard synchronization is the mark protocol (`MarkFrame`): each
/// step a shard broadcasts a mark carrying what it sent and whether it
/// still holds undelivered traffic, then waits for everyone else's mark of
/// the same step. The transport's sequenced links deliver marks (and the
/// data frames staged before them) exactly once and in order even across
/// faults and reconnects, so the exchange doubles as the cross-shard flush
/// barrier, and all shards advance their transport clocks in lockstep.
/// With the reliable wire and the transport's deterministic
/// (deliver_at, from, seq) drain order, a partitioned run lands on
/// posteriors bitwise-identical to the single-process engine — including
/// under injected link faults (tests/node_test.cc, tests/fault_test.cc).
///
/// Degradation: marks are validated (origin shard must match the link the
/// mark arrived on; replays and forgeries are rejected), heartbeats keep
/// liveness observable between steps, and a silent shard past the
/// quarantine deadline is churned out via the engine's mapping-removal
/// path while the survivors keep serving queries.
class PdmsNode {
 public:
  /// Wraps a built `Pdms` whose transport is a `SocketTransport`. Requires
  /// the periodic schedule with `period_ticks == 1`: shards advance ticks
  /// in lockstep but discovery may cost a different tick count than the
  /// single-process run, so every tick must be a send tick for the round
  /// schedules to agree.
  static Result<std::unique_ptr<PdmsNode>> Create(Pdms pdms,
                                                  NodeOptions options);

  ~PdmsNode();

  /// The transport's bound listen address ("ip:port").
  const std::string& local_address() const {
    return transport_->local_address();
  }

  /// Announces where a remote shard listens (before `Connect`).
  Status SetShardAddress(uint32_t shard, std::string address) {
    return transport_->SetShardAddress(shard, std::move(address));
  }

  /// Dials every shard and waits for the links to establish.
  Status Connect() { return transport_->ConnectAll(); }

  /// Distributed closure discovery: floods the local peers' probes and
  /// tick-steps with per-step mark exchange until every shard reports a
  /// quiet step. Returns the number of distinct factor replicas held by
  /// the *local* peers afterwards.
  Result<size_t> RunDiscovery();

  /// Mark-synchronized inference rounds until the *global* posterior
  /// movement (max over all live shards) stays below tolerance, with the
  /// same patience semantics as `PdmsEngine::RunToConvergence` — a
  /// partitioned run executes exactly as many rounds as the
  /// single-process one. The posterior snapshot queries are served from
  /// is refreshed after every round.
  Result<ConvergenceReport> RunRounds();

  /// Executes a query request against the current posterior snapshot —
  /// the same path the control plane uses for remote clients, exposed for
  /// in-process callers and tests. Shard-local: θ-gated BFS over edges
  /// whose both endpoints are local.
  QueryResponseFrame ExecuteSnapshotQuery(
      const QueryRequestFrame& request) const;

  /// Shards quarantined so far (ascending).
  std::vector<uint32_t> quarantined() const;

  /// Mark frames rejected by validation (forged origin, replayed index,
  /// unknown shard).
  uint64_t rejected_marks() const {
    return rejected_marks_.load(std::memory_order_relaxed);
  }

  Pdms& pdms() { return pdms_; }
  const Pdms& pdms() const { return pdms_; }
  SocketTransport& transport() { return *transport_; }

  /// Blocking client helper: connects to a node's listen address, sends
  /// one query request frame and waits for the response. Independent of
  /// any transport instance — this is what an external client does.
  static Result<QueryResponseFrame> QueryNode(const std::string& address,
                                              const QueryRequestFrame& request,
                                              int timeout_ms = 30000);

 private:
  /// Read-only posterior view rebuilt after every round: Packed
  /// MappingVarKey → posterior, an entry existing iff the owner has
  /// evidence for the variable (the gate's forward_without_evidence rule
  /// keys off absence).
  struct Snapshot {
    std::unordered_map<uint64_t, double> posteriors;
  };

  PdmsNode(Pdms pdms, SocketTransport* transport, NodeOptions options);

  /// Control-plane dispatch, invoked on the transport's event-loop
  /// thread: validated marks feed `AwaitMarks`, heartbeats refresh
  /// liveness, query requests are answered from the snapshot right here.
  void HandleControlFrame(Frame frame, uint64_t connection,
                          uint32_t remote_shard);

  /// Mark validation against the authenticated link shard; must hold
  /// `control_mutex_`. Returns false for marks that must not enter the
  /// barrier queue (and counts them in `rejected_marks_` when hostile).
  bool AdmitMarkLocked(const MarkFrame& mark, uint32_t remote_shard);

  void BroadcastMark(const MarkFrame& mark);
  /// Collects the other live shards' marks for (phase, index),
  /// quarantining shards that miss the failure-detection deadline along
  /// the way.
  Result<std::vector<MarkFrame>> AwaitMarks(uint32_t phase, uint64_t index);

  /// Degrades around a dead shard: abandons its link and removes every
  /// mapping with an endpoint it owns. Runs on the driver thread with
  /// `control_mutex_` *not* held.
  void QuarantineShard(uint32_t shard);

  void HeartbeatMain();

  void RebuildSnapshot();
  std::shared_ptr<const Snapshot> CurrentSnapshot() const;

  bool GateAllows(const Peer& owner, EdgeId edge, AttributeId attribute,
                  const Snapshot& snapshot) const;

  Pdms pdms_;
  SocketTransport* transport_;  // owned by the engine inside pdms_
  NodeOptions options_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> snapshot_;

  mutable std::mutex control_mutex_;
  std::condition_variable control_cv_;
  std::vector<MarkFrame> marks_;
  /// Liveness per shard, guarded by `control_mutex_`. `active_[s]` flips
  /// to false exactly once, on quarantine.
  std::vector<bool> active_;
  std::vector<std::chrono::steady_clock::time_point> last_heard_;
  /// Replay low-water per barrier phase: marks for steps already consumed
  /// are rejected.
  uint64_t consumed_low_[2] = {0, 0};

  std::atomic<uint64_t> rejected_marks_{0};

  std::mutex heartbeat_mutex_;
  std::condition_variable heartbeat_cv_;
  bool heartbeat_stop_ = false;
  uint64_t heartbeat_index_ = 0;
  std::thread heartbeat_;
};

}  // namespace pdms

#endif  // PDMS_NODE_PDMS_NODE_H_
