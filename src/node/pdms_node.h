#ifndef PDMS_NODE_PDMS_NODE_H_
#define PDMS_NODE_PDMS_NODE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/codec.h"
#include "net/socket_transport.h"
#include "pdms/pdms.h"
#include "store/snapshot.h"
#include "util/status.h"

namespace pdms {

/// Knobs of one `PdmsNode` daemon. The network topology itself — which
/// shard this process is, where the others listen, which peers are local —
/// lives in the `SocketTransport` the node is built over.
struct NodeOptions {
  /// Convergence bound handed to `RunRounds` (the sharded counterpart of
  /// `Session::Converge(max_rounds)`).
  size_t max_rounds = 200;

  /// Artificial hold after each round, in milliseconds. Test hook: keeps
  /// the round loop open long enough for a client to query mid-run.
  int round_delay_ms = 0;

  /// How long to wait for the other shards' mark frames before giving up
  /// on a step (a vanished peer process surfaces as Unavailable here —
  /// unless quarantine, below, degrades around it first).
  int mark_timeout_ms = 120000;

  /// Heartbeat period. While a node waits between rounds (or holds in
  /// `round_delay_ms`), a background thread broadcasts liveness marks
  /// (phase 2) so peers can tell "slow" from "dead". 0 = disabled.
  int heartbeat_interval_ms = 0;

  /// Failure detector: a shard whose mark is awaited and from which
  /// *nothing* (mark or heartbeat) has been heard for this long is
  /// quarantined — its link is abandoned, every mapping with an endpoint
  /// it owns is removed, and the surviving shards finish the run without
  /// it. 0 = disabled (a vanished peer then ends the run with
  /// Unavailable after `mark_timeout_ms`).
  int quarantine_after_ms = 0;

  /// Invoked after every completed inference round with the round number.
  /// Chaos hook: the node-chaos CI job uses it to SIGKILL a shard
  /// mid-run.
  std::function<void(uint64_t round)> round_hook;

  /// Directory for crash-consistent snapshots (see src/store/snapshot.h).
  /// Non-empty = after every round barrier the node checkpoints its
  /// engine state and in-flight traffic there (double-buffered, fsynced),
  /// and `TryRestoreFromState` can resume from the newest valid cut
  /// without re-running discovery. Empty = no persistence.
  std::string state_dir;

  /// After quarantining a shard mid-rounds, how long the survivors hold
  /// the round barrier open for that shard's `RejoinFrame` before
  /// degrading without it. While the grace window is open each survivor
  /// keeps an in-memory ring of recent round cuts; a valid rejoin rolls
  /// everyone back to the restarted shard's snapshot round and the run
  /// resumes in lockstep — converging on the same fixpoint as an
  /// uninterrupted run, with zero re-discovery. 0 = no grace: a
  /// quarantined shard stays out (the pre-recovery behaviour).
  int rejoin_grace_ms = 0;
};

/// One process of a partitioned PDMS deployment: owns the shard of peers
/// its `SocketTransport` marks local, exchanges probe / feedback / belief
/// traffic with the other shards over framed TCP, and serves θ-gated
/// queries from read-only posterior snapshots while rounds are running.
///
/// Lifecycle: `Create` (over a `Pdms` built with a sharded socket
/// transport) → `SetShardAddress`/`Connect` → `RunDiscovery` →
/// `RunRounds` → read posteriors / keep serving queries.
///
/// Cross-shard synchronization is the mark protocol (`MarkFrame`): each
/// step a shard broadcasts a mark carrying what it sent and whether it
/// still holds undelivered traffic, then waits for everyone else's mark of
/// the same step. The transport's sequenced links deliver marks (and the
/// data frames staged before them) exactly once and in order even across
/// faults and reconnects, so the exchange doubles as the cross-shard flush
/// barrier, and all shards advance their transport clocks in lockstep.
/// With the reliable wire and the transport's deterministic
/// (deliver_at, from, seq) drain order, a partitioned run lands on
/// posteriors bitwise-identical to the single-process engine — including
/// under injected link faults (tests/node_test.cc, tests/fault_test.cc).
///
/// Degradation: marks are validated (origin shard must match the link the
/// mark arrived on; replays and forgeries are rejected), heartbeats keep
/// liveness observable between steps, and a silent shard past the
/// quarantine deadline is churned out via the engine's mapping-removal
/// path while the survivors keep serving queries.
class PdmsNode {
 public:
  /// Wraps a built `Pdms` whose transport is a `SocketTransport`. Requires
  /// the periodic schedule with `period_ticks == 1`: shards advance ticks
  /// in lockstep but discovery may cost a different tick count than the
  /// single-process run, so every tick must be a send tick for the round
  /// schedules to agree.
  static Result<std::unique_ptr<PdmsNode>> Create(Pdms pdms,
                                                  NodeOptions options);

  ~PdmsNode();

  /// The transport's bound listen address ("ip:port").
  const std::string& local_address() const {
    return transport_->local_address();
  }

  /// Announces where a remote shard listens (before `Connect`).
  Status SetShardAddress(uint32_t shard, std::string address) {
    return transport_->SetShardAddress(shard, std::move(address));
  }

  /// Dials every shard and waits for the links to establish.
  Status Connect() { return transport_->ConnectAll(); }

  /// Distributed closure discovery: floods the local peers' probes and
  /// tick-steps with per-step mark exchange until every shard reports a
  /// quiet step. Returns the number of distinct factor replicas held by
  /// the *local* peers afterwards.
  Result<size_t> RunDiscovery();

  /// Restores engine state, in-flight traffic and the transport clock from
  /// the newest valid snapshot in `NodeOptions::state_dir`, making
  /// `RunDiscovery` unnecessary — the restored cut already holds every
  /// replica and routing table. Returns the restored round on success;
  /// NotFound when no loadable snapshot exists (torn, CRC-corrupt or
  /// epoch-mismatched files are skipped) — the caller cold-starts through
  /// `RunDiscovery` instead. Call after `Connect`, before `PerformRejoin`.
  Result<uint64_t> TryRestoreFromState();

  /// After a successful `TryRestoreFromState`: broadcasts a `RejoinFrame`
  /// announcing the restored cut and this process's new listen address,
  /// then blocks until every live shard acknowledged re-admission. A shard
  /// that rejects the rejoin fails the call; one that stays silent past
  /// `mark_timeout_ms` is quarantined and the run proceeds without it.
  Status PerformRejoin();

  /// Fingerprint of everything that must match for a snapshot to be
  /// loadable into this deployment (topology, sharding, engine options).
  uint64_t state_epoch() const { return state_epoch_; }

  /// Mark-synchronized inference rounds until the *global* posterior
  /// movement (max over all live shards) stays below tolerance, with the
  /// same patience semantics as `PdmsEngine::RunToConvergence` — a
  /// partitioned run executes exactly as many rounds as the
  /// single-process one. The posterior snapshot queries are served from
  /// is refreshed after every round.
  Result<ConvergenceReport> RunRounds();

  /// Executes a query request against the current posterior snapshot —
  /// the same path the control plane uses for remote clients, exposed for
  /// in-process callers and tests. Shard-local: θ-gated BFS over edges
  /// whose both endpoints are local.
  QueryResponseFrame ExecuteSnapshotQuery(
      const QueryRequestFrame& request) const;

  /// Shards quarantined so far (ascending).
  std::vector<uint32_t> quarantined() const;

  /// Mark frames rejected by validation (forged origin, replayed index,
  /// unknown shard).
  uint64_t rejected_marks() const {
    return rejected_marks_.load(std::memory_order_relaxed);
  }

  /// Belief entries the Byzantine guard refused to absorb across the
  /// shard's local peers (admission failures plus equivocations).
  /// Always 0 when the guard is disabled.
  uint64_t rejected_beliefs() const {
    return pdms_.engine().GuardRejectedBeliefs();
  }

  /// Links the guard demoted (soft-damped or hard-quarantined) across
  /// the shard's local peers. Always 0 when the guard is disabled.
  uint64_t demoted_links() const {
    return pdms_.engine().GuardDemotedLinks();
  }

  Pdms& pdms() { return pdms_; }
  const Pdms& pdms() const { return pdms_; }
  SocketTransport& transport() { return *transport_; }

  /// Blocking client helper: connects to a node's listen address, sends
  /// one query request frame and waits for the response. Independent of
  /// any transport instance — this is what an external client does.
  static Result<QueryResponseFrame> QueryNode(const std::string& address,
                                              const QueryRequestFrame& request,
                                              int timeout_ms = 30000);

 private:
  /// Read-only posterior view rebuilt after every round: Packed
  /// MappingVarKey → posterior, an entry existing iff the owner has
  /// evidence for the variable (the gate's forward_without_evidence rule
  /// keys off absence).
  struct Snapshot {
    std::unordered_map<uint64_t, double> posteriors;
  };

  PdmsNode(Pdms pdms, SocketTransport* transport, NodeOptions options);

  /// Control-plane dispatch, invoked on the transport's event-loop
  /// thread: validated marks feed `AwaitMarks`, heartbeats refresh
  /// liveness, query requests are answered from the snapshot right here.
  void HandleControlFrame(Frame frame, uint64_t connection,
                          uint32_t remote_shard);

  /// Mark validation against the authenticated link shard; must hold
  /// `control_mutex_`. Returns false for marks that must not enter the
  /// barrier queue (and counts them in `rejected_marks_` when hostile).
  bool AdmitMarkLocked(const MarkFrame& mark, uint32_t remote_shard);

  void BroadcastMark(const MarkFrame& mark);
  /// Collects the other live shards' marks for (phase, index),
  /// quarantining shards that miss the failure-detection deadline along
  /// the way.
  Result<std::vector<MarkFrame>> AwaitMarks(uint32_t phase, uint64_t index);

  /// Degrades around a dead shard: abandons its link and removes every
  /// mapping with an endpoint it owns. Runs on the driver thread with
  /// `control_mutex_` *not* held.
  void QuarantineShard(uint32_t shard);

  /// Whether the rejoin grace window is open: a shard was quarantined
  /// mid-rounds, recovery is enabled, and the deadline has not passed.
  /// Must hold `control_mutex_`. Disarms (and logs) on expiry.
  bool GraceActiveLocked(std::chrono::steady_clock::time_point now);

  /// Checkpoints the consistent cut "rounds 1..`round` executed
  /// everywhere, round-`round` traffic in the inboxes": saves it to the
  /// snapshot store (when configured) and pushes it onto the in-memory
  /// cut ring (when the rejoin grace window is enabled). Driver thread,
  /// called between the round barrier and the next `RunRound`.
  void CaptureCut(uint64_t round, uint64_t quiet, double previous_change,
                  const ConvergenceReport& report);

  /// Survivor side of re-admission, on the driver thread: validates the
  /// request against the cut ring, rolls engine + inboxes + clock back to
  /// the requested round, re-admits the shard's link (before acking —
  /// frames staged to an abandoned shard are dropped), then sends the
  /// verdict. On success `resume_` is set and the round loop restarts
  /// from the rolled-back cut.
  Status ServeRejoin(const RejoinFrame& rejoin);

  /// Sends a rejoin verdict to `shard` (best-effort).
  void SendRejoinVerdict(uint32_t shard, uint64_t round, bool accepted,
                         std::string reason);

  void HeartbeatMain();

  void RebuildSnapshot();
  std::shared_ptr<const Snapshot> CurrentSnapshot() const;

  bool GateAllows(const Peer& owner, EdgeId edge, AttributeId attribute,
                  const Snapshot& snapshot) const;

  Pdms pdms_;
  SocketTransport* transport_;  // owned by the engine inside pdms_
  NodeOptions options_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> snapshot_;

  mutable std::mutex control_mutex_;
  std::condition_variable control_cv_;
  std::vector<MarkFrame> marks_;
  /// Liveness per shard, guarded by `control_mutex_`. `active_[s]` flips
  /// to false exactly once, on quarantine.
  std::vector<bool> active_;
  std::vector<std::chrono::steady_clock::time_point> last_heard_;
  /// Replay low-water per barrier phase: marks for steps already consumed
  /// are rejected.
  uint64_t consumed_low_[2] = {0, 0};

  std::atomic<uint64_t> rejected_marks_{0};

  // --- Durable-state / re-admission machinery ---------------------------
  /// Deployment fingerprint (ComputeStateEpoch), fixed at Create.
  uint64_t state_epoch_ = 0;
  /// Non-null iff `NodeOptions::state_dir` is set.
  std::unique_ptr<SnapshotStore> store_;
  /// Recent round cuts, oldest first, driver-thread only. Bounded depth;
  /// only maintained while the rejoin grace window is enabled.
  static constexpr size_t kCutRingDepth = 4;
  std::deque<NodeSnapshot> cut_ring_;
  /// Cut to resume the round loop from (engine/inboxes already applied;
  /// only the scalars are read). Set by `TryRestoreFromState` and
  /// `ServeRejoin`, consumed by `RunRounds`. Driver thread only.
  std::optional<NodeSnapshot> resume_;
  /// Rejoin request queued by the control thread for the driver to serve,
  /// and the acks a restarted shard collects. Guarded by `control_mutex_`.
  std::optional<RejoinFrame> pending_rejoin_;
  std::unordered_map<uint32_t, RejoinAckFrame> rejoin_acks_;
  /// Rejoin commit barrier (guarded by `control_mutex_`): set when the
  /// restarted shard announces every survivor has rolled back (phase-3
  /// mark). A survivor holds after its own rollback until this arrives, so
  /// no re-executed traffic can land before a slower survivor's rollback
  /// wipes its inboxes.
  std::optional<uint64_t> rejoin_commit_;
  /// Grace window (guarded by `control_mutex_`): armed when a shard is
  /// quarantined mid-rounds with `rejoin_grace_ms > 0`.
  bool grace_armed_ = false;
  std::chrono::steady_clock::time_point grace_deadline_{};
  /// Set by `AwaitMarks` when it returned early (nothing consumed) because
  /// a rejoin request is pending. Driver thread only.
  bool rejoin_interrupt_ = false;

  std::mutex heartbeat_mutex_;
  std::condition_variable heartbeat_cv_;
  bool heartbeat_stop_ = false;
  uint64_t heartbeat_index_ = 0;
  std::thread heartbeat_;
};

}  // namespace pdms

#endif  // PDMS_NODE_PDMS_NODE_H_
