#include "node/pdms_node.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_set>

#include "query/query.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pdms {

PdmsNode::PdmsNode(Pdms pdms, SocketTransport* transport, NodeOptions options)
    : pdms_(std::move(pdms)),
      transport_(transport),
      options_(std::move(options)),
      snapshot_(std::make_shared<const Snapshot>()),
      active_(transport->shard_count(), true),
      last_heard_(transport->shard_count(), std::chrono::steady_clock::now()) {
}

PdmsNode::~PdmsNode() {
  {
    std::lock_guard<std::mutex> lock(heartbeat_mutex_);
    heartbeat_stop_ = true;
  }
  heartbeat_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  // The event loop invokes the control handler; detach it before members
  // (snapshot, queues) start going away.
  if (transport_ != nullptr) transport_->SetControlHandler(nullptr);
}

Result<std::unique_ptr<PdmsNode>> PdmsNode::Create(Pdms pdms,
                                                   NodeOptions options) {
  if (!pdms.valid()) {
    return Status::InvalidArgument("node needs a built Pdms");
  }
  auto* transport = dynamic_cast<SocketTransport*>(&pdms.transport());
  if (transport == nullptr) {
    return Status::InvalidArgument(
        "node needs a Pdms built over a SocketTransport");
  }
  if (options.rejoin_grace_ms < 0) {
    return Status::InvalidArgument("rejoin_grace_ms must be >= 0");
  }
  if (pdms.options().schedule != ScheduleKind::kPeriodic ||
      pdms.options().period_ticks != 1) {
    // Discovery may cost the shards a different tick count than a
    // single-process run, so round schedules only stay aligned when every
    // tick is a send tick.
    return Status::FailedPrecondition(
        "node mode requires the periodic schedule with period_ticks == 1");
  }
  std::vector<bool> is_local(pdms.peer_count(), false);
  for (PeerId p = 0; p < pdms.peer_count(); ++p) {
    is_local[p] = transport->IsLocalPeer(p);
  }
  PDMS_RETURN_IF_ERROR(
      pdms.engine().RestrictToLocalPeers(std::move(is_local)));

  std::unique_ptr<PdmsNode> node(
      new PdmsNode(std::move(pdms), transport, std::move(options)));
  {
    // Everything a snapshot must agree on to be loadable here: topology,
    // shard assignment, and the inference-relevant engine options.
    std::vector<uint32_t> shard_of(node->pdms_.peer_count(), 0);
    for (PeerId p = 0; p < node->pdms_.peer_count(); ++p) {
      shard_of[p] = transport->shard_of(p);
    }
    node->state_epoch_ =
        ComputeStateEpoch(node->pdms_.graph(), shard_of,
                          transport->shard_count(), node->pdms_.options());
  }
  if (!node->options_.state_dir.empty()) {
    node->store_ = std::make_unique<SnapshotStore>(node->options_.state_dir,
                                                   transport->local_shard());
  }
  transport->SetControlHandler(
      [raw = node.get()](Frame frame, uint64_t connection,
                         uint32_t remote_shard) {
        raw->HandleControlFrame(std::move(frame), connection, remote_shard);
      });
  if (node->options_.heartbeat_interval_ms > 0) {
    node->heartbeat_ = std::thread([raw = node.get()] { raw->HeartbeatMain(); });
  }
  return node;
}

// --- Mark protocol --------------------------------------------------------------

void PdmsNode::BroadcastMark(const MarkFrame& mark) {
  for (uint32_t shard = 0; shard < transport_->shard_count(); ++shard) {
    if (shard == transport_->local_shard()) continue;
    const Status status = transport_->SendControl(shard, Frame{mark});
    if (!status.ok()) PDMS_LOG_WARNING << status.message();
  }
}

Result<std::vector<MarkFrame>> PdmsNode::AwaitMarks(uint32_t phase,
                                                    uint64_t index) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.mark_timeout_ms);
  std::unique_lock<std::mutex> lock(control_mutex_);
  for (;;) {
    PDMS_RETURN_IF_ERROR(transport_->loop_error());
    // The barrier is a distinct count over *live* shards: AdmitMarkLocked
    // authenticated every queued mark against the link it arrived on and
    // already rejected duplicates, and quarantine may shrink `expected`
    // while we wait.
    size_t expected = 0;
    for (uint32_t shard = 0; shard < transport_->shard_count(); ++shard) {
      if (shard != transport_->local_shard() && active_[shard]) ++expected;
    }
    std::vector<bool> seen(transport_->shard_count(), false);
    size_t have = 0;
    for (const MarkFrame& mark : marks_) {
      if (mark.phase == phase && mark.index == index && active_[mark.shard] &&
          !seen[mark.shard]) {
        seen[mark.shard] = true;
        ++have;
      }
    }
    if (have >= expected) {
      if (phase != 1 || !GraceActiveLocked(std::chrono::steady_clock::now())) {
        break;
      }
      // Barrier satisfied only because quarantine shrank it, and the
      // rejoin grace window is still open: hold the round here instead of
      // degrading past the cut the restarted shard would need. Nothing is
      // consumed while parked, so a rollback re-awaits the queued marks.
    } else if (options_.quarantine_after_ms > 0) {
      // A shard whose mark is missing and from which nothing — mark or
      // heartbeat — has been heard past the deadline is dead, not slow.
      const auto now = std::chrono::steady_clock::now();
      std::vector<uint32_t> dead;
      for (uint32_t shard = 0; shard < transport_->shard_count(); ++shard) {
        if (shard == transport_->local_shard() || !active_[shard] ||
            seen[shard]) {
          continue;
        }
        if (now - last_heard_[shard] >
            std::chrono::milliseconds(options_.quarantine_after_ms)) {
          dead.push_back(shard);
        }
      }
      if (!dead.empty()) {
        if (phase == 1 && options_.rejoin_grace_ms > 0) {
          // Recovery enabled: keep the round barrier open for a while so
          // a restart of the dead shard can roll us back instead of the
          // run degrading permanently.
          grace_armed_ = true;
          grace_deadline_ =
              now + std::chrono::milliseconds(options_.rejoin_grace_ms);
        }
        for (uint32_t shard : dead) {
          active_[shard] = false;
          // Whatever it queued will never be awaited again.
          marks_.erase(std::remove_if(marks_.begin(), marks_.end(),
                                      [shard](const MarkFrame& m) {
                                        return m.shard == shard;
                                      }),
                       marks_.end());
        }
        // QuarantineShard takes the engine's locks and the transport's;
        // never hold control_mutex_ across it.
        lock.unlock();
        for (uint32_t shard : dead) QuarantineShard(shard);
        lock.lock();
        continue;
      }
    }
    if (have < expected && std::chrono::steady_clock::now() >= deadline) {
      return Status::Unavailable(
          StrFormat("no marks for step %llu after %dms — peer shard gone?",
                    static_cast<unsigned long long>(index),
                    options_.mark_timeout_ms));
    }
    if (phase == 1 && pending_rejoin_.has_value()) {
      // A restarted shard is asking back in. Serving it means rolling the
      // engine back, which restarts the whole round loop — hand control
      // back to RunRounds without consuming anything.
      rejoin_interrupt_ = true;
      return std::vector<MarkFrame>{};
    }
    control_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
  std::vector<MarkFrame> collected;
  auto keep = marks_.begin();
  for (auto it = marks_.begin(); it != marks_.end(); ++it) {
    if (it->phase == phase && it->index == index) {
      // Marks from a shard quarantined mid-wait are consumed but dropped.
      if (active_[it->shard]) collected.push_back(*it);
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  marks_.erase(keep, marks_.end());
  if (phase < 2) consumed_low_[phase] = index + 1;
  return collected;
}

bool PdmsNode::AdmitMarkLocked(const MarkFrame& mark, uint32_t remote_shard) {
  const uint32_t shards = transport_->shard_count();
  // `remote_shard` is the identity the link's hello handshake established
  // (== shard_count for ungreeted/client connections): a mark must claim
  // exactly the shard that sent it.
  const bool authentic = remote_shard < shards && mark.shard == remote_shard &&
                         mark.shard != transport_->local_shard();
  if (!authentic || mark.phase > 2) {
    rejected_marks_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!active_[mark.shard]) return false;  // quarantined: ignore, not hostile
  last_heard_[mark.shard] = std::chrono::steady_clock::now();
  if (mark.phase == 2) return false;  // heartbeat: liveness only, never queued
  if (mark.index < consumed_low_[mark.phase]) {
    rejected_marks_.fetch_add(1, std::memory_order_relaxed);
    return false;  // replay of a step already consumed
  }
  for (const MarkFrame& queued : marks_) {
    if (queued.shard == mark.shard && queued.phase == mark.phase &&
        queued.index == mark.index) {
      rejected_marks_.fetch_add(1, std::memory_order_relaxed);
      return false;  // duplicate
    }
  }
  return true;
}

void PdmsNode::HandleControlFrame(Frame frame, uint64_t connection,
                                  uint32_t remote_shard) {
  if (const auto* mark = std::get_if<MarkFrame>(&frame)) {
    {
      std::lock_guard<std::mutex> lock(control_mutex_);
      if (mark->phase == 3) {
        // Rejoin commit: the restarted shard has collected every
        // survivor's ack — all rollbacks are complete, resume sending.
        if (remote_shard < transport_->shard_count() &&
            mark->shard == remote_shard &&
            mark->shard != transport_->local_shard()) {
          rejoin_commit_ = mark->index;
        } else {
          rejected_marks_.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (AdmitMarkLocked(*mark, remote_shard)) {
        marks_.push_back(*mark);
      }
    }
    // Heartbeats woke nobody's predicate but refreshing the waiters is
    // harmless; admitted marks must wake AwaitMarks.
    control_cv_.notify_all();
    return;
  }
  if (const auto* request = std::get_if<QueryRequestFrame>(&frame)) {
    // Served right here on the event-loop thread: the snapshot BFS only
    // reads immutable structure (graph, mappings, stores) plus the
    // mutex-guarded snapshot, so it is safe concurrent with rounds.
    const QueryResponseFrame response = ExecuteSnapshotQuery(*request);
    const Status status =
        transport_->SendOnConnection(connection, Frame{response});
    if (!status.ok()) PDMS_LOG_WARNING << status.message();
    return;
  }
  if (const auto* rejoin = std::get_if<RejoinFrame>(&frame)) {
    // Authenticate against the link identity (same rule as marks), then
    // queue for the driver thread: rolling the engine back cannot happen
    // on the event loop, and the cut ring is driver-owned anyway.
    if (remote_shard < transport_->shard_count() &&
        rejoin->shard == remote_shard &&
        rejoin->shard != transport_->local_shard()) {
      {
        std::lock_guard<std::mutex> lock(control_mutex_);
        pending_rejoin_ = *rejoin;
      }
      control_cv_.notify_all();
    } else {
      rejected_marks_.fetch_add(1, std::memory_order_relaxed);
      PDMS_LOG_WARNING << "rejoin frame claiming shard " << rejoin->shard
                       << " arrived on link " << remote_shard << "; dropped";
    }
    return;
  }
  if (const auto* ack = std::get_if<RejoinAckFrame>(&frame)) {
    if (remote_shard < transport_->shard_count() &&
        ack->shard == remote_shard) {
      {
        std::lock_guard<std::mutex> lock(control_mutex_);
        rejoin_acks_[ack->shard] = *ack;
      }
      control_cv_.notify_all();
    }
    return;
  }
  // Hellos and stray responses need no action.
}

// --- Degradation ----------------------------------------------------------------

void PdmsNode::QuarantineShard(uint32_t shard) {
  PDMS_LOG_WARNING << "shard " << shard
                   << " missed the failure deadline; quarantining and "
                      "degrading to the surviving shards";
  const Status abandoned = transport_->AbandonShard(shard);
  if (!abandoned.ok()) PDMS_LOG_WARNING << abandoned.message();
  // Churn out every mapping with an endpoint the dead shard owns — the
  // survivors keep a consistent, smaller semantic network and the belief
  // network stops waiting on messages that will never come.
  const Digraph& graph = pdms_.graph();
  std::vector<EdgeId> doomed;
  for (EdgeId e : graph.LiveEdges()) {
    const PeerId src = graph.edge(e).src;
    const PeerId dst = graph.edge(e).dst;
    if (transport_->shard_of(src) == shard ||
        transport_->shard_of(dst) == shard) {
      doomed.push_back(e);
    }
  }
  for (EdgeId e : doomed) {
    const Status removed = pdms_.RemoveMapping(e);
    if (!removed.ok()) PDMS_LOG_WARNING << removed.message();
  }
  RebuildSnapshot();
}

bool PdmsNode::GraceActiveLocked(std::chrono::steady_clock::time_point now) {
  if (!grace_armed_) return false;
  if (now < grace_deadline_) return true;
  grace_armed_ = false;
  PDMS_LOG_WARNING << "rejoin grace window (" << options_.rejoin_grace_ms
                   << "ms) expired; continuing without the quarantined shard";
  return false;
}

std::vector<uint32_t> PdmsNode::quarantined() const {
  std::vector<uint32_t> result;
  std::lock_guard<std::mutex> lock(control_mutex_);
  for (uint32_t shard = 0; shard < static_cast<uint32_t>(active_.size());
       ++shard) {
    if (!active_[shard]) result.push_back(shard);
  }
  return result;
}

void PdmsNode::HeartbeatMain() {
  std::unique_lock<std::mutex> lock(heartbeat_mutex_);
  while (!heartbeat_stop_) {
    heartbeat_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.heartbeat_interval_ms));
    if (heartbeat_stop_) break;
    MarkFrame beat;
    beat.shard = transport_->local_shard();
    beat.phase = 2;
    beat.index = heartbeat_index_++;
    lock.unlock();
    BroadcastMark(beat);
    lock.lock();
  }
}

// --- Discovery ------------------------------------------------------------------

Result<size_t> PdmsNode::RunDiscovery() {
  uint64_t frames_before = transport_->data_frames_sent();
  pdms_.engine().StartLocalProbes();
  for (uint64_t step = 0;; ++step) {
    const uint64_t frames_now = transport_->data_frames_sent();
    const uint64_t sent_this_step = frames_now - frames_before;
    frames_before = frames_now;
    const bool pending = transport_->HasPendingMessages();

    MarkFrame mark;
    mark.shard = transport_->local_shard();
    mark.phase = 0;
    mark.index = step;
    mark.frames_sent = sent_this_step;
    mark.pending = pending;
    BroadcastMark(mark);
    PDMS_ASSIGN_OR_RETURN(const std::vector<MarkFrame> marks,
                          AwaitMarks(0, step));

    // Every shard evaluates the same symmetric expression over the same
    // shared samples, so all of them tick (or stop) together.
    bool traffic = sent_this_step > 0 || pending;
    for (const MarkFrame& remote : marks) {
      traffic = traffic || remote.frames_sent > 0 || remote.pending;
    }
    if (!traffic) break;
    pdms_.engine().DeliverTick();
    // A tick barrier that timed out (or a dead event loop) must surface
    // here, not as a silently short discovery.
    PDMS_RETURN_IF_ERROR(transport_->barrier_status());
  }
  RebuildSnapshot();

  size_t local_replicas = 0;
  std::unordered_set<uint64_t> seen;
  for (PeerId p = 0; p < pdms_.peer_count(); ++p) {
    if (!transport_->IsLocalPeer(p)) continue;
    for (const Peer::ReplicaView& view : pdms_.peer(p).ReplicaViews()) {
      if (seen.insert(view.id.lo ^ view.id.hi).second) ++local_replicas;
    }
  }
  return local_replicas;
}

// --- Rounds ---------------------------------------------------------------------

Result<ConvergenceReport> PdmsNode::RunRounds() {
  const EngineOptions& engine_options = pdms_.options();
  // The socket wire is lossless, so the auto patience rule resolves to 1
  // exactly like the lossless simulator's.
  const size_t patience = engine_options.convergence_patience == 0
                              ? 1
                              : engine_options.convergence_patience;
  ConvergenceReport report;
  size_t quiet = 0;
  double previous_change = 1.0;
  uint64_t round = 0;
  // Resuming from a restored or rolled-back cut: engine, inboxes and the
  // transport clock were already applied; pick up the loop scalars and
  // skip the barrier the cut already crossed.
  bool skip_barrier = false;
  if (resume_.has_value()) {
    round = resume_->round;
    quiet = static_cast<size_t>(resume_->quiet);
    previous_change = resume_->previous_change;
    report.rounds = round;
    report.belief_updates_sent = resume_->report_updates;
    resume_.reset();
    skip_barrier = true;
  }
  RebuildSnapshot();
  for (;;) {
    if (!skip_barrier) {
      MarkFrame mark;
      mark.shard = transport_->local_shard();
      mark.phase = 1;
      mark.index = round;
      mark.max_change = previous_change;
      BroadcastMark(mark);
      PDMS_ASSIGN_OR_RETURN(const std::vector<MarkFrame> marks,
                            AwaitMarks(1, round));
      if (rejoin_interrupt_) {
        // A restarted shard asked back in; the barrier consumed nothing.
        rejoin_interrupt_ = false;
        std::optional<RejoinFrame> rejoin;
        {
          std::lock_guard<std::mutex> lock(control_mutex_);
          rejoin.swap(pending_rejoin_);
        }
        if (rejoin.has_value()) {
          const Status served = ServeRejoin(*rejoin);
          if (!served.ok()) {
            PDMS_LOG_WARNING << "rejoin of shard " << rejoin->shard
                             << " not served: " << served.message();
          }
          if (resume_.has_value()) {
            round = resume_->round;
            quiet = static_cast<size_t>(resume_->quiet);
            previous_change = resume_->previous_change;
            report.rounds = round;
            report.belief_updates_sent = resume_->report_updates;
            resume_.reset();
            skip_barrier = true;
          }
        }
        // Either restart from the rolled-back cut or retry this barrier
        // (the re-broadcast mark is a duplicate peers reject harmlessly).
        continue;
      }
      if (round > 0) {
        double global_change = previous_change;
        for (const MarkFrame& remote : marks) {
          global_change = std::max(global_change, remote.max_change);
        }
        quiet = global_change < engine_options.tolerance ? quiet + 1 : 0;
        if (quiet >= patience) {
          report.converged = true;
          break;
        }
      }
      if (round == options_.max_rounds) break;
    }
    skip_barrier = false;
    // This is the consistent cut "rounds 1..`round` executed everywhere,
    // round-`round` traffic sitting in the inboxes": every shard has
    // crossed the round-`round` barrier and nothing else is in flight.
    CaptureCut(round, quiet, previous_change, report);
    const RoundReport step = pdms_.engine().RunRound();
    PDMS_RETURN_IF_ERROR(transport_->barrier_status());
    ++round;
    report.rounds = round;
    report.belief_updates_sent += step.belief_updates_sent;
    previous_change = step.max_posterior_change;
    if (Logger::Get().Enabled(LogLevel::kDebug)) {
      char change_hex[32];
      std::snprintf(change_hex, sizeof(change_hex), "%a",
                    step.max_posterior_change);
      PDMS_LOG_DEBUG << "round " << round << ": updates "
                     << step.belief_updates_sent << ", max_change "
                     << change_hex << ", tick " << transport_->now();
    }
    RebuildSnapshot();
    if (options_.round_hook) options_.round_hook(round);
    if (options_.round_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.round_delay_ms));
    }
  }
  return report;
}

// --- Durable state & re-admission -----------------------------------------------

void PdmsNode::CaptureCut(uint64_t round, uint64_t quiet,
                          double previous_change,
                          const ConvergenceReport& report) {
  const bool ring = options_.rejoin_grace_ms > 0;
  if (store_ == nullptr && !ring) return;
  NodeSnapshot cut;
  cut.state_epoch = state_epoch_;
  cut.round = round;
  cut.tick = transport_->now();
  cut.quiet = quiet;
  cut.previous_change = previous_change;
  cut.report_updates = report.belief_updates_sent;
  cut.engine = pdms_.engine().CaptureImage();
  cut.inbox = transport_->CaptureInboxes();
  // The barrier is not a wall-clock rendezvous: a shard that crossed it
  // first may already be executing the next round, and its frames can land
  // in our inboxes before the capture. This cut's own round-`round` traffic
  // is stamped `tick + 1` (RunRound advances the clock before delivering);
  // anything later belongs to a round a faster shard is already running and
  // is not part of the cut — after a rollback its sender re-executes that
  // round and sends it again.
  const uint64_t cut_horizon = cut.tick + 1;
  const size_t captured = cut.inbox.size();
  cut.inbox.erase(std::remove_if(cut.inbox.begin(), cut.inbox.end(),
                                 [cut_horizon](const CapturedFrame& frame) {
                                   return frame.envelope.deliver_at > cut_horizon;
                                 }),
                  cut.inbox.end());
  if (Logger::Get().Enabled(LogLevel::kDebug)) {
    PDMS_LOG_DEBUG << "cut " << round << ": tick " << cut.tick << ", inbox "
                   << cut.inbox.size() << " (" << (captured - cut.inbox.size())
                   << " ahead-of-cut filtered)";
  }
  if (store_ != nullptr) {
    const Status saved = store_->Save(cut);
    if (!saved.ok()) {
      // Snapshotting is best-effort: a failing disk degrades recovery,
      // never the run itself.
      PDMS_LOG_WARNING << "snapshot for round " << round
                       << " not persisted: " << saved.message();
    }
  }
  // After a rollback the restored cut comes through here again; the ring
  // already holds it.
  if (ring && (cut_ring_.empty() || cut_ring_.back().round < round)) {
    cut_ring_.push_back(std::move(cut));
    while (cut_ring_.size() > kCutRingDepth) cut_ring_.pop_front();
  }
}

Result<uint64_t> PdmsNode::TryRestoreFromState() {
  if (store_ == nullptr) {
    return Status::NotFound("no state directory configured");
  }
  auto loaded = store_->Load(state_epoch_);
  if (!loaded.ok()) return loaded.status();
  NodeSnapshot snapshot = std::move(loaded).value();
  const uint64_t round = snapshot.round;
  PDMS_RETURN_IF_ERROR(pdms_.engine().RestoreImage(std::move(snapshot.engine)));
  PDMS_RETURN_IF_ERROR(transport_->RestoreInboxes(std::move(snapshot.inbox)));
  transport_->SetNow(snapshot.tick);
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    // Marks below the restored cut are history; the next barrier this
    // process joins is round + 1.
    consumed_low_[1] = round + 1;
  }
  snapshot.engine = PdmsEngine::EngineImage{};
  snapshot.inbox.clear();
  resume_ = std::move(snapshot);
  RebuildSnapshot();
  PDMS_LOG_INFO << "restored from snapshot: round " << round << ", epoch "
                << state_epoch_;
  return round;
}

Status PdmsNode::PerformRejoin() {
  if (!resume_.has_value()) {
    return Status::FailedPrecondition(
        "PerformRejoin requires a successful TryRestoreFromState");
  }
  const uint64_t round = resume_->round;
  if (transport_->shard_count() <= 1) return Status::Ok();
  RejoinFrame rejoin;
  rejoin.shard = transport_->local_shard();
  rejoin.state_epoch = state_epoch_;
  rejoin.round = round;
  rejoin.address = transport_->local_address();
  for (uint32_t shard = 0; shard < transport_->shard_count(); ++shard) {
    if (shard == transport_->local_shard()) continue;
    const Status sent = transport_->SendControl(shard, Frame{rejoin});
    if (!sent.ok()) PDMS_LOG_WARNING << sent.message();
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.mark_timeout_ms);
  std::unique_lock<std::mutex> lock(control_mutex_);
  for (;;) {
    PDMS_RETURN_IF_ERROR(transport_->loop_error());
    for (const auto& [shard, ack] : rejoin_acks_) {
      if (!ack.accepted) {
        return Status::FailedPrecondition(StrFormat(
            "shard %u rejected rejoin: %s", shard, ack.reason.c_str()));
      }
    }
    std::vector<uint32_t> missing;
    for (uint32_t shard = 0; shard < transport_->shard_count(); ++shard) {
      if (shard == transport_->local_shard() || !active_[shard]) continue;
      if (rejoin_acks_.find(shard) == rejoin_acks_.end()) {
        missing.push_back(shard);
      }
    }
    if (missing.empty()) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      // A survivor that never answered is as gone as a shard that missed
      // the failure deadline: quarantine it and resume without it.
      for (uint32_t shard : missing) active_[shard] = false;
      lock.unlock();
      for (uint32_t shard : missing) QuarantineShard(shard);
      lock.lock();
      break;
    }
    control_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
  rejoin_acks_.clear();
  lock.unlock();
  // Every survivor has rolled back (their acks prove it) and is holding its
  // round loop for this commit. Only now may anyone send round traffic
  // again: a re-executed frame arriving before a slower survivor's
  // rollback would be wiped by its inbox restore and never re-sent.
  MarkFrame commit;
  commit.shard = transport_->local_shard();
  commit.phase = 3;
  commit.index = round;
  BroadcastMark(commit);
  PDMS_LOG_INFO << "readmitted at round " << round;
  return Status::Ok();
}

void PdmsNode::SendRejoinVerdict(uint32_t shard, uint64_t round, bool accepted,
                                 std::string reason) {
  RejoinAckFrame ack;
  ack.shard = transport_->local_shard();
  ack.round = round;
  ack.accepted = accepted;
  ack.reason = std::move(reason);
  const Status status = transport_->SendControl(shard, Frame{ack});
  if (!status.ok()) PDMS_LOG_WARNING << status.message();
}

Status PdmsNode::ServeRejoin(const RejoinFrame& rejoin) {
  const uint32_t shards = transport_->shard_count();
  if (rejoin.shard >= shards || rejoin.shard == transport_->local_shard()) {
    return Status::InvalidArgument(
        StrFormat("rejoin from impossible shard %u", rejoin.shard));
  }
  // Rejection verdicts are best-effort: they only reach a shard whose link
  // is still live (the fast-restart case); a quarantined requester times
  // out on the missing ack instead.
  if (rejoin.state_epoch != state_epoch_) {
    SendRejoinVerdict(rejoin.shard, rejoin.round, false,
                      "state epoch mismatch — topology or options diverged");
    return Status::FailedPrecondition(
        StrFormat("shard %u rejoined with state epoch %llx, ours is %llx",
                  rejoin.shard,
                  static_cast<unsigned long long>(rejoin.state_epoch),
                  static_cast<unsigned long long>(state_epoch_)));
  }
  const NodeSnapshot* cut = nullptr;
  for (const NodeSnapshot& entry : cut_ring_) {
    if (entry.round == rejoin.round) {
      cut = &entry;
      break;
    }
  }
  if (cut == nullptr) {
    SendRejoinVerdict(
        rejoin.shard, rejoin.round, false,
        StrFormat("cut for round %llu is no longer held",
                  static_cast<unsigned long long>(rejoin.round)));
    return Status::NotFound(
        StrFormat("no ring entry for round %llu",
                  static_cast<unsigned long long>(rejoin.round)));
  }
  PDMS_LOG_INFO << "shard " << rejoin.shard << " rejoining at round "
                << rejoin.round << "; rolling back to that cut";
  // Roll everything back to the requested cut. The ring entry is restored
  // by copy: it stays valid for a repeat attempt.
  PDMS_RETURN_IF_ERROR(pdms_.engine().RestoreImage(cut->engine));
  PDMS_RETURN_IF_ERROR(transport_->RestoreInboxes(cut->inbox));
  transport_->SetNow(cut->tick);
  if (!transport_->IsAbandoned(rejoin.shard)) {
    // Fast restart: the shard came back before the failure detector fired.
    // Tear the stale link down so re-admission dials the new incarnation.
    PDMS_RETURN_IF_ERROR(transport_->AbandonShard(rejoin.shard));
  }
  // Readmit *before* acking: frames staged toward an abandoned shard are
  // silently dropped, and the verdict below must reach it.
  PDMS_RETURN_IF_ERROR(transport_->ReadmitShard(rejoin.shard, rejoin.address));
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    active_[rejoin.shard] = true;
    last_heard_[rejoin.shard] = std::chrono::steady_clock::now();
    consumed_low_[1] = rejoin.round + 1;
    grace_armed_ = false;
    rejoin_commit_.reset();
    // Queued round marks are all from the execution being rolled back:
    // indexes at or below the cut are spent, and later ones describe
    // rounds every shard is about to re-run and re-announce. Letting a
    // stale mark satisfy the re-run's barrier would break the invariant
    // that a mark flushes its round's data frames — the re-sent data
    // travels long after the original mark did.
    marks_.erase(std::remove_if(
                     marks_.begin(), marks_.end(),
                     [](const MarkFrame& mark) { return mark.phase == 1; }),
                 marks_.end());
  }
  SendRejoinVerdict(rejoin.shard, rejoin.round, true, "");
  NodeSnapshot resume;
  resume.state_epoch = state_epoch_;
  resume.round = cut->round;
  resume.tick = cut->tick;
  resume.quiet = cut->quiet;
  resume.previous_change = cut->previous_change;
  resume.report_updates = cut->report_updates;
  resume_ = std::move(resume);
  RebuildSnapshot();
  // Hold here until the restarted shard confirms every survivor rolled
  // back. Resuming earlier would race a slower survivor's inbox restore:
  // our re-executed round traffic could land just before the wipe and
  // vanish from the run for good.
  {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.mark_timeout_ms);
    std::unique_lock<std::mutex> lock(control_mutex_);
    while (!rejoin_commit_.has_value()) {
      PDMS_RETURN_IF_ERROR(transport_->loop_error());
      if (std::chrono::steady_clock::now() >= deadline) {
        PDMS_LOG_WARNING << "no rejoin commit from shard " << rejoin.shard
                         << " after " << options_.mark_timeout_ms
                         << "ms; resuming anyway";
        break;
      }
      control_cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
    rejoin_commit_.reset();
  }
  return Status::Ok();
}

// --- Posterior snapshots & queries ----------------------------------------------

void PdmsNode::RebuildSnapshot() {
  auto snapshot = std::make_shared<Snapshot>();
  const Digraph& graph = pdms_.graph();
  for (EdgeId e : graph.LiveEdges()) {
    const PeerId owner = graph.edge(e).src;
    if (!transport_->IsLocalPeer(owner)) continue;
    const Peer& peer = pdms_.peer(owner);
    const SchemaMapping* mapping = peer.mapping(e);
    if (mapping == nullptr) continue;
    const size_t attrs = peer.schema().size();
    for (AttributeId a = 0; a < attrs; ++a) {
      const MappingVarKey var{e, a};
      if (peer.HasEvidence(var)) {
        snapshot->posteriors.emplace(var.Packed(), peer.Posterior(var));
      }
    }
    const MappingVarKey coarse{e, MappingVarKey::kWholeMapping};
    if (peer.HasEvidence(coarse)) {
      snapshot->posteriors.emplace(coarse.Packed(), peer.Posterior(coarse));
    }
  }
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snapshot);
}

std::shared_ptr<const PdmsNode::Snapshot> PdmsNode::CurrentSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

bool PdmsNode::GateAllows(const Peer& owner, EdgeId edge,
                          AttributeId attribute,
                          const Snapshot& snapshot) const {
  // Mirrors Peer::GateAllows, reading the frozen snapshot instead of the
  // live (round-mutated) posterior state.
  const SchemaMapping* mapping = owner.mapping(edge);
  if (mapping == nullptr || !mapping->Apply(attribute).has_value()) {
    return false;
  }
  const EngineOptions& engine_options = pdms_.options();
  const MappingVarKey var =
      engine_options.granularity == Granularity::kCoarse
          ? MappingVarKey{edge, MappingVarKey::kWholeMapping}
          : MappingVarKey{edge, attribute};
  const auto it = snapshot.posteriors.find(var.Packed());
  if (it == snapshot.posteriors.end()) {
    return engine_options.forward_without_evidence;
  }
  return it->second > engine_options.theta;
}

QueryResponseFrame PdmsNode::ExecuteSnapshotQuery(
    const QueryRequestFrame& request) const {
  QueryResponseFrame response;
  response.request_id = request.request_id;
  if (request.origin >= pdms_.peer_count() ||
      !transport_->IsLocalPeer(request.origin)) {
    response.ok = false;
    response.error =
        StrFormat("origin peer %u is not hosted by this node", request.origin);
    return response;
  }
  Result<Query> parsed =
      ParseQuery(request.text, pdms_.peer(request.origin).schema());
  if (!parsed.ok()) {
    response.ok = false;
    response.error = parsed.status().ToString();
    return response;
  }
  const std::shared_ptr<const Snapshot> snapshot = CurrentSnapshot();
  const Digraph& graph = pdms_.graph();

  struct Visit {
    PeerId peer;
    Query query;
    uint32_t ttl;
    std::vector<PeerId> path;  ///< visited list carried by the message
  };
  std::deque<Visit> frontier;
  frontier.push_back(Visit{request.origin, std::move(parsed).value(),
                           request.ttl, {}});
  std::unordered_set<PeerId> processed;
  while (!frontier.empty()) {
    Visit visit = std::move(frontier.front());
    frontier.pop_front();
    if (!processed.insert(visit.peer).second) continue;
    const Peer& peer = pdms_.peer(visit.peer);
    for (const ResultRow& row : peer.store().Execute(visit.query)) {
      std::string rendered = StrFormat("peer=%u doc=%llu", visit.peer,
                                       static_cast<unsigned long long>(row.document));
      for (const std::string& value : row.values) {
        rendered += '|';
        rendered += value;
      }
      response.rows.push_back(std::move(rendered));
    }
    ++response.reached;
    if (visit.ttl == 0) continue;
    for (EdgeId edge : graph.out_edges(visit.peer)) {
      if (!graph.edge_alive(edge)) continue;
      const PeerId next = graph.edge(edge).dst;
      // Shard-local serving: edges leaving the shard are out of this
      // node's jurisdiction (a distributed query fabric would forward).
      if (!transport_->IsLocalPeer(next)) continue;
      if (std::find(visit.path.begin(), visit.path.end(), next) !=
          visit.path.end()) {
        continue;
      }
      bool allowed = true;
      for (AttributeId attribute : visit.query.Attributes()) {
        if (!GateAllows(peer, edge, attribute, *snapshot)) {
          allowed = false;
          break;
        }
      }
      if (!allowed) continue;
      const SchemaMapping* mapping = peer.mapping(edge);
      Result<Query> translated = visit.query.Translate(*mapping);
      if (!translated.ok()) continue;  // ⊥ slipped through: blocked
      Visit forward;
      forward.peer = next;
      forward.query = std::move(translated).value();
      forward.ttl = visit.ttl - 1;
      forward.path = visit.path;
      forward.path.push_back(visit.peer);
      frontier.push_back(std::move(forward));
    }
  }
  return response;
}

// --- Query client ---------------------------------------------------------------

Result<QueryResponseFrame> PdmsNode::QueryNode(
    const std::string& address, const QueryRequestFrame& request,
    int timeout_ms) {
  sockaddr_storage addr{};
  socklen_t addr_len = 0;
  PDMS_RETURN_IF_ERROR(ParseSocketAddress(address, &addr, &addr_len));

  const int fd = socket(addr.ss_family, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), addr_len) < 0) {
    close(fd);
    return Status::Unavailable(
        StrFormat("connect(%s): %s", address.c_str(), std::strerror(errno)));
  }

  std::vector<uint8_t> bytes;
  EncodeFrame(Frame{request}, &bytes);
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n <= 0) {
      close(fd);
      return Status::Unavailable(
          StrFormat("send: %s", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }

  FrameAssembler assembler;
  for (;;) {
    uint8_t buffer[4096];
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      close(fd);
      return Status::Unavailable(
          StrFormat("no response within %dms", timeout_ms));
    }
    assembler.Feed(std::span<const uint8_t>(buffer, n));
    auto next = assembler.Next();
    if (!next.ok()) {
      close(fd);
      return next.status();
    }
    if (!next->has_value()) continue;
    close(fd);
    if (auto* reply = std::get_if<QueryResponseFrame>(&**next)) {
      return std::move(*reply);
    }
    return Status::Internal("node answered with an unexpected frame type");
  }
}

}  // namespace pdms
