#include "mapping/mapping.h"

#include "util/string_util.h"

namespace pdms {

SchemaMapping SchemaMapping::FromCorrespondences(
    std::string name, size_t source_size,
    const std::vector<Correspondence>& correspondences) {
  SchemaMapping mapping(std::move(name), source_size);
  for (const Correspondence& c : correspondences) {
    if (c.source < source_size) mapping.table_[c.source] = c.target;
  }
  return mapping;
}

Status SchemaMapping::Set(AttributeId source,
                          std::optional<AttributeId> target) {
  if (source >= table_.size()) {
    return Status::OutOfRange(
        StrFormat("source attribute %u out of range (%zu)", source,
                  table_.size()));
  }
  table_[source] = target;
  return Status::Ok();
}

size_t SchemaMapping::DefinedCount() const {
  size_t count = 0;
  for (const auto& entry : table_) {
    if (entry.has_value()) ++count;
  }
  return count;
}

SchemaMapping SchemaMapping::ComposeWith(const SchemaMapping& next) const {
  SchemaMapping composed(name_ + "∘" + next.name_, table_.size());
  for (AttributeId a = 0; a < table_.size(); ++a) {
    const std::optional<AttributeId> mid = table_[a];
    composed.table_[a] = mid.has_value() ? next.Apply(*mid) : std::nullopt;
  }
  return composed;
}

Result<SchemaMapping> SchemaMapping::ComposeChain(
    const std::vector<const SchemaMapping*>& chain) {
  if (chain.empty()) {
    return Status::InvalidArgument("cannot compose an empty mapping chain");
  }
  SchemaMapping composed = *chain[0];
  for (size_t i = 1; i < chain.size(); ++i) {
    composed = composed.ComposeWith(*chain[i]);
  }
  return composed;
}

std::string SchemaMapping::ToString() const {
  std::string out = StrFormat("Mapping '%s' (%zu attributes, %zu defined)\n",
                              name_.c_str(), table_.size(), DefinedCount());
  for (AttributeId a = 0; a < table_.size(); ++a) {
    if (table_[a].has_value()) {
      out += StrFormat("  %u -> %u\n", a, *table_[a]);
    } else {
      out += StrFormat("  %u -> ⊥\n", a);
    }
  }
  return out;
}

std::string_view FeedbackSignName(FeedbackSign sign) {
  switch (sign) {
    case FeedbackSign::kPositive:
      return "positive";
    case FeedbackSign::kNegative:
      return "negative";
    case FeedbackSign::kNeutral:
      return "neutral";
  }
  return "?";
}

FeedbackSign CompareCycle(const SchemaMapping& closure, AttributeId a) {
  const std::optional<AttributeId> image = closure.Apply(a);
  if (!image.has_value()) return FeedbackSign::kNeutral;
  return *image == a ? FeedbackSign::kPositive : FeedbackSign::kNegative;
}

FeedbackSign CompareParallel(const SchemaMapping& path1,
                             const SchemaMapping& path2, AttributeId a) {
  const std::optional<AttributeId> image1 = path1.Apply(a);
  const std::optional<AttributeId> image2 = path2.Apply(a);
  if (!image1.has_value() || !image2.has_value()) return FeedbackSign::kNeutral;
  return *image1 == *image2 ? FeedbackSign::kPositive : FeedbackSign::kNegative;
}

}  // namespace pdms
