#ifndef PDMS_MAPPING_MAPPING_GENERATOR_H_
#define PDMS_MAPPING_MAPPING_GENERATOR_H_

#include <vector>

#include "graph/digraph.h"
#include "mapping/mapping.h"
#include "schema/schema.h"
#include "util/rng.h"

namespace pdms {

/// Configuration for synthetic mapping networks over a shared concept
/// universe (used by the simulation experiments, Section 5.1).
struct MappingNetworkOptions {
  /// Attributes per schema. The paper's convergence experiments use
  /// schemas of about ten attributes (∆ = 0.1).
  size_t attributes_per_schema = 10;
  /// Probability that a mapping entry is semantically wrong (maps to a
  /// uniformly random different attribute).
  double error_rate = 0.2;
  /// Probability that a mapping entry is ⊥ (target lacks the concept).
  double null_rate = 0.0;
};

/// A fully materialized synthetic PDMS: topology, one schema per peer, one
/// mapping per directed edge, plus the ground truth needed for scoring.
///
/// Every peer's schema draws from the same concept universe with peer-
/// specific attribute names ("p3_a7"), and the hidden permutation between
/// schemas is the identity on concept ids — so mapping entry `a -> b` is
/// correct iff both denote the same concept.
struct SyntheticPdms {
  Digraph graph;
  std::vector<Schema> schemas;                 // indexed by NodeId
  std::vector<SchemaMapping> mappings;         // indexed by EdgeId
  /// ground_truth[edge][attr] = true iff the entry is semantically correct.
  /// ⊥ entries are recorded as correct (they assert nothing).
  std::vector<std::vector<bool>> ground_truth;

  /// Count of attribute-level mapping entries that are wrong.
  size_t CountErroneousEntries() const;
};

/// Builds schemas and mappings for every live edge of `graph`.
/// Deterministic for a given `rng` state.
SyntheticPdms BuildSyntheticPdms(const Digraph& graph,
                                 const MappingNetworkOptions& options,
                                 Rng* rng);

/// Builds a mapping for one edge where the *whole mapping* is either
/// correct (identity on concepts) or faulty on a chosen set of attributes;
/// used by tests and by benches that need precise control (e.g. the
/// introductory example where m24 garbles exactly the Creator attribute).
SchemaMapping MakeConceptMapping(const std::string& name, size_t attributes,
                                 const std::vector<AttributeId>& wrong_on,
                                 Rng* rng);

}  // namespace pdms

#endif  // PDMS_MAPPING_MAPPING_GENERATOR_H_
