#ifndef PDMS_MAPPING_MAPPING_H_
#define PDMS_MAPPING_MAPPING_H_

#include <optional>
#include <string>
#include <vector>

#include "schema/alignment.h"
#include "schema/schema.h"
#include "util/status.h"

namespace pdms {

/// A directed pairwise schema mapping: for every attribute of the source
/// schema, either the target attribute it is rewritten into, or ⊥ (the
/// target schema has no representation for it; Section 3.2.1).
///
/// This is the operational object queries are translated through; whether
/// an individual entry is *semantically* correct is exactly what the
/// paper's message passing scheme estimates.
class SchemaMapping {
 public:
  SchemaMapping() = default;

  /// Creates an empty (all-⊥) mapping for `source_size` attributes.
  SchemaMapping(std::string name, size_t source_size)
      : name_(std::move(name)),
        table_(source_size, std::nullopt) {}

  /// Builds a mapping from aligner output.
  static SchemaMapping FromCorrespondences(
      std::string name, size_t source_size,
      const std::vector<Correspondence>& correspondences);

  const std::string& name() const { return name_; }
  size_t source_size() const { return table_.size(); }

  /// Sets the image of `source`; fails on out-of-range source.
  Status Set(AttributeId source, std::optional<AttributeId> target);

  /// Image of a source attribute (⊥ as nullopt).
  std::optional<AttributeId> Apply(AttributeId source) const {
    return source < table_.size() ? table_[source] : std::nullopt;
  }

  /// Number of non-⊥ entries.
  size_t DefinedCount() const;

  /// Composition `next ∘ this`: first apply this mapping, then `next`.
  /// ⊥ propagates. The result maps this mapping's source schema into
  /// `next`'s target schema — one step of the paper's transitive closure
  /// of mapping operations.
  SchemaMapping ComposeWith(const SchemaMapping& next) const;

  /// Composes a whole chain left-to-right; an empty chain is invalid.
  static Result<SchemaMapping> ComposeChain(
      const std::vector<const SchemaMapping*>& chain);

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<std::optional<AttributeId>> table_;
};

/// Per-attribute comparison outcome between an original attribute and its
/// image under a closed chain of mappings (Section 3.2.1).
enum class FeedbackSign : uint8_t {
  kPositive = 0,  ///< image == original: semantic agreement along the cycle
  kNegative = 1,  ///< image != original: at least one mapping disagreed
  kNeutral = 2,   ///< image == ⊥: no representation at some hop
};

std::string_view FeedbackSignName(FeedbackSign sign);

/// Compares attribute `a` against its image under the composed cycle
/// mapping `closure` (whose source and target schema are the same).
FeedbackSign CompareCycle(const SchemaMapping& closure, AttributeId a);

/// Compares the images of attribute `a` under two composed parallel-path
/// mappings (Section 3.3): positive if both defined and equal, negative if
/// both defined and different, neutral if either is ⊥.
FeedbackSign CompareParallel(const SchemaMapping& path1,
                             const SchemaMapping& path2, AttributeId a);

}  // namespace pdms

#endif  // PDMS_MAPPING_MAPPING_H_
