#include "mapping/mapping_generator.h"

#include <cassert>

#include "util/string_util.h"

namespace pdms {

size_t SyntheticPdms::CountErroneousEntries() const {
  size_t erroneous = 0;
  for (EdgeId e = 0; e < ground_truth.size(); ++e) {
    if (!graph.edge_alive(e)) continue;
    for (AttributeId a = 0; a < ground_truth[e].size(); ++a) {
      if (!ground_truth[e][a] && mappings[e].Apply(a).has_value()) ++erroneous;
    }
  }
  return erroneous;
}

SyntheticPdms BuildSyntheticPdms(const Digraph& graph,
                                 const MappingNetworkOptions& options,
                                 Rng* rng) {
  SyntheticPdms pdms;
  pdms.graph = graph;
  const size_t s = options.attributes_per_schema;

  pdms.schemas.reserve(graph.node_count());
  for (NodeId p = 0; p < graph.node_count(); ++p) {
    Schema schema(StrFormat("p%u", p));
    for (size_t a = 0; a < s; ++a) {
      Result<AttributeId> id = schema.AddAttribute(StrFormat("p%u_a%zu", p, a));
      assert(id.ok());
      (void)id;
    }
    pdms.schemas.push_back(std::move(schema));
  }

  pdms.mappings.resize(graph.edge_capacity());
  pdms.ground_truth.resize(graph.edge_capacity());
  for (EdgeId e = 0; e < graph.edge_capacity(); ++e) {
    if (!graph.edge_alive(e)) continue;
    const Edge& edge = graph.edge(e);
    SchemaMapping mapping(StrFormat("m%u_%u", edge.src, edge.dst), s);
    std::vector<bool> truth(s, true);
    for (AttributeId a = 0; a < s; ++a) {
      if (options.null_rate > 0.0 && rng->Bernoulli(options.null_rate)) {
        // ⊥: asserts nothing, so it stays "correct" in the ground truth.
        continue;
      }
      if (rng->Bernoulli(options.error_rate)) {
        // Map to a uniformly random *different* attribute (the paper's
        // error model behind the ∆ estimate, Section 4.5).
        AttributeId wrong = a;
        while (wrong == a && s > 1) {
          wrong = static_cast<AttributeId>(rng->Index(s));
        }
        Status status = mapping.Set(a, wrong);
        assert(status.ok());
        (void)status;
        truth[a] = false;
      } else {
        Status status = mapping.Set(a, a);
        assert(status.ok());
        (void)status;
      }
    }
    pdms.mappings[e] = std::move(mapping);
    pdms.ground_truth[e] = std::move(truth);
  }
  return pdms;
}

SchemaMapping MakeConceptMapping(const std::string& name, size_t attributes,
                                 const std::vector<AttributeId>& wrong_on,
                                 Rng* rng) {
  SchemaMapping mapping(name, attributes);
  std::vector<bool> wrong(attributes, false);
  for (AttributeId a : wrong_on) {
    assert(a < attributes);
    wrong[a] = true;
  }
  for (AttributeId a = 0; a < attributes; ++a) {
    if (!wrong[a]) {
      Status status = mapping.Set(a, a);
      assert(status.ok());
      (void)status;
      continue;
    }
    AttributeId target = a;
    while (target == a && attributes > 1) {
      target = static_cast<AttributeId>(rng->Index(attributes));
    }
    Status status = mapping.Set(a, target);
    assert(status.ok());
    (void)status;
  }
  return mapping;
}

}  // namespace pdms
