#ifndef PDMS_UTIL_STATUS_H_
#define PDMS_UTIL_STATUS_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

namespace pdms {

/// Canonical error space for all fallible operations in the library.
///
/// The library does not use C++ exceptions: every operation that can fail
/// returns a `Status`, or a `Result<T>` when it also produces a value
/// (the RocksDB / Abseil idiom).
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kUnavailable = 8,
  kDataLoss = 9,
  kDeadlineExceeded = 10,
};

/// Returns a stable, human-readable name for a status code (e.g. "NotFound").
std::string_view StatusCodeName(StatusCode code);

/// Value-semantic error indicator carrying a code and an optional message.
///
/// A default-constructed `Status` is OK. Statuses are cheap to copy and
/// compare; the message participates only in printing, not in equality.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Holds either a value of type `T` or a non-OK `Status`.
///
/// Accessing the value of a failed result aborts in debug builds; callers
/// must check `ok()` first. `T` must be movable.
template <typename T>
class Result {
  static_assert(!std::is_same_v<std::remove_cv_t<T>, Status>,
                "Result<Status> is ill-formed: both constructors would "
                "compete for a Status argument. Return Status directly.");

 public:
  /// Constructs a successful result (implicit by design, mirroring
  /// absl::StatusOr, so `return value;` works in factory functions).
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok() && "value() called on failed Result");
    return *value_;
  }
  T& value() & {
    assert(ok() && "value() called on failed Result");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "value() called on failed Result");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when failed.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  /// Rvalue overload: moves the contained value out instead of copying,
  /// so `BuildThing().value_or(default)` never copies a success value
  /// (and never touches the disengaged optional on failure).
  T value_or(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pdms

/// Propagates a non-OK status from an expression to the caller.
#define PDMS_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::pdms::Status _pdms_status = (expr);         \
    if (!_pdms_status.ok()) return _pdms_status;  \
  } while (false)

/// Evaluates `rexpr` (a `Result<T>` expression); on failure returns its
/// status from the enclosing function, otherwise moves the value into
/// `lhs`. `lhs` may declare a new variable (`PDMS_ASSIGN_OR_RETURN(auto x,
/// MakeX())`) or assign to an existing one. The enclosing function must
/// return `Status` or any `Result<U>`.
#define PDMS_ASSIGN_OR_RETURN(lhs, rexpr) \
  PDMS_ASSIGN_OR_RETURN_IMPL_(            \
      PDMS_STATUS_MACRO_CONCAT_(_pdms_result_, __LINE__), lhs, rexpr)

#define PDMS_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).value()

#define PDMS_STATUS_MACRO_CONCAT_(a, b) PDMS_STATUS_MACRO_CONCAT_IMPL_(a, b)
#define PDMS_STATUS_MACRO_CONCAT_IMPL_(a, b) a##b

#endif  // PDMS_UTIL_STATUS_H_
