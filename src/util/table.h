#ifndef PDMS_UTIL_TABLE_H_
#define PDMS_UTIL_TABLE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace pdms {

/// Accumulates rows of string cells and renders a column-aligned text table.
///
/// Used by the benchmark harnesses to print the series each paper figure
/// reports in a shape that is easy to diff and to plot.
class TextTable {
 public:
  /// Sets the header row; resets nothing else.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; rows may have differing lengths.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimal digits.
  void AddNumericRow(const std::vector<double>& values, int precision = 4);

  size_t row_count() const { return rows_.size(); }

  /// Renders with two-space column gutters and a dashed header separator.
  std::string ToString() const;

  /// Renders as RFC-4180-ish CSV (cells containing commas/quotes escaped).
  std::string ToCsv() const;

  /// Writes `ToCsv()` to `path`, overwriting.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pdms

#endif  // PDMS_UTIL_TABLE_H_
