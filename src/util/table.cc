#include "util/table.h"

#include <algorithm>
#include <fstream>

#include "util/string_util.h"

namespace pdms {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::AddNumericRow(const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(StrFormat("%.*f", precision, v));
  AddRow(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  absorb(header_);
  for (const auto& row : rows_) absorb(row);

  auto render = [&widths](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += "  ";
      line += row[i];
      if (i + 1 < row.size()) {
        line.append(widths[i] - row[i].size(), ' ');
      }
    }
    line += "\n";
    return line;
  };

  std::string out;
  if (!header_.empty()) {
    out += render(header_);
    size_t total = 0;
    for (size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i > 0 ? 2 : 0);
    }
    out += std::string(total, '-') + "\n";
  }
  for (const auto& row : rows_) out += render(row);
  return out;
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (char c : cell) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}
}  // namespace

std::string TextTable::ToCsv() const {
  std::string out;
  auto render = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += CsvEscape(row[i]);
    }
    out += '\n';
  };
  if (!header_.empty()) render(header_);
  for (const auto& row : rows_) render(row);
  return out;
}

Status TextTable::WriteCsv(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::Unavailable("cannot open " + path);
  file << ToCsv();
  return file ? Status::Ok() : Status::Unavailable("short write to " + path);
}

}  // namespace pdms
