#ifndef PDMS_UTIL_RNG_H_
#define PDMS_UTIL_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace pdms {

/// SplitMix64: tiny 64-bit generator used to seed larger generators.
///
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014). Deterministic for a given seed.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Deterministic pseudo-random engine (xoshiro256**) with convenience
/// distributions.
///
/// All stochastic components of the library take an explicit `Rng` (or a
/// 64-bit seed) so that every simulation, workload, and benchmark is exactly
/// reproducible. The engine is not thread-safe; use one instance per thread.
class Rng {
 public:
  /// Seeds the four 64-bit words of state via SplitMix64 as recommended by
  /// the xoshiro authors.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Reseed(seed); }

  /// Resets the engine to the deterministic state derived from `seed`.
  void Reseed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.Next();
  }

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// nearly-divisionless rejection method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound) {
    assert(bound > 0);
    unsigned __int128 m =
        static_cast<unsigned __int128>(NextUint64()) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(NextUint64()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    while (u1 <= 0.0) u1 = NextDouble();
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  /// Geometric-like exponential variate with rate `lambda` (> 0).
  double Exponential(double lambda) {
    assert(lambda > 0.0);
    double u = NextDouble();
    while (u <= 0.0) u = NextDouble();
    return -std::log(u) / lambda;
  }

  /// Fisher–Yates shuffle of a vector, in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      const size_t j = static_cast<size_t>(NextBounded(i + 1));
      using std::swap;
      swap((*items)[i], (*items)[j]);
    }
  }

  /// Uniformly selects an index into a collection of size `n` (> 0).
  size_t Index(size_t n) {
    assert(n > 0);
    return static_cast<size_t>(NextBounded(n));
  }

  /// Selects an index in [0, weights.size()) with probability proportional
  /// to `weights[i]`. Weights must be non-negative with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Derives an independent child engine; useful for giving each simulated
  /// peer its own stream while preserving global determinism.
  Rng Fork() { return Rng(NextUint64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace pdms

#endif  // PDMS_UTIL_RNG_H_
