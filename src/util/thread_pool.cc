#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace pdms {

ThreadPool::ThreadPool(size_t thread_count) {
  deques_.reserve(thread_count);
  for (size_t i = 0; i < thread_count; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(thread_count);
  for (size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (deques_.empty()) {
    task();
    return;
  }
  const size_t target =
      next_deque_.fetch_add(1, std::memory_order_relaxed) % deques_.size();
  {
    std::lock_guard<std::mutex> lock(deques_[target]->mutex);
    deques_[target]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Touching the sleep mutex orders this publish against the workers'
  // predicate check: a worker either sees pending_ > 0 before blocking or
  // is already blocked when the notify fires. Without it the notify could
  // land between a worker's failed predicate evaluation and its block,
  // stranding the task until the next submit.
  { std::lock_guard<std::mutex> lock(sleep_mutex_); }
  wake_cv_.notify_one();
}

bool ThreadPool::PopLocal(size_t self, std::function<void()>* task) {
  Deque& deque = *deques_[self];
  std::lock_guard<std::mutex> lock(deque.mutex);
  if (deque.tasks.empty()) return false;
  *task = std::move(deque.tasks.front());
  deque.tasks.pop_front();
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::Steal(size_t self, std::function<void()>* task) {
  const size_t n = deques_.size();
  for (size_t offset = 1; offset < n; ++offset) {
    Deque& victim = *deques_[(self + offset) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.tasks.empty()) continue;
    *task = std::move(victim.tasks.back());
    victim.tasks.pop_back();
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  std::function<void()> task;
  for (;;) {
    if (PopLocal(self, &task) || Steal(self, &task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    wake_cv_.wait(lock, [this] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t total = end - begin;
  if (deques_.empty() || total == 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Shared chunked index dispenser. Chunks keep the atomic off the per-item
  // path; 4 chunks per participant keeps load balanced when item costs are
  // skewed (hub peers) without degenerating into per-item handout.
  struct ForState {
    std::atomic<size_t> next;
    size_t end;
    size_t chunk;
    const std::function<void(size_t)>* fn;
    std::atomic<size_t> done{0};
    size_t total;
    std::mutex mutex;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<ForState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->chunk =
      std::max<size_t>(1, total / ((workers_.size() + 1) * 4));
  state->fn = &fn;
  state->total = total;

  auto drain = [](ForState& s) {
    for (;;) {
      const size_t chunk_begin =
          s.next.fetch_add(s.chunk, std::memory_order_relaxed);
      if (chunk_begin >= s.end) return;
      const size_t chunk_end = std::min(s.end, chunk_begin + s.chunk);
      for (size_t i = chunk_begin; i < chunk_end; ++i) (*s.fn)(i);
      if (s.done.fetch_add(chunk_end - chunk_begin,
                           std::memory_order_acq_rel) +
              (chunk_end - chunk_begin) ==
          s.total) {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.all_done.notify_all();
      }
    }
  };

  const size_t helpers = std::min(workers_.size(), total - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state, drain] { drain(*state); });
  }
  drain(*state);

  // All indices are handed out once the caller's drain returns, but helper
  // threads may still be inside their last fn call.
  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->total;
  });
}

}  // namespace pdms
