#include "util/stats.h"

#include <cassert>

#include "util/string_util.h"

namespace pdms {

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins >= 1);
}

void Histogram::Add(double x) {
  auto raw = static_cast<int64_t>(std::floor((x - lo_) / width_));
  raw = std::clamp<int64_t>(raw, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(raw)];
  ++total_;
}

std::string Histogram::ToAscii(size_t max_width) const {
  uint64_t peak = 1;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len = static_cast<size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out += StrFormat("%10.4f | %-*s %llu\n", bin_lower(i),
                     static_cast<int>(max_width),
                     std::string(bar_len, '#').c_str(),
                     static_cast<unsigned long long>(counts_[i]));
  }
  return out;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return std::numeric_limits<double>::quiet_NaN();
  p = std::clamp(p, 0.0, 100.0);
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  return samples[rank == 0 ? 0 : rank - 1];
}

}  // namespace pdms
