#include "util/rng.h"

namespace pdms {

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack lands on the last bin.
}

}  // namespace pdms
