#ifndef PDMS_UTIL_THREAD_POOL_H_
#define PDMS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pdms {

/// Work-stealing thread pool.
///
/// Each worker owns a deque of tasks: it pops from the front of its own
/// deque and, when empty, steals from the back of a sibling's — the classic
/// arrangement that keeps hot tasks local while idle workers drain the
/// longest backlogs. `ParallelFor` is the primitive the engine uses to fan
/// a round out across peers: the calling thread participates, indices are
/// handed out in dynamically-sized chunks (so a few heavyweight peers do
/// not straggle the round), and the call blocks until every index ran.
///
/// Tasks must not throw: a worker thread has nowhere to propagate an
/// exception to, so tasks are invoked under `noexcept` expectations.
/// The pool is itself thread-safe; `ParallelFor` calls, however, must not
/// be nested from inside a pool task.
class ThreadPool {
 public:
  /// Spawns `thread_count` workers (0 is allowed: every operation then
  /// runs inline on the calling thread).
  explicit ThreadPool(size_t thread_count);

  /// Finishes queued tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  /// Enqueues one fire-and-forget task onto the least recently targeted
  /// deque. Use `ParallelFor` for joinable batch work.
  void Submit(std::function<void()> task);

  /// Runs `fn(i)` once for every i in [begin, end), spread across the
  /// workers and the calling thread, and returns when all calls finished.
  /// `fn` must be safe to invoke concurrently for distinct indices; each
  /// individual index runs exactly once, on exactly one thread.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  /// One worker's deque. Guarded by its own mutex: contention is rare
  /// (owner and thieves touch opposite ends, and critical sections are a
  /// couple of pointer moves).
  struct Deque {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  bool PopLocal(size_t self, std::function<void()>* task);
  bool Steal(size_t self, std::function<void()>* task);

  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> workers_;
  /// Tasks queued but not yet popped; the sleep/wake predicate.
  std::atomic<size_t> pending_{0};
  std::atomic<size_t> next_deque_{0};
  std::mutex sleep_mutex_;
  std::condition_variable wake_cv_;
  bool stop_ = false;  // guarded by sleep_mutex_
};

}  // namespace pdms

#endif  // PDMS_UTIL_THREAD_POOL_H_
