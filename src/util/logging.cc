#include "util/logging.h"

#include <iostream>

namespace pdms {

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (!Enabled(level)) return;
  std::cerr << "[" << LogLevelName(level) << "] " << message << "\n";
}

}  // namespace pdms
