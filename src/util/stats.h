#ifndef PDMS_UTIL_STATS_H_
#define PDMS_UTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pdms {

/// Streaming mean / variance / extrema accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n − 1 denominator); 0 for fewer than two samples.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  double max() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const OnlineStats& other);

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi) with out-of-range clamping.
class Histogram {
 public:
  /// Creates `bins` equal-width buckets covering [lo, hi). Requires
  /// lo < hi and bins >= 1.
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);
  uint64_t total() const { return total_; }
  size_t bin_count() const { return counts_.size(); }
  uint64_t bin(size_t i) const { return counts_[i]; }
  /// Inclusive lower edge of bucket `i`.
  double bin_lower(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

  /// Renders a compact ASCII bar chart, one bucket per line.
  std::string ToAscii(size_t max_width = 40) const;

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Exact percentile from a sample set (nearest-rank). `p` in [0, 100].
/// Returns NaN for an empty sample.
double Percentile(std::vector<double> samples, double p);

}  // namespace pdms

#endif  // PDMS_UTIL_STATS_H_
