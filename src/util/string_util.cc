#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <unordered_set>

namespace pdms {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // Keep the row small.
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t diagonal = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      const size_t previous = row[i];
      const size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, substitute});
      diagonal = previous;
    }
  }
  return row[a.size()];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

double TrigramSimilarity(std::string_view a, std::string_view b) {
  if (a.size() < 3 || b.size() < 3) return a == b ? 1.0 : 0.0;
  auto grams = [](std::string_view s) {
    std::unordered_set<std::string> out;
    for (size_t i = 0; i + 3 <= s.size(); ++i) out.emplace(s.substr(i, 3));
    return out;
  };
  const auto ga = grams(a);
  const auto gb = grams(b);
  size_t intersection = 0;
  for (const auto& g : ga) {
    if (gb.count(g) > 0) ++intersection;
  }
  const size_t unions = ga.size() + gb.size() - intersection;
  return unions == 0 ? 1.0
                     : static_cast<double>(intersection) /
                           static_cast<double>(unions);
}

std::vector<std::string> TokenizeIdentifier(std::string_view identifier) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(ToLower(current));
      current.clear();
    }
  };
  for (size_t i = 0; i < identifier.size(); ++i) {
    const char c = identifier[i];
    if (c == '_' || c == '-' || c == ' ' || c == '/' || c == '.' || c == ':') {
      flush();
      continue;
    }
    if (std::isupper(static_cast<unsigned char>(c)) && !current.empty() &&
        !std::isupper(static_cast<unsigned char>(current.back()))) {
      flush();
    }
    current.push_back(c);
  }
  flush();
  return tokens;
}

}  // namespace pdms
