#ifndef PDMS_UTIL_STRING_UTIL_H_
#define PDMS_UTIL_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace pdms {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on the single character `sep`; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view text);

/// ASCII lower-casing (locale-independent).
std::string ToLower(std::string_view text);

/// ASCII upper-casing (locale-independent).
std::string ToUpper(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Levenshtein edit distance between two strings (insert/delete/substitute,
/// unit costs). O(|a|·|b|) time, O(min) memory.
size_t EditDistance(std::string_view a, std::string_view b);

/// Normalized string similarity in [0,1]: 1 − editDistance / max(len).
/// Two empty strings have similarity 1.
double EditSimilarity(std::string_view a, std::string_view b);

/// Trigram (character 3-gram) Jaccard similarity in [0,1]. Strings shorter
/// than 3 characters are compared by exact equality.
double TrigramSimilarity(std::string_view a, std::string_view b);

/// Splits an identifier into lower-cased word tokens on case boundaries,
/// digits, and separators: "hasAuthorName" -> {"has","author","name"},
/// "date_of_birth" -> {"date","of","birth"}.
std::vector<std::string> TokenizeIdentifier(std::string_view identifier);

}  // namespace pdms

#endif  // PDMS_UTIL_STRING_UTIL_H_
