#ifndef PDMS_UTIL_LOGGING_H_
#define PDMS_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace pdms {

/// Severity levels in increasing order of importance.
enum class LogLevel : uint8_t { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

std::string_view LogLevelName(LogLevel level);

/// Minimal leveled logger writing to stderr.
///
/// The library logs sparingly (topology construction summaries, convergence
/// warnings); simulations stay silent at the default `kWarning` threshold so
/// that benchmark output is clean. Not thread-safe by design — the simulator
/// is single-threaded.
class Logger {
 public:
  /// Global logger instance.
  static Logger& Get();

  /// Messages below `level` are discarded.
  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  /// Emits one line: "[LEVEL] message".
  void Log(LogLevel level, const std::string& message);

  bool Enabled(LogLevel level) const { return level >= min_level_; }

 private:
  Logger() = default;
  LogLevel min_level_ = LogLevel::kWarning;
};

/// Stream-style log statement builder; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() {
    if (Logger::Get().Enabled(level_)) Logger::Get().Log(level_, stream_.str());
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (Logger::Get().Enabled(level_)) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace pdms

#define PDMS_LOG_DEBUG ::pdms::LogMessage(::pdms::LogLevel::kDebug)
#define PDMS_LOG_INFO ::pdms::LogMessage(::pdms::LogLevel::kInfo)
#define PDMS_LOG_WARNING ::pdms::LogMessage(::pdms::LogLevel::kWarning)
#define PDMS_LOG_ERROR ::pdms::LogMessage(::pdms::LogLevel::kError)

#endif  // PDMS_UTIL_LOGGING_H_
