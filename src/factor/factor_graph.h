#ifndef PDMS_FACTOR_FACTOR_GRAPH_H_
#define PDMS_FACTOR_FACTOR_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "factor/factor.h"
#include "util/status.h"

namespace pdms {

/// Bipartite graph of binary variables and factors (Section 3.1).
///
/// Owns its factors. Variables carry only a debug name; their domain is
/// always {correct, incorrect}. The graph is append-only: the embedded
/// engine rebuilds local fragments on change, which is cheap because
/// fragments are small.
class FactorGraph {
 public:
  FactorGraph() = default;
  FactorGraph(FactorGraph&&) = default;
  FactorGraph& operator=(FactorGraph&&) = default;

  /// Adds a variable and returns its id.
  VarId AddVariable(std::string name);

  /// Adds a factor; all its variables must already exist.
  Result<FactorIndex> AddFactor(std::unique_ptr<Factor> factor);

  size_t variable_count() const { return variable_names_.size(); }
  size_t factor_count() const { return factors_.size(); }

  const std::string& variable_name(VarId v) const { return variable_names_[v]; }
  const Factor& factor(FactorIndex f) const { return *factors_[f]; }

  /// Factors adjacent to variable `v`.
  const std::vector<FactorIndex>& factors_of(VarId v) const {
    return var_factors_[v];
  }

  /// Number of variable–factor edges (message slots per direction).
  size_t edge_count() const { return edge_count_; }

  /// Multi-line description for debugging.
  std::string ToString() const;

 private:
  std::vector<std::string> variable_names_;
  std::vector<std::unique_ptr<Factor>> factors_;
  std::vector<std::vector<FactorIndex>> var_factors_;
  size_t edge_count_ = 0;
};

}  // namespace pdms

#endif  // PDMS_FACTOR_FACTOR_GRAPH_H_
