#include "factor/factor_graph.h"

#include "util/string_util.h"

namespace pdms {

VarId FactorGraph::AddVariable(std::string name) {
  variable_names_.push_back(std::move(name));
  var_factors_.emplace_back();
  return static_cast<VarId>(variable_names_.size() - 1);
}

Result<FactorIndex> FactorGraph::AddFactor(std::unique_ptr<Factor> factor) {
  for (VarId v : factor->variables()) {
    if (v >= variable_count()) {
      return Status::InvalidArgument(
          StrFormat("factor references unknown variable %u", v));
    }
  }
  const auto id = static_cast<FactorIndex>(factors_.size());
  for (VarId v : factor->variables()) {
    var_factors_[v].push_back(id);
    ++edge_count_;
  }
  factors_.push_back(std::move(factor));
  return id;
}

std::string FactorGraph::ToString() const {
  std::string out = StrFormat("FactorGraph(%zu variables, %zu factors)\n",
                              variable_count(), factor_count());
  for (FactorIndex f = 0; f < factors_.size(); ++f) {
    out += StrFormat("  f%u = %s over {", f, factors_[f]->Describe().c_str());
    const auto& vars = factors_[f]->variables();
    for (size_t i = 0; i < vars.size(); ++i) {
      if (i > 0) out += ", ";
      out += variable_names_[vars[i]];
    }
    out += "}\n";
  }
  return out;
}

}  // namespace pdms
