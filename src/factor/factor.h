#ifndef PDMS_FACTOR_FACTOR_H_
#define PDMS_FACTOR_FACTOR_H_

#include <cstdint>
#include <span>
#include <memory>
#include <string>
#include <vector>

#include "factor/belief.h"
#include "util/status.h"

namespace pdms {

/// Index of a variable node in a `FactorGraph`.
using VarId = uint32_t;
/// Index of a factor node in a `FactorGraph` (graph-local; the global
/// wire identity of a feedback factor is `FactorId` in net/message.h).
using FactorIndex = uint32_t;

/// A non-negative local function over a subset of binary variables — one
/// node of the bipartite factor graph (Section 3.1 of the paper).
///
/// Implementations provide the two primitives sum-product needs: pointwise
/// evaluation (used by the exact-inference baselines) and the outgoing
/// message summary
///   µ_{f->x}(x) = Σ_{~x} f(X) Π_{y in n(f)\{x}} µ_{y->f}(y).
class Factor {
 public:
  explicit Factor(std::vector<VarId> variables)
      : variables_(std::move(variables)) {}
  virtual ~Factor() = default;

  Factor(const Factor&) = delete;
  Factor& operator=(const Factor&) = delete;

  /// The variables this factor touches, in argument order.
  const std::vector<VarId>& variables() const { return variables_; }
  size_t arity() const { return variables_.size(); }

  /// Evaluates f at a full assignment. `correct[i]` is the value of
  /// `variables()[i]` (true = the mapping is semantically correct).
  virtual double Evaluate(const std::vector<bool>& correct) const = 0;

  /// Sum-product message to `variables()[position]`. `incoming[i]` is
  /// µ_{variables()[i] -> f}; `incoming[position]` is ignored.
  virtual Belief MessageTo(size_t position,
                           std::span<const Belief> incoming) const = 0;

  /// Short type tag for debugging ("prior", "cycle+", ...).
  virtual std::string Describe() const = 0;

 private:
  std::vector<VarId> variables_;
};

/// Unary factor encoding a peer's prior belief that a mapping is correct
/// (the top layer of a PDMS factor graph; Section 4.4).
class PriorFactor : public Factor {
 public:
  PriorFactor(VarId variable, double probability_correct)
      : Factor({variable}), prior_(probability_correct) {}

  double probability_correct() const { return prior_; }

  double Evaluate(const std::vector<bool>& correct) const override {
    return correct[0] ? prior_ : 1.0 - prior_;
  }

  Belief MessageTo(size_t /*position*/,
                   std::span<const Belief> /*incoming*/) const override {
    return Belief::FromProbability(prior_);
  }

  std::string Describe() const override;

 private:
  double prior_;
};

/// The sum-product message µ_{f->x} of a cycle/parallel-path feedback
/// factor, as a free kernel: `positive` selects the f+ slice, `delta` is ∆,
/// `incoming[j]` is µ_{member j -> f} and `incoming[position]` is ignored.
/// O(arity) via count-based dynamic programming. This is the whole math of
/// `CycleFeedbackFactor::MessageTo`, factored out so the peers' hot path
/// can stream pooled replica state (sign + ∆ live in a flat array) without
/// a per-replica heap factor object or a virtual dispatch.
Belief CycleFeedbackMessage(size_t position, std::span<const Belief> incoming,
                            bool positive, double delta);

/// The paper's feedback factor: the conditional probability of observing
/// the given feedback sign on a cycle / parallel-path closure, as a
/// function of how many member mappings are incorrect (Section 3.2.1):
///
///   P(f+ | k incorrect) = 1 (k=0), 0 (k=1), ∆ (k>=2)
///   P(f- | k incorrect) = 1 - P(f+ | k incorrect)
///
/// The observed feedback variable is folded into the factor (conditioning
/// slice), so the factor's scope is exactly the member mappings. Messages
/// are computed in O(arity) using count-based dynamic programming rather
/// than a 2^arity table.
class CycleFeedbackFactor : public Factor {
 public:
  /// `positive` selects the f+ slice, otherwise f-. `delta` is ∆, the
  /// probability that two or more mapping errors compensate along the
  /// closure; must lie in [0, 1].
  CycleFeedbackFactor(std::vector<VarId> variables, bool positive, double delta);

  bool positive() const { return positive_; }
  double delta() const { return delta_; }

  double Evaluate(const std::vector<bool>& correct) const override;
  Belief MessageTo(size_t position,
                   std::span<const Belief> incoming) const override;
  std::string Describe() const override;

  /// The conditional probability P(feedback-sign | k incorrect mappings).
  double ValueForIncorrectCount(size_t k) const;

 private:
  bool positive_;
  double delta_;
};

/// Dense table factor over up to 20 binary variables; row index bit i is
/// the assignment of `variables()[i]` (1 = correct). Used by tests to
/// cross-validate the structured factors and by the variable-elimination
/// baseline for intermediate results.
class TableFactor : public Factor {
 public:
  /// `table.size()` must equal 2^variables.size().
  static Result<std::unique_ptr<TableFactor>> Create(std::vector<VarId> variables,
                                                     std::vector<double> table);

  /// Materializes any factor into an equivalent dense table.
  static std::unique_ptr<TableFactor> FromFactor(const Factor& factor);

  double Evaluate(const std::vector<bool>& correct) const override;
  Belief MessageTo(size_t position,
                   std::span<const Belief> incoming) const override;
  std::string Describe() const override;

  const std::vector<double>& table() const { return table_; }

 private:
  TableFactor(std::vector<VarId> variables, std::vector<double> table)
      : Factor(std::move(variables)), table_(std::move(table)) {}

  std::vector<double> table_;
};

}  // namespace pdms

#endif  // PDMS_FACTOR_FACTOR_H_
