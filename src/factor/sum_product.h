#ifndef PDMS_FACTOR_SUM_PRODUCT_H_
#define PDMS_FACTOR_SUM_PRODUCT_H_

#include <cstdint>
#include <vector>

#include "factor/factor_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace pdms {

/// Message-update orderings for the iterative sum-product algorithm.
enum class SumProductSchedule : uint8_t {
  /// Synchronous flooding: all messages recomputed from the previous
  /// iteration's values — the schedule the paper's embedded periodic mode
  /// corresponds to.
  kFlooding = 0,
  /// Sequential (Gauss–Seidel) sweep over factors in index order; messages
  /// take effect immediately. Typically converges in fewer iterations.
  kSerial = 1,
  /// Like kSerial but with a fresh random factor order per iteration.
  kRandomSerial = 2,
};

/// Configuration for `SumProductEngine`.
struct SumProductOptions {
  size_t max_iterations = 100;
  /// Convergence threshold on the L∞ change of normalized posteriors.
  double tolerance = 1e-9;
  /// Damping λ in [0,1): message' = λ·old + (1−λ)·computed. 0 disables.
  double damping = 0.0;
  SumProductSchedule schedule = SumProductSchedule::kFlooding;
  /// Probability that a factor→variable message update is delivered this
  /// iteration; with probability 1−p the stale message is kept. Models the
  /// lost-message experiment of Section 5.1.3 (Figure 11).
  double message_send_probability = 1.0;
  /// Seed for the random schedule and for message-loss draws.
  uint64_t seed = 42;
  /// Number of consecutive sub-tolerance iterations required to declare
  /// convergence. 0 selects automatically: 1 for lossless runs, and
  /// ceil(3 / message_send_probability) under message loss, where a single
  /// quiet iteration may just mean most messages were dropped.
  size_t convergence_patience = 0;
  /// When true, posterior P(correct) of every variable is recorded after
  /// each iteration (Figure 7 needs the full trajectory).
  bool record_trajectory = false;
};

/// Outcome of a sum-product run.
struct SumProductResult {
  /// Normalized posterior per variable.
  std::vector<Belief> posteriors;
  /// Iterations actually executed.
  size_t iterations = 0;
  /// True if the tolerance was met before `max_iterations`.
  bool converged = false;
  /// trajectory[t][v] = P(variables v correct) after iteration t+1
  /// (only if `record_trajectory`).
  std::vector<std::vector<double>> trajectory;
  /// Count of message updates computed (both directions).
  uint64_t message_updates = 0;
};

/// Iterative (loopy) sum-product over a factor graph.
///
/// Exact on trees; on loopy graphs it converges to the usual loopy-BP
/// approximation (Section 3.1, [15]). This is the *centralized* engine: the
/// reference implementation the decentralized embedded engine is tested
/// against.
class SumProductEngine {
 public:
  SumProductEngine(const FactorGraph& graph, SumProductOptions options);

  /// Runs until convergence or the iteration cap and returns the result.
  SumProductResult Run();

  /// Executes a single iteration; exposed so callers can interleave with
  /// other work. Returns max normalized posterior change.
  double Step();

  /// Current normalized posterior of `v`.
  Belief Posterior(VarId v) const;

  /// Current normalized posteriors of all variables.
  std::vector<Belief> Posteriors() const;

  uint64_t message_updates() const { return message_updates_; }

 private:
  /// µ_{v->f} for the factor's argument `position`, computed live from
  /// current factor->variable messages, excluding the recipient factor.
  /// Used by the serial schedules, whose messages take effect mid-sweep.
  Belief VariableToFactor(FactorIndex f, size_t position) const;

  /// Flooding-schedule fast path: recomputes every µ_{v->f} for the
  /// iteration in one O(edges) pass using per-variable prefix/suffix
  /// products (valid because flooding reads only previous-iteration
  /// state). Replaces the O(deg²)-per-variable live computation.
  void RefreshVariableToFactorCache();

  void UpdateFactorMessages(FactorIndex f, bool synchronous_stage);

  const FactorGraph& graph_;
  SumProductOptions options_;
  Rng rng_;
  /// to_var_[f][i] = µ_{f -> variables(f)[i]}.
  std::vector<std::vector<Belief>> to_var_;
  /// Staging buffer for the flooding schedule.
  std::vector<std::vector<Belief>> staged_;
  /// var_slots_[v] = every (factor, position) with variables(f)[pos] == v —
  /// the message slots adjacent to v, in factor order.
  std::vector<std::vector<std::pair<FactorIndex, uint32_t>>> var_slots_;
  /// µ_{v->f} per slot for the current flooding iteration (indexed like
  /// `to_var_`), filled by RefreshVariableToFactorCache.
  std::vector<std::vector<Belief>> var_to_factor_cache_;
  /// Normalized posterior per variable after the last Step (initialized
  /// from the unit messages). Residuals are tracked against this cache
  /// instead of materializing full before/after posterior sets per Step.
  std::vector<Belief> posteriors_;
  /// Reused scratch: incoming messages of the factor being updated, and
  /// prefix/suffix products of the cache refresh.
  std::vector<Belief> incoming_scratch_;
  std::vector<Belief> prefix_scratch_;
  std::vector<Belief> suffix_scratch_;
  uint64_t message_updates_ = 0;
};

}  // namespace pdms

#endif  // PDMS_FACTOR_SUM_PRODUCT_H_
