#ifndef PDMS_FACTOR_BELIEF_H_
#define PDMS_FACTOR_BELIEF_H_

#include <algorithm>
#include <cmath>
#include <string>

namespace pdms {

/// Unnormalized measure over the binary domain {correct, incorrect} of a
/// mapping variable. Used both for sum-product messages and for posteriors.
struct Belief {
  double correct = 1.0;
  double incorrect = 1.0;

  /// The unit (uninformative) message: the multiplicative identity.
  static Belief Unit() { return Belief{1.0, 1.0}; }

  /// A normalized point-ish prior: P(correct) = p.
  static Belief FromProbability(double p) { return Belief{p, 1.0 - p}; }

  /// Pointwise product (combining independent evidence).
  Belief operator*(const Belief& other) const {
    return Belief{correct * other.correct, incorrect * other.incorrect};
  }
  Belief& operator*=(const Belief& other) {
    correct *= other.correct;
    incorrect *= other.incorrect;
    return *this;
  }

  /// Normalizes so the two entries sum to 1. An all-zero belief (possible
  /// when hard evidence conflicts) normalizes to (0.5, 0.5) by convention.
  Belief Normalized() const {
    const double z = correct + incorrect;
    if (z <= 0.0 || !std::isfinite(z)) return Belief{0.5, 0.5};
    return Belief{correct / z, incorrect / z};
  }

  /// P(correct) after normalization.
  double ProbabilityCorrect() const { return Normalized().correct; }

  /// L-infinity distance between the normalized forms; the convergence
  /// metric of the iterative schedules.
  double NormalizedDistance(const Belief& other) const {
    const Belief a = Normalized();
    const Belief b = other.Normalized();
    return std::max(std::abs(a.correct - b.correct),
                    std::abs(a.incorrect - b.incorrect));
  }

  /// Rescales so max entry is 1 (guards against under/overflow in long
  /// message products); an all-zero belief is returned unchanged.
  Belief Rescaled() const {
    const double m = std::max(correct, incorrect);
    if (m <= 0.0 || !std::isfinite(m)) return *this;
    return Belief{correct / m, incorrect / m};
  }

  /// Linear interpolation toward `target` (damped update):
  /// (1-lambda)*this + lambda*target, applied to normalized forms.
  Belief DampedToward(const Belief& target, double lambda) const {
    const Belief a = Normalized();
    const Belief b = target.Normalized();
    return Belief{(1.0 - lambda) * a.correct + lambda * b.correct,
                  (1.0 - lambda) * a.incorrect + lambda * b.incorrect};
  }

  std::string ToString() const;
};

}  // namespace pdms

#endif  // PDMS_FACTOR_BELIEF_H_
