#ifndef PDMS_FACTOR_BELIEF_H_
#define PDMS_FACTOR_BELIEF_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace pdms {

/// Unnormalized measure over the binary domain {correct, incorrect} of a
/// mapping variable. Used both for sum-product messages and for posteriors.
struct Belief {
  double correct = 1.0;
  double incorrect = 1.0;

  /// The unit (uninformative) message: the multiplicative identity.
  static Belief Unit() { return Belief{1.0, 1.0}; }

  /// A normalized point-ish prior: P(correct) = p.
  static Belief FromProbability(double p) { return Belief{p, 1.0 - p}; }

  /// Pointwise product (combining independent evidence).
  Belief operator*(const Belief& other) const {
    return Belief{correct * other.correct, incorrect * other.incorrect};
  }
  Belief& operator*=(const Belief& other) {
    correct *= other.correct;
    incorrect *= other.incorrect;
    return *this;
  }

  /// Normalizes so the two entries sum to 1. An all-zero belief (possible
  /// when hard evidence conflicts) normalizes to (0.5, 0.5) by convention.
  Belief Normalized() const {
    const double z = correct + incorrect;
    if (z <= 0.0 || !std::isfinite(z)) return Belief{0.5, 0.5};
    return Belief{correct / z, incorrect / z};
  }

  /// P(correct) after normalization.
  double ProbabilityCorrect() const { return Normalized().correct; }

  /// L-infinity distance between the normalized forms; the convergence
  /// metric of the iterative schedules.
  double NormalizedDistance(const Belief& other) const {
    const Belief a = Normalized();
    const Belief b = other.Normalized();
    return std::max(std::abs(a.correct - b.correct),
                    std::abs(a.incorrect - b.incorrect));
  }

  /// Rescales so max entry is 1 (guards against under/overflow in long
  /// message products); an all-zero belief is returned unchanged.
  Belief Rescaled() const {
    const double m = std::max(correct, incorrect);
    if (m <= 0.0 || !std::isfinite(m)) return *this;
    return Belief{correct / m, incorrect / m};
  }

  /// Linear interpolation toward `target` (damped update):
  /// (1-lambda)*this + lambda*target, applied to normalized forms.
  Belief DampedToward(const Belief& target, double lambda) const {
    const Belief a = Normalized();
    const Belief b = target.Normalized();
    return Belief{(1.0 - lambda) * a.correct + lambda * b.correct,
                  (1.0 - lambda) * a.incorrect + lambda * b.incorrect};
  }

  std::string ToString() const;
};

/// Fills running products of the k messages yielded by `message(j)`:
/// afterwards prefix[j] = µ_0·…·µ_{j-1} and suffix[j] = µ_j·…·µ_{k-1}
/// (prefix[0] and suffix[k] are the unit), so prefix[j] * suffix[j+1] is
/// the product of every message except µ_j — the O(k) exclusion products
/// sum-product needs per variable — and prefix[k] the product of all of
/// them (the posterior's evidence term). The scratch vectors are grown but
/// never shrunk, so reuse across calls stays allocation-free. This is the
/// shared kernel of the decentralized (`Peer::ComputeRound`) and
/// centralized (`SumProductEngine`) variable→factor stages; both engines'
/// bitwise-determinism guarantees ride on its multiplication order.
template <typename MessageAt>
void ExclusivePrefixSuffixProducts(size_t k, const MessageAt& message,
                                   std::vector<Belief>* prefix,
                                   std::vector<Belief>* suffix) {
  if (prefix->size() < k + 1) {
    prefix->resize(k + 1);
    suffix->resize(k + 1);
  }
  (*prefix)[0] = Belief::Unit();
  (*suffix)[k] = Belief::Unit();
  for (size_t j = 0; j < k; ++j) {
    (*prefix)[j + 1] = (*prefix)[j] * message(j);
  }
  for (size_t j = k; j-- > 0;) {
    (*suffix)[j] = message(j) * (*suffix)[j + 1];
  }
}

}  // namespace pdms

#endif  // PDMS_FACTOR_BELIEF_H_
