#include "factor/exact.h"

#include <algorithm>
#include <cassert>
#include <list>
#include <set>

#include "util/string_util.h"

namespace pdms {

Result<std::vector<Belief>> ExactMarginalsBruteForce(const FactorGraph& graph) {
  const size_t n = graph.variable_count();
  if (n > 24) {
    return Status::InvalidArgument(
        StrFormat("brute force limited to 24 variables, got %zu", n));
  }
  std::vector<Belief> marginals(n, Belief{0.0, 0.0});

  // Pre-extract scopes to avoid virtual dispatch in the hot loop where
  // possible; Evaluate is still virtual but cheap.
  std::vector<std::vector<bool>> scratch(graph.factor_count());
  for (FactorIndex f = 0; f < graph.factor_count(); ++f) {
    scratch[f].resize(graph.factor(f).arity());
  }

  for (size_t assignment = 0; assignment < (size_t{1} << n); ++assignment) {
    double weight = 1.0;
    for (FactorIndex f = 0; f < graph.factor_count() && weight > 0.0; ++f) {
      const auto& vars = graph.factor(f).variables();
      for (size_t i = 0; i < vars.size(); ++i) {
        scratch[f][i] = (assignment >> vars[i]) & 1;
      }
      weight *= graph.factor(f).Evaluate(scratch[f]);
    }
    if (weight == 0.0) continue;
    for (VarId v = 0; v < n; ++v) {
      if ((assignment >> v) & 1) {
        marginals[v].correct += weight;
      } else {
        marginals[v].incorrect += weight;
      }
    }
  }
  for (auto& belief : marginals) belief = belief.Normalized();
  return marginals;
}

Result<double> ExactPartitionFunction(const FactorGraph& graph) {
  const size_t n = graph.variable_count();
  if (n > 24) {
    return Status::InvalidArgument(
        StrFormat("brute force limited to 24 variables, got %zu", n));
  }
  double z = 0.0;
  std::vector<bool> scratch;
  for (size_t assignment = 0; assignment < (size_t{1} << n); ++assignment) {
    double weight = 1.0;
    for (FactorIndex f = 0; f < graph.factor_count() && weight > 0.0; ++f) {
      const auto& vars = graph.factor(f).variables();
      scratch.assign(vars.size(), false);
      for (size_t i = 0; i < vars.size(); ++i) {
        scratch[i] = (assignment >> vars[i]) & 1;
      }
      weight *= graph.factor(f).Evaluate(scratch);
    }
    z += weight;
  }
  return z;
}

namespace {

constexpr size_t kMaxTableBits = 24;

/// Dense factor over a sorted variable scope; row bit i corresponds to
/// vars[i] (1 = correct). The working representation of variable
/// elimination.
struct DenseFactor {
  std::vector<VarId> vars;  // sorted ascending
  std::vector<double> table;

  static DenseFactor FromGraphFactor(const Factor& factor) {
    // Build a sorted scope and a permutation from graph order to sorted.
    std::vector<VarId> sorted = factor.variables();
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    assert(sorted.size() == factor.arity() &&
           "factors must not repeat variables");

    std::vector<size_t> position_of(sorted.size());
    for (size_t i = 0; i < factor.variables().size(); ++i) {
      const auto it = std::lower_bound(sorted.begin(), sorted.end(),
                                       factor.variables()[i]);
      position_of[i] = static_cast<size_t>(it - sorted.begin());
    }

    DenseFactor dense;
    dense.vars = std::move(sorted);
    dense.table.resize(size_t{1} << dense.vars.size());
    std::vector<bool> assignment(factor.arity());
    for (size_t row = 0; row < dense.table.size(); ++row) {
      for (size_t i = 0; i < factor.arity(); ++i) {
        assignment[i] = (row >> position_of[i]) & 1;
      }
      dense.table[row] = factor.Evaluate(assignment);
    }
    return dense;
  }
};

/// Multiplies two dense factors over the union of their scopes.
Result<DenseFactor> Multiply(const DenseFactor& a, const DenseFactor& b) {
  DenseFactor out;
  std::set_union(a.vars.begin(), a.vars.end(), b.vars.begin(), b.vars.end(),
                 std::back_inserter(out.vars));
  if (out.vars.size() > kMaxTableBits) {
    return Status::InvalidArgument(
        StrFormat("elimination scope too large: %zu variables",
                  out.vars.size()));
  }
  // For each scope variable, its bit position inside a and b (or npos).
  auto positions = [&out](const DenseFactor& f) {
    std::vector<size_t> pos(out.vars.size(), SIZE_MAX);
    for (size_t i = 0; i < out.vars.size(); ++i) {
      const auto it = std::lower_bound(f.vars.begin(), f.vars.end(),
                                       out.vars[i]);
      if (it != f.vars.end() && *it == out.vars[i]) {
        pos[i] = static_cast<size_t>(it - f.vars.begin());
      }
    }
    return pos;
  };
  const std::vector<size_t> pos_a = positions(a);
  const std::vector<size_t> pos_b = positions(b);

  out.table.resize(size_t{1} << out.vars.size());
  for (size_t row = 0; row < out.table.size(); ++row) {
    size_t row_a = 0;
    size_t row_b = 0;
    for (size_t i = 0; i < out.vars.size(); ++i) {
      const size_t bit = (row >> i) & 1;
      if (pos_a[i] != SIZE_MAX) row_a |= bit << pos_a[i];
      if (pos_b[i] != SIZE_MAX) row_b |= bit << pos_b[i];
    }
    out.table[row] = a.table[row_a] * b.table[row_b];
  }
  return out;
}

/// Sums variable `v` out of the factor; `v` must be in scope.
DenseFactor SumOut(const DenseFactor& factor, VarId v) {
  const auto it = std::lower_bound(factor.vars.begin(), factor.vars.end(), v);
  assert(it != factor.vars.end() && *it == v);
  const auto bit = static_cast<size_t>(it - factor.vars.begin());

  DenseFactor out;
  out.vars = factor.vars;
  out.vars.erase(out.vars.begin() + static_cast<ptrdiff_t>(bit));
  out.table.assign(size_t{1} << out.vars.size(), 0.0);
  for (size_t row = 0; row < factor.table.size(); ++row) {
    const size_t low = row & ((size_t{1} << bit) - 1);
    const size_t high = (row >> (bit + 1)) << bit;
    out.table[high | low] += factor.table[row];
  }
  return out;
}

}  // namespace

Result<Belief> ExactMarginalVariableElimination(const FactorGraph& graph,
                                                VarId target) {
  if (target >= graph.variable_count()) {
    return Status::InvalidArgument(StrFormat("unknown variable %u", target));
  }
  std::list<DenseFactor> pool;
  for (FactorIndex f = 0; f < graph.factor_count(); ++f) {
    pool.push_back(DenseFactor::FromGraphFactor(graph.factor(f)));
  }
  // Variables lacking any factor contribute a free factor of 2 to Z but do
  // not affect the target's marginal, so they can be ignored.
  std::set<VarId> to_eliminate;
  for (const auto& dense : pool) {
    to_eliminate.insert(dense.vars.begin(), dense.vars.end());
  }
  to_eliminate.erase(target);

  while (!to_eliminate.empty()) {
    // Min-scope heuristic: eliminate the variable whose combined factor has
    // the smallest scope union.
    VarId best = *to_eliminate.begin();
    size_t best_scope = SIZE_MAX;
    for (VarId v : to_eliminate) {
      std::set<VarId> scope;
      for (const auto& dense : pool) {
        if (std::binary_search(dense.vars.begin(), dense.vars.end(), v)) {
          scope.insert(dense.vars.begin(), dense.vars.end());
        }
      }
      if (scope.size() < best_scope) {
        best_scope = scope.size();
        best = v;
      }
    }

    DenseFactor combined;
    combined.vars.clear();
    combined.table = {1.0};
    for (auto it = pool.begin(); it != pool.end();) {
      if (std::binary_search(it->vars.begin(), it->vars.end(), best)) {
        Result<DenseFactor> product = Multiply(combined, *it);
        if (!product.ok()) return product.status();
        combined = std::move(product).value();
        it = pool.erase(it);
      } else {
        ++it;
      }
    }
    pool.push_back(SumOut(combined, best));
    to_eliminate.erase(best);
  }

  DenseFactor answer;
  answer.vars.clear();
  answer.table = {1.0};
  for (const auto& dense : pool) {
    Result<DenseFactor> product = Multiply(answer, dense);
    if (!product.ok()) return product.status();
    answer = std::move(product).value();
  }
  // `answer` is over {target} (or empty if target had no factors).
  if (answer.vars.empty()) return Belief{0.5, 0.5};
  assert(answer.vars.size() == 1 && answer.vars[0] == target);
  return Belief{answer.table[1], answer.table[0]}.Normalized();
}

}  // namespace pdms
