#include "factor/factor.h"

#include <cassert>
#include <cmath>

#include "util/string_util.h"

namespace pdms {

std::string Belief::ToString() const {
  return StrFormat("(c=%.6f, i=%.6f)", correct, incorrect);
}

std::string PriorFactor::Describe() const {
  return StrFormat("prior(%.3f)", prior_);
}

CycleFeedbackFactor::CycleFeedbackFactor(std::vector<VarId> variables,
                                         bool positive, double delta)
    : Factor(std::move(variables)), positive_(positive), delta_(delta) {
  assert(delta >= 0.0 && delta <= 1.0);
  assert(arity() >= 1);
}

double CycleFeedbackFactor::ValueForIncorrectCount(size_t k) const {
  double positive_value;
  if (k == 0) {
    positive_value = 1.0;
  } else if (k == 1) {
    positive_value = 0.0;
  } else {
    positive_value = delta_;
  }
  return positive_ ? positive_value : 1.0 - positive_value;
}

double CycleFeedbackFactor::Evaluate(const std::vector<bool>& correct) const {
  assert(correct.size() == arity());
  size_t incorrect_count = 0;
  for (bool c : correct) {
    if (!c) ++incorrect_count;
  }
  return ValueForIncorrectCount(incorrect_count);
}

Belief CycleFeedbackMessage(size_t position, std::span<const Belief> incoming,
                            bool positive, double delta) {
  // The factor value depends only on the number of incorrect mappings, with
  // three regimes (0 / 1 / >=2 incorrect). Over the *other* variables,
  // accumulate:
  //   p0    = mass of "zero incorrect"        = Π c_j
  //   p1    = mass of "exactly one incorrect" = Σ_j w_j Π_{l≠j} c_l
  //   total = Π (c_j + w_j)
  // via the exact DP  p1' = p1*c + p0*w,  p0' = p0*c  (no divisions).
  double p0 = 1.0;
  double p1 = 0.0;
  double total = 1.0;
  for (size_t j = 0; j < incoming.size(); ++j) {
    if (j == position) continue;
    const double c = incoming[j].correct;
    const double w = incoming[j].incorrect;
    p1 = p1 * c + p0 * w;
    p0 = p0 * c;
    total *= c + w;
  }
  const double at_least_two = std::max(0.0, total - p0 - p1);
  const double at_least_one = std::max(0.0, total - p0);

  const double g0 = positive ? 1.0 : 0.0;
  const double g1 = positive ? 0.0 : 1.0;
  const double g2 = positive ? delta : 1.0 - delta;

  Belief message;
  // Recipient correct: total incorrect count == count among others.
  message.correct = g0 * p0 + g1 * p1 + g2 * at_least_two;
  // Recipient incorrect: total count == count among others + 1.
  message.incorrect = g1 * p0 + g2 * at_least_one;
  return message;
}

Belief CycleFeedbackFactor::MessageTo(size_t position,
                                      std::span<const Belief> incoming) const {
  assert(incoming.size() == arity());
  return CycleFeedbackMessage(position, incoming, positive_, delta_);
}

std::string CycleFeedbackFactor::Describe() const {
  return StrFormat("cycle%s(n=%zu, delta=%.3f)", positive_ ? "+" : "-", arity(),
                   delta_);
}

Result<std::unique_ptr<TableFactor>> TableFactor::Create(
    std::vector<VarId> variables, std::vector<double> table) {
  if (variables.size() > 20) {
    return Status::InvalidArgument("TableFactor limited to 20 variables");
  }
  const size_t expected = size_t{1} << variables.size();
  if (table.size() != expected) {
    return Status::InvalidArgument(
        StrFormat("table size %zu != 2^%zu", table.size(), variables.size()));
  }
  for (double v : table) {
    if (v < 0.0 || !std::isfinite(v)) {
      return Status::InvalidArgument("factor entries must be finite and >= 0");
    }
  }
  return std::unique_ptr<TableFactor>(
      new TableFactor(std::move(variables), std::move(table)));
}

std::unique_ptr<TableFactor> TableFactor::FromFactor(const Factor& factor) {
  const size_t n = factor.arity();
  assert(n <= 20);
  std::vector<double> table(size_t{1} << n);
  std::vector<bool> assignment(n);
  for (size_t row = 0; row < table.size(); ++row) {
    for (size_t i = 0; i < n; ++i) assignment[i] = (row >> i) & 1;
    table[row] = factor.Evaluate(assignment);
  }
  Result<std::unique_ptr<TableFactor>> result =
      Create(factor.variables(), std::move(table));
  assert(result.ok());
  return std::move(result).value();
}

double TableFactor::Evaluate(const std::vector<bool>& correct) const {
  assert(correct.size() == arity());
  size_t row = 0;
  for (size_t i = 0; i < correct.size(); ++i) {
    if (correct[i]) row |= size_t{1} << i;
  }
  return table_[row];
}

Belief TableFactor::MessageTo(size_t position,
                              std::span<const Belief> incoming) const {
  assert(incoming.size() == arity());
  Belief message{0.0, 0.0};
  const size_t n = arity();
  for (size_t row = 0; row < table_.size(); ++row) {
    double weight = table_[row];
    if (weight == 0.0) continue;
    for (size_t i = 0; i < n; ++i) {
      if (i == position) continue;
      weight *= ((row >> i) & 1) ? incoming[i].correct : incoming[i].incorrect;
    }
    if ((row >> position) & 1) {
      message.correct += weight;
    } else {
      message.incorrect += weight;
    }
  }
  return message;
}

std::string TableFactor::Describe() const {
  return StrFormat("table(n=%zu)", arity());
}

}  // namespace pdms
