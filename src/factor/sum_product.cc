#include "factor/sum_product.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace pdms {

SumProductEngine::SumProductEngine(const FactorGraph& graph,
                                   SumProductOptions options)
    : graph_(graph), options_(options), rng_(options.seed) {
  to_var_.resize(graph_.factor_count());
  for (FactorIndex f = 0; f < graph_.factor_count(); ++f) {
    // "All peers virtually received a unit message from all other peers
    // prior to starting the algorithm" (Section 4.3): initialize every
    // message to the unit function.
    to_var_[f].assign(graph_.factor(f).arity(), Belief::Unit());
  }
  staged_ = to_var_;
  var_to_factor_cache_ = to_var_;

  var_slots_.resize(graph_.variable_count());
  for (FactorIndex f = 0; f < graph_.factor_count(); ++f) {
    const auto& vars = graph_.factor(f).variables();
    for (size_t i = 0; i < vars.size(); ++i) {
      var_slots_[vars[i]].emplace_back(f, static_cast<uint32_t>(i));
    }
  }

  posteriors_.resize(graph_.variable_count());
  for (VarId v = 0; v < graph_.variable_count(); ++v) {
    posteriors_[v] = Posterior(v);
  }
}

Belief SumProductEngine::VariableToFactor(FactorIndex f, size_t position) const {
  const VarId v = graph_.factor(f).variables()[position];
  Belief message = Belief::Unit();
  for (const auto& [g, i] : var_slots_[v]) {
    if (g == f) continue;
    message *= to_var_[g][i];
  }
  return message.Rescaled();
}

void SumProductEngine::RefreshVariableToFactorCache() {
  for (VarId v = 0; v < graph_.variable_count(); ++v) {
    const auto& slots = var_slots_[v];
    const size_t k = slots.size();
    if (k == 0) continue;
    ExclusivePrefixSuffixProducts(
        k,
        [&](size_t j) -> const Belief& {
          return to_var_[slots[j].first][slots[j].second];
        },
        &prefix_scratch_, &suffix_scratch_);
    for (size_t j = 0; j < k; ++j) {
      var_to_factor_cache_[slots[j].first][slots[j].second] =
          (prefix_scratch_[j] * suffix_scratch_[j + 1]).Rescaled();
    }
  }
}

void SumProductEngine::UpdateFactorMessages(FactorIndex f, bool synchronous_stage) {
  const Factor& factor = graph_.factor(f);
  const size_t n = factor.arity();
  incoming_scratch_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    // Flooding reads the pre-iteration state, which the refreshed cache
    // holds; serial schedules must see mid-sweep updates and compute live.
    incoming_scratch_[i] = synchronous_stage ? var_to_factor_cache_[f][i]
                                             : VariableToFactor(f, i);
    ++message_updates_;
  }
  auto& target = synchronous_stage ? staged_[f] : to_var_[f];
  for (size_t i = 0; i < n; ++i) {
    if (options_.message_send_probability < 1.0 &&
        !rng_.Bernoulli(options_.message_send_probability)) {
      target[i] = to_var_[f][i];  // Message lost: recipient keeps stale value.
      continue;
    }
    Belief computed = factor.MessageTo(i, incoming_scratch_).Rescaled();
    if (options_.damping > 0.0) {
      computed = to_var_[f][i].DampedToward(computed, 1.0 - options_.damping);
    }
    target[i] = computed;
    ++message_updates_;
  }
}

double SumProductEngine::Step() {
  switch (options_.schedule) {
    case SumProductSchedule::kFlooding: {
      RefreshVariableToFactorCache();
      for (FactorIndex f = 0; f < graph_.factor_count(); ++f) {
        UpdateFactorMessages(f, /*synchronous_stage=*/true);
      }
      to_var_ = staged_;
      break;
    }
    case SumProductSchedule::kSerial: {
      for (FactorIndex f = 0; f < graph_.factor_count(); ++f) {
        UpdateFactorMessages(f, /*synchronous_stage=*/false);
      }
      break;
    }
    case SumProductSchedule::kRandomSerial: {
      std::vector<FactorIndex> order(graph_.factor_count());
      std::iota(order.begin(), order.end(), 0);
      rng_.Shuffle(&order);
      for (FactorIndex f : order) {
        UpdateFactorMessages(f, /*synchronous_stage=*/false);
      }
      break;
    }
  }

  // Residual: one pass over the new messages against the cached posteriors
  // of the previous step — no full before/after posterior materialization.
  double max_change = 0.0;
  for (VarId v = 0; v < graph_.variable_count(); ++v) {
    Belief posterior = Belief::Unit();
    for (const auto& [g, i] : var_slots_[v]) {
      posterior *= to_var_[g][i];
    }
    posterior = posterior.Normalized();
    max_change = std::max(max_change, posteriors_[v].NormalizedDistance(posterior));
    posteriors_[v] = posterior;
  }
  return max_change;
}

Belief SumProductEngine::Posterior(VarId v) const {
  Belief posterior = Belief::Unit();
  for (const auto& [g, i] : var_slots_[v]) {
    posterior *= to_var_[g][i];
  }
  return posterior.Normalized();
}

std::vector<Belief> SumProductEngine::Posteriors() const {
  // Valid whether or not a step ran: the constructor primes the cache and
  // every Step refreshes it.
  return posteriors_;
}

SumProductResult SumProductEngine::Run() {
  SumProductResult result;
  size_t patience = options_.convergence_patience;
  if (patience == 0) {
    patience = options_.message_send_probability >= 1.0
                   ? 1
                   : static_cast<size_t>(
                         std::ceil(3.0 / options_.message_send_probability));
  }
  size_t quiet_steps = 0;
  for (size_t iteration = 0; iteration < options_.max_iterations; ++iteration) {
    const double change = Step();
    result.iterations = iteration + 1;
    if (options_.record_trajectory) {
      std::vector<double> snapshot(graph_.variable_count());
      for (VarId v = 0; v < graph_.variable_count(); ++v) {
        snapshot[v] = posteriors_[v].correct;
      }
      result.trajectory.push_back(std::move(snapshot));
    }
    quiet_steps = change < options_.tolerance ? quiet_steps + 1 : 0;
    if (quiet_steps >= patience) {
      result.converged = true;
      break;
    }
  }
  result.posteriors = posteriors_;
  result.message_updates = message_updates_;
  return result;
}

}  // namespace pdms
