#include "factor/sum_product.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace pdms {

SumProductEngine::SumProductEngine(const FactorGraph& graph,
                                   SumProductOptions options)
    : graph_(graph), options_(options), rng_(options.seed) {
  to_var_.resize(graph_.factor_count());
  for (FactorId f = 0; f < graph_.factor_count(); ++f) {
    // "All peers virtually received a unit message from all other peers
    // prior to starting the algorithm" (Section 4.3): initialize every
    // message to the unit function.
    to_var_[f].assign(graph_.factor(f).arity(), Belief::Unit());
  }
  staged_ = to_var_;
}

Belief SumProductEngine::VariableToFactor(FactorId f, size_t position) const {
  const VarId v = graph_.factor(f).variables()[position];
  Belief message = Belief::Unit();
  for (FactorId g : graph_.factors_of(v)) {
    if (g == f) continue;
    const auto& vars = graph_.factor(g).variables();
    for (size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == v) message *= to_var_[g][i];
    }
  }
  return message.Rescaled();
}

void SumProductEngine::UpdateFactorMessages(FactorId f, bool synchronous_stage) {
  const Factor& factor = graph_.factor(f);
  const size_t n = factor.arity();
  std::vector<Belief> incoming(n);
  for (size_t i = 0; i < n; ++i) {
    incoming[i] = VariableToFactor(f, i);
    ++message_updates_;
  }
  auto& target = synchronous_stage ? staged_[f] : to_var_[f];
  for (size_t i = 0; i < n; ++i) {
    if (options_.message_send_probability < 1.0 &&
        !rng_.Bernoulli(options_.message_send_probability)) {
      target[i] = to_var_[f][i];  // Message lost: recipient keeps stale value.
      continue;
    }
    Belief computed = factor.MessageTo(i, incoming).Rescaled();
    if (options_.damping > 0.0) {
      computed = to_var_[f][i].DampedToward(computed, 1.0 - options_.damping);
    }
    target[i] = computed;
    ++message_updates_;
  }
}

double SumProductEngine::Step() {
  std::vector<Belief> before = Posteriors();

  switch (options_.schedule) {
    case SumProductSchedule::kFlooding: {
      for (FactorId f = 0; f < graph_.factor_count(); ++f) {
        UpdateFactorMessages(f, /*synchronous_stage=*/true);
      }
      to_var_ = staged_;
      break;
    }
    case SumProductSchedule::kSerial: {
      for (FactorId f = 0; f < graph_.factor_count(); ++f) {
        UpdateFactorMessages(f, /*synchronous_stage=*/false);
      }
      break;
    }
    case SumProductSchedule::kRandomSerial: {
      std::vector<FactorId> order(graph_.factor_count());
      std::iota(order.begin(), order.end(), 0);
      rng_.Shuffle(&order);
      for (FactorId f : order) {
        UpdateFactorMessages(f, /*synchronous_stage=*/false);
      }
      break;
    }
  }

  double max_change = 0.0;
  for (VarId v = 0; v < graph_.variable_count(); ++v) {
    max_change = std::max(max_change, before[v].NormalizedDistance(Posterior(v)));
  }
  return max_change;
}

Belief SumProductEngine::Posterior(VarId v) const {
  Belief posterior = Belief::Unit();
  for (FactorId f : graph_.factors_of(v)) {
    const auto& vars = graph_.factor(f).variables();
    for (size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == v) posterior *= to_var_[f][i];
    }
  }
  return posterior.Normalized();
}

std::vector<Belief> SumProductEngine::Posteriors() const {
  std::vector<Belief> posteriors(graph_.variable_count());
  for (VarId v = 0; v < graph_.variable_count(); ++v) {
    posteriors[v] = Posterior(v);
  }
  return posteriors;
}

SumProductResult SumProductEngine::Run() {
  SumProductResult result;
  size_t patience = options_.convergence_patience;
  if (patience == 0) {
    patience = options_.message_send_probability >= 1.0
                   ? 1
                   : static_cast<size_t>(
                         std::ceil(3.0 / options_.message_send_probability));
  }
  size_t quiet_steps = 0;
  for (size_t iteration = 0; iteration < options_.max_iterations; ++iteration) {
    const double change = Step();
    result.iterations = iteration + 1;
    if (options_.record_trajectory) {
      std::vector<double> snapshot(graph_.variable_count());
      for (VarId v = 0; v < graph_.variable_count(); ++v) {
        snapshot[v] = Posterior(v).correct;
      }
      result.trajectory.push_back(std::move(snapshot));
    }
    quiet_steps = change < options_.tolerance ? quiet_steps + 1 : 0;
    if (quiet_steps >= patience) {
      result.converged = true;
      break;
    }
  }
  result.posteriors = Posteriors();
  result.message_updates = message_updates_;
  return result;
}

}  // namespace pdms
