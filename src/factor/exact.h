#ifndef PDMS_FACTOR_EXACT_H_
#define PDMS_FACTOR_EXACT_H_

#include <vector>

#include "factor/factor_graph.h"
#include "util/status.h"

namespace pdms {

/// Exact marginals by brute-force enumeration of all 2^n assignments.
/// Fails with `InvalidArgument` beyond 24 variables. This is the oracle the
/// paper compares its decentralized loopy scheme against (Figure 9).
Result<std::vector<Belief>> ExactMarginalsBruteForce(const FactorGraph& graph);

/// Exact marginal of a single variable by variable elimination with a
/// min-fill-in ordering; handles graphs whose induced width stays small
/// even when brute force would be infeasible. Fails if an intermediate
/// factor would exceed 2^24 entries.
Result<Belief> ExactMarginalVariableElimination(const FactorGraph& graph,
                                                VarId target);

/// Exact partition function Z = Σ_X Π_f f(X) by brute force (<= 24 vars).
Result<double> ExactPartitionFunction(const FactorGraph& graph);

}  // namespace pdms

#endif  // PDMS_FACTOR_EXACT_H_
