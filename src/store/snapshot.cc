#include "store/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <utility>

#include "net/codec.h"
#include "util/string_util.h"

namespace pdms {
namespace {

/// "PDMSSNP1", little-endian, as the first eight bytes of every file.
constexpr uint64_t kSnapshotMagic = 0x31504e53534d4450ull;

/// ⊥ / nullopt sentinel for optional 32-bit ids on disk.
constexpr uint32_t kNullId32 = 0xffffffffu;

// --- Serialization primitives -------------------------------------------------
//
// The wire codec keeps its byte helpers in an anonymous namespace on
// purpose (they are wire-format internals); the snapshot format is a
// separate, independently-versioned layout, so it carries its own. Only
// the public codec pieces are shared: `Crc32` for payload integrity and
// `EncodePayload`/`DecodePayload` for the message payloads captured in
// transport inboxes and probe caches.

struct Writer {
  std::vector<uint8_t> out;

  void U8(uint8_t v) { out.push_back(v); }
  void Bool(bool v) { out.push_back(v ? 1 : 0); }
  void Fixed32(uint32_t v) {
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
  }
  void Fixed64(uint64_t v) {
    Fixed32(static_cast<uint32_t>(v));
    Fixed32(static_cast<uint32_t>(v >> 32));
  }
  void Double(double v) { Fixed64(std::bit_cast<uint64_t>(v)); }
  void Varint(uint64_t v) {
    while (v >= 0x80) {
      out.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
  }
  void String(const std::string& s) {
    Varint(s.size());
    out.insert(out.end(), s.begin(), s.end());
  }
  void Bytes(const std::vector<uint8_t>& b) {
    out.insert(out.end(), b.begin(), b.end());
  }
};

/// Bounds-checked sequential reader. Any out-of-range read trips the
/// sticky `failed` flag and yields zeros; callers check once per
/// milestone instead of threading a Status through every field.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  bool failed() const { return failed_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool Done() const { return !failed_ && pos_ == data_.size(); }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return data_[pos_++];
  }
  bool Bool() { return U8() != 0; }
  uint32_t Fixed32() {
    if (!Need(4)) return 0;
    uint32_t v = static_cast<uint32_t>(data_[pos_]) |
                 static_cast<uint32_t>(data_[pos_ + 1]) << 8 |
                 static_cast<uint32_t>(data_[pos_ + 2]) << 16 |
                 static_cast<uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }
  uint64_t Fixed64() {
    const uint64_t lo = Fixed32();
    const uint64_t hi = Fixed32();
    return lo | hi << 32;
  }
  double Double() { return std::bit_cast<double>(Fixed64()); }
  uint64_t Varint() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (!Need(1)) return 0;
      const uint8_t byte = data_[pos_++];
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    failed_ = true;
    return 0;
  }
  /// Collection count: bounded by the bytes actually left, so a corrupt
  /// length cannot trigger a huge allocation before the parse fails.
  size_t Count(size_t min_element_bytes) {
    const uint64_t n = Varint();
    const size_t bound =
        min_element_bytes > 0 ? remaining() / min_element_bytes : remaining();
    if (n > bound) {
      failed_ = true;
      return 0;
    }
    return static_cast<size_t>(n);
  }
  std::string String() {
    const size_t n = Count(1);
    if (!Need(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::span<const uint8_t> Bytes(size_t n) {
    if (!Need(n)) return {};
    std::span<const uint8_t> b = data_.subspan(pos_, n);
    pos_ += n;
    return b;
  }

 private:
  bool Need(size_t n) {
    if (failed_ || remaining() < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// --- Field-group helpers ------------------------------------------------------

void PutFactorId(Writer& w, const FactorId& id) {
  w.Fixed64(id.hi);
  w.Fixed64(id.lo);
}

FactorId GetFactorId(Reader& r) {
  FactorId id;
  id.hi = r.Fixed64();
  id.lo = r.Fixed64();
  return id;
}

void PutClosure(Writer& w, const Closure& closure) {
  w.U8(static_cast<uint8_t>(closure.kind));
  w.Varint(closure.edges.size());
  for (EdgeId e : closure.edges) w.Fixed32(e);
  w.Varint(closure.split);
  w.Fixed32(closure.source);
  w.Fixed32(closure.sink);
}

bool GetClosure(Reader& r, Closure* closure) {
  const uint8_t kind = r.U8();
  if (kind > static_cast<uint8_t>(Closure::Kind::kParallelPaths)) return false;
  closure->kind = static_cast<Closure::Kind>(kind);
  closure->edges.resize(r.Count(4));
  for (EdgeId& e : closure->edges) e = r.Fixed32();
  closure->split = static_cast<size_t>(r.Varint());
  closure->source = r.Fixed32();
  closure->sink = r.Fixed32();
  return !r.failed() && closure->split <= closure->edges.size();
}

void PutPayload(Writer& w, const Payload& payload) {
  std::vector<uint8_t> bytes;
  EncodePayload(payload, &bytes);
  w.U8(static_cast<uint8_t>(KindOf(payload)));
  w.Varint(bytes.size());
  w.Bytes(bytes);
}

Result<Payload> GetPayload(Reader& r) {
  const uint8_t kind = r.U8();
  const size_t size = r.Count(1);
  std::span<const uint8_t> bytes = r.Bytes(size);
  if (r.failed()) return Status::DataLoss("snapshot payload truncated");
  if (kind >= kMessageKindCount) {
    return Status::DataLoss(
        StrFormat("snapshot payload has unknown message kind %u", kind));
  }
  return DecodePayload(static_cast<MessageKind>(kind), bytes);
}

void PutPeerImage(Writer& w, const Peer::Image& image) {
  w.Varint(image.mappings.size());
  for (const auto& [edge, mapping] : image.mappings) {
    w.Fixed32(edge);
    w.String(mapping.name());
    w.Varint(mapping.source_size());
    for (AttributeId a = 0; a < mapping.source_size(); ++a) {
      const std::optional<AttributeId> target = mapping.Apply(a);
      w.Fixed32(target.has_value() ? *target : kNullId32);
    }
  }

  w.Varint(image.replicas.size());
  for (const Peer::Replica& replica : image.replicas) {
    PutFactorId(w, replica.id);
    PutClosure(w, replica.closure);
    w.Fixed32(replica.root_attribute);
    w.U8(static_cast<uint8_t>(replica.sign));
    w.Double(replica.delta);
    w.Varint(replica.other_owners.size());
    for (PeerId p : replica.other_owners) w.Fixed32(p);
  }

  w.Varint(image.replica_hot.size());
  for (const Peer::ReplicaHot& hot : image.replica_hot) {
    w.Fixed32(hot.msg_base);
    w.Fixed32(hot.member_count);
    w.Fixed32(hot.owned_base);
    w.Fixed32(hot.owned_count);
    w.Double(hot.delta);
    w.Bool(hot.positive);
  }

  w.Varint(image.var_to_factor_pool.size());
  for (const Belief& b : image.var_to_factor_pool) {
    w.Double(b.correct);
    w.Double(b.incorrect);
  }
  w.Varint(image.factor_to_var_pool.size());
  for (const Belief& b : image.factor_to_var_pool) {
    w.Double(b.correct);
    w.Double(b.incorrect);
  }

  w.Varint(image.member_pool.size());
  for (const MappingVarKey& key : image.member_pool) {
    w.Fixed32(key.edge);
    w.Fixed32(key.attribute);
  }
  w.Varint(image.member_owner_pool.size());
  for (PeerId p : image.member_owner_pool) w.Fixed32(p);
  w.Varint(image.owned_pos_pool.size());
  for (uint32_t pos : image.owned_pos_pool) w.Fixed32(pos);

  w.Varint(image.belief_routes.size());
  for (const Peer::BeliefRoute& route : image.belief_routes) {
    w.Fixed32(route.to);
    w.Fixed32(route.link);
    w.Fixed32(route.entry_total);
    w.Varint(route.groups.size());
    for (const auto& [replica, alias] : route.groups) {
      w.Fixed32(replica);
      w.Fixed32(alias);
    }
  }

  w.Varint(image.links.size());
  for (const Peer::LinkImage& link : image.links) {
    w.Fixed32(link.peer);
    w.Varint(link.tx_id_by_alias.size());
    for (const FactorId& id : link.tx_id_by_alias) PutFactorId(w, id);
    w.Fixed32(link.tx_acked_prefix);
    w.Varint(link.rx_id_of.size());
    for (const FactorId& id : link.rx_id_of) PutFactorId(w, id);
    w.Fixed32(link.rx_known_prefix);
    w.Varint(link.replica_of_alias.size());
    for (uint32_t replica : link.replica_of_alias) w.Fixed32(replica);
    w.U8(static_cast<uint8_t>(link.value_rank));
    w.Double(link.guard_score);
    w.U8(static_cast<uint8_t>(link.guard_demote_level));
    w.Fixed64(link.guard_rejections);
    w.Fixed64(link.guard_equivocations);
    w.Fixed64(link.guard_oscillations);
    w.Fixed64(link.guard_outliers);
    w.Fixed64(link.guard_dropped_bundles);
    w.Double(link.guard_round_influence);
    w.Fixed32(link.guard_round_absorbed);
  }
  w.Fixed32(image.alias_epoch);
  w.Varint(image.guard_slot_pool.size());
  for (const Peer::GuardSlot& slot : image.guard_slot_pool) {
    w.Double(slot.last_log_odds);
    w.Fixed64(slot.last_round);
    w.U8(slot.flips);
    w.U8(static_cast<uint8_t>(slot.last_dir));
    w.Bool(slot.has_last);
  }
  w.Fixed64(image.round);

  w.Varint(image.vars.size());
  for (const Peer::VarState& var : image.vars) {
    w.Fixed32(var.key.edge);
    w.Fixed32(var.key.attribute);
    w.Double(var.prior);
    w.Bool(var.has_explicit_prior);
    w.Fixed64(var.evidence_count);
    w.Double(var.evidence_sum);
    w.Bool(var.has_evidence_acc);
    w.Double(var.last_posterior);
    w.Bool(var.has_last_posterior);
    w.Varint(var.slots.size());
    for (const auto& [replica, position] : var.slots) {
      w.Fixed32(replica);
      w.Fixed32(position);
    }
  }

  w.Varint(image.announced.size());
  for (const FactorId& id : image.announced) PutFactorId(w, id);
  w.Varint(image.seen_queries.size());
  for (uint64_t q : image.seen_queries) w.Fixed64(q);

  w.Varint(image.probe_cache.size());
  for (const auto& [origin, probes] : image.probe_cache) {
    w.Fixed32(origin);
    w.Varint(probes.size());
    for (const ProbeMessage& probe : probes) PutPayload(w, Payload(probe));
  }
}

Status GetPeerImage(Reader& r, Peer::Image* image) {
  const auto corrupt = [](const char* what) {
    return Status::DataLoss(
        StrFormat("snapshot peer image corrupt: %s", what));
  };

  image->mappings.clear();
  const size_t mapping_count = r.Count(4);
  image->mappings.reserve(mapping_count);
  for (size_t i = 0; i < mapping_count; ++i) {
    const EdgeId edge = r.Fixed32();
    std::string name = r.String();
    const size_t source_size = r.Count(4);
    SchemaMapping mapping(std::move(name), source_size);
    for (AttributeId a = 0; a < source_size; ++a) {
      const uint32_t target = r.Fixed32();
      if (target == kNullId32) continue;
      const Status set = mapping.Set(a, target);
      if (!set.ok()) return set;
    }
    if (r.failed()) return corrupt("mapping table");
    image->mappings.emplace_back(edge, std::move(mapping));
  }

  image->replicas.clear();
  const size_t replica_count = r.Count(16);
  image->replicas.reserve(replica_count);
  for (size_t i = 0; i < replica_count; ++i) {
    Peer::Replica& replica = image->replicas.emplace_back();
    replica.id = GetFactorId(r);
    if (!GetClosure(r, &replica.closure)) return corrupt("replica closure");
    replica.root_attribute = r.Fixed32();
    const uint8_t sign = r.U8();
    if (sign > static_cast<uint8_t>(FeedbackSign::kNeutral)) {
      return corrupt("replica sign");
    }
    replica.sign = static_cast<FeedbackSign>(sign);
    replica.delta = r.Double();
    replica.other_owners.resize(r.Count(4));
    for (PeerId& p : replica.other_owners) p = r.Fixed32();
  }
  if (r.failed()) return corrupt("replica table");

  image->replica_hot.resize(r.Count(16));
  for (Peer::ReplicaHot& hot : image->replica_hot) {
    hot.msg_base = r.Fixed32();
    hot.member_count = r.Fixed32();
    hot.owned_base = r.Fixed32();
    hot.owned_count = r.Fixed32();
    hot.delta = r.Double();
    hot.positive = r.Bool();
  }

  image->var_to_factor_pool.resize(r.Count(16));
  for (Belief& b : image->var_to_factor_pool) {
    b.correct = r.Double();
    b.incorrect = r.Double();
  }
  image->factor_to_var_pool.resize(r.Count(16));
  for (Belief& b : image->factor_to_var_pool) {
    b.correct = r.Double();
    b.incorrect = r.Double();
  }

  image->member_pool.resize(r.Count(8));
  for (MappingVarKey& key : image->member_pool) {
    key.edge = r.Fixed32();
    key.attribute = r.Fixed32();
  }
  image->member_owner_pool.resize(r.Count(4));
  for (PeerId& p : image->member_owner_pool) p = r.Fixed32();
  image->owned_pos_pool.resize(r.Count(4));
  for (uint32_t& pos : image->owned_pos_pool) pos = r.Fixed32();
  if (r.failed()) return corrupt("message pools");

  image->belief_routes.resize(r.Count(12));
  for (Peer::BeliefRoute& route : image->belief_routes) {
    route.to = r.Fixed32();
    route.link = r.Fixed32();
    route.entry_total = r.Fixed32();
    route.groups.resize(r.Count(8));
    for (auto& [replica, alias] : route.groups) {
      replica = r.Fixed32();
      alias = r.Fixed32();
    }
  }

  image->links.resize(r.Count(12));
  for (Peer::LinkImage& link : image->links) {
    link.peer = r.Fixed32();
    link.tx_id_by_alias.resize(r.Count(16));
    for (FactorId& id : link.tx_id_by_alias) id = GetFactorId(r);
    link.tx_acked_prefix = r.Fixed32();
    link.rx_id_of.resize(r.Count(16));
    for (FactorId& id : link.rx_id_of) id = GetFactorId(r);
    link.rx_known_prefix = r.Fixed32();
    link.replica_of_alias.resize(r.Count(4));
    for (uint32_t& replica : link.replica_of_alias) replica = r.Fixed32();
    link.value_rank = r.U8();
    if (link.value_rank >= kValueRankCount) return corrupt("link value rank");
    link.guard_score = r.Double();
    link.guard_demote_level = r.U8();
    if (link.guard_demote_level > 2) return corrupt("link demote level");
    link.guard_rejections = r.Fixed64();
    link.guard_equivocations = r.Fixed64();
    link.guard_oscillations = r.Fixed64();
    link.guard_outliers = r.Fixed64();
    link.guard_dropped_bundles = r.Fixed64();
    link.guard_round_influence = r.Double();
    link.guard_round_absorbed = r.Fixed32();
  }
  image->alias_epoch = r.Fixed32();
  image->guard_slot_pool.resize(r.Count(19));
  for (Peer::GuardSlot& slot : image->guard_slot_pool) {
    slot.last_log_odds = r.Double();
    slot.last_round = r.Fixed64();
    slot.flips = r.U8();
    slot.last_dir = static_cast<int8_t>(r.U8());
    slot.has_last = r.Bool();
  }
  image->round = r.Fixed64();
  if (r.failed()) return corrupt("alias links");

  image->vars.resize(r.Count(8));
  for (Peer::VarState& var : image->vars) {
    var.key.edge = r.Fixed32();
    var.key.attribute = r.Fixed32();
    var.prior = r.Double();
    var.has_explicit_prior = r.Bool();
    var.evidence_count = r.Fixed64();
    var.evidence_sum = r.Double();
    var.has_evidence_acc = r.Bool();
    var.last_posterior = r.Double();
    var.has_last_posterior = r.Bool();
    var.slots.resize(r.Count(8));
    for (auto& [replica, position] : var.slots) {
      replica = r.Fixed32();
      position = r.Fixed32();
    }
  }

  image->announced.resize(r.Count(16));
  for (FactorId& id : image->announced) id = GetFactorId(r);
  image->seen_queries.resize(r.Count(8));
  for (uint64_t& q : image->seen_queries) q = r.Fixed64();

  image->probe_cache.clear();
  const size_t origin_count = r.Count(4);
  image->probe_cache.reserve(origin_count);
  for (size_t i = 0; i < origin_count; ++i) {
    auto& [origin, probes] = image->probe_cache.emplace_back();
    origin = r.Fixed32();
    const size_t probe_count = r.Count(2);
    probes.reserve(probe_count);
    for (size_t j = 0; j < probe_count; ++j) {
      PDMS_ASSIGN_OR_RETURN(Payload payload, GetPayload(r));
      ProbeMessage* probe = std::get_if<ProbeMessage>(&payload);
      if (probe == nullptr) return corrupt("probe cache payload kind");
      probes.push_back(std::move(*probe));
    }
  }
  if (r.failed()) return corrupt("var / probe tables");
  return Status::Ok();
}

void PutCapturedFrame(Writer& w, const CapturedFrame& frame) {
  w.Fixed64(frame.seq);
  w.Fixed32(frame.envelope.from);
  w.Fixed32(frame.envelope.to);
  w.Fixed32(frame.envelope.via.has_value() ? *frame.envelope.via : kNullId32);
  w.Fixed64(frame.envelope.deliver_at);
  PutPayload(w, frame.envelope.payload);
}

Status GetCapturedFrame(Reader& r, CapturedFrame* frame) {
  frame->seq = r.Fixed64();
  frame->envelope.from = r.Fixed32();
  frame->envelope.to = r.Fixed32();
  const uint32_t via = r.Fixed32();
  frame->envelope.via =
      via == kNullId32 ? std::nullopt : std::optional<EdgeId>(via);
  frame->envelope.deliver_at = r.Fixed64();
  PDMS_ASSIGN_OR_RETURN(frame->envelope.payload, GetPayload(r));
  return Status::Ok();
}

// --- File IO ------------------------------------------------------------------

Status WriteFileDurably(const std::string& path,
                        std::span<const uint8_t> bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("open(%s): %s", path.c_str(), std::strerror(errno)));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      return Status::Internal(
          StrFormat("write(%s): %s", path.c_str(), std::strerror(saved)));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    return Status::Internal(
        StrFormat("fsync(%s): %s", path.c_str(), std::strerror(saved)));
  }
  if (::close(fd) != 0) {
    return Status::Internal(
        StrFormat("close(%s): %s", path.c_str(), std::strerror(errno)));
  }
  return Status::Ok();
}

Status FsyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("open(%s): %s", dir.c_str(), std::strerror(errno)));
  }
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::Internal(
        StrFormat("fsync(%s): %s", dir.c_str(), std::strerror(saved)));
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> ReadFileFully(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(StrFormat("no snapshot at %s", path.c_str()));
    }
    return Status::Internal(
        StrFormat("open(%s): %s", path.c_str(), std::strerror(errno)));
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      return Status::Internal(
          StrFormat("read(%s): %s", path.c_str(), std::strerror(saved)));
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  ::close(fd);
  return bytes;
}

void HashU64(uint64_t& h, uint64_t v) {
  // FNV-1a over the value's eight little-endian bytes.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
}

void HashDouble(uint64_t& h, double v) { HashU64(h, std::bit_cast<uint64_t>(v)); }

}  // namespace

uint64_t ComputeStateEpoch(const Digraph& graph,
                           std::span<const uint32_t> shard_of,
                           uint32_t shard_count,
                           const EngineOptions& options) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  HashU64(h, graph.node_count());
  HashU64(h, shard_count);
  for (uint32_t shard : shard_of) HashU64(h, shard);
  // Every edge ever added, in id order — ids are stable and never reused,
  // so all shards agree regardless of later removals (liveness is state,
  // not identity; it lives in the snapshot's engine image).
  HashU64(h, graph.alive_flags().size());
  for (EdgeId e = 0; e < graph.alive_flags().size(); ++e) {
    HashU64(h, graph.edge(e).src);
    HashU64(h, graph.edge(e).dst);
  }
  // Options that influence inference results. Scheduling knobs
  // (parallelism, min_peers_per_lane) and transport simulation settings
  // are deliberately excluded: results are identical across them.
  HashDouble(h, options.default_prior);
  HashU64(h, options.delta_override.has_value() ? 1 : 0);
  HashDouble(h, options.delta_override.value_or(0.0));
  HashDouble(h, options.theta);
  HashU64(h, options.forward_without_evidence ? 1 : 0);
  HashU64(h, options.probe_ttl);
  HashU64(h, options.closure_limits.max_cycle_length);
  HashU64(h, options.closure_limits.min_cycle_length);
  HashU64(h, options.closure_limits.max_path_length);
  HashU64(h, options.closure_limits.max_closures);
  HashU64(h, options.max_cached_probes);
  HashU64(h, static_cast<uint64_t>(options.schedule));
  HashU64(h, options.period_ticks);
  HashU64(h, static_cast<uint64_t>(options.granularity));
  HashDouble(h, options.tolerance);
  HashU64(h, options.convergence_patience);
  HashDouble(h, options.damping);
  // The value error budget changes what travels on the wire (and thus the
  // posteriors), so snapshots taken under one precision policy must never
  // be resumed under another.
  HashDouble(h, options.value_precision.error_budget);
  HashU64(h, options.value_precision.adaptive ? 1 : 0);
  HashU64(h, options.value_precision.exact_at_convergence ? 1 : 0);
  // The Byzantine guard changes what gets absorbed (and persists demotion
  // state in the image), and the chaos plan changes what goes on the
  // wire: a snapshot taken under one configuration must never be resumed
  // under another.
  const ByzantineGuardOptions& guard = options.byzantine_guard;
  HashU64(h, guard.enabled ? 1 : 0);
  if (guard.enabled) {
    HashDouble(h, guard.score_decay);
    HashDouble(h, guard.admission_weight);
    HashDouble(h, guard.equivocation_weight);
    HashDouble(h, guard.oscillation_weight);
    HashDouble(h, guard.outlier_weight);
    HashU64(h, guard.oscillation_bound);
    HashDouble(h, guard.flip_magnitude);
    HashDouble(h, guard.outlier_ratio);
    HashDouble(h, guard.soft_threshold);
    HashDouble(h, guard.hard_threshold);
    HashDouble(h, guard.soft_damping);
  }
  const ByzantinePlan& chaos = options.byzantine;
  HashU64(h, chaos.Enabled() ? 1 : 0);
  if (chaos.Enabled()) {
    HashU64(h, chaos.seed);
    HashDouble(h, chaos.lie_probability);
    HashU64(h, chaos.invert_values ? 1 : 0);
    HashDouble(h, chaos.equivocate_rate);
    HashU64(h, chaos.adversaries.size());
    for (PeerId adversary : chaos.adversaries) HashU64(h, adversary);
    HashU64(h, chaos.collude ? 1 : 0);
  }
  return h;
}

std::vector<uint8_t> EncodeSnapshot(const NodeSnapshot& snapshot) {
  Writer payload;
  payload.Varint(snapshot.engine.edge_alive.size());
  for (const bool alive : snapshot.engine.edge_alive) payload.Bool(alive);
  payload.Varint(snapshot.engine.peers.size());
  for (const Peer::Image& peer : snapshot.engine.peers) {
    PutPeerImage(payload, peer);
  }
  payload.Fixed64(snapshot.engine.next_query_id);
  payload.Varint(snapshot.inbox.size());
  for (const CapturedFrame& frame : snapshot.inbox) {
    PutCapturedFrame(payload, frame);
  }

  Writer file;
  file.Fixed64(kSnapshotMagic);
  file.Fixed32(kSnapshotFormatVersion);
  file.Fixed64(snapshot.state_epoch);
  file.Fixed64(snapshot.round);
  file.Fixed64(snapshot.tick);
  file.Fixed64(snapshot.quiet);
  file.Double(snapshot.previous_change);
  file.Fixed64(snapshot.report_updates);
  file.Fixed64(payload.out.size());
  file.Fixed32(Crc32(payload.out));
  file.Bytes(payload.out);
  return std::move(file.out);
}

Result<NodeSnapshot> DecodeSnapshot(std::span<const uint8_t> bytes) {
  Reader header(bytes);
  NodeSnapshot snapshot;
  const uint64_t magic = header.Fixed64();
  const uint32_t version = header.Fixed32();
  snapshot.state_epoch = header.Fixed64();
  snapshot.round = header.Fixed64();
  snapshot.tick = header.Fixed64();
  snapshot.quiet = header.Fixed64();
  snapshot.previous_change = header.Double();
  snapshot.report_updates = header.Fixed64();
  const uint64_t payload_size = header.Fixed64();
  const uint32_t payload_crc = header.Fixed32();
  if (header.failed()) {
    return Status::DataLoss("snapshot truncated inside the header");
  }
  if (magic != kSnapshotMagic) {
    return Status::DataLoss("not a PDMS snapshot (bad magic)");
  }
  if (version != kSnapshotFormatVersion) {
    return Status::FailedPrecondition(
        StrFormat("snapshot format version %u, this build reads %u", version,
                  kSnapshotFormatVersion));
  }
  if (payload_size != header.remaining()) {
    return Status::DataLoss(
        StrFormat("snapshot payload torn: header says %llu bytes, file has %zu",
                  static_cast<unsigned long long>(payload_size),
                  header.remaining()));
  }
  std::span<const uint8_t> payload_bytes = header.Bytes(payload_size);
  if (Crc32(payload_bytes) != payload_crc) {
    return Status::DataLoss("snapshot payload CRC mismatch");
  }

  Reader payload(payload_bytes);
  snapshot.engine.edge_alive.resize(payload.Count(1));
  for (size_t e = 0; e < snapshot.engine.edge_alive.size(); ++e) {
    snapshot.engine.edge_alive[e] = payload.Bool();
  }
  const size_t peer_count = payload.Count(1);
  snapshot.engine.peers.resize(peer_count);
  for (Peer::Image& peer : snapshot.engine.peers) {
    PDMS_RETURN_IF_ERROR(GetPeerImage(payload, &peer));
  }
  snapshot.engine.next_query_id = payload.Fixed64();
  const size_t inbox_count = payload.Count(29);
  snapshot.inbox.resize(inbox_count);
  for (CapturedFrame& frame : snapshot.inbox) {
    PDMS_RETURN_IF_ERROR(GetCapturedFrame(payload, &frame));
  }
  if (!payload.Done()) {
    return Status::DataLoss("snapshot payload has trailing or missing bytes");
  }
  return snapshot;
}

SnapshotStore::SnapshotStore(std::string state_dir, uint32_t shard)
    : state_dir_(std::move(state_dir)), shard_(shard) {}

std::string SnapshotStore::SlotPath(uint32_t slot) const {
  return StrFormat("%s/shard-%u-snap-%u.pdms", state_dir_.c_str(), shard_,
                   slot);
}

Status SnapshotStore::Save(const NodeSnapshot& snapshot) const {
  const std::vector<uint8_t> bytes = EncodeSnapshot(snapshot);
  const std::string final_path =
      SlotPath(static_cast<uint32_t>(snapshot.round % 2));
  const std::string tmp_path = final_path + ".tmp";
  PDMS_RETURN_IF_ERROR(WriteFileDurably(tmp_path, bytes));
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::Internal(StrFormat("rename(%s -> %s): %s", tmp_path.c_str(),
                                      final_path.c_str(),
                                      std::strerror(errno)));
  }
  return FsyncDirectory(state_dir_);
}

Result<NodeSnapshot> SnapshotStore::Load(uint64_t state_epoch) const {
  Result<NodeSnapshot> best = Status::NotFound(
      StrFormat("no loadable snapshot for shard %u in %s", shard_,
                state_dir_.c_str()));
  for (uint32_t slot = 0; slot < 2; ++slot) {
    Result<std::vector<uint8_t>> bytes = ReadFileFully(SlotPath(slot));
    if (!bytes.ok()) continue;
    Result<NodeSnapshot> decoded = DecodeSnapshot(bytes.value());
    if (!decoded.ok()) continue;
    if (decoded.value().state_epoch != state_epoch) continue;
    if (!best.ok() || decoded.value().round > best.value().round) {
      best = std::move(decoded);
    }
  }
  return best;
}

}  // namespace pdms
