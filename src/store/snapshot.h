#ifndef PDMS_STORE_SNAPSHOT_H_
#define PDMS_STORE_SNAPSHOT_H_

/// \file
/// Crash-consistent durable peer state (the src/store layer).
///
/// A sharded `pdms_node` checkpoints its inference state after each
/// round's mark barrier — a *consistent global cut*: every shard has
/// executed the same number of rounds, and all in-flight round traffic
/// sits in transport inboxes (captured alongside the engine image).
/// Restoring a snapshot therefore reproduces the exact delivery schedule
/// of the original run; the restarted shard skips discovery entirely and
/// resumes the round loop bitwise-identically.
///
/// On disk each shard owns two alternating slot files (double buffering):
/// a checkpoint of round r goes to slot r % 2, written write-new →
/// fsync → atomic rename, so a crash mid-write leaves the previous
/// round's snapshot intact. Loading validates magic, format version,
/// payload CRC and deployment epoch, and picks the highest-round valid
/// slot; torn, truncated or corrupt files are rejected with a `Status`
/// and the node falls back to the other slot or a cold start.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/pdms_engine.h"
#include "pdms/transport.h"
#include "util/status.h"

namespace pdms {

/// Bumped whenever the serialized layout changes incompatibly; loaders
/// reject other versions rather than guessing.
///
/// v2: per-link `value_rank` (adaptive belief quantization tier) joins
/// the link image, so a restored shard resumes its precision trajectory
/// exactly where the crashed run left it.
///
/// v3: Byzantine-guard state joins the peer image — per-link misbehavior
/// scores, demotion levels and violation counters, the per-slot
/// admission histories, and the peer round clock — so demotion
/// trajectories replay identically after a restore.
inline constexpr uint32_t kSnapshotFormatVersion = 3;

/// Deterministic fingerprint of the deployment a snapshot belongs to:
/// topology (nodes, every edge ever added, shard placement) plus the
/// engine options that influence inference results. All shards of one
/// deployment compute the same epoch; a snapshot from a different
/// topology or configuration must never be resumed, and a restarted
/// shard proves membership by echoing the epoch in its rejoin frame.
uint64_t ComputeStateEpoch(const Digraph& graph,
                           std::span<const uint32_t> shard_of,
                           uint32_t shard_count, const EngineOptions& options);

/// One shard's checkpoint at a consistent global cut.
struct NodeSnapshot {
  /// Deployment fingerprint (`ComputeStateEpoch`); checked on load.
  uint64_t state_epoch = 0;
  /// Rounds fully executed everywhere at the cut.
  uint64_t round = 0;
  /// Transport clock at the cut (deliver_at stamps depend on it).
  uint64_t tick = 0;
  /// Consecutive quiet rounds (convergence patience counter).
  uint64_t quiet = 0;
  /// Global max posterior change of the last executed round.
  double previous_change = 1.0;
  /// Belief updates reported so far (resumes the convergence report).
  uint64_t report_updates = 0;
  /// Full inference state of every local peer plus topology liveness.
  PdmsEngine::EngineImage engine;
  /// In-flight round traffic captured from the transport inboxes,
  /// with per-sender sequence numbers so the deterministic
  /// `(deliver_at, from, seq)` drain order survives the restart.
  std::vector<CapturedFrame> inbox;
};

/// Serializes `snapshot` into the on-disk byte layout (header + CRC'd
/// payload). Deterministic: identical snapshots encode identically.
std::vector<uint8_t> EncodeSnapshot(const NodeSnapshot& snapshot);

/// Parses and fully validates an encoded snapshot. Rejects bad magic,
/// unknown format versions, truncated input, trailing garbage and
/// payload CRC mismatches with a descriptive `Status`.
Result<NodeSnapshot> DecodeSnapshot(std::span<const uint8_t> bytes);

/// Double-buffered on-disk checkpoint store for one shard.
///
/// Files live directly in `state_dir` as `shard-<k>-snap-<slot>.pdms`
/// with slot ∈ {0, 1}; `Save` writes `....tmp` first, fsyncs, renames
/// over the slot file and fsyncs the directory, so the store always
/// holds at least one intact snapshot once the first save completed.
/// Driver-thread only, like the node round loop that calls it.
class SnapshotStore {
 public:
  SnapshotStore(std::string state_dir, uint32_t shard);

  /// Durably writes `snapshot` into slot `snapshot.round % 2`.
  Status Save(const NodeSnapshot& snapshot) const;

  /// Loads the best available snapshot: tries both slots, drops any that
  /// fail validation or carry a different `state_epoch`, returns the one
  /// with the highest round. `NotFound` when neither slot is loadable —
  /// the caller cold-starts.
  Result<NodeSnapshot> Load(uint64_t state_epoch) const;

  /// Path of a slot file (slot ∈ {0, 1}); exposed for tests and tooling.
  std::string SlotPath(uint32_t slot) const;

 private:
  std::string state_dir_;
  uint32_t shard_ = 0;
};

}  // namespace pdms

#endif  // PDMS_STORE_SNAPSHOT_H_
