#include "net/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "net/codec.h"
#include "util/logging.h"
#include "util/rng.h"

namespace pdms {
namespace {

/// Distinct salt per fault dimension so the draws are independent.
enum FaultSalt : uint64_t {
  kDropSalt = 0x64726f70u,
  kDuplicateSalt = 0x64757065u,
  kReorderSalt = 0x72656f72u,
  kCorruptSalt = 0x636f7272u,
  kKillSalt = 0x6b696c6cu,
  kDelaySalt = 0x64656c61u,
  kEntropySalt = 0x656e7472u,
};

uint64_t MixDraw(const FaultPlan& plan, uint64_t stream, uint64_t seq,
                 uint32_t attempt, uint64_t salt) {
  uint64_t h = SplitMix64(plan.seed ^ (salt * 0x9e3779b97f4a7c15ull)).Next();
  h = SplitMix64(h ^ (stream * 0xa24baed4963ee407ull)).Next();
  h = SplitMix64(h ^ (seq * 0x9fb21c651e98df25ull)).Next();
  h = SplitMix64(h ^ (static_cast<uint64_t>(attempt) * 0xd6e8feb86659fd93ull))
          .Next();
  return h;
}

bool Bernoulli(const FaultPlan& plan, double rate, uint64_t stream,
               uint64_t seq, uint32_t attempt, uint64_t salt) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  const uint64_t h = MixDraw(plan, stream, seq, attempt, salt);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < rate;
}

}  // namespace

FaultDecision DrawFaults(const FaultPlan& plan, uint64_t stream, uint64_t seq,
                         uint32_t attempt) {
  FaultDecision decision;
  if (!plan.Enabled()) return decision;
  decision.drop =
      Bernoulli(plan, plan.drop_rate, stream, seq, attempt, kDropSalt);
  decision.duplicate = Bernoulli(plan, plan.duplicate_rate, stream, seq,
                                 attempt, kDuplicateSalt);
  decision.reorder =
      Bernoulli(plan, plan.reorder_rate, stream, seq, attempt, kReorderSalt);
  decision.corrupt =
      Bernoulli(plan, plan.corrupt_rate, stream, seq, attempt, kCorruptSalt);
  decision.kill_link =
      Bernoulli(plan, plan.link_kill_rate, stream, seq, attempt, kKillSalt);
  if (plan.delay_ticks_max > 0 &&
      Bernoulli(plan, 0.5, stream, seq, attempt, kDelaySalt)) {
    decision.delay_ticks =
        1 + MixDraw(plan, stream, seq, attempt, kDelaySalt ^ kEntropySalt) %
                plan.delay_ticks_max;
  }
  decision.corrupt_entropy = MixDraw(plan, stream, seq, attempt, kEntropySalt);
  return decision;
}

// --- Behavioral (Byzantine) faults ----------------------------------------------

namespace {

/// Distinct salt per behavioral dimension, disjoint from the link salts.
enum ByzantineSalt : uint64_t {
  kLieSalt = 0x6c696521u,
  kForgeSalt = 0x666f7267u,
  kEquivSalt = 0x65717576u,
  kEquivValueSalt = 0x65717632u,
};

/// Pure draw for one (round, factor, position) event of `stream` — same
/// chained-SplitMix64 construction as the link-fault `MixDraw`, with the
/// 128-bit factor id folded in so draws for distinct factors are
/// independent even at equal positions.
uint64_t ByzantineMix(uint64_t seed, uint64_t stream, uint64_t round,
                      const FactorId& factor, uint32_t position,
                      uint64_t salt) {
  uint64_t h = SplitMix64(seed ^ (salt * 0x9e3779b97f4a7c15ull)).Next();
  h = SplitMix64(h ^ (stream * 0xa24baed4963ee407ull)).Next();
  h = SplitMix64(h ^ (round * 0x9fb21c651e98df25ull)).Next();
  h = SplitMix64(h ^ factor.hi).Next();
  h = SplitMix64(h ^ factor.lo).Next();
  h = SplitMix64(h ^ (static_cast<uint64_t>(position) * 0xd6e8feb86659fd93ull))
          .Next();
  return h;
}

bool ByzantineBernoulli(double rate, uint64_t h) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  return static_cast<double>(h >> 11) * 0x1.0p-53 < rate;
}

/// Normalized 2-state measure with log-odds exactly `l`.
Belief BeliefFromLogOdds(double l) {
  const double p = 1.0 / (1.0 + std::exp(-l));
  return Belief{p, 1.0 - p};
}

/// Log-odds of a measure (±kForgedLogOddsRange for one-sided measures, 0
/// for all-zero ones) — only used to seed forgeries, so saturation
/// behavior just bounds the lie.
constexpr double kForgedLogOddsRange = 8.0;

double ForgeryLogOdds(const Belief& belief) {
  if (belief.correct <= 0.0 && belief.incorrect <= 0.0) return 0.0;
  if (belief.incorrect <= 0.0) return kForgedLogOddsRange;
  if (belief.correct <= 0.0) return -kForgedLogOddsRange;
  return std::log(belief.correct / belief.incorrect);
}

/// A uniform forged log-odds in [-kForgedLogOddsRange, kForgedLogOddsRange].
double DrawForgedLogOdds(uint64_t h) {
  return (static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0) *
         kForgedLogOddsRange;
}

/// The forged entry value: belief + wire quantum, consistent with the
/// bundle's declared precision (the guard's tier check must not get a
/// freebie — adversaries are wire-consistent).
void WriteForgedValue(double log_odds, uint32_t value_bits,
                      BeliefEntry* entry) {
  if (value_bits == 0) {
    entry->belief = BeliefFromLogOdds(log_odds);
    entry->quant = 0;
    return;
  }
  entry->quant = QuantizeLogOdds(BeliefFromLogOdds(log_odds), value_bits);
  entry->belief = DequantizeLogOdds(entry->quant, value_bits);
}

}  // namespace

bool ByzantinePlan::IsAdversary(PeerId peer) const {
  return std::binary_search(adversaries.begin(), adversaries.end(), peer);
}

uint64_t ApplyByzantineFaults(const ByzantinePlan& plan, PeerId sender,
                              PeerId recipient, uint64_t round,
                              std::span<const FactorId> group_ids,
                              BeliefMessage* bundle) {
  if (!plan.Enabled() || !plan.IsAdversary(sender)) return 0;
  // Colluding adversaries omit the sender from the draw key, so every
  // group member forges the same value for the same (recipient, round,
  // factor, position) — mutually corroborating lies at the receiver.
  const uint64_t stream =
      plan.collude ? static_cast<uint64_t>(recipient)
                   : (static_cast<uint64_t>(sender) << 32) | recipient;
  uint64_t forged = 0;
  const bool rebuild = plan.equivocate_rate > 0.0;
  std::vector<BeliefEntry> out;
  if (rebuild) out.reserve(bundle->entries.size());
  for (size_t g = 0; g < bundle->groups.size(); ++g) {
    BeliefGroup& group = bundle->groups[g];
    const FactorId& factor = group_ids[g];
    const uint32_t begin = group.entry_begin;
    const uint32_t count = group.entry_count;
    if (rebuild) group.entry_begin = static_cast<uint32_t>(out.size());
    uint32_t emitted = 0;
    for (uint32_t i = 0; i < count; ++i) {
      BeliefEntry entry = bundle->entries[begin + i];
      const uint64_t lie_draw = ByzantineMix(plan.seed, stream, round, factor,
                                             entry.position, kLieSalt);
      if (ByzantineBernoulli(plan.lie_probability, lie_draw)) {
        const double forged_log_odds =
            plan.invert_values
                ? -ForgeryLogOdds(entry.belief)
                : DrawForgedLogOdds(ByzantineMix(plan.seed, stream, round,
                                                 factor, entry.position,
                                                 kForgeSalt));
        WriteForgedValue(forged_log_odds, bundle->value_bits, &entry);
        ++forged;
      }
      if (rebuild) {
        out.push_back(entry);
        ++emitted;
        const uint64_t equiv_draw = ByzantineMix(
            plan.seed, stream, round, factor, entry.position, kEquivSalt);
        if (ByzantineBernoulli(plan.equivocate_rate, equiv_draw)) {
          // A second, conflicting value for the same position in the same
          // bundle: the within-round equivocation the admission guard
          // detects directly.
          BeliefEntry twin = entry;
          WriteForgedValue(
              DrawForgedLogOdds(ByzantineMix(plan.seed, stream, round, factor,
                                             entry.position,
                                             kEquivValueSalt)),
              bundle->value_bits, &twin);
          out.push_back(twin);
          ++emitted;
          ++forged;
        }
      } else {
        bundle->entries[begin + i] = entry;
      }
    }
    if (rebuild) group.entry_count = emitted;
  }
  if (rebuild) bundle->entries = std::move(out);
  return forged;
}

void ByzantinePeerDecorator::DecorateBundle(PeerId sender, PeerId recipient,
                                            uint64_t round,
                                            std::span<const FactorId> group_ids,
                                            BeliefMessage* bundle) const {
  const uint64_t forged = ApplyByzantineFaults(plan_, sender, recipient, round,
                                               group_ids, bundle);
  if (forged > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    forged_entries_ += forged;
  }
}

uint64_t ByzantinePeerDecorator::forged_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return forged_entries_;
}

// --- FaultInjectingTransport ----------------------------------------------------

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan) {}

FaultInjectingTransport::~FaultInjectingTransport() = default;

void FaultInjectingTransport::ForwardLocked(PeerId from, PeerId to,
                                            std::optional<EdgeId> via,
                                            Payload payload) {
  inner_->Send(from, to, via, std::move(payload));
}

void FaultInjectingTransport::FlushReorderSlotLocked() {
  if (!reorder_slot_.has_value()) return;
  Held held = std::move(*reorder_slot_);
  reorder_slot_.reset();
  ForwardLocked(held.from, held.to, held.via, std::move(held.payload));
}

void FaultInjectingTransport::Send(PeerId from, PeerId to,
                                   std::optional<EdgeId> via,
                                   Payload payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!plan_.Enabled()) {
    ForwardLocked(from, to, via, std::move(payload));
    return;
  }
  const uint64_t seq = event_seq_++;
  const uint64_t stream = (static_cast<uint64_t>(from) << 32) | to;
  const FaultDecision decision = DrawFaults(plan_, stream, seq, 0);
  ++fault_stats_.events;

  if (decision.drop) {
    ++fault_stats_.dropped;
    FlushReorderSlotLocked();
    return;
  }
  if (decision.corrupt) {
    // Round-trip the payload through the exact codec with one bit flipped:
    // surviving flips reach the engine as plausible-but-wrong messages,
    // rejected flips model the codec refusing the frame (a drop).
    const MessageKind kind = KindOf(payload);
    std::vector<uint8_t> bytes;
    EncodePayload(payload, &bytes);
    if (bytes.empty()) {
      ++fault_stats_.corrupt_rejected;
      FlushReorderSlotLocked();
      return;
    }
    const uint64_t bit = decision.corrupt_entropy % (bytes.size() * 8);
    bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    Result<Payload> decoded =
        DecodePayload(kind, std::span<const uint8_t>(bytes));
    if (!decoded.ok()) {
      ++fault_stats_.corrupt_rejected;
      FlushReorderSlotLocked();
      return;
    }
    payload = std::move(decoded).value();
    ++fault_stats_.corrupted;
  }
  if (decision.reorder) {
    // Hold this envelope back one event: the next send (or the tick
    // boundary) overtakes it — an adjacent swap in the arrival order.
    FlushReorderSlotLocked();
    reorder_slot_ = Held{from, to, via, std::move(payload), 0};
    ++fault_stats_.reordered;
    return;
  }
  if (decision.delay_ticks > 0) {
    delayed_.push_back(Held{from, to, via, std::move(payload),
                            decision.delay_ticks});
    ++fault_stats_.delayed;
    FlushReorderSlotLocked();
    return;
  }
  if (decision.duplicate) {
    Payload copy = payload;
    ForwardLocked(from, to, via, std::move(payload));
    ForwardLocked(from, to, via, std::move(copy));
    ++fault_stats_.duplicated;
  } else {
    ForwardLocked(from, to, via, std::move(payload));
  }
  FlushReorderSlotLocked();
}

void FaultInjectingTransport::AdvanceTick() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Everything held must land before the clock moves: a reordered or
    // delayed envelope is late, never lost.
    FlushReorderSlotLocked();
    size_t kept = 0;
    for (size_t i = 0; i < delayed_.size(); ++i) {
      if (--delayed_[i].release_in == 0) {
        Held held = std::move(delayed_[i]);
        ForwardLocked(held.from, held.to, held.via, std::move(held.payload));
      } else {
        if (kept != i) delayed_[kept] = std::move(delayed_[i]);
        ++kept;
      }
    }
    delayed_.resize(kept);
  }
  inner_->AdvanceTick();
}

bool FaultInjectingTransport::HasPendingMessages() const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (reorder_slot_.has_value() || !delayed_.empty()) return true;
  }
  return inner_->HasPendingMessages();
}

FaultStats FaultInjectingTransport::fault_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fault_stats_;
}

void FaultInjectingTransport::set_plan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = plan;
}

}  // namespace pdms
