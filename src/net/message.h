#ifndef PDMS_NET_MESSAGE_H_
#define PDMS_NET_MESSAGE_H_

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "factor/belief.h"
#include "graph/closure.h"
#include "graph/digraph.h"
#include "mapping/mapping.h"
#include "query/query.h"
#include "schema/schema.h"

namespace pdms {

/// Peers are the nodes of the mapping network.
using PeerId = NodeId;

/// Globally addressable fine-granularity mapping variable: the correctness
/// of mapping `edge` for source-schema attribute `attribute` (Section 4.1,
/// fine granularity). Coarse granularity uses attribute == kWholeMapping.
struct MappingVarKey {
  EdgeId edge = 0;
  AttributeId attribute = 0;

  /// Sentinel attribute for coarse (per-mapping) granularity.
  static constexpr AttributeId kWholeMapping = static_cast<AttributeId>(-1);

  /// Bijective 64-bit packing (edge in the high word), used as the hash key
  /// of the peers' flat variable tables.
  uint64_t Packed() const {
    return (static_cast<uint64_t>(edge) << 32) | static_cast<uint64_t>(attribute);
  }

  auto operator<=>(const MappingVarKey&) const = default;
  std::string ToString() const;
};

/// Canonical identity of a feedback factor: a 128-bit content fingerprint
/// of the closure structure plus the root attribute whose transformation
/// chain it scores. All peers derive the same id for the same closure
/// (edge order is canonicalized before hashing), so remote messages can be
/// routed to the right factor replica without central coordination — and
/// without ever putting a string key on the wire or in a hot hash table.
///
/// 128 bits make accidental collisions astronomically unlikely (~2^-64 at
/// a billion factors), but they are still *checked*: ingest compares the
/// announced closure content against any replica already stored under the
/// same id and surfaces a Status on mismatch (see `Peer::IngestFactor`).
struct FactorId {
  uint64_t hi = 0;
  uint64_t lo = 0;

  static FactorId Make(const Closure& closure, AttributeId root_attribute);

  bool IsNil() const { return hi == 0 && lo == 0; }

  auto operator<=>(const FactorId&) const = default;
  /// Fixed-width hex rendering ("hhhhhhhhhhhhhhhh:llllllllllllllll").
  std::string ToString() const;
};

/// Trivial identity hasher for `FactorId` keys: the fingerprint is already
/// uniformly distributed, so hashing it again would only burn cycles.
struct FactorIdHash {
  size_t operator()(const FactorId& id) const noexcept {
    return static_cast<size_t>(id.lo);
  }
};

/// One remote sum-product message µ_{var -> factor} (Section 4.3,
/// "remote message for factor fak from peer p0 to peer pj"). The variable
/// is addressed by its *member position* in the factor's scope: every
/// replica of a factor stores the member order of the announcement that
/// created it (one broadcast per canonicalized closure, so all owners see
/// the same sequence, and ingest rejects a same-id announcement whose
/// member sequence differs — see `Peer::IngestFactor`). A position thus
/// resolves in O(1) at the receiver — no key comparison, no per-update
/// member scan — and costs two bytes on the wire instead of an
/// (edge, attribute) pair.
struct BeliefUpdate {
  FactorId factor;
  uint32_t position = 0;
  Belief belief;
};

/// A TTL-bounded probe flooded to discover cycles and parallel paths
/// (Section 3.2.1: "proactively flooding their neighborhood with probe
/// messages with a certain Time-To-Live").
///
/// The probe carries the transitive closure of the mapping operations it
/// traversed: for every attribute of the origin's schema, its current
/// image (or ⊥), plus the full per-hop trail so feedback factors can name
/// the (edge, attribute) variable at each hop.
struct ProbeMessage {
  PeerId origin = 0;
  uint32_t ttl = 0;
  /// Mapping edges traversed, in order.
  std::vector<EdgeId> route;
  /// trail[h][a] = image of origin attribute `a` after h+1 hops.
  std::vector<std::vector<std::optional<AttributeId>>> trail;
};

/// Feedback for one (closure, root attribute): the observed sign and the
/// chain of mapping variables the corresponding factor connects.
/// Neutral feedback is never announced (it generates no factor).
struct AttributeFeedback {
  AttributeId root_attribute = 0;
  FeedbackSign sign = FeedbackSign::kNeutral;
  /// (edge, source-attribute) for every mapping in the closure, in closure
  /// order; the factor's variable scope.
  std::vector<MappingVarKey> members;
};

/// Announcement of a discovered closure with its per-attribute feedback,
/// sent by the discovering peer to every peer owning a member mapping
/// (the `feedbackMessage` of the Section 4.1 pseudocode).
struct FeedbackAnnouncement {
  Closure closure;
  std::vector<AttributeFeedback> feedback;
  /// ∆ estimated by the discovering peer (Section 4.5: ≈ 1/(s−1) for a
  /// schema of s attributes, unless overridden by configuration).
  double delta = 0.1;
};

/// A bundle of remote belief messages (periodic schedule, Section 4.3.1).
struct BeliefMessage {
  std::vector<BeliefUpdate> updates;
};

/// A query being propagated through the network (Section 2). The query is
/// always expressed in the *recipient*'s schema: the sender translates it
/// through the mapping link before sending. Under the lazy schedule
/// (Section 4.3.2) remote belief messages piggyback on it.
struct QueryMessage {
  uint64_t query_id = 0;
  PeerId origin = 0;
  uint32_t ttl = 0;
  Query query;
  /// Peers that have already processed this query (loop suppression).
  std::vector<PeerId> visited;
  /// Piggybacked belief messages (lazy schedule; empty otherwise).
  std::vector<BeliefUpdate> piggyback;
};

using Payload =
    std::variant<ProbeMessage, FeedbackAnnouncement, BeliefMessage, QueryMessage>;

/// Payload type indices, used for network statistics.
enum class MessageKind : uint8_t {
  kProbe = 0,
  kFeedback = 1,
  kBelief = 2,
  kQuery = 3,
};
constexpr size_t kMessageKindCount = 4;

std::string_view MessageKindName(MessageKind kind);
MessageKind KindOf(const Payload& payload);

/// Estimated size of `payload` on a byte-oriented wire: fixed header fields
/// plus the dynamic content (routes, trails, belief bundles, query terms).
/// Used by transports to account bytes moved; it tracks a compact binary
/// encoding, not the in-memory layout.
size_t ApproximateWireSize(const Payload& payload);

/// The factor-identity bytes inside `payload` under the same encoding: one
/// `FactorId` fingerprint per belief update (bundled or piggybacked), zero
/// for identity-free traffic. Transports account these separately so the
/// scale benchmarks can report how much of the wire is key overhead.
size_t FactorIdWireBytes(const Payload& payload);

/// A payload in flight.
struct Envelope {
  PeerId from = 0;
  PeerId to = 0;
  /// The mapping link it traveled through (edge id), when applicable.
  std::optional<EdgeId> via;
  uint64_t deliver_at = 0;  ///< network tick of delivery
  Payload payload;
};

}  // namespace pdms

#endif  // PDMS_NET_MESSAGE_H_
