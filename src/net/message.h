#ifndef PDMS_NET_MESSAGE_H_
#define PDMS_NET_MESSAGE_H_

#include <algorithm>
#include <compare>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "factor/belief.h"
#include "graph/closure.h"
#include "graph/digraph.h"
#include "mapping/mapping.h"
#include "query/query.h"
#include "schema/schema.h"
#include "util/status.h"

namespace pdms {

/// Peers are the nodes of the mapping network.
using PeerId = NodeId;

/// Globally addressable fine-granularity mapping variable: the correctness
/// of mapping `edge` for source-schema attribute `attribute` (Section 4.1,
/// fine granularity). Coarse granularity uses attribute == kWholeMapping.
struct MappingVarKey {
  EdgeId edge = 0;
  AttributeId attribute = 0;

  /// Sentinel attribute for coarse (per-mapping) granularity.
  static constexpr AttributeId kWholeMapping = static_cast<AttributeId>(-1);

  /// Bijective 64-bit packing (edge in the high word), used as the hash key
  /// of the peers' flat variable tables.
  uint64_t Packed() const {
    return (static_cast<uint64_t>(edge) << 32) | static_cast<uint64_t>(attribute);
  }

  auto operator<=>(const MappingVarKey&) const = default;
  std::string ToString() const;
};

/// Canonical identity of a feedback factor: a 128-bit content fingerprint
/// of the closure structure plus the root attribute whose transformation
/// chain it scores. All peers derive the same id for the same closure
/// (edge order is canonicalized before hashing), so remote messages can be
/// routed to the right factor replica without central coordination — and
/// without ever putting a string key on the wire or in a hot hash table.
///
/// 128 bits make accidental collisions astronomically unlikely (~2^-64 at
/// a billion factors), but they are still *checked*: ingest compares the
/// announced closure content against any replica already stored under the
/// same id and surfaces a Status on mismatch (see `Peer::IngestFactor`).
struct FactorId {
  uint64_t hi = 0;
  uint64_t lo = 0;

  static FactorId Make(const Closure& closure, AttributeId root_attribute);

  bool IsNil() const { return hi == 0 && lo == 0; }

  auto operator<=>(const FactorId&) const = default;
  /// Fixed-width hex rendering ("hhhhhhhhhhhhhhhh:llllllllllllllll").
  std::string ToString() const;
};

/// Trivial identity hasher for `FactorId` keys: the fingerprint is already
/// uniformly distributed, so hashing it again would only burn cycles.
struct FactorIdHash {
  size_t operator()(const FactorId& id) const noexcept {
    return static_cast<size_t>(id.lo);
  }
};

/// One remote sum-product message µ_{var -> factor} (Section 4.3,
/// "remote message for factor fak from peer p0 to peer pj"). The variable
/// is addressed by its *member position* in the factor's scope: every
/// replica of a factor stores the member order of the announcement that
/// created it (one broadcast per canonicalized closure, so all owners see
/// the same sequence, and ingest rejects a same-id announcement whose
/// member sequence differs — see `Peer::IngestFactor`). A position thus
/// resolves in O(1) at the receiver — no key comparison, no per-update
/// member scan — and costs two bytes on the wire instead of an
/// (edge, attribute) pair.
///
/// Carried individually only where updates cross multiple links (lazy
/// piggybacking on query traffic), where a link-local alias cannot
/// survive relay; direct belief bundles group updates per factor and
/// compress the identity via session aliases instead (`BeliefGroup`).
struct BeliefUpdate {
  FactorId factor;
  uint32_t position = 0;
  Belief belief;
};

// --- Link-local factor-id aliasing --------------------------------------------
//
// A 128-bit fingerprint identifies a factor globally, but between two fixed
// peers the set of factors they exchange beliefs about is tiny — so each
// directed (sender -> recipient) belief session negotiates small-int
// *aliases* for the fingerprints, the way DHT-style P2P databases avoid
// shipping full keys per hop. The protocol is loss-tolerant and needs no
// side channel:
//
//  * The sender assigns aliases densely (0, 1, 2, …) when it first routes a
//    factor toward that recipient, and declares the binding on the wire by
//    sending the full fingerprint *alongside* the alias (`BeliefGroup::id`).
//  * The recipient records bindings and acknowledges the longest contiguous
//    bound prefix on its own reverse bundles (`BeliefMessage::ack`; belief
//    routing is symmetric, so a reverse bundle always exists under the
//    periodic schedule).
//  * Until an alias is covered by the acked prefix, the sender keeps
//    re-declaring the binding — a dropped first mention therefore degrades
//    to full-fingerprint traffic, never to misrouting. Once acked, the
//    group carries the bare alias (1–2 varint bytes instead of 16).
//  * A bare alias the recipient has no binding for, an alias beyond the
//    session bound, or a bundle from a stale epoch is rejected with a
//    `Status` (surfaced like PR 3's fingerprint-collision policy), never
//    guessed at.
//
// Tables are rebuilt deterministically from replica order after
// `Peer::RemoveMapping`, which bumps the session epoch on both sides (the
// engine removes a mapping network-wide), invalidating in-flight bundles
// that still reference the old numbering.

/// Hard bound on aliases per directed session: rejects absurd aliases from
/// forged traffic before they can grow the binding table.
inline constexpr uint32_t kMaxAliasesPerSession = 1u << 20;

/// Sender side of one directed belief session (this peer -> recipient).
struct AliasSessionTx {
  /// Alias assigned to each fingerprint first-mentioned on this link.
  std::unordered_map<FactorId, uint32_t, FactorIdHash> alias_of;
  uint32_t next_alias = 0;
  /// Aliases below this are acknowledged by the recipient and are emitted
  /// bare; everything at or above keeps the full-fingerprint fallback.
  uint32_t acked_prefix = 0;

  /// Returns the alias for `id`, assigning the next free one on first
  /// sight (idempotent afterwards).
  uint32_t Assign(const FactorId& id);
};

/// Receiver side of one directed belief session (sender -> this peer).
/// Peers store one `AliasLink` (tx + rx) per neighbor so the round path
/// resolves both directions with a single index lookup.
struct AliasSessionRx {
  /// alias -> fingerprint; nil entries are holes (binding not yet seen).
  std::vector<FactorId> id_of;
  /// Longest contiguous bound prefix — the value acked back to the sender.
  uint32_t known_prefix = 0;

  /// Records a binding declared on the wire. Fails with `OutOfRange` for
  /// aliases beyond `kMaxAliasesPerSession` and `FailedPrecondition` when
  /// the alias is already bound to a *different* fingerprint (re-declaring
  /// the same binding is an idempotent no-op).
  Status Bind(uint32_t alias, const FactorId& id);

  /// Resolves a bare alias; `NotFound` when no binding is recorded.
  Result<FactorId> Resolve(uint32_t alias) const;
};

/// Both directions of one peer-to-peer belief session: what we send them
/// (`tx`) and what we have learned from them (`rx`, whose `known_prefix`
/// is the ack we piggyback back). One hot-path lookup covers both.
struct AliasLink {
  AliasSessionTx tx;
  AliasSessionRx rx;
};

/// A TTL-bounded probe flooded to discover cycles and parallel paths
/// (Section 3.2.1: "proactively flooding their neighborhood with probe
/// messages with a certain Time-To-Live").
///
/// The probe carries the transitive closure of the mapping operations it
/// traversed: for every attribute of the origin's schema, its current
/// image (or ⊥), plus the full per-hop trail so feedback factors can name
/// the (edge, attribute) variable at each hop.
struct ProbeMessage {
  PeerId origin = 0;
  uint32_t ttl = 0;
  /// Mapping edges traversed, in order.
  std::vector<EdgeId> route;
  /// trail[h][a] = image of origin attribute `a` after h+1 hops.
  std::vector<std::vector<std::optional<AttributeId>>> trail;
};

/// Feedback for one (closure, root attribute): the observed sign and the
/// chain of mapping variables the corresponding factor connects.
/// Neutral feedback is never announced (it generates no factor).
struct AttributeFeedback {
  AttributeId root_attribute = 0;
  FeedbackSign sign = FeedbackSign::kNeutral;
  /// (edge, source-attribute) for every mapping in the closure, in closure
  /// order; the factor's variable scope.
  std::vector<MappingVarKey> members;
};

/// Announcement of a discovered closure with its per-attribute feedback,
/// sent by the discovering peer to every peer owning a member mapping
/// (the `feedbackMessage` of the Section 4.1 pseudocode).
struct FeedbackAnnouncement {
  Closure closure;
  std::vector<AttributeFeedback> feedback;
  /// ∆ estimated by the discovering peer (Section 4.5: ≈ 1/(s−1) for a
  /// schema of s attributes, unless overridden by configuration).
  double delta = 0.1;
};

// --- Quantized belief values (wire format v4) ---------------------------------
//
// A 2-state measure only acts on posteriors through its log-odds
// ln(correct/incorrect): the shared scale cancels under `Rescaled()` /
// `Normalized()`. So when a session opts into a value error budget, each
// entry ships a single fixed-point log-odds quantum q = round(l * 2^bits)
// as a zigzag varint instead of two raw doubles, with the per-bundle
// `value_bits` declaring the precision (0 keeps the legacy raw-double
// encoding — the default, and the fallback when quantization is off).
// Senders quantize at bundle construction and store the *dequantized*
// value back into the entry, so in-memory transports (SimTransport moves
// Payload structs without the codec) and the socket path deliver bitwise
// the same beliefs.

/// Upper bound on fractional log-odds bits a bundle may declare; beyond
/// this a double's mantissa is exhausted and the varint stops paying.
inline constexpr uint32_t kMaxValuePrecisionBits = 44;

/// Quanta are bounded by |log-odds| <= 2^kQuantLogOddsRangeLog2 (doubles
/// saturate near ±745 anyway); a wire quantum outside the declared
/// precision's bound is rejected as forged.
inline constexpr uint32_t kQuantLogOddsRangeLog2 = 10;

/// In-memory sentinels for exactly-one-sided measures ({x,0} / {0,x});
/// on the wire they map to the two reserved value tokens.
inline constexpr int64_t kQuantPosInf = INT64_MAX;
inline constexpr int64_t kQuantNegInf = INT64_MIN;

/// Largest finite |quantum| representable at `bits` fractional bits.
constexpr int64_t QuantBound(uint32_t bits) {
  return int64_t{1} << (kQuantLogOddsRangeLog2 + bits);
}

/// Fractional bits for a target per-value error budget `eps`: the
/// log-odds step 2^-bits is kept at most eps/8, leaving headroom for
/// accumulation across loopy iterations. Returns 0 (raw doubles) for a
/// non-positive budget.
uint32_t ValueBitsForBudget(double eps);

/// Fixed-point log-odds quantum of `belief` at `bits` fractional bits
/// (clamped to ±QuantBound; one-sided measures map to the ±inf
/// sentinels, all-zero measures to 0 — the uniform message).
int64_t QuantizeLogOdds(const Belief& belief, uint32_t bits);

/// The normalized 2-state measure whose log-odds is exactly
/// quant / 2^bits (sentinels yield {1,0} / {0,1}).
Belief DequantizeLogOdds(int64_t quant, uint32_t bits);

/// Wire token of a quantum: 0 / 1 are the ±inf sentinels, everything
/// else zigzag(q) + 2. Shared by the encoder and the wire-size model.
uint64_t QuantWireToken(int64_t quant);

/// Inverse of `QuantWireToken` (no range validation; the codec bounds
/// the result against the declared precision).
int64_t QuantFromWireToken(uint64_t token);

/// One position/value entry inside a `BeliefGroup`: the member position
/// (delta-encoded varint on the wire; entries are emitted in ascending
/// position order) and the µ value itself. Under a quantized bundle
/// (`BeliefMessage::value_bits` != 0) `quant` is the wire value and
/// `belief` its dequantized realization; under the raw format `belief`
/// is authoritative and `quant` is unused.
struct BeliefEntry {
  uint32_t position = 0;
  Belief belief;
  int64_t quant = 0;
};

/// All updates of one factor inside a bundle: one alias header + N
/// position/value entries, instead of repeating 16 fingerprint bytes per
/// update. The entries live in the bundle's shared flat array at
/// [entry_begin, entry_begin + entry_count) — one allocation per bundle,
/// not one per factor — and `id` is non-nil while the binding is
/// unacknowledged (first mention, or refallback after loss), nil once the
/// recipient's ack covers the alias and the group travels alias-only.
struct BeliefGroup {
  uint32_t alias = 0;
  uint32_t entry_begin = 0;
  uint32_t entry_count = 0;
  FactorId id;  ///< nil = bare alias (binding already acknowledged)
};

/// A bundle of remote belief messages (periodic schedule, Section 4.3.1),
/// grouped per factor and addressed through the link-local alias session
/// (see "Link-local factor-id aliasing" above). `epoch` stamps the alias
/// numbering generation; `ack` acknowledges the reverse session's bound
/// prefix (piggybacked negotiation — no dedicated ack traffic).
struct BeliefMessage {
  uint32_t epoch = 0;
  uint32_t ack = 0;
  /// Fractional log-odds bits of this bundle's values: 0 = legacy raw
  /// doubles, else a quantized bundle at 2^-value_bits log-odds steps.
  /// Self-describing per bundle, so a link may step precision up
  /// mid-session without any receiver-side state.
  uint32_t value_bits = 0;
  std::vector<BeliefGroup> groups;
  /// All groups' entries, concatenated in group order.
  std::vector<BeliefEntry> entries;

  /// Switches the bundle to the quantized encoding at `bits` fractional
  /// bits: every entry gets its quantum and the dequantized value the
  /// receiver will observe (bits == 0 restores the raw encoding).
  void QuantizeValues(uint32_t bits);

  /// Appends one group with its entries (test/tooling convenience; the
  /// peers' hot path writes the flat arrays directly).
  void AddGroup(uint32_t alias, const FactorId& id,
                std::initializer_list<BeliefEntry> group_entries);

  /// The entries of `group`, as a view into the flat array. The range is
  /// clamped to the array bounds, so a malformed group (forged traffic, a
  /// buggy deserializer) yields a truncated or empty view instead of an
  /// out-of-bounds read; receivers additionally reject such groups with a
  /// Status (see `Peer::AbsorbBeliefBundle`).
  std::span<const BeliefEntry> EntriesOf(const BeliefGroup& group) const {
    const size_t begin = std::min<size_t>(group.entry_begin, entries.size());
    const size_t count =
        std::min<size_t>(group.entry_count, entries.size() - begin);
    return {entries.data() + begin, count};
  }

  /// Individual µ updates carried (the unit the paper's Σ(l−1) bound
  /// counts).
  size_t update_count() const { return entries.size(); }
};

/// A query being propagated through the network (Section 2). The query is
/// always expressed in the *recipient*'s schema: the sender translates it
/// through the mapping link before sending. Under the lazy schedule
/// (Section 4.3.2) remote belief messages piggyback on it.
struct QueryMessage {
  uint64_t query_id = 0;
  PeerId origin = 0;
  uint32_t ttl = 0;
  Query query;
  /// Peers that have already processed this query (loop suppression).
  std::vector<PeerId> visited;
  /// Piggybacked belief messages (lazy schedule; empty otherwise).
  std::vector<BeliefUpdate> piggyback;
};

using Payload =
    std::variant<ProbeMessage, FeedbackAnnouncement, BeliefMessage, QueryMessage>;

/// Payload type indices, used for network statistics.
enum class MessageKind : uint8_t {
  kProbe = 0,
  kFeedback = 1,
  kBelief = 2,
  kQuery = 3,
};
constexpr size_t kMessageKindCount = 4;

std::string_view MessageKindName(MessageKind kind);
MessageKind KindOf(const Payload& payload);

/// Bytes of `value` as a LEB128-style varint (1 byte per 7 payload bits) —
/// the integer encoding the belief-bundle wire model assumes.
size_t VarintWireSize(uint64_t value);

/// Exact size of `payload` on the wire: the byte count `EncodePayload`
/// (src/net/codec.h) produces. Used by transports to account bytes moved.
/// Belief bundles keep a one-pass analytic model (cross-checked against
/// the encoder in debug builds); the model is
/// varint(epoch) + varint(ack) + varint(value_bits) + varint(#groups),
/// then per group a varint alias token (zigzag alias delta vs the
/// previous group, low bit = "full id present"), the optional 16-byte
/// fingerprint, varint(#entries), and per entry a zigzag position-delta
/// varint plus the value: two raw doubles under value_bits == 0, else
/// one quantum varint (`QuantWireToken`).
size_t ApproximateWireSize(const Payload& payload);

/// The factor-identity bytes inside `payload` under the same encoding: one
/// `FactorId` fingerprint per *unacknowledged* belief group (alias binding
/// declarations / loss refallback) and per piggybacked update, zero for
/// identity-free traffic. Transports account these separately so the scale
/// benchmarks can report how much of the wire is key overhead.
size_t FactorIdWireBytes(const Payload& payload);

/// The alias/header overhead inside `payload` under the same encoding:
/// epoch + ack + group count varints plus each group's alias token and
/// entry-count varints. This is the price of the session-alias scheme
/// (the bytes that replace the fingerprints `FactorIdWireBytes` counts);
/// the scale benchmarks report it as `alias_bytes_per_round`.
size_t AliasWireBytes(const Payload& payload);

/// All byte accounts of a payload in one traversal — what the
/// transports call per send, so the hot path walks a belief bundle once
/// instead of once per metric. `bytes` always equals
/// `ApproximateWireSize`, `key_bytes` `FactorIdWireBytes`, and
/// `alias_bytes` `AliasWireBytes`; `value_bytes` is the µ values
/// themselves (raw doubles or quantum varints, incl. query piggybacks),
/// so `bytes - value_bytes` is the header share the transports report as
/// `header_bytes_sent`.
struct WireBreakdown {
  size_t bytes = 0;
  size_t key_bytes = 0;
  size_t alias_bytes = 0;
  size_t value_bytes = 0;
};
WireBreakdown PayloadWireBreakdown(const Payload& payload);

/// A payload in flight.
struct Envelope {
  PeerId from = 0;
  PeerId to = 0;
  /// The mapping link it traveled through (edge id), when applicable.
  std::optional<EdgeId> via;
  uint64_t deliver_at = 0;  ///< network tick of delivery
  Payload payload;
};

}  // namespace pdms

#endif  // PDMS_NET_MESSAGE_H_
