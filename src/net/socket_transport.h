#ifndef PDMS_NET_SOCKET_TRANSPORT_H_
#define PDMS_NET_SOCKET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/codec.h"
#include "net/message.h"
#include "pdms/transport.h"
#include "util/status.h"

namespace pdms {

/// Configuration of one `SocketTransport` instance — one *shard* of the
/// peer network, exchanging real framed TCP traffic with the other shards.
struct SocketTransportOptions {
  /// Total peers across all shards (the engine's node count).
  size_t peer_count = 0;

  /// Which shard this instance hosts.
  uint32_t local_shard = 0;

  /// Listen address of every shard, "ip:port"; index == shard id. The
  /// local entry may use port 0 (ephemeral) — the bound address is
  /// reported by `local_address()` and remote entries can be filled in
  /// later via `SetShardAddress` (before traffic starts).
  std::vector<std::string> shard_addresses = {"127.0.0.1:0"};

  /// shard_of[p] = owning shard of peer p. Empty = every peer is local
  /// (single-shard loopback).
  std::vector<uint32_t> shard_of;

  /// Ticks between send and deliverability, mirroring
  /// `NetworkOptions::delay_ticks` (1 = deliverable next tick).
  uint64_t delay_ticks = 1;

  /// How long a dial may retry before the transport reports failure.
  int connect_timeout_ms = 15000;

  /// Upper bound on the `AdvanceTick` flush barrier (see below); a
  /// timeout logs a warning instead of deadlocking the driver.
  int barrier_timeout_ms = 120000;
};

/// Async socket-backed `Transport`: length-prefixed frames (src/net/codec.h)
/// over TCP, an epoll event loop on a dedicated thread, and per-shard
/// outgoing links. Single-shard "loopback" mode routes every envelope
/// through a real self-connection and is a drop-in replacement for
/// `SimTransport` in lossless configurations.
///
/// Determinism: the engine's posteriors must be bitwise-identical no matter
/// which transport carries the traffic. Two mechanisms provide that:
///  * every send is stamped with a per-sender sequence number, and
///  * `Drain` sorts deliverable envelopes by (deliver_at, from, seq).
/// Within one tick the engine issues sends in ascending-peer order, so this
/// sort key reproduces exactly the per-mailbox arrival order of the
/// lossless simulator (per-sender order is program order; cross-sender
/// order is ascending peer id) — see `tests/pdms_api_test.cc`'s
/// SocketMatchesSimPosteriorsBitwise.
///
/// Tick semantics: `AdvanceTick` is a *flush barrier* — it waits until the
/// event loop has written every staged byte to the kernel and every
/// self-addressed frame has come back through the loopback connection,
/// then advances the clock. Inter-shard arrival is synchronized one level
/// up by the node daemons' mark exchange (`MarkFrame`), not by the tick.
///
/// Thread-safety matches the `Transport` contract: `Send` from any thread,
/// `Drain` concurrently for distinct peers and with `Send`; `AdvanceTick`,
/// `stats()`, `ResetStats` are driver-side. The control-plane entry points
/// (`SendControl`, `SendOnConnection`) are safe from any thread; the
/// control handler runs on the event-loop thread and must not block.
class SocketTransport final : public Transport {
 public:
  static Result<std::unique_ptr<SocketTransport>> Create(
      SocketTransportOptions options);

  /// Single-shard loopback instance on an ephemeral port; nullptr when
  /// socket setup fails (no loopback interface).
  static std::unique_ptr<SocketTransport> CreateLoopback(size_t peer_count);

  ~SocketTransport() override;

  std::string_view name() const override { return "socket"; }
  size_t peer_count() const override { return options_.peer_count; }
  uint64_t now() const override { return now_.load(std::memory_order_acquire); }
  void AdvanceTick() override;
  void Send(PeerId from, PeerId to, std::optional<EdgeId> via,
            Payload payload) override;
  std::vector<Envelope> Drain(PeerId peer) override;
  bool HasPendingMessages() const override;
  const TransportStats& stats() const override;
  void ResetStats() override;

  // --- Shard topology ---------------------------------------------------------

  uint32_t local_shard() const { return options_.local_shard; }
  uint32_t shard_count() const {
    return static_cast<uint32_t>(options_.shard_addresses.size());
  }
  uint32_t shard_of(PeerId peer) const {
    return options_.shard_of.empty() ? options_.local_shard
                                     : options_.shard_of[peer];
  }
  bool IsLocalPeer(PeerId peer) const {
    return shard_of(peer) == options_.local_shard;
  }

  /// The bound listen address ("ip:port", port resolved when 0 was asked).
  const std::string& local_address() const { return local_address_; }

  /// Replaces a remote shard's address. Only valid before any traffic has
  /// been staged toward that shard.
  Status SetShardAddress(uint32_t shard, std::string address);

  /// Eagerly dials every shard (including self) and waits until all links
  /// are established or `connect_timeout_ms` passes.
  Status ConnectAll();

  /// First fatal event-loop error (dial timeout, listen failure), or OK.
  Status loop_error() const;

  // --- Control plane (node daemons) -------------------------------------------

  /// Handler for non-data frames (hello, marks, query RPCs), invoked on
  /// the event-loop thread with the originating connection's id. Set it
  /// before traffic starts; it must not block.
  using ControlHandler = std::function<void(Frame frame, uint64_t connection)>;
  void SetControlHandler(ControlHandler handler);

  /// Enqueues a control frame on the link to `shard` (ordered with data
  /// frames staged before it — the property the mark barrier relies on).
  Status SendControl(uint32_t shard, const Frame& frame);

  /// Enqueues a frame on an accepted connection (query responses).
  Status SendOnConnection(uint64_t connection, const Frame& frame);

  // --- Introspection ----------------------------------------------------------

  /// Total framed bytes staged for the wire (length prefixes and frame
  /// headers included) — the measured frame overhead vs payload-only
  /// accounting in `stats().bytes_sent`.
  uint64_t frame_bytes_sent() const {
    return frame_bytes_sent_.load(std::memory_order_relaxed);
  }
  /// Data frames sent since construction (control frames excluded); the
  /// node daemons difference this per step for the mark exchange.
  uint64_t data_frames_sent() const {
    return data_frames_sent_.load(std::memory_order_relaxed);
  }

 private:
  /// One received data frame, held until its tick comes up. `seq` is the
  /// per-sender stamp `Drain` sorts on.
  struct Received {
    uint64_t deliver_at = 0;
    PeerId from = 0;
    uint64_t seq = 0;
    Envelope envelope;
  };

  struct Inbox {
    std::mutex mutex;
    std::vector<Received> queue;
  };

  /// Outbound link to one shard. `pending` is the cross-thread staging
  /// buffer; everything else belongs to the event loop.
  struct Link {
    uint32_t shard = 0;  ///< destination shard of this link
    std::mutex mutex;
    std::vector<uint8_t> pending;
    std::atomic<bool> dial_requested{false};
    std::atomic<bool> connected{false};

    // Event-loop-owned state.
    int fd = -1;
    uint64_t conn_id = 0;
    bool connect_in_progress = false;
    std::vector<uint8_t> out;
    size_t out_offset = 0;
    FrameAssembler assembler;
    std::chrono::steady_clock::time_point next_attempt{};
    std::chrono::steady_clock::time_point dial_deadline{};
    bool dial_deadline_set = false;
  };

  /// Accepted inbound connection (a remote shard's link, or a client).
  struct Connection {
    int fd = -1;
    uint64_t conn_id = 0;
    FrameAssembler assembler;
    std::vector<uint8_t> out;
    size_t out_offset = 0;
    /// Shard announced by the hello frame; shard_count() = unknown
    /// (e.g. a query client).
    uint32_t remote_shard = 0;
    bool greeted = false;
  };

  explicit SocketTransport(SocketTransportOptions options);
  Status Initialize();

  void LoopMain();
  void WakeLoop();
  bool BarrierSatisfied() const;
  void NotifyBarrier();
  void FailLoop(Status status);

  // Event-loop internals (definitions in the .cc).
  void LoopStartDials();
  void LoopFlushLink(Link& link);
  void LoopHandleListen();
  void LoopHandleLinkEvent(Link& link, uint32_t events);
  void LoopHandleConnectionEvent(size_t index, uint32_t events);
  void LoopDrainControlOutbox();
  bool LoopDispatchFrames(FrameAssembler& assembler, uint64_t conn_id,
                          uint32_t* remote_shard);
  void LoopDispatchFrame(Frame frame, uint64_t conn_id,
                         uint32_t* remote_shard);
  void CloseLink(Link& link);

  void StageOnLink(uint32_t shard, const std::vector<uint8_t>& bytes);

  SocketTransportOptions options_;
  std::string local_address_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Connection>> connections_;  // loop-owned
  std::atomic<uint64_t> next_conn_id_{1};

  std::vector<Inbox> inboxes_;
  std::unique_ptr<std::atomic<uint64_t>[]> send_seq_;

  // Flush-barrier accounting. `enqueued`/`flushed` count staged vs
  // kernel-accepted bytes; the loopback pair counts self-addressed data
  // frames staged vs re-received through the self connection.
  std::atomic<uint64_t> bytes_enqueued_{0};
  std::atomic<uint64_t> bytes_flushed_{0};
  std::atomic<uint64_t> loopback_sent_{0};
  std::atomic<uint64_t> loopback_received_{0};
  std::atomic<uint64_t> inbox_count_{0};

  std::atomic<uint64_t> now_{0};
  std::atomic<uint64_t> frame_bytes_sent_{0};
  std::atomic<uint64_t> data_frames_sent_{0};

  AtomicTransportStats counters_;
  mutable TransportStats stats_snapshot_;

  mutable std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;

  mutable std::mutex error_mutex_;
  Status error_;
  std::atomic<bool> loop_failed_{false};

  std::mutex handler_mutex_;
  ControlHandler handler_;

  std::mutex control_outbox_mutex_;
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> control_outbox_;

  std::mutex address_mutex_;  // guards options_.shard_addresses updates

  std::atomic<bool> stop_{false};
  std::thread loop_;
};

}  // namespace pdms

#endif  // PDMS_NET_SOCKET_TRANSPORT_H_
