#ifndef PDMS_NET_SOCKET_TRANSPORT_H_
#define PDMS_NET_SOCKET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <utility>
#include <vector>

#include "net/codec.h"
#include "net/fault_injection.h"
#include "net/message.h"
#include "pdms/transport.h"
#include "util/status.h"

namespace pdms {

// --- Address helpers ------------------------------------------------------------

/// Parses "host:port" into a socket address. IPv4 hosts use dotted quads
/// ("127.0.0.1:9000"); IPv6 hosts must be bracketed ("[::1]:9000").
Status ParseSocketAddress(const std::string& address, sockaddr_storage* out,
                          socklen_t* out_len);

/// Renders a socket address back to the textual form `ParseSocketAddress`
/// accepts (IPv6 bracketed).
std::string RenderSocketAddress(const sockaddr_storage& addr);

/// The port of a parsed address, host byte order (0 for unset/unknown).
uint16_t SocketAddressPort(const sockaddr_storage& addr);

/// Configuration of one `SocketTransport` instance — one *shard* of the
/// peer network, exchanging real framed TCP traffic with the other shards.
struct SocketTransportOptions {
  /// Total peers across all shards (the engine's node count).
  size_t peer_count = 0;

  /// Which shard this instance hosts.
  uint32_t local_shard = 0;

  /// Listen address of every shard, "ip:port" or "[ipv6]:port"; index ==
  /// shard id. The local entry may use port 0 (ephemeral) — the bound
  /// address is reported by `local_address()` and remote entries can be
  /// filled in later via `SetShardAddress` (before traffic starts). An
  /// IPv6 listen address accepts IPv4 dialers too (dual-stack).
  std::vector<std::string> shard_addresses = {"127.0.0.1:0"};

  /// shard_of[p] = owning shard of peer p. Empty = every peer is local
  /// (single-shard loopback).
  std::vector<uint32_t> shard_of;

  /// Ticks between send and deliverability, mirroring
  /// `NetworkOptions::delay_ticks` (1 = deliverable next tick).
  uint64_t delay_ticks = 1;

  /// How long the *initial* dial of a shard may retry before the transport
  /// reports failure. Once a link has connected at least once, reconnects
  /// retry forever (with backoff) — a restarted peer resumes the stream.
  int connect_timeout_ms = 15000;

  /// Upper bound on the `AdvanceTick` loopback barrier; on timeout the
  /// tick still advances but `barrier_status()` turns non-OK and
  /// `AdvanceTickWithStatus` reports DeadlineExceeded to the caller.
  int barrier_timeout_ms = 120000;

  /// A link with unacked frames that sees no ack progress for this long is
  /// torn down and redialed (retransmitting from the last acked frame).
  int retransmit_timeout_ms = 250;

  /// Reconnect backoff window: the first retry waits the initial delay,
  /// doubling (plus deterministic jitter) up to the max.
  int reconnect_backoff_initial_ms = 20;
  int reconnect_backoff_max_ms = 1000;

  /// How long `Shutdown` (and the destructor) lingers for unacked frames
  /// to drain before giving up on them. Frames still unacked when the
  /// deadline expires are counted in
  /// `TransportStats::frames_dropped_at_shutdown`. 0 = no linger.
  int shutdown_drain_ms = 2000;

  /// Frame-level fault injection on outbound link traffic, applied *below*
  /// the retransmission layer: every injected drop/corruption/kill is
  /// repaired by recovery, so delivered traffic — and the engine's
  /// posteriors — are identical to a fault-free run. Session frames
  /// (hello/ack) are exempt; `delay_ticks_max` is ignored here.
  FaultPlan link_fault_plan;
};

/// Async socket-backed `Transport`: CRC-checked length-prefixed frames
/// (src/net/codec.h) over TCP, an epoll event loop on a dedicated thread,
/// and per-shard outgoing links. Single-shard "loopback" mode routes every
/// envelope through a real self-connection and is a drop-in replacement
/// for `SimTransport` in lossless configurations.
///
/// Reliability: each link carries monotone per-frame sequence numbers and
/// keeps every unacked frame in a retransmit ring. The receiver
/// acknowledges cumulatively (`LinkAckFrame`); duplicates are skipped by
/// sequence, gaps and corrupt frames tear the connection down, and the
/// dialer reconnects with capped exponential backoff, replaying the ring
/// from the last cumulative ack. The hello handshake carries a session id:
/// the acceptor keeps its receive cursor across reconnects of the same
/// session (exactly-once delivery) and resets it for a restarted peer.
///
/// Determinism: the engine's posteriors must be bitwise-identical no matter
/// which transport carries the traffic. Two mechanisms provide that:
///  * every send is stamped with a per-sender sequence number, and
///  * `Drain` sorts deliverable envelopes by (deliver_at, from, seq).
/// Within one tick the engine issues sends in ascending-peer order, so this
/// sort key reproduces exactly the per-mailbox arrival order of the
/// lossless simulator (per-sender order is program order; cross-sender
/// order is ascending peer id) — see `tests/pdms_api_test.cc`'s
/// SocketMatchesSimPosteriorsBitwise. The reliability layer preserves this
/// under faults: retransmission is invisible above the frame layer.
///
/// Tick semantics: `AdvanceTick` is a loopback barrier — it waits until
/// every self-addressed frame staged before the tick has come back through
/// the self connection, then advances the clock. Inter-shard arrival is
/// synchronized one level up by the node daemons' mark exchange
/// (`MarkFrame`) riding the same sequenced links, not by the tick.
///
/// Thread-safety matches the `Transport` contract: `Send` from any thread,
/// `Drain` concurrently for distinct peers and with `Send`; `AdvanceTick`,
/// `stats()`, `ResetStats` are driver-side. The control-plane entry points
/// (`SendControl`, `SendOnConnection`, `AbandonShard`) are safe from any
/// thread; the control handler runs on the event-loop thread and must not
/// block.
class SocketTransport final : public Transport {
 public:
  static Result<std::unique_ptr<SocketTransport>> Create(
      SocketTransportOptions options);

  /// Single-shard loopback instance on an ephemeral port; nullptr when
  /// socket setup fails (no loopback interface).
  static std::unique_ptr<SocketTransport> CreateLoopback(size_t peer_count);

  ~SocketTransport() override;

  std::string_view name() const override { return "socket"; }
  size_t peer_count() const override { return options_.peer_count; }
  uint64_t now() const override { return now_.load(std::memory_order_acquire); }
  void AdvanceTick() override;
  void Send(PeerId from, PeerId to, std::optional<EdgeId> via,
            Payload payload) override;
  std::vector<Envelope> Drain(PeerId peer) override;
  bool HasPendingMessages() const override;
  const TransportStats& stats() const override;
  void ResetStats() override;

  /// `AdvanceTick` with the barrier outcome surfaced: DeadlineExceeded when
  /// self-addressed frames were still undelivered after
  /// `barrier_timeout_ms` (the tick advances regardless, so a caller can
  /// choose between aborting and limping on).
  Status AdvanceTickWithStatus();

  /// First barrier timeout observed (sticky), or OK. Lets drivers using
  /// the plain `Transport` interface detect a degraded clock after the
  /// fact.
  Status barrier_status() const;

  // --- Shard topology ---------------------------------------------------------

  uint32_t local_shard() const { return options_.local_shard; }
  uint32_t shard_count() const {
    return static_cast<uint32_t>(options_.shard_addresses.size());
  }
  uint32_t shard_of(PeerId peer) const {
    return options_.shard_of.empty() ? options_.local_shard
                                     : options_.shard_of[peer];
  }
  bool IsLocalPeer(PeerId peer) const {
    return shard_of(peer) == options_.local_shard;
  }

  /// The bound listen address ("ip:port", port resolved when 0 was asked).
  const std::string& local_address() const { return local_address_; }

  /// Replaces a remote shard's address. Only valid before any traffic has
  /// been staged toward that shard.
  Status SetShardAddress(uint32_t shard, std::string address);

  /// Eagerly dials every shard (including self) and waits until all links
  /// are established or `connect_timeout_ms` passes. Abandoned shards
  /// count as satisfied.
  Status ConnectAll();

  /// First fatal event-loop error (initial dial timeout, listen failure),
  /// or OK. Post-handshake link failures are never fatal — they feed the
  /// reconnect path instead.
  Status loop_error() const;

  /// Quarantines a remote shard: closes its link, discards every staged
  /// and unacked frame toward it, stops redialing it, silently drops any
  /// frame staged for it afterwards, and ignores (while still acking) data
  /// frames arriving from it — except `RejoinFrame`s, which still reach
  /// the control handler so a restarted shard can ask back in. Used by
  /// the node layer when a shard misses its failure-detection deadline;
  /// reversed by `ReadmitShard`. The local shard cannot be abandoned.
  Status AbandonShard(uint32_t shard);

  /// True when `AbandonShard(shard)` was called (and no `ReadmitShard`
  /// has lifted it yet).
  bool IsAbandoned(uint32_t shard) const;

  /// Lifts a quarantine: adopts `address` as the shard's new listen
  /// endpoint (a restarted process binds a fresh ephemeral port), clears
  /// the abandoned flag and redials. The restarted peer presents a new
  /// session id, so both delivery cursors resynchronize through the
  /// ordinary hello handshake — no sequence surgery. Frames staged for
  /// the shard after this call flow normally.
  Status ReadmitShard(uint32_t shard, std::string address);

  // --- Snapshot support (node layer) -------------------------------------------

  /// Copies every undrained inbox entry — the in-flight half of a
  /// consistent cut. Driver-side: call only at a quiesced barrier (no
  /// concurrent `Send`/`Drain`; the event loop may run, its deliveries
  /// land before or after the whole capture, never mid-entry).
  std::vector<CapturedFrame> CaptureInboxes();

  /// Replaces all inbox contents with `frames` (routing each by
  /// `envelope.to`), adjusting the pending-message accounting. Driver-side
  /// at a quiesced barrier, same as `CaptureInboxes`; restoring a capture
  /// taken at the same cut reproduces the exact drain schedule.
  Status RestoreInboxes(std::vector<CapturedFrame> frames);

  /// Forces the transport clock — a snapshot restore must resume at the
  /// captured tick or restored `deliver_at` stamps would sit in the
  /// future forever. Driver-side, before traffic resumes.
  void SetNow(uint64_t tick);

  /// Drains unacked frames (bounded by `shutdown_drain_ms`), then stops
  /// and joins the event loop. Idempotent; the destructor calls it.
  /// Frames still unacked at the deadline are counted in
  /// `stats().frames_dropped_at_shutdown`.
  void Shutdown();

  // --- Control plane (node daemons) -------------------------------------------

  /// Handler for non-data frames (marks, query RPCs), invoked on the
  /// event-loop thread with the originating connection's id and the shard
  /// that connection authenticated as via its hello (`shard_count()` =
  /// ungreeted, e.g. a query client). Set it before traffic starts; it
  /// must not block.
  using ControlHandler =
      std::function<void(Frame frame, uint64_t connection,
                         uint32_t remote_shard)>;
  void SetControlHandler(ControlHandler handler);

  /// Enqueues a control frame on the link to `shard` (sequenced with data
  /// frames staged before it — the property the mark barrier relies on).
  /// Frames to an abandoned shard are dropped without error.
  Status SendControl(uint32_t shard, const Frame& frame);

  /// Enqueues a frame on an accepted connection (query responses). These
  /// ride outside the sequenced stream (best-effort, like the request).
  Status SendOnConnection(uint64_t connection, const Frame& frame);

  // --- Introspection ----------------------------------------------------------

  /// Total framed bytes staged for the wire (length prefixes and frame
  /// headers included, retransmissions excluded) — the measured frame
  /// overhead vs payload-only accounting in `stats().bytes_sent`.
  uint64_t frame_bytes_sent() const {
    return frame_bytes_sent_.load(std::memory_order_relaxed);
  }
  /// Data frames sent since construction (control frames excluded); the
  /// node daemons difference this per step for the mark exchange. Counts
  /// staged frames once — faults and retransmissions don't move it, which
  /// is what keeps mark contents identical under fire.
  uint64_t data_frames_sent() const {
    return data_frames_sent_.load(std::memory_order_relaxed);
  }
  /// Times a link was torn down and redialed after having connected.
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  /// Frames rewritten to the wire after a reconnect rewound the cursor.
  uint64_t frames_retransmitted() const {
    return frames_retransmitted_.load(std::memory_order_relaxed);
  }
  /// Inbound frames skipped as already-delivered duplicates.
  uint64_t duplicate_frames_skipped() const {
    return duplicate_frames_skipped_.load(std::memory_order_relaxed);
  }
  /// Ledger of faults injected by `link_fault_plan` (all zeros when the
  /// plan is disabled).
  FaultStats link_fault_stats() const;

  /// This instance's session id (new per construction; lets tests assert
  /// the restart-detection path).
  uint64_t session_id() const { return session_id_; }

 private:
  /// One received data frame, held until its tick comes up. `seq` is the
  /// per-sender stamp `Drain` sorts on.
  struct Received {
    uint64_t deliver_at = 0;
    PeerId from = 0;
    uint64_t seq = 0;
    Envelope envelope;
  };

  struct Inbox {
    std::mutex mutex;
    std::vector<Received> queue;
  };

  /// One staged frame: pristine wire bytes plus its link sequence number.
  /// Lives in `pending` until the event loop adopts it into the ring, and
  /// in the ring until the peer's cumulative ack passes it.
  struct TxEntry {
    uint64_t seq = 0;
    uint32_t tries = 0;  ///< transmissions attempted (fault-draw salt)
    bool is_data = false;
    std::vector<uint8_t> bytes;
  };

  /// Outbound link to one shard. `pending`/`tx_next_seq` are the
  /// cross-thread staging state (guarded by `mutex`); everything else
  /// belongs to the event loop.
  struct Link {
    uint32_t shard = 0;  ///< destination shard of this link
    std::mutex mutex;
    std::vector<TxEntry> pending;
    uint64_t tx_next_seq = 1;  ///< next link sequence number to assign
    std::atomic<bool> dial_requested{false};
    std::atomic<bool> connected{false};  ///< handshake complete
    std::atomic<bool> abandoned{false};
    /// Set by `ReadmitShard`; the event loop clears `abandoned`, resets
    /// the backoff state and redials at the (updated) address.
    std::atomic<bool> readmit_requested{false};

    // Event-loop-owned state.
    int fd = -1;
    uint64_t conn_id = 0;
    bool connect_in_progress = false;
    bool awaiting_ack = false;  ///< hello sent, handshake ack outstanding
    bool ever_connected = false;
    bool kill_after_flush = false;  ///< injected link kill pending
    std::deque<TxEntry> ring;       ///< unacked frames, ascending seq
    uint64_t cursor_seq = 1;        ///< next seq to put on the wire
    std::vector<uint8_t> out;
    size_t out_offset = 0;
    FrameAssembler assembler;
    int backoff_ms = 0;
    uint64_t redials = 0;  ///< jitter salt
    std::chrono::steady_clock::time_point next_attempt{};
    std::chrono::steady_clock::time_point dial_deadline{};
    std::chrono::steady_clock::time_point progress_deadline{};
    bool dial_deadline_set = false;
  };

  /// Accepted inbound connection (a remote shard's link, or a client).
  struct Connection {
    int fd = -1;
    uint64_t conn_id = 0;
    FrameAssembler assembler;
    std::vector<uint8_t> out;
    size_t out_offset = 0;
    /// Shard announced by the hello frame; shard_count() = unknown
    /// (e.g. a query client).
    uint32_t remote_shard = 0;
    bool greeted = false;
  };

  explicit SocketTransport(SocketTransportOptions options);
  Status Initialize();

  void LoopMain();
  void WakeLoop();
  bool BarrierSatisfied() const;
  void NotifyBarrier();
  void FailLoop(Status status);

  // Event-loop internals (definitions in the .cc).
  void LoopStartDials();
  void LoopCheckRetransmitTimers();
  void LoopPurgeAbandoned(Link& link);
  void LoopScheduleReconnect(Link& link, const char* reason);
  void LoopFlushLink(Link& link);
  void LoopPullRingIntoOut(Link& link);
  void LoopHandleListen();
  void LoopHandleLinkEvent(Link& link, uint32_t events);
  void LoopHandleAck(Link& link, const LinkAckFrame& ack);
  void LoopHandleConnectionEvent(size_t index, uint32_t events);
  void LoopHandleHello(Connection& connection, const HelloFrame& hello);
  /// Sequenced dispatch for greeted connections; false = protocol
  /// violation (gap), close the connection and let the peer retransmit.
  bool LoopDispatchSequenced(Connection& connection, Frame frame,
                             uint64_t seq);
  void LoopDeliverData(DataFrame data, uint32_t remote_shard);
  void LoopStageAck(Connection& connection);
  void LoopFlushConnection(Connection& connection, bool* close_connection);
  void LoopDrainControlOutbox();

  void StageFrameOnLink(uint32_t shard, const Frame& frame, bool is_data);

  SocketTransportOptions options_;
  std::string local_address_;
  uint64_t session_id_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Connection>> connections_;  // loop-owned
  std::atomic<uint64_t> next_conn_id_{1};

  // Receive-side link state per remote shard (loop-owned): the session the
  // cursor belongs to, the next expected sequence, and the last value we
  // acked (to elide no-op acks).
  std::vector<uint64_t> rx_session_;
  std::vector<uint64_t> rx_next_expected_;
  std::vector<uint64_t> rx_acked_;

  std::vector<Inbox> inboxes_;
  std::unique_ptr<std::atomic<uint64_t>[]> send_seq_;

  // Barrier accounting: self-addressed data frames staged vs re-received
  // through the self connection, plus undrained inbox entries. Unacked
  // outbound data frames additionally hold `HasPendingMessages` true.
  std::atomic<uint64_t> loopback_sent_{0};
  std::atomic<uint64_t> loopback_received_{0};
  std::atomic<uint64_t> inbox_count_{0};
  std::atomic<uint64_t> outstanding_data_{0};
  /// Every staged-and-unacked frame on a live link (control included, self
  /// link included). The destructor lingers until this drains so frames
  /// staged right before shutdown survive an in-flight retransmit cycle.
  std::atomic<uint64_t> unacked_frames_{0};

  std::atomic<uint64_t> now_{0};
  std::atomic<uint64_t> frame_bytes_sent_{0};
  std::atomic<uint64_t> data_frames_sent_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> frames_retransmitted_{0};
  std::atomic<uint64_t> duplicate_frames_skipped_{0};

  // Loop-owned fault ledger, snapshotted under `fault_mutex_`.
  mutable std::mutex fault_mutex_;
  FaultStats link_fault_stats_;

  AtomicTransportStats counters_;
  mutable TransportStats stats_snapshot_;

  mutable std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;

  mutable std::mutex error_mutex_;
  Status error_;
  Status barrier_status_;
  std::atomic<bool> loop_failed_{false};

  std::mutex handler_mutex_;
  ControlHandler handler_;

  std::mutex control_outbox_mutex_;
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> control_outbox_;

  std::mutex address_mutex_;  // guards options_.shard_addresses updates

  std::atomic<bool> stop_{false};
  std::atomic<bool> shutdown_started_{false};
  std::thread loop_;
};

}  // namespace pdms

#endif  // PDMS_NET_SOCKET_TRANSPORT_H_
