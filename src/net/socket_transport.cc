#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace pdms {
namespace {

/// epoll user-data sentinels for the two non-connection descriptors.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = ~0ull;

/// Cap on bytes staged into a link's write buffer per flush pass, so a
/// large retransmit ring never balloons the buffer.
constexpr size_t kMaxStagedOutBytes = 1 << 20;

void SetNoDelay(int fd) {
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status ParsePort(const std::string& address, const std::string& port,
                 uint16_t* out) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(port.c_str(), &end, 10);
  if (port.empty() || end == port.c_str() || *end != '\0' || value > 65535) {
    return Status::InvalidArgument(
        StrFormat("address '%s' has no valid port", address.c_str()));
  }
  *out = static_cast<uint16_t>(value);
  return Status::Ok();
}

}  // namespace

// --- Address helpers ------------------------------------------------------------

Status ParseSocketAddress(const std::string& address, sockaddr_storage* out,
                          socklen_t* out_len) {
  std::memset(out, 0, sizeof(*out));
  if (!address.empty() && address.front() == '[') {
    const size_t close = address.find("]:");
    if (close == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("address '%s' is not [ipv6]:port", address.c_str()));
    }
    const std::string host = address.substr(1, close - 1);
    uint16_t port = 0;
    PDMS_RETURN_IF_ERROR(ParsePort(address, address.substr(close + 2), &port));
    auto* v6 = reinterpret_cast<sockaddr_in6*>(out);
    v6->sin6_family = AF_INET6;
    if (inet_pton(AF_INET6, host.c_str(), &v6->sin6_addr) != 1) {
      return Status::InvalidArgument(
          StrFormat("address '%s' has no valid IPv6 host", address.c_str()));
    }
    v6->sin6_port = htons(port);
    *out_len = sizeof(sockaddr_in6);
    return Status::Ok();
  }
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        StrFormat("address '%s' is not ip:port", address.c_str()));
  }
  const std::string host = address.substr(0, colon);
  if (host.find(':') != std::string::npos) {
    return Status::InvalidArgument(StrFormat(
        "address '%s': IPv6 hosts must be bracketed, [host]:port",
        address.c_str()));
  }
  uint16_t port = 0;
  PDMS_RETURN_IF_ERROR(ParsePort(address, address.substr(colon + 1), &port));
  auto* v4 = reinterpret_cast<sockaddr_in*>(out);
  v4->sin_family = AF_INET;
  if (inet_pton(AF_INET, host.c_str(), &v4->sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("address '%s' has no valid IPv4 host", address.c_str()));
  }
  v4->sin_port = htons(port);
  *out_len = sizeof(sockaddr_in);
  return Status::Ok();
}

std::string RenderSocketAddress(const sockaddr_storage& addr) {
  if (addr.ss_family == AF_INET6) {
    const auto* v6 = reinterpret_cast<const sockaddr_in6*>(&addr);
    char host[INET6_ADDRSTRLEN] = {};
    inet_ntop(AF_INET6, &v6->sin6_addr, host, sizeof(host));
    return StrFormat("[%s]:%u", host,
                     static_cast<unsigned>(ntohs(v6->sin6_port)));
  }
  const auto* v4 = reinterpret_cast<const sockaddr_in*>(&addr);
  char host[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &v4->sin_addr, host, sizeof(host));
  return StrFormat("%s:%u", host, static_cast<unsigned>(ntohs(v4->sin_port)));
}

uint16_t SocketAddressPort(const sockaddr_storage& addr) {
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  }
  return 0;
}

// --- Construction --------------------------------------------------------------

SocketTransport::SocketTransport(SocketTransportOptions options)
    : options_(std::move(options)),
      rx_session_(options_.shard_addresses.size(), 0),
      rx_next_expected_(options_.shard_addresses.size(), 1),
      rx_acked_(options_.shard_addresses.size(), 0),
      inboxes_(options_.peer_count),
      send_seq_(new std::atomic<uint64_t>[options_.peer_count]) {
  for (size_t i = 0; i < options_.peer_count; ++i) {
    send_seq_[i].store(0, std::memory_order_relaxed);
  }
  links_.reserve(options_.shard_addresses.size());
  for (size_t i = 0; i < options_.shard_addresses.size(); ++i) {
    links_.push_back(std::make_unique<Link>());
    links_.back()->shard = static_cast<uint32_t>(i);
    links_.back()->conn_id = next_conn_id_.fetch_add(1);
  }
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::Create(
    SocketTransportOptions options) {
  if (options.peer_count == 0) {
    return Status::InvalidArgument("socket transport needs at least one peer");
  }
  if (options.shard_addresses.empty()) {
    return Status::InvalidArgument("socket transport needs shard addresses");
  }
  if (options.local_shard >= options.shard_addresses.size()) {
    return Status::OutOfRange(
        StrFormat("local shard %u beyond the %zu configured shards",
                  options.local_shard, options.shard_addresses.size()));
  }
  if (!options.shard_of.empty()) {
    if (options.shard_of.size() != options.peer_count) {
      return Status::InvalidArgument(
          "shard_of must assign every peer (or be empty)");
    }
    for (uint32_t shard : options.shard_of) {
      if (shard >= options.shard_addresses.size()) {
        return Status::OutOfRange(
            StrFormat("peer assigned to unknown shard %u", shard));
      }
    }
  }
  if (options.delay_ticks == 0) {
    return Status::InvalidArgument(
        "socket transport needs delay_ticks >= 1 (same-tick delivery "
        "cannot be flushed through a real wire)");
  }
  if (options.retransmit_timeout_ms <= 0 ||
      options.reconnect_backoff_initial_ms <= 0 ||
      options.reconnect_backoff_max_ms <
          options.reconnect_backoff_initial_ms) {
    return Status::InvalidArgument(
        "retransmit/backoff windows must be positive and ordered");
  }
  if (options.shutdown_drain_ms < 0) {
    return Status::InvalidArgument("shutdown_drain_ms must be >= 0");
  }
  std::unique_ptr<SocketTransport> transport(
      new SocketTransport(std::move(options)));
  PDMS_RETURN_IF_ERROR(transport->Initialize());
  return transport;
}

std::unique_ptr<SocketTransport> SocketTransport::CreateLoopback(
    size_t peer_count) {
  SocketTransportOptions options;
  options.peer_count = peer_count;
  options.shard_addresses = {"127.0.0.1:0"};
  auto created = Create(std::move(options));
  if (!created.ok()) {
    PDMS_LOG_ERROR << "loopback socket transport failed: "
                   << created.status().ToString();
    return nullptr;
  }
  return std::move(created).value();
}

Status SocketTransport::Initialize() {
  sockaddr_storage bind_addr{};
  socklen_t bind_len = 0;
  PDMS_RETURN_IF_ERROR(ParseSocketAddress(
      options_.shard_addresses[options_.local_shard], &bind_addr, &bind_len));

  listen_fd_ = socket(bind_addr.ss_family, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind_addr.ss_family == AF_INET6) {
    // Dual-stack: an IPv6 listener also accepts IPv4 dialers (as
    // v4-mapped addresses).
    const int off = 0;
    setsockopt(listen_fd_, IPPROTO_IPV6, IPV6_V6ONLY, &off, sizeof(off));
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&bind_addr), bind_len) <
      0) {
    return Status::Unavailable(
        StrFormat("bind(%s): %s",
                  options_.shard_addresses[options_.local_shard].c_str(),
                  std::strerror(errno)));
  }
  if (listen(listen_fd_, 64) < 0) {
    return Status::Internal(StrFormat("listen: %s", std::strerror(errno)));
  }
  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  local_address_ = RenderSocketAddress(bound);
  options_.shard_addresses[options_.local_shard] = local_address_;

  // A fresh session id per transport incarnation: the handshake uses it to
  // distinguish "same peer reconnecting" (keep the receive cursor) from
  // "peer restarted" (adopt its announced cursor).
  static std::atomic<uint64_t> incarnation{0};
  const uint64_t entropy =
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) ^
      ((incarnation.fetch_add(1) + 1) * 0x9e3779b97f4a7c15ull) ^
      reinterpret_cast<uintptr_t>(this);
  session_id_ = SplitMix64(entropy).Next();
  if (session_id_ == 0) session_id_ = 1;

  epoll_fd_ = epoll_create1(0);
  wake_fd_ = eventfd(0, EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Status::Internal(
        StrFormat("epoll/eventfd: %s", std::strerror(errno)));
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = kListenTag;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event);
  event.data.u64 = kWakeTag;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event);

  loop_ = std::thread([this] { LoopMain(); });
  return Status::Ok();
}

void SocketTransport::Shutdown() {
  bool expected = false;
  if (!shutdown_started_.compare_exchange_strong(expected, true)) return;
  // Linger briefly so frames staged just before shutdown — a node's final
  // round mark, say — survive an in-flight retransmit cycle. Without this a
  // faulted final frame dies with the process and the peer waits out its
  // full mark timeout instead of finishing. The loop thread keeps
  // retransmitting while we wait; peers ack at the transport layer, so the
  // drain does not depend on anyone consuming the frames upstream.
  if (!loop_failed_.load(std::memory_order_acquire)) {
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    barrier_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.shutdown_drain_ms), [this] {
          return loop_failed_.load(std::memory_order_acquire) ||
                 unacked_frames_.load(std::memory_order_acquire) == 0;
        });
  }
  const uint64_t undrained = unacked_frames_.load(std::memory_order_acquire);
  if (undrained > 0) {
    counters_.frames_dropped_at_shutdown.fetch_add(undrained,
                                                   std::memory_order_relaxed);
    PDMS_LOG_WARNING << "shutdown drain deadline ("
                     << options_.shutdown_drain_ms << "ms) expired with "
                     << undrained << " frames unacked";
  }
  stop_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_.joinable()) loop_.join();
}

SocketTransport::~SocketTransport() {
  Shutdown();
  for (const auto& link : links_) {
    if (link->fd >= 0) close(link->fd);
  }
  for (const auto& connection : connections_) {
    if (connection->fd >= 0) close(connection->fd);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

// --- Driver-side API -----------------------------------------------------------

void SocketTransport::Send(PeerId from, PeerId to, std::optional<EdgeId> via,
                           Payload payload) {
  const MessageKind kind = KindOf(payload);
  const WireBreakdown breakdown = PayloadWireBreakdown(payload);
  counters_.CountSent(kind, breakdown);

  DataFrame frame;
  frame.from = from;
  frame.to = to;
  frame.via = via;
  frame.deliver_at = now() + options_.delay_ticks;
  frame.seq = send_seq_[from].fetch_add(1, std::memory_order_relaxed);
  frame.payload = std::move(payload);

  const uint32_t shard = shard_of(to);
  if (shard == options_.local_shard) {
    loopback_sent_.fetch_add(1, std::memory_order_release);
  }
  data_frames_sent_.fetch_add(1, std::memory_order_relaxed);
  StageFrameOnLink(shard, Frame{std::move(frame)}, /*is_data=*/true);
  WakeLoop();
}

std::vector<Envelope> SocketTransport::Drain(PeerId peer) {
  if (peer >= inboxes_.size()) return {};
  const uint64_t current = now();
  std::vector<Received> due;
  {
    Inbox& inbox = inboxes_[peer];
    std::lock_guard<std::mutex> lock(inbox.mutex);
    auto& queue = inbox.queue;
    size_t kept = 0;
    for (size_t i = 0; i < queue.size(); ++i) {
      if (queue[i].deliver_at <= current) {
        due.push_back(std::move(queue[i]));
      } else {
        if (kept != i) queue[kept] = std::move(queue[i]);
        ++kept;
      }
    }
    queue.resize(kept);
  }
  if (due.empty()) return {};
  inbox_count_.fetch_sub(due.size(), std::memory_order_release);
  // The deterministic delivery order: ticks, then sender, then the
  // sender's own sequence. Within one engine tick this reproduces the
  // lossless simulator's mailbox order exactly (see class comment).
  std::sort(due.begin(), due.end(), [](const Received& a, const Received& b) {
    if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
    if (a.from != b.from) return a.from < b.from;
    return a.seq < b.seq;
  });
  std::vector<Envelope> envelopes;
  envelopes.reserve(due.size());
  for (Received& received : due) {
    counters_.CountDelivered(KindOf(received.envelope.payload));
    envelopes.push_back(std::move(received.envelope));
  }
  return envelopes;
}

bool SocketTransport::BarrierSatisfied() const {
  return loopback_sent_.load(std::memory_order_acquire) ==
         loopback_received_.load(std::memory_order_acquire);
}

Status SocketTransport::AdvanceTickWithStatus() {
  Status result;
  {
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    const bool quiesced = barrier_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.barrier_timeout_ms), [this] {
          return loop_failed_.load(std::memory_order_acquire) ||
                 BarrierSatisfied();
        });
    if (loop_failed_.load(std::memory_order_acquire)) {
      result = loop_error();
    } else if (!quiesced) {
      result = Status::DeadlineExceeded(StrFormat(
          "tick barrier: %llu self-addressed frames undelivered after %dms",
          static_cast<unsigned long long>(
              loopback_sent_.load(std::memory_order_acquire) -
              loopback_received_.load(std::memory_order_acquire)),
          options_.barrier_timeout_ms));
    }
  }
  if (!result.ok()) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (barrier_status_.ok()) barrier_status_ = result;
  }
  // The clock advances regardless: a degraded caller may prefer limping on
  // over deadlock, and the sticky status records what happened.
  now_.fetch_add(1, std::memory_order_release);
  return result;
}

void SocketTransport::AdvanceTick() {
  const Status status = AdvanceTickWithStatus();
  if (!status.ok()) {
    PDMS_LOG_WARNING << "socket transport tick: " << status.ToString();
  }
}

Status SocketTransport::barrier_status() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  return barrier_status_;
}

bool SocketTransport::HasPendingMessages() const {
  return inbox_count_.load(std::memory_order_acquire) > 0 ||
         outstanding_data_.load(std::memory_order_acquire) > 0 ||
         !BarrierSatisfied();
}

const TransportStats& SocketTransport::stats() const {
  counters_.SnapshotTo(&stats_snapshot_);
  return stats_snapshot_;
}

void SocketTransport::ResetStats() { counters_.Reset(); }

Status SocketTransport::SetShardAddress(uint32_t shard, std::string address) {
  if (shard >= links_.size()) {
    return Status::OutOfRange(StrFormat("unknown shard %u", shard));
  }
  Link& link = *links_[shard];
  if (link.connected.load(std::memory_order_acquire) ||
      link.dial_requested.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        StrFormat("shard %u link already dialing", shard));
  }
  sockaddr_storage parsed{};
  socklen_t parsed_len = 0;
  PDMS_RETURN_IF_ERROR(ParseSocketAddress(address, &parsed, &parsed_len));
  std::lock_guard<std::mutex> lock(address_mutex_);
  options_.shard_addresses[shard] = std::move(address);
  return Status::Ok();
}

Status SocketTransport::ConnectAll() {
  for (const auto& link : links_) {
    link->dial_requested.store(true, std::memory_order_release);
  }
  WakeLoop();
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const bool connected = barrier_cv_.wait_for(
      lock, std::chrono::milliseconds(options_.connect_timeout_ms), [this] {
        if (loop_failed_.load(std::memory_order_acquire)) return true;
        for (const auto& link : links_) {
          if (!link->connected.load(std::memory_order_acquire) &&
              !link->abandoned.load(std::memory_order_acquire)) {
            return false;
          }
        }
        return true;
      });
  if (loop_failed_.load(std::memory_order_acquire)) return loop_error();
  if (!connected) {
    return Status::Unavailable(
        StrFormat("not all shards reachable within %dms",
                  options_.connect_timeout_ms));
  }
  return Status::Ok();
}

Status SocketTransport::loop_error() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  return error_;
}

Status SocketTransport::AbandonShard(uint32_t shard) {
  if (shard >= links_.size()) {
    return Status::OutOfRange(StrFormat("unknown shard %u", shard));
  }
  if (shard == options_.local_shard) {
    return Status::InvalidArgument("cannot abandon the local shard");
  }
  links_[shard]->abandoned.store(true, std::memory_order_release);
  WakeLoop();
  return Status::Ok();
}

bool SocketTransport::IsAbandoned(uint32_t shard) const {
  return shard < links_.size() &&
         links_[shard]->abandoned.load(std::memory_order_acquire);
}

Status SocketTransport::ReadmitShard(uint32_t shard, std::string address) {
  if (shard >= links_.size()) {
    return Status::OutOfRange(StrFormat("unknown shard %u", shard));
  }
  if (shard == options_.local_shard) {
    return Status::InvalidArgument("cannot readmit the local shard");
  }
  Link& link = *links_[shard];
  if (!link.abandoned.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        StrFormat("shard %u is not quarantined", shard));
  }
  sockaddr_storage parsed{};
  socklen_t parsed_len = 0;
  PDMS_RETURN_IF_ERROR(ParseSocketAddress(address, &parsed, &parsed_len));
  {
    std::lock_guard<std::mutex> lock(address_mutex_);
    options_.shard_addresses[shard] = std::move(address);
  }
  link.readmit_requested.store(true, std::memory_order_release);
  WakeLoop();
  // Block until the loop lifts the quarantine: frames staged to a shard
  // whose `abandoned` flag is still set are silently dropped, and callers
  // stage the re-admission handshake right after this returns.
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const bool cleared = barrier_cv_.wait_for(
      lock, std::chrono::milliseconds(5000), [this, &link] {
        return loop_failed_.load(std::memory_order_acquire) ||
               !link.abandoned.load(std::memory_order_acquire);
      });
  if (loop_failed_.load(std::memory_order_acquire)) {
    return loop_error();
  }
  if (!cleared) {
    return Status::DeadlineExceeded(
        StrFormat("event loop did not readmit shard %u in time", shard));
  }
  return Status::Ok();
}

std::vector<CapturedFrame> SocketTransport::CaptureInboxes() {
  std::vector<CapturedFrame> frames;
  for (Inbox& inbox : inboxes_) {
    std::lock_guard<std::mutex> lock(inbox.mutex);
    for (const Received& received : inbox.queue) {
      CapturedFrame frame;
      frame.seq = received.seq;
      frame.envelope = received.envelope;
      frames.push_back(std::move(frame));
    }
  }
  return frames;
}

Status SocketTransport::RestoreInboxes(std::vector<CapturedFrame> frames) {
  for (const CapturedFrame& frame : frames) {
    if (frame.envelope.to >= inboxes_.size()) {
      return Status::OutOfRange(
          StrFormat("captured frame addressed to unknown peer %u",
                    frame.envelope.to));
    }
  }
  uint64_t discarded = 0;
  for (Inbox& inbox : inboxes_) {
    std::lock_guard<std::mutex> lock(inbox.mutex);
    discarded += inbox.queue.size();
    inbox.queue.clear();
  }
  const uint64_t restored = frames.size();
  for (CapturedFrame& frame : frames) {
    Received received;
    received.deliver_at = frame.envelope.deliver_at;
    received.from = frame.envelope.from;
    received.seq = frame.seq;
    const PeerId to = frame.envelope.to;
    received.envelope = std::move(frame.envelope);
    Inbox& inbox = inboxes_[to];
    std::lock_guard<std::mutex> lock(inbox.mutex);
    inbox.queue.push_back(std::move(received));
  }
  if (restored >= discarded) {
    inbox_count_.fetch_add(restored - discarded, std::memory_order_release);
  } else {
    inbox_count_.fetch_sub(discarded - restored, std::memory_order_release);
  }
  NotifyBarrier();
  return Status::Ok();
}

void SocketTransport::SetNow(uint64_t tick) {
  now_.store(tick, std::memory_order_release);
}

void SocketTransport::SetControlHandler(ControlHandler handler) {
  std::lock_guard<std::mutex> lock(handler_mutex_);
  handler_ = std::move(handler);
}

Status SocketTransport::SendControl(uint32_t shard, const Frame& frame) {
  if (shard >= links_.size()) {
    return Status::OutOfRange(StrFormat("unknown shard %u", shard));
  }
  StageFrameOnLink(shard, frame, /*is_data=*/false);
  WakeLoop();
  return Status::Ok();
}

Status SocketTransport::SendOnConnection(uint64_t connection,
                                         const Frame& frame) {
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  frame_bytes_sent_.fetch_add(bytes.size(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(control_outbox_mutex_);
    control_outbox_.emplace_back(connection, std::move(bytes));
  }
  WakeLoop();
  return Status::Ok();
}

FaultStats SocketTransport::link_fault_stats() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return link_fault_stats_;
}

void SocketTransport::StageFrameOnLink(uint32_t shard, const Frame& frame,
                                       bool is_data) {
  Link& link = *links_[shard];
  if (link.abandoned.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(link.mutex);
  TxEntry entry;
  entry.is_data = is_data;
  // Sequence assignment and staging share the lock so ring order is
  // ascending-seq by construction.
  entry.seq = link.tx_next_seq++;
  EncodeFrame(frame, entry.seq, &entry.bytes);
  frame_bytes_sent_.fetch_add(entry.bytes.size(), std::memory_order_relaxed);
  // Self-link data is excluded: loopback delivery is tracked exactly by the
  // loopback_sent_/received_ barrier, and waiting for our own acks would
  // keep HasPendingMessages true after every message was already drained.
  if (is_data && shard != options_.local_shard) {
    outstanding_data_.fetch_add(1, std::memory_order_release);
  }
  unacked_frames_.fetch_add(1, std::memory_order_release);
  link.pending.push_back(std::move(entry));
}

void SocketTransport::WakeLoop() {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void SocketTransport::NotifyBarrier() {
  // Lock/unlock pairs the notification with any waiter's predicate check,
  // so a wakeup between check and wait cannot be lost.
  { std::lock_guard<std::mutex> lock(barrier_mutex_); }
  barrier_cv_.notify_all();
}

void SocketTransport::FailLoop(Status status) {
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (error_.ok()) error_ = status;
  }
  loop_failed_.store(true, std::memory_order_release);
  PDMS_LOG_ERROR << "socket transport event loop: " << status.ToString();
  NotifyBarrier();
}

// --- Event loop ----------------------------------------------------------------

void SocketTransport::LoopMain() {
  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    LoopStartDials();
    LoopDrainControlOutbox();
    for (const auto& link : links_) {
      if (link->fd >= 0 && !link->connect_in_progress) LoopFlushLink(*link);
    }
    LoopCheckRetransmitTimers();
    const int count = epoll_wait(epoll_fd_, events, 64, 10);
    for (int i = 0; i < count; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        uint64_t drained = 0;
        [[maybe_unused]] const ssize_t n =
            read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      if (tag == kListenTag) {
        LoopHandleListen();
        continue;
      }
      bool handled = false;
      for (const auto& link : links_) {
        if (link->conn_id == tag && link->fd >= 0) {
          LoopHandleLinkEvent(*link, events[i].events);
          handled = true;
          break;
        }
      }
      if (handled) continue;
      for (size_t c = 0; c < connections_.size(); ++c) {
        if (connections_[c]->conn_id == tag) {
          LoopHandleConnectionEvent(c, events[i].events);
          break;
        }
      }
    }
    NotifyBarrier();
  }
}

void SocketTransport::LoopStartDials() {
  if (loop_failed_.load(std::memory_order_acquire)) return;
  const auto now_time = std::chrono::steady_clock::now();
  for (size_t shard = 0; shard < links_.size(); ++shard) {
    Link& link = *links_[shard];
    if (link.abandoned.load(std::memory_order_acquire)) {
      // Discard anything staged before (or during) the quarantine; a
      // pending readmission then lifts the flag with a clean slate and
      // falls through to the ordinary dial path below.
      LoopPurgeAbandoned(link);
      if (!link.readmit_requested.load(std::memory_order_acquire)) continue;
      link.readmit_requested.store(false, std::memory_order_release);
      link.backoff_ms = 0;
      link.next_attempt = {};
      link.dial_deadline_set = false;
      link.abandoned.store(false, std::memory_order_release);
      link.dial_requested.store(true, std::memory_order_release);
      // ReadmitShard blocks on this transition.
      NotifyBarrier();
    }
    if (link.fd >= 0) continue;
    bool wants_dial =
        link.dial_requested.load(std::memory_order_acquire) ||
        !link.ring.empty();
    if (!wants_dial) {
      std::lock_guard<std::mutex> lock(link.mutex);
      wants_dial = !link.pending.empty();
    }
    if (!wants_dial || now_time < link.next_attempt) continue;

    // Only the *first* connection is deadline-bound: a shard that was
    // reachable once is assumed to be restarting, and the link retries
    // with backoff until it returns (or is abandoned).
    if (!link.ever_connected) {
      if (!link.dial_deadline_set) {
        link.dial_deadline =
            now_time + std::chrono::milliseconds(options_.connect_timeout_ms);
        link.dial_deadline_set = true;
      } else if (now_time > link.dial_deadline) {
        FailLoop(Status::Unavailable(
            StrFormat("shard %zu unreachable after %dms", shard,
                      options_.connect_timeout_ms)));
        return;
      }
    }

    sockaddr_storage addr{};
    socklen_t addr_len = 0;
    {
      std::lock_guard<std::mutex> lock(address_mutex_);
      const std::string& target =
          shard == options_.local_shard ? local_address_
                                        : options_.shard_addresses[shard];
      const Status parsed = ParseSocketAddress(target, &addr, &addr_len);
      if (!parsed.ok() || SocketAddressPort(addr) == 0) {
        // Address not yet announced (ephemeral remote): retry shortly.
        link.next_attempt = now_time + std::chrono::milliseconds(50);
        continue;
      }
    }
    const int fd = socket(addr.ss_family, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) {
      link.next_attempt = now_time + std::chrono::milliseconds(100);
      continue;
    }
    const int rc =
        connect(fd, reinterpret_cast<sockaddr*>(&addr), addr_len);
    if (rc == 0 || errno == EINPROGRESS) {
      link.fd = fd;
      link.connect_in_progress = true;
      epoll_event event{};
      event.events = EPOLLIN | EPOLLOUT;
      event.data.u64 = link.conn_id;
      epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
    } else {
      close(fd);
      link.next_attempt = now_time + std::chrono::milliseconds(100);
    }
  }
}

void SocketTransport::LoopCheckRetransmitTimers() {
  const auto now_time = std::chrono::steady_clock::now();
  for (const auto& link_ptr : links_) {
    Link& link = *link_ptr;
    if (link.fd < 0 || link.connect_in_progress) continue;
    if (!link.awaiting_ack && link.ring.empty()) continue;
    if (now_time > link.progress_deadline) {
      LoopScheduleReconnect(link, "no ack progress");
    }
  }
}

void SocketTransport::LoopPurgeAbandoned(Link& link) {
  uint64_t data_dropped = 0;
  uint64_t total_dropped = 0;
  const bool counted = link.shard != options_.local_shard;
  if (link.fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, link.fd, nullptr);
    close(link.fd);
    link.fd = -1;
  }
  link.connect_in_progress = false;
  link.awaiting_ack = false;
  link.kill_after_flush = false;
  link.connected.store(false, std::memory_order_release);
  for (const TxEntry& entry : link.ring) {
    if (entry.is_data && counted) ++data_dropped;
    ++total_dropped;
  }
  link.ring.clear();
  link.out.clear();
  link.out_offset = 0;
  {
    std::lock_guard<std::mutex> lock(link.mutex);
    for (const TxEntry& entry : link.pending) {
      if (entry.is_data && counted) ++data_dropped;
      ++total_dropped;
    }
    link.pending.clear();
    // The purged sequences are gone for good. Advance the resume cursor
    // past them so the hello after a readmission announces where traffic
    // actually restarts, instead of a base the receiver would wait on
    // forever (costing it a gap-drop + reconnect to re-learn).
    link.cursor_seq = link.tx_next_seq;
  }
  if (data_dropped > 0) {
    outstanding_data_.fetch_sub(data_dropped, std::memory_order_release);
  }
  if (total_dropped > 0) {
    unacked_frames_.fetch_sub(total_dropped, std::memory_order_release);
  }
  if (data_dropped > 0 || total_dropped > 0) {
    NotifyBarrier();
  }
}

void SocketTransport::LoopScheduleReconnect(Link& link, const char* reason) {
  if (link.fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, link.fd, nullptr);
    close(link.fd);
    link.fd = -1;
  }
  link.connect_in_progress = false;
  link.awaiting_ack = false;
  link.kill_after_flush = false;
  link.connected.store(false, std::memory_order_release);
  link.out.clear();
  link.out_offset = 0;
  link.assembler = FrameAssembler();
  // Rewind to the ring base: everything unacked goes out again after the
  // next handshake; the receiver's cursor discards what it already has.
  if (!link.ring.empty()) link.cursor_seq = link.ring.front().seq;

  link.backoff_ms =
      link.backoff_ms == 0
          ? options_.reconnect_backoff_initial_ms
          : std::min(link.backoff_ms * 2, options_.reconnect_backoff_max_ms);
  // Deterministic jitter (up to +50%) de-synchronizes competing redials.
  const uint64_t draw =
      SplitMix64(session_id_ ^
                 (static_cast<uint64_t>(link.shard) * 0xa24baed4963ee407ull) ^
                 (++link.redials * 0x9fb21c651e98df25ull))
          .Next();
  const int jitter =
      link.backoff_ms > 1 ? static_cast<int>(draw % (link.backoff_ms / 2 + 1))
                          : 0;
  link.next_attempt = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(link.backoff_ms + jitter);
  if (link.ever_connected) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    PDMS_LOG_WARNING << "shard " << link.shard << " link down (" << reason
                     << "); redialing in " << link.backoff_ms << "ms";
  }
  NotifyBarrier();
}

void SocketTransport::LoopFlushLink(Link& link) {
  // Adopt staged frames into the retransmit ring (ascending seq).
  {
    std::lock_guard<std::mutex> lock(link.mutex);
    if (!link.pending.empty()) {
      if (link.ring.empty()) link.cursor_seq = link.pending.front().seq;
      for (TxEntry& entry : link.pending) {
        link.ring.push_back(std::move(entry));
      }
      link.pending.clear();
    }
  }
  if (link.fd < 0 || link.connect_in_progress) return;
  if (!link.awaiting_ack) LoopPullRingIntoOut(link);
  while (link.out_offset < link.out.size()) {
    const ssize_t n =
        ::send(link.fd, link.out.data() + link.out_offset,
               link.out.size() - link.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      link.out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    LoopScheduleReconnect(link, std::strerror(errno));
    return;
  }
  const bool backlogged = link.out_offset < link.out.size();
  if (!backlogged) {
    link.out.clear();
    link.out_offset = 0;
    if (link.kill_after_flush) {
      link.kill_after_flush = false;
      LoopScheduleReconnect(link, "injected link kill");
      return;
    }
  }
  epoll_event event{};
  event.events = EPOLLIN | (backlogged ? EPOLLOUT : 0u);
  event.data.u64 = link.conn_id;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, link.fd, &event);
}

void SocketTransport::LoopPullRingIntoOut(Link& link) {
  if (link.ring.empty()) return;
  const FaultPlan& plan = options_.link_fault_plan;
  const uint64_t stream =
      (static_cast<uint64_t>(options_.local_shard) << 32) | link.shard;
  bool advanced = false;
  auto append = [&link](const std::vector<uint8_t>& bytes) {
    link.out.insert(link.out.end(), bytes.begin(), bytes.end());
  };
  while (link.cursor_seq <= link.ring.back().seq &&
         link.out.size() < kMaxStagedOutBytes) {
    TxEntry& entry = link.ring[link.cursor_seq - link.ring.front().seq];
    const uint32_t attempt = entry.tries++;
    if (attempt > 0) {
      frames_retransmitted_.fetch_add(1, std::memory_order_relaxed);
    }
    advanced = true;
    if (plan.Enabled()) {
      const FaultDecision decision =
          DrawFaults(plan, stream, entry.seq, attempt);
      std::lock_guard<std::mutex> lock(fault_mutex_);
      ++link_fault_stats_.events;
      if (decision.kill_link) {
        link.kill_after_flush = true;
        ++link_fault_stats_.links_killed;
      }
      if (decision.reorder && link.cursor_seq < link.ring.back().seq) {
        // Adjacent swap: the next frame overtakes this one on the wire;
        // the receiver sees a gap, drops the early frame and recovers
        // both by retransmission.
        TxEntry& next =
            link.ring[link.cursor_seq + 1 - link.ring.front().seq];
        ++next.tries;
        append(next.bytes);
        append(entry.bytes);
        ++link_fault_stats_.reordered;
        link.cursor_seq += 2;
        continue;
      }
      if (decision.drop) {
        ++link_fault_stats_.dropped;
        link.cursor_seq += 1;
        continue;
      }
      if (decision.corrupt) {
        // Flip one bit past the length prefix: framing survives, the CRC
        // (or the seq/body it covers) is provably violated, and the
        // receiver turns the frame into a reconnect + retransmit.
        std::vector<uint8_t> mangled = entry.bytes;
        const uint64_t bit =
            32 + decision.corrupt_entropy % ((mangled.size() - 4) * 8);
        mangled[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        append(mangled);
        ++link_fault_stats_.corrupted;
        link.cursor_seq += 1;
        continue;
      }
      if (decision.duplicate) {
        append(entry.bytes);
        append(entry.bytes);
        ++link_fault_stats_.duplicated;
        link.cursor_seq += 1;
        continue;
      }
    }
    append(entry.bytes);
    link.cursor_seq += 1;
  }
  if (advanced) {
    link.progress_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.retransmit_timeout_ms);
  }
}

void SocketTransport::LoopHandleLinkEvent(Link& link, uint32_t events) {
  if (link.connect_in_progress) {
    int error = 0;
    socklen_t len = sizeof(error);
    getsockopt(link.fd, SOL_SOCKET, SO_ERROR, &error, &len);
    if (error != 0 || (events & (EPOLLERR | EPOLLHUP))) {
      LoopScheduleReconnect(link, "connect failed");
      return;
    }
    link.connect_in_progress = false;
    SetNoDelay(link.fd);
    // Handshake: announce our session and where the retransmit ring
    // resumes. The link is usable once the peer's ack arrives.
    HelloFrame hello;
    hello.shard = options_.local_shard;
    hello.shard_count = shard_count();
    hello.peer_count = options_.peer_count;
    hello.session_id = session_id_;
    hello.next_seq =
        link.ring.empty() ? link.cursor_seq : link.ring.front().seq;
    std::vector<uint8_t> bytes;
    EncodeFrame(Frame{hello}, /*link_seq=*/0, &bytes);
    frame_bytes_sent_.fetch_add(bytes.size(), std::memory_order_relaxed);
    link.out.assign(bytes.begin(), bytes.end());
    link.out_offset = 0;
    link.awaiting_ack = true;
    link.progress_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.retransmit_timeout_ms);
    LoopFlushLink(link);
    return;
  }
  if (events & (EPOLLERR | EPOLLHUP)) {
    LoopScheduleReconnect(link, "link reset");
    return;
  }
  if (events & EPOLLIN) {
    uint8_t buffer[65536];
    for (;;) {
      const ssize_t n = recv(link.fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        link.assembler.Feed(std::span<const uint8_t>(buffer, n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      LoopScheduleReconnect(link, "link closed");
      return;
    }
    // The dialer side of a link only ever receives acks.
    for (;;) {
      auto next = link.assembler.Next();
      if (!next.ok()) {
        LoopScheduleReconnect(link, "corrupt ack stream");
        return;
      }
      if (!next->has_value()) break;
      if (const auto* ack = std::get_if<LinkAckFrame>(&**next)) {
        LoopHandleAck(link, *ack);
        if (link.fd < 0) return;  // reconnect scheduled mid-parse
      }
    }
  }
  if (events & EPOLLOUT) LoopFlushLink(link);
}

void SocketTransport::LoopHandleAck(Link& link, const LinkAckFrame& ack) {
  if (ack.session_id != session_id_) return;  // stale incarnation
  const uint64_t base =
      link.ring.empty() ? link.cursor_seq : link.ring.front().seq;
  const uint64_t upper = base + link.ring.size();
  if (ack.next_expected < base || ack.next_expected > upper) {
    LoopScheduleReconnect(link, "implausible ack");
    return;
  }
  uint64_t trimmed_data = 0;
  uint64_t trimmed_total = 0;
  bool progressed = ack.next_expected > base;
  while (!link.ring.empty() && link.ring.front().seq < ack.next_expected) {
    if (link.ring.front().is_data && link.shard != options_.local_shard) {
      ++trimmed_data;
    }
    ++trimmed_total;
    link.ring.pop_front();
  }
  if (link.cursor_seq < ack.next_expected) {
    link.cursor_seq = ack.next_expected;
  }
  if (link.awaiting_ack) {
    // Handshake complete; the peer told us where to resume.
    link.awaiting_ack = false;
    link.ever_connected = true;
    link.backoff_ms = 0;
    link.connected.store(true, std::memory_order_release);
    progressed = true;
  }
  if (progressed) {
    link.progress_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.retransmit_timeout_ms);
  }
  if (trimmed_data > 0) {
    outstanding_data_.fetch_sub(trimmed_data, std::memory_order_release);
  }
  if (trimmed_total > 0) {
    unacked_frames_.fetch_sub(trimmed_total, std::memory_order_release);
  }
  NotifyBarrier();
  LoopFlushLink(link);
}

void SocketTransport::LoopHandleListen() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;
    SetNoDelay(fd);
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    connection->conn_id = next_conn_id_.fetch_add(1);
    connection->remote_shard = shard_count();  // unknown until hello
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = connection->conn_id;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
    connections_.push_back(std::move(connection));
  }
}

void SocketTransport::LoopHandleHello(Connection& connection,
                                      const HelloFrame& hello) {
  if (hello.peer_count != options_.peer_count ||
      hello.shard_count != shard_count()) {
    PDMS_LOG_WARNING << "hello topology mismatch: remote has "
                     << hello.peer_count << " peers across "
                     << hello.shard_count << " shards";
  }
  if (hello.shard >= shard_count()) return;  // client connection
  connection.remote_shard = hello.shard;
  connection.greeted = true;
  const uint32_t shard = hello.shard;
  if (rx_session_[shard] != hello.session_id) {
    // A new peer incarnation: adopt its announced cursor. (A reconnect of
    // the same session keeps ours — that is what makes redelivery of
    // already-accepted frames a skip instead of a double-apply.)
    rx_session_[shard] = hello.session_id;
    rx_next_expected_[shard] = hello.next_seq;
  } else if (hello.next_seq > rx_next_expected_[shard]) {
    rx_next_expected_[shard] = hello.next_seq;
  }
  rx_acked_[shard] = 0;  // force a fresh ack on this connection
  LoopStageAck(connection);
}

void SocketTransport::LoopStageAck(Connection& connection) {
  if (!connection.greeted) return;
  const uint32_t shard = connection.remote_shard;
  if (rx_acked_[shard] == rx_next_expected_[shard]) return;
  LinkAckFrame ack;
  ack.shard = options_.local_shard;
  ack.session_id = rx_session_[shard];
  ack.next_expected = rx_next_expected_[shard];
  std::vector<uint8_t> bytes;
  EncodeFrame(Frame{ack}, /*link_seq=*/0, &bytes);
  frame_bytes_sent_.fetch_add(bytes.size(), std::memory_order_relaxed);
  connection.out.insert(connection.out.end(), bytes.begin(), bytes.end());
  rx_acked_[shard] = rx_next_expected_[shard];
}

bool SocketTransport::LoopDispatchSequenced(Connection& connection,
                                            Frame frame, uint64_t seq) {
  const uint32_t shard = connection.remote_shard;
  uint64_t& expected = rx_next_expected_[shard];
  if (seq < expected) {
    // Redelivery of an already-accepted frame (duplicate or retransmit
    // overlap): skip, the periodic ack re-educates the sender.
    duplicate_frames_skipped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (seq > expected) {
    PDMS_LOG_WARNING << "sequence gap from shard " << shard << " (got " << seq
                     << ", expected " << expected
                     << "); dropping connection for retransmit";
    return false;
  }
  expected = seq + 1;
  if (shard < links_.size() &&
      links_[shard]->abandoned.load(std::memory_order_acquire) &&
      !std::holds_alternative<RejoinFrame>(frame)) {
    // Quarantined shard: keep acking so its transport does not spin on
    // retransmits, but deliver nothing. A rejoin request is the one
    // exception — it is precisely how a restarted shard asks the
    // quarantine to be lifted, so it still reaches the control handler.
    return true;
  }
  if (auto* data = std::get_if<DataFrame>(&frame)) {
    LoopDeliverData(std::move(*data), shard);
    return true;
  }
  if (std::holds_alternative<LinkAckFrame>(frame) ||
      std::holds_alternative<HelloFrame>(frame)) {
    return true;  // session frames are never sequenced; ignore defensively
  }
  // Invoked under the lock so SetControlHandler(nullptr) doubles as a
  // barrier: once it returns, no invocation is in flight and the owner's
  // state (condition variables included) is safe to destroy.
  std::lock_guard<std::mutex> lock(handler_mutex_);
  if (handler_) handler_(std::move(frame), connection.conn_id, shard);
  return true;
}

void SocketTransport::LoopDeliverData(DataFrame data, uint32_t remote_shard) {
  if (data.to >= options_.peer_count || !IsLocalPeer(data.to)) {
    PDMS_LOG_WARNING << "dropping data frame for non-local peer " << data.to;
    return;
  }
  Received received;
  received.deliver_at = data.deliver_at;
  received.from = data.from;
  received.seq = data.seq;
  received.envelope.from = data.from;
  received.envelope.to = data.to;
  received.envelope.via = data.via;
  received.envelope.deliver_at = data.deliver_at;
  received.envelope.payload = std::move(data.payload);
  {
    Inbox& inbox = inboxes_[data.to];
    std::lock_guard<std::mutex> lock(inbox.mutex);
    inbox.queue.push_back(std::move(received));
  }
  inbox_count_.fetch_add(1, std::memory_order_release);
  if (remote_shard == options_.local_shard) {
    loopback_received_.fetch_add(1, std::memory_order_release);
  }
  NotifyBarrier();
}

void SocketTransport::LoopFlushConnection(Connection& connection,
                                          bool* close_connection) {
  while (connection.out_offset < connection.out.size()) {
    const ssize_t n = ::send(connection.fd,
                             connection.out.data() + connection.out_offset,
                             connection.out.size() - connection.out_offset,
                             MSG_NOSIGNAL);
    if (n > 0) {
      connection.out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    *close_connection = true;
    return;
  }
  const bool backlogged = connection.out_offset < connection.out.size();
  if (!backlogged) {
    connection.out.clear();
    connection.out_offset = 0;
  }
  epoll_event event{};
  event.events = EPOLLIN | (backlogged ? EPOLLOUT : 0u);
  event.data.u64 = connection.conn_id;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection.fd, &event);
}

void SocketTransport::LoopHandleConnectionEvent(size_t index,
                                                uint32_t events) {
  Connection& connection = *connections_[index];
  bool close_connection = false;
  if (events & (EPOLLERR | EPOLLHUP)) {
    close_connection = true;
  } else if (events & EPOLLIN) {
    uint8_t buffer[65536];
    for (;;) {
      const ssize_t n = recv(connection.fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        connection.assembler.Feed(std::span<const uint8_t>(buffer, n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_connection = true;  // orderly close or error
      break;
    }
    for (;;) {
      auto next = connection.assembler.Next();
      if (!next.ok()) {
        // Corrupt or malformed stream: drop the connection. A shard link
        // behind it will reconnect and retransmit; a client just failed.
        PDMS_LOG_WARNING << "closing connection: "
                         << next.status().ToString();
        close_connection = true;
        break;
      }
      if (!next->has_value()) break;
      Frame frame = std::move(**next);
      const uint64_t seq = connection.assembler.last_seq();
      if (const auto* hello = std::get_if<HelloFrame>(&frame)) {
        LoopHandleHello(connection, *hello);
        continue;
      }
      if (seq == 0) {
        // Session-control lane: query RPCs from clients (and, on shard
        // links, nothing else we care about).
        if (std::holds_alternative<DataFrame>(frame) ||
            std::holds_alternative<LinkAckFrame>(frame)) {
          continue;
        }
        ControlHandler handler;
        {
          std::lock_guard<std::mutex> lock(handler_mutex_);
          handler = handler_;
        }
        if (handler) {
          handler(std::move(frame), connection.conn_id,
                  connection.greeted ? connection.remote_shard
                                     : shard_count());
        }
        continue;
      }
      if (!connection.greeted) {
        PDMS_LOG_WARNING << "sequenced frame before hello; dropping "
                            "connection";
        close_connection = true;
        break;
      }
      if (!LoopDispatchSequenced(connection, std::move(frame), seq)) {
        close_connection = true;
        break;
      }
    }
    if (!close_connection) LoopStageAck(connection);
  }
  if (!close_connection &&
      ((events & EPOLLOUT) != 0 ||
       connection.out_offset < connection.out.size())) {
    LoopFlushConnection(connection, &close_connection);
  }
  if (close_connection) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, connection.fd, nullptr);
    close(connection.fd);
    connections_.erase(connections_.begin() + static_cast<long>(index));
    NotifyBarrier();
  }
}

void SocketTransport::LoopDrainControlOutbox() {
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> staged;
  {
    std::lock_guard<std::mutex> lock(control_outbox_mutex_);
    staged.swap(control_outbox_);
  }
  for (auto& [conn_id, bytes] : staged) {
    Connection* target = nullptr;
    for (const auto& connection : connections_) {
      if (connection->conn_id == conn_id) {
        target = connection.get();
        break;
      }
    }
    if (target == nullptr) continue;  // recipient hung up; best-effort lane
    target->out.insert(target->out.end(), bytes.begin(), bytes.end());
    epoll_event event{};
    event.events = EPOLLIN | EPOLLOUT;
    event.data.u64 = target->conn_id;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, target->fd, &event);
  }
}

}  // namespace pdms
