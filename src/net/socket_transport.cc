#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/logging.h"
#include "util/string_util.h"

namespace pdms {
namespace {

/// epoll user-data sentinels for the two non-connection descriptors.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = ~0ull;

void SetNoDelay(int fd) {
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status ParseAddress(const std::string& address, sockaddr_in* out) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        StrFormat("address '%s' is not ip:port", address.c_str()));
  }
  const std::string host = address.substr(0, colon);
  const std::string port = address.substr(colon + 1);
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  if (inet_pton(AF_INET, host.c_str(), &out->sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("address '%s' has no valid IPv4 host", address.c_str()));
  }
  char* end = nullptr;
  const unsigned long value = std::strtoul(port.c_str(), &end, 10);
  if (end == port.c_str() || *end != '\0' || value > 65535) {
    return Status::InvalidArgument(
        StrFormat("address '%s' has no valid port", address.c_str()));
  }
  out->sin_port = htons(static_cast<uint16_t>(value));
  return Status::Ok();
}

std::string RenderAddress(const sockaddr_in& addr) {
  char host[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host));
  return StrFormat("%s:%u", host, static_cast<unsigned>(ntohs(addr.sin_port)));
}

}  // namespace

// --- Construction --------------------------------------------------------------

SocketTransport::SocketTransport(SocketTransportOptions options)
    : options_(std::move(options)),
      inboxes_(options_.peer_count),
      send_seq_(new std::atomic<uint64_t>[options_.peer_count]) {
  for (size_t i = 0; i < options_.peer_count; ++i) {
    send_seq_[i].store(0, std::memory_order_relaxed);
  }
  links_.reserve(options_.shard_addresses.size());
  for (size_t i = 0; i < options_.shard_addresses.size(); ++i) {
    links_.push_back(std::make_unique<Link>());
    links_.back()->shard = static_cast<uint32_t>(i);
    links_.back()->conn_id = next_conn_id_.fetch_add(1);
  }
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::Create(
    SocketTransportOptions options) {
  if (options.peer_count == 0) {
    return Status::InvalidArgument("socket transport needs at least one peer");
  }
  if (options.shard_addresses.empty()) {
    return Status::InvalidArgument("socket transport needs shard addresses");
  }
  if (options.local_shard >= options.shard_addresses.size()) {
    return Status::OutOfRange(
        StrFormat("local shard %u beyond the %zu configured shards",
                  options.local_shard, options.shard_addresses.size()));
  }
  if (!options.shard_of.empty()) {
    if (options.shard_of.size() != options.peer_count) {
      return Status::InvalidArgument(
          "shard_of must assign every peer (or be empty)");
    }
    for (uint32_t shard : options.shard_of) {
      if (shard >= options.shard_addresses.size()) {
        return Status::OutOfRange(
            StrFormat("peer assigned to unknown shard %u", shard));
      }
    }
  }
  if (options.delay_ticks == 0) {
    return Status::InvalidArgument(
        "socket transport needs delay_ticks >= 1 (same-tick delivery "
        "cannot be flushed through a real wire)");
  }
  std::unique_ptr<SocketTransport> transport(
      new SocketTransport(std::move(options)));
  PDMS_RETURN_IF_ERROR(transport->Initialize());
  return transport;
}

std::unique_ptr<SocketTransport> SocketTransport::CreateLoopback(
    size_t peer_count) {
  SocketTransportOptions options;
  options.peer_count = peer_count;
  options.shard_addresses = {"127.0.0.1:0"};
  auto created = Create(std::move(options));
  if (!created.ok()) {
    PDMS_LOG_ERROR << "loopback socket transport failed: "
                   << created.status().ToString();
    return nullptr;
  }
  return std::move(created).value();
}

Status SocketTransport::Initialize() {
  sockaddr_in bind_addr{};
  PDMS_RETURN_IF_ERROR(
      ParseAddress(options_.shard_addresses[options_.local_shard], &bind_addr));

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&bind_addr),
           sizeof(bind_addr)) < 0) {
    return Status::Unavailable(
        StrFormat("bind(%s): %s",
                  options_.shard_addresses[options_.local_shard].c_str(),
                  std::strerror(errno)));
  }
  if (listen(listen_fd_, 64) < 0) {
    return Status::Internal(StrFormat("listen: %s", std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  local_address_ = RenderAddress(bound);
  options_.shard_addresses[options_.local_shard] = local_address_;

  epoll_fd_ = epoll_create1(0);
  wake_fd_ = eventfd(0, EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Status::Internal(
        StrFormat("epoll/eventfd: %s", std::strerror(errno)));
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = kListenTag;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event);
  event.data.u64 = kWakeTag;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event);

  loop_ = std::thread([this] { LoopMain(); });
  return Status::Ok();
}

SocketTransport::~SocketTransport() {
  stop_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_.joinable()) loop_.join();
  for (const auto& link : links_) {
    if (link->fd >= 0) close(link->fd);
  }
  for (const auto& connection : connections_) {
    if (connection->fd >= 0) close(connection->fd);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

// --- Driver-side API -----------------------------------------------------------

void SocketTransport::Send(PeerId from, PeerId to, std::optional<EdgeId> via,
                           Payload payload) {
  const MessageKind kind = KindOf(payload);
  const WireBreakdown breakdown = PayloadWireBreakdown(payload);
  counters_.CountSent(kind, breakdown.bytes, breakdown.key_bytes,
                      breakdown.alias_bytes);

  DataFrame frame;
  frame.from = from;
  frame.to = to;
  frame.via = via;
  frame.deliver_at = now() + options_.delay_ticks;
  frame.seq = send_seq_[from].fetch_add(1, std::memory_order_relaxed);
  frame.payload = std::move(payload);

  std::vector<uint8_t> bytes;
  EncodeFrame(Frame{std::move(frame)}, &bytes);
  frame_bytes_sent_.fetch_add(bytes.size(), std::memory_order_relaxed);
  data_frames_sent_.fetch_add(1, std::memory_order_relaxed);
  const uint32_t shard = shard_of(to);
  if (shard == options_.local_shard) {
    loopback_sent_.fetch_add(1, std::memory_order_release);
  }
  StageOnLink(shard, bytes);
  WakeLoop();
}

std::vector<Envelope> SocketTransport::Drain(PeerId peer) {
  if (peer >= inboxes_.size()) return {};
  const uint64_t current = now();
  std::vector<Received> due;
  {
    Inbox& inbox = inboxes_[peer];
    std::lock_guard<std::mutex> lock(inbox.mutex);
    auto& queue = inbox.queue;
    size_t kept = 0;
    for (size_t i = 0; i < queue.size(); ++i) {
      if (queue[i].deliver_at <= current) {
        due.push_back(std::move(queue[i]));
      } else {
        if (kept != i) queue[kept] = std::move(queue[i]);
        ++kept;
      }
    }
    queue.resize(kept);
  }
  if (due.empty()) return {};
  inbox_count_.fetch_sub(due.size(), std::memory_order_release);
  // The deterministic delivery order: ticks, then sender, then the
  // sender's own sequence. Within one engine tick this reproduces the
  // lossless simulator's mailbox order exactly (see class comment).
  std::sort(due.begin(), due.end(), [](const Received& a, const Received& b) {
    if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
    if (a.from != b.from) return a.from < b.from;
    return a.seq < b.seq;
  });
  std::vector<Envelope> envelopes;
  envelopes.reserve(due.size());
  for (Received& received : due) {
    counters_.CountDelivered(KindOf(received.envelope.payload));
    envelopes.push_back(std::move(received.envelope));
  }
  return envelopes;
}

bool SocketTransport::BarrierSatisfied() const {
  return bytes_enqueued_.load(std::memory_order_acquire) ==
             bytes_flushed_.load(std::memory_order_acquire) &&
         loopback_sent_.load(std::memory_order_acquire) ==
             loopback_received_.load(std::memory_order_acquire);
}

void SocketTransport::AdvanceTick() {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const bool quiesced = barrier_cv_.wait_for(
      lock, std::chrono::milliseconds(options_.barrier_timeout_ms), [this] {
        return loop_failed_.load(std::memory_order_acquire) ||
               BarrierSatisfied();
      });
  if (!quiesced) {
    PDMS_LOG_WARNING << "socket transport tick barrier timed out after "
                     << options_.barrier_timeout_ms << "ms ("
                     << (bytes_enqueued_.load() - bytes_flushed_.load())
                     << " bytes unflushed)";
  }
  now_.fetch_add(1, std::memory_order_release);
}

bool SocketTransport::HasPendingMessages() const {
  return inbox_count_.load(std::memory_order_acquire) > 0 ||
         !BarrierSatisfied();
}

const TransportStats& SocketTransport::stats() const {
  counters_.SnapshotTo(&stats_snapshot_);
  return stats_snapshot_;
}

void SocketTransport::ResetStats() { counters_.Reset(); }

Status SocketTransport::SetShardAddress(uint32_t shard, std::string address) {
  if (shard >= links_.size()) {
    return Status::OutOfRange(StrFormat("unknown shard %u", shard));
  }
  Link& link = *links_[shard];
  if (link.connected.load(std::memory_order_acquire) ||
      link.dial_requested.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        StrFormat("shard %u link already dialing", shard));
  }
  sockaddr_in parsed{};
  PDMS_RETURN_IF_ERROR(ParseAddress(address, &parsed));
  std::lock_guard<std::mutex> lock(address_mutex_);
  options_.shard_addresses[shard] = std::move(address);
  return Status::Ok();
}

Status SocketTransport::ConnectAll() {
  for (const auto& link : links_) {
    link->dial_requested.store(true, std::memory_order_release);
  }
  WakeLoop();
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const bool connected = barrier_cv_.wait_for(
      lock, std::chrono::milliseconds(options_.connect_timeout_ms), [this] {
        if (loop_failed_.load(std::memory_order_acquire)) return true;
        for (const auto& link : links_) {
          if (!link->connected.load(std::memory_order_acquire)) return false;
        }
        return true;
      });
  if (loop_failed_.load(std::memory_order_acquire)) return loop_error();
  if (!connected) {
    return Status::Unavailable(
        StrFormat("not all shards reachable within %dms",
                  options_.connect_timeout_ms));
  }
  return Status::Ok();
}

Status SocketTransport::loop_error() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  return error_;
}

void SocketTransport::SetControlHandler(ControlHandler handler) {
  std::lock_guard<std::mutex> lock(handler_mutex_);
  handler_ = std::move(handler);
}

Status SocketTransport::SendControl(uint32_t shard, const Frame& frame) {
  if (shard >= links_.size()) {
    return Status::OutOfRange(StrFormat("unknown shard %u", shard));
  }
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  frame_bytes_sent_.fetch_add(bytes.size(), std::memory_order_relaxed);
  StageOnLink(shard, bytes);
  WakeLoop();
  return Status::Ok();
}

Status SocketTransport::SendOnConnection(uint64_t connection,
                                         const Frame& frame) {
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  frame_bytes_sent_.fetch_add(bytes.size(), std::memory_order_relaxed);
  bytes_enqueued_.fetch_add(bytes.size(), std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(control_outbox_mutex_);
    control_outbox_.emplace_back(connection, std::move(bytes));
  }
  WakeLoop();
  return Status::Ok();
}

void SocketTransport::StageOnLink(uint32_t shard,
                                  const std::vector<uint8_t>& bytes) {
  bytes_enqueued_.fetch_add(bytes.size(), std::memory_order_release);
  Link& link = *links_[shard];
  std::lock_guard<std::mutex> lock(link.mutex);
  link.pending.insert(link.pending.end(), bytes.begin(), bytes.end());
}

void SocketTransport::WakeLoop() {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void SocketTransport::NotifyBarrier() {
  // Lock/unlock pairs the notification with any waiter's predicate check,
  // so a wakeup between check and wait cannot be lost.
  { std::lock_guard<std::mutex> lock(barrier_mutex_); }
  barrier_cv_.notify_all();
}

void SocketTransport::FailLoop(Status status) {
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (error_.ok()) error_ = status;
  }
  loop_failed_.store(true, std::memory_order_release);
  PDMS_LOG_ERROR << "socket transport event loop: " << status.ToString();
  NotifyBarrier();
}

// --- Event loop ----------------------------------------------------------------

void SocketTransport::LoopMain() {
  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    LoopStartDials();
    LoopDrainControlOutbox();
    for (const auto& link : links_) {
      if (link->fd >= 0 && !link->connect_in_progress) LoopFlushLink(*link);
    }
    const int count = epoll_wait(epoll_fd_, events, 64, 10);
    for (int i = 0; i < count; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        uint64_t drained = 0;
        [[maybe_unused]] const ssize_t n =
            read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      if (tag == kListenTag) {
        LoopHandleListen();
        continue;
      }
      bool handled = false;
      for (const auto& link : links_) {
        if (link->conn_id == tag) {
          LoopHandleLinkEvent(*link, events[i].events);
          handled = true;
          break;
        }
      }
      if (handled) continue;
      for (size_t c = 0; c < connections_.size(); ++c) {
        if (connections_[c]->conn_id == tag) {
          LoopHandleConnectionEvent(c, events[i].events);
          break;
        }
      }
    }
    NotifyBarrier();
  }
}

void SocketTransport::LoopStartDials() {
  if (loop_failed_.load(std::memory_order_acquire)) return;
  const auto now_time = std::chrono::steady_clock::now();
  for (size_t shard = 0; shard < links_.size(); ++shard) {
    Link& link = *links_[shard];
    if (link.fd >= 0) continue;
    bool wants_dial = link.dial_requested.load(std::memory_order_acquire);
    if (!wants_dial) {
      std::lock_guard<std::mutex> lock(link.mutex);
      wants_dial = !link.pending.empty();
    }
    if (!wants_dial || now_time < link.next_attempt) continue;

    if (!link.dial_deadline_set) {
      link.dial_deadline =
          now_time + std::chrono::milliseconds(options_.connect_timeout_ms);
      link.dial_deadline_set = true;
    } else if (now_time > link.dial_deadline) {
      FailLoop(Status::Unavailable(
          StrFormat("shard %zu unreachable after %dms", shard,
                    options_.connect_timeout_ms)));
      return;
    }

    sockaddr_in addr{};
    {
      std::lock_guard<std::mutex> lock(address_mutex_);
      const std::string& target =
          shard == options_.local_shard ? local_address_
                                        : options_.shard_addresses[shard];
      const Status parsed = ParseAddress(target, &addr);
      if (!parsed.ok() || addr.sin_port == 0) {
        // Address not yet announced (ephemeral remote): retry shortly.
        link.next_attempt = now_time + std::chrono::milliseconds(50);
        continue;
      }
    }
    const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) {
      link.next_attempt = now_time + std::chrono::milliseconds(100);
      continue;
    }
    const int rc =
        connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc == 0 || errno == EINPROGRESS) {
      link.fd = fd;
      link.connect_in_progress = true;
      epoll_event event{};
      event.events = EPOLLIN | EPOLLOUT;
      event.data.u64 = link.conn_id;
      epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
    } else {
      close(fd);
      link.next_attempt = now_time + std::chrono::milliseconds(100);
    }
  }
}

void SocketTransport::CloseLink(Link& link) {
  if (link.fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, link.fd, nullptr);
    close(link.fd);
  }
  link.fd = -1;
  link.connect_in_progress = false;
  link.connected.store(false, std::memory_order_release);
  link.next_attempt =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
}

void SocketTransport::LoopHandleLinkEvent(Link& link, uint32_t events) {
  if (link.connect_in_progress) {
    int error = 0;
    socklen_t len = sizeof(error);
    getsockopt(link.fd, SOL_SOCKET, SO_ERROR, &error, &len);
    if (error != 0 || (events & (EPOLLERR | EPOLLHUP))) {
      CloseLink(link);
      return;
    }
    link.connect_in_progress = false;
    SetNoDelay(link.fd);
    // Hello travels first on every link; nothing has been written yet, so
    // prepending is safe.
    std::vector<uint8_t> hello;
    EncodeFrame(Frame{HelloFrame{options_.local_shard, shard_count(),
                                 options_.peer_count}},
                &hello);
    bytes_enqueued_.fetch_add(hello.size(), std::memory_order_release);
    frame_bytes_sent_.fetch_add(hello.size(), std::memory_order_relaxed);
    link.out.insert(link.out.begin(), hello.begin(), hello.end());
    link.connected.store(true, std::memory_order_release);
    LoopFlushLink(link);
    NotifyBarrier();
    return;
  }
  if (events & (EPOLLERR | EPOLLHUP)) {
    if (!stop_.load(std::memory_order_acquire)) {
      FailLoop(Status::Unavailable("shard link reset"));
    }
    CloseLink(link);
    return;
  }
  if (events & EPOLLIN) {
    uint8_t buffer[65536];
    for (;;) {
      const ssize_t n = recv(link.fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        link.assembler.Feed(std::span<const uint8_t>(buffer, n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (!stop_.load(std::memory_order_acquire)) {
        FailLoop(Status::Unavailable("shard link closed"));
      }
      CloseLink(link);
      return;
    }
    // Frames arriving on our outbound link come from the shard we dialed.
    uint32_t remote = link.shard;
    if (!LoopDispatchFrames(link.assembler, link.conn_id, &remote)) {
      FailLoop(Status::InvalidArgument("malformed frame on shard link"));
      CloseLink(link);
      return;
    }
  }
  if (events & EPOLLOUT) LoopFlushLink(link);
}

void SocketTransport::LoopFlushLink(Link& link) {
  {
    std::lock_guard<std::mutex> lock(link.mutex);
    if (!link.pending.empty()) {
      link.out.insert(link.out.end(), link.pending.begin(),
                      link.pending.end());
      link.pending.clear();
    }
  }
  if (!link.connected.load(std::memory_order_relaxed)) return;
  bool wrote = false;
  while (link.out_offset < link.out.size()) {
    const ssize_t n =
        ::send(link.fd, link.out.data() + link.out_offset,
               link.out.size() - link.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      link.out_offset += static_cast<size_t>(n);
      bytes_flushed_.fetch_add(static_cast<uint64_t>(n),
                               std::memory_order_release);
      wrote = true;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (!stop_.load(std::memory_order_acquire)) {
      FailLoop(Status::Unavailable(
          StrFormat("shard link write: %s", std::strerror(errno))));
    }
    CloseLink(link);
    return;
  }
  if (link.out_offset == link.out.size()) {
    link.out.clear();
    link.out_offset = 0;
  }
  if (wrote) NotifyBarrier();
}

void SocketTransport::LoopHandleListen() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;
    SetNoDelay(fd);
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    connection->conn_id = next_conn_id_.fetch_add(1);
    connection->remote_shard = shard_count();  // unknown until hello
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = connection->conn_id;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
    connections_.push_back(std::move(connection));
  }
}

void SocketTransport::LoopHandleConnectionEvent(size_t index, uint32_t events) {
  Connection& connection = *connections_[index];
  bool close_connection = false;
  if (events & (EPOLLERR | EPOLLHUP)) {
    close_connection = true;
  } else if (events & EPOLLIN) {
    uint8_t buffer[65536];
    for (;;) {
      const ssize_t n = recv(connection.fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        connection.assembler.Feed(std::span<const uint8_t>(buffer, n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_connection = true;  // orderly close or error
      break;
    }
    if (!LoopDispatchFrames(connection.assembler, connection.conn_id,
                            &connection.remote_shard)) {
      PDMS_LOG_WARNING << "dropping connection with malformed frames";
      close_connection = true;
    }
  }
  if (!close_connection && (events & EPOLLOUT)) {
    while (connection.out_offset < connection.out.size()) {
      const ssize_t n = ::send(connection.fd,
                               connection.out.data() + connection.out_offset,
                               connection.out.size() - connection.out_offset,
                               MSG_NOSIGNAL);
      if (n > 0) {
        connection.out_offset += static_cast<size_t>(n);
        bytes_flushed_.fetch_add(static_cast<uint64_t>(n),
                                 std::memory_order_release);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_connection = true;
      break;
    }
    if (connection.out_offset == connection.out.size()) {
      connection.out.clear();
      connection.out_offset = 0;
      epoll_event event{};
      event.events = EPOLLIN;
      event.data.u64 = connection.conn_id;
      epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection.fd, &event);
    }
    NotifyBarrier();
  }
  if (close_connection) {
    // Unflushed reply bytes will never be written; keep the barrier sane.
    const size_t unwritten = connection.out.size() - connection.out_offset;
    if (unwritten > 0) {
      bytes_flushed_.fetch_add(unwritten, std::memory_order_release);
    }
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, connection.fd, nullptr);
    close(connection.fd);
    connections_.erase(connections_.begin() + static_cast<long>(index));
    NotifyBarrier();
  }
}

void SocketTransport::LoopDrainControlOutbox() {
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> staged;
  {
    std::lock_guard<std::mutex> lock(control_outbox_mutex_);
    staged.swap(control_outbox_);
  }
  for (auto& [conn_id, bytes] : staged) {
    Connection* target = nullptr;
    for (const auto& connection : connections_) {
      if (connection->conn_id == conn_id) {
        target = connection.get();
        break;
      }
    }
    if (target == nullptr) {
      // Recipient hung up; balance the barrier accounting.
      bytes_flushed_.fetch_add(bytes.size(), std::memory_order_release);
      continue;
    }
    const bool was_empty = target->out.empty();
    target->out.insert(target->out.end(), bytes.begin(), bytes.end());
    if (was_empty) {
      epoll_event event{};
      event.events = EPOLLIN | EPOLLOUT;
      event.data.u64 = target->conn_id;
      epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, target->fd, &event);
    }
  }
}

bool SocketTransport::LoopDispatchFrames(FrameAssembler& assembler,
                                         uint64_t conn_id,
                                         uint32_t* remote_shard) {
  for (;;) {
    auto next = assembler.Next();
    if (!next.ok()) {
      PDMS_LOG_WARNING << "frame decode: " << next.status().ToString();
      return false;
    }
    if (!next->has_value()) return true;
    LoopDispatchFrame(std::move(**next), conn_id, remote_shard);
  }
}

void SocketTransport::LoopDispatchFrame(Frame frame, uint64_t conn_id,
                                        uint32_t* remote_shard) {
  if (const auto* hello = std::get_if<HelloFrame>(&frame)) {
    // The hello is the first frame on every link: it tags the connection
    // with the dialing shard before any data frame on it is dispatched,
    // which is what keeps the loopback barrier accounting exact.
    if (hello->peer_count != options_.peer_count ||
        hello->shard_count != shard_count()) {
      PDMS_LOG_WARNING << "hello topology mismatch: remote has "
                       << hello->peer_count << " peers across "
                       << hello->shard_count << " shards";
    }
    if (hello->shard < shard_count()) *remote_shard = hello->shard;
  }
  if (auto* data = std::get_if<DataFrame>(&frame)) {
    if (data->to >= options_.peer_count || !IsLocalPeer(data->to)) {
      PDMS_LOG_WARNING << "dropping data frame for non-local peer "
                       << data->to;
      return;
    }
    Received received;
    received.deliver_at = data->deliver_at;
    received.from = data->from;
    received.seq = data->seq;
    received.envelope.from = data->from;
    received.envelope.to = data->to;
    received.envelope.via = data->via;
    received.envelope.deliver_at = data->deliver_at;
    received.envelope.payload = std::move(data->payload);
    {
      Inbox& inbox = inboxes_[data->to];
      std::lock_guard<std::mutex> lock(inbox.mutex);
      inbox.queue.push_back(std::move(received));
    }
    inbox_count_.fetch_add(1, std::memory_order_release);
    if (*remote_shard == options_.local_shard) {
      loopback_received_.fetch_add(1, std::memory_order_release);
    }
    NotifyBarrier();
    return;
  }
  ControlHandler handler;
  {
    std::lock_guard<std::mutex> lock(handler_mutex_);
    handler = handler_;
  }
  if (handler) handler(std::move(frame), conn_id);
}

}  // namespace pdms
