#include "net/codec.h"

#include <bit>
#include <cassert>
#include <cstring>
#include <limits>
#include <type_traits>

#include "util/string_util.h"

namespace pdms {
namespace {

uint64_t ZigZag(int64_t delta) {
  return (static_cast<uint64_t>(delta) << 1) ^
         static_cast<uint64_t>(delta >> 63);
}

int64_t UnZigZag(uint64_t value) {
  return static_cast<int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

// --- Encoder sinks -------------------------------------------------------------
//
// One templated encoding pass serves both the size computation (CountingSink)
// and the actual serialization (AppendSink); the two can therefore never
// drift apart.

struct CountingSink {
  size_t size = 0;
  void Byte(uint8_t) { ++size; }
  void Bytes(const void*, size_t n) { size += n; }
};

struct AppendSink {
  std::vector<uint8_t>* out;
  void Byte(uint8_t b) { out->push_back(b); }
  void Bytes(const void* data, size_t n) {
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    out->insert(out->end(), bytes, bytes + n);
  }
};

template <typename Sink>
void PutVarint(Sink& sink, uint64_t value) {
  while (value >= 0x80) {
    sink.Byte(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  sink.Byte(static_cast<uint8_t>(value));
}

template <typename Sink>
void PutFixed32(Sink& sink, uint32_t value) {
  const uint8_t bytes[4] = {
      static_cast<uint8_t>(value), static_cast<uint8_t>(value >> 8),
      static_cast<uint8_t>(value >> 16), static_cast<uint8_t>(value >> 24)};
  sink.Bytes(bytes, 4);
}

template <typename Sink>
void PutFixed64(Sink& sink, uint64_t value) {
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<uint8_t>(value >> (8 * i));
  sink.Bytes(bytes, 8);
}

template <typename Sink>
void PutFixed16(Sink& sink, uint16_t value) {
  const uint8_t bytes[2] = {static_cast<uint8_t>(value),
                            static_cast<uint8_t>(value >> 8)};
  sink.Bytes(bytes, 2);
}

template <typename Sink>
void PutDouble(Sink& sink, double value) {
  PutFixed64(sink, std::bit_cast<uint64_t>(value));
}

template <typename Sink>
void PutString(Sink& sink, const std::string& value) {
  PutVarint(sink, value.size());
  sink.Bytes(value.data(), value.size());
}

// --- Payload encoding ----------------------------------------------------------

template <typename Sink>
void EncodeProbe(const ProbeMessage& probe, Sink& sink) {
  PutFixed32(sink, probe.origin);
  PutFixed32(sink, probe.ttl);
  PutVarint(sink, probe.route.size());
  for (EdgeId edge : probe.route) PutFixed32(sink, edge);
  PutVarint(sink, probe.trail.size());
  for (const auto& hop : probe.trail) {
    PutVarint(sink, hop.size());
    for (const std::optional<AttributeId>& attr : hop) {
      PutFixed32(sink, attr ? *attr : kNullAttributeWire);
    }
  }
}

template <typename Sink>
void EncodeFeedback(const FeedbackAnnouncement& message, Sink& sink) {
  sink.Byte(static_cast<uint8_t>(message.closure.kind));
  PutVarint(sink, message.closure.split);
  PutFixed32(sink, message.closure.source);
  PutFixed32(sink, message.closure.sink);
  PutVarint(sink, message.closure.edges.size());
  for (EdgeId edge : message.closure.edges) PutFixed32(sink, edge);
  PutDouble(sink, message.delta);
  PutVarint(sink, message.feedback.size());
  for (const AttributeFeedback& entry : message.feedback) {
    PutFixed32(sink, entry.root_attribute);
    sink.Byte(static_cast<uint8_t>(entry.sign));
    PutVarint(sink, entry.members.size());
    for (const MappingVarKey& member : entry.members) {
      PutFixed32(sink, member.edge);
      PutFixed32(sink, member.attribute);
    }
  }
}

template <typename Sink>
void EncodeBelief(const BeliefMessage& message, Sink& sink) {
  // Byte-for-byte the model `BundleBreakdown` (message.cc) accounts:
  // varint(epoch) + varint(ack) + varint(value_bits) + varint(#groups);
  // per group the zigzag alias-delta token (low bit = "full id present"),
  // the optional 16-byte fingerprint, varint(#entries); per entry a
  // zigzag position-delta varint plus the value — two raw doubles under
  // value_bits == 0, else the entry's quantum as one `QuantWireToken`
  // varint.
  const bool quantized = message.value_bits != 0;
  PutVarint(sink, message.epoch);
  PutVarint(sink, message.ack);
  PutVarint(sink, message.value_bits);
  PutVarint(sink, message.groups.size());
  uint32_t previous_alias = 0;
  for (const BeliefGroup& group : message.groups) {
    const bool has_id = !group.id.IsNil();
    const uint64_t token =
        (ZigZag(static_cast<int64_t>(group.alias) -
                static_cast<int64_t>(previous_alias))
         << 1) |
        (has_id ? 1 : 0);
    PutVarint(sink, token);
    previous_alias = group.alias;
    if (has_id) {
      PutFixed64(sink, group.id.hi);
      PutFixed64(sink, group.id.lo);
    }
    const std::span<const BeliefEntry> entries = message.EntriesOf(group);
    assert(entries.size() == group.entry_count &&
           "belief group entry range out of bundle bounds");
    PutVarint(sink, entries.size());
    uint32_t previous_position = 0;
    for (const BeliefEntry& entry : entries) {
      PutVarint(sink, ZigZag(static_cast<int64_t>(entry.position) -
                             static_cast<int64_t>(previous_position)));
      previous_position = entry.position;
      if (quantized) {
        PutVarint(sink, QuantWireToken(entry.quant));
      } else {
        PutDouble(sink, entry.belief.correct);
        PutDouble(sink, entry.belief.incorrect);
      }
    }
  }
}

template <typename Sink>
void EncodeQuery(const QueryMessage& message, Sink& sink) {
  PutFixed64(sink, message.query_id);
  PutFixed32(sink, message.origin);
  PutFixed32(sink, message.ttl);
  PutString(sink, message.query.name());
  PutVarint(sink, message.query.operations().size());
  for (const Operation& op : message.query.operations()) {
    sink.Byte(static_cast<uint8_t>(op.kind));
    PutFixed32(sink, op.attribute);
    PutString(sink, op.literal);
  }
  PutVarint(sink, message.visited.size());
  for (PeerId peer : message.visited) PutFixed32(sink, peer);
  PutVarint(sink, message.piggyback.size());
  for (const BeliefUpdate& update : message.piggyback) {
    PutFixed64(sink, update.factor.hi);
    PutFixed64(sink, update.factor.lo);
    assert(update.position <= std::numeric_limits<uint16_t>::max() &&
           "piggyback position exceeds the uint16 wire field");
    PutFixed16(sink, static_cast<uint16_t>(update.position));
    PutDouble(sink, update.belief.correct);
    PutDouble(sink, update.belief.incorrect);
  }
}

template <typename Sink>
void EncodePayloadTo(const Payload& payload, Sink& sink) {
  std::visit(
      [&sink](const auto& message) {
        using T = std::decay_t<decltype(message)>;
        if constexpr (std::is_same_v<T, ProbeMessage>) {
          EncodeProbe(message, sink);
        } else if constexpr (std::is_same_v<T, FeedbackAnnouncement>) {
          EncodeFeedback(message, sink);
        } else if constexpr (std::is_same_v<T, BeliefMessage>) {
          EncodeBelief(message, sink);
        } else {
          static_assert(std::is_same_v<T, QueryMessage>);
          EncodeQuery(message, sink);
        }
      },
      payload);
}

// --- Strict reader -------------------------------------------------------------

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool Done() const { return pos_ == data_.size(); }

  Status ReadByte(uint8_t* out) {
    if (remaining() < 1) return Truncated("byte");
    *out = data_[pos_++];
    return Status::Ok();
  }

  /// Minimal-form LEB128 only: overlong encodings (a redundant trailing
  /// zero group, or more than 10 bytes / bits beyond 64) are rejected so
  /// every decoded value re-encodes to the identical bytes.
  Status ReadVarint(uint64_t* out) {
    uint64_t value = 0;
    for (size_t i = 0; i < 10; ++i) {
      if (remaining() < 1) return Truncated("varint");
      const uint8_t byte = data_[pos_++];
      if (i == 9 && byte > 0x01) {
        return Status::InvalidArgument("varint overflows 64 bits");
      }
      value |= static_cast<uint64_t>(byte & 0x7f) << (7 * i);
      if ((byte & 0x80) == 0) {
        if (i > 0 && byte == 0) {
          return Status::InvalidArgument("non-minimal varint encoding");
        }
        *out = value;
        return Status::Ok();
      }
    }
    return Status::InvalidArgument("varint longer than 10 bytes");
  }

  Status ReadVarint32(uint32_t* out, const char* what) {
    uint64_t value = 0;
    PDMS_RETURN_IF_ERROR(ReadVarint(&value));
    if (value > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument(
          StrFormat("%s %llu exceeds 32 bits", what,
                    static_cast<unsigned long long>(value)));
    }
    *out = static_cast<uint32_t>(value);
    return Status::Ok();
  }

  /// A container count: additionally bounded by the bytes that could back
  /// `min_element_bytes`-sized elements, so forged counts can never drive
  /// an allocation larger than the input itself.
  Status ReadCount(size_t min_element_bytes, size_t* out, const char* what) {
    uint64_t value = 0;
    PDMS_RETURN_IF_ERROR(ReadVarint(&value));
    const size_t bound =
        min_element_bytes == 0 ? remaining() : remaining() / min_element_bytes;
    if (value > bound) {
      return Status::InvalidArgument(
          StrFormat("%s count %llu exceeds the %zu remaining input bytes",
                    what, static_cast<unsigned long long>(value), remaining()));
    }
    *out = static_cast<size_t>(value);
    return Status::Ok();
  }

  Status ReadFixed32(uint32_t* out) {
    if (remaining() < 4) return Truncated("fixed32");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *out = value;
    return Status::Ok();
  }

  Status ReadFixed64(uint64_t* out) {
    if (remaining() < 8) return Truncated("fixed64");
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *out = value;
    return Status::Ok();
  }

  Status ReadFixed16(uint16_t* out) {
    if (remaining() < 2) return Truncated("fixed16");
    *out = static_cast<uint16_t>(data_[pos_] |
                                 (static_cast<uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return Status::Ok();
  }

  Status ReadDouble(double* out) {
    uint64_t bits = 0;
    PDMS_RETURN_IF_ERROR(ReadFixed64(&bits));
    *out = std::bit_cast<double>(bits);
    return Status::Ok();
  }

  Status ReadString(std::string* out, const char* what) {
    size_t length = 0;
    PDMS_RETURN_IF_ERROR(ReadCount(1, &length, what));
    out->assign(reinterpret_cast<const char*>(data_.data() + pos_), length);
    pos_ += length;
    return Status::Ok();
  }

  Status ExpectDone(const char* what) {
    if (!Done()) {
      return Status::InvalidArgument(
          StrFormat("%zu trailing bytes after %s", remaining(), what));
    }
    return Status::Ok();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::InvalidArgument(
        StrFormat("truncated input while reading %s", what));
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

// --- Payload decoding ----------------------------------------------------------

Status DecodeProbe(Reader& reader, ProbeMessage* probe) {
  PDMS_RETURN_IF_ERROR(reader.ReadFixed32(&probe->origin));
  PDMS_RETURN_IF_ERROR(reader.ReadFixed32(&probe->ttl));
  size_t route_count = 0;
  PDMS_RETURN_IF_ERROR(reader.ReadCount(4, &route_count, "probe route"));
  probe->route.resize(route_count);
  for (EdgeId& edge : probe->route) {
    PDMS_RETURN_IF_ERROR(reader.ReadFixed32(&edge));
  }
  size_t hop_count = 0;
  PDMS_RETURN_IF_ERROR(reader.ReadCount(1, &hop_count, "probe trail"));
  probe->trail.resize(hop_count);
  for (auto& hop : probe->trail) {
    size_t attr_count = 0;
    PDMS_RETURN_IF_ERROR(reader.ReadCount(4, &attr_count, "probe trail hop"));
    hop.resize(attr_count);
    for (std::optional<AttributeId>& attr : hop) {
      uint32_t raw = 0;
      PDMS_RETURN_IF_ERROR(reader.ReadFixed32(&raw));
      if (raw == kNullAttributeWire) {
        attr = std::nullopt;
      } else {
        attr = raw;
      }
    }
  }
  return Status::Ok();
}

Status DecodeFeedback(Reader& reader, FeedbackAnnouncement* message) {
  uint8_t kind = 0;
  PDMS_RETURN_IF_ERROR(reader.ReadByte(&kind));
  if (kind > static_cast<uint8_t>(Closure::Kind::kParallelPaths)) {
    return Status::InvalidArgument(
        StrFormat("unknown closure kind %u", kind));
  }
  message->closure.kind = static_cast<Closure::Kind>(kind);
  uint64_t split = 0;
  PDMS_RETURN_IF_ERROR(reader.ReadVarint(&split));
  PDMS_RETURN_IF_ERROR(reader.ReadFixed32(&message->closure.source));
  PDMS_RETURN_IF_ERROR(reader.ReadFixed32(&message->closure.sink));
  size_t edge_count = 0;
  PDMS_RETURN_IF_ERROR(reader.ReadCount(4, &edge_count, "closure edge"));
  if (split > edge_count) {
    return Status::InvalidArgument(
        StrFormat("closure split %llu beyond its %zu edges",
                  static_cast<unsigned long long>(split), edge_count));
  }
  message->closure.split = static_cast<size_t>(split);
  message->closure.edges.resize(edge_count);
  for (EdgeId& edge : message->closure.edges) {
    PDMS_RETURN_IF_ERROR(reader.ReadFixed32(&edge));
  }
  PDMS_RETURN_IF_ERROR(reader.ReadDouble(&message->delta));
  size_t feedback_count = 0;
  // Min per entry: fixed32 root + sign byte + member-count varint.
  PDMS_RETURN_IF_ERROR(reader.ReadCount(6, &feedback_count, "feedback"));
  message->feedback.resize(feedback_count);
  for (AttributeFeedback& entry : message->feedback) {
    PDMS_RETURN_IF_ERROR(reader.ReadFixed32(&entry.root_attribute));
    uint8_t sign = 0;
    PDMS_RETURN_IF_ERROR(reader.ReadByte(&sign));
    if (sign > static_cast<uint8_t>(FeedbackSign::kNeutral)) {
      return Status::InvalidArgument(
          StrFormat("unknown feedback sign %u", sign));
    }
    entry.sign = static_cast<FeedbackSign>(sign);
    size_t member_count = 0;
    PDMS_RETURN_IF_ERROR(reader.ReadCount(8, &member_count, "feedback member"));
    entry.members.resize(member_count);
    for (MappingVarKey& member : entry.members) {
      PDMS_RETURN_IF_ERROR(reader.ReadFixed32(&member.edge));
      PDMS_RETURN_IF_ERROR(reader.ReadFixed32(&member.attribute));
    }
  }
  return Status::Ok();
}

Status DecodeBelief(Reader& reader, BeliefMessage* message) {
  PDMS_RETURN_IF_ERROR(reader.ReadVarint32(&message->epoch, "belief epoch"));
  PDMS_RETURN_IF_ERROR(reader.ReadVarint32(&message->ack, "belief ack"));
  PDMS_RETURN_IF_ERROR(
      reader.ReadVarint32(&message->value_bits, "belief value format"));
  if (message->value_bits != 0 &&
      (message->value_bits < 2 ||
       message->value_bits > kMaxValuePrecisionBits)) {
    return Status::InvalidArgument(
        StrFormat("belief value format %u outside [2, %u] (0 = raw doubles)",
                  message->value_bits, kMaxValuePrecisionBits));
  }
  const bool quantized = message->value_bits != 0;
  const int64_t quant_bound =
      quantized ? QuantBound(message->value_bits) : 0;
  size_t group_count = 0;
  // Min per group: alias token varint + entry-count varint.
  PDMS_RETURN_IF_ERROR(reader.ReadCount(2, &group_count, "belief group"));
  message->groups.resize(group_count);
  message->entries.clear();
  int64_t previous_alias = 0;
  for (BeliefGroup& group : message->groups) {
    uint64_t token = 0;
    PDMS_RETURN_IF_ERROR(reader.ReadVarint(&token));
    const bool has_id = (token & 1) != 0;
    const int64_t alias = previous_alias + UnZigZag(token >> 1);
    if (alias < 0 || alias >= static_cast<int64_t>(kMaxAliasesPerSession)) {
      return Status::OutOfRange(
          StrFormat("belief alias %lld outside the per-session bound",
                    static_cast<long long>(alias)));
    }
    group.alias = static_cast<uint32_t>(alias);
    previous_alias = alias;
    if (has_id) {
      PDMS_RETURN_IF_ERROR(reader.ReadFixed64(&group.id.hi));
      PDMS_RETURN_IF_ERROR(reader.ReadFixed64(&group.id.lo));
      if (group.id.IsNil()) {
        return Status::InvalidArgument(
            "belief group declares a nil fingerprint binding");
      }
    } else {
      group.id = FactorId{};
    }
    size_t entry_count = 0;
    // Min per entry: position-delta varint + two 8-byte doubles, or one
    // quantum varint under the quantized format.
    PDMS_RETURN_IF_ERROR(
        reader.ReadCount(quantized ? 2 : 17, &entry_count, "belief entry"));
    group.entry_begin = static_cast<uint32_t>(message->entries.size());
    group.entry_count = static_cast<uint32_t>(entry_count);
    int64_t previous_position = 0;
    for (size_t i = 0; i < entry_count; ++i) {
      uint64_t delta = 0;
      PDMS_RETURN_IF_ERROR(reader.ReadVarint(&delta));
      const int64_t position = previous_position + UnZigZag(delta);
      if (position < 0 ||
          position > std::numeric_limits<uint32_t>::max()) {
        return Status::OutOfRange(
            StrFormat("belief entry position %lld outside 32 bits",
                      static_cast<long long>(position)));
      }
      previous_position = position;
      BeliefEntry entry;
      entry.position = static_cast<uint32_t>(position);
      if (quantized) {
        uint64_t token = 0;
        PDMS_RETURN_IF_ERROR(reader.ReadVarint(&token));
        const int64_t quant = QuantFromWireToken(token);
        if (quant != kQuantPosInf && quant != kQuantNegInf &&
            (quant > quant_bound || quant < -quant_bound)) {
          return Status::OutOfRange(StrFormat(
              "belief quantum %lld outside the %u-bit precision bound",
              static_cast<long long>(quant), message->value_bits));
        }
        entry.quant = quant;
        entry.belief = DequantizeLogOdds(quant, message->value_bits);
      } else {
        PDMS_RETURN_IF_ERROR(reader.ReadDouble(&entry.belief.correct));
        PDMS_RETURN_IF_ERROR(reader.ReadDouble(&entry.belief.incorrect));
      }
      message->entries.push_back(entry);
    }
  }
  return Status::Ok();
}

Status DecodeQuery(Reader& reader, QueryMessage* message) {
  PDMS_RETURN_IF_ERROR(reader.ReadFixed64(&message->query_id));
  PDMS_RETURN_IF_ERROR(reader.ReadFixed32(&message->origin));
  PDMS_RETURN_IF_ERROR(reader.ReadFixed32(&message->ttl));
  std::string name;
  PDMS_RETURN_IF_ERROR(reader.ReadString(&name, "query name"));
  message->query = Query(std::move(name));
  size_t op_count = 0;
  // Min per op: kind byte + fixed32 attribute + literal-length varint.
  PDMS_RETURN_IF_ERROR(reader.ReadCount(6, &op_count, "query operation"));
  for (size_t i = 0; i < op_count; ++i) {
    uint8_t kind = 0;
    PDMS_RETURN_IF_ERROR(reader.ReadByte(&kind));
    if (kind > static_cast<uint8_t>(OpKind::kSelection)) {
      return Status::InvalidArgument(
          StrFormat("unknown query operation kind %u", kind));
    }
    uint32_t attribute = 0;
    PDMS_RETURN_IF_ERROR(reader.ReadFixed32(&attribute));
    std::string literal;
    PDMS_RETURN_IF_ERROR(reader.ReadString(&literal, "query literal"));
    if (static_cast<OpKind>(kind) == OpKind::kSelection) {
      message->query.AddSelection(attribute, std::move(literal));
    } else {
      if (!literal.empty()) {
        return Status::InvalidArgument(
            "query projection carries a selection literal");
      }
      message->query.AddProjection(attribute);
    }
  }
  size_t visited_count = 0;
  PDMS_RETURN_IF_ERROR(reader.ReadCount(4, &visited_count, "query visited"));
  message->visited.resize(visited_count);
  for (PeerId& peer : message->visited) {
    PDMS_RETURN_IF_ERROR(reader.ReadFixed32(&peer));
  }
  size_t piggyback_count = 0;
  // 16 fingerprint bytes + uint16 position + two doubles per update.
  PDMS_RETURN_IF_ERROR(reader.ReadCount(34, &piggyback_count, "piggyback"));
  message->piggyback.resize(piggyback_count);
  for (BeliefUpdate& update : message->piggyback) {
    PDMS_RETURN_IF_ERROR(reader.ReadFixed64(&update.factor.hi));
    PDMS_RETURN_IF_ERROR(reader.ReadFixed64(&update.factor.lo));
    uint16_t position = 0;
    PDMS_RETURN_IF_ERROR(reader.ReadFixed16(&position));
    update.position = position;
    PDMS_RETURN_IF_ERROR(reader.ReadDouble(&update.belief.correct));
    PDMS_RETURN_IF_ERROR(reader.ReadDouble(&update.belief.incorrect));
  }
  return Status::Ok();
}

}  // namespace

size_t EncodedPayloadSize(const Payload& payload) {
  CountingSink sink;
  EncodePayloadTo(payload, sink);
  return sink.size;
}

void EncodePayload(const Payload& payload, std::vector<uint8_t>* out) {
  const size_t before = out->size();
  AppendSink sink{out};
  EncodePayloadTo(payload, sink);
  (void)before;
  assert(out->size() - before == PayloadWireBreakdown(payload).bytes &&
         "encoder and wire-size accounting disagree");
}

Result<Payload> DecodePayload(MessageKind kind,
                              std::span<const uint8_t> bytes) {
  Reader reader(bytes);
  Payload payload;
  switch (kind) {
    case MessageKind::kProbe: {
      ProbeMessage probe;
      PDMS_RETURN_IF_ERROR(DecodeProbe(reader, &probe));
      payload = std::move(probe);
      break;
    }
    case MessageKind::kFeedback: {
      FeedbackAnnouncement feedback;
      PDMS_RETURN_IF_ERROR(DecodeFeedback(reader, &feedback));
      payload = std::move(feedback);
      break;
    }
    case MessageKind::kBelief: {
      BeliefMessage belief;
      PDMS_RETURN_IF_ERROR(DecodeBelief(reader, &belief));
      payload = std::move(belief);
      break;
    }
    case MessageKind::kQuery: {
      QueryMessage query;
      PDMS_RETURN_IF_ERROR(DecodeQuery(reader, &query));
      payload = std::move(query);
      break;
    }
    default:
      return Status::InvalidArgument(
          StrFormat("unknown message kind %u", static_cast<unsigned>(kind)));
  }
  PDMS_RETURN_IF_ERROR(reader.ExpectDone("payload"));
  return payload;
}

// --- Frame codec ---------------------------------------------------------------

namespace {

struct Crc32Table {
  uint32_t entries[256];
  constexpr Crc32Table() : entries{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xedb88320u : 0);
      }
      entries[i] = crc;
    }
  }
};

constexpr Crc32Table kCrc32Table;

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data) {
  uint32_t crc = 0xffffffffu;
  for (uint8_t byte : data) {
    crc = (crc >> 8) ^ kCrc32Table.entries[(crc ^ byte) & 0xff];
  }
  return crc ^ 0xffffffffu;
}

FrameType FrameTypeOf(const Frame& frame) {
  return static_cast<FrameType>(frame.index());
}

namespace {

template <typename Sink>
void EncodeFrameBodyTo(const Frame& frame, Sink& sink) {
  sink.Byte(kWireFormatVersion);
  sink.Byte(static_cast<uint8_t>(FrameTypeOf(frame)));
  std::visit(
      [&sink](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, DataFrame>) {
          PutVarint(sink, f.from);
          PutVarint(sink, f.to);
          sink.Byte(f.via ? 1 : 0);
          if (f.via) PutVarint(sink, *f.via);
          PutVarint(sink, f.deliver_at);
          PutVarint(sink, f.seq);
          sink.Byte(static_cast<uint8_t>(KindOf(f.payload)));
          EncodePayloadTo(f.payload, sink);
        } else if constexpr (std::is_same_v<T, HelloFrame>) {
          PutVarint(sink, f.shard);
          PutVarint(sink, f.shard_count);
          PutVarint(sink, f.peer_count);
          PutFixed64(sink, f.session_id);
          PutVarint(sink, f.next_seq);
        } else if constexpr (std::is_same_v<T, MarkFrame>) {
          PutVarint(sink, f.shard);
          PutVarint(sink, f.phase);
          PutVarint(sink, f.index);
          PutVarint(sink, f.frames_sent);
          PutVarint(sink, f.updates_sent);
          PutDouble(sink, f.max_change);
          sink.Byte(f.pending ? 1 : 0);
        } else if constexpr (std::is_same_v<T, QueryRequestFrame>) {
          PutVarint(sink, f.request_id);
          PutVarint(sink, f.origin);
          PutVarint(sink, f.ttl);
          PutString(sink, f.text);
        } else if constexpr (std::is_same_v<T, QueryResponseFrame>) {
          PutVarint(sink, f.request_id);
          sink.Byte(f.ok ? 1 : 0);
          PutString(sink, f.error);
          PutVarint(sink, f.reached);
          PutVarint(sink, f.rows.size());
          for (const std::string& row : f.rows) PutString(sink, row);
        } else if constexpr (std::is_same_v<T, LinkAckFrame>) {
          PutVarint(sink, f.shard);
          PutFixed64(sink, f.session_id);
          PutVarint(sink, f.next_expected);
        } else if constexpr (std::is_same_v<T, RejoinFrame>) {
          PutVarint(sink, f.shard);
          PutFixed64(sink, f.state_epoch);
          PutVarint(sink, f.round);
          PutString(sink, f.address);
        } else {
          static_assert(std::is_same_v<T, RejoinAckFrame>);
          PutVarint(sink, f.shard);
          PutVarint(sink, f.round);
          sink.Byte(f.accepted ? 1 : 0);
          PutString(sink, f.reason);
        }
      },
      frame);
}

Status ReadBool(Reader& reader, bool* out, const char* what) {
  uint8_t byte = 0;
  PDMS_RETURN_IF_ERROR(reader.ReadByte(&byte));
  if (byte > 1) {
    return Status::InvalidArgument(
        StrFormat("%s flag byte %u is not 0/1", what, byte));
  }
  *out = byte != 0;
  return Status::Ok();
}

}  // namespace

void EncodeFrame(const Frame& frame, uint64_t link_seq,
                 std::vector<uint8_t>* out) {
  CountingSink counter;
  PutVarint(counter, link_seq);
  EncodeFrameBodyTo(frame, counter);
  assert(counter.size <= kMaxFrameBytes && "frame exceeds kMaxFrameBytes");
  AppendSink sink{out};
  PutFixed32(sink, static_cast<uint32_t>(counter.size));
  const size_t crc_at = out->size();
  PutFixed32(sink, 0);  // checksum backpatched below
  const size_t covered_at = out->size();
  PutVarint(sink, link_seq);
  EncodeFrameBodyTo(frame, sink);
  const uint32_t crc = Crc32(
      std::span<const uint8_t>(out->data() + covered_at,
                               out->size() - covered_at));
  for (int i = 0; i < 4; ++i) {
    (*out)[crc_at + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
}

void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out) {
  EncodeFrame(frame, 0, out);
}

Result<Frame> DecodeFrameBody(std::span<const uint8_t> body) {
  Reader reader(body);
  uint8_t version = 0;
  PDMS_RETURN_IF_ERROR(reader.ReadByte(&version));
  if (version != kWireFormatVersion) {
    return Status::FailedPrecondition(
        StrFormat("wire format version %u, expected %u", version,
                  kWireFormatVersion));
  }
  uint8_t type = 0;
  PDMS_RETURN_IF_ERROR(reader.ReadByte(&type));
  Frame frame;
  switch (static_cast<FrameType>(type)) {
    case FrameType::kData: {
      DataFrame data;
      PDMS_RETURN_IF_ERROR(reader.ReadVarint32(&data.from, "frame sender"));
      PDMS_RETURN_IF_ERROR(reader.ReadVarint32(&data.to, "frame recipient"));
      bool has_via = false;
      PDMS_RETURN_IF_ERROR(ReadBool(reader, &has_via, "via"));
      if (has_via) {
        uint32_t via = 0;
        PDMS_RETURN_IF_ERROR(reader.ReadVarint32(&via, "frame via edge"));
        data.via = via;
      }
      PDMS_RETURN_IF_ERROR(reader.ReadVarint(&data.deliver_at));
      PDMS_RETURN_IF_ERROR(reader.ReadVarint(&data.seq));
      uint8_t kind = 0;
      PDMS_RETURN_IF_ERROR(reader.ReadByte(&kind));
      if (kind >= kMessageKindCount) {
        return Status::InvalidArgument(
            StrFormat("unknown payload kind %u", kind));
      }
      const size_t payload_bytes = reader.remaining();
      PDMS_ASSIGN_OR_RETURN(
          data.payload,
          DecodePayload(static_cast<MessageKind>(kind),
                        body.subspan(body.size() - payload_bytes)));
      frame = std::move(data);
      return frame;  // DecodePayload consumed the rest; skip ExpectDone.
    }
    case FrameType::kHello: {
      HelloFrame hello;
      PDMS_RETURN_IF_ERROR(reader.ReadVarint32(&hello.shard, "hello shard"));
      PDMS_RETURN_IF_ERROR(
          reader.ReadVarint32(&hello.shard_count, "hello shard count"));
      PDMS_RETURN_IF_ERROR(reader.ReadVarint(&hello.peer_count));
      PDMS_RETURN_IF_ERROR(reader.ReadFixed64(&hello.session_id));
      PDMS_RETURN_IF_ERROR(reader.ReadVarint(&hello.next_seq));
      frame = hello;
      break;
    }
    case FrameType::kMark: {
      MarkFrame mark;
      PDMS_RETURN_IF_ERROR(reader.ReadVarint32(&mark.shard, "mark shard"));
      PDMS_RETURN_IF_ERROR(reader.ReadVarint32(&mark.phase, "mark phase"));
      PDMS_RETURN_IF_ERROR(reader.ReadVarint(&mark.index));
      PDMS_RETURN_IF_ERROR(reader.ReadVarint(&mark.frames_sent));
      PDMS_RETURN_IF_ERROR(reader.ReadVarint(&mark.updates_sent));
      PDMS_RETURN_IF_ERROR(reader.ReadDouble(&mark.max_change));
      PDMS_RETURN_IF_ERROR(ReadBool(reader, &mark.pending, "mark pending"));
      frame = mark;
      break;
    }
    case FrameType::kQueryRequest: {
      QueryRequestFrame request;
      PDMS_RETURN_IF_ERROR(reader.ReadVarint(&request.request_id));
      PDMS_RETURN_IF_ERROR(
          reader.ReadVarint32(&request.origin, "request origin"));
      PDMS_RETURN_IF_ERROR(reader.ReadVarint32(&request.ttl, "request ttl"));
      PDMS_RETURN_IF_ERROR(reader.ReadString(&request.text, "request text"));
      frame = std::move(request);
      break;
    }
    case FrameType::kQueryResponse: {
      QueryResponseFrame response;
      PDMS_RETURN_IF_ERROR(reader.ReadVarint(&response.request_id));
      PDMS_RETURN_IF_ERROR(ReadBool(reader, &response.ok, "response ok"));
      PDMS_RETURN_IF_ERROR(reader.ReadString(&response.error, "response error"));
      PDMS_RETURN_IF_ERROR(reader.ReadVarint(&response.reached));
      size_t row_count = 0;
      PDMS_RETURN_IF_ERROR(reader.ReadCount(1, &row_count, "response row"));
      response.rows.resize(row_count);
      for (std::string& row : response.rows) {
        PDMS_RETURN_IF_ERROR(reader.ReadString(&row, "response row text"));
      }
      frame = std::move(response);
      break;
    }
    case FrameType::kLinkAck: {
      LinkAckFrame ack;
      PDMS_RETURN_IF_ERROR(reader.ReadVarint32(&ack.shard, "ack shard"));
      PDMS_RETURN_IF_ERROR(reader.ReadFixed64(&ack.session_id));
      PDMS_RETURN_IF_ERROR(reader.ReadVarint(&ack.next_expected));
      frame = ack;
      break;
    }
    case FrameType::kRejoin: {
      RejoinFrame rejoin;
      PDMS_RETURN_IF_ERROR(reader.ReadVarint32(&rejoin.shard, "rejoin shard"));
      PDMS_RETURN_IF_ERROR(reader.ReadFixed64(&rejoin.state_epoch));
      PDMS_RETURN_IF_ERROR(reader.ReadVarint(&rejoin.round));
      PDMS_RETURN_IF_ERROR(reader.ReadString(&rejoin.address, "rejoin address"));
      frame = std::move(rejoin);
      break;
    }
    case FrameType::kRejoinAck: {
      RejoinAckFrame ack;
      PDMS_RETURN_IF_ERROR(reader.ReadVarint32(&ack.shard, "rejoin-ack shard"));
      PDMS_RETURN_IF_ERROR(reader.ReadVarint(&ack.round));
      PDMS_RETURN_IF_ERROR(ReadBool(reader, &ack.accepted, "rejoin-ack accepted"));
      PDMS_RETURN_IF_ERROR(reader.ReadString(&ack.reason, "rejoin-ack reason"));
      frame = std::move(ack);
      break;
    }
    default:
      return Status::InvalidArgument(
          StrFormat("unknown frame type %u", type));
  }
  PDMS_RETURN_IF_ERROR(reader.ExpectDone("frame"));
  return frame;
}

// --- FrameAssembler ------------------------------------------------------------

void FrameAssembler::Feed(std::span<const uint8_t> data) {
  // Compact lazily: only when the dead prefix dominates the buffer.
  if (offset_ > 0 && offset_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + offset_);
    offset_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

Result<std::optional<Frame>> FrameAssembler::Next() {
  const size_t available = buffer_.size() - offset_;
  if (available < kFrameHeaderBytes) return std::optional<Frame>();
  uint32_t length = 0;
  uint32_t expected_crc = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(buffer_[offset_ + i]) << (8 * i);
    expected_crc |= static_cast<uint32_t>(buffer_[offset_ + 4 + i]) << (8 * i);
  }
  if (length < 3) {
    return Status::InvalidArgument(
        StrFormat("frame length %u below the seq+version+type header",
                  length));
  }
  if (length > kMaxFrameBytes) {
    return Status::OutOfRange(
        StrFormat("frame length %u exceeds the %zu-byte bound", length,
                  kMaxFrameBytes));
  }
  if (available < kFrameHeaderBytes + length) return std::optional<Frame>();
  const std::span<const uint8_t> covered(
      buffer_.data() + offset_ + kFrameHeaderBytes, length);
  const uint32_t actual_crc = Crc32(covered);
  if (actual_crc != expected_crc) {
    return Status::DataLoss(
        StrFormat("frame checksum mismatch (%08x != %08x) — corrupt stream",
                  actual_crc, expected_crc));
  }
  Reader seq_reader(covered);
  uint64_t link_seq = 0;
  PDMS_RETURN_IF_ERROR(seq_reader.ReadVarint(&link_seq));
  PDMS_ASSIGN_OR_RETURN(Frame frame,
                        DecodeFrameBody(covered.subspan(
                            covered.size() - seq_reader.remaining())));
  last_seq_ = link_seq;
  offset_ += kFrameHeaderBytes + length;
  if (offset_ == buffer_.size()) {
    buffer_.clear();
    offset_ = 0;
  }
  return std::optional<Frame>(std::move(frame));
}

}  // namespace pdms
