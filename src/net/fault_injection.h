#ifndef PDMS_NET_FAULT_INJECTION_H_
#define PDMS_NET_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "net/message.h"
#include "pdms/transport.h"

namespace pdms {

// --- Fault plans ----------------------------------------------------------------
//
// One declarative description of how a network should misbehave, shared by
// the two injection points:
//  * `FaultInjectingTransport` (below) — an envelope-level decorator over
//    any `Transport`, for robustness benches and engine tests; injected
//    faults are *visible* to the engine (a dropped envelope is gone), so
//    runs measure convergence quality, not bitwise equality.
//  * `SocketTransportOptions::link_fault_plan` — frame-level injection on
//    the real TCP links, *below* the retransmission layer; every fault is
//    masked by recovery, so posteriors stay bitwise-identical to the
//    fault-free run (the PR's standing invariant under fire).
//
// All draws are pure functions of (seed, stream, seq, attempt): re-running
// the same plan over the same traffic produces the same faults, and a
// retransmitted frame (attempt+1) gets a fresh draw, so drop_rate < 1
// always lets a frame through eventually.

struct FaultPlan {
  uint64_t seed = 0;

  /// Per-event probabilities in [0, 1].
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double reorder_rate = 0.0;
  double corrupt_rate = 0.0;  ///< flip one bit (socket: always detected by CRC)

  /// Socket links only: probability of severing the TCP connection after
  /// a write (the reliability layer reconnects and resumes).
  double link_kill_rate = 0.0;

  /// Envelope decorator only: delayed envelopes are held up to this many
  /// extra ticks (0 disables delays).
  uint64_t delay_ticks_max = 0;

  bool Enabled() const {
    return drop_rate > 0 || duplicate_rate > 0 || reorder_rate > 0 ||
           corrupt_rate > 0 || link_kill_rate > 0 || delay_ticks_max > 0;
  }
};

/// The deterministic verdict for one transmission event. Fields are drawn
/// independently; consumers decide precedence (e.g. a dropped frame is
/// never also duplicated).
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;
  bool corrupt = false;
  bool kill_link = false;
  uint64_t delay_ticks = 0;      ///< 0 = none, else in [1, delay_ticks_max]
  uint64_t corrupt_entropy = 0;  ///< bit-position source for the corruptor
};

/// Draws the faults for event `seq` of `stream` on transmission `attempt`.
/// `stream` namespaces independent fault sequences (e.g. one per link);
/// `attempt` distinguishes retransmissions of the same frame.
FaultDecision DrawFaults(const FaultPlan& plan, uint64_t stream, uint64_t seq,
                         uint32_t attempt);

// --- Behavioral (Byzantine) faults ----------------------------------------------
//
// `FaultPlan` perturbs the *channel*; `ByzantinePlan` perturbs the *peers*:
// a seeded set of adversaries forge the belief values inside their own
// outgoing bundles — lies redrawn every round, optional value inversion,
// within-bundle equivocation, and colluding groups that cross-confirm the
// same forged values. Like link faults, every decision is a pure function
// of (seed, round, sender, alias, position), so chaos runs replay exactly
// and stay bitwise parallel-deterministic: forging happens at send time on
// the engine's canonical serial send path, never on a worker thread.

struct ByzantinePlan {
  uint64_t seed = 0;

  /// Per-entry probability that an adversary replaces the true µ value
  /// with a forged log-odds, redrawn every round (so lies oscillate — the
  /// behavior the admission guard's flip detector keys on).
  double lie_probability = 0.0;

  /// Forged values are the *negated* true log-odds instead of random
  /// draws: the adversary pushes each belief toward the opposite verdict.
  bool invert_values = false;

  /// Per-entry probability that an adversary additionally emits a second,
  /// conflicting entry for the same position in the same bundle
  /// (within-round equivocation, directly observable by the receiver).
  double equivocate_rate = 0.0;

  /// The misbehaving peers, ascending. Everyone else sends honestly.
  std::vector<PeerId> adversaries;

  /// Colluding group: forged-value draws omit the sender from the key, so
  /// every adversary forges the *same* value for the same (round, alias,
  /// position) — mutually corroborating lies.
  bool collude = false;

  bool Enabled() const {
    return !adversaries.empty() &&
           (lie_probability > 0 || equivocate_rate > 0);
  }

  /// Binary search over the sorted adversary list.
  bool IsAdversary(PeerId peer) const;
};

/// Rewrites one outgoing belief bundle of an adversary per `plan`: lied
/// entries get forged values (negated true log-odds under
/// `invert_values`, a seeded uniform log-odds otherwise), equivocated
/// entries are duplicated with a second conflicting value for the same
/// position. A no-op for honest senders and disabled plans.
///
/// `group_ids[i]` must be the full factor id of `bundle->groups[i]`:
/// draw keys use *global* factor identity (not the link-local alias), so
/// colluding senders forge identical values for the same factor position
/// — which is why this runs at bundle construction inside the peer,
/// where replica identity is at hand. When the bundle declares a
/// quantization tier the forged entries are re-quantized consistently
/// (an adversary controls its own sender; its wire format stays
/// self-consistent, so forged values must be caught semantically, not
/// syntactically). The adversary's own replica state stays honest; only
/// the wire is poisoned. Returns the number of forged entries.
uint64_t ApplyByzantineFaults(const ByzantinePlan& plan, PeerId sender,
                              PeerId recipient, uint64_t round,
                              std::span<const FactorId> group_ids,
                              BeliefMessage* bundle);

/// Plan + injection ledger in one object, for benches and tests that
/// drive `ApplyByzantineFaults` outside a peer. Thread-safe.
class ByzantinePeerDecorator {
 public:
  explicit ByzantinePeerDecorator(ByzantinePlan plan) : plan_(std::move(plan)) {}

  const ByzantinePlan& plan() const { return plan_; }
  bool enabled() const { return plan_.Enabled(); }

  /// Applies the plan to one outgoing bundle of `sender` -> `recipient`
  /// at logical time `round` (any per-round monotone clock shared across
  /// parallelism levels; peers use their local round counter).
  void DecorateBundle(PeerId sender, PeerId recipient, uint64_t round,
                      std::span<const FactorId> group_ids,
                      BeliefMessage* bundle) const;

  uint64_t forged_entries() const;

 private:
  ByzantinePlan plan_;
  mutable std::mutex mutex_;
  mutable uint64_t forged_entries_ = 0;
};

/// Ledger of injected faults, separate from `TransportStats` (which only
/// see the traffic that survived injection).
struct FaultStats {
  uint64_t events = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t corrupted = 0;
  uint64_t corrupt_rejected = 0;  ///< corruption the codec refused → dropped
  uint64_t delayed = 0;
  uint64_t links_killed = 0;
};

// --- Envelope-level decorator ---------------------------------------------------

/// Wraps any `Transport` and perturbs the envelope stream per a
/// `FaultPlan`: drops, duplicates, adjacent-swap reorders, delays (held
/// envelopes re-enter just before the next tick) and bit-corruptions
/// (payload is encoded, one bit flipped, then strictly re-decoded — a flip
/// the codec rejects becomes a drop, mirroring how the framed wire treats
/// corruption).
///
/// Determinism: decisions are keyed on a per-instance event counter, so a
/// serially-driven run (parallelism 1) replays exactly for a given seed.
/// Under parallel sends the arrival order of events at the decorator is
/// scheduler-dependent, so use serial rounds when comparing runs.
///
/// `stats()` forwards the inner transport's counters; injected faults are
/// accounted in `fault_stats()` instead (a dropped envelope never reaches
/// the inner transport at all).
class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultPlan plan);
  ~FaultInjectingTransport() override;

  std::string_view name() const override { return "fault"; }
  size_t peer_count() const override { return inner_->peer_count(); }
  uint64_t now() const override { return inner_->now(); }
  void AdvanceTick() override;
  void Send(PeerId from, PeerId to, std::optional<EdgeId> via,
            Payload payload) override;
  std::vector<Envelope> Drain(PeerId peer) override {
    return inner_->Drain(peer);
  }
  bool HasPendingMessages() const override;
  const TransportStats& stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

  Transport& inner() { return *inner_; }
  const FaultPlan& plan() const { return plan_; }
  FaultStats fault_stats() const;

  /// Swaps the active plan mid-run. Lets a bench run discovery fault-free
  /// and then arm faults for the belief rounds alone, mirroring the
  /// paper's Figure 11 setup (only belief messages are lossy).
  void set_plan(const FaultPlan& plan);

 private:
  struct Held {
    PeerId from = 0;
    PeerId to = 0;
    std::optional<EdgeId> via;
    Payload payload;
    uint64_t release_in = 0;  ///< ticks until forwarding
  };

  /// Must hold `mutex_`.
  void ForwardLocked(PeerId from, PeerId to, std::optional<EdgeId> via,
                     Payload payload);
  void FlushReorderSlotLocked();

  std::unique_ptr<Transport> inner_;
  FaultPlan plan_;

  mutable std::mutex mutex_;
  uint64_t event_seq_ = 0;
  std::optional<Held> reorder_slot_;
  std::vector<Held> delayed_;
  FaultStats fault_stats_;
};

}  // namespace pdms

#endif  // PDMS_NET_FAULT_INJECTION_H_
