#ifndef PDMS_NET_FAULT_INJECTION_H_
#define PDMS_NET_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "net/message.h"
#include "pdms/transport.h"

namespace pdms {

// --- Fault plans ----------------------------------------------------------------
//
// One declarative description of how a network should misbehave, shared by
// the two injection points:
//  * `FaultInjectingTransport` (below) — an envelope-level decorator over
//    any `Transport`, for robustness benches and engine tests; injected
//    faults are *visible* to the engine (a dropped envelope is gone), so
//    runs measure convergence quality, not bitwise equality.
//  * `SocketTransportOptions::link_fault_plan` — frame-level injection on
//    the real TCP links, *below* the retransmission layer; every fault is
//    masked by recovery, so posteriors stay bitwise-identical to the
//    fault-free run (the PR's standing invariant under fire).
//
// All draws are pure functions of (seed, stream, seq, attempt): re-running
// the same plan over the same traffic produces the same faults, and a
// retransmitted frame (attempt+1) gets a fresh draw, so drop_rate < 1
// always lets a frame through eventually.

struct FaultPlan {
  uint64_t seed = 0;

  /// Per-event probabilities in [0, 1].
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double reorder_rate = 0.0;
  double corrupt_rate = 0.0;  ///< flip one bit (socket: always detected by CRC)

  /// Socket links only: probability of severing the TCP connection after
  /// a write (the reliability layer reconnects and resumes).
  double link_kill_rate = 0.0;

  /// Envelope decorator only: delayed envelopes are held up to this many
  /// extra ticks (0 disables delays).
  uint64_t delay_ticks_max = 0;

  bool Enabled() const {
    return drop_rate > 0 || duplicate_rate > 0 || reorder_rate > 0 ||
           corrupt_rate > 0 || link_kill_rate > 0 || delay_ticks_max > 0;
  }
};

/// The deterministic verdict for one transmission event. Fields are drawn
/// independently; consumers decide precedence (e.g. a dropped frame is
/// never also duplicated).
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;
  bool corrupt = false;
  bool kill_link = false;
  uint64_t delay_ticks = 0;      ///< 0 = none, else in [1, delay_ticks_max]
  uint64_t corrupt_entropy = 0;  ///< bit-position source for the corruptor
};

/// Draws the faults for event `seq` of `stream` on transmission `attempt`.
/// `stream` namespaces independent fault sequences (e.g. one per link);
/// `attempt` distinguishes retransmissions of the same frame.
FaultDecision DrawFaults(const FaultPlan& plan, uint64_t stream, uint64_t seq,
                         uint32_t attempt);

/// Ledger of injected faults, separate from `TransportStats` (which only
/// see the traffic that survived injection).
struct FaultStats {
  uint64_t events = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t corrupted = 0;
  uint64_t corrupt_rejected = 0;  ///< corruption the codec refused → dropped
  uint64_t delayed = 0;
  uint64_t links_killed = 0;
};

// --- Envelope-level decorator ---------------------------------------------------

/// Wraps any `Transport` and perturbs the envelope stream per a
/// `FaultPlan`: drops, duplicates, adjacent-swap reorders, delays (held
/// envelopes re-enter just before the next tick) and bit-corruptions
/// (payload is encoded, one bit flipped, then strictly re-decoded — a flip
/// the codec rejects becomes a drop, mirroring how the framed wire treats
/// corruption).
///
/// Determinism: decisions are keyed on a per-instance event counter, so a
/// serially-driven run (parallelism 1) replays exactly for a given seed.
/// Under parallel sends the arrival order of events at the decorator is
/// scheduler-dependent, so use serial rounds when comparing runs.
///
/// `stats()` forwards the inner transport's counters; injected faults are
/// accounted in `fault_stats()` instead (a dropped envelope never reaches
/// the inner transport at all).
class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultPlan plan);
  ~FaultInjectingTransport() override;

  std::string_view name() const override { return "fault"; }
  size_t peer_count() const override { return inner_->peer_count(); }
  uint64_t now() const override { return inner_->now(); }
  void AdvanceTick() override;
  void Send(PeerId from, PeerId to, std::optional<EdgeId> via,
            Payload payload) override;
  std::vector<Envelope> Drain(PeerId peer) override {
    return inner_->Drain(peer);
  }
  bool HasPendingMessages() const override;
  const TransportStats& stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

  Transport& inner() { return *inner_; }
  const FaultPlan& plan() const { return plan_; }
  FaultStats fault_stats() const;

  /// Swaps the active plan mid-run. Lets a bench run discovery fault-free
  /// and then arm faults for the belief rounds alone, mirroring the
  /// paper's Figure 11 setup (only belief messages are lossy).
  void set_plan(const FaultPlan& plan);

 private:
  struct Held {
    PeerId from = 0;
    PeerId to = 0;
    std::optional<EdgeId> via;
    Payload payload;
    uint64_t release_in = 0;  ///< ticks until forwarding
  };

  /// Must hold `mutex_`.
  void ForwardLocked(PeerId from, PeerId to, std::optional<EdgeId> via,
                     Payload payload);
  void FlushReorderSlotLocked();

  std::unique_ptr<Transport> inner_;
  FaultPlan plan_;

  mutable std::mutex mutex_;
  uint64_t event_seq_ = 0;
  std::optional<Held> reorder_slot_;
  std::vector<Held> delayed_;
  FaultStats fault_stats_;
};

}  // namespace pdms

#endif  // PDMS_NET_FAULT_INJECTION_H_
