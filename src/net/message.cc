#include "net/message.h"

#include <algorithm>

#include "util/string_util.h"

namespace pdms {

std::string MappingVarKey::ToString() const {
  if (attribute == kWholeMapping) return StrFormat("m(e%u)", edge);
  return StrFormat("m(e%u,a%u)", edge, attribute);
}

FactorKey FactorKey::Make(const Closure& closure, AttributeId root_attribute) {
  // Canonical form: kind prefix + sorted member edges + root peer (cycles
  // are announced only by their minimum-id member, so source is canonical)
  // + sink/split for parallel paths + root attribute. The key must identify
  // the factor *content*: the same edge set rooted at a different peer
  // induces a different attribute chain and therefore a different factor.
  std::vector<EdgeId> sorted = closure.edges;
  std::sort(sorted.begin(), sorted.end());
  std::string value = closure.kind == Closure::Kind::kCycle ? "c:" : "p:";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) value += ',';
    value += StrFormat("e%u", sorted[i]);
  }
  value += StrFormat(":s%u", closure.source);
  if (closure.kind == Closure::Kind::kParallelPaths) {
    value += StrFormat(":t%u:k%zu", closure.sink, closure.split);
  }
  value += StrFormat("@a%u", root_attribute);
  return FactorKey{std::move(value)};
}

std::string_view MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kProbe:
      return "probe";
    case MessageKind::kFeedback:
      return "feedback";
    case MessageKind::kBelief:
      return "belief";
    case MessageKind::kQuery:
      return "query";
  }
  return "?";
}

MessageKind KindOf(const Payload& payload) {
  return static_cast<MessageKind>(payload.index());
}

}  // namespace pdms
