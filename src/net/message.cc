#include "net/message.h"

#include <algorithm>
#include <type_traits>

#include "util/string_util.h"

namespace pdms {

std::string MappingVarKey::ToString() const {
  if (attribute == kWholeMapping) return StrFormat("m(e%u)", edge);
  return StrFormat("m(e%u,a%u)", edge, attribute);
}

FactorKey FactorKey::Make(const Closure& closure, AttributeId root_attribute) {
  // Canonical form: kind prefix + sorted member edges + root peer (cycles
  // are announced only by their minimum-id member, so source is canonical)
  // + sink/split for parallel paths + root attribute. The key must identify
  // the factor *content*: the same edge set rooted at a different peer
  // induces a different attribute chain and therefore a different factor.
  std::vector<EdgeId> sorted = closure.edges;
  std::sort(sorted.begin(), sorted.end());
  std::string value = closure.kind == Closure::Kind::kCycle ? "c:" : "p:";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) value += ',';
    value += StrFormat("e%u", sorted[i]);
  }
  value += StrFormat(":s%u", closure.source);
  if (closure.kind == Closure::Kind::kParallelPaths) {
    value += StrFormat(":t%u:k%zu", closure.sink, closure.split);
  }
  value += StrFormat("@a%u", root_attribute);
  return FactorKey{std::move(value)};
}

std::string_view MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kProbe:
      return "probe";
    case MessageKind::kFeedback:
      return "feedback";
    case MessageKind::kBelief:
      return "belief";
    case MessageKind::kQuery:
      return "query";
  }
  return "?";
}

MessageKind KindOf(const Payload& payload) {
  return static_cast<MessageKind>(payload.index());
}

namespace {

/// Belief update on the wire: factor key string + (edge, attribute) +
/// two doubles.
size_t WireSize(const BeliefUpdate& update) {
  return update.factor.value.size() + sizeof(MappingVarKey) + 2 * sizeof(double);
}

size_t WireSize(const Closure& closure) {
  return sizeof(closure.kind) + sizeof(closure.split) + sizeof(closure.source) +
         sizeof(closure.sink) + closure.edges.size() * sizeof(EdgeId);
}

}  // namespace

size_t ApproximateWireSize(const Payload& payload) {
  return std::visit(
      [](const auto& message) -> size_t {
        using T = std::decay_t<decltype(message)>;
        if constexpr (std::is_same_v<T, ProbeMessage>) {
          size_t size = sizeof(message.origin) + sizeof(message.ttl) +
                        message.route.size() * sizeof(EdgeId);
          for (const auto& hop : message.trail) {
            // One attribute id (⊥ encoded in-band) per attribute per hop.
            size += hop.size() * sizeof(AttributeId);
          }
          return size;
        } else if constexpr (std::is_same_v<T, FeedbackAnnouncement>) {
          size_t size = WireSize(message.closure) + sizeof(message.delta);
          for (const AttributeFeedback& entry : message.feedback) {
            size += sizeof(entry.root_attribute) + sizeof(entry.sign) +
                    entry.members.size() * sizeof(MappingVarKey);
          }
          return size;
        } else if constexpr (std::is_same_v<T, BeliefMessage>) {
          size_t size = 0;
          for (const BeliefUpdate& update : message.updates) {
            size += WireSize(update);
          }
          return size;
        } else {
          static_assert(std::is_same_v<T, QueryMessage>);
          size_t size = sizeof(message.query_id) + sizeof(message.origin) +
                        sizeof(message.ttl) +
                        message.visited.size() * sizeof(PeerId);
          for (const Operation& op : message.query.operations()) {
            size += sizeof(op.kind) + sizeof(op.attribute) + op.literal.size();
          }
          for (const BeliefUpdate& update : message.piggyback) {
            size += WireSize(update);
          }
          return size;
        }
      },
      payload);
}

}  // namespace pdms
