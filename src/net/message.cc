#include "net/message.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <type_traits>

#include "net/codec.h"
#include "util/string_util.h"

namespace pdms {

std::string MappingVarKey::ToString() const {
  if (attribute == kWholeMapping) return StrFormat("m(e%u)", edge);
  return StrFormat("m(e%u,a%u)", edge, attribute);
}

namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mixer.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Two independent 64-bit mixing lanes absorbed word by word. The lanes
/// start from distinct constants and perturb each word differently, so the
/// combined 128-bit state avalanches on every input bit. Deterministic
/// across platforms and runs — the fingerprint is a wire identity, never a
/// per-process hash.
struct Fingerprint128 {
  uint64_t hi = 0x13198a2e03707344ull;  // pi fractional digits
  uint64_t lo = 0x243f6a8885a308d3ull;

  void Absorb(uint64_t word) {
    lo = Mix64(lo ^ word);
    hi = Mix64(hi + (word ^ 0xa4093822299f31d0ull));
  }
};

}  // namespace

FactorId FactorId::Make(const Closure& closure, AttributeId root_attribute) {
  // Canonical content: kind + sorted member edges + root peer (cycles are
  // announced only by their minimum-id member, so source is canonical) +
  // sink/split for parallel paths + root attribute. The id must identify
  // the factor *content*: the same edge set rooted at a different peer
  // induces a different attribute chain and therefore a different factor.
  std::vector<EdgeId> sorted = closure.edges;
  std::sort(sorted.begin(), sorted.end());
  Fingerprint128 fp;
  fp.Absorb(closure.kind == Closure::Kind::kCycle ? 'c' : 'p');
  fp.Absorb(sorted.size());
  for (EdgeId edge : sorted) fp.Absorb(edge);
  fp.Absorb(closure.source);
  if (closure.kind == Closure::Kind::kParallelPaths) {
    fp.Absorb(closure.sink);
    fp.Absorb(closure.split);
  }
  fp.Absorb(root_attribute);
  return FactorId{fp.hi, fp.lo};
}

std::string FactorId::ToString() const {
  return StrFormat("%016llx:%016llx", static_cast<unsigned long long>(hi),
                   static_cast<unsigned long long>(lo));
}

uint32_t AliasSessionTx::Assign(const FactorId& id) {
  const auto [it, inserted] = alias_of.emplace(id, next_alias);
  if (inserted) ++next_alias;
  return it->second;
}

Status AliasSessionRx::Bind(uint32_t alias, const FactorId& id) {
  if (alias >= kMaxAliasesPerSession) {
    return Status::OutOfRange(
        StrFormat("belief alias %u exceeds the per-session bound", alias));
  }
  if (alias >= id_of.size()) id_of.resize(alias + 1);  // holes stay nil
  FactorId& slot = id_of[alias];
  if (slot.IsNil()) {
    slot = id;
    // Advance the contiguous acked prefix over any holes this filled.
    while (known_prefix < id_of.size() && !id_of[known_prefix].IsNil()) {
      ++known_prefix;
    }
    return Status::Ok();
  }
  if (slot == id) return Status::Ok();  // re-declared binding: idempotent
  return Status::FailedPrecondition(
      StrFormat("belief alias %u rebound to a different factor (%s vs %s)",
                alias, id.ToString().c_str(), slot.ToString().c_str()));
}

Result<FactorId> AliasSessionRx::Resolve(uint32_t alias) const {
  if (alias >= id_of.size() || id_of[alias].IsNil()) {
    return Status::NotFound(
        StrFormat("belief alias %u has no binding in this session", alias));
  }
  return id_of[alias];
}

uint32_t ValueBitsForBudget(double eps) {
  if (!(eps > 0.0)) return 0;
  const double bits = std::ceil(std::log2(8.0 / eps));
  if (bits <= 2.0) return 2;
  if (bits >= kMaxValuePrecisionBits) return kMaxValuePrecisionBits;
  return static_cast<uint32_t>(bits);
}

int64_t QuantizeLogOdds(const Belief& belief, uint32_t bits) {
  // One-sided and degenerate measures first: log() of their entries is
  // not finite, and their meaning survives quantization exactly.
  const bool correct_zero = !(belief.correct > 0.0);
  const bool incorrect_zero = !(belief.incorrect > 0.0);
  if (correct_zero && incorrect_zero) return 0;  // normalizes to uniform
  if (incorrect_zero) return kQuantPosInf;
  if (correct_zero) return kQuantNegInf;
  const double log_odds = std::log(belief.correct) - std::log(belief.incorrect);
  if (std::isnan(log_odds)) return 0;
  const int64_t bound = QuantBound(bits);
  if (log_odds >= std::ldexp(static_cast<double>(bound), -static_cast<int>(bits)))
    return bound;
  if (log_odds <= std::ldexp(static_cast<double>(-bound), -static_cast<int>(bits)))
    return -bound;
  return std::llround(std::ldexp(log_odds, static_cast<int>(bits)));
}

Belief DequantizeLogOdds(int64_t quant, uint32_t bits) {
  if (quant == kQuantPosInf) return Belief{1.0, 0.0};
  if (quant == kQuantNegInf) return Belief{0.0, 1.0};
  const double log_odds =
      std::ldexp(static_cast<double>(quant), -static_cast<int>(bits));
  // Normalized sigmoid pair: the log-odds of the result is exactly
  // `log_odds` (up to one rounding each side), and extreme quanta
  // degrade gracefully to the one-sided measures.
  return Belief{1.0 / (1.0 + std::exp(-log_odds)),
                1.0 / (1.0 + std::exp(log_odds))};
}

namespace {

/// Zigzag mapping of a signed value onto the unsigned varint domain
/// (0, -1, 1, -2, … -> 0, 1, 2, 3, …).
uint64_t ZigZagQuant(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

}  // namespace

uint64_t QuantWireToken(int64_t quant) {
  if (quant == kQuantPosInf) return 0;
  if (quant == kQuantNegInf) return 1;
  return ZigZagQuant(quant) + 2;
}

int64_t QuantFromWireToken(uint64_t token) {
  if (token == 0) return kQuantPosInf;
  if (token == 1) return kQuantNegInf;
  const uint64_t zigzag = token - 2;
  return static_cast<int64_t>(zigzag >> 1) ^ -static_cast<int64_t>(zigzag & 1);
}

void BeliefMessage::QuantizeValues(uint32_t bits) {
  value_bits = bits;
  if (bits == 0) return;
  for (BeliefEntry& entry : entries) {
    entry.quant = QuantizeLogOdds(entry.belief, bits);
    entry.belief = DequantizeLogOdds(entry.quant, bits);
  }
}

void BeliefMessage::AddGroup(uint32_t alias, const FactorId& id,
                             std::initializer_list<BeliefEntry> group_entries) {
  BeliefGroup group;
  group.alias = alias;
  group.id = id;
  group.entry_begin = static_cast<uint32_t>(entries.size());
  group.entry_count = static_cast<uint32_t>(group_entries.size());
  entries.insert(entries.end(), group_entries.begin(), group_entries.end());
  groups.push_back(group);
}

std::string_view MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kProbe:
      return "probe";
    case MessageKind::kFeedback:
      return "feedback";
    case MessageKind::kBelief:
      return "belief";
    case MessageKind::kQuery:
      return "query";
  }
  return "?";
}

MessageKind KindOf(const Payload& payload) {
  return static_cast<MessageKind>(payload.index());
}

size_t VarintWireSize(uint64_t value) {
  size_t bytes = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++bytes;
  }
  return bytes;
}

namespace {

/// Zigzag mapping of a signed delta onto the unsigned varint domain
/// (0, -1, 1, -2, … -> 0, 1, 2, 3, …): ascending sequences with small
/// steps encode in one byte, and an out-of-order group or position is
/// merely larger, never wrong.
uint64_t ZigZag(int64_t delta) {
  return (static_cast<uint64_t>(delta) << 1) ^
         static_cast<uint64_t>(delta >> 63);
}

/// All byte accounts of a bundle in one walk: alias headers (epoch + ack +
/// value-format + counts + alias tokens), fingerprints (16 per
/// unacknowledged group), the delta-encoded positions and the values
/// (raw doubles or quantum varints); `bytes` is their sum.
WireBreakdown BundleBreakdown(const BeliefMessage& message) {
  WireBreakdown breakdown;
  breakdown.alias_bytes = VarintWireSize(message.epoch) +
                          VarintWireSize(message.ack) +
                          VarintWireSize(message.value_bits) +
                          VarintWireSize(message.groups.size());
  const bool quantized = message.value_bits != 0;
  size_t position_bytes = 0;
  uint32_t previous_alias = 0;
  for (const BeliefGroup& group : message.groups) {
    const bool has_id = !group.id.IsNil();
    const uint64_t token =
        (ZigZag(static_cast<int64_t>(group.alias) -
                static_cast<int64_t>(previous_alias))
         << 1) |
        (has_id ? 1 : 0);
    breakdown.alias_bytes +=
        VarintWireSize(token) + VarintWireSize(group.entry_count);
    if (has_id) breakdown.key_bytes += sizeof(FactorId);
    previous_alias = group.alias;
    uint32_t previous_position = 0;
    for (const BeliefEntry& entry : message.EntriesOf(group)) {
      position_bytes +=
          VarintWireSize(ZigZag(static_cast<int64_t>(entry.position) -
                                static_cast<int64_t>(previous_position)));
      breakdown.value_bytes = breakdown.value_bytes +
          (quantized ? VarintWireSize(QuantWireToken(entry.quant))
                     : 2 * sizeof(double));
      previous_position = entry.position;
    }
  }
  breakdown.bytes = breakdown.alias_bytes + breakdown.key_bytes +
                    position_bytes + breakdown.value_bytes;
  return breakdown;
}

}  // namespace

size_t ApproximateWireSize(const Payload& payload) {
  // Sizes come from the real encoder (`src/net/codec.cc`), so the bytes
  // the bench gates account can never drift from the bytes a socket
  // actually moves. Belief bundles — the per-round hot case — keep the
  // one-pass `BundleBreakdown` model; debug builds cross-check it against
  // a counting pass of the encoder.
  if (const auto* beliefs = std::get_if<BeliefMessage>(&payload)) {
    const size_t modeled = BundleBreakdown(*beliefs).bytes;
    assert(modeled == EncodedPayloadSize(payload) &&
           "belief wire model diverged from the encoder");
    return modeled;
  }
  return EncodedPayloadSize(payload);
}

size_t FactorIdWireBytes(const Payload& payload) {
  if (const auto* beliefs = std::get_if<BeliefMessage>(&payload)) {
    return BundleBreakdown(*beliefs).key_bytes;
  }
  if (const auto* query = std::get_if<QueryMessage>(&payload)) {
    return query->piggyback.size() * sizeof(FactorId);
  }
  return 0;
}

size_t AliasWireBytes(const Payload& payload) {
  if (const auto* beliefs = std::get_if<BeliefMessage>(&payload)) {
    return BundleBreakdown(*beliefs).alias_bytes;
  }
  return 0;
}

WireBreakdown PayloadWireBreakdown(const Payload& payload) {
  // Belief bundles — the per-round hot case — are broken down in a single
  // walk; everything else has no alias bytes and cheap key accounting.
  if (const auto* beliefs = std::get_if<BeliefMessage>(&payload)) {
    return BundleBreakdown(*beliefs);
  }
  WireBreakdown breakdown;
  breakdown.bytes = ApproximateWireSize(payload);
  breakdown.key_bytes = FactorIdWireBytes(payload);
  if (const auto* query = std::get_if<QueryMessage>(&payload)) {
    // Lazy-schedule piggybacks always travel as raw doubles.
    breakdown.value_bytes = query->piggyback.size() * 2 * sizeof(double);
  }
  return breakdown;
}

}  // namespace pdms
