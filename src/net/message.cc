#include "net/message.h"

#include <algorithm>
#include <type_traits>

#include "util/string_util.h"

namespace pdms {

std::string MappingVarKey::ToString() const {
  if (attribute == kWholeMapping) return StrFormat("m(e%u)", edge);
  return StrFormat("m(e%u,a%u)", edge, attribute);
}

namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mixer.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Two independent 64-bit mixing lanes absorbed word by word. The lanes
/// start from distinct constants and perturb each word differently, so the
/// combined 128-bit state avalanches on every input bit. Deterministic
/// across platforms and runs — the fingerprint is a wire identity, never a
/// per-process hash.
struct Fingerprint128 {
  uint64_t hi = 0x13198a2e03707344ull;  // pi fractional digits
  uint64_t lo = 0x243f6a8885a308d3ull;

  void Absorb(uint64_t word) {
    lo = Mix64(lo ^ word);
    hi = Mix64(hi + (word ^ 0xa4093822299f31d0ull));
  }
};

}  // namespace

FactorId FactorId::Make(const Closure& closure, AttributeId root_attribute) {
  // Canonical content: kind + sorted member edges + root peer (cycles are
  // announced only by their minimum-id member, so source is canonical) +
  // sink/split for parallel paths + root attribute. The id must identify
  // the factor *content*: the same edge set rooted at a different peer
  // induces a different attribute chain and therefore a different factor.
  std::vector<EdgeId> sorted = closure.edges;
  std::sort(sorted.begin(), sorted.end());
  Fingerprint128 fp;
  fp.Absorb(closure.kind == Closure::Kind::kCycle ? 'c' : 'p');
  fp.Absorb(sorted.size());
  for (EdgeId edge : sorted) fp.Absorb(edge);
  fp.Absorb(closure.source);
  if (closure.kind == Closure::Kind::kParallelPaths) {
    fp.Absorb(closure.sink);
    fp.Absorb(closure.split);
  }
  fp.Absorb(root_attribute);
  return FactorId{fp.hi, fp.lo};
}

std::string FactorId::ToString() const {
  return StrFormat("%016llx:%016llx", static_cast<unsigned long long>(hi),
                   static_cast<unsigned long long>(lo));
}

std::string_view MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kProbe:
      return "probe";
    case MessageKind::kFeedback:
      return "feedback";
    case MessageKind::kBelief:
      return "belief";
    case MessageKind::kQuery:
      return "query";
  }
  return "?";
}

MessageKind KindOf(const Payload& payload) {
  return static_cast<MessageKind>(payload.index());
}

namespace {

/// Belief update on the wire: 128-bit factor fingerprint + member position
/// (uint16 suffices: closure lengths are bounded far below 2^16 by
/// `ClosureFinderOptions`) + two doubles.
size_t WireSize(const BeliefUpdate& update) {
  (void)update;
  return sizeof(FactorId) + sizeof(uint16_t) + 2 * sizeof(double);
}

size_t WireSize(const Closure& closure) {
  return sizeof(closure.kind) + sizeof(closure.split) + sizeof(closure.source) +
         sizeof(closure.sink) + closure.edges.size() * sizeof(EdgeId);
}

}  // namespace

size_t ApproximateWireSize(const Payload& payload) {
  return std::visit(
      [](const auto& message) -> size_t {
        using T = std::decay_t<decltype(message)>;
        if constexpr (std::is_same_v<T, ProbeMessage>) {
          size_t size = sizeof(message.origin) + sizeof(message.ttl) +
                        message.route.size() * sizeof(EdgeId);
          for (const auto& hop : message.trail) {
            // One attribute id (⊥ encoded in-band) per attribute per hop.
            size += hop.size() * sizeof(AttributeId);
          }
          return size;
        } else if constexpr (std::is_same_v<T, FeedbackAnnouncement>) {
          size_t size = WireSize(message.closure) + sizeof(message.delta);
          for (const AttributeFeedback& entry : message.feedback) {
            size += sizeof(entry.root_attribute) + sizeof(entry.sign) +
                    entry.members.size() * sizeof(MappingVarKey);
          }
          return size;
        } else if constexpr (std::is_same_v<T, BeliefMessage>) {
          size_t size = 0;
          for (const BeliefUpdate& update : message.updates) {
            size += WireSize(update);
          }
          return size;
        } else {
          static_assert(std::is_same_v<T, QueryMessage>);
          size_t size = sizeof(message.query_id) + sizeof(message.origin) +
                        sizeof(message.ttl) +
                        message.visited.size() * sizeof(PeerId);
          for (const Operation& op : message.query.operations()) {
            size += sizeof(op.kind) + sizeof(op.attribute) + op.literal.size();
          }
          for (const BeliefUpdate& update : message.piggyback) {
            size += WireSize(update);
          }
          return size;
        }
      },
      payload);
}

size_t FactorIdWireBytes(const Payload& payload) {
  if (const auto* beliefs = std::get_if<BeliefMessage>(&payload)) {
    return beliefs->updates.size() * sizeof(FactorId);
  }
  if (const auto* query = std::get_if<QueryMessage>(&payload)) {
    return query->piggyback.size() * sizeof(FactorId);
  }
  return 0;
}

}  // namespace pdms
