#ifndef PDMS_NET_NETWORK_H_
#define PDMS_NET_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string_view>
#include <vector>

#include "net/message.h"
#include "pdms/transport.h"
#include "util/rng.h"

namespace pdms {

/// Configuration of the simulated transport.
struct NetworkOptions {
  /// Probability that a sent message is actually delivered — the
  /// `P(send)` of the fault-tolerance experiment (Section 5.1.3). Lost
  /// messages vanish silently; the algorithm tolerates this by design.
  double send_probability = 1.0;
  /// Delivery latency in ticks (>= 1: a message sent at tick t becomes
  /// deliverable at t + delay_ticks).
  uint64_t delay_ticks = 1;
  uint64_t seed = 1;
  /// Message loss applies only to belief traffic when true (the paper's
  /// experiment drops inference messages; probes/feedback/query traffic
  /// uses whatever reliability the overlay provides).
  bool lose_belief_messages_only = true;
};

/// Discrete-tick simulated message bus between peers — the default
/// `Transport` implementation.
///
/// Thread-safe per the `Transport` contract: mailboxes are sharded per
/// destination peer behind their own mutexes, so concurrent sends to
/// different peers never contend. Loss draws come from one seeded stream
/// guarded by its own mutex (taken only when loss is actually configured):
/// with a serial send order — which the engine guarantees regardless of its
/// compute parallelism — drops and deliveries are identical for the same
/// seed and send sequence.
class SimTransport final : public Transport {
 public:
  SimTransport(size_t peer_count, const NetworkOptions& options)
      : options_(options), rng_(options.seed), mailboxes_(peer_count) {}

  std::string_view name() const override { return "sim"; }
  size_t peer_count() const override { return mailboxes_.size(); }
  uint64_t now() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void AdvanceTick() override {
    now_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Enqueues a message; may drop it per `send_probability`.
  void Send(PeerId from, PeerId to, std::optional<EdgeId> via,
            Payload payload) override;

  /// Removes and returns all messages deliverable to `peer` at the current
  /// tick (deliver_at <= now).
  std::vector<Envelope> Drain(PeerId peer) override;

  /// True if any queue still holds messages (delivered or future).
  bool HasPendingMessages() const override;

  const TransportStats& stats() const override;
  void ResetStats() override;

  const NetworkOptions& options() const { return options_; }

 private:
  struct Mailbox {
    std::mutex mutex;
    std::deque<Envelope> queue;
  };

  NetworkOptions options_;
  std::mutex rng_mutex_;
  Rng rng_;  // guarded by rng_mutex_
  std::atomic<uint64_t> now_{0};
  /// Messages enqueued and not yet drained; O(1) HasPendingMessages.
  std::atomic<uint64_t> in_flight_{0};
  std::vector<Mailbox> mailboxes_;
  AtomicTransportStats counters_;
  mutable TransportStats stats_snapshot_;
};

}  // namespace pdms

#endif  // PDMS_NET_NETWORK_H_
