#ifndef PDMS_NET_CODEC_H_
#define PDMS_NET_CODEC_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "net/message.h"
#include "util/status.h"

namespace pdms {

// --- Payload codec -------------------------------------------------------------
//
// The exact binary realization of the wire model `ApproximateWireSize` has
// been accounting since PR 3: LEB128 varints for counts and headers, zigzag
// deltas for belief aliases and member positions, raw little-endian doubles
// for message values, and 16-byte fingerprints only where a binding is
// declared. The encoder is the single source of truth for payload byte
// counts — `ApproximateWireSize` now derives from it (the belief fast path
// keeps its one-pass model and is cross-checked against the encoder in
// debug builds), so the bench gates measure real bytes.
//
// Decoding is strict: truncated input, overlong or non-minimal varints,
// counts exceeding the bytes that could back them, aliases beyond
// `kMaxAliasesPerSession`, unknown enum values and trailing garbage are all
// rejected with a `Status` — forged traffic can be refused, never crash the
// receiver. Doubles are transparent (any 8-byte pattern round-trips
// bitwise): the transport must not perturb belief values, the factor layer
// owns their numeric hygiene.

/// Version byte carried by every frame; bumped on incompatible changes.
/// v2: CRC32 frame checksum, per-link sequence numbers, session handshake.
/// v3: rejoin / rejoin-ack control frames (snapshot-restart re-admission).
/// v4: quantized belief values — every belief bundle declares its value
///     format (`BeliefMessage::value_bits`: 0 = legacy raw doubles, else
///     fixed-point log-odds quanta at that many fractional bits), and
///     quantized entries carry one zigzag quantum varint instead of two
///     doubles. Quanta outside the declared precision's bound are
///     rejected as forged (OutOfRange).
inline constexpr uint8_t kWireFormatVersion = 4;

/// Sentinel encoding ⊥ (nullopt) in probe trails. Schema attribute images
/// are dense small ids, so the all-ones pattern is never a real attribute.
inline constexpr uint32_t kNullAttributeWire = 0xffffffffu;

/// Exact encoded size of `payload`, by a counting pass of the encoder.
size_t EncodedPayloadSize(const Payload& payload);

/// Appends the encoding of `payload` to `out`. In debug builds, asserts
/// that the bytes produced equal `PayloadWireBreakdown(payload).bytes`.
void EncodePayload(const Payload& payload, std::vector<uint8_t>* out);

/// Decodes a payload of `kind` from exactly `bytes` (trailing bytes are an
/// error). The result re-encodes byte-identically.
Result<Payload> DecodePayload(MessageKind kind, std::span<const uint8_t> bytes);

// --- Frame codec ---------------------------------------------------------------
//
// Stream framing for the socket transport: every frame is a 4-byte
// little-endian length, a 4-byte little-endian CRC32 of everything the
// length covers, a varint link-sequence number, then the body, whose first
// two bytes are `kWireFormatVersion` and the `FrameType`. The checksum
// turns any wire corruption into a detected stream error (the connection
// is dropped and the reliability layer retransmits); the link sequence is
// the transport's exactly-once delivery cursor — 0 marks session-control
// frames (hello / link ack) that sit outside the retransmit ring. Data
// frames carry one routed payload; the remaining types are the node
// daemons' control plane (session hello, link acks, round/discovery
// barrier marks, client query RPCs).

/// Upper bound on one frame body; a length prefix beyond this is treated
/// as a malformed or hostile stream and the connection is dropped.
inline constexpr size_t kMaxFrameBytes = 1u << 26;  // 64 MiB

/// Bytes preceding every frame's checksummed region: length + CRC32.
inline constexpr size_t kFrameHeaderBytes = 8;

/// CRC32 (IEEE 802.3 polynomial, reflected) over `data`.
uint32_t Crc32(std::span<const uint8_t> data);

enum class FrameType : uint8_t {
  kData = 0,          ///< one Envelope-equivalent routed payload
  kHello = 1,         ///< connection handshake (shard identity + session)
  kMark = 2,          ///< per-tick / per-round barrier marker between shards
  kQueryRequest = 3,  ///< client -> node: run a θ-gated query
  kQueryResponse = 4, ///< node -> client: rendered result rows
  kLinkAck = 5,       ///< receiver -> sender: cumulative delivery ack
  kRejoin = 6,        ///< restarted shard -> survivors: re-admission request
  kRejoinAck = 7,     ///< survivor -> restarted shard: re-admission verdict
};

/// One routed payload on the wire. `seq` is a per-sender monotonically
/// increasing counter: together with (deliver_at, from) it gives receivers
/// a total order that reproduces the simulator's per-mailbox arrival order,
/// which is what keeps posteriors bitwise-identical across transports.
struct DataFrame {
  PeerId from = 0;
  PeerId to = 0;
  std::optional<EdgeId> via;
  uint64_t deliver_at = 0;
  uint64_t seq = 0;
  Payload payload;
};

/// First frame on every inter-shard connection. `session_id` identifies
/// the sending transport's lifetime (a restarted process presents a new
/// one, telling the receiver to reset its delivery cursor); `next_seq` is
/// the base of the sender's unacked retransmit ring — everything below it
/// has been acknowledged and will never be sent again.
struct HelloFrame {
  uint32_t shard = 0;
  uint32_t shard_count = 0;
  uint64_t peer_count = 0;
  uint64_t session_id = 0;
  uint64_t next_seq = 0;
};

/// Barrier marker: "shard `shard` has finished sending for step `index` of
/// `phase`". TCP preserves per-connection order, so receiving a mark
/// implies every data frame the shard sent before it has arrived too —
/// the mark exchange doubles as the flush barrier between rounds.
struct MarkFrame {
  uint32_t shard = 0;
  uint32_t phase = 0;  ///< 0 = discovery ticks, 1 = inference rounds
  uint64_t index = 0;
  uint64_t frames_sent = 0;   ///< data frames this shard sent in this step
  uint64_t updates_sent = 0;  ///< belief updates this shard sent in this step
  double max_change = 0.0;    ///< shard-local max posterior change
  bool pending = false;       ///< shard still holds undelivered messages
};

struct QueryRequestFrame {
  uint64_t request_id = 0;
  PeerId origin = 0;
  uint32_t ttl = 0;
  /// Query text in the origin peer's schema (see `ParseQuery`).
  std::string text;
};

struct QueryResponseFrame {
  uint64_t request_id = 0;
  bool ok = true;
  std::string error;       ///< non-empty iff !ok
  uint64_t reached = 0;    ///< peers whose stores were evaluated
  std::vector<std::string> rows;  ///< rendered result rows
};

/// Cumulative delivery acknowledgement, sent by the accepting side of a
/// link: every frame with link sequence < `next_expected` has been
/// dispatched exactly once and may leave the sender's retransmit ring.
/// Replied to a hello (completing the handshake) and after dispatch
/// batches thereafter.
struct LinkAckFrame {
  uint32_t shard = 0;          ///< the acking shard
  uint64_t session_id = 0;     ///< echo of the dialer's session (stale guard)
  uint64_t next_expected = 0;  ///< receiver's delivery cursor
};

/// Re-admission request from a shard restarted off a snapshot: "I hold a
/// consistent cut of deployment `state_epoch` at `round`; readmit me and
/// roll back to that cut". `address` is the restarted process's *new*
/// listen endpoint (the ephemeral port changed across the restart), which
/// survivors adopt before redialing. Sent as an ordinary sequenced
/// control frame; it is the one frame type a receiver dispatches even
/// from a quarantined shard (everything else from an abandoned sender is
/// acked but dropped), which is what lets a restart cross the quarantine.
struct RejoinFrame {
  uint32_t shard = 0;
  uint64_t state_epoch = 0;
  uint64_t round = 0;       ///< rounds fully executed at the snapshot cut
  std::string address;      ///< host:port the restarted shard listens on
};

/// Survivor's verdict on a rejoin request. `accepted` means the survivor
/// rolled its own state back to the requested cut and re-admitted the
/// shard; the restarted shard resumes the round loop only after every
/// survivor accepted. A rejection (epoch mismatch, cut no longer held)
/// carries a diagnostic `reason` and leaves the quarantine in place.
struct RejoinAckFrame {
  uint32_t shard = 0;       ///< the acking survivor
  uint64_t round = 0;       ///< echo of the requested cut
  bool accepted = false;
  std::string reason;       ///< non-empty iff !accepted
};

using Frame = std::variant<DataFrame, HelloFrame, MarkFrame, QueryRequestFrame,
                           QueryResponseFrame, LinkAckFrame, RejoinFrame,
                           RejoinAckFrame>;

FrameType FrameTypeOf(const Frame& frame);

/// Appends length prefix + checksum + link sequence + body of `frame` to
/// `out`. The two-argument overload stamps sequence 0 (session-control /
/// client traffic outside any retransmit ring).
void EncodeFrame(const Frame& frame, uint64_t link_seq,
                 std::vector<uint8_t>* out);
void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out);

/// Decodes one frame body (the bytes after the length prefix). Strict:
/// version mismatch, unknown type, malformed content and trailing bytes
/// all fail with a `Status`.
Result<Frame> DecodeFrameBody(std::span<const uint8_t> body);

/// Incremental stream reassembler: feed raw socket bytes in, pull complete
/// frames out. A decode error is fatal for the stream (framing can no
/// longer be trusted) — the caller should drop the connection; with the
/// reliability layer above, that turns corruption into a retransmit.
class FrameAssembler {
 public:
  /// Appends raw bytes received from the stream.
  void Feed(std::span<const uint8_t> data);

  /// Returns the next complete frame, std::nullopt when more bytes are
  /// needed, or an error when the stream is malformed (oversized length
  /// prefix, checksum mismatch, undecodable body).
  Result<std::optional<Frame>> Next();

  /// Link sequence number of the frame the last successful `Next()`
  /// returned (0 for session-control frames).
  uint64_t last_seq() const { return last_seq_; }

  size_t buffered_bytes() const { return buffer_.size() - offset_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t offset_ = 0;
  uint64_t last_seq_ = 0;
};

}  // namespace pdms

#endif  // PDMS_NET_CODEC_H_
