#include "net/network.h"

#include <cassert>

namespace pdms {

void SimTransport::Send(PeerId from, PeerId to, std::optional<EdgeId> via,
                        Payload payload) {
  assert(to < mailboxes_.size());
  const MessageKind kind = KindOf(payload);
  counters_.CountSendAttempt(kind);
  const bool lossy_kind = !options_.lose_belief_messages_only ||
                          kind == MessageKind::kBelief;
  if (lossy_kind && options_.send_probability < 1.0) {
    bool dropped;
    {
      std::lock_guard<std::mutex> lock(rng_mutex_);
      dropped = !rng_.Bernoulli(options_.send_probability);
    }
    if (dropped) {
      counters_.CountDropped(kind);
      return;
    }
  }
  // Bytes account only what was accepted for delivery (drops excluded).
  const WireBreakdown wire = PayloadWireBreakdown(payload);
  counters_.CountPayloadBytes(wire);
  Envelope envelope;
  envelope.from = from;
  envelope.to = to;
  envelope.via = via;
  envelope.deliver_at = now() + options_.delay_ticks;
  envelope.payload = std::move(payload);
  // Count before enqueueing: a concurrent Drain may pop the envelope the
  // moment the lock is released, and its decrement must never observe the
  // counter without this increment (transient underflow would make
  // HasPendingMessages report phantom traffic on an empty transport).
  in_flight_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mailboxes_[to].mutex);
    mailboxes_[to].queue.push_back(std::move(envelope));
  }
}

std::vector<Envelope> SimTransport::Drain(PeerId peer) {
  assert(peer < mailboxes_.size());
  const uint64_t current = now();
  std::vector<Envelope> due;
  {
    std::lock_guard<std::mutex> lock(mailboxes_[peer].mutex);
    auto& queue = mailboxes_[peer].queue;
    // Constant per-message delay keeps queues ordered by deliver_at, so the
    // due prefix can be split off directly.
    while (!queue.empty() && queue.front().deliver_at <= current) {
      due.push_back(std::move(queue.front()));
      queue.pop_front();
    }
  }
  for (const Envelope& envelope : due) {
    counters_.CountDelivered(KindOf(envelope.payload));
  }
  in_flight_.fetch_sub(due.size(), std::memory_order_release);
  return due;
}

bool SimTransport::HasPendingMessages() const {
  return in_flight_.load(std::memory_order_acquire) > 0;
}

const TransportStats& SimTransport::stats() const {
  counters_.SnapshotTo(&stats_snapshot_);
  return stats_snapshot_;
}

void SimTransport::ResetStats() { counters_.Reset(); }

}  // namespace pdms
