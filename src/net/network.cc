#include "net/network.h"

#include <cassert>

namespace pdms {

void SimTransport::Send(PeerId from, PeerId to, std::optional<EdgeId> via,
                        Payload payload) {
  assert(to < queues_.size());
  const auto kind = static_cast<size_t>(KindOf(payload));
  ++stats_.sent[kind];
  const bool lossy_kind = !options_.lose_belief_messages_only ||
                          KindOf(payload) == MessageKind::kBelief;
  if (lossy_kind && options_.send_probability < 1.0 &&
      !rng_.Bernoulli(options_.send_probability)) {
    ++stats_.dropped[kind];
    return;
  }
  Envelope envelope;
  envelope.from = from;
  envelope.to = to;
  envelope.via = via;
  envelope.deliver_at = now_ + options_.delay_ticks;
  envelope.payload = std::move(payload);
  queues_[to].push_back(std::move(envelope));
}

std::vector<Envelope> SimTransport::Drain(PeerId peer) {
  assert(peer < queues_.size());
  std::vector<Envelope> due;
  auto& queue = queues_[peer];
  // Constant per-message delay keeps queues ordered by deliver_at, so the
  // due prefix can be split off directly.
  while (!queue.empty() && queue.front().deliver_at <= now_) {
    ++stats_.delivered[static_cast<size_t>(KindOf(queue.front().payload))];
    due.push_back(std::move(queue.front()));
    queue.pop_front();
  }
  return due;
}

bool SimTransport::HasPendingMessages() const {
  for (const auto& queue : queues_) {
    if (!queue.empty()) return true;
  }
  return false;
}

}  // namespace pdms
