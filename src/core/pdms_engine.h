#ifndef PDMS_CORE_PDMS_ENGINE_H_
#define PDMS_CORE_PDMS_ENGINE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/options.h"
#include "core/peer.h"
#include "factor/factor_graph.h"
#include "mapping/mapping_generator.h"
#include "net/network.h"

namespace pdms {

/// One periodic inference round's accounting.
struct RoundReport {
  /// Individual µ remote-message updates sent this round (the unit the
  /// paper's Σ(l_ci − 1) bound counts).
  uint64_t belief_updates_sent = 0;
  /// Network envelopes carrying them (bundled per recipient).
  uint64_t belief_envelopes_sent = 0;
  double max_posterior_change = 1.0;
};

/// Outcome of RunToConvergence.
struct ConvergenceReport {
  size_t rounds = 0;
  bool converged = false;
  uint64_t belief_updates_sent = 0;
  /// trajectory[r][i] = posterior of tracked variable i after round r+1
  /// (only variables registered via TrackVariable).
  std::vector<std::vector<double>> trajectory;
};

/// Outcome of a query issued into the network.
struct QueryReport {
  /// (answering peer, row) pairs, in delivery order.
  std::vector<std::pair<PeerId, ResultRow>> rows;
  /// Peers that processed the query (origin included).
  std::vector<PeerId> reached;
  /// Mapping links used / θ-blocked along the way.
  std::vector<EdgeId> used_edges;
  std::vector<EdgeId> blocked_edges;
  /// Query envelopes sent.
  uint64_t messages = 0;
};

/// The paper's system: a network of peer databases that (1) discovers
/// mapping cycles and parallel paths with TTL probes, (2) runs decentral-
/// ized loopy sum-product message passing over the induced factor graph to
/// estimate per-attribute mapping correctness, and (3) routes queries
/// through mappings whose posterior clears the semantic threshold θ.
///
/// The engine is the simulation driver: it owns the peers and the message
/// bus and advances global ticks. All inference math happens inside the
/// peers using only their local state — the engine never shares state
/// across peers except through network messages.
class PdmsEngine {
 public:
  /// Builds an engine over `graph`; `schemas[p]` is peer p's schema and
  /// `mappings[e]` the mapping for live edge e (indexed by EdgeId).
  static Result<std::unique_ptr<PdmsEngine>> Create(
      const Digraph& graph, std::vector<Schema> schemas,
      std::vector<SchemaMapping> mappings, const EngineOptions& options);

  /// Convenience: builds from a generated synthetic PDMS.
  static Result<std::unique_ptr<PdmsEngine>> FromSynthetic(
      const SyntheticPdms& synthetic, const EngineOptions& options);

  // --- Closure discovery -----------------------------------------------------

  /// Floods TTL probes from every peer and processes the resulting probe /
  /// feedback traffic until the network is quiet. Returns the number of
  /// distinct factor replicas that exist across peers afterwards.
  size_t DiscoverClosures();

  /// Injects a closure with externally computed per-attribute feedback
  /// (used by experiments that need the paper's exact feedback sets and by
  /// churn tests). The announcement is ingested directly by member owners.
  void InjectFeedback(const FeedbackAnnouncement& announcement);

  // --- Inference -------------------------------------------------------------

  /// One synchronized round: tick, deliver, compute, and (periodic
  /// schedule, every τ) exchange remote messages.
  RoundReport RunRound();

  /// Rounds until posterior movement stays below tolerance (with loss-aware
  /// patience) or `max_rounds`.
  ConvergenceReport RunToConvergence(size_t max_rounds);

  /// Registers a variable whose posterior RunToConvergence records each
  /// round (Figure 7 trajectories).
  void TrackVariable(const MappingVarKey& var) { tracked_.push_back(var); }

  /// Posterior of (edge, attribute) as believed by the mapping's owner.
  double Posterior(EdgeId edge, AttributeId attribute) const;
  double PosteriorCoarse(EdgeId edge) const;

  // --- Queries ---------------------------------------------------------------

  /// Issues `query` (expressed in `origin`'s schema) and drives the
  /// network until all query traffic quiesces.
  QueryReport IssueQuery(PeerId origin, const Query& query, uint32_t ttl);

  // --- Priors & churn ----------------------------------------------------------

  void SetPrior(EdgeId edge, AttributeId attribute, double prior);
  double Prior(EdgeId edge, AttributeId attribute) const;
  /// EM prior update on every peer (Section 4.4).
  void UpdatePriors();

  /// Removes a mapping network-wide: the owner drops it, every peer purges
  /// replicas referencing it, and the topology edge is tombstoned.
  /// Closures must be re-discovered afterwards.
  Status RemoveMapping(EdgeId edge);

  // --- Introspection ------------------------------------------------------------

  Peer& peer(PeerId id) { return *peers_[id]; }
  const Peer& peer(PeerId id) const { return *peers_[id]; }
  size_t peer_count() const { return peers_.size(); }
  const Digraph& graph() const { return graph_; }
  const Network& network() const { return network_; }
  const EngineOptions& options() const { return options_; }

  /// Total distinct factor replicas (unique FactorKeys across peers).
  size_t UniqueFactorCount() const;

  /// Materializes the *global* factor graph implied by the current peer
  /// states (priors + all announced feedback factors). Baseline for exact
  /// inference and for validating the decentralized engine. `vars_out`
  /// receives the variable order.
  FactorGraph BuildGlobalFactorGraph(std::vector<MappingVarKey>* vars_out) const;

 private:
  PdmsEngine(Digraph graph, EngineOptions options);

  /// Delivers due messages to every peer, dispatching by payload type.
  /// Query rows/blocks are accumulated into `query_report_` when set.
  void DeliverAll();

  void SendAll(PeerId from, std::vector<Outgoing> messages);

  Digraph graph_;
  EngineOptions options_;
  Network network_;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::vector<MappingVarKey> tracked_;
  uint64_t next_query_id_ = 1;
  /// Non-null while IssueQuery drives the network.
  QueryReport* query_report_ = nullptr;
};

}  // namespace pdms

#endif  // PDMS_CORE_PDMS_ENGINE_H_
