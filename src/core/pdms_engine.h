#ifndef PDMS_CORE_PDMS_ENGINE_H_
#define PDMS_CORE_PDMS_ENGINE_H_

#include <atomic>
#include <cassert>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/options.h"
#include "core/peer.h"
#include "factor/factor_graph.h"
#include "mapping/mapping_generator.h"
#include "net/network.h"
#include "pdms/transport.h"
#include "util/thread_pool.h"

namespace pdms {

/// One periodic inference round's accounting.
struct RoundReport {
  /// Individual µ remote-message updates sent this round (the unit the
  /// paper's Σ(l_ci − 1) bound counts).
  uint64_t belief_updates_sent = 0;
  /// Network envelopes carrying them (bundled per recipient).
  uint64_t belief_envelopes_sent = 0;
  double max_posterior_change = 1.0;
};

/// Outcome of RunToConvergence.
struct ConvergenceReport {
  size_t rounds = 0;
  bool converged = false;
  uint64_t belief_updates_sent = 0;
};

/// Outcome of a query issued into the network.
struct QueryReport {
  /// (answering peer, row) pairs, in delivery order.
  std::vector<std::pair<PeerId, ResultRow>> rows;
  /// Peers that processed the query (origin included).
  std::vector<PeerId> reached;
  /// Mapping links used / θ-blocked along the way.
  std::vector<EdgeId> used_edges;
  std::vector<EdgeId> blocked_edges;
  /// Query envelopes sent.
  uint64_t messages = 0;
};

/// One query to issue: `query` is expressed in `origin`'s schema.
struct QueryRequest {
  PeerId origin = 0;
  Query query;
  uint32_t ttl = 3;
};

/// The paper's system: a network of peer databases that (1) discovers
/// mapping cycles and parallel paths with TTL probes, (2) runs decentral-
/// ized loopy sum-product message passing over the induced factor graph to
/// estimate per-attribute mapping correctness, and (3) routes queries
/// through mappings whose posterior clears the semantic threshold θ.
///
/// The engine is the simulation driver: it owns the peers and the message
/// transport and advances global ticks. All inference math happens inside
/// the peers using only their local state — the engine never shares state
/// across peers except through transport messages.
///
/// This is the *internal implementation* behind the public API in
/// `pdms/pdms.h`: applications construct a `Pdms` through `PdmsBuilder`
/// and drive it through a `Session` rather than using this class directly.
class PdmsEngine {
 public:
  /// Invoked by RunToConvergence after each round (1-based round index).
  using RoundCallback = std::function<void(size_t, const RoundReport&)>;

  /// Builds an engine over `graph`; `schemas[p]` is peer p's schema and
  /// `mappings[e]` the mapping for live edge e (indexed by EdgeId).
  /// `transport` must cover `graph.node_count()` peers; when null, a
  /// lossless discrete-tick `SimTransport` is created from
  /// `options.network`.
  static Result<std::unique_ptr<PdmsEngine>> Create(
      const Digraph& graph, std::vector<Schema> schemas,
      std::vector<SchemaMapping> mappings, const EngineOptions& options,
      std::unique_ptr<Transport> transport = nullptr);

  // --- Closure discovery -----------------------------------------------------

  /// Floods TTL probes from every peer and processes the resulting probe /
  /// feedback traffic until the network is quiet. Returns the number of
  /// distinct factor replicas that exist across peers afterwards.
  size_t DiscoverClosures();

  /// Injects a closure with externally computed per-attribute feedback
  /// (used by experiments that need the paper's exact feedback sets and by
  /// churn tests). The announcement is ingested directly by member owners.
  void InjectFeedback(const FeedbackAnnouncement& announcement);

  // --- Inference -------------------------------------------------------------

  /// One synchronized round: tick, deliver, compute, and (periodic
  /// schedule, every τ) exchange remote messages.
  RoundReport RunRound();

  /// Rounds until posterior movement stays below tolerance (with loss-aware
  /// patience) or `max_rounds`. `on_round`, when set, observes every round.
  ConvergenceReport RunToConvergence(size_t max_rounds,
                                     const RoundCallback& on_round = nullptr);

  /// Posterior of (edge, attribute) as believed by the mapping's owner.
  double Posterior(EdgeId edge, AttributeId attribute) const;
  double PosteriorCoarse(EdgeId edge) const;

  // --- Queries ---------------------------------------------------------------

  /// Issues `query` (expressed in `origin`'s schema) and drives the
  /// network until all query traffic quiesces.
  QueryReport IssueQuery(PeerId origin, const Query& query, uint32_t ttl);

  /// Issues a batch of queries *concurrently*: all query messages enter
  /// the network before the first tick, so their traffic interleaves (and,
  /// under the lazy schedule, cross-pollinates belief state) the way
  /// simultaneous real-world queries would. Reports are attributed per
  /// query id and returned in request order.
  std::vector<QueryReport> IssueQueries(std::span<const QueryRequest> requests);

  // --- Sharded execution (node daemons) ----------------------------------------

  /// Restricts execution to the peers marked in `is_local` (one entry per
  /// peer). Non-local peers stay materialized for topology and schema
  /// lookups, but they never compute rounds, send, or drain — a node
  /// daemon hosts one shard of the network and reaches the rest through
  /// the transport. An empty mask (the default) means every peer is
  /// local, i.e. ordinary single-process execution.
  Status RestrictToLocalPeers(std::vector<bool> is_local);
  bool IsLocalPeer(PeerId peer) const {
    return is_local_.empty() || is_local_[peer];
  }

  /// Emits the initial discovery probes of the local peers — the sharded
  /// counterpart of `DiscoverClosures`' first phase. The daemons
  /// coordinate quiescence across shards with mark frames instead of the
  /// transport-wide `HasPendingMessages` loop.
  void StartLocalProbes();

  /// One discovery step: advances the transport clock and dispatches all
  /// deliverable traffic of the local peers (probe forwards and feedback
  /// announcements go back out through the transport).
  void DeliverTick();

  // --- Priors & churn ----------------------------------------------------------

  void SetPrior(EdgeId edge, AttributeId attribute, double prior);
  double Prior(EdgeId edge, AttributeId attribute) const;
  /// EM prior update on every peer (Section 4.4).
  void UpdatePriors();

  /// Removes a mapping network-wide: the owner drops it, every peer purges
  /// replicas referencing it, and the topology edge is tombstoned.
  /// Closures must be re-discovered afterwards.
  Status RemoveMapping(EdgeId edge);

  // --- Durable state ------------------------------------------------------------

  /// A complete copy of the engine's mutable inference state in canonical
  /// form: every peer's `Peer::Image` plus the topology liveness flags.
  /// This is the unit `UndoSession` copies and the snapshot layer
  /// (src/store) serializes. Transport state (in-flight frames, clocks) is
  /// deliberately *not* here — the node layer captures it separately at
  /// quiesced barriers, where it is well-defined.
  struct EngineImage {
    std::vector<bool> edge_alive;
    std::vector<Peer::Image> peers;
    uint64_t next_query_id = 1;
  };

  /// Captures all peers (sharded engines still materialize every peer, and
  /// network-wide operations like `RemoveMapping` touch all of them).
  EngineImage CaptureImage() const;

  /// Restores a previously captured image. Peer count must match (the
  /// image is a rollback target for the same deployment, not a migration
  /// vehicle); the topology may have gained edges since the capture — they
  /// roll back to tombstones.
  Status RestoreImage(const EngineImage& image);
  Status RestoreImage(EngineImage&& image);

  // --- Introspection ------------------------------------------------------------

  Peer& peer(PeerId id) { return *peers_[id]; }
  const Peer& peer(PeerId id) const { return *peers_[id]; }
  size_t peer_count() const { return peers_.size(); }
  const Digraph& graph() const { return graph_; }
  Transport& transport() { return *transport_; }
  const Transport& transport() const { return *transport_; }
  const EngineOptions& options() const { return options_; }

  /// Total distinct factor replicas (unique FactorIds across peers).
  size_t UniqueFactorCount() const;

  /// Byzantine-guard totals over the *local* peers (all zero while the
  /// guard is off): entries the admission guard refused (rejections +
  /// equivocations), links at demote level >= 1, and links at level 2.
  uint64_t GuardRejectedBeliefs() const;
  uint64_t GuardDemotedLinks() const;
  uint64_t GuardQuarantinedLinks() const;

  /// Materializes the *global* factor graph implied by the current peer
  /// states (priors + all announced feedback factors). Baseline for exact
  /// inference and for validating the decentralized engine. `vars_out`
  /// receives the variable order.
  FactorGraph BuildGlobalFactorGraph(std::vector<MappingVarKey>* vars_out) const;

 private:
  PdmsEngine(Digraph graph, EngineOptions options,
             std::unique_ptr<Transport> transport);

  /// Delivers due messages to every peer, dispatching by payload type.
  /// Query rows/blocks are accumulated into `active_queries_` entries.
  void DeliverAll();

  /// Round-path delivery: drains all peers up front (in parallel when a
  /// pool exists) and processes peer-local payloads — beliefs, feedback —
  /// on the draining thread. Batches containing probe or query traffic
  /// (which send and touch shared query reports) fall back to serial
  /// dispatch in canonical peer order.
  void DeliverRoundMessages();

  /// Processes one delivered envelope on the engine thread (probe /
  /// feedback / belief / query dispatch).
  void DispatchEnvelope(PeerId to, Envelope& envelope);

  void SendAll(PeerId from, std::vector<Outgoing> messages);

  /// Logs an absorb/ingest rejection, rate-limited: under a sustained
  /// adversarial load every bundle from a lying peer carries a Status, and
  /// the guard already counts them all — the log shows the first few and
  /// then samples. Thread-safe (called from round workers).
  void LogRejection(const Status& status);

  /// Whether round phases fan out to the pool: requires a pool *and*
  /// enough peers per lane to amortize its wake/steal/join overhead
  /// (`EngineOptions::min_peers_per_lane`). Purely a scheduling decision —
  /// results are identical either way.
  bool UsePool() const;

  /// Runs `fn(p)` for every peer, on the pool when `UsePool()`, inline
  /// otherwise. `fn` must only touch peer p's state (plus the transport,
  /// which is thread-safe).
  void ForEachPeer(const std::function<void(size_t)>& fn);

  Digraph graph_;
  EngineOptions options_;
  /// Sharding mask (see RestrictToLocalPeers); empty = all peers local.
  std::vector<bool> is_local_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::unique_ptr<Peer>> peers_;
  /// Round-execution workers (parallelism − 1 threads; null when serial).
  std::unique_ptr<ThreadPool> pool_;
  uint64_t next_query_id_ = 1;
  /// Per-query report accumulators, keyed by query id; populated while
  /// IssueQueries drives the network.
  std::map<uint64_t, QueryReport*> active_queries_;
  /// Rejections logged so far (the `LogRejection` rate limit).
  std::atomic<uint64_t> rejection_logs_{0};
  /// Round scratch, reused to keep the round path allocation-stable.
  std::vector<double> round_changes_;
  std::vector<std::vector<Outgoing>> round_outgoing_;
  std::vector<std::vector<Envelope>> round_batches_;
};

/// Chainbase-style undo scope over the engine's inference state. Capture
/// at construction; unless `Commit()` is called, destruction (or an
/// explicit `Rollback()`) restores the capture — pools, routing tables,
/// alias sessions, variable state and topology revert *together*, so a
/// speculative `InjectFeedback`/`RemoveMapping` sequence that turns out to
/// be inconsistent cannot leave derived state behind.
///
/// Move-only RAII; sessions may nest (inner sessions roll back first, as
/// plain scoping already guarantees). Driver-thread only, like every other
/// engine mutation: do not roll back while rounds are executing on the
/// pool.
class UndoSession {
 public:
  explicit UndoSession(PdmsEngine* engine)
      : engine_(engine), image_(engine->CaptureImage()) {}
  ~UndoSession() { Rollback(); }

  UndoSession(UndoSession&& other) noexcept
      : engine_(other.engine_), image_(std::move(other.image_)) {
    other.engine_ = nullptr;
  }
  UndoSession& operator=(UndoSession&& other) noexcept {
    if (this != &other) {
      Rollback();
      engine_ = other.engine_;
      image_ = std::move(other.image_);
      other.engine_ = nullptr;
    }
    return *this;
  }
  UndoSession(const UndoSession&) = delete;
  UndoSession& operator=(const UndoSession&) = delete;

  /// Keeps every mutation made since construction; the session becomes
  /// inert.
  void Commit() { engine_ = nullptr; }

  /// Restores the state captured at construction. Idempotent; implied by
  /// destruction when `Commit()` was never called.
  void Rollback() {
    if (engine_ == nullptr) return;
    PdmsEngine* engine = engine_;
    engine_ = nullptr;
    const Status restored = engine->RestoreImage(std::move(image_));
    assert(restored.ok());  // same deployment: peer count cannot mismatch
    (void)restored;
  }

  /// False once committed or rolled back.
  bool armed() const { return engine_ != nullptr; }

 private:
  PdmsEngine* engine_;
  PdmsEngine::EngineImage image_;
};

}  // namespace pdms

#endif  // PDMS_CORE_PDMS_ENGINE_H_
