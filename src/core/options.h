#ifndef PDMS_CORE_OPTIONS_H_
#define PDMS_CORE_OPTIONS_H_

#include <cstdint>
#include <optional>

#include "graph/closure.h"
#include "net/fault_injection.h"
#include "net/network.h"

namespace pdms {

/// When peers exchange remote belief messages (Section 4.3).
enum class ScheduleKind : uint8_t {
  /// Every `period_ticks` ticks each peer proactively sends remote
  /// messages to all peers in its local factor graph (Section 4.3.1).
  kPeriodic = 0,
  /// Remote messages piggyback on query traffic only: zero additional
  /// message overhead, convergence speed proportional to query load
  /// (Section 4.3.2).
  kLazy = 1,
};

/// Whether mapping quality is tracked per attribute or per mapping
/// (Section 4.1, "two levels of granularity").
enum class Granularity : uint8_t {
  kFine = 0,    ///< one variable / factor-graph instance per attribute
  kCoarse = 1,  ///< one variable per mapping
};

/// Quantized belief wire values (wire format v4): ship each remote µ as a
/// fixed-point log-odds quantum instead of two raw doubles, trading a
/// bounded per-value error for a multiple-times smaller steady-state
/// wire footprint. Off by default — posteriors stay bitwise-identical to
/// the unquantized engine unless a budget is set.
struct ValuePrecisionOptions {
  /// Maximum tolerated per-value log-odds error ε. 0 (default) disables
  /// quantization entirely (raw IEEE doubles on the wire). The finest
  /// adaptive tier uses `ValueBitsForBudget(ε)` fractional bits, i.e. a
  /// quantization step of at most ε/8.
  double error_budget = 0.0;
  /// Adapt precision to convergence: links start coarse (budget-relative
  /// step of ~8ε while residuals exceed 64ε) and step up monotonically to
  /// the fine tier as the peer's residual shrinks. When false, every
  /// bundle uses the fine tier from the first round.
  bool adaptive = true;
  /// Step converged links (residual below `EngineOptions::tolerance`) all
  /// the way back to exact raw doubles, spending wire bytes to pin the
  /// fixpoint once traffic is cheap.
  bool exact_at_convergence = false;
};

/// Byzantine-resilient belief admission (off by default). When enabled,
/// every inbound belief entry is validated semantically before it touches
/// replica state — finite normalizable measures, values consistent with
/// the bundle's declared quantization tier, no same-round equivocation —
/// and each neighbor link carries a decaying misbehavior score fed by
/// admission rejections, oscillation beyond a configurable bound, and
/// posterior-influence outliers. Crossing `soft_threshold` demotes the
/// link (absorbed beliefs damped toward uniform); crossing
/// `hard_threshold` quarantines it (bundles dropped entirely). Demotions
/// are sticky and replay deterministically from round-ordered evidence,
/// so guarded runs stay bitwise parallel-deterministic. With `enabled`
/// false the admission path is byte-for-byte the unguarded one.
struct ByzantineGuardOptions {
  bool enabled = false;

  /// Multiplicative per-round decay of each link's misbehavior score, in
  /// [0, 1): isolated violations (a delayed duplicate, one early
  /// oscillation) wash out; sustained misbehavior accumulates.
  double score_decay = 0.9;

  /// Score added per admission rejection (non-finite / negative /
  /// all-zero measures, quantization-tier mismatches, out-of-range or
  /// own-member-forging positions).
  double admission_weight = 2.0;
  /// Score added when a link sends conflicting values for the same
  /// factor position within one round (equivocation). Re-sending the
  /// *same* value (a duplicated envelope) is not a violation.
  double equivocation_weight = 4.0;
  /// Score added when a slot's value reverses direction
  /// `oscillation_bound` consecutive times by more than `flip_magnitude`
  /// log-odds each.
  double oscillation_weight = 1.0;
  /// Score added when a link's mean absorbed |Δ log-odds| for a round
  /// exceeds `outlier_ratio` times the median across this peer's
  /// not-yet-suspect links (the independent-corroboration weighting: a
  /// colluding neighbor cannot vouch a suspect back under the median).
  double outlier_weight = 0.5;

  /// Direction reversals tolerated per slot before they score.
  uint32_t oscillation_bound = 6;
  /// Minimum |Δ log-odds| for a move to count toward oscillation.
  double flip_magnitude = 0.75;
  /// Influence-outlier trigger: link mean vs median across clean links
  /// (requires at least 3 clean links; smaller neighborhoods skip the
  /// check).
  double outlier_ratio = 8.0;

  /// Demotion thresholds on the decayed score. Soft: absorbed beliefs
  /// are damped toward the uniform message by `soft_damping`. Hard: the
  /// link's bundles are dropped before absorption.
  double soft_threshold = 6.0;
  double hard_threshold = 12.0;
  /// Log-odds retention factor for soft-demoted links, in [0, 1):
  /// absorbed log-odds l becomes soft_damping · l.
  double soft_damping = 0.25;
};

/// Configuration of a `PdmsEngine`.
struct EngineOptions {
  /// Prior P(m = correct) for mappings without explicit prior information
  /// (maximum entropy: 0.5, Section 4.4).
  double default_prior = 0.5;
  /// ∆ — probability that two or more mapping errors compensate along a
  /// closure. When unset, each discovering peer estimates ∆ = 1/(s−1)
  /// from its schema size s, the paper's heuristic (Section 4.5: eleven
  /// attributes -> ∆ = 1/10).
  std::optional<double> delta_override;
  /// Semantic threshold θ: a query is forwarded through a mapping only if
  /// every query attribute has posterior correctness > θ (Section 2).
  double theta = 0.5;
  /// Forward queries through mappings that have no feedback evidence yet
  /// (standard-PDMS bootstrap behaviour; ⊥ attributes still block).
  bool forward_without_evidence = true;
  /// TTL for closure-discovery probes (Section 3.2.1).
  uint32_t probe_ttl = 6;
  /// Structural limits honored during discovery.
  ClosureFinderOptions closure_limits;
  /// Cached foreign probes per (peer, origin) for parallel-path detection.
  size_t max_cached_probes = 128;

  ScheduleKind schedule = ScheduleKind::kPeriodic;
  /// Remote-message period τ in ticks (periodic schedule).
  uint64_t period_ticks = 1;

  /// Worker threads used to execute inference rounds (per-peer
  /// `ComputeRound` and belief-bundle construction fan out across them).
  /// 1 = fully serial (no thread pool is created); 0 = one worker per
  /// hardware thread. Results are identical at every setting: peers only
  /// touch their own state during a round, and the engine issues all
  /// transport sends in canonical peer order.
  size_t parallelism = 1;

  /// Minimum peers per lane before a round fans out to the thread pool:
  /// with fewer, the wake/steal/join overhead outweighs the round work
  /// (1k-peer configs measured 0.90–0.97x serial speed when forced
  /// parallel) and the round runs inline instead. Purely a scheduling
  /// decision — results are identical either way. Set to 1 to fan out
  /// whenever there is at least one peer per lane (e.g. to exercise the
  /// parallel path in small tests; networks with fewer peers than lanes
  /// still run inline).
  size_t min_peers_per_lane = 1024;

  Granularity granularity = Granularity::kFine;

  /// Convergence: max posterior change per round below `tolerance` for
  /// `convergence_patience` consecutive rounds (0 = auto like the
  /// centralized engine: 1 lossless, ceil(3/P(send)) lossy).
  double tolerance = 1e-7;
  size_t convergence_patience = 0;
  /// Damping λ in [0,1) on local factor->variable message updates:
  /// message' = λ·old + (1−λ)·computed. Loopy BP on dense evidence graphs
  /// can oscillate (Section 3.1, [15]); damping restores convergence
  /// without moving the fixed point. 0 disables (the paper's plain
  /// schedule).
  double damping = 0.0;

  /// Quantized belief wire values (wire format v4); see
  /// `ValuePrecisionOptions`. Participates in `ComputeStateEpoch`: a
  /// snapshot taken under one budget cannot restore under another.
  ValuePrecisionOptions value_precision;

  /// Byzantine-resilient belief admission (see `ByzantineGuardOptions`).
  /// Participates in `ComputeStateEpoch`: guard state in a snapshot only
  /// restores under the configuration that produced it.
  ByzantineGuardOptions byzantine_guard;

  /// Seeded behavioral chaos: peers listed in the plan forge their
  /// outgoing belief values (lies, inversion, equivocation, collusion) at
  /// bundle send time. Replayable from the seed like the link-level
  /// `FaultPlan`s; see `ByzantinePlan` in net/fault_injection.h.
  ByzantinePlan byzantine;

  NetworkOptions network;
};

}  // namespace pdms

#endif  // PDMS_CORE_OPTIONS_H_
