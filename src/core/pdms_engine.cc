#include "core/pdms_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <thread>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace pdms {

PdmsEngine::PdmsEngine(Digraph graph, EngineOptions options,
                       std::unique_ptr<Transport> transport)
    : graph_(std::move(graph)),
      options_(options),
      transport_(std::move(transport)) {}

Result<std::unique_ptr<PdmsEngine>> PdmsEngine::Create(
    const Digraph& graph, std::vector<Schema> schemas,
    std::vector<SchemaMapping> mappings, const EngineOptions& options,
    std::unique_ptr<Transport> transport) {
  if (schemas.size() != graph.node_count()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu schemas, got %zu", graph.node_count(),
                  schemas.size()));
  }
  if (mappings.size() < graph.edge_capacity()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu mappings, got %zu", graph.edge_capacity(),
                  mappings.size()));
  }
  if (transport == nullptr) {
    transport = std::make_unique<SimTransport>(graph.node_count(),
                                               options.network);
  }
  if (transport->peer_count() != graph.node_count()) {
    return Status::InvalidArgument(
        StrFormat("transport '%s' covers %zu peers, topology has %zu",
                  std::string(transport->name()).c_str(),
                  transport->peer_count(), graph.node_count()));
  }
  std::unique_ptr<PdmsEngine> engine(
      new PdmsEngine(graph, options, std::move(transport)));
  const size_t parallelism =
      options.parallelism == 0
          ? std::max<size_t>(1, std::thread::hardware_concurrency())
          : options.parallelism;
  if (parallelism > 1) {
    engine->pool_ = std::make_unique<ThreadPool>(parallelism - 1);
  }
  engine->peers_.reserve(graph.node_count());
  for (PeerId p = 0; p < graph.node_count(); ++p) {
    engine->peers_.push_back(std::make_unique<Peer>(
        p, std::move(schemas[p]), &engine->graph_, &engine->options_));
  }
  for (EdgeId e = 0; e < graph.edge_capacity(); ++e) {
    if (!graph.edge_alive(e)) continue;
    PDMS_RETURN_IF_ERROR(
        engine->peers_[graph.edge(e).src]->AddMapping(e, std::move(mappings[e])));
  }
  return engine;
}

void PdmsEngine::SendAll(PeerId from, std::vector<Outgoing> messages) {
  for (Outgoing& message : messages) {
    transport_->Send(from, message.to, message.via, std::move(message.payload));
  }
}

void PdmsEngine::DispatchEnvelope(PeerId to, Envelope& envelope) {
  Peer& peer = *peers_[to];
  if (auto* probe = std::get_if<ProbeMessage>(&envelope.payload)) {
    SendAll(to, peer.HandleProbe(*probe));
  } else if (auto* feedback =
                 std::get_if<FeedbackAnnouncement>(&envelope.payload)) {
    const Status status = peer.IngestFeedback(*feedback);
    if (!status.ok()) LogRejection(status);
  } else if (auto* beliefs = std::get_if<BeliefMessage>(&envelope.payload)) {
    const Status status = peer.AbsorbBeliefBundle(envelope.from, *beliefs);
    if (!status.ok()) LogRejection(status);
  } else if (auto* query = std::get_if<QueryMessage>(&envelope.payload)) {
    for (const BeliefUpdate& update : query->piggyback) {
      peer.AbsorbBeliefUpdate(update);
    }
    const bool first_visit = !peer.SawQuery(query->query_id);
    QueryActions actions = peer.ProcessQuery(
        *query, options_.schedule == ScheduleKind::kLazy);
    const auto report_it = active_queries_.find(query->query_id);
    QueryReport* report =
        report_it == active_queries_.end() ? nullptr : report_it->second;
    if (report != nullptr && first_visit) {
      report->reached.push_back(to);
      for (ResultRow& row : actions.rows) {
        report->rows.emplace_back(to, std::move(row));
      }
      for (const Outgoing& forward : actions.forwards) {
        if (forward.via.has_value()) {
          report->used_edges.push_back(*forward.via);
        }
      }
      for (EdgeId blocked : actions.blocked_edges) {
        report->blocked_edges.push_back(blocked);
      }
      report->messages += actions.forwards.size();
    }
    SendAll(to, std::move(actions.forwards));
  }
}

void PdmsEngine::DeliverAll() {
  for (PeerId p = 0; p < peers_.size(); ++p) {
    if (!IsLocalPeer(p)) continue;
    for (Envelope& envelope : transport_->Drain(p)) {
      DispatchEnvelope(p, envelope);
    }
  }
}

Status PdmsEngine::RestrictToLocalPeers(std::vector<bool> is_local) {
  if (is_local.size() != peers_.size()) {
    return Status::InvalidArgument(
        StrFormat("shard mask covers %zu peers, network has %zu",
                  is_local.size(), peers_.size()));
  }
  if (std::find(is_local.begin(), is_local.end(), true) == is_local.end()) {
    return Status::InvalidArgument("shard mask marks no peer local");
  }
  is_local_ = std::move(is_local);
  return Status::Ok();
}

void PdmsEngine::StartLocalProbes() {
  for (PeerId p = 0; p < peers_.size(); ++p) {
    if (IsLocalPeer(p)) SendAll(p, peers_[p]->StartProbes());
  }
}

void PdmsEngine::DeliverTick() {
  transport_->AdvanceTick();
  DeliverAll();
}

bool PdmsEngine::UsePool() const {
  // Fan out only when every lane gets a meaningful chunk of peers: below
  // the threshold the pool's wake/steal/join overhead exceeds the round
  // itself (1k-peer configs measured *slower* in parallel).
  if (pool_ == nullptr) return false;
  const size_t lanes = pool_->thread_count() + 1;
  return peers_.size() >= options_.min_peers_per_lane * lanes;
}

void PdmsEngine::ForEachPeer(const std::function<void(size_t)>& fn) {
  if (!UsePool()) {
    for (size_t p = 0; p < peers_.size(); ++p) fn(p);
    return;
  }
  pool_->ParallelFor(0, peers_.size(), fn);
}

void PdmsEngine::DeliverRoundMessages() {
  const size_t n = peers_.size();
  round_batches_.resize(n);
  ForEachPeer([this](size_t p) {
    if (!IsLocalPeer(static_cast<PeerId>(p))) return;
    std::vector<Envelope> batch = transport_->Drain(static_cast<PeerId>(p));
    bool peer_local = true;
    for (const Envelope& envelope : batch) {
      const MessageKind kind = KindOf(envelope.payload);
      if (kind != MessageKind::kBelief && kind != MessageKind::kFeedback) {
        peer_local = false;
        break;
      }
    }
    if (!peer_local) {
      // Probe / query traffic sends onward and touches shared query
      // reports: preserve within-batch order and hand the whole batch to
      // the serial phase below.
      round_batches_[p] = std::move(batch);
      return;
    }
    Peer& peer = *peers_[p];
    for (Envelope& envelope : batch) {
      if (auto* beliefs = std::get_if<BeliefMessage>(&envelope.payload)) {
        const Status status =
            peer.AbsorbBeliefBundle(envelope.from, *beliefs);
        if (!status.ok()) LogRejection(status);
      } else if (auto* feedback =
                     std::get_if<FeedbackAnnouncement>(&envelope.payload)) {
        const Status status = peer.IngestFeedback(*feedback);
        if (!status.ok()) LogRejection(status);
      }
    }
  });
  for (PeerId p = 0; p < n; ++p) {
    for (Envelope& envelope : round_batches_[p]) {
      DispatchEnvelope(p, envelope);
    }
    round_batches_[p].clear();
  }
}

size_t PdmsEngine::DiscoverClosures() {
  StartLocalProbes();
  // Probe traffic is self-limiting (TTL + simple routes): run to quiet.
  while (transport_->HasPendingMessages()) {
    transport_->AdvanceTick();
    DeliverAll();
  }
  return UniqueFactorCount();
}

void PdmsEngine::InjectFeedback(const FeedbackAnnouncement& announcement) {
  std::set<PeerId> owners;
  for (EdgeId edge : announcement.closure.edges) {
    if (graph_.edge_alive(edge)) owners.insert(graph_.edge(edge).src);
  }
  for (PeerId owner : owners) {
    const Status status = peers_[owner]->IngestFeedback(announcement);
    if (!status.ok()) LogRejection(status);
  }
}

RoundReport PdmsEngine::RunRound() {
  RoundReport report;
  transport_->AdvanceTick();
  DeliverRoundMessages();

  // Peers compute their rounds independently by design (Section 4.1): fan
  // the loop out across the pool and reduce the residual afterwards.
  const size_t n = peers_.size();
  round_changes_.assign(n, 0.0);
  ForEachPeer([this](size_t p) {
    if (!IsLocalPeer(static_cast<PeerId>(p))) return;
    round_changes_[p] = peers_[p]->ComputeRound();
  });
  report.max_posterior_change = 0.0;
  for (double change : round_changes_) {
    report.max_posterior_change = std::max(report.max_posterior_change, change);
  }

  if (options_.schedule == ScheduleKind::kPeriodic &&
      transport_->now() % options_.period_ticks == 0) {
    // Bundle construction is the expensive half of the fan-out and is
    // peer-local: parallelize it. The actual sends stay in canonical peer
    // order so lossy transports draw their drop decisions in the same
    // sequence at every parallelism level (the determinism guarantee).
    round_outgoing_.resize(n);
    // Send in place (moving only the payloads) so each peer's collected
    // vector keeps its capacity — the arena CollectOutgoingBeliefs
    // refills next round.
    const auto send_peer = [&](PeerId p) {
      for (Outgoing& message : round_outgoing_[p]) {
        const auto& bundle = std::get<BeliefMessage>(message.payload);
        report.belief_updates_sent += bundle.update_count();
        ++report.belief_envelopes_sent;
        transport_->Send(p, message.to, message.via,
                         std::move(message.payload));
      }
      round_outgoing_[p].clear();
    };
    if (UsePool()) {
      ForEachPeer([this](size_t p) {
        if (!IsLocalPeer(static_cast<PeerId>(p))) return;
        peers_[p]->CollectOutgoingBeliefs(&round_outgoing_[p]);
      });
      for (PeerId p = 0; p < n; ++p) send_peer(p);
    } else {
      // Inline mode: fuse collect and send per peer — identical send
      // order, but the transport's wire-size accounting walks each bundle
      // while it is still cache-hot from construction.
      for (PeerId p = 0; p < n; ++p) {
        if (!IsLocalPeer(p)) continue;
        peers_[p]->CollectOutgoingBeliefs(&round_outgoing_[p]);
        send_peer(p);
      }
    }
  }
  return report;
}

ConvergenceReport PdmsEngine::RunToConvergence(size_t max_rounds,
                                               const RoundCallback& on_round) {
  ConvergenceReport report;
  size_t patience = options_.convergence_patience;
  if (patience == 0) {
    patience = options_.network.send_probability >= 1.0
                   ? 1
                   : static_cast<size_t>(
                         std::ceil(3.0 / options_.network.send_probability));
  }
  size_t quiet = 0;
  for (size_t round = 0; round < max_rounds; ++round) {
    const RoundReport step = RunRound();
    report.rounds = round + 1;
    report.belief_updates_sent += step.belief_updates_sent;
    if (on_round) on_round(report.rounds, step);
    quiet = step.max_posterior_change < options_.tolerance ? quiet + 1 : 0;
    if (quiet >= patience) {
      report.converged = true;
      break;
    }
  }
  return report;
}

double PdmsEngine::Posterior(EdgeId edge, AttributeId attribute) const {
  return peers_[graph_.edge(edge).src]->Posterior(
      MappingVarKey{edge, attribute});
}

double PdmsEngine::PosteriorCoarse(EdgeId edge) const {
  return peers_[graph_.edge(edge).src]->Posterior(
      MappingVarKey{edge, MappingVarKey::kWholeMapping});
}

QueryReport PdmsEngine::IssueQuery(PeerId origin, const Query& query,
                                   uint32_t ttl) {
  const QueryRequest request{origin, query, ttl};
  return std::move(IssueQueries({&request, 1}).front());
}

std::vector<QueryReport> PdmsEngine::IssueQueries(
    std::span<const QueryRequest> requests) {
  std::vector<QueryReport> reports(requests.size());
  active_queries_.clear();
  for (size_t i = 0; i < requests.size(); ++i) {
    QueryMessage message;
    message.query_id = next_query_id_++;
    message.origin = requests[i].origin;
    message.ttl = requests[i].ttl;
    message.query = requests[i].query;
    active_queries_[message.query_id] = &reports[i];
    transport_->Send(requests[i].origin, requests[i].origin, std::nullopt,
                     std::move(message));
    ++reports[i].messages;
  }
  while (transport_->HasPendingMessages()) {
    transport_->AdvanceTick();
    DeliverAll();
  }
  active_queries_.clear();
  return reports;
}

void PdmsEngine::SetPrior(EdgeId edge, AttributeId attribute, double prior) {
  peers_[graph_.edge(edge).src]->SetPrior(MappingVarKey{edge, attribute},
                                          prior);
}

double PdmsEngine::Prior(EdgeId edge, AttributeId attribute) const {
  return peers_[graph_.edge(edge).src]->Prior(MappingVarKey{edge, attribute});
}

void PdmsEngine::UpdatePriors() {
  for (auto& peer : peers_) peer->UpdatePriorsFromPosteriors();
}

Status PdmsEngine::RemoveMapping(EdgeId edge) {
  if (!graph_.edge_alive(edge)) {
    return Status::NotFound(StrFormat("edge %u is not alive", edge));
  }
  for (auto& peer : peers_) peer->RemoveMapping(edge);
  return graph_.RemoveEdge(edge);
}

// --- Durable state --------------------------------------------------------------

PdmsEngine::EngineImage PdmsEngine::CaptureImage() const {
  EngineImage image;
  image.edge_alive = graph_.alive_flags();
  image.peers.reserve(peers_.size());
  for (const auto& peer : peers_) image.peers.push_back(peer->CaptureImage());
  image.next_query_id = next_query_id_;
  return image;
}

Status PdmsEngine::RestoreImage(const EngineImage& image) {
  return RestoreImage(EngineImage(image));
}

Status PdmsEngine::RestoreImage(EngineImage&& image) {
  if (image.peers.size() != peers_.size()) {
    return Status::InvalidArgument(
        StrFormat("image holds %zu peers, engine has %zu", image.peers.size(),
                  peers_.size()));
  }
  PDMS_RETURN_IF_ERROR(graph_.RestoreEdges(image.edge_alive));
  for (size_t p = 0; p < peers_.size(); ++p) {
    peers_[p]->RestoreImage(std::move(image.peers[p]));
  }
  next_query_id_ = image.next_query_id;
  return Status::Ok();
}

size_t PdmsEngine::UniqueFactorCount() const {
  std::unordered_set<FactorId, FactorIdHash> ids;
  for (const auto& peer : peers_) {
    for (const Peer::ReplicaView& view : peer->ReplicaViews()) {
      ids.insert(view.id);
    }
  }
  return ids.size();
}

void PdmsEngine::LogRejection(const Status& status) {
  const uint64_t n = rejection_logs_.fetch_add(1, std::memory_order_relaxed);
  if (n < 8) {
    PDMS_LOG_WARNING << status.message();
  } else if ((n + 1) % 1024 == 0) {
    PDMS_LOG_WARNING << status.message() << " ("
                     << static_cast<unsigned long long>(n + 1)
                     << " rejections so far, sampling 1/1024)";
  }
}

uint64_t PdmsEngine::GuardRejectedBeliefs() const {
  uint64_t total = 0;
  for (size_t p = 0; p < peers_.size(); ++p) {
    if (IsLocalPeer(static_cast<PeerId>(p))) {
      total += peers_[p]->guard_rejected_entries();
    }
  }
  return total;
}

uint64_t PdmsEngine::GuardDemotedLinks() const {
  uint64_t total = 0;
  for (size_t p = 0; p < peers_.size(); ++p) {
    if (IsLocalPeer(static_cast<PeerId>(p))) {
      total += peers_[p]->guard_demoted_links();
    }
  }
  return total;
}

uint64_t PdmsEngine::GuardQuarantinedLinks() const {
  uint64_t total = 0;
  for (size_t p = 0; p < peers_.size(); ++p) {
    if (IsLocalPeer(static_cast<PeerId>(p))) {
      total += peers_[p]->guard_quarantined_links();
    }
  }
  return total;
}

FactorGraph PdmsEngine::BuildGlobalFactorGraph(
    std::vector<MappingVarKey>* vars_out) const {
  FactorGraph graph;
  std::map<MappingVarKey, VarId> var_ids;
  std::vector<MappingVarKey> vars;
  std::unordered_set<FactorId, FactorIdHash> added_factors;

  auto var_id = [&](const MappingVarKey& key) {
    const auto it = var_ids.find(key);
    if (it != var_ids.end()) return it->second;
    const VarId id = graph.AddVariable(key.ToString());
    var_ids.emplace(key, id);
    vars.push_back(key);
    // Prior factor from the owner's belief.
    const PeerId owner = graph_.edge(key.edge).src;
    Result<FactorIndex> prior = graph.AddFactor(
        std::make_unique<PriorFactor>(id, peers_[owner]->Prior(key)));
    assert(prior.ok());
    (void)prior;
    return id;
  };

  for (const auto& peer : peers_) {
    for (const Peer::ReplicaView& view : peer->ReplicaViews()) {
      if (!added_factors.insert(view.id).second) continue;
      std::vector<VarId> scope;
      scope.reserve(view.members.size());
      for (const MappingVarKey& member : view.members) {
        scope.push_back(var_id(member));
      }
      Result<FactorIndex> factor =
          graph.AddFactor(std::make_unique<CycleFeedbackFactor>(
              scope, view.sign == FeedbackSign::kPositive, view.delta));
      assert(factor.ok());
      (void)factor;
    }
  }
  if (vars_out != nullptr) *vars_out = vars;
  return graph;
}

}  // namespace pdms
