#include "core/pdms_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/string_util.h"

namespace pdms {

PdmsEngine::PdmsEngine(Digraph graph, EngineOptions options)
    : graph_(std::move(graph)),
      options_(options),
      network_(graph_.node_count(), options.network) {}

Result<std::unique_ptr<PdmsEngine>> PdmsEngine::Create(
    const Digraph& graph, std::vector<Schema> schemas,
    std::vector<SchemaMapping> mappings, const EngineOptions& options) {
  if (schemas.size() != graph.node_count()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu schemas, got %zu", graph.node_count(),
                  schemas.size()));
  }
  if (mappings.size() < graph.edge_capacity()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu mappings, got %zu", graph.edge_capacity(),
                  mappings.size()));
  }
  std::unique_ptr<PdmsEngine> engine(new PdmsEngine(graph, options));
  engine->peers_.reserve(graph.node_count());
  for (PeerId p = 0; p < graph.node_count(); ++p) {
    engine->peers_.push_back(std::make_unique<Peer>(
        p, std::move(schemas[p]), &engine->graph_, &engine->options_));
  }
  for (EdgeId e = 0; e < graph.edge_capacity(); ++e) {
    if (!graph.edge_alive(e)) continue;
    PDMS_RETURN_IF_ERROR(
        engine->peers_[graph.edge(e).src]->AddMapping(e, std::move(mappings[e])));
  }
  return engine;
}

Result<std::unique_ptr<PdmsEngine>> PdmsEngine::FromSynthetic(
    const SyntheticPdms& synthetic, const EngineOptions& options) {
  return Create(synthetic.graph, synthetic.schemas, synthetic.mappings,
                options);
}

void PdmsEngine::SendAll(PeerId from, std::vector<Outgoing> messages) {
  for (Outgoing& message : messages) {
    network_.Send(from, message.to, message.via, std::move(message.payload));
  }
}

void PdmsEngine::DeliverAll() {
  for (PeerId p = 0; p < peers_.size(); ++p) {
    for (Envelope& envelope : network_.Drain(p)) {
      Peer& peer = *peers_[p];
      if (auto* probe = std::get_if<ProbeMessage>(&envelope.payload)) {
        SendAll(p, peer.HandleProbe(*probe));
      } else if (auto* feedback =
                     std::get_if<FeedbackAnnouncement>(&envelope.payload)) {
        peer.IngestFeedback(*feedback);
      } else if (auto* beliefs = std::get_if<BeliefMessage>(&envelope.payload)) {
        for (const BeliefUpdate& update : beliefs->updates) {
          peer.AbsorbBeliefUpdate(update);
        }
      } else if (auto* query = std::get_if<QueryMessage>(&envelope.payload)) {
        for (const BeliefUpdate& update : query->piggyback) {
          peer.AbsorbBeliefUpdate(update);
        }
        const bool first_visit = !peer.SawQuery(query->query_id);
        QueryActions actions = peer.ProcessQuery(
            *query, options_.schedule == ScheduleKind::kLazy);
        if (query_report_ != nullptr && first_visit) {
          query_report_->reached.push_back(p);
          for (ResultRow& row : actions.rows) {
            query_report_->rows.emplace_back(p, std::move(row));
          }
          for (const Outgoing& forward : actions.forwards) {
            if (forward.via.has_value()) {
              query_report_->used_edges.push_back(*forward.via);
            }
          }
          for (EdgeId blocked : actions.blocked_edges) {
            query_report_->blocked_edges.push_back(blocked);
          }
          query_report_->messages += actions.forwards.size();
        }
        SendAll(p, std::move(actions.forwards));
      }
    }
  }
}

size_t PdmsEngine::DiscoverClosures() {
  for (PeerId p = 0; p < peers_.size(); ++p) {
    SendAll(p, peers_[p]->StartProbes());
  }
  // Probe traffic is self-limiting (TTL + simple routes): run to quiet.
  while (network_.HasPendingMessages()) {
    network_.AdvanceTick();
    DeliverAll();
  }
  return UniqueFactorCount();
}

void PdmsEngine::InjectFeedback(const FeedbackAnnouncement& announcement) {
  std::set<PeerId> owners;
  for (EdgeId edge : announcement.closure.edges) {
    if (graph_.edge_alive(edge)) owners.insert(graph_.edge(edge).src);
  }
  for (PeerId owner : owners) {
    peers_[owner]->IngestFeedback(announcement);
  }
}

RoundReport PdmsEngine::RunRound() {
  RoundReport report;
  network_.AdvanceTick();
  DeliverAll();

  report.max_posterior_change = 0.0;
  for (auto& peer : peers_) {
    report.max_posterior_change =
        std::max(report.max_posterior_change, peer->ComputeRound());
  }

  if (options_.schedule == ScheduleKind::kPeriodic &&
      network_.now() % options_.period_ticks == 0) {
    for (PeerId p = 0; p < peers_.size(); ++p) {
      std::vector<Outgoing> outgoing = peers_[p]->CollectOutgoingBeliefs();
      for (const Outgoing& message : outgoing) {
        const auto& bundle = std::get<BeliefMessage>(message.payload);
        report.belief_updates_sent += bundle.updates.size();
        ++report.belief_envelopes_sent;
      }
      SendAll(p, std::move(outgoing));
    }
  }
  return report;
}

ConvergenceReport PdmsEngine::RunToConvergence(size_t max_rounds) {
  ConvergenceReport report;
  size_t patience = options_.convergence_patience;
  if (patience == 0) {
    patience = options_.network.send_probability >= 1.0
                   ? 1
                   : static_cast<size_t>(
                         std::ceil(3.0 / options_.network.send_probability));
  }
  size_t quiet = 0;
  for (size_t round = 0; round < max_rounds; ++round) {
    const RoundReport step = RunRound();
    report.rounds = round + 1;
    report.belief_updates_sent += step.belief_updates_sent;
    if (!tracked_.empty()) {
      std::vector<double> snapshot;
      snapshot.reserve(tracked_.size());
      for (const MappingVarKey& var : tracked_) {
        snapshot.push_back(
            peers_[graph_.edge(var.edge).src]->Posterior(var));
      }
      report.trajectory.push_back(std::move(snapshot));
    }
    quiet = step.max_posterior_change < options_.tolerance ? quiet + 1 : 0;
    if (quiet >= patience) {
      report.converged = true;
      break;
    }
  }
  return report;
}

double PdmsEngine::Posterior(EdgeId edge, AttributeId attribute) const {
  return peers_[graph_.edge(edge).src]->Posterior(
      MappingVarKey{edge, attribute});
}

double PdmsEngine::PosteriorCoarse(EdgeId edge) const {
  return peers_[graph_.edge(edge).src]->Posterior(
      MappingVarKey{edge, MappingVarKey::kWholeMapping});
}

QueryReport PdmsEngine::IssueQuery(PeerId origin, const Query& query,
                                   uint32_t ttl) {
  QueryReport report;
  query_report_ = &report;
  QueryMessage message;
  message.query_id = next_query_id_++;
  message.origin = origin;
  message.ttl = ttl;
  message.query = query;
  network_.Send(origin, origin, std::nullopt, message);
  ++report.messages;
  while (network_.HasPendingMessages()) {
    network_.AdvanceTick();
    DeliverAll();
  }
  query_report_ = nullptr;
  return report;
}

void PdmsEngine::SetPrior(EdgeId edge, AttributeId attribute, double prior) {
  peers_[graph_.edge(edge).src]->SetPrior(MappingVarKey{edge, attribute},
                                          prior);
}

double PdmsEngine::Prior(EdgeId edge, AttributeId attribute) const {
  return peers_[graph_.edge(edge).src]->Prior(MappingVarKey{edge, attribute});
}

void PdmsEngine::UpdatePriors() {
  for (auto& peer : peers_) peer->UpdatePriorsFromPosteriors();
}

Status PdmsEngine::RemoveMapping(EdgeId edge) {
  if (!graph_.edge_alive(edge)) {
    return Status::NotFound(StrFormat("edge %u is not alive", edge));
  }
  for (auto& peer : peers_) peer->RemoveMapping(edge);
  return graph_.RemoveEdge(edge);
}

size_t PdmsEngine::UniqueFactorCount() const {
  std::set<FactorKey> keys;
  for (const auto& peer : peers_) {
    for (const Peer::ReplicaView& view : peer->ReplicaViews()) {
      keys.insert(view.key);
    }
  }
  return keys.size();
}

FactorGraph PdmsEngine::BuildGlobalFactorGraph(
    std::vector<MappingVarKey>* vars_out) const {
  FactorGraph graph;
  std::map<MappingVarKey, VarId> var_ids;
  std::vector<MappingVarKey> vars;
  std::set<FactorKey> added_factors;

  auto var_id = [&](const MappingVarKey& key) {
    const auto it = var_ids.find(key);
    if (it != var_ids.end()) return it->second;
    const VarId id = graph.AddVariable(key.ToString());
    var_ids.emplace(key, id);
    vars.push_back(key);
    // Prior factor from the owner's belief.
    const PeerId owner = graph_.edge(key.edge).src;
    Result<FactorId> prior = graph.AddFactor(
        std::make_unique<PriorFactor>(id, peers_[owner]->Prior(key)));
    assert(prior.ok());
    (void)prior;
    return id;
  };

  for (const auto& peer : peers_) {
    for (const Peer::ReplicaView& view : peer->ReplicaViews()) {
      if (!added_factors.insert(view.key).second) continue;
      std::vector<VarId> scope;
      scope.reserve(view.members.size());
      for (const MappingVarKey& member : view.members) {
        scope.push_back(var_id(member));
      }
      Result<FactorId> factor =
          graph.AddFactor(std::make_unique<CycleFeedbackFactor>(
              scope, view.sign == FeedbackSign::kPositive, view.delta));
      assert(factor.ok());
      (void)factor;
    }
  }
  if (vars_out != nullptr) *vars_out = vars;
  return graph;
}

}  // namespace pdms
