#ifndef PDMS_CORE_PEER_H_
#define PDMS_CORE_PEER_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/options.h"
#include "factor/factor.h"
#include "graph/digraph.h"
#include "net/message.h"
#include "query/document_store.h"
#include "query/query.h"

namespace pdms {

/// A message a peer wants delivered.
struct Outgoing {
  PeerId to = 0;
  std::optional<EdgeId> via;
  Payload payload;
};

/// Outcome of local query processing.
struct QueryActions {
  /// Rows produced by the local database.
  std::vector<ResultRow> rows;
  /// Translated queries to forward (θ-gate passed).
  std::vector<Outgoing> forwards;
  /// Mapping links the θ-gate blocked.
  std::vector<EdgeId> blocked_edges;
};

/// One autonomous peer database: schema, documents, outgoing mappings, and
/// the peer's fragment of the global factor graph (Section 4.1).
///
/// A peer stores one factor replica per announced (closure, root-attribute)
/// pair touching any of its outgoing mappings, together with the last
/// var->factor message received from each foreign variable. Everything the
/// peer computes uses only this local state plus incoming messages — the
/// decentralization claim of the paper, made literal.
class Peer {
 public:
  /// `graph` is the shared topology (used only to resolve edge endpoints,
  /// information a real deployment would carry in probe metadata).
  Peer(PeerId id, Schema schema, const Digraph* graph,
       const EngineOptions* options);

  PeerId id() const { return id_; }
  const Schema& schema() const { return schema_; }
  DocumentStore& store() { return store_; }
  const DocumentStore& store() const { return store_; }

  // --- Mappings -------------------------------------------------------------

  /// Registers the outgoing mapping for `edge` (this peer must be its
  /// source). Fails with `AlreadyExists` on duplicates.
  Status AddMapping(EdgeId edge, SchemaMapping mapping);

  /// Drops a mapping and every factor replica that references it (churn).
  void RemoveMapping(EdgeId edge);

  /// The outgoing mapping stored for `edge`, or nullptr.
  const SchemaMapping* mapping(EdgeId edge) const;

  std::vector<EdgeId> OutgoingEdges() const;

  // --- Priors & posteriors ----------------------------------------------------

  /// Sets explicit prior belief for one mapping variable (expert
  /// validation, Section 4.4). Resets the variable's evidence history.
  void SetPrior(const MappingVarKey& var, double prior);
  double Prior(const MappingVarKey& var) const;

  /// Posterior P(var = correct). Follows the ⊥ rule: if the mapping has no
  /// image for the attribute, the posterior is 0 (Section 3.2.1). Without
  /// any feedback evidence, returns the prior.
  double Posterior(const MappingVarKey& var) const;
  Belief PosteriorBelief(const MappingVarKey& var) const;

  /// Whether any factor replica references (edge, attribute).
  bool HasEvidence(const MappingVarKey& var) const;

  /// EM-style prior update (Section 4.4): records the current posterior of
  /// every owned variable with evidence as a new observation and sets
  /// prior = mean of observations (the initial prior counts as the first).
  void UpdatePriorsFromPosteriors();

  // --- Embedded message passing ----------------------------------------------

  /// Ingests an announced closure + feedback (creates factor replicas).
  void IngestFeedback(const FeedbackAnnouncement& announcement);

  /// Stores a remote var->factor message.
  void AbsorbBeliefUpdate(const BeliefUpdate& update);

  /// Executes one local inference round: recomputes factor->var messages
  /// from stored var->factor state, then var->factor messages for owned
  /// variables. Returns the max normalized posterior change.
  double ComputeRound();

  /// Remote messages to the other owners of this peer's factor replicas,
  /// bundled per recipient (the Section 4.3.1 periodic payload).
  std::vector<Outgoing> CollectOutgoingBeliefs() const;

  /// Belief updates pertaining to mapping `edge` (for lazy piggybacking,
  /// Section 4.3.2).
  std::vector<BeliefUpdate> PiggybackUpdatesFor(EdgeId edge) const;

  /// Number of factor replicas currently stored.
  size_t replica_count() const { return replicas_.size(); }

  /// Read-only summary of one stored factor replica (engine introspection:
  /// global-factor-graph reconstruction, baselines, debugging).
  struct ReplicaView {
    FactorKey key;
    FeedbackSign sign = FeedbackSign::kNeutral;
    std::vector<MappingVarKey> members;
    double delta = 0.1;
    Closure::Kind kind = Closure::Kind::kCycle;
  };
  std::vector<ReplicaView> ReplicaViews() const;

  /// Per-period remote-message bound: Σ over replicas of
  /// own_members · (l − 1). On directed simple cycles a peer owns exactly
  /// one member, so this reduces to the paper's Σ_ci (l_ci − 1) bound
  /// (Section 4.3.1); parallel-path sources own both path heads and get
  /// the correspondingly larger bound.
  size_t RemoteMessageBound() const;

  // --- Probes & discovery -----------------------------------------------------

  /// Emits this peer's initial probes (one per outgoing mapping).
  std::vector<Outgoing> StartProbes() const;

  /// Handles an arriving probe: may complete a cycle, detect parallel
  /// paths (announcing feedback to member owners), and forward the probe.
  std::vector<Outgoing> HandleProbe(const ProbeMessage& probe);

  // --- Queries ----------------------------------------------------------------

  /// Processes an arriving (or locally issued) query: executes it against
  /// the local store and prepares θ-gated forwards. `piggyback_beliefs`
  /// appends this peer's belief messages to forwarded queries (lazy
  /// schedule).
  QueryActions ProcessQuery(const QueryMessage& message,
                            bool piggyback_beliefs);

  /// Whether this peer already processed the given query id.
  bool SawQuery(uint64_t query_id) const {
    return seen_queries_.count(query_id) > 0;
  }

 private:
  /// One replicated feedback factor (Section 4.1 local factor graph).
  struct Replica {
    Closure closure;
    FeedbackSign sign = FeedbackSign::kNeutral;
    std::vector<MappingVarKey> members;
    std::vector<PeerId> owner_of_member;
    double delta = 0.1;
    /// The factor function (variables are member positions).
    std::unique_ptr<CycleFeedbackFactor> factor;
    /// Last µ_{member -> factor} per member (unit until heard otherwise).
    std::vector<Belief> var_to_factor;
    /// µ_{factor -> member}, maintained for *owned* members.
    std::vector<Belief> factor_to_var;
  };

  /// ∆ used by this peer when announcing feedback.
  double EffectiveDelta() const;

  /// Per-attribute feedback for a closed cycle probe.
  std::vector<AttributeFeedback> CycleFeedback(const ProbeMessage& probe) const;

  /// Per-attribute feedback for two independent parallel-path probes.
  std::vector<AttributeFeedback> ParallelFeedback(
      const ProbeMessage& first, const ProbeMessage& second) const;

  /// Coarse-granularity aggregation of per-attribute feedback.
  static std::vector<AttributeFeedback> CoarsenFeedback(
      std::vector<AttributeFeedback> fine);

  /// Sends `announcement` to every distinct owner of a member mapping.
  void AnnounceToOwners(const FeedbackAnnouncement& announcement,
                        std::vector<Outgoing>* out) const;

  /// Node sequence of a probe route (origin, then successive edge dsts).
  std::vector<NodeId> RouteNodes(const std::vector<EdgeId>& route) const;

  /// True if the two routes share no edge and no interior node.
  bool RoutesIndependent(const std::vector<EdgeId>& a,
                         const std::vector<EdgeId>& b) const;

  /// The θ-gate for a query attribute over one mapping (see
  /// EngineOptions::forward_without_evidence).
  bool GateAllows(EdgeId edge, AttributeId attribute) const;

  PeerId id_;
  Schema schema_;
  const Digraph* graph_;
  const EngineOptions* options_;
  DocumentStore store_;

  std::map<EdgeId, SchemaMapping> mappings_;
  std::map<MappingVarKey, double> priors_;
  /// EM evidence accumulators: (count, sum) per variable.
  std::map<MappingVarKey, std::pair<uint64_t, double>> evidence_;

  std::map<FactorKey, Replica> replicas_;
  /// Replica keys per owned variable.
  std::map<MappingVarKey, std::vector<FactorKey>> factors_of_var_;
  /// Posteriors at the end of the previous round (for convergence).
  std::map<MappingVarKey, double> last_posteriors_;

  /// Closures this peer has already announced (dedup).
  std::set<std::string> announced_;
  /// Cached foreign probes per origin for parallel detection.
  std::map<PeerId, std::vector<ProbeMessage>> probe_cache_;
  std::set<uint64_t> seen_queries_;
};

}  // namespace pdms

#endif  // PDMS_CORE_PEER_H_
