#ifndef PDMS_CORE_PEER_H_
#define PDMS_CORE_PEER_H_

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/options.h"
#include "factor/factor.h"
#include "graph/digraph.h"
#include "net/message.h"
#include "query/document_store.h"
#include "query/query.h"

namespace pdms {

/// A message a peer wants delivered.
struct Outgoing {
  PeerId to = 0;
  std::optional<EdgeId> via;
  Payload payload;
};

/// Outcome of local query processing.
struct QueryActions {
  /// Rows produced by the local database.
  std::vector<ResultRow> rows;
  /// Translated queries to forward (θ-gate passed).
  std::vector<Outgoing> forwards;
  /// Mapping links the θ-gate blocked.
  std::vector<EdgeId> blocked_edges;
};

// --- Adaptive value-precision tiers --------------------------------------------
//
// Under a value error budget (EngineOptions::value_precision) every belief
// link carries a monotone precision tier: coarse quanta while the sending
// peer's residual is large, stepping to fine — and optionally back to
// exact raw doubles — as convergence nears. The tier is transmit-side
// state only (bundles are self-describing), so step-ups survive loss and
// mixed-precision traffic trivially.

/// Number of value-precision tiers (coarse, mid, fine, exact).
inline constexpr uint32_t kValueRankCount = 4;
/// The tier whose bundles return to raw doubles.
inline constexpr uint32_t kValueRankExact = 3;

/// Fractional log-odds bits a bundle at `rank` uses under `precision`:
/// fine = ValueBitsForBudget(budget), mid/coarse = 3/6 fewer bits
/// (clamped at 2), exact = 0 (raw doubles). With `adaptive` false, every
/// rank below exact collapses to the fine tier.
uint32_t ValueRankBits(const ValuePrecisionOptions& precision, uint32_t rank);

/// Target tier for a peer whose last round's max posterior change was
/// `residual`: coarse above 64ε, mid above 8ε, fine below — and exact
/// once the residual clears `tolerance`, when `exact_at_convergence` is
/// set. Links only ever step toward this target, never back.
uint32_t ValueRankTarget(const ValuePrecisionOptions& precision,
                         double residual, double tolerance);

/// One autonomous peer database: schema, documents, outgoing mappings, and
/// the peer's fragment of the global factor graph (Section 4.1).
///
/// A peer stores one factor replica per announced (closure, root-attribute)
/// pair touching any of its outgoing mappings, together with the last
/// var->factor message received from each foreign variable. Everything the
/// peer computes uses only this local state plus incoming messages — the
/// decentralization claim of the paper, made literal. Because rounds are
/// strictly peer-local, the engine may execute `ComputeRound` for distinct
/// peers on distinct threads; a single `Peer` is not itself thread-safe.
///
/// Hot-path layout: replicas and mapping variables are interned into dense
/// arrays (`replicas_`, `vars_`) indexed by 128-bit `FactorId` fingerprints
/// (identity-hashed — no string keys anywhere past ingest), and each
/// variable keeps its (replica, position) slots. *All* per-replica hot
/// state lives in contiguous structure-of-arrays pools addressed by
/// base/length offsets from the flat `ReplicaHot` array: the message pools
/// (`var_to_factor_pool_`, `factor_to_var_pool_`, slot = `msg_base +
/// position`), the member scope and its owners (`member_pool_`,
/// `member_owner_pool_`, same slots), and the owned positions
/// (`owned_pos_pool_`). `ComputeRound` and `AbsorbBeliefUpdate` therefore
/// touch no per-replica heap vectors at all — the cold `Replica` structs
/// exist only for ingest, introspection and rebuilds — and perform no heap
/// allocation after the first round with a given evidence set. Outgoing
/// belief bundles are emitted from per-recipient routing tables
/// precomputed at ingest, with factor identity compressed to link-local
/// session aliases (`AliasSessionTx`/`AliasSessionRx` in net/message.h).
class Peer {
 public:
  /// `graph` is the shared topology (used only to resolve edge endpoints,
  /// information a real deployment would carry in probe metadata).
  Peer(PeerId id, Schema schema, const Digraph* graph,
       const EngineOptions* options);

  PeerId id() const { return id_; }
  const Schema& schema() const { return schema_; }
  DocumentStore& store() { return store_; }
  const DocumentStore& store() const { return store_; }

  // --- Mappings -------------------------------------------------------------

  /// Registers the outgoing mapping for `edge` (this peer must be its
  /// source). Fails with `AlreadyExists` on duplicates.
  Status AddMapping(EdgeId edge, SchemaMapping mapping);

  /// Drops a mapping and every factor replica that references it (churn).
  void RemoveMapping(EdgeId edge);

  /// The outgoing mapping stored for `edge`, or nullptr.
  const SchemaMapping* mapping(EdgeId edge) const;

  std::vector<EdgeId> OutgoingEdges() const;

  // --- Priors & posteriors ----------------------------------------------------

  /// Sets explicit prior belief for one mapping variable (expert
  /// validation, Section 4.4). Resets the variable's evidence history.
  void SetPrior(const MappingVarKey& var, double prior);
  double Prior(const MappingVarKey& var) const;

  /// Posterior P(var = correct). Follows the ⊥ rule: if the mapping has no
  /// image for the attribute, the posterior is 0 (Section 3.2.1). Without
  /// any feedback evidence, returns the prior.
  double Posterior(const MappingVarKey& var) const;
  Belief PosteriorBelief(const MappingVarKey& var) const;

  /// Whether any factor replica references (edge, attribute).
  bool HasEvidence(const MappingVarKey& var) const;

  /// EM-style prior update (Section 4.4): records the current posterior of
  /// every owned variable with evidence as a new observation and sets
  /// prior = mean of observations (the initial prior counts as the first).
  void UpdatePriorsFromPosteriors();

  // --- Embedded message passing ----------------------------------------------

  /// Ingests an announced closure + feedback (creates factor replicas).
  /// Atomic: every entry is validated against the stored replicas (and the
  /// announcement's own earlier entries) before anything is applied, so a
  /// fingerprint-collision error leaves the peer exactly as it was — no
  /// partially-ingested announcement, no routing tables rebuilt for a
  /// dropped factor.
  Status IngestFeedback(const FeedbackAnnouncement& announcement);

  /// Registers one factor replica under an explicit id. The normal path
  /// (`IngestFeedback`) derives the id from the closure content; this
  /// entry point is the seam for wire-level replay and for exercising the
  /// collision check directly. Fails with `FailedPrecondition` when `id`
  /// is already bound to a replica with *different* factor identity
  /// (closure structure, root attribute, or member sequence — a
  /// fingerprint collision); re-ingesting the same identity is an
  /// idempotent no-op. Sign and ∆ are *observations*, not identity: a
  /// re-announcement of a known factor with a different sign or ∆ keeps
  /// the first observation (first-wins, matching the pre-fingerprint
  /// behavior) rather than being treated as a collision.
  Status IngestFactor(const FactorId& id, const Closure& closure,
                      const AttributeFeedback& feedback, double delta);

  /// Stores a remote var->factor message. O(1): the update addresses the
  /// factor by fingerprint and the variable by member position. This is
  /// the piggyback (full-fingerprint) path; bundled belief traffic goes
  /// through `AbsorbBeliefBundle`.
  void AbsorbBeliefUpdate(const BeliefUpdate& update);

  /// Absorbs one alias-grouped belief bundle from `from`, maintaining the
  /// receive side of the (from -> this) alias session: binding
  /// declarations are recorded, bare aliases resolved, and the bundle's
  /// `ack` advances the transmit session toward `from`. Returns the first
  /// protocol error — stale epoch, unknown or out-of-range alias, alias
  /// rebind — while still absorbing the remaining well-formed groups
  /// (the engine logs and drops; unlike `IngestFeedback`, belief traffic
  /// is idempotent state, so partial absorption cannot corrupt anything).
  /// Updates for factors this peer has no replica of (announcement
  /// lost or not yet delivered) are silently ignored, exactly like the
  /// full-fingerprint path.
  Status AbsorbBeliefBundle(PeerId from, const BeliefMessage& message);

  /// Executes one local inference round: recomputes factor->var messages
  /// from stored var->factor state, then var->factor messages for owned
  /// variables. Returns the max normalized posterior change.
  double ComputeRound();

  /// Remote messages to the other owners of this peer's factor replicas,
  /// bundled per recipient in ascending-PeerId order (the Section 4.3.1
  /// periodic payload). Bundles are emitted straight from the precomputed
  /// routing tables into `*out`, which is cleared first and may be reused
  /// across rounds as an arena — per-bundle sizes are known up front, so
  /// the only allocations are the exact-size group/entry vectors handed to
  /// the transport. Factor identity is carried as the session alias; the
  /// full fingerprint rides along only while the recipient's ack does not
  /// yet cover the alias (first mention, or refallback after loss).
  void CollectOutgoingBeliefs(std::vector<Outgoing>* out) const;
  std::vector<Outgoing> CollectOutgoingBeliefs() const;

  /// Belief updates pertaining to mapping `edge` (for lazy piggybacking,
  /// Section 4.3.2).
  std::vector<BeliefUpdate> PiggybackUpdatesFor(EdgeId edge) const;

  /// Number of factor replicas currently stored.
  size_t replica_count() const { return replicas_.size(); }

  // --- Byzantine guard introspection -------------------------------------------

  /// One neighbor link's misbehavior state under the admission guard
  /// (`EngineOptions::byzantine_guard`); all zeros when the guard is off.
  struct GuardLinkView {
    PeerId peer = 0;
    /// Decaying misbehavior score (see ByzantineGuardOptions weights).
    double score = 0.0;
    /// 0 = normal, 1 = soft-demoted (beliefs damped toward uniform),
    /// 2 = hard-quarantined (bundles dropped). Sticky.
    uint32_t demote_level = 0;
    uint64_t rejections = 0;     ///< admission-rejected entries
    uint64_t equivocations = 0;  ///< same-round conflicting values
    uint64_t oscillations = 0;   ///< flip streaks beyond the bound
    uint64_t outliers = 0;       ///< influence-outlier rounds
    uint64_t dropped_bundles = 0;  ///< bundles dropped while quarantined
  };
  /// Per-neighbor guard state, in link-intern order.
  std::vector<GuardLinkView> GuardViews() const;

  /// Totals across links (node/engine stats).
  uint64_t guard_rejected_entries() const;
  /// Links at demote level >= 1 / exactly 2.
  uint64_t guard_demoted_links() const;
  uint64_t guard_quarantined_links() const;

  /// Read-only summary of one stored factor replica (engine introspection:
  /// global-factor-graph reconstruction, baselines, debugging).
  struct ReplicaView {
    FactorId id;
    AttributeId root_attribute = 0;
    FeedbackSign sign = FeedbackSign::kNeutral;
    std::vector<MappingVarKey> members;
    double delta = 0.1;
    Closure::Kind kind = Closure::Kind::kCycle;
  };
  std::vector<ReplicaView> ReplicaViews() const;

  /// Per-period remote-message bound: Σ over replicas of
  /// own_members · (l − 1). On directed simple cycles a peer owns exactly
  /// one member, so this reduces to the paper's Σ_ci (l_ci − 1) bound
  /// (Section 4.3.1); parallel-path sources own both path heads and get
  /// the correspondingly larger bound.
  size_t RemoteMessageBound() const;

  // --- Probes & discovery -----------------------------------------------------

  /// Emits this peer's initial probes (one per outgoing mapping).
  std::vector<Outgoing> StartProbes() const;

  /// Handles an arriving probe: may complete a cycle, detect parallel
  /// paths (announcing feedback to member owners), and forward the probe.
  std::vector<Outgoing> HandleProbe(const ProbeMessage& probe);

  // --- Queries ----------------------------------------------------------------

  /// Processes an arriving (or locally issued) query: executes it against
  /// the local store and prepares θ-gated forwards. `piggyback_beliefs`
  /// appends this peer's belief messages to forwarded queries (lazy
  /// schedule).
  QueryActions ProcessQuery(const QueryMessage& message,
                            bool piggyback_beliefs);

  /// Whether this peer already processed the given query id.
  bool SawQuery(uint64_t query_id) const {
    return seen_queries_.count(query_id) > 0;
  }

  // --- Durable state ------------------------------------------------------------

  /// One replicated feedback factor (Section 4.1 local factor graph) —
  /// cold metadata only, touched at ingest, rebuild and introspection
  /// time. Everything a round needs lives in the SoA pools, addressed
  /// through the parallel `ReplicaHot` entry: members and their owners at
  /// [msg_base, msg_base + member_count) of the member pools (the same
  /// slots as the message pools), owned positions at [owned_base,
  /// owned_base + owned_count) of `owned_pos_pool_`.
  struct Replica {
    FactorId id;
    Closure closure;
    AttributeId root_attribute = 0;
    FeedbackSign sign = FeedbackSign::kNeutral;
    double delta = 0.1;
    /// Distinct owners of foreign members, ascending (belief recipients).
    std::vector<PeerId> other_owners;
  };

  /// Flat per-replica hot state: every field `ComputeRound` /
  /// `AbsorbBeliefUpdate` needs, in one cache-friendly array — pool
  /// offsets plus the factor function's two parameters (the message math
  /// itself is the free kernel `CycleFeedbackMessage`).
  struct ReplicaHot {
    uint32_t msg_base = 0;
    uint32_t member_count = 0;
    uint32_t owned_base = 0;
    uint32_t owned_count = 0;
    double delta = 0.1;
    bool positive = false;
  };

  /// Precomputed outgoing-belief route: one wire group per replica whose
  /// updates this recipient receives, in emission order. The group's
  /// entries are always the replica's full owned-position set, so only the
  /// replica index and the negotiated session alias are stored.
  struct BeliefRoute {
    PeerId to = 0;
    /// Index of the recipient's session in `alias_links_`.
    uint32_t link = 0;
    /// Total entries across `groups` (Σ owned_count), so collect reserves
    /// the bundle's flat entry array without a counting pre-pass.
    uint32_t entry_total = 0;
    /// (replica index, session alias), ascending by replica index — the
    /// canonical emission order the determinism guarantee rides on.
    std::vector<std::pair<uint32_t, uint32_t>> groups;
  };

  /// Everything this peer tracks about one mapping variable: explicit
  /// prior, EM evidence accumulator, previous-round posterior, and the
  /// (replica, member position) slots of every factor that scopes it.
  struct VarState {
    MappingVarKey key;
    double prior = 0.5;
    bool has_explicit_prior = false;
    uint64_t evidence_count = 0;
    double evidence_sum = 0.0;
    bool has_evidence_acc = false;
    double last_posterior = 0.0;
    bool has_last_posterior = false;
    std::vector<std::pair<uint32_t, uint32_t>> slots;
  };

  /// One neighbor's alias state in canonical (serializable) form: both
  /// session directions flattened to dense alias-indexed vectors. The
  /// transmit map `AliasSessionTx::alias_of` is stored inverted
  /// (`tx_id_by_alias[alias] = id`); aliases are assigned densely, so the
  /// inversion is lossless and order-free.
  struct LinkImage {
    PeerId peer = 0;
    std::vector<FactorId> tx_id_by_alias;
    uint32_t tx_acked_prefix = 0;
    std::vector<FactorId> rx_id_of;
    uint32_t rx_known_prefix = 0;
    std::vector<uint32_t> replica_of_alias;
    /// Transmit-side value-precision tier (see `PeerLink::value_rank`).
    uint32_t value_rank = 0;
    /// Byzantine-guard state (see `PeerLink`); zeros when the guard is
    /// off. Persisted so demotion trajectories replay identically after a
    /// restore (snapshot format v3).
    double guard_score = 0.0;
    uint32_t guard_demote_level = 0;
    uint64_t guard_rejections = 0;
    uint64_t guard_equivocations = 0;
    uint64_t guard_oscillations = 0;
    uint64_t guard_outliers = 0;
    uint64_t guard_dropped_bundles = 0;
    double guard_round_influence = 0.0;
    uint32_t guard_round_absorbed = 0;
  };

  /// Per-slot admission history under the Byzantine guard, parallel to
  /// `var_to_factor_pool_` (each foreign slot is written by exactly one
  /// owner link, so the history needs no per-link dimension). Only
  /// allocated while the guard is enabled.
  struct GuardSlot {
    double last_log_odds = 0.0;  ///< last absorbed value
    uint64_t last_round = 0;     ///< peer round of the last absorb
    uint8_t flips = 0;           ///< consecutive direction reversals
    int8_t last_dir = 0;         ///< sign of the last large move
    bool has_last = false;
  };

  /// A complete, self-contained copy of this peer's mutable state in
  /// canonical form: dense arrays only, no hash tables, no pointers — the
  /// unit the undo sessions copy and the snapshot layer serializes. All
  /// derived indexes (`replica_index_`, `var_index_`, `edge_vars_`, the
  /// alias maps) are rebuilt deterministically by `RestoreImage`, so two
  /// peers restored from equal images are behaviorally identical, bit for
  /// bit. The document store is intentionally excluded: it is configured
  /// at deployment time and never mutated by the protocol.
  struct Image {
    std::vector<std::pair<EdgeId, SchemaMapping>> mappings;
    std::vector<Replica> replicas;
    std::vector<ReplicaHot> replica_hot;
    std::vector<Belief> var_to_factor_pool;
    std::vector<Belief> factor_to_var_pool;
    std::vector<MappingVarKey> member_pool;
    std::vector<PeerId> member_owner_pool;
    std::vector<uint32_t> owned_pos_pool;
    std::vector<BeliefRoute> belief_routes;
    /// In alias-link creation order (deterministic: it follows replica
    /// ingest order), so `BeliefRoute::link` indexes into it unchanged.
    std::vector<LinkImage> links;
    uint32_t alias_epoch = 0;
    /// Per-slot Byzantine-guard history (empty when the guard is off).
    std::vector<GuardSlot> guard_slot_pool;
    /// Completed local inference rounds (the guard's logical clock and
    /// the chaos layer's draw key).
    uint64_t round = 0;
    /// In intern order — restoring re-interns in the same order, so the
    /// rebuilt `var_index_` / `edge_vars_` iterate identically.
    std::vector<VarState> vars;
    std::vector<FactorId> announced;       ///< sorted
    std::vector<uint64_t> seen_queries;    ///< sorted
    /// Sorted by origin; each origin's probes in arrival order.
    std::vector<std::pair<PeerId, std::vector<ProbeMessage>>> probe_cache;
  };

  /// Copies the peer's mutable state into canonical form. O(state); no
  /// effect on the peer.
  Image CaptureImage() const;

  /// Replaces the peer's mutable state with `image`, rebuilding every
  /// derived index. Restoring a capture of the same peer is exact: rounds,
  /// bundles, probes and queries behave bitwise-identically to the peer
  /// that was captured.
  void RestoreImage(const Image& image);

  /// Restores from a capture, moving the bulk arrays instead of copying.
  void RestoreImage(Image&& image);

 private:
  /// Index of `var` in `vars_`, creating the entry on first sight.
  uint32_t InternVar(const MappingVarKey& var);
  const VarState* FindVar(const MappingVarKey& var) const;

  /// Ok when no replica is stored under `id`, or the stored replica has
  /// exactly the announced factor content (closure structure, root
  /// attribute, member sequence); `FailedPrecondition` on a fingerprint
  /// collision. Pure check — never mutates.
  Status ValidateFactorContent(const FactorId& id, const Closure& closure,
                               const AttributeFeedback& feedback) const;

  /// Registers replica `r` with the per-recipient belief routing tables,
  /// negotiating a session alias per (recipient, factor) on the way.
  void AddReplicaToRoutes(uint32_t r);

  /// The replica's member scope, as a view into the member pool.
  std::span<const MappingVarKey> Members(uint32_t r) const {
    const ReplicaHot& hot = replica_hot_[r];
    return {member_pool_.data() + hot.msg_base, hot.member_count};
  }

  /// Writes `belief` into the var->factor slot (replica `r`, `position`)
  /// unless the update is malformed or claims a variable this peer owns.
  void AbsorbResolved(uint32_t r, uint32_t position, const Belief& belief);

  struct PeerLink;

  /// Guarded admission of one bundle entry over `link` (guard enabled
  /// only): semantic validation, equivocation/oscillation detection,
  /// score feeds, soft-demotion damping — then `AbsorbResolved`. Records
  /// the first violation in `*status`.
  void AbsorbGuarded(PeerId from, PeerLink& link, uint32_t r,
                     const BeliefEntry& entry, uint32_t value_bits,
                     Status* status);

  /// End-of-round guard bookkeeping: influence-outlier detection, score
  /// decay, threshold crossings -> demotion. No-op when the guard is off.
  void GuardEndOfRound();

  /// Resets every pool slot owned by `peer` to the neutral measure (and
  /// clears its guard history). Called on hard demotion: quarantine only
  /// stops future bundles, this heals the lies already deposited.
  void PurgeGuardDeposits(PeerId peer);

  /// ∆ used by this peer when announcing feedback.
  double EffectiveDelta() const;

  /// Per-attribute feedback for a closed cycle probe.
  std::vector<AttributeFeedback> CycleFeedback(const ProbeMessage& probe) const;

  /// Per-attribute feedback for two independent parallel-path probes.
  std::vector<AttributeFeedback> ParallelFeedback(
      const ProbeMessage& first, const ProbeMessage& second) const;

  /// Coarse-granularity aggregation of per-attribute feedback.
  static std::vector<AttributeFeedback> CoarsenFeedback(
      std::vector<AttributeFeedback> fine);

  /// Sends `announcement` to every distinct owner of a member mapping.
  void AnnounceToOwners(const FeedbackAnnouncement& announcement,
                        std::vector<Outgoing>* out) const;

  /// Node sequence of a probe route (origin, then successive edge dsts).
  std::vector<NodeId> RouteNodes(const std::vector<EdgeId>& route) const;

  /// True if the two routes share no edge and no interior node.
  bool RoutesIndependent(const std::vector<EdgeId>& a,
                         const std::vector<EdgeId>& b) const;

  /// The θ-gate for a query attribute over one mapping (see
  /// EngineOptions::forward_without_evidence).
  bool GateAllows(EdgeId edge, AttributeId attribute) const;

  PeerId id_;
  Schema schema_;
  const Digraph* graph_;
  const EngineOptions* options_;
  DocumentStore store_;

  /// Outgoing mappings, flat and sorted by EdgeId (few per peer; binary
  /// search beats a node-based map and iteration stays in EdgeId order,
  /// which probe/query forwarding depends on for determinism).
  std::vector<std::pair<EdgeId, SchemaMapping>> mappings_;

  /// Dense replica store + identity-hashed index by factor fingerprint.
  /// Insertion order is announcement arrival order (deterministic under
  /// the engine's serial message dispatch).
  std::vector<Replica> replicas_;
  std::unordered_map<FactorId, uint32_t, FactorIdHash> replica_index_;
  /// Flat hot state parallel to `replicas_` (see `ReplicaHot`).
  std::vector<ReplicaHot> replica_hot_;

  /// SoA message pools, indexed by replica msg_base + member position:
  /// last µ_{member -> factor} per member (unit until heard otherwise),
  /// and µ_{factor -> member}, maintained for *owned* members.
  std::vector<Belief> var_to_factor_pool_;
  std::vector<Belief> factor_to_var_pool_;
  /// Member scope + member owners, sharing the message pools' slots.
  std::vector<MappingVarKey> member_pool_;
  std::vector<PeerId> member_owner_pool_;
  /// Owned member positions (ascending per replica), at owned_base.
  std::vector<uint32_t> owned_pos_pool_;
  /// Per-slot guard history, sharing the message pools' slots; sized only
  /// while `options_->byzantine_guard.enabled` (empty otherwise, so the
  /// guard-off footprint is unchanged).
  std::vector<GuardSlot> guard_slot_pool_;
  /// Completed `ComputeRound` calls — the guard's same-round clock and
  /// the Byzantine chaos layer's draw key. Always maintained (one
  /// increment per round; no behavioral effect while guard and chaos are
  /// off).
  uint64_t round_ = 0;

  /// Per-recipient outgoing-belief routes, ascending by recipient; built
  /// incrementally at ingest, rebuilt on mapping removal.
  std::vector<BeliefRoute> belief_routes_;

  /// Sentinel in `PeerLink::replica_of_alias`: binding known but factor
  /// not (yet) ingested here, or alias not yet resolved.
  static constexpr uint32_t kNoReplica = static_cast<uint32_t>(-1);

  /// One neighbor's alias state: the wire session (both directions) plus
  /// a receive-side alias -> replica-index cache, so steady-state
  /// absorption is a single 4-byte load per group instead of a
  /// fingerprint hash lookup per update.
  struct PeerLink {
    AliasLink session;
    std::vector<uint32_t> replica_of_alias;
    /// Transmit-side precision tier under a value error budget: 0 coarse,
    /// 1 mid, 2 fine, 3 exact (raw doubles again). Stepped up — never
    /// down — at the end of `ComputeRound` from the peer's residual, so a
    /// link's precision trajectory is monotone and a peer restored from a
    /// snapshot continues it identically. Unused when quantization is
    /// off.
    uint8_t value_rank = 0;

    // Byzantine-guard state (EngineOptions::byzantine_guard). All
    // untouched — and all zero — while the guard is disabled.
    /// Decaying misbehavior score; violations add their configured
    /// weight, `score_decay` multiplies at each `ComputeRound`.
    double guard_score = 0.0;
    /// 0 normal, 1 soft (damped absorption), 2 hard (bundles dropped).
    /// Sticky: demotion never reverts, so replay from any snapshot
    /// reaches the same decisions.
    uint8_t guard_demote_level = 0;
    uint64_t guard_rejections = 0;
    uint64_t guard_equivocations = 0;
    uint64_t guard_oscillations = 0;
    uint64_t guard_outliers = 0;
    uint64_t guard_dropped_bundles = 0;
    /// This round's absorbed |Δ log-odds| mass and entry count — the
    /// influence-outlier feed, consumed and reset by `ComputeRound`.
    double guard_round_influence = 0.0;
    uint32_t guard_round_absorbed = 0;
    /// An oscillation streak completed this round. Transient per-round
    /// state — scored once (not once per slot) and cleared by
    /// `ComputeRound`, never snapshotted: snapshots land at round
    /// barriers where it is always false.
    bool guard_round_oscillated = false;
  };

  /// Alias sessions, one per neighbor: dense storage indexed through
  /// `alias_link_index_` and `BeliefRoute::link`, so the round path does
  /// one lookup per bundle. The index is a flat sorted array — a peer has
  /// few belief neighbors, so binary search touches one cache line where
  /// a hash map chases nodes. Cleared and renegotiated under a bumped
  /// epoch on `RemoveMapping` (the engine removes mappings network-wide,
  /// so both endpoints of every session bump in lockstep).
  std::vector<PeerLink> alias_links_;
  std::vector<std::pair<PeerId, uint32_t>> alias_link_index_;
  uint32_t alias_epoch_ = 0;

  /// Index of the alias link for `peer`, creating it on first sight.
  uint32_t InternAliasLink(PeerId peer);

  /// Dense per-variable state + hashed index by packed (edge, attribute).
  std::vector<VarState> vars_;
  std::unordered_map<uint64_t, uint32_t> var_index_;
  /// Indexes of `vars_` entries per mapping edge, ascending (lazy-schedule
  /// piggybacking looks variables up by edge, not by full key).
  std::unordered_map<EdgeId, std::vector<uint32_t>> edge_vars_;

  /// Round scratch (prefix/suffix message products), reused across rounds.
  std::vector<Belief> prefix_scratch_;
  std::vector<Belief> suffix_scratch_;

  /// Closures this peer has already announced (dedup).
  std::unordered_set<FactorId, FactorIdHash> announced_;
  /// Cached foreign probes per origin for parallel detection.
  std::unordered_map<PeerId, std::vector<ProbeMessage>> probe_cache_;
  std::unordered_set<uint64_t> seen_queries_;
};

}  // namespace pdms

#endif  // PDMS_CORE_PEER_H_
