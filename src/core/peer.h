#ifndef PDMS_CORE_PEER_H_
#define PDMS_CORE_PEER_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/options.h"
#include "factor/factor.h"
#include "graph/digraph.h"
#include "net/message.h"
#include "query/document_store.h"
#include "query/query.h"

namespace pdms {

/// A message a peer wants delivered.
struct Outgoing {
  PeerId to = 0;
  std::optional<EdgeId> via;
  Payload payload;
};

/// Outcome of local query processing.
struct QueryActions {
  /// Rows produced by the local database.
  std::vector<ResultRow> rows;
  /// Translated queries to forward (θ-gate passed).
  std::vector<Outgoing> forwards;
  /// Mapping links the θ-gate blocked.
  std::vector<EdgeId> blocked_edges;
};

/// One autonomous peer database: schema, documents, outgoing mappings, and
/// the peer's fragment of the global factor graph (Section 4.1).
///
/// A peer stores one factor replica per announced (closure, root-attribute)
/// pair touching any of its outgoing mappings, together with the last
/// var->factor message received from each foreign variable. Everything the
/// peer computes uses only this local state plus incoming messages — the
/// decentralization claim of the paper, made literal. Because rounds are
/// strictly peer-local, the engine may execute `ComputeRound` for distinct
/// peers on distinct threads; a single `Peer` is not itself thread-safe.
///
/// Hot-path layout: replicas and mapping variables are interned into dense
/// arrays (`replicas_`, `vars_`) with hashed indexes, and each variable
/// keeps its (replica, position) slots so a round touches contiguous state
/// instead of walking ordered maps — `ComputeRound` performs no heap
/// allocation after the first round with a given evidence set.
class Peer {
 public:
  /// `graph` is the shared topology (used only to resolve edge endpoints,
  /// information a real deployment would carry in probe metadata).
  Peer(PeerId id, Schema schema, const Digraph* graph,
       const EngineOptions* options);

  PeerId id() const { return id_; }
  const Schema& schema() const { return schema_; }
  DocumentStore& store() { return store_; }
  const DocumentStore& store() const { return store_; }

  // --- Mappings -------------------------------------------------------------

  /// Registers the outgoing mapping for `edge` (this peer must be its
  /// source). Fails with `AlreadyExists` on duplicates.
  Status AddMapping(EdgeId edge, SchemaMapping mapping);

  /// Drops a mapping and every factor replica that references it (churn).
  void RemoveMapping(EdgeId edge);

  /// The outgoing mapping stored for `edge`, or nullptr.
  const SchemaMapping* mapping(EdgeId edge) const;

  std::vector<EdgeId> OutgoingEdges() const;

  // --- Priors & posteriors ----------------------------------------------------

  /// Sets explicit prior belief for one mapping variable (expert
  /// validation, Section 4.4). Resets the variable's evidence history.
  void SetPrior(const MappingVarKey& var, double prior);
  double Prior(const MappingVarKey& var) const;

  /// Posterior P(var = correct). Follows the ⊥ rule: if the mapping has no
  /// image for the attribute, the posterior is 0 (Section 3.2.1). Without
  /// any feedback evidence, returns the prior.
  double Posterior(const MappingVarKey& var) const;
  Belief PosteriorBelief(const MappingVarKey& var) const;

  /// Whether any factor replica references (edge, attribute).
  bool HasEvidence(const MappingVarKey& var) const;

  /// EM-style prior update (Section 4.4): records the current posterior of
  /// every owned variable with evidence as a new observation and sets
  /// prior = mean of observations (the initial prior counts as the first).
  void UpdatePriorsFromPosteriors();

  // --- Embedded message passing ----------------------------------------------

  /// Ingests an announced closure + feedback (creates factor replicas).
  void IngestFeedback(const FeedbackAnnouncement& announcement);

  /// Stores a remote var->factor message.
  void AbsorbBeliefUpdate(const BeliefUpdate& update);

  /// Executes one local inference round: recomputes factor->var messages
  /// from stored var->factor state, then var->factor messages for owned
  /// variables. Returns the max normalized posterior change.
  double ComputeRound();

  /// Remote messages to the other owners of this peer's factor replicas,
  /// bundled per recipient (the Section 4.3.1 periodic payload).
  std::vector<Outgoing> CollectOutgoingBeliefs() const;

  /// Belief updates pertaining to mapping `edge` (for lazy piggybacking,
  /// Section 4.3.2).
  std::vector<BeliefUpdate> PiggybackUpdatesFor(EdgeId edge) const;

  /// Number of factor replicas currently stored.
  size_t replica_count() const { return replicas_.size(); }

  /// Read-only summary of one stored factor replica (engine introspection:
  /// global-factor-graph reconstruction, baselines, debugging).
  struct ReplicaView {
    FactorKey key;
    FeedbackSign sign = FeedbackSign::kNeutral;
    std::vector<MappingVarKey> members;
    double delta = 0.1;
    Closure::Kind kind = Closure::Kind::kCycle;
  };
  std::vector<ReplicaView> ReplicaViews() const;

  /// Per-period remote-message bound: Σ over replicas of
  /// own_members · (l − 1). On directed simple cycles a peer owns exactly
  /// one member, so this reduces to the paper's Σ_ci (l_ci − 1) bound
  /// (Section 4.3.1); parallel-path sources own both path heads and get
  /// the correspondingly larger bound.
  size_t RemoteMessageBound() const;

  // --- Probes & discovery -----------------------------------------------------

  /// Emits this peer's initial probes (one per outgoing mapping).
  std::vector<Outgoing> StartProbes() const;

  /// Handles an arriving probe: may complete a cycle, detect parallel
  /// paths (announcing feedback to member owners), and forward the probe.
  std::vector<Outgoing> HandleProbe(const ProbeMessage& probe);

  // --- Queries ----------------------------------------------------------------

  /// Processes an arriving (or locally issued) query: executes it against
  /// the local store and prepares θ-gated forwards. `piggyback_beliefs`
  /// appends this peer's belief messages to forwarded queries (lazy
  /// schedule).
  QueryActions ProcessQuery(const QueryMessage& message,
                            bool piggyback_beliefs);

  /// Whether this peer already processed the given query id.
  bool SawQuery(uint64_t query_id) const {
    return seen_queries_.count(query_id) > 0;
  }

 private:
  /// One replicated feedback factor (Section 4.1 local factor graph).
  struct Replica {
    FactorKey key;
    Closure closure;
    FeedbackSign sign = FeedbackSign::kNeutral;
    std::vector<MappingVarKey> members;
    std::vector<PeerId> owner_of_member;
    double delta = 0.1;
    /// The factor function (variables are member positions).
    std::unique_ptr<CycleFeedbackFactor> factor;
    /// Last µ_{member -> factor} per member (unit until heard otherwise).
    std::vector<Belief> var_to_factor;
    /// µ_{factor -> member}, maintained for *owned* members.
    std::vector<Belief> factor_to_var;
    /// Member positions owned by this peer, ascending.
    std::vector<uint32_t> owned_positions;
    /// Distinct owners of foreign members, ascending (belief recipients).
    std::vector<PeerId> other_owners;
  };

  /// Everything this peer tracks about one mapping variable: explicit
  /// prior, EM evidence accumulator, previous-round posterior, and the
  /// (replica, member position) slots of every factor that scopes it.
  struct VarState {
    MappingVarKey key;
    double prior = 0.5;
    bool has_explicit_prior = false;
    uint64_t evidence_count = 0;
    double evidence_sum = 0.0;
    bool has_evidence_acc = false;
    double last_posterior = 0.0;
    bool has_last_posterior = false;
    std::vector<std::pair<uint32_t, uint32_t>> slots;
  };

  /// Index of `var` in `vars_`, creating the entry on first sight.
  uint32_t InternVar(const MappingVarKey& var);
  const VarState* FindVar(const MappingVarKey& var) const;

  /// ∆ used by this peer when announcing feedback.
  double EffectiveDelta() const;

  /// Per-attribute feedback for a closed cycle probe.
  std::vector<AttributeFeedback> CycleFeedback(const ProbeMessage& probe) const;

  /// Per-attribute feedback for two independent parallel-path probes.
  std::vector<AttributeFeedback> ParallelFeedback(
      const ProbeMessage& first, const ProbeMessage& second) const;

  /// Coarse-granularity aggregation of per-attribute feedback.
  static std::vector<AttributeFeedback> CoarsenFeedback(
      std::vector<AttributeFeedback> fine);

  /// Sends `announcement` to every distinct owner of a member mapping.
  void AnnounceToOwners(const FeedbackAnnouncement& announcement,
                        std::vector<Outgoing>* out) const;

  /// Node sequence of a probe route (origin, then successive edge dsts).
  std::vector<NodeId> RouteNodes(const std::vector<EdgeId>& route) const;

  /// True if the two routes share no edge and no interior node.
  bool RoutesIndependent(const std::vector<EdgeId>& a,
                         const std::vector<EdgeId>& b) const;

  /// The θ-gate for a query attribute over one mapping (see
  /// EngineOptions::forward_without_evidence).
  bool GateAllows(EdgeId edge, AttributeId attribute) const;

  PeerId id_;
  Schema schema_;
  const Digraph* graph_;
  const EngineOptions* options_;
  DocumentStore store_;

  /// Outgoing mappings, flat and sorted by EdgeId (few per peer; binary
  /// search beats a node-based map and iteration stays in EdgeId order,
  /// which probe/query forwarding depends on for determinism).
  std::vector<std::pair<EdgeId, SchemaMapping>> mappings_;

  /// Dense replica store + hashed index by factor key. Insertion order is
  /// announcement arrival order (deterministic under the engine's serial
  /// message dispatch).
  std::vector<Replica> replicas_;
  std::unordered_map<std::string, uint32_t> replica_index_;

  /// Dense per-variable state + hashed index by packed (edge, attribute).
  std::vector<VarState> vars_;
  std::unordered_map<uint64_t, uint32_t> var_index_;

  /// Round scratch (prefix/suffix message products), reused across rounds.
  std::vector<Belief> prefix_scratch_;
  std::vector<Belief> suffix_scratch_;

  /// Closures this peer has already announced (dedup).
  std::unordered_set<std::string> announced_;
  /// Cached foreign probes per origin for parallel detection.
  std::unordered_map<PeerId, std::vector<ProbeMessage>> probe_cache_;
  std::unordered_set<uint64_t> seen_queries_;
};

}  // namespace pdms

#endif  // PDMS_CORE_PEER_H_
