#ifndef PDMS_CORE_PEER_H_
#define PDMS_CORE_PEER_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/options.h"
#include "factor/factor.h"
#include "graph/digraph.h"
#include "net/message.h"
#include "query/document_store.h"
#include "query/query.h"

namespace pdms {

/// A message a peer wants delivered.
struct Outgoing {
  PeerId to = 0;
  std::optional<EdgeId> via;
  Payload payload;
};

/// Outcome of local query processing.
struct QueryActions {
  /// Rows produced by the local database.
  std::vector<ResultRow> rows;
  /// Translated queries to forward (θ-gate passed).
  std::vector<Outgoing> forwards;
  /// Mapping links the θ-gate blocked.
  std::vector<EdgeId> blocked_edges;
};

/// One autonomous peer database: schema, documents, outgoing mappings, and
/// the peer's fragment of the global factor graph (Section 4.1).
///
/// A peer stores one factor replica per announced (closure, root-attribute)
/// pair touching any of its outgoing mappings, together with the last
/// var->factor message received from each foreign variable. Everything the
/// peer computes uses only this local state plus incoming messages — the
/// decentralization claim of the paper, made literal. Because rounds are
/// strictly peer-local, the engine may execute `ComputeRound` for distinct
/// peers on distinct threads; a single `Peer` is not itself thread-safe.
///
/// Hot-path layout: replicas and mapping variables are interned into dense
/// arrays (`replicas_`, `vars_`) indexed by 128-bit `FactorId` fingerprints
/// (identity-hashed — no string keys anywhere past ingest), and each
/// variable keeps its (replica, position) slots. Replica message state
/// lives in two contiguous structure-of-arrays pools shared by all
/// replicas (`var_to_factor_pool_`, `factor_to_var_pool_`, slot =
/// `msg_base + position`), so `ComputeRound` streams cache lines instead
/// of chasing per-replica vectors and performs no heap allocation after
/// the first round with a given evidence set. Outgoing belief bundles are
/// emitted from per-recipient routing tables precomputed at ingest.
class Peer {
 public:
  /// `graph` is the shared topology (used only to resolve edge endpoints,
  /// information a real deployment would carry in probe metadata).
  Peer(PeerId id, Schema schema, const Digraph* graph,
       const EngineOptions* options);

  PeerId id() const { return id_; }
  const Schema& schema() const { return schema_; }
  DocumentStore& store() { return store_; }
  const DocumentStore& store() const { return store_; }

  // --- Mappings -------------------------------------------------------------

  /// Registers the outgoing mapping for `edge` (this peer must be its
  /// source). Fails with `AlreadyExists` on duplicates.
  Status AddMapping(EdgeId edge, SchemaMapping mapping);

  /// Drops a mapping and every factor replica that references it (churn).
  void RemoveMapping(EdgeId edge);

  /// The outgoing mapping stored for `edge`, or nullptr.
  const SchemaMapping* mapping(EdgeId edge) const;

  std::vector<EdgeId> OutgoingEdges() const;

  // --- Priors & posteriors ----------------------------------------------------

  /// Sets explicit prior belief for one mapping variable (expert
  /// validation, Section 4.4). Resets the variable's evidence history.
  void SetPrior(const MappingVarKey& var, double prior);
  double Prior(const MappingVarKey& var) const;

  /// Posterior P(var = correct). Follows the ⊥ rule: if the mapping has no
  /// image for the attribute, the posterior is 0 (Section 3.2.1). Without
  /// any feedback evidence, returns the prior.
  double Posterior(const MappingVarKey& var) const;
  Belief PosteriorBelief(const MappingVarKey& var) const;

  /// Whether any factor replica references (edge, attribute).
  bool HasEvidence(const MappingVarKey& var) const;

  /// EM-style prior update (Section 4.4): records the current posterior of
  /// every owned variable with evidence as a new observation and sets
  /// prior = mean of observations (the initial prior counts as the first).
  void UpdatePriorsFromPosteriors();

  // --- Embedded message passing ----------------------------------------------

  /// Ingests an announced closure + feedback (creates factor replicas).
  /// Returns the first fingerprint-collision error encountered, if any;
  /// non-colliding entries of the announcement are still ingested.
  Status IngestFeedback(const FeedbackAnnouncement& announcement);

  /// Registers one factor replica under an explicit id. The normal path
  /// (`IngestFeedback`) derives the id from the closure content; this
  /// entry point is the seam for wire-level replay and for exercising the
  /// collision check directly. Fails with `FailedPrecondition` when `id`
  /// is already bound to a replica with *different* factor identity
  /// (closure structure, root attribute, or member sequence — a
  /// fingerprint collision); re-ingesting the same identity is an
  /// idempotent no-op. Sign and ∆ are *observations*, not identity: a
  /// re-announcement of a known factor with a different sign or ∆ keeps
  /// the first observation (first-wins, matching the pre-fingerprint
  /// behavior) rather than being treated as a collision.
  Status IngestFactor(const FactorId& id, const Closure& closure,
                      const AttributeFeedback& feedback, double delta);

  /// Stores a remote var->factor message. O(1): the update addresses the
  /// factor by fingerprint and the variable by member position.
  void AbsorbBeliefUpdate(const BeliefUpdate& update);

  /// Executes one local inference round: recomputes factor->var messages
  /// from stored var->factor state, then var->factor messages for owned
  /// variables. Returns the max normalized posterior change.
  double ComputeRound();

  /// Remote messages to the other owners of this peer's factor replicas,
  /// bundled per recipient in ascending-PeerId order (the Section 4.3.1
  /// periodic payload). Bundles are emitted straight from the precomputed
  /// routing tables into `*out`, which is cleared first and may be reused
  /// across rounds as an arena — per-bundle sizes are known up front, so
  /// the only allocations are the exact-size update vectors handed to the
  /// transport.
  void CollectOutgoingBeliefs(std::vector<Outgoing>* out) const;
  std::vector<Outgoing> CollectOutgoingBeliefs() const;

  /// Belief updates pertaining to mapping `edge` (for lazy piggybacking,
  /// Section 4.3.2).
  std::vector<BeliefUpdate> PiggybackUpdatesFor(EdgeId edge) const;

  /// Number of factor replicas currently stored.
  size_t replica_count() const { return replicas_.size(); }

  /// Read-only summary of one stored factor replica (engine introspection:
  /// global-factor-graph reconstruction, baselines, debugging).
  struct ReplicaView {
    FactorId id;
    AttributeId root_attribute = 0;
    FeedbackSign sign = FeedbackSign::kNeutral;
    std::vector<MappingVarKey> members;
    double delta = 0.1;
    Closure::Kind kind = Closure::Kind::kCycle;
  };
  std::vector<ReplicaView> ReplicaViews() const;

  /// Per-period remote-message bound: Σ over replicas of
  /// own_members · (l − 1). On directed simple cycles a peer owns exactly
  /// one member, so this reduces to the paper's Σ_ci (l_ci − 1) bound
  /// (Section 4.3.1); parallel-path sources own both path heads and get
  /// the correspondingly larger bound.
  size_t RemoteMessageBound() const;

  // --- Probes & discovery -----------------------------------------------------

  /// Emits this peer's initial probes (one per outgoing mapping).
  std::vector<Outgoing> StartProbes() const;

  /// Handles an arriving probe: may complete a cycle, detect parallel
  /// paths (announcing feedback to member owners), and forward the probe.
  std::vector<Outgoing> HandleProbe(const ProbeMessage& probe);

  // --- Queries ----------------------------------------------------------------

  /// Processes an arriving (or locally issued) query: executes it against
  /// the local store and prepares θ-gated forwards. `piggyback_beliefs`
  /// appends this peer's belief messages to forwarded queries (lazy
  /// schedule).
  QueryActions ProcessQuery(const QueryMessage& message,
                            bool piggyback_beliefs);

  /// Whether this peer already processed the given query id.
  bool SawQuery(uint64_t query_id) const {
    return seen_queries_.count(query_id) > 0;
  }

 private:
  /// One replicated feedback factor (Section 4.1 local factor graph). The
  /// per-member message state lives in the peer-level SoA pools at
  /// [msg_base, msg_base + members.size()); the replica itself carries
  /// only cold metadata.
  struct Replica {
    FactorId id;
    Closure closure;
    AttributeId root_attribute = 0;
    FeedbackSign sign = FeedbackSign::kNeutral;
    std::vector<MappingVarKey> members;
    std::vector<PeerId> owner_of_member;
    double delta = 0.1;
    /// The factor function (variables are member positions).
    std::unique_ptr<CycleFeedbackFactor> factor;
    /// First slot of this replica's message state in the message pools.
    uint32_t msg_base = 0;
    /// Member positions owned by this peer, ascending.
    std::vector<uint32_t> owned_positions;
    /// Distinct owners of foreign members, ascending (belief recipients).
    std::vector<PeerId> other_owners;
  };

  /// Precomputed outgoing-belief route: every (replica, owned position)
  /// message slot destined for one recipient, in emission order.
  struct BeliefRoute {
    PeerId to = 0;
    std::vector<std::pair<uint32_t, uint32_t>> slots;
  };

  /// Everything this peer tracks about one mapping variable: explicit
  /// prior, EM evidence accumulator, previous-round posterior, and the
  /// (replica, member position) slots of every factor that scopes it.
  struct VarState {
    MappingVarKey key;
    double prior = 0.5;
    bool has_explicit_prior = false;
    uint64_t evidence_count = 0;
    double evidence_sum = 0.0;
    bool has_evidence_acc = false;
    double last_posterior = 0.0;
    bool has_last_posterior = false;
    std::vector<std::pair<uint32_t, uint32_t>> slots;
  };

  /// Index of `var` in `vars_`, creating the entry on first sight.
  uint32_t InternVar(const MappingVarKey& var);
  const VarState* FindVar(const MappingVarKey& var) const;

  /// Registers replica `r` with the per-recipient belief routing tables.
  void AddReplicaToRoutes(uint32_t r);

  /// ∆ used by this peer when announcing feedback.
  double EffectiveDelta() const;

  /// Per-attribute feedback for a closed cycle probe.
  std::vector<AttributeFeedback> CycleFeedback(const ProbeMessage& probe) const;

  /// Per-attribute feedback for two independent parallel-path probes.
  std::vector<AttributeFeedback> ParallelFeedback(
      const ProbeMessage& first, const ProbeMessage& second) const;

  /// Coarse-granularity aggregation of per-attribute feedback.
  static std::vector<AttributeFeedback> CoarsenFeedback(
      std::vector<AttributeFeedback> fine);

  /// Sends `announcement` to every distinct owner of a member mapping.
  void AnnounceToOwners(const FeedbackAnnouncement& announcement,
                        std::vector<Outgoing>* out) const;

  /// Node sequence of a probe route (origin, then successive edge dsts).
  std::vector<NodeId> RouteNodes(const std::vector<EdgeId>& route) const;

  /// True if the two routes share no edge and no interior node.
  bool RoutesIndependent(const std::vector<EdgeId>& a,
                         const std::vector<EdgeId>& b) const;

  /// The θ-gate for a query attribute over one mapping (see
  /// EngineOptions::forward_without_evidence).
  bool GateAllows(EdgeId edge, AttributeId attribute) const;

  PeerId id_;
  Schema schema_;
  const Digraph* graph_;
  const EngineOptions* options_;
  DocumentStore store_;

  /// Outgoing mappings, flat and sorted by EdgeId (few per peer; binary
  /// search beats a node-based map and iteration stays in EdgeId order,
  /// which probe/query forwarding depends on for determinism).
  std::vector<std::pair<EdgeId, SchemaMapping>> mappings_;

  /// Dense replica store + identity-hashed index by factor fingerprint.
  /// Insertion order is announcement arrival order (deterministic under
  /// the engine's serial message dispatch).
  std::vector<Replica> replicas_;
  std::unordered_map<FactorId, uint32_t, FactorIdHash> replica_index_;
  /// replica_msg_base_[r] == replicas_[r].msg_base, kept as a flat array
  /// so hot loops resolve pool slots without touching the replica struct.
  std::vector<uint32_t> replica_msg_base_;

  /// SoA message pools, indexed by replica msg_base + member position:
  /// last µ_{member -> factor} per member (unit until heard otherwise),
  /// and µ_{factor -> member}, maintained for *owned* members.
  std::vector<Belief> var_to_factor_pool_;
  std::vector<Belief> factor_to_var_pool_;

  /// Per-recipient outgoing-belief routes, ascending by recipient; built
  /// incrementally at ingest, rebuilt on mapping removal.
  std::vector<BeliefRoute> belief_routes_;

  /// Dense per-variable state + hashed index by packed (edge, attribute).
  std::vector<VarState> vars_;
  std::unordered_map<uint64_t, uint32_t> var_index_;
  /// Indexes of `vars_` entries per mapping edge, ascending (lazy-schedule
  /// piggybacking looks variables up by edge, not by full key).
  std::unordered_map<EdgeId, std::vector<uint32_t>> edge_vars_;

  /// Round scratch (prefix/suffix message products), reused across rounds.
  std::vector<Belief> prefix_scratch_;
  std::vector<Belief> suffix_scratch_;

  /// Closures this peer has already announced (dedup).
  std::unordered_set<FactorId, FactorIdHash> announced_;
  /// Cached foreign probes per origin for parallel detection.
  std::unordered_map<PeerId, std::vector<ProbeMessage>> probe_cache_;
  std::unordered_set<uint64_t> seen_queries_;
};

}  // namespace pdms

#endif  // PDMS_CORE_PEER_H_
