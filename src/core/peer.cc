#include "core/peer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <span>

#include "util/string_util.h"

namespace pdms {
namespace {

/// Log-odds used by the admission guard's history (equivocation /
/// oscillation / influence comparisons). One-sided measures map to a
/// saturated constant — only comparisons consume the value, so the exact
/// cap is immaterial as long as it is deterministic.
constexpr double kGuardLogOddsCap = 745.0;

double GuardLogOdds(const Belief& belief) {
  if (belief.correct <= 0.0 && belief.incorrect <= 0.0) return 0.0;
  if (belief.incorrect <= 0.0) return kGuardLogOddsCap;
  if (belief.correct <= 0.0) return -kGuardLogOddsCap;
  return std::log(belief.correct / belief.incorrect);
}

/// Soft demotion: damp a message toward the uniform (unit) message by
/// retaining fraction `w` of its log-odds — elementwise pow keeps the
/// measure scale-free ((c/i)^w) and one-sided measures one-sided.
Belief GuardDamped(const Belief& belief, double w) {
  return Belief{std::pow(belief.correct, w), std::pow(belief.incorrect, w)};
}

}  // namespace

uint32_t ValueRankBits(const ValuePrecisionOptions& precision, uint32_t rank) {
  if (rank >= kValueRankExact && precision.exact_at_convergence) return 0;
  const uint32_t fine = ValueBitsForBudget(precision.error_budget);
  if (fine == 0) return 0;  // budget off: raw doubles everywhere
  if (!precision.adaptive || rank >= 2) return fine;
  // Coarse/mid tiers drop 6/3 fractional bits: an 8x/2x larger step
  // while residuals dwarf the budget anyway.
  const uint32_t drop = rank == 0 ? 6 : 3;
  return fine > drop + 2 ? fine - drop : 2;
}

uint32_t ValueRankTarget(const ValuePrecisionOptions& precision,
                         double residual, double tolerance) {
  if (precision.exact_at_convergence && residual < tolerance) {
    return kValueRankExact;
  }
  if (!precision.adaptive) return 2;
  const double eps = precision.error_budget;
  if (residual > 64.0 * eps) return 0;
  if (residual > 8.0 * eps) return 1;
  return 2;
}

Peer::Peer(PeerId id, Schema schema, const Digraph* graph,
           const EngineOptions* options)
    : id_(id), schema_(std::move(schema)), graph_(graph), options_(options) {}

// --- Mappings ---------------------------------------------------------------

Status Peer::AddMapping(EdgeId edge, SchemaMapping mapping) {
  const auto it = std::lower_bound(
      mappings_.begin(), mappings_.end(), edge,
      [](const auto& entry, EdgeId e) { return entry.first < e; });
  if (it != mappings_.end() && it->first == edge) {
    return Status::AlreadyExists(StrFormat("peer %u already maps edge %u", id_,
                                           edge));
  }
  if (graph_->edge(edge).src != id_) {
    return Status::InvalidArgument(
        StrFormat("edge %u does not start at peer %u", edge, id_));
  }
  mappings_.emplace(it, edge, std::move(mapping));
  return Status::Ok();
}

void Peer::RemoveMapping(EdgeId edge) {
  const auto it = std::lower_bound(
      mappings_.begin(), mappings_.end(), edge,
      [](const auto& entry, EdgeId e) { return entry.first < e; });
  if (it != mappings_.end() && it->first == edge) mappings_.erase(it);

  // Drop every replica referencing the edge, then rebuild the indexes,
  // recompact the SoA pools, and rebuild the per-variable slot lists and
  // belief routing tables. Churn is rare; rounds are hot.
  //
  // The guard pool shares the message pools' slots; align it before
  // compaction (it grows lazily, so it may trail the message pools).
  if (!guard_slot_pool_.empty() &&
      guard_slot_pool_.size() < var_to_factor_pool_.size()) {
    guard_slot_pool_.resize(var_to_factor_pool_.size());
  }
  // Misbehavior is a property of the *neighbor*, not of the alias
  // session: carry scores and demotions across the session reset below,
  // so churn cannot parole a demoted link.
  struct GuardCarry {
    PeerId peer;
    double score;
    uint8_t demote_level;
    uint64_t rejections, equivocations, oscillations, outliers, dropped;
  };
  std::vector<GuardCarry> carried;
  if (options_->byzantine_guard.enabled) {
    for (const auto& [peer, index] : alias_link_index_) {
      const PeerLink& link = alias_links_[index];
      if (link.guard_score == 0.0 && link.guard_demote_level == 0 &&
          link.guard_rejections == 0 && link.guard_equivocations == 0 &&
          link.guard_oscillations == 0 && link.guard_outliers == 0 &&
          link.guard_dropped_bundles == 0) {
        continue;
      }
      carried.push_back(GuardCarry{
          peer, link.guard_score, link.guard_demote_level,
          link.guard_rejections, link.guard_equivocations,
          link.guard_oscillations, link.guard_outliers,
          link.guard_dropped_bundles});
    }
  }
  const std::vector<Belief> old_var_to_factor = std::move(var_to_factor_pool_);
  const std::vector<Belief> old_factor_to_var = std::move(factor_to_var_pool_);
  const std::vector<MappingVarKey> old_members = std::move(member_pool_);
  const std::vector<PeerId> old_owners = std::move(member_owner_pool_);
  const std::vector<uint32_t> old_owned = std::move(owned_pos_pool_);
  const std::vector<ReplicaHot> old_hot = std::move(replica_hot_);
  const std::vector<GuardSlot> old_guard = std::move(guard_slot_pool_);
  var_to_factor_pool_.clear();
  factor_to_var_pool_.clear();
  member_pool_.clear();
  member_owner_pool_.clear();
  owned_pos_pool_.clear();
  replica_hot_.clear();
  guard_slot_pool_.clear();
  std::vector<Replica> kept;
  kept.reserve(replicas_.size());
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    const ReplicaHot& hot = old_hot[r];
    const auto member_begin = old_members.begin() + hot.msg_base;
    const auto member_end = member_begin + hot.member_count;
    const bool touches = std::any_of(
        member_begin, member_end,
        [edge](const MappingVarKey& var) { return var.edge == edge; });
    if (touches) continue;
    ReplicaHot compacted = hot;
    compacted.msg_base = static_cast<uint32_t>(var_to_factor_pool_.size());
    compacted.owned_base = static_cast<uint32_t>(owned_pos_pool_.size());
    var_to_factor_pool_.insert(
        var_to_factor_pool_.end(), old_var_to_factor.begin() + hot.msg_base,
        old_var_to_factor.begin() + hot.msg_base + hot.member_count);
    factor_to_var_pool_.insert(
        factor_to_var_pool_.end(), old_factor_to_var.begin() + hot.msg_base,
        old_factor_to_var.begin() + hot.msg_base + hot.member_count);
    member_pool_.insert(member_pool_.end(), member_begin, member_end);
    member_owner_pool_.insert(
        member_owner_pool_.end(), old_owners.begin() + hot.msg_base,
        old_owners.begin() + hot.msg_base + hot.member_count);
    owned_pos_pool_.insert(
        owned_pos_pool_.end(), old_owned.begin() + hot.owned_base,
        old_owned.begin() + hot.owned_base + hot.owned_count);
    if (!old_guard.empty()) {
      guard_slot_pool_.insert(
          guard_slot_pool_.end(), old_guard.begin() + hot.msg_base,
          old_guard.begin() + hot.msg_base + hot.member_count);
    }
    replica_hot_.push_back(compacted);
    kept.push_back(std::move(replicas_[r]));
  }
  replicas_ = std::move(kept);
  replica_index_.clear();
  belief_routes_.clear();
  // The replica set (and with it every route) changed, so the link-local
  // alias numbering is void: clear both session directions and bump the
  // epoch. Every peer of the network processes the same removal, so the
  // sender's new numbering and the receivers' fresh tables stay in
  // lockstep, and in-flight bundles from the old numbering are rejected
  // by their stale epoch rather than misrouted.
  alias_links_.clear();
  alias_link_index_.clear();
  ++alias_epoch_;
  for (VarState& var : vars_) var.slots.clear();
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    replica_index_.emplace(replicas_[r].id, r);
    const ReplicaHot& hot = replica_hot_[r];
    for (uint32_t i = 0; i < hot.owned_count; ++i) {
      const uint32_t pos = owned_pos_pool_[hot.owned_base + i];
      vars_[InternVar(member_pool_[hot.msg_base + pos])].slots.emplace_back(
          r, pos);
    }
    AddReplicaToRoutes(r);
  }
  for (const GuardCarry& carry : carried) {
    PeerLink& link = alias_links_[InternAliasLink(carry.peer)];
    link.guard_score = carry.score;
    link.guard_demote_level = carry.demote_level;
    link.guard_rejections = carry.rejections;
    link.guard_equivocations = carry.equivocations;
    link.guard_oscillations = carry.oscillations;
    link.guard_outliers = carry.outliers;
    link.guard_dropped_bundles = carry.dropped;
  }
}

const SchemaMapping* Peer::mapping(EdgeId edge) const {
  const auto it = std::lower_bound(
      mappings_.begin(), mappings_.end(), edge,
      [](const auto& entry, EdgeId e) { return entry.first < e; });
  return it != mappings_.end() && it->first == edge ? &it->second : nullptr;
}

std::vector<EdgeId> Peer::OutgoingEdges() const {
  std::vector<EdgeId> edges;
  edges.reserve(mappings_.size());
  for (const auto& [edge, mapping] : mappings_) edges.push_back(edge);
  return edges;
}

// --- Priors & posteriors ------------------------------------------------------

uint32_t Peer::InternVar(const MappingVarKey& var) {
  const auto [it, inserted] =
      var_index_.emplace(var.Packed(), static_cast<uint32_t>(vars_.size()));
  if (inserted) {
    VarState state;
    state.key = var;
    // Interning appends, so each edge's index list stays ascending — the
    // iteration order PiggybackUpdatesFor depends on for determinism.
    edge_vars_[var.edge].push_back(it->second);
    vars_.push_back(std::move(state));
  }
  return it->second;
}

const Peer::VarState* Peer::FindVar(const MappingVarKey& var) const {
  const auto it = var_index_.find(var.Packed());
  return it == var_index_.end() ? nullptr : &vars_[it->second];
}

void Peer::SetPrior(const MappingVarKey& var, double prior) {
  VarState& state = vars_[InternVar(var)];
  state.prior = prior;
  state.has_explicit_prior = true;
  state.evidence_count = 0;
  state.evidence_sum = 0.0;
  state.has_evidence_acc = false;
}

double Peer::Prior(const MappingVarKey& var) const {
  const VarState* state = FindVar(var);
  return state != nullptr && state->has_explicit_prior
             ? state->prior
             : options_->default_prior;
}

bool Peer::HasEvidence(const MappingVarKey& var) const {
  const VarState* state = FindVar(var);
  return state != nullptr && !state->slots.empty();
}

Belief Peer::PosteriorBelief(const MappingVarKey& var) const {
  // ⊥ rule: a mapping that does not represent the attribute has
  // correctness 0 for it (Section 3.2.1).
  if (var.attribute != MappingVarKey::kWholeMapping) {
    const SchemaMapping* m = mapping(var.edge);
    if (m == nullptr || !m->Apply(var.attribute).has_value()) {
      return Belief{0.0, 1.0};
    }
  }
  Belief posterior = Belief::FromProbability(Prior(var));
  if (const VarState* state = FindVar(var)) {
    for (const auto& [replica, position] : state->slots) {
      posterior *= factor_to_var_pool_[replica_hot_[replica].msg_base + position];
    }
  }
  return posterior.Normalized();
}

double Peer::Posterior(const MappingVarKey& var) const {
  return PosteriorBelief(var).correct;
}

void Peer::UpdatePriorsFromPosteriors() {
  for (VarState& state : vars_) {
    if (state.slots.empty()) continue;
    if (!state.has_evidence_acc) {
      state.has_evidence_acc = true;
      state.evidence_count = 1;
      state.evidence_sum = Prior(state.key);
    }
    ++state.evidence_count;
    state.evidence_sum += Posterior(state.key);
    state.prior =
        state.evidence_sum / static_cast<double>(state.evidence_count);
    state.has_explicit_prior = true;
  }
}

// --- Embedded message passing -------------------------------------------------

double Peer::EffectiveDelta() const {
  if (options_->delta_override.has_value()) return *options_->delta_override;
  const size_t s = schema_.size();
  return s > 1 ? 1.0 / static_cast<double>(s - 1) : 0.5;
}

namespace {

/// True when the two (closure, root attribute) pairs describe the same
/// factor content — the equality `FactorId::Make` fingerprints.
bool SameFactorContent(const Closure& a, AttributeId a_root, const Closure& b,
                       AttributeId b_root) {
  if (a_root != b_root || a.kind != b.kind || a.source != b.source) {
    return false;
  }
  if (a.kind == Closure::Kind::kParallelPaths &&
      (a.sink != b.sink || a.split != b.split)) {
    return false;
  }
  if (a.edges.size() != b.edges.size()) return false;
  std::vector<EdgeId> a_sorted = a.edges;
  std::vector<EdgeId> b_sorted = b.edges;
  std::sort(a_sorted.begin(), a_sorted.end());
  std::sort(b_sorted.begin(), b_sorted.end());
  return a_sorted == b_sorted;
}

}  // namespace

Status Peer::ValidateFactorContent(const FactorId& id, const Closure& closure,
                                   const AttributeFeedback& feedback) const {
  const auto existing = replica_index_.find(id);
  if (existing == replica_index_.end()) return Status::Ok();
  const Replica& stored = replicas_[existing->second];
  const std::span<const MappingVarKey> stored_members =
      Members(existing->second);
  // Position-based update addressing makes the member *sequence*
  // load-bearing across replicas, so content equality requires it
  // verbatim, on top of the closure structure the id fingerprints. A
  // same-id announcement with permuted or substituted members would
  // silently cross-wire remote µ-messages if accepted.
  if (SameFactorContent(stored.closure, stored.root_attribute, closure,
                        feedback.root_attribute) &&
      std::equal(stored_members.begin(), stored_members.end(),
                 feedback.members.begin(), feedback.members.end())) {
    return Status::Ok();
  }
  // Distinct factor content under the same 128-bit id: reject loudly
  // instead of storing it.
  return Status::FailedPrecondition(
      StrFormat("factor fingerprint collision on %s at peer %u",
                id.ToString().c_str(), id_));
}

Status Peer::IngestFeedback(const FeedbackAnnouncement& announcement) {
  // Validate-then-apply, so a collision anywhere in the announcement
  // leaves the peer untouched. The apply phase below cannot fail: fresh
  // ids always ingest, validated existing ids are idempotent no-ops, and
  // entries owning no local member are skipped inside IngestFactor.
  std::vector<std::pair<FactorId, const AttributeFeedback*>> pending;
  for (const AttributeFeedback& feedback : announcement.feedback) {
    if (feedback.sign == FeedbackSign::kNeutral) continue;
    const FactorId id =
        FactorId::Make(announcement.closure, feedback.root_attribute);
    PDMS_RETURN_IF_ERROR(
        ValidateFactorContent(id, announcement.closure, feedback));
    // Also validate against the announcement's own earlier entries: two
    // same-id entries with diverging content would otherwise pass the
    // stored-state check, then collide against each other mid-apply.
    for (const auto& [seen_id, seen] : pending) {
      if (seen_id != id) continue;
      if (seen->root_attribute == feedback.root_attribute &&
          std::equal(seen->members.begin(), seen->members.end(),
                     feedback.members.begin(), feedback.members.end())) {
        continue;
      }
      return Status::FailedPrecondition(
          StrFormat("factor fingerprint collision on %s within one "
                    "announcement at peer %u",
                    id.ToString().c_str(), id_));
    }
    pending.emplace_back(id, &feedback);
  }
  for (const auto& [id, feedback] : pending) {
    const Status applied =
        IngestFactor(id, announcement.closure, *feedback, announcement.delta);
    assert(applied.ok());
    (void)applied;
  }
  return Status::Ok();
}

Status Peer::IngestFactor(const FactorId& id, const Closure& closure,
                          const AttributeFeedback& feedback, double delta) {
  if (replica_index_.count(id) > 0) {
    // Existing id: either the same factor identity (idempotent no-op;
    // sign/∆ deliberately do not participate — they are observations, and
    // a re-observation keeps the first value) or a collision.
    return ValidateFactorContent(id, closure, feedback);
  }
  const bool owns_member = std::any_of(
      feedback.members.begin(), feedback.members.end(),
      [this](const MappingVarKey& var) {
        return graph_->edge_alive(var.edge) && graph_->edge(var.edge).src == id_;
      });
  if (!owns_member) return Status::Ok();

  Replica replica;
  replica.id = id;
  replica.closure = closure;
  replica.root_attribute = feedback.root_attribute;
  replica.sign = feedback.sign;
  replica.delta = delta;
  const size_t n = feedback.members.size();
  ReplicaHot hot;
  hot.msg_base = static_cast<uint32_t>(var_to_factor_pool_.size());
  hot.member_count = static_cast<uint32_t>(n);
  hot.owned_base = static_cast<uint32_t>(owned_pos_pool_.size());
  hot.delta = delta;
  hot.positive = feedback.sign == FeedbackSign::kPositive;
  var_to_factor_pool_.resize(hot.msg_base + n, Belief::Unit());
  factor_to_var_pool_.resize(hot.msg_base + n, Belief::Unit());
  member_pool_.insert(member_pool_.end(), feedback.members.begin(),
                      feedback.members.end());
  for (size_t i = 0; i < n; ++i) {
    const PeerId owner = graph_->edge(feedback.members[i].edge).src;
    member_owner_pool_.push_back(owner);
    if (owner == id_) {
      // Own variables start from the locally-known prior instead of the
      // unit message; remote ones stay unit until heard from.
      var_to_factor_pool_[hot.msg_base + i] =
          Belief::FromProbability(Prior(feedback.members[i]));
      owned_pos_pool_.push_back(static_cast<uint32_t>(i));
      ++hot.owned_count;
    } else {
      replica.other_owners.push_back(owner);
    }
  }
  std::sort(replica.other_owners.begin(), replica.other_owners.end());
  replica.other_owners.erase(
      std::unique(replica.other_owners.begin(), replica.other_owners.end()),
      replica.other_owners.end());

  const auto index = static_cast<uint32_t>(replicas_.size());
  replicas_.push_back(std::move(replica));
  replica_hot_.push_back(hot);
  replica_index_.emplace(id, index);
  for (uint32_t i = 0; i < hot.owned_count; ++i) {
    const uint32_t pos = owned_pos_pool_[hot.owned_base + i];
    vars_[InternVar(member_pool_[hot.msg_base + pos])].slots.emplace_back(
        index, pos);
  }
  AddReplicaToRoutes(index);
  return Status::Ok();
}

uint32_t Peer::InternAliasLink(PeerId peer) {
  const auto it = std::lower_bound(
      alias_link_index_.begin(), alias_link_index_.end(), peer,
      [](const auto& entry, PeerId p) { return entry.first < p; });
  if (it != alias_link_index_.end() && it->first == peer) return it->second;
  const auto index = static_cast<uint32_t>(alias_links_.size());
  alias_links_.emplace_back();
  alias_link_index_.emplace(it, peer, index);
  return index;
}

void Peer::AddReplicaToRoutes(uint32_t r) {
  const Replica& replica = replicas_[r];
  if (replica_hot_[r].owned_count == 0) return;
  for (PeerId peer : replica.other_owners) {
    // First mention of this factor over the (this -> peer) link: negotiate
    // the session alias the route will emit under. Replicas register in
    // ascending index order, so aliases ascend with replica index and
    // each route's group list stays in canonical emission order — the
    // order the determinism guarantee rides on.
    const uint32_t link = InternAliasLink(peer);
    const uint32_t alias = alias_links_[link].session.tx.Assign(replica.id);
    auto it = std::lower_bound(
        belief_routes_.begin(), belief_routes_.end(), peer,
        [](const BeliefRoute& route, PeerId p) { return route.to < p; });
    if (it == belief_routes_.end() || it->to != peer) {
      it = belief_routes_.insert(it, BeliefRoute{peer, link, 0, {}});
    }
    it->entry_total += replica_hot_[r].owned_count;
    it->groups.emplace_back(r, alias);
  }
}

void Peer::AbsorbResolved(uint32_t r, uint32_t position, const Belief& belief) {
  const ReplicaHot& hot = replica_hot_[r];
  if (position >= hot.member_count) return;                    // malformed
  if (member_owner_pool_[hot.msg_base + position] == id_) return;  // forged
  var_to_factor_pool_[hot.msg_base + position] = belief;
}

void Peer::AbsorbBeliefUpdate(const BeliefUpdate& update) {
  const auto it = replica_index_.find(update.factor);
  if (it == replica_index_.end()) return;  // closure unknown here: ignore
  AbsorbResolved(it->second, update.position, update.belief);
}

Status Peer::AbsorbBeliefBundle(PeerId from, const BeliefMessage& message) {
  // Quantized bundles (value_bits != 0) arrive with every entry's
  // `belief` already holding the dequantized realization of its wire
  // quantum: the codec materializes it on decode, and senders write it at
  // construction (`BeliefMessage::QuantizeValues`) so in-memory
  // transports deliver the same values a socket would. Absorption
  // therefore reads `entry.belief` uniformly for both formats.
  //
  // Everything in a stale-epoch bundle refers to the pre-rebuild
  // numbering — including its ack. Applying such an ack to the fresh
  // transmit session would mark bindings as established that the new
  // receive tables never saw, silencing the full-id fallback for good,
  // so the whole bundle is rejected up front.
  if (message.epoch != alias_epoch_) {
    return Status::FailedPrecondition(StrFormat(
        "belief bundle from peer %u carries alias epoch %u, peer %u is at %u",
        from, message.epoch, id_, alias_epoch_));
  }
  PeerLink& link = alias_links_[InternAliasLink(from)];
  const bool guarded = options_->byzantine_guard.enabled;
  if (guarded) {
    // Hard-quarantined link: nothing in the bundle is trusted — not the
    // entries, not the ack, not the binding declarations. Counted and
    // dropped without a Status (a per-round error would flood the logs
    // for as long as the adversary keeps sending).
    if (link.guard_demote_level >= 2) {
      ++link.guard_dropped_bundles;
      return Status::Ok();
    }
    // Slot histories share the message pools' slots and grow lazily, so
    // replicas ingested since the last bundle get theirs here.
    if (guard_slot_pool_.size() < var_to_factor_pool_.size()) {
      guard_slot_pool_.resize(var_to_factor_pool_.size());
    }
  }
  AliasSessionTx& tx = link.session.tx;
  // The bundle's ack acknowledges *our* transmit session toward the
  // sender. Latest-wins, not max: an honest receiver's ack is monotone
  // and bundles arrive per-sender FIFO, so overwriting never loses
  // ground — while a *forged* high ack is corrected by the next genuine
  // bundle instead of permanently silencing the full-fingerprint
  // fallback (max would ratchet the forgery in forever). Clamping to
  // next_alias keeps never-declared aliases out either way.
  tx.acked_prefix = std::min(message.ack, tx.next_alias);
  AliasSessionRx& rx = link.session.rx;
  Status status = Status::Ok();
  for (const BeliefGroup& group : message.groups) {
    // Entry ranges are untrusted input like everything else in a bundle:
    // a range outside the flat array is rejected, not clamped-and-used.
    if (static_cast<uint64_t>(group.entry_begin) + group.entry_count >
        message.entries.size()) {
      if (status.ok()) {
        status = Status::InvalidArgument(StrFormat(
            "belief group for alias %u addresses entries [%u, %u) beyond "
            "the bundle's %zu",
            group.alias, group.entry_begin,
            group.entry_begin + group.entry_count, message.entries.size()));
      }
      continue;
    }
    // Steady state first: a *bare* alias whose factor is already resolved
    // costs one 4-byte load — no fingerprint hash lookup per update. A
    // group that carries a fingerprint must take the slow path even when
    // cached, so a conflicting rebind is detected instead of silently
    // absorbed under the original binding.
    uint32_t replica = group.id.IsNil() &&
                               group.alias < link.replica_of_alias.size()
                           ? link.replica_of_alias[group.alias]
                           : kNoReplica;
    if (replica == kNoReplica) {
      FactorId id = group.id;
      if (!id.IsNil()) {
        // Binding declaration (first mention / loss refallback). Recorded
        // even when no replica exists here yet — the announcement may
        // still be in flight, and acking the binding is what lets the
        // sender drop the fingerprint once we can use the updates.
        Status bound = rx.Bind(group.alias, id);
        if (!bound.ok()) {
          const StatusCode bound_code = bound.code();
          if (status.ok()) status = std::move(bound);
          // Past the per-session alias cap the binding cannot be stored,
          // but the fingerprint in the group is still a complete, valid
          // address — absorb through it (degrading to PR 3 full-id
          // semantics for the overflow tail; the binding stays unacked,
          // so the sender keeps declaring it). A *conflicting* rebind, by
          // contrast, is dropped outright, mirroring the collision
          // policy: neither identity can be trusted.
          if (bound_code != StatusCode::kOutOfRange) continue;
          const auto overflow = replica_index_.find(id);
          if (overflow != replica_index_.end()) {
            for (const BeliefEntry& entry : message.EntriesOf(group)) {
              if (guarded) {
                AbsorbGuarded(from, link, overflow->second, entry,
                              message.value_bits, &status);
              } else {
                AbsorbResolved(overflow->second, entry.position, entry.belief);
              }
            }
          }
          continue;
        }
      } else if (group.alias < rx.id_of.size() &&
                 !rx.id_of[group.alias].IsNil()) {
        id = rx.id_of[group.alias];
      } else {
        if (status.ok()) status = rx.Resolve(group.alias).status();
        continue;
      }
      const auto it = replica_index_.find(id);
      if (it == replica_index_.end()) continue;  // closure unknown: ignore
      replica = it->second;
      if (group.alias >= link.replica_of_alias.size()) {
        link.replica_of_alias.resize(group.alias + 1, kNoReplica);
      }
      link.replica_of_alias[group.alias] = replica;
    }
    for (const BeliefEntry& entry : message.EntriesOf(group)) {
      if (guarded) {
        AbsorbGuarded(from, link, replica, entry, message.value_bits,
                      &status);
      } else {
        AbsorbResolved(replica, entry.position, entry.belief);
      }
    }
  }
  return status;
}

void Peer::AbsorbGuarded(PeerId from, PeerLink& link, uint32_t r,
                         const BeliefEntry& entry, uint32_t value_bits,
                         Status* status) {
  const ByzantineGuardOptions& guard = options_->byzantine_guard;
  const ReplicaHot& hot = replica_hot_[r];
  const Belief& received = entry.belief;
  // Numerically degenerate measures — NaN, ±inf, all-zero — are refused
  // so the pool only ever holds usable values, and counted, but NOT
  // scored: they can be honest fallout of a poisoned upstream product
  // (contradictory one-sided certainties multiply to {0, 0}; huge finite
  // lies overflow to ±inf one hop later), and punishing relays for their
  // neighbors' lies would cascade demotion through the honest
  // subnetwork. Scoring keys on provable protocol violations below.
  const bool nan_measure =
      std::isnan(received.correct) || std::isnan(received.incorrect);
  const bool negative =
      !nan_measure && (received.correct < 0.0 || received.incorrect < 0.0);
  if (nan_measure || std::isinf(received.correct) ||
      std::isinf(received.incorrect) ||
      (!negative && received.correct == 0.0 && received.incorrect == 0.0)) {
    ++link.guard_rejections;
    return;
  }
  // Admission proper: everything the unguarded path silently ignores
  // (malformed positions, forged own-member updates) plus semantic
  // validity is evidence here, rejected and scored instead of dropped.
  bool admitted = !negative;
  const char* reason = "negative measure";
  if (admitted && value_bits != 0) {
    // Declared-tier consistency: the quantum must lie within the
    // bundle's tier and the belief must be exactly its dequantized
    // realization — a sender cannot claim one precision and ship
    // another.
    if (entry.quant != kQuantPosInf && entry.quant != kQuantNegInf &&
        (entry.quant > QuantBound(value_bits) ||
         entry.quant < -QuantBound(value_bits))) {
      admitted = false;
      reason = "quantum outside the declared tier";
    } else {
      const Belief expected = DequantizeLogOdds(entry.quant, value_bits);
      if (received.correct != expected.correct ||
          received.incorrect != expected.incorrect) {
        admitted = false;
        reason = "belief inconsistent with its wire quantum";
      }
    }
  }
  if (admitted && entry.position >= hot.member_count) {
    admitted = false;
    reason = "position outside the factor scope";
  }
  if (admitted) {
    // Exactly one peer legitimately writes each slot: the member's
    // owner. Enforcing that here closes third-party overwrites (an
    // adversary poisoning a slot it does not own) and keeps the per-slot
    // equivocation / oscillation history attributable to one link — an
    // impersonator can no longer frame the honest owner.
    const PeerId owner = member_owner_pool_[hot.msg_base + entry.position];
    if (owner == id_) {
      admitted = false;
      reason = "update for a variable this peer owns";
    } else if (owner != from) {
      admitted = false;
      reason = "update for a variable the sender does not own";
    }
  }
  if (!admitted) {
    ++link.guard_rejections;
    link.guard_score += guard.admission_weight;
    if (status->ok()) {
      *status = Status::InvalidArgument(
          StrFormat("belief entry rejected at peer %u: %s", id_, reason));
    }
    return;
  }

  GuardSlot& slot = guard_slot_pool_[hot.msg_base + entry.position];
  const double log_odds = GuardLogOdds(received);
  if (slot.has_last && slot.last_round == round_ &&
      log_odds != slot.last_log_odds) {
    // Same-round conflicting value for one slot: equivocation. The first
    // value is kept. Re-sending the *same* value (a duplicated envelope)
    // falls through below as a clean idempotent overwrite.
    ++link.guard_equivocations;
    link.guard_score += guard.equivocation_weight;
    if (status->ok()) {
      *status = Status::FailedPrecondition(StrFormat(
          "equivocating belief entry at peer %u: conflicting values for one "
          "slot within round %llu",
          id_, static_cast<unsigned long long>(round_)));
    }
    return;
  }
  if (slot.has_last) {
    const double delta = log_odds - slot.last_log_odds;
    if (std::abs(delta) >= guard.flip_magnitude) {
      const int8_t dir = delta > 0.0 ? 1 : -1;
      if (dir == -slot.last_dir) {
        if (++slot.flips >= guard.oscillation_bound) {
          // Count every completed streak, but score at most one
          // oscillation event per link per round (GuardEndOfRound):
          // links carry many slots, and per-slot scoring would let a
          // poisoned honest relay — every slot thrashing secondhand —
          // accrue score proportional to its slot count.
          ++link.guard_oscillations;
          link.guard_round_oscillated = true;
          slot.flips = 0;
        }
      } else {
        slot.flips = 0;
      }
      slot.last_dir = dir;
    }
    link.guard_round_influence += std::abs(delta);
  } else {
    link.guard_round_influence += std::abs(log_odds);
  }
  ++link.guard_round_absorbed;
  slot.last_log_odds = log_odds;
  slot.last_round = round_;
  slot.has_last = true;
  // Admission checks above subsume AbsorbResolved's guards; write the
  // slot directly, damped toward the unit message on a soft-demoted link.
  var_to_factor_pool_[hot.msg_base + entry.position] =
      link.guard_demote_level >= 1 ? GuardDamped(received, guard.soft_damping)
                                   : received;
}

void Peer::GuardEndOfRound() {
  const ByzantineGuardOptions& guard = options_->byzantine_guard;
  // Influence outliers: a link whose mean absorbed |Δ log-odds| this
  // round dwarfs the median across still-clean links gets scored. The
  // median deliberately excludes suspects — colluding neighbors cannot
  // vouch each other back under it — and neighborhoods with fewer than
  // three clean reporting links skip the check (no meaningful quorum).
  std::vector<double> clean_means;
  clean_means.reserve(alias_links_.size());
  for (const PeerLink& link : alias_links_) {
    if (link.guard_demote_level == 0 && link.guard_round_absorbed > 0) {
      clean_means.push_back(link.guard_round_influence /
                            link.guard_round_absorbed);
    }
  }
  if (clean_means.size() >= 3) {
    std::sort(clean_means.begin(), clean_means.end());
    const double median = clean_means[clean_means.size() / 2];
    // The baseline is floored at flip_magnitude: in a mostly-converged
    // neighborhood the clean median collapses toward zero, and without
    // the floor every link still doing real work would dwarf it and be
    // scored as an "outlier".
    const double baseline = std::max(median, guard.flip_magnitude);
    if (baseline > 0.0) {
      for (PeerLink& link : alias_links_) {
        if (link.guard_demote_level != 0 || link.guard_round_absorbed == 0) {
          continue;
        }
        const double mean =
            link.guard_round_influence / link.guard_round_absorbed;
        if (mean > guard.outlier_ratio * baseline) {
          ++link.guard_outliers;
          link.guard_score += guard.outlier_weight;
        }
      }
    }
  }
  // Thresholds before decay, so a burst that crossed this round demotes
  // this round; decay then ages whatever remains. Demotion is sticky —
  // levels only ever rise — so replay from any snapshot reaches the
  // same decisions.
  for (size_t i = 0; i < alias_links_.size(); ++i) {
    PeerLink& link = alias_links_[i];
    if (link.guard_round_oscillated) {
      link.guard_score += guard.oscillation_weight;
      link.guard_round_oscillated = false;
    }
    if (link.guard_score >= guard.hard_threshold) {
      if (link.guard_demote_level < 2) {
        link.guard_demote_level = 2;
        // Quarantining stops FUTURE bundles; the lies already absorbed
        // would keep poisoning this peer's products (and its honest
        // neighbors, secondhand) forever. Reset every slot the liar
        // owns to the neutral measure so the subnetwork can heal.
        for (const auto& [peer, index] : alias_link_index_) {
          if (index == i) {
            PurgeGuardDeposits(peer);
            break;
          }
        }
      }
    } else if (link.guard_score >= guard.soft_threshold &&
               link.guard_demote_level < 1) {
      link.guard_demote_level = 1;
    }
    link.guard_score *= guard.score_decay;
    link.guard_round_influence = 0.0;
    link.guard_round_absorbed = 0;
  }
}

void Peer::PurgeGuardDeposits(PeerId peer) {
  for (const ReplicaHot& hot : replica_hot_) {
    for (uint32_t m = 0; m < hot.member_count; ++m) {
      const size_t slot = hot.msg_base + m;
      if (member_owner_pool_[slot] != peer) continue;
      var_to_factor_pool_[slot] = Belief::Unit();
      if (slot < guard_slot_pool_.size()) {
        guard_slot_pool_[slot] = GuardSlot{};
      }
    }
  }
}

double Peer::ComputeRound() {
  // Phase 1: factor -> variable messages for owned members, from the
  // var -> factor state of the previous round (synchronous flooding).
  // Streams only the flat hot array and the SoA pools: no cold replica
  // struct, no per-replica heap vector, no virtual factor dispatch.
  const bool damped = options_->damping > 0.0;
  for (const ReplicaHot& hot : replica_hot_) {
    const std::span<const Belief> incoming(
        var_to_factor_pool_.data() + hot.msg_base, hot.member_count);
    for (uint32_t i = 0; i < hot.owned_count; ++i) {
      const uint32_t pos = owned_pos_pool_[hot.owned_base + i];
      Belief& target = factor_to_var_pool_[hot.msg_base + pos];
      Belief computed =
          CycleFeedbackMessage(pos, incoming, hot.positive, hot.delta)
              .Rescaled();
      if (damped) {
        computed = target.DampedToward(computed, 1.0 - options_->damping);
      }
      target = computed;
    }
  }
  // Phase 2: variable -> factor messages for owned variables:
  // µ_{v->f} = prior(v) · Π_{f' ∋ v, f' ≠ f} µ_{f'->v}, computed for all
  // adjacent factors at once via prefix/suffix products (O(deg) per
  // variable instead of O(deg²)). The full product also yields the new
  // posterior, so the convergence residual comes out of the same pass
  // instead of a separate Posterior() sweep.
  double max_change = 0.0;
  for (VarState& var : vars_) {
    const size_t k = var.slots.size();
    if (k == 0) continue;
    const Belief prior = Belief::FromProbability(Prior(var.key));
    ExclusivePrefixSuffixProducts(
        k,
        [&](size_t j) -> const Belief& {
          return factor_to_var_pool_[replica_hot_[var.slots[j].first].msg_base +
                                     var.slots[j].second];
        },
        &prefix_scratch_, &suffix_scratch_);
    for (size_t j = 0; j < k; ++j) {
      const Belief message =
          (prior * prefix_scratch_[j] * suffix_scratch_[j + 1]).Rescaled();
      var_to_factor_pool_[replica_hot_[var.slots[j].first].msg_base +
                          var.slots[j].second] = message;
    }
    // Convergence metric: posterior change over owned variables, with the
    // ⊥ rule applied exactly as in PosteriorBelief.
    double now = (prior * prefix_scratch_[k]).Normalized().correct;
    if (var.key.attribute != MappingVarKey::kWholeMapping) {
      const SchemaMapping* m = mapping(var.key.edge);
      if (m == nullptr || !m->Apply(var.key.attribute).has_value()) now = 0.0;
    }
    if (var.has_last_posterior) {
      max_change = std::max(max_change, std::abs(now - var.last_posterior));
    } else {
      max_change = 1.0;  // first round with evidence: not converged
    }
    var.last_posterior = now;
    var.has_last_posterior = true;
  }
  // Residual-driven precision step-up (quantized wire values): every
  // outgoing link ratchets toward the tier this round's residual calls
  // for — monotone, so a peer restored from a snapshot continues the
  // same precision trajectory an uninterrupted run would have taken.
  if (options_->value_precision.error_budget > 0.0) {
    const uint32_t target = ValueRankTarget(
        options_->value_precision, max_change, options_->tolerance);
    for (PeerLink& link : alias_links_) {
      if (link.value_rank < target) {
        link.value_rank = static_cast<uint8_t>(target);
      }
    }
  }
  if (options_->byzantine_guard.enabled) GuardEndOfRound();
  // The round clock is maintained unconditionally (the guard's same-round
  // window and the chaos layer's draw key both read it); with both off
  // the increment touches nothing else.
  ++round_;
  return max_change;
}

void Peer::CollectOutgoingBeliefs(std::vector<Outgoing>* out) const {
  // The routing tables already hold recipients in ascending PeerId — the
  // determinism anchor for lossy transports — and every group to emit, so
  // this is a straight pour: no per-round map, no re-bucketing, no alias
  // lookup (the alias was negotiated when the route was built).
  out->clear();
  out->reserve(belief_routes_.size());
  const bool quantize = options_->value_precision.error_budget > 0.0;
  const ByzantinePlan& chaos = options_->byzantine;
  const bool adversarial = chaos.Enabled() && chaos.IsAdversary(id_);
  std::vector<FactorId> chaos_group_ids;
  for (const BeliefRoute& route : belief_routes_) {
    const PeerLink& link = alias_links_[route.link];
    const AliasLink& session = link.session;
    const AliasSessionTx& tx = session.tx;
    BeliefMessage bundle;
    bundle.epoch = alias_epoch_;
    // Piggybacked ack for the reverse session: how much of the sender's
    // numbering *we* have bound (0 until they have sent us anything).
    bundle.ack = session.rx.known_prefix;
    bundle.groups.reserve(route.groups.size());
    bundle.entries.reserve(route.entry_total);
    for (const auto& [replica, alias] : route.groups) {
      const ReplicaHot& hot = replica_hot_[replica];
      BeliefGroup group;
      group.alias = alias;
      group.entry_begin = static_cast<uint32_t>(bundle.entries.size());
      group.entry_count = hot.owned_count;
      // Unacknowledged binding: keep declaring the full fingerprint so a
      // dropped first mention degrades to full-id traffic, never to an
      // unknown alias at the receiver.
      if (alias >= tx.acked_prefix) group.id = replicas_[replica].id;
      for (uint32_t i = 0; i < hot.owned_count; ++i) {
        const uint32_t pos = owned_pos_pool_[hot.owned_base + i];
        bundle.entries.push_back(
            BeliefEntry{pos, var_to_factor_pool_[hot.msg_base + pos]});
      }
      bundle.groups.push_back(group);
    }
    // Quantize at construction, at the link's current precision tier:
    // every entry gets its wire quantum and the dequantized value the
    // receiver will observe — identically whether the bundle crosses a
    // socket (codec ships the quantum) or an in-memory transport (the
    // struct already carries the dequantized belief).
    if (quantize) {
      bundle.QuantizeValues(
          ValueRankBits(options_->value_precision, link.value_rank));
    }
    // Behavioral chaos: an adversarial peer poisons its own wire *after*
    // quantization, so forged entries stay tier-consistent and have to
    // be caught semantically by receivers, not syntactically. Draws are
    // keyed on (seed, round, global factor id, position) — replayable
    // and identical at every parallelism; local replica state stays
    // honest.
    if (adversarial) {
      chaos_group_ids.clear();
      chaos_group_ids.reserve(route.groups.size());
      for (const auto& [replica, alias] : route.groups) {
        chaos_group_ids.push_back(replicas_[replica].id);
      }
      ApplyByzantineFaults(chaos, id_, route.to, round_, chaos_group_ids,
                           &bundle);
    }
    Outgoing& outgoing = out->emplace_back();
    outgoing.to = route.to;
    outgoing.payload = std::move(bundle);
  }
}

std::vector<Outgoing> Peer::CollectOutgoingBeliefs() const {
  std::vector<Outgoing> out;
  CollectOutgoingBeliefs(&out);
  return out;
}

std::vector<BeliefUpdate> Peer::PiggybackUpdatesFor(EdgeId edge) const {
  std::vector<BeliefUpdate> updates;
  const auto it = edge_vars_.find(edge);
  if (it == edge_vars_.end()) return updates;
  for (uint32_t v : it->second) {
    for (const auto& [replica, position] : vars_[v].slots) {
      updates.push_back(BeliefUpdate{
          replicas_[replica].id, position,
          var_to_factor_pool_[replica_hot_[replica].msg_base + position]});
    }
  }
  return updates;
}

std::vector<Peer::ReplicaView> Peer::ReplicaViews() const {
  std::vector<ReplicaView> views;
  views.reserve(replicas_.size());
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    const Replica& replica = replicas_[r];
    const std::span<const MappingVarKey> members = Members(r);
    views.push_back(ReplicaView{
        replica.id, replica.root_attribute, replica.sign,
        std::vector<MappingVarKey>(members.begin(), members.end()),
        replica.delta, replica.closure.kind});
  }
  return views;
}

std::vector<Peer::GuardLinkView> Peer::GuardViews() const {
  std::vector<GuardLinkView> views(alias_links_.size());
  for (const auto& [peer, index] : alias_link_index_) {
    views[index].peer = peer;
  }
  for (size_t i = 0; i < alias_links_.size(); ++i) {
    const PeerLink& link = alias_links_[i];
    GuardLinkView& view = views[i];
    view.score = link.guard_score;
    view.demote_level = link.guard_demote_level;
    view.rejections = link.guard_rejections;
    view.equivocations = link.guard_equivocations;
    view.oscillations = link.guard_oscillations;
    view.outliers = link.guard_outliers;
    view.dropped_bundles = link.guard_dropped_bundles;
  }
  return views;
}

uint64_t Peer::guard_rejected_entries() const {
  uint64_t total = 0;
  for (const PeerLink& link : alias_links_) {
    total += link.guard_rejections + link.guard_equivocations;
  }
  return total;
}

uint64_t Peer::guard_demoted_links() const {
  uint64_t total = 0;
  for (const PeerLink& link : alias_links_) {
    if (link.guard_demote_level >= 1) ++total;
  }
  return total;
}

uint64_t Peer::guard_quarantined_links() const {
  uint64_t total = 0;
  for (const PeerLink& link : alias_links_) {
    if (link.guard_demote_level >= 2) ++total;
  }
  return total;
}

size_t Peer::RemoteMessageBound() const {
  size_t bound = 0;
  for (const ReplicaHot& hot : replica_hot_) {
    bound += hot.owned_count * (hot.member_count - 1);
  }
  return bound;
}

// --- Durable state --------------------------------------------------------------

Peer::Image Peer::CaptureImage() const {
  Image image;
  image.mappings = mappings_;
  image.replicas = replicas_;
  image.replica_hot = replica_hot_;
  image.var_to_factor_pool = var_to_factor_pool_;
  image.factor_to_var_pool = factor_to_var_pool_;
  image.member_pool = member_pool_;
  image.member_owner_pool = member_owner_pool_;
  image.owned_pos_pool = owned_pos_pool_;
  image.belief_routes = belief_routes_;
  image.links.resize(alias_links_.size());
  for (const auto& [peer, index] : alias_link_index_) {
    image.links[index].peer = peer;
  }
  for (size_t i = 0; i < alias_links_.size(); ++i) {
    const PeerLink& link = alias_links_[i];
    LinkImage& out = image.links[i];
    // Aliases are assigned densely, so inverting the transmit map into an
    // alias-indexed vector is lossless.
    out.tx_id_by_alias.assign(link.session.tx.next_alias, FactorId{});
    for (const auto& [id, alias] : link.session.tx.alias_of) {
      out.tx_id_by_alias[alias] = id;
    }
    out.tx_acked_prefix = link.session.tx.acked_prefix;
    out.rx_id_of = link.session.rx.id_of;
    out.rx_known_prefix = link.session.rx.known_prefix;
    out.replica_of_alias = link.replica_of_alias;
    out.value_rank = link.value_rank;
    out.guard_score = link.guard_score;
    out.guard_demote_level = link.guard_demote_level;
    out.guard_rejections = link.guard_rejections;
    out.guard_equivocations = link.guard_equivocations;
    out.guard_oscillations = link.guard_oscillations;
    out.guard_outliers = link.guard_outliers;
    out.guard_dropped_bundles = link.guard_dropped_bundles;
    out.guard_round_influence = link.guard_round_influence;
    out.guard_round_absorbed = link.guard_round_absorbed;
  }
  image.alias_epoch = alias_epoch_;
  image.guard_slot_pool = guard_slot_pool_;
  image.round = round_;
  image.vars = vars_;
  image.announced.assign(announced_.begin(), announced_.end());
  std::sort(image.announced.begin(), image.announced.end());
  image.seen_queries.assign(seen_queries_.begin(), seen_queries_.end());
  std::sort(image.seen_queries.begin(), image.seen_queries.end());
  image.probe_cache.reserve(probe_cache_.size());
  for (const auto& [origin, probes] : probe_cache_) {
    image.probe_cache.emplace_back(origin, probes);
  }
  std::sort(image.probe_cache.begin(), image.probe_cache.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return image;
}

void Peer::RestoreImage(const Image& image) { RestoreImage(Image(image)); }

void Peer::RestoreImage(Image&& image) {
  mappings_ = std::move(image.mappings);
  replicas_ = std::move(image.replicas);
  replica_hot_ = std::move(image.replica_hot);
  var_to_factor_pool_ = std::move(image.var_to_factor_pool);
  factor_to_var_pool_ = std::move(image.factor_to_var_pool);
  member_pool_ = std::move(image.member_pool);
  member_owner_pool_ = std::move(image.member_owner_pool);
  owned_pos_pool_ = std::move(image.owned_pos_pool);
  belief_routes_ = std::move(image.belief_routes);
  alias_links_.clear();
  alias_links_.resize(image.links.size());
  alias_link_index_.clear();
  alias_link_index_.reserve(image.links.size());
  for (size_t i = 0; i < image.links.size(); ++i) {
    LinkImage& in = image.links[i];
    PeerLink& link = alias_links_[i];
    link.session.tx.next_alias = static_cast<uint32_t>(in.tx_id_by_alias.size());
    link.session.tx.acked_prefix = in.tx_acked_prefix;
    for (uint32_t alias = 0; alias < in.tx_id_by_alias.size(); ++alias) {
      if (!in.tx_id_by_alias[alias].IsNil()) {
        link.session.tx.alias_of.emplace(in.tx_id_by_alias[alias], alias);
      }
    }
    link.session.rx.id_of = std::move(in.rx_id_of);
    link.session.rx.known_prefix = in.rx_known_prefix;
    link.replica_of_alias = std::move(in.replica_of_alias);
    link.value_rank = static_cast<uint8_t>(in.value_rank);
    link.guard_score = in.guard_score;
    link.guard_demote_level = static_cast<uint8_t>(in.guard_demote_level);
    link.guard_rejections = in.guard_rejections;
    link.guard_equivocations = in.guard_equivocations;
    link.guard_oscillations = in.guard_oscillations;
    link.guard_outliers = in.guard_outliers;
    link.guard_dropped_bundles = in.guard_dropped_bundles;
    link.guard_round_influence = in.guard_round_influence;
    link.guard_round_absorbed = in.guard_round_absorbed;
    alias_link_index_.emplace_back(in.peer, static_cast<uint32_t>(i));
  }
  std::sort(alias_link_index_.begin(), alias_link_index_.end());
  alias_epoch_ = image.alias_epoch;
  guard_slot_pool_ = std::move(image.guard_slot_pool);
  round_ = image.round;
  vars_ = std::move(image.vars);
  var_index_.clear();
  edge_vars_.clear();
  // Re-intern in stored order, reproducing the original `InternVar`
  // sequence bit for bit (each edge's index list stays ascending).
  for (uint32_t v = 0; v < vars_.size(); ++v) {
    var_index_.emplace(vars_[v].key.Packed(), v);
    edge_vars_[vars_[v].key.edge].push_back(v);
  }
  replica_index_.clear();
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    replica_index_.emplace(replicas_[r].id, r);
  }
  announced_.clear();
  announced_.insert(image.announced.begin(), image.announced.end());
  seen_queries_.clear();
  seen_queries_.insert(image.seen_queries.begin(), image.seen_queries.end());
  probe_cache_.clear();
  for (auto& [origin, probes] : image.probe_cache) {
    probe_cache_.emplace(origin, std::move(probes));
  }
}

// --- Probes & discovery --------------------------------------------------------

std::vector<Outgoing> Peer::StartProbes() const {
  std::vector<Outgoing> out;
  if (options_->probe_ttl == 0) return out;
  for (const auto& [edge, mapping] : mappings_) {
    ProbeMessage probe;
    probe.origin = id_;
    probe.ttl = options_->probe_ttl - 1;
    probe.route = {edge};
    std::vector<std::optional<AttributeId>> images(schema_.size());
    for (AttributeId a = 0; a < schema_.size(); ++a) {
      images[a] = mapping.Apply(a);
    }
    probe.trail = {std::move(images)};
    Outgoing& outgoing = out.emplace_back();
    outgoing.to = graph_->edge(edge).dst;
    outgoing.via = edge;
    outgoing.payload = std::move(probe);
  }
  return out;
}

std::vector<NodeId> Peer::RouteNodes(const std::vector<EdgeId>& route) const {
  std::vector<NodeId> nodes;
  nodes.reserve(route.size() + 1);
  if (!route.empty()) nodes.push_back(graph_->edge(route[0]).src);
  for (EdgeId edge : route) nodes.push_back(graph_->edge(edge).dst);
  return nodes;
}

bool Peer::RoutesIndependent(const std::vector<EdgeId>& a,
                             const std::vector<EdgeId>& b) const {
  for (EdgeId ea : a) {
    if (std::find(b.begin(), b.end(), ea) != b.end()) return false;
  }
  const std::vector<NodeId> nodes_a = RouteNodes(a);
  const std::vector<NodeId> nodes_b = RouteNodes(b);
  // Interior nodes exclude the shared source (front) and sink (back).
  for (size_t i = 1; i + 1 < nodes_a.size(); ++i) {
    for (size_t j = 1; j + 1 < nodes_b.size(); ++j) {
      if (nodes_a[i] == nodes_b[j]) return false;
    }
  }
  return true;
}

std::vector<AttributeFeedback> Peer::CycleFeedback(
    const ProbeMessage& probe) const {
  std::vector<AttributeFeedback> feedback;
  const size_t attr_count = probe.trail.empty() ? 0 : probe.trail[0].size();
  for (AttributeId a = 0; a < attr_count; ++a) {
    AttributeFeedback entry;
    entry.root_attribute = a;
    entry.members.push_back(MappingVarKey{probe.route[0], a});
    bool broken = false;
    for (size_t hop = 1; hop < probe.route.size(); ++hop) {
      const std::optional<AttributeId> image = probe.trail[hop - 1][a];
      if (!image.has_value()) {
        broken = true;
        break;
      }
      entry.members.push_back(MappingVarKey{probe.route[hop], *image});
    }
    const std::optional<AttributeId> final_image = probe.trail.back()[a];
    if (broken || !final_image.has_value()) {
      entry.sign = FeedbackSign::kNeutral;
    } else {
      entry.sign = *final_image == a ? FeedbackSign::kPositive
                                     : FeedbackSign::kNegative;
    }
    feedback.push_back(std::move(entry));
  }
  return feedback;
}

std::vector<AttributeFeedback> Peer::ParallelFeedback(
    const ProbeMessage& first, const ProbeMessage& second) const {
  std::vector<AttributeFeedback> feedback;
  const size_t attr_count = first.trail.empty() ? 0 : first.trail[0].size();
  for (AttributeId a = 0; a < attr_count; ++a) {
    AttributeFeedback entry;
    entry.root_attribute = a;
    bool broken = false;
    auto add_chain = [&](const ProbeMessage& probe) {
      entry.members.push_back(MappingVarKey{probe.route[0], a});
      for (size_t hop = 1; hop < probe.route.size(); ++hop) {
        const std::optional<AttributeId> image = probe.trail[hop - 1][a];
        if (!image.has_value()) {
          broken = true;
          return;
        }
        entry.members.push_back(MappingVarKey{probe.route[hop], *image});
      }
    };
    add_chain(first);
    add_chain(second);
    const std::optional<AttributeId> image1 = first.trail.back()[a];
    const std::optional<AttributeId> image2 = second.trail.back()[a];
    if (broken || !image1.has_value() || !image2.has_value()) {
      entry.sign = FeedbackSign::kNeutral;
    } else {
      entry.sign = *image1 == *image2 ? FeedbackSign::kPositive
                                      : FeedbackSign::kNegative;
    }
    feedback.push_back(std::move(entry));
  }
  return feedback;
}

std::vector<AttributeFeedback> Peer::CoarsenFeedback(
    std::vector<AttributeFeedback> fine) {
  bool any_negative = false;
  bool any_positive = false;
  std::vector<MappingVarKey> members;
  for (const AttributeFeedback& entry : fine) {
    if (entry.sign == FeedbackSign::kNegative) any_negative = true;
    if (entry.sign == FeedbackSign::kPositive) any_positive = true;
    if (members.empty()) {
      for (const MappingVarKey& var : entry.members) {
        members.push_back(MappingVarKey{var.edge, MappingVarKey::kWholeMapping});
      }
    }
  }
  AttributeFeedback coarse;
  coarse.root_attribute = MappingVarKey::kWholeMapping;
  coarse.members = std::move(members);
  coarse.sign = any_negative  ? FeedbackSign::kNegative
                : any_positive ? FeedbackSign::kPositive
                               : FeedbackSign::kNeutral;
  return {std::move(coarse)};
}

void Peer::AnnounceToOwners(const FeedbackAnnouncement& announcement,
                            std::vector<Outgoing>* out) const {
  std::vector<PeerId> owners;
  for (EdgeId edge : announcement.closure.edges) {
    if (graph_->edge_alive(edge)) owners.push_back(graph_->edge(edge).src);
  }
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  for (PeerId owner : owners) {
    out->push_back(Outgoing{owner, std::nullopt, announcement});
  }
}

std::vector<Outgoing> Peer::HandleProbe(const ProbeMessage& probe) {
  std::vector<Outgoing> out;
  const auto& limits = options_->closure_limits;

  if (probe.origin == id_) {
    // Cycle closed (Section 3.2.1). Only the minimum-id peer on the cycle
    // announces it: every peer's probe traverses the same physical cycle,
    // and rooting the factor at a canonical peer prevents the same
    // comparison from being double-counted as several factors.
    const std::vector<NodeId> nodes = RouteNodes(probe.route);
    const bool canonical_root =
        *std::min_element(nodes.begin(), nodes.end()) == id_;
    const size_t length = probe.route.size();
    if (canonical_root && length >= limits.min_cycle_length &&
        length <= limits.max_cycle_length) {
      Closure closure;
      closure.kind = Closure::Kind::kCycle;
      closure.edges = probe.route;
      closure.split = probe.route.size();
      closure.source = id_;
      closure.sink = id_;
      const FactorId base = FactorId::Make(closure, 0);
      if (announced_.insert(base).second) {
        FeedbackAnnouncement announcement;
        announcement.closure = std::move(closure);
        announcement.delta = EffectiveDelta();
        announcement.feedback = CycleFeedback(probe);
        if (options_->granularity == Granularity::kCoarse) {
          announcement.feedback =
              CoarsenFeedback(std::move(announcement.feedback));
        }
        AnnounceToOwners(announcement, &out);
      }
    }
    return out;  // Probes stop at their origin.
  }

  // Parallel-path detection (Section 3.3): pair this probe against cached
  // probes from the same origin arriving via an independent route.
  if (probe.route.size() <= limits.max_path_length) {
    for (const ProbeMessage& cached : probe_cache_[probe.origin]) {
      if (cached.route.size() > limits.max_path_length) continue;
      if (!RoutesIndependent(cached.route, probe.route)) continue;
      // Canonical path order (lexicographically smaller edge sequence
      // first) so the same physical pair always yields the same closure —
      // regardless of probe arrival order across discovery rounds.
      const ProbeMessage* first = &cached;
      const ProbeMessage* second = &probe;
      if (second->route < first->route) std::swap(first, second);
      Closure closure;
      closure.kind = Closure::Kind::kParallelPaths;
      closure.edges = first->route;
      closure.edges.insert(closure.edges.end(), second->route.begin(),
                           second->route.end());
      closure.split = first->route.size();
      closure.source = probe.origin;
      closure.sink = id_;
      const FactorId base = FactorId::Make(closure, 0);
      if (!announced_.insert(base).second) continue;
      FeedbackAnnouncement announcement;
      announcement.closure = std::move(closure);
      announcement.delta = EffectiveDelta();
      announcement.feedback = ParallelFeedback(*first, *second);
      if (options_->granularity == Granularity::kCoarse) {
        announcement.feedback =
            CoarsenFeedback(std::move(announcement.feedback));
      }
      AnnounceToOwners(announcement, &out);
    }
    auto& cache = probe_cache_[probe.origin];
    if (cache.size() < options_->max_cached_probes) cache.push_back(probe);
  }

  // Forward (flooding with TTL, simple routes only).
  const size_t max_route = std::max(limits.max_cycle_length,
                                    limits.max_path_length);
  if (probe.ttl == 0 || probe.route.size() >= max_route) return out;
  const std::vector<NodeId> visited = RouteNodes(probe.route);
  for (const auto& [edge, mapping] : mappings_) {
    const NodeId next = graph_->edge(edge).dst;
    // Simple routes: never revisit an interior node; returning to the
    // origin is allowed (that closes a cycle).
    if (next != probe.origin &&
        std::find(visited.begin(), visited.end(), next) != visited.end()) {
      continue;
    }
    ProbeMessage forwarded = probe;
    forwarded.ttl = probe.ttl - 1;
    forwarded.route.push_back(edge);
    std::vector<std::optional<AttributeId>> images(probe.trail.back().size());
    for (size_t a = 0; a < images.size(); ++a) {
      const std::optional<AttributeId> current = probe.trail.back()[a];
      images[a] = current.has_value() ? mapping.Apply(*current) : std::nullopt;
    }
    forwarded.trail.push_back(std::move(images));
    out.push_back(Outgoing{next, edge, std::move(forwarded)});
  }
  return out;
}

// --- Queries --------------------------------------------------------------------

bool Peer::GateAllows(EdgeId edge, AttributeId attribute) const {
  const SchemaMapping* m = mapping(edge);
  if (m == nullptr || !m->Apply(attribute).has_value()) return false;
  const MappingVarKey var =
      options_->granularity == Granularity::kCoarse
          ? MappingVarKey{edge, MappingVarKey::kWholeMapping}
          : MappingVarKey{edge, attribute};
  if (!HasEvidence(var)) return options_->forward_without_evidence;
  return Posterior(var) > options_->theta;
}

QueryActions Peer::ProcessQuery(const QueryMessage& message,
                                bool piggyback_beliefs) {
  QueryActions actions;
  if (!seen_queries_.insert(message.query_id).second) return actions;

  actions.rows = store_.Execute(message.query);

  if (message.ttl == 0) return actions;
  for (const auto& [edge, mapping] : mappings_) {
    const NodeId next = graph_->edge(edge).dst;
    if (std::find(message.visited.begin(), message.visited.end(), next) !=
        message.visited.end()) {
      continue;
    }
    bool allowed = true;
    for (AttributeId attribute : message.query.Attributes()) {
      if (!GateAllows(edge, attribute)) {
        allowed = false;
        break;
      }
    }
    if (!allowed) {
      actions.blocked_edges.push_back(edge);
      continue;
    }
    Result<Query> translated = message.query.Translate(mapping);
    if (!translated.ok()) {  // ⊥ slipped through: treat as blocked.
      actions.blocked_edges.push_back(edge);
      continue;
    }
    QueryMessage forwarded;
    forwarded.query_id = message.query_id;
    forwarded.origin = message.origin;
    forwarded.ttl = message.ttl - 1;
    forwarded.query = std::move(translated).value();
    forwarded.visited = message.visited;
    forwarded.visited.push_back(id_);
    if (piggyback_beliefs) {
      forwarded.piggyback = PiggybackUpdatesFor(edge);
      // Also relay foreign belief messages riding on the incoming query
      // (gossip-style dissemination, Section 4.3.2).
      forwarded.piggyback.insert(forwarded.piggyback.end(),
                                 message.piggyback.begin(),
                                 message.piggyback.end());
    }
    actions.forwards.push_back(Outgoing{next, edge, std::move(forwarded)});
  }
  return actions;
}

}  // namespace pdms
