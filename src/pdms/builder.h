#ifndef PDMS_PDMS_BUILDER_H_
#define PDMS_PDMS_BUILDER_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "mapping/mapping_generator.h"
#include "net/network.h"
#include "pdms/pdms.h"
#include "pdms/transport.h"

namespace pdms {

/// Fluent, validating constructor for a `Pdms`.
///
///   PDMS_ASSIGN_OR_RETURN(
///       Pdms pdms, PdmsBuilder()
///                      .AddPeer(schema_a)      // becomes PeerId 0
///                      .AddPeer(schema_b)      // becomes PeerId 1
///                      .AddMapping(0, 1, m01)  // becomes EdgeId 0
///                      .WithOptions(options)
///                      .WithInstantTransport()
///                      .Build());
///
/// Peers are numbered in `AddPeer` order, mappings (edges) in `AddMapping`
/// order. `Build()` validates the assembled network — endpoint ranges,
/// duplicate links, mapping/schema arity and attribute ranges — and
/// returns precise `Status` errors instead of the undefined behaviour the
/// old raw parallel-vector construction invited. A builder is single-use:
/// `Build()` consumes its state.
class PdmsBuilder {
 public:
  /// Creates the transport a built `Pdms` will use. Invoked by `Build()`
  /// once the peer count is known.
  using TransportFactory = std::function<std::unique_ptr<Transport>(
      size_t peer_count, const EngineOptions& options)>;

  PdmsBuilder() = default;

  /// Adds a peer holding `schema`; peers are numbered 0, 1, … in call
  /// order.
  PdmsBuilder& AddPeer(Schema schema);

  /// Adds the directed mapping `from -> to`; edges are numbered 0, 1, …
  /// in call order.
  PdmsBuilder& AddMapping(PeerId from, PeerId to, SchemaMapping mapping);

  PdmsBuilder& WithOptions(const EngineOptions& options);

  /// Worker threads for round execution (`EngineOptions::parallelism`):
  /// 1 = serial, 0 = one per hardware thread. Applied at `Build()` time on
  /// top of whatever `WithOptions` supplied, so call order does not matter.
  PdmsBuilder& WithParallelism(size_t parallelism);

  /// Quantized belief wire values (`EngineOptions::value_precision`):
  /// ship remote µ values as adaptive fixed-point log-odds quanta with a
  /// per-value error budget of `eps` (0 restores exact raw doubles, the
  /// default). Applied at `Build()` time on top of whatever
  /// `WithOptions` supplied, so call order does not matter.
  PdmsBuilder& WithValueErrorBudget(double eps);

  /// Byzantine-resilient belief admission
  /// (`EngineOptions::byzantine_guard`): semantic validation of every
  /// inbound belief entry plus per-neighbor misbehavior scoring with
  /// soft/hard link demotion. `Build()` rejects malformed configurations
  /// (negative weights or rates, thresholds out of order, damping or
  /// decay outside [0, 1)). Applied at `Build()` time on top of whatever
  /// `WithOptions` supplied, so call order does not matter.
  PdmsBuilder& WithByzantineGuard(const ByzantineGuardOptions& guard);

  /// Seeded behavioral chaos (`EngineOptions::byzantine`): the listed
  /// adversaries forge their outgoing belief values per the plan.
  /// `Build()` rejects probabilities outside [0, 1]; the adversary list
  /// is sorted automatically (`ByzantinePlan::IsAdversary` binary
  /// searches it).
  PdmsBuilder& WithByzantinePlan(const ByzantinePlan& plan);

  /// Supplies a custom transport. The factory runs at `Build()` time with
  /// the final peer count.
  PdmsBuilder& WithTransport(TransportFactory factory);

  /// Discrete-tick simulator with explicit delay / loss configuration
  /// (also reachable via `EngineOptions::network`; this override wins).
  PdmsBuilder& WithSimTransport(const NetworkOptions& network);

  /// Zero-delay lossless in-process transport.
  PdmsBuilder& WithInstantTransport();

  /// Preloads peers and mappings from a generated synthetic PDMS
  /// (topologies from `topology::`, workloads from `BuildSyntheticPdms`).
  /// Edge ids are preserved because live edges are re-added in ascending
  /// order; a synthetic graph with *removed* (tombstoned) edges would
  /// silently renumber everything after the hole, so that case is
  /// rejected — `Build()` returns `FailedPrecondition` for it.
  static PdmsBuilder FromSynthetic(const SyntheticPdms& synthetic);

  size_t peer_count() const { return schemas_.size(); }
  size_t mapping_count() const { return mappings_.size(); }

  /// Validates and constructs. On failure nothing is built and the status
  /// pinpoints the offending peer / mapping.
  Result<Pdms> Build();

 private:
  struct PendingMapping {
    PeerId from = 0;
    PeerId to = 0;
    SchemaMapping mapping;
  };

  std::vector<Schema> schemas_;
  std::vector<PendingMapping> mappings_;
  EngineOptions options_;
  std::optional<size_t> parallelism_;
  std::optional<double> value_error_budget_;
  std::optional<ByzantineGuardOptions> byzantine_guard_;
  std::optional<ByzantinePlan> byzantine_plan_;
  TransportFactory transport_factory_;
  /// First unsatisfiable request recorded while assembling (e.g. a
  /// FromSynthetic source whose edge ids cannot be reproduced);
  /// reported by Build().
  Status deferred_error_;
};

}  // namespace pdms

#endif  // PDMS_PDMS_BUILDER_H_
