#ifndef PDMS_PDMS_PDMS_H_
#define PDMS_PDMS_PDMS_H_

/// \file
/// Public entry point of the PDMS library.
///
/// Applications use three types, in order:
///  * `PdmsBuilder` (pdms/builder.h) — assemble and validate a peer
///    network: peers with schemas, directed mappings between them, a
///    `Transport`, and `EngineOptions`.
///  * `Pdms` (this header) — the built system: owns the peers, topology
///    and transport; exposes introspection (posteriors, priors, stats)
///    and churn (mapping removal, prior updates).
///  * `Session` (pdms/session.h) — drives the lifecycle: closure
///    discovery, embedded message-passing convergence, θ-gated queries,
///    with `RoundObserver` hooks.
///
/// The message vocabulary the API speaks — `Payload`, `Envelope`,
/// `MessageKind`, the per-message structs (`net/message.h`) and the
/// domain ids/value types they carry (schemas, mappings, queries,
/// beliefs) — is re-exported here and versioned with the API: custom
/// `Transport` implementations and `RoundObserver`s depend on it.
/// Everything else under core/, net/, factor/, … is internal
/// implementation whose layout may change freely behind this API.

#include <memory>
#include <vector>

#include "core/pdms_engine.h"
#include "pdms/session.h"
#include "pdms/transport.h"

/// Public API version (semantic versioning of the pdms/ headers).
#define PDMS_API_VERSION_MAJOR 1
#define PDMS_API_VERSION_MINOR 0
#define PDMS_API_VERSION_PATCH 0
#define PDMS_API_VERSION_STRING "1.0.0"

namespace pdms {

/// A built peer data management system (see file comment for the
/// builder / facade / session split). Move-only; the default-constructed
/// state is empty (`valid() == false`) and only useful as a move target.
class Pdms {
 public:
  Pdms() = default;
  Pdms(Pdms&&) = default;
  Pdms& operator=(Pdms&&) = default;
  Pdms(const Pdms&) = delete;
  Pdms& operator=(const Pdms&) = delete;

  bool valid() const { return engine_ != nullptr; }

  // --- Sessions --------------------------------------------------------------

  /// The default session (created on first use). Most applications only
  /// ever need this one.
  Session& session();

  /// An independent session: separate observers and round counter, same
  /// underlying network state.
  Session NewSession();

  // --- Beliefs ---------------------------------------------------------------

  /// Posterior P(correct) of (edge, attribute) as believed by the
  /// mapping's owner.
  double Posterior(EdgeId edge, AttributeId attribute) const;
  /// Coarse-granularity posterior of the whole mapping.
  double PosteriorCoarse(EdgeId edge) const;

  void SetPrior(EdgeId edge, AttributeId attribute, double prior);
  double Prior(EdgeId edge, AttributeId attribute) const;
  /// EM prior update on every peer (Section 4.4).
  void UpdatePriors();

  // --- Churn & external evidence --------------------------------------------

  /// Removes a mapping network-wide; closures must be re-discovered.
  Status RemoveMapping(EdgeId edge);

  /// Injects a closure with externally computed per-attribute feedback
  /// (experiments that need the paper's exact feedback sets; churn tests).
  void InjectFeedback(const FeedbackAnnouncement& announcement);

  /// Opens a chainbase-style undo scope over the network's inference
  /// state: unless the returned session is committed, destroying it rolls
  /// back every mutation made since — `InjectFeedback`, `RemoveMapping`,
  /// prior updates and rounds revert atomically (pools, routing tables and
  /// alias sessions together). Driver-thread only; see `UndoSession`.
  UndoSession StartUndoSession();

  // --- Introspection ---------------------------------------------------------

  Peer& peer(PeerId id);
  const Peer& peer(PeerId id) const;
  size_t peer_count() const;
  const Digraph& graph() const;
  Transport& transport();
  const Transport& transport() const;
  const EngineOptions& options() const;

  /// Total distinct factor replicas (unique factor keys across peers).
  size_t UniqueFactorCount() const;

  /// Materializes the global factor graph implied by current peer states
  /// (baseline for exact inference / validation).
  FactorGraph BuildGlobalFactorGraph(std::vector<MappingVarKey>* vars_out) const;

  /// Internal: the underlying engine. Node daemons (node/pdms_node.h)
  /// drive sharded execution through it; applications should stick to
  /// `session()`.
  PdmsEngine& engine() { return *engine_; }
  const PdmsEngine& engine() const { return *engine_; }

 private:
  friend class PdmsBuilder;

  explicit Pdms(std::unique_ptr<PdmsEngine> engine)
      : engine_(std::move(engine)) {}

  std::unique_ptr<PdmsEngine> engine_;
  std::unique_ptr<Session> default_session_;
};

}  // namespace pdms

// Umbrella: including pdms/pdms.h brings in the whole public surface.
#include "pdms/builder.h"

#endif  // PDMS_PDMS_PDMS_H_
