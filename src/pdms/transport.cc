#include "pdms/transport.h"

#include <cassert>

#include "util/string_util.h"

namespace pdms {

uint64_t TransportStats::TotalSent() const {
  uint64_t total = 0;
  for (uint64_t s : sent) total += s;
  return total;
}

std::string TransportStats::ToString() const {
  std::string out;
  for (size_t k = 0; k < kMessageKindCount; ++k) {
    out += StrFormat("%s: sent=%llu dropped=%llu delivered=%llu\n",
                     std::string(MessageKindName(static_cast<MessageKind>(k)))
                         .c_str(),
                     static_cast<unsigned long long>(sent[k]),
                     static_cast<unsigned long long>(dropped[k]),
                     static_cast<unsigned long long>(delivered[k]));
  }
  return out;
}

void InstantTransport::Send(PeerId from, PeerId to, std::optional<EdgeId> via,
                            Payload payload) {
  assert(to < queues_.size());
  ++stats_.sent[static_cast<size_t>(KindOf(payload))];
  Envelope envelope;
  envelope.from = from;
  envelope.to = to;
  envelope.via = via;
  envelope.deliver_at = now_;
  envelope.payload = std::move(payload);
  queues_[to].push_back(std::move(envelope));
}

std::vector<Envelope> InstantTransport::Drain(PeerId peer) {
  assert(peer < queues_.size());
  std::vector<Envelope> due;
  due.swap(queues_[peer]);
  for (const Envelope& envelope : due) {
    ++stats_.delivered[static_cast<size_t>(KindOf(envelope.payload))];
  }
  return due;
}

bool InstantTransport::HasPendingMessages() const {
  for (const auto& queue : queues_) {
    if (!queue.empty()) return true;
  }
  return false;
}

}  // namespace pdms
