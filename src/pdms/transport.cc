#include "pdms/transport.h"

#include <cassert>

#include "util/string_util.h"

namespace pdms {

uint64_t TransportStats::TotalSent() const {
  uint64_t total = 0;
  for (uint64_t s : sent) total += s;
  return total;
}

std::string TransportStats::ToString() const {
  std::string out;
  for (size_t k = 0; k < kMessageKindCount; ++k) {
    out += StrFormat("%s: sent=%llu dropped=%llu delivered=%llu\n",
                     std::string(MessageKindName(static_cast<MessageKind>(k)))
                         .c_str(),
                     static_cast<unsigned long long>(sent[k]),
                     static_cast<unsigned long long>(dropped[k]),
                     static_cast<unsigned long long>(delivered[k]));
  }
  out += StrFormat("bytes_sent=%llu key_bytes_sent=%llu alias_bytes_sent=%llu\n",
                   static_cast<unsigned long long>(bytes_sent),
                   static_cast<unsigned long long>(key_bytes_sent),
                   static_cast<unsigned long long>(alias_bytes_sent));
  out += StrFormat("value_bytes_sent=%llu header_bytes_sent=%llu\n",
                   static_cast<unsigned long long>(value_bytes_sent),
                   static_cast<unsigned long long>(header_bytes_sent));
  if (frames_dropped_at_shutdown > 0) {
    out += StrFormat(
        "frames_dropped_at_shutdown=%llu\n",
        static_cast<unsigned long long>(frames_dropped_at_shutdown));
  }
  return out;
}

void AtomicTransportStats::SnapshotTo(TransportStats* out) const {
  for (size_t k = 0; k < kMessageKindCount; ++k) {
    out->sent[k] = sent[k].load(std::memory_order_relaxed);
    out->dropped[k] = dropped[k].load(std::memory_order_relaxed);
    out->delivered[k] = delivered[k].load(std::memory_order_relaxed);
  }
  out->bytes_sent = bytes_sent.load(std::memory_order_relaxed);
  out->key_bytes_sent = key_bytes_sent.load(std::memory_order_relaxed);
  out->alias_bytes_sent = alias_bytes_sent.load(std::memory_order_relaxed);
  out->value_bytes_sent = value_bytes_sent.load(std::memory_order_relaxed);
  out->header_bytes_sent = header_bytes_sent.load(std::memory_order_relaxed);
  out->frames_dropped_at_shutdown =
      frames_dropped_at_shutdown.load(std::memory_order_relaxed);
}

void AtomicTransportStats::Reset() {
  for (size_t k = 0; k < kMessageKindCount; ++k) {
    sent[k].store(0, std::memory_order_relaxed);
    dropped[k].store(0, std::memory_order_relaxed);
    delivered[k].store(0, std::memory_order_relaxed);
  }
  bytes_sent.store(0, std::memory_order_relaxed);
  key_bytes_sent.store(0, std::memory_order_relaxed);
  alias_bytes_sent.store(0, std::memory_order_relaxed);
  value_bytes_sent.store(0, std::memory_order_relaxed);
  header_bytes_sent.store(0, std::memory_order_relaxed);
  frames_dropped_at_shutdown.store(0, std::memory_order_relaxed);
}

void InstantTransport::Send(PeerId from, PeerId to, std::optional<EdgeId> via,
                            Payload payload) {
  assert(to < mailboxes_.size());
  const WireBreakdown wire = PayloadWireBreakdown(payload);
  counters_.CountSent(KindOf(payload), wire);
  Envelope envelope;
  envelope.from = from;
  envelope.to = to;
  envelope.via = via;
  envelope.deliver_at = now();
  envelope.payload = std::move(payload);
  // Count before enqueueing: a concurrent Drain may pop the envelope the
  // moment the lock is released, and its decrement must never observe the
  // counter without this increment (transient underflow would make
  // HasPendingMessages report phantom traffic on an empty transport).
  in_flight_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mailboxes_[to].mutex);
    mailboxes_[to].queue.push_back(std::move(envelope));
  }
}

std::vector<Envelope> InstantTransport::Drain(PeerId peer) {
  assert(peer < mailboxes_.size());
  std::vector<Envelope> due;
  {
    std::lock_guard<std::mutex> lock(mailboxes_[peer].mutex);
    due.swap(mailboxes_[peer].queue);
  }
  for (const Envelope& envelope : due) {
    counters_.CountDelivered(KindOf(envelope.payload));
  }
  in_flight_.fetch_sub(due.size(), std::memory_order_release);
  return due;
}

bool InstantTransport::HasPendingMessages() const {
  return in_flight_.load(std::memory_order_acquire) > 0;
}

const TransportStats& InstantTransport::stats() const {
  counters_.SnapshotTo(&stats_snapshot_);
  return stats_snapshot_;
}

void InstantTransport::ResetStats() { counters_.Reset(); }

}  // namespace pdms
