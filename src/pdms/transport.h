#ifndef PDMS_PDMS_TRANSPORT_H_
#define PDMS_PDMS_TRANSPORT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/message.h"

namespace pdms {

/// Per-kind traffic counters every `Transport` implementation maintains.
struct TransportStats {
  std::array<uint64_t, kMessageKindCount> sent{};
  std::array<uint64_t, kMessageKindCount> dropped{};
  std::array<uint64_t, kMessageKindCount> delivered{};
  /// Estimated payload bytes accepted for delivery (drops excluded), per
  /// `ApproximateWireSize` — the "bytes moved" of the scale benchmarks.
  uint64_t bytes_sent = 0;
  /// The subset of `bytes_sent` spent on factor-identity fingerprints
  /// (`FactorIdWireBytes`) — the key overhead the scale benchmarks track.
  /// With session aliasing this decays to ~0 once bindings are acked.
  uint64_t key_bytes_sent = 0;
  /// The subset of `bytes_sent` spent on belief-bundle alias headers
  /// (`AliasWireBytes`) — what the alias scheme pays to *replace* the
  /// fingerprints; reported as `alias_bytes_per_round` by the benchmarks.
  uint64_t alias_bytes_sent = 0;
  /// The subset of `bytes_sent` spent on the µ values themselves
  /// (`WireBreakdown::value_bytes`: raw doubles, or quantum varints under
  /// a value error budget) — the share the quantized wire format attacks.
  uint64_t value_bytes_sent = 0;
  /// Everything else: `bytes_sent - value_bytes_sent` (framing varints,
  /// alias headers, fingerprints, positions, probe/feedback structure),
  /// maintained alongside so the value/header split is measured, not
  /// estimated.
  uint64_t header_bytes_sent = 0;
  /// Frames still unacknowledged when the transport shut down and stopped
  /// retransmitting (they may or may not have reached the receiver). Zero
  /// on a clean drain; non-zero means the shutdown deadline
  /// (`SocketTransportOptions::shutdown_drain_ms`) expired first.
  uint64_t frames_dropped_at_shutdown = 0;

  uint64_t TotalSent() const;
  std::string ToString() const;
};

/// Internal: lock-free counter block behind `TransportStats`, shared by the
/// library transports so concurrent `Send`/`Drain` calls never race on the
/// accounting. Counters use relaxed atomics — they are statistics, not
/// synchronization.
struct AtomicTransportStats {
  std::array<std::atomic<uint64_t>, kMessageKindCount> sent{};
  std::array<std::atomic<uint64_t>, kMessageKindCount> dropped{};
  std::array<std::atomic<uint64_t>, kMessageKindCount> delivered{};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> key_bytes_sent{0};
  std::atomic<uint64_t> alias_bytes_sent{0};
  std::atomic<uint64_t> value_bytes_sent{0};
  std::atomic<uint64_t> header_bytes_sent{0};
  std::atomic<uint64_t> frames_dropped_at_shutdown{0};

  /// Counts one send attempt of `kind` (drops included — `sent` tracks
  /// attempts; pair with CountDropped for the loss ledger).
  void CountSendAttempt(MessageKind kind) {
    sent[static_cast<size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
  }
  /// Accounts payload bytes *accepted for delivery* — lossy transports
  /// must call this only after the drop decision, per the documented
  /// `TransportStats::bytes_sent` semantics.
  void CountPayloadBytes(const WireBreakdown& wire) {
    bytes_sent.fetch_add(wire.bytes, std::memory_order_relaxed);
    key_bytes_sent.fetch_add(wire.key_bytes, std::memory_order_relaxed);
    alias_bytes_sent.fetch_add(wire.alias_bytes, std::memory_order_relaxed);
    value_bytes_sent.fetch_add(wire.value_bytes, std::memory_order_relaxed);
    header_bytes_sent.fetch_add(wire.bytes - wire.value_bytes,
                                std::memory_order_relaxed);
  }
  /// Attempt + bytes in one call, for transports that never drop.
  void CountSent(MessageKind kind, const WireBreakdown& wire) {
    CountSendAttempt(kind);
    CountPayloadBytes(wire);
  }
  void CountDropped(MessageKind kind) {
    dropped[static_cast<size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
  }
  void CountDelivered(MessageKind kind) {
    delivered[static_cast<size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Relaxed snapshot into `out`; exact when the transport is quiescent.
  void SnapshotTo(TransportStats* out) const;
  void Reset();
};

/// One in-flight message captured from a transport inbox at a quiesced
/// barrier: the routed envelope plus the per-sender sequence number the
/// deterministic drain order sorts on. The unit `SocketTransport`'s
/// inbox capture/restore moves and the snapshot layer (src/store)
/// persists — restoring the captured frames alongside the engine image
/// reproduces the exact delivery schedule of the original run.
struct CapturedFrame {
  uint64_t seq = 0;
  Envelope envelope;
};

/// How messages move between peers — the provider side of the public API.
///
/// The engine computes *what* the peers exchange (probes, feedback
/// announcements, belief updates, queries); a `Transport` decides *how*
/// the envelopes travel: with what delay, what loss, over what substrate.
/// Implementations ship with the library (`SimTransport`, the discrete-
/// tick lossy simulator; `InstantTransport`, zero-delay and lossless) and
/// can be supplied by applications through `PdmsBuilder::WithTransport`.
///
/// Contract (exercised by the shared conformance test):
///  * `Send` may drop (recording `dropped`) but never reorders messages
///    between the same (from, to) pair.
///  * `Drain(p)` returns every envelope deliverable to `p` at the current
///    tick, in send order, and removes them from the queue.
///  * `HasPendingMessages()` is true iff any envelope is queued, whether
///    deliverable now or in the future.
///  * Ticks only move forward; `Send` after `AdvanceTick` never delivers
///    into the past.
///
/// Thread-safety contract (required since round execution went parallel):
///  * `Send` may be called concurrently from any number of threads.
///  * `Drain` may be called concurrently for *distinct* peers, and
///    concurrently with `Send` (a concurrently sent message lands either in
///    this drain or a later one, never nowhere).
///  * `AdvanceTick`, `stats()` and `ResetStats` are driver-side: callers
///    must not overlap them with `Send`/`Drain`. The engine only invokes
///    them between parallel phases.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Short stable identifier, e.g. "sim" or "instant".
  virtual std::string_view name() const = 0;

  virtual size_t peer_count() const = 0;

  /// Current discrete time.
  virtual uint64_t now() const = 0;
  virtual void AdvanceTick() = 0;

  /// Enqueues a message from `from` to `to`; `via` names the mapping link
  /// it logically travels through, when applicable.
  virtual void Send(PeerId from, PeerId to, std::optional<EdgeId> via,
                    Payload payload) = 0;

  /// Removes and returns all messages deliverable to `peer` now.
  virtual std::vector<Envelope> Drain(PeerId peer) = 0;

  /// True if any queue still holds messages (deliverable or future).
  virtual bool HasPendingMessages() const = 0;

  virtual const TransportStats& stats() const = 0;
  virtual void ResetStats() = 0;
};

/// Zero-delay, lossless in-process transport: a message sent at tick t is
/// deliverable at tick t. No configuration, no randomness — the fastest
/// substrate for convergence-only workloads (discovery and inference need
/// no tick-per-hop waiting) and the reference implementation for the
/// Transport conformance contract.
///
/// Mailboxes are sharded per destination peer, each behind its own mutex,
/// so concurrent sends to different peers never contend and concurrent
/// drains of distinct peers proceed independently.
class InstantTransport final : public Transport {
 public:
  explicit InstantTransport(size_t peer_count)
      : mailboxes_(peer_count) {}

  std::string_view name() const override { return "instant"; }
  size_t peer_count() const override { return mailboxes_.size(); }
  uint64_t now() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void AdvanceTick() override {
    now_.fetch_add(1, std::memory_order_relaxed);
  }

  void Send(PeerId from, PeerId to, std::optional<EdgeId> via,
            Payload payload) override;
  std::vector<Envelope> Drain(PeerId peer) override;
  bool HasPendingMessages() const override;

  const TransportStats& stats() const override;
  void ResetStats() override;

 private:
  struct Mailbox {
    std::mutex mutex;
    std::vector<Envelope> queue;
  };

  std::atomic<uint64_t> now_{0};
  /// Messages enqueued and not yet drained; O(1) HasPendingMessages.
  std::atomic<uint64_t> in_flight_{0};
  std::vector<Mailbox> mailboxes_;
  AtomicTransportStats counters_;
  mutable TransportStats stats_snapshot_;
};

}  // namespace pdms

#endif  // PDMS_PDMS_TRANSPORT_H_
