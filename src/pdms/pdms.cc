#include "pdms/pdms.h"

namespace pdms {

Session& Pdms::session() {
  if (default_session_ == nullptr) {
    default_session_ = std::make_unique<Session>(engine_.get());
  }
  return *default_session_;
}

Session Pdms::NewSession() { return Session(engine_.get()); }

double Pdms::Posterior(EdgeId edge, AttributeId attribute) const {
  return engine_->Posterior(edge, attribute);
}

double Pdms::PosteriorCoarse(EdgeId edge) const {
  return engine_->PosteriorCoarse(edge);
}

void Pdms::SetPrior(EdgeId edge, AttributeId attribute, double prior) {
  engine_->SetPrior(edge, attribute, prior);
}

double Pdms::Prior(EdgeId edge, AttributeId attribute) const {
  return engine_->Prior(edge, attribute);
}

void Pdms::UpdatePriors() { engine_->UpdatePriors(); }

Status Pdms::RemoveMapping(EdgeId edge) { return engine_->RemoveMapping(edge); }

void Pdms::InjectFeedback(const FeedbackAnnouncement& announcement) {
  engine_->InjectFeedback(announcement);
}

UndoSession Pdms::StartUndoSession() { return UndoSession(engine_.get()); }

Peer& Pdms::peer(PeerId id) { return engine_->peer(id); }
const Peer& Pdms::peer(PeerId id) const { return engine_->peer(id); }
size_t Pdms::peer_count() const { return engine_->peer_count(); }
const Digraph& Pdms::graph() const { return engine_->graph(); }
Transport& Pdms::transport() { return engine_->transport(); }
const Transport& Pdms::transport() const { return engine_->transport(); }
const EngineOptions& Pdms::options() const { return engine_->options(); }

size_t Pdms::UniqueFactorCount() const { return engine_->UniqueFactorCount(); }

FactorGraph Pdms::BuildGlobalFactorGraph(
    std::vector<MappingVarKey>* vars_out) const {
  return engine_->BuildGlobalFactorGraph(vars_out);
}

}  // namespace pdms
