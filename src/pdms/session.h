#ifndef PDMS_PDMS_SESSION_H_
#define PDMS_PDMS_SESSION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/pdms_engine.h"

namespace pdms {

class Session;

/// Observation hook invoked after every inference round a `Session`
/// drives (Step and each Converge iteration). Replaces the old engine-side
/// `TrackVariable`/trajectory plumbing: record whatever you need from the
/// session's read surface — posteriors, transport stats — without the
/// engine knowing about it.
class RoundObserver {
 public:
  virtual ~RoundObserver() = default;

  /// `round` counts rounds driven by the session, starting at 1.
  virtual void OnRound(size_t round, const RoundReport& report,
                       const Session& session) = 0;
};

/// Bounds for `Session::Converge`. Implicitly constructible from a round
/// count so `session.Converge(200)` reads like the old API; tolerance and
/// patience come from `EngineOptions`.
struct ConvergeLimits {
  size_t max_rounds = 200;

  ConvergeLimits() = default;
  ConvergeLimits(size_t rounds) : max_rounds(rounds) {}  // NOLINT
};

/// The inference / query surface of a `Pdms` instance.
///
/// A session drives the engine through its lifecycle — `Discover()` the
/// closure structure, `Converge()` the decentralized message passing,
/// then `Query()` with θ-gated routing — and notifies registered
/// `RoundObserver`s after every round it executes. Sessions are cheap
/// handles: a `Pdms` hands out its default session via `session()` and
/// independent ones (separate observers, shared engine state) via
/// `NewSession()`.
class Session {
 public:
  /// Internal: applications obtain sessions from `Pdms`.
  explicit Session(PdmsEngine* engine) : engine_(engine) {}

  // --- Lifecycle -------------------------------------------------------------

  /// Floods TTL probes from every peer and processes discovery traffic to
  /// quiescence. Returns the number of distinct factor replicas known
  /// network-wide afterwards.
  size_t Discover();

  /// One synchronized inference round; observers fire once.
  RoundReport Step();

  /// Rounds until posterior movement stays below the configured tolerance
  /// (with loss-aware patience) or `limits.max_rounds`; observers fire
  /// after every round.
  ConvergenceReport Converge(ConvergeLimits limits = {});

  // --- Queries ---------------------------------------------------------------

  /// Issues one query from `origin` (expressed in origin's schema) and
  /// drives the network until the query traffic quiesces.
  QueryReport Query(PeerId origin, const ::pdms::Query& query, uint32_t ttl);

  /// Issues a batch of queries concurrently: all requests enter the
  /// network before the first tick, so their traffic interleaves the way
  /// simultaneous real-world queries would. Reports are returned in
  /// request order.
  std::vector<QueryReport> QueryAll(std::span<const QueryRequest> requests);

  // --- Observation -----------------------------------------------------------

  /// Registers `observer` (not owned; must outlive the session or be
  /// removed first).
  void AddObserver(RoundObserver* observer);
  void RemoveObserver(RoundObserver* observer);

  /// Rounds driven by this session so far.
  size_t rounds() const { return rounds_; }

  /// Read surface for observers: posterior P(correct) of a mapping
  /// variable as believed by the mapping's owner.
  double Posterior(EdgeId edge, AttributeId attribute) const;
  double PosteriorCoarse(EdgeId edge) const;

 private:
  void Notify(const RoundReport& report);

  PdmsEngine* engine_;
  std::vector<RoundObserver*> observers_;
  size_t rounds_ = 0;
};

/// Ready-made observer recording per-round posterior trajectories of a
/// fixed set of mapping variables (the Figure 7 instrumentation):
/// `trajectory()[r][i]` is the posterior of `vars[i]` after the (r+1)-th
/// observed round.
class TrajectoryRecorder final : public RoundObserver {
 public:
  explicit TrajectoryRecorder(std::vector<MappingVarKey> vars)
      : vars_(std::move(vars)) {}

  void OnRound(size_t round, const RoundReport& report,
               const Session& session) override;

  const std::vector<std::vector<double>>& trajectory() const {
    return trajectory_;
  }

 private:
  std::vector<MappingVarKey> vars_;
  std::vector<std::vector<double>> trajectory_;
};

}  // namespace pdms

#endif  // PDMS_PDMS_SESSION_H_
