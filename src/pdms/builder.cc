#include "pdms/builder.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/string_util.h"

namespace pdms {

PdmsBuilder& PdmsBuilder::AddPeer(Schema schema) {
  schemas_.push_back(std::move(schema));
  return *this;
}

PdmsBuilder& PdmsBuilder::AddMapping(PeerId from, PeerId to,
                                     SchemaMapping mapping) {
  mappings_.push_back(PendingMapping{from, to, std::move(mapping)});
  return *this;
}

PdmsBuilder& PdmsBuilder::WithOptions(const EngineOptions& options) {
  options_ = options;
  return *this;
}

PdmsBuilder& PdmsBuilder::WithParallelism(size_t parallelism) {
  parallelism_ = parallelism;
  return *this;
}

PdmsBuilder& PdmsBuilder::WithValueErrorBudget(double eps) {
  value_error_budget_ = eps;
  return *this;
}

PdmsBuilder& PdmsBuilder::WithByzantineGuard(
    const ByzantineGuardOptions& guard) {
  byzantine_guard_ = guard;
  return *this;
}

PdmsBuilder& PdmsBuilder::WithByzantinePlan(const ByzantinePlan& plan) {
  byzantine_plan_ = plan;
  return *this;
}

PdmsBuilder& PdmsBuilder::WithTransport(TransportFactory factory) {
  transport_factory_ = std::move(factory);
  return *this;
}

PdmsBuilder& PdmsBuilder::WithSimTransport(const NetworkOptions& network) {
  return WithTransport(
      [network](size_t peer_count, const EngineOptions& /*options*/) {
        return std::make_unique<SimTransport>(peer_count, network);
      });
}

PdmsBuilder& PdmsBuilder::WithInstantTransport() {
  return WithTransport(
      [](size_t peer_count, const EngineOptions& /*options*/) {
        return std::make_unique<InstantTransport>(peer_count);
      });
}

PdmsBuilder PdmsBuilder::FromSynthetic(const SyntheticPdms& synthetic) {
  PdmsBuilder builder;
  if (synthetic.graph.edge_count() != synthetic.graph.edge_capacity()) {
    // Re-adding only the live edges would renumber everything after the
    // first tombstone while callers keep indexing with the original ids.
    builder.deferred_error_ = Status::FailedPrecondition(StrFormat(
        "synthetic graph has removed edges (%zu live of %zu ever added); "
        "its edge ids cannot be reproduced by sequential AddMapping",
        synthetic.graph.edge_count(), synthetic.graph.edge_capacity()));
    return builder;
  }
  for (const Schema& schema : synthetic.schemas) {
    builder.AddPeer(schema);
  }
  for (EdgeId e : synthetic.graph.LiveEdges()) {
    const Edge& edge = synthetic.graph.edge(e);
    builder.AddMapping(edge.src, edge.dst, synthetic.mappings[e]);
  }
  return builder;
}

Result<Pdms> PdmsBuilder::Build() {
  if (!deferred_error_.ok()) {
    return deferred_error_;
  }
  if (parallelism_.has_value()) {
    options_.parallelism = *parallelism_;
  }
  if (value_error_budget_.has_value()) {
    if (*value_error_budget_ < 0.0) {
      return Status::InvalidArgument(
          "value error budget must be non-negative (0 disables quantization)");
    }
    options_.value_precision.error_budget = *value_error_budget_;
  }
  if (byzantine_guard_.has_value()) {
    const ByzantineGuardOptions& g = *byzantine_guard_;
    if (g.admission_weight < 0.0 || g.equivocation_weight < 0.0 ||
        g.oscillation_weight < 0.0 || g.outlier_weight < 0.0) {
      return Status::InvalidArgument(
          "byzantine guard: score weights must be non-negative");
    }
    if (g.score_decay < 0.0 || g.score_decay >= 1.0) {
      return Status::InvalidArgument(
          "byzantine guard: score_decay must lie in [0, 1)");
    }
    if (g.soft_damping < 0.0 || g.soft_damping >= 1.0) {
      return Status::InvalidArgument(
          "byzantine guard: soft_damping must lie in [0, 1)");
    }
    if (g.soft_threshold <= 0.0 || g.hard_threshold <= 0.0 ||
        g.hard_threshold < g.soft_threshold) {
      return Status::InvalidArgument(
          "byzantine guard: thresholds must be positive with hard >= soft");
    }
    if (g.flip_magnitude < 0.0 || g.outlier_ratio <= 1.0) {
      return Status::InvalidArgument(
          "byzantine guard: flip_magnitude must be non-negative and "
          "outlier_ratio greater than 1");
    }
    options_.byzantine_guard = g;
  }
  if (byzantine_plan_.has_value()) {
    ByzantinePlan plan = *byzantine_plan_;
    if (plan.lie_probability < 0.0 || plan.lie_probability > 1.0 ||
        plan.equivocate_rate < 0.0 || plan.equivocate_rate > 1.0) {
      return Status::InvalidArgument(
          "byzantine plan: probabilities must lie in [0, 1]");
    }
    std::sort(plan.adversaries.begin(), plan.adversaries.end());
    plan.adversaries.erase(
        std::unique(plan.adversaries.begin(), plan.adversaries.end()),
        plan.adversaries.end());
    options_.byzantine = std::move(plan);
  }
  if (schemas_.empty()) {
    return Status::FailedPrecondition("a PDMS needs at least one peer");
  }
  const size_t n = schemas_.size();
  if (!options_.byzantine.adversaries.empty() &&
      options_.byzantine.adversaries.back() >= n) {
    return Status::OutOfRange(StrFormat(
        "byzantine plan: adversary %u outside the %zu peers added",
        options_.byzantine.adversaries.back(), n));
  }
  std::set<std::pair<PeerId, PeerId>> links;
  for (size_t i = 0; i < mappings_.size(); ++i) {
    const PendingMapping& pending = mappings_[i];
    if (pending.from >= n || pending.to >= n) {
      return Status::OutOfRange(StrFormat(
          "mapping %zu ('%s'): endpoint %u -> %u outside the %zu peers added",
          i, pending.mapping.name().c_str(), pending.from, pending.to, n));
    }
    if (pending.from == pending.to) {
      return Status::InvalidArgument(StrFormat(
          "mapping %zu ('%s'): self-loop on peer %u (a mapping must relate "
          "two distinct schemas)",
          i, pending.mapping.name().c_str(), pending.from));
    }
    if (!links.emplace(pending.from, pending.to).second) {
      return Status::AlreadyExists(StrFormat(
          "mapping %zu ('%s'): a mapping %u -> %u was already added",
          i, pending.mapping.name().c_str(), pending.from, pending.to));
    }
    const Schema& source = schemas_[pending.from];
    const Schema& target = schemas_[pending.to];
    if (pending.mapping.source_size() != source.size()) {
      return Status::InvalidArgument(StrFormat(
          "mapping %zu ('%s'): covers %zu source attributes but schema '%s' "
          "of peer %u has %zu",
          i, pending.mapping.name().c_str(), pending.mapping.source_size(),
          source.name().c_str(), pending.from, source.size()));
    }
    for (AttributeId a = 0; a < pending.mapping.source_size(); ++a) {
      const std::optional<AttributeId> image = pending.mapping.Apply(a);
      if (image.has_value() && *image >= target.size()) {
        return Status::InvalidArgument(StrFormat(
            "mapping %zu ('%s'): attribute %u maps to %u but schema '%s' of "
            "peer %u has only %zu attributes",
            i, pending.mapping.name().c_str(), a, *image,
            target.name().c_str(), pending.to, target.size()));
      }
    }
  }

  Digraph graph(n);
  std::vector<SchemaMapping> mappings;
  mappings.reserve(mappings_.size());
  for (PendingMapping& pending : mappings_) {
    PDMS_ASSIGN_OR_RETURN(const EdgeId edge,
                          graph.AddEdge(pending.from, pending.to));
    (void)edge;
    mappings.push_back(std::move(pending.mapping));
  }

  std::unique_ptr<Transport> transport;
  if (transport_factory_) {
    transport = transport_factory_(n, options_);
    if (transport == nullptr) {
      return Status::InvalidArgument("transport factory returned null");
    }
  }

  PDMS_ASSIGN_OR_RETURN(
      std::unique_ptr<PdmsEngine> engine,
      PdmsEngine::Create(graph, std::move(schemas_), std::move(mappings),
                         options_, std::move(transport)));
  return Pdms(std::move(engine));
}

}  // namespace pdms
