#include "pdms/session.h"

#include <algorithm>

namespace pdms {

size_t Session::Discover() { return engine_->DiscoverClosures(); }

RoundReport Session::Step() {
  const RoundReport report = engine_->RunRound();
  Notify(report);
  return report;
}

ConvergenceReport Session::Converge(ConvergeLimits limits) {
  return engine_->RunToConvergence(
      limits.max_rounds,
      [this](size_t /*round*/, const RoundReport& report) { Notify(report); });
}

QueryReport Session::Query(PeerId origin, const ::pdms::Query& query,
                           uint32_t ttl) {
  return engine_->IssueQuery(origin, query, ttl);
}

std::vector<QueryReport> Session::QueryAll(
    std::span<const QueryRequest> requests) {
  return engine_->IssueQueries(requests);
}

void Session::AddObserver(RoundObserver* observer) {
  observers_.push_back(observer);
}

void Session::RemoveObserver(RoundObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

double Session::Posterior(EdgeId edge, AttributeId attribute) const {
  return engine_->Posterior(edge, attribute);
}

double Session::PosteriorCoarse(EdgeId edge) const {
  return engine_->PosteriorCoarse(edge);
}

void Session::Notify(const RoundReport& report) {
  ++rounds_;
  // Snapshot: an observer may add/remove observers (itself included) from
  // inside OnRound without invalidating this iteration.
  const std::vector<RoundObserver*> snapshot = observers_;
  for (RoundObserver* observer : snapshot) {
    observer->OnRound(rounds_, report, *this);
  }
}

void TrajectoryRecorder::OnRound(size_t /*round*/, const RoundReport& /*report*/,
                                 const Session& session) {
  std::vector<double> snapshot;
  snapshot.reserve(vars_.size());
  for (const MappingVarKey& var : vars_) {
    snapshot.push_back(session.Posterior(var.edge, var.attribute));
  }
  trajectory_.push_back(std::move(snapshot));
}

}  // namespace pdms
