#ifndef PDMS_QUERY_QUERY_H_
#define PDMS_QUERY_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mapping/mapping.h"
#include "schema/schema.h"
#include "util/status.h"

namespace pdms {

/// The generic operator model of Section 2: queries are compositions of
/// selections and projections over attributes.
enum class OpKind : uint8_t {
  kProjection = 0,  ///< π_attribute — return this attribute's values
  kSelection = 1,   ///< σ_attribute LIKE %literal% — substring filter
};

/// One selection/projection operation `op(attribute)`.
struct Operation {
  OpKind kind = OpKind::kProjection;
  AttributeId attribute = 0;
  /// Selection literal (substring semantics, as in the paper's
  /// `WHERE $c/..//Item LIKE "%river%"`). Unused for projections.
  std::string literal;

  std::string ToString(const Schema* schema = nullptr) const;
};

/// A query posed against one peer's schema.
class Query {
 public:
  Query() = default;
  explicit Query(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<Operation>& operations() const { return operations_; }

  void AddProjection(AttributeId attribute);
  void AddSelection(AttributeId attribute, std::string literal);

  /// The distinct attributes the query touches — the a_i whose per-mapping
  /// posteriors gate forwarding (Section 2).
  std::vector<AttributeId> Attributes() const;

  /// Rewrites the query through a mapping. Fails with `FailedPrecondition`
  /// if any referenced attribute maps to ⊥ (the query cannot be fully
  /// represented in the target schema; per Section 3.2.1 the forwarding
  /// probability for such a mapping is zero anyway).
  Result<Query> Translate(const SchemaMapping& mapping) const;

  std::string ToString(const Schema* schema = nullptr) const;

 private:
  std::string name_;
  std::vector<Operation> operations_;
};

/// Parses the library's tiny query language against `schema`:
///
///   SELECT <attr> [, <attr>...] [WHERE <attr> LIKE "<substr>"
///                                [AND <attr> LIKE "<substr>"...]]
///
/// Example: `SELECT author WHERE keywords LIKE "river"`.
/// Unknown attributes fail with `NotFound`; syntax errors with
/// `InvalidArgument`.
Result<Query> ParseQuery(const std::string& text, const Schema& schema,
                         std::string query_name = "q");

}  // namespace pdms

#endif  // PDMS_QUERY_QUERY_H_
