#include "query/query.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace pdms {

std::string Operation::ToString(const Schema* schema) const {
  const std::string attr_name =
      schema != nullptr && attribute < schema->size()
          ? schema->attribute(attribute).name
          : StrFormat("a%u", attribute);
  if (kind == OpKind::kProjection) {
    return StrFormat("π(%s)", attr_name.c_str());
  }
  return StrFormat("σ(%s LIKE \"%%%s%%\")", attr_name.c_str(), literal.c_str());
}

void Query::AddProjection(AttributeId attribute) {
  operations_.push_back(Operation{OpKind::kProjection, attribute, ""});
}

void Query::AddSelection(AttributeId attribute, std::string literal) {
  operations_.push_back(
      Operation{OpKind::kSelection, attribute, std::move(literal)});
}

std::vector<AttributeId> Query::Attributes() const {
  std::set<AttributeId> unique;
  for (const Operation& op : operations_) unique.insert(op.attribute);
  return {unique.begin(), unique.end()};
}

Result<Query> Query::Translate(const SchemaMapping& mapping) const {
  Query translated(name_);
  for (const Operation& op : operations_) {
    const std::optional<AttributeId> image = mapping.Apply(op.attribute);
    if (!image.has_value()) {
      return Status::FailedPrecondition(
          StrFormat("mapping '%s' has no image for attribute %u",
                    mapping.name().c_str(), op.attribute));
    }
    Operation rewritten = op;
    rewritten.attribute = *image;
    translated.operations_.push_back(std::move(rewritten));
  }
  return translated;
}

std::string Query::ToString(const Schema* schema) const {
  std::vector<std::string> parts;
  parts.reserve(operations_.size());
  for (const Operation& op : operations_) parts.push_back(op.ToString(schema));
  return name_ + ": " + Join(parts, " ∧ ");
}

namespace {

/// Splits on whitespace but keeps double-quoted strings as single tokens
/// (without the quotes).
Result<std::vector<std::string>> Lex(const std::string& text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == ',') {
      tokens.emplace_back(",");
      ++i;
      continue;
    }
    if (c == '"') {
      const size_t close = text.find('"', i + 1);
      if (close == std::string::npos) {
        return Status::InvalidArgument("unterminated string literal");
      }
      tokens.push_back(text.substr(i + 1, close - i - 1));
      i = close + 1;
      continue;
    }
    size_t end = i;
    while (end < text.size() &&
           std::isspace(static_cast<unsigned char>(text[end])) == 0 &&
           text[end] != ',' && text[end] != '"') {
      ++end;
    }
    tokens.push_back(text.substr(i, end - i));
    i = end;
  }
  return tokens;
}

}  // namespace

Result<Query> ParseQuery(const std::string& text, const Schema& schema,
                         std::string query_name) {
  Result<std::vector<std::string>> lexed = Lex(text);
  if (!lexed.ok()) return lexed.status();
  const std::vector<std::string>& tokens = *lexed;

  size_t i = 0;
  auto at_keyword = [&](const char* kw) {
    return i < tokens.size() && ToUpper(tokens[i]) == kw;
  };
  if (!at_keyword("SELECT")) {
    return Status::InvalidArgument("query must start with SELECT");
  }
  ++i;

  Query query(std::move(query_name));
  bool expecting_attribute = true;
  while (i < tokens.size() && !at_keyword("WHERE")) {
    if (tokens[i] == ",") {
      if (expecting_attribute) {
        return Status::InvalidArgument("dangling comma in SELECT list");
      }
      expecting_attribute = true;
      ++i;
      continue;
    }
    if (!expecting_attribute) {
      return Status::InvalidArgument("missing comma between attributes");
    }
    Result<AttributeId> attr = schema.Find(tokens[i]);
    if (!attr.ok()) return attr.status();
    query.AddProjection(*attr);
    expecting_attribute = false;
    ++i;
  }
  if (query.operations().empty()) {
    return Status::InvalidArgument("SELECT list must not be empty");
  }
  if (expecting_attribute) {
    return Status::InvalidArgument("dangling comma in SELECT list");
  }

  if (i < tokens.size()) {  // WHERE clause
    ++i;                    // consume WHERE
    while (true) {
      if (i + 2 >= tokens.size()) {
        return Status::InvalidArgument("WHERE expects: <attr> LIKE \"text\"");
      }
      Result<AttributeId> attr = schema.Find(tokens[i]);
      if (!attr.ok()) return attr.status();
      if (ToUpper(tokens[i + 1]) != "LIKE") {
        return Status::InvalidArgument("expected LIKE after attribute");
      }
      query.AddSelection(*attr, tokens[i + 2]);
      i += 3;
      if (i >= tokens.size()) break;
      if (ToUpper(tokens[i]) != "AND") {
        return Status::InvalidArgument("expected AND between predicates");
      }
      ++i;
    }
  }
  return query;
}

}  // namespace pdms
