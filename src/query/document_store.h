#ifndef PDMS_QUERY_DOCUMENT_STORE_H_
#define PDMS_QUERY_DOCUMENT_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "query/query.h"
#include "schema/schema.h"
#include "util/status.h"

namespace pdms {

/// Globally unique document identifier: (owning peer, local row index) is
/// encoded by the caller; the store itself only hands out local ids.
using DocId = uint64_t;

/// One record: attribute -> value. Sparse (documents need not fill every
/// attribute); the hidden `entity` tag links semantically identical
/// documents across peers so experiments can score false positives.
struct Document {
  DocId id = 0;
  /// Hidden provenance: which real-world entity this row describes.
  /// Not visible to query processing; used only by evaluation oracles.
  uint64_t entity = 0;
  std::map<AttributeId, std::string> values;
};

/// A result row produced by query evaluation.
struct ResultRow {
  DocId document = 0;
  uint64_t entity = 0;
  /// Projected values in the order of the query's projection operations.
  std::vector<std::string> values;
};

/// In-memory document collection for one peer database, with evaluation of
/// the selection/projection query model.
class DocumentStore {
 public:
  DocumentStore() = default;

  /// Adds a document and returns its local id.
  DocId Insert(uint64_t entity, std::map<AttributeId, std::string> values);

  size_t size() const { return documents_.size(); }
  const Document& document(DocId id) const { return documents_[id]; }
  const std::vector<Document>& documents() const { return documents_; }

  /// Evaluates `query`: a document matches when every selection literal is
  /// a substring of the document's value for that attribute (missing
  /// attribute = no match); each match emits the projected values
  /// (missing projected attributes render as "").
  std::vector<ResultRow> Execute(const Query& query) const;

 private:
  std::vector<Document> documents_;
};

}  // namespace pdms

#endif  // PDMS_QUERY_DOCUMENT_STORE_H_
