#include "query/document_store.h"

namespace pdms {

DocId DocumentStore::Insert(uint64_t entity,
                            std::map<AttributeId, std::string> values) {
  Document doc;
  doc.id = documents_.size();
  doc.entity = entity;
  doc.values = std::move(values);
  documents_.push_back(std::move(doc));
  return documents_.back().id;
}

std::vector<ResultRow> DocumentStore::Execute(const Query& query) const {
  std::vector<ResultRow> rows;
  for (const Document& doc : documents_) {
    bool matches = true;
    for (const Operation& op : query.operations()) {
      if (op.kind != OpKind::kSelection) continue;
      const auto it = doc.values.find(op.attribute);
      if (it == doc.values.end() ||
          it->second.find(op.literal) == std::string::npos) {
        matches = false;
        break;
      }
    }
    if (!matches) continue;
    ResultRow row;
    row.document = doc.id;
    row.entity = doc.entity;
    for (const Operation& op : query.operations()) {
      if (op.kind != OpKind::kProjection) continue;
      const auto it = doc.values.find(op.attribute);
      row.values.push_back(it == doc.values.end() ? "" : it->second);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace pdms
