#include "schema/bibliographic.h"

#include <array>
#include <cassert>

namespace pdms {

std::optional<AttributeId> Ontology::AttributeForConcept(
    ConceptId concept_id) const {
  for (AttributeId a = 0; a < concept_of.size(); ++a) {
    if (concept_of[a] == concept_id) return a;
  }
  return std::nullopt;
}

namespace {

/// One concept row: canonical key + surface form per ontology style.
/// An empty string means the ontology omits the concept (⊥ source).
struct ConceptRow {
  const char* key;
  const char* ref;        // reference ontology "101"
  const char* french;     // translated ontology "221"
  const char* mit;        // BibTeX ontology, hasXxx style
  const char* umbc;       // BibTeX ontology, snake_case style
  const char* inria;      // independent redesign, synonym-heavy
  const char* karlsruhe;  // independent redesign, German vocabulary
};

// The trap structure mirrors the error modes the paper's tool hit on the
// real EON set: "editeur"(publisher) vs "editor" faux ami, "edition" vs
// "editor" near-miss, "date" vs "year"/"month" coarseness, "collection" vs
// "series"/"keywords" ambiguity, plus concepts some ontologies simply lack.
constexpr std::array<ConceptRow, 34> kConcepts = {{
    {"publication", "Publication", "Publication", "hasPublication",
     "publication", "Work", "Publikation"},
    {"article", "Article", "Article", "ArticleEntry", "article_entry",
     "JournalPaper", "Artikel"},
    {"book", "Book", "Livre", "BookEntry", "book_entry", "Monograph", "Buch"},
    {"proceedings", "Proceedings", "Actes", "ProceedingsEntry",
     "proceedings_entry", "ConferenceRecord", "Tagungsband"},
    {"thesis", "Thesis", "These", "ThesisEntry", "thesis_entry",
     "Dissertation", "Doktorarbeit"},
    {"report", "Report", "Rapport", "ReportEntry", "report_entry",
     "TechnicalNote", "Bericht"},
    {"title", "title", "titre", "hasTitle", "title_field", "name", "titel"},
    {"subtitle", "subtitle", "sousTitre", "hasSubtitle", "subtitle_field",
     "secondaryName", "untertitel"},
    {"abstract", "abstract", "resume", "hasAbstract", "abstract_field",
     "summary", "zusammenfassung"},
    {"author", "author", "auteur", "hasAuthor", "author_field", "creator",
     "autor"},
    {"editor", "editor", "redacteur", "hasEditor", "editor_field",
     "reviewingEditor", "herausgeber"},
    {"publisher", "publisher", "editeur", "hasPublisher", "publisher_field",
     "publishingHouse", "verlag"},
    {"journal", "journal", "revue", "hasJournal", "journal_field",
     "periodical", "zeitschrift"},
    {"volume", "volume", "volume", "hasVolume", "volume_field", "volume",
     "band"},
    {"number", "number", "numero", "hasNumber", "number_field", "issue",
     "nummer"},
    {"pages", "pages", "pages", "hasPages", "pages_field", "pageRange",
     "seiten"},
    {"year", "year", "annee", "hasYear", "year_field", "date", "jahr"},
    {"month", "month", "mois", "hasMonth", "month_field", "", "monat"},
    {"note", "note", "note", "hasNote", "note_field", "comment", "notiz"},
    {"keywords", "keywords", "motsCles", "hasKeywords", "keywords_field",
     "subject", "schlagworte"},
    {"isbn", "isbn", "isbn", "hasIsbn", "isbn_field", "isbn", "isbn"},
    {"issn", "issn", "issn", "hasIssn", "issn_field", "issn", ""},
    {"doi", "doi", "doi", "hasDoi", "doi_field", "digitalObjectId", "doi"},
    {"url", "url", "url", "hasUrl", "url_field", "webAddress", "url"},
    {"address", "address", "adresse", "hasAddress", "address_field",
     "location", "adresse"},
    {"institution", "institution", "institution", "hasInstitution",
     "institution_field", "institute", "institut"},
    {"organization", "organization", "organisation", "hasOrganization",
     "organization_field", "association", "organisation"},
    {"school", "school", "ecole", "hasSchool", "school_field", "university",
     "hochschule"},
    {"series", "series", "collection", "hasSeries", "series_field",
     "bookSeries", "reihe"},
    {"edition", "edition", "edition", "hasEdition", "edition_field",
     "version", "auflage"},
    {"chapter", "chapter", "chapitre", "hasChapter", "chapter_field",
     "section", "kapitel"},
    {"language", "language", "langue", "hasLanguage", "language_field", "",
     "sprache"},
    {"copyright", "copyright", "droits", "hasCopyright", "copyright_field",
     "rights", "urheberrecht"},
    {"booktitle", "booktitle", "titreLivre", "hasBooktitle",
     "booktitle_field", "containerName", ""},
}};

const std::vector<std::string>* BuildKeys() {
  auto* keys = new std::vector<std::string>();
  keys->reserve(kConcepts.size());
  for (const auto& row : kConcepts) keys->emplace_back(row.key);
  return keys;
}

Ontology BuildOntology(const std::string& name,
                       const char* ConceptRow::*member) {
  Ontology ontology;
  ontology.schema = Schema(name);
  for (ConceptId c = 0; c < kConcepts.size(); ++c) {
    const char* surface = kConcepts[c].*member;
    if (surface == nullptr || surface[0] == '\0') continue;  // omitted concept
    Result<AttributeId> id = ontology.schema.AddAttribute(
        surface, std::string("denotes ") + kConcepts[c].key);
    assert(id.ok());
    (void)id;
    ontology.concept_of.push_back(c);
  }
  return ontology;
}

}  // namespace

const std::vector<std::string>& BibliographicConcepts::Keys() {
  static const std::vector<std::string>* keys = BuildKeys();
  return *keys;
}

std::vector<Ontology> MakeBibliographicOntologies() {
  std::vector<Ontology> family;
  family.push_back(BuildOntology("ref101", &ConceptRow::ref));
  family.push_back(BuildOntology("french221", &ConceptRow::french));
  family.push_back(BuildOntology("mitBibtex", &ConceptRow::mit));
  family.push_back(BuildOntology("umbcBibtex", &ConceptRow::umbc));
  family.push_back(BuildOntology("inria", &ConceptRow::inria));
  family.push_back(BuildOntology("karlsruhe", &ConceptRow::karlsruhe));
  return family;
}

bool GroundTruth::SameConcept(size_t s1, AttributeId a, size_t s2,
                              AttributeId b) const {
  return ConceptOf(s1, a) == ConceptOf(s2, b);
}

ConceptId GroundTruth::ConceptOf(size_t s, AttributeId a) const {
  assert(s < family_->size());
  assert(a < (*family_)[s].concept_of.size());
  return (*family_)[s].concept_of[a];
}

}  // namespace pdms
