#include "schema/dictionary.h"

#include <set>

#include "util/string_util.h"

namespace pdms {

void Dictionary::Add(const std::string& token, const std::string& canonical) {
  entries_[token] = canonical;
}

const std::string& Dictionary::Canonicalize(const std::string& token) const {
  const auto it = entries_.find(token);
  return it == entries_.end() ? token : it->second;
}

std::vector<std::string> Dictionary::CanonicalTokens(
    const std::string& identifier) const {
  static const std::set<std::string> kAffixes = {"has", "is",  "bibtex", "bib",
                                                 "the", "of",  "field",  "entry"};
  std::vector<std::string> out;
  for (const std::string& token : TokenizeIdentifier(identifier)) {
    if (kAffixes.count(token) > 0) continue;
    out.push_back(Canonicalize(token));
  }
  return out;
}

const Dictionary& Dictionary::Bibliographic() {
  static const Dictionary* dictionary = [] {
    auto* d = new Dictionary();
    // --- French -> English (incomplete on purpose; and with the classic
    // faux ami: "editeur" is really the publisher, but era dictionaries
    // mapped it to "editor", seeding a systematic alignment error).
    d->Add("titre", "title");
    d->Add("auteur", "author");
    d->Add("annee", "year");
    d->Add("mois", "month");
    d->Add("revue", "journal");
    d->Add("numero", "number");
    d->Add("editeur", "editor");  // WRONG on purpose (means publisher).
    d->Add("adresse", "address");
    d->Add("ecole", "school");
    d->Add("livre", "book");
    d->Add("actes", "proceedings");
    d->Add("these", "thesis");
    d->Add("rapport", "report");
    d->Add("chapitre", "chapter");
    d->Add("langue", "language");
    // Missing on purpose: redacteur, resume, motscles/mots/cles, droits,
    // collection, soustitre/sous, maison.

    // --- German -> English (even sparser, as era tools were).
    d->Add("titel", "title");
    d->Add("autor", "author");
    d->Add("jahr", "year");
    d->Add("seiten", "pages");
    d->Add("nummer", "number");
    d->Add("adresse", "address");
    d->Add("kapitel", "chapter");
    d->Add("buch", "book");
    // Missing on purpose: herausgeber, verlag, zeitschrift, band, monat,
    // schlagworte, hochschule, reihe, auflage, sprache, urheberrecht,
    // zusammenfassung, untertitel, notiz, bericht.

    // --- English synonyms (subset of WordNet-ish equivalences).
    d->Add("creator", "author");
    d->Add("writer", "author");
    d->Add("name", "title");
    d->Add("heading", "title");
    d->Add("summary", "abstract");
    d->Add("periodical", "journal");
    d->Add("issue", "number");
    d->Add("date", "year");  // Coarse on purpose: collides month/year.
    d->Add("location", "address");
    d->Add("university", "school");
    d->Add("organisation", "organization");
    d->Add("subject", "keywords");
    d->Add("rights", "copyright");
    // Missing on purpose: pagerange, publishinghouse, digitalobjectid,
    // webaddress, version, section, association, comment.
    return d;
  }();
  return *dictionary;
}

}  // namespace pdms
