#ifndef PDMS_SCHEMA_ALIGNMENT_H_
#define PDMS_SCHEMA_ALIGNMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/dictionary.h"
#include "schema/schema.h"

namespace pdms {

/// One attribute-level correspondence proposed by an aligner.
struct Correspondence {
  AttributeId source = 0;
  AttributeId target = 0;
  double score = 0.0;
};

/// The simple alignment techniques of the paper's era ([10], Euzenat's
/// alignment API): each is a different similarity on attribute names.
/// Their differing quality is the point — the weaker techniques produce the
/// erroneous mappings the message passing scheme must later detect.
enum class AlignmentTechnique : uint8_t {
  /// Normalized Levenshtein similarity on raw lower-cased names. Cheap and
  /// notoriously unreliable across languages ("editeur" -> "editor").
  kEditDistance = 0,
  /// Character-trigram Jaccard similarity on raw lower-cased names.
  kTrigram = 1,
  /// Token overlap after dictionary canonicalization (translations +
  /// synonyms), the strongest single signal.
  kTokenDictionary = 2,
  /// Weighted blend of all three.
  kCombined = 3,
};

std::string_view AlignmentTechniqueName(AlignmentTechnique technique);

/// Configuration for `Aligner`.
struct AlignerOptions {
  AlignmentTechnique technique = AlignmentTechnique::kCombined;
  /// Correspondences scoring below this are not emitted (the attribute maps
  /// to ⊥ instead).
  double min_score = 0.5;
  /// Blend weights for kCombined.
  double weight_edit = 0.35;
  double weight_trigram = 0.25;
  double weight_token = 0.40;
  /// Dictionary for kTokenDictionary / kCombined; nullptr selects the
  /// built-in bibliographic dictionary.
  const Dictionary* dictionary = nullptr;
};

/// (Semi-)automatic schema aligner producing per-attribute best-match
/// correspondences from a source schema to a target schema.
///
/// Matching is greedy best-match per source attribute (as the simple
/// techniques of [10] were): several source attributes may map to the same
/// target, and systematic mistakes — faux amis, near-miss strings, synonym
/// gaps — survive into the output. That is intended: these are the
/// erroneous mappings the PDMS must discover via message passing.
class Aligner {
 public:
  explicit Aligner(AlignerOptions options = {});

  /// Similarity of two attribute names under the configured technique,
  /// in [0, 1].
  double Similarity(const std::string& a, const std::string& b) const;

  /// Best-match correspondences for every source attribute that clears
  /// `min_score`.
  std::vector<Correspondence> Align(const Schema& source,
                                    const Schema& target) const;

  const AlignerOptions& options() const { return options_; }

 private:
  double TokenSimilarity(const std::string& a, const std::string& b) const;

  AlignerOptions options_;
  const Dictionary* dictionary_;
};

}  // namespace pdms

#endif  // PDMS_SCHEMA_ALIGNMENT_H_
