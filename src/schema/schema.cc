#include "schema/schema.h"

#include "util/string_util.h"

namespace pdms {

Result<AttributeId> Schema::AddAttribute(std::string attr_name,
                                         std::string comment) {
  if (attr_name.empty()) {
    return Status::InvalidArgument("attribute name must not be empty");
  }
  if (index_.count(attr_name) > 0) {
    return Status::AlreadyExists(
        StrFormat("attribute '%s' already in schema '%s'", attr_name.c_str(),
                  name_.c_str()));
  }
  const auto id = static_cast<AttributeId>(attributes_.size());
  index_.emplace(attr_name, id);
  attributes_.push_back(Attribute{id, std::move(attr_name), std::move(comment)});
  return id;
}

Result<AttributeId> Schema::Find(const std::string& attr_name) const {
  const auto it = index_.find(attr_name);
  if (it == index_.end()) {
    return Status::NotFound(StrFormat("attribute '%s' not in schema '%s'",
                                      attr_name.c_str(), name_.c_str()));
  }
  return it->second;
}

bool Schema::Contains(const std::string& attr_name) const {
  return index_.count(attr_name) > 0;
}

std::string Schema::ToString() const {
  std::string out = StrFormat("Schema '%s' (%zu attributes)\n", name_.c_str(),
                              attributes_.size());
  for (const auto& attr : attributes_) {
    out += StrFormat("  %u: %s\n", attr.id, attr.name.c_str());
  }
  return out;
}

}  // namespace pdms
