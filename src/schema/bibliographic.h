#ifndef PDMS_SCHEMA_BIBLIOGRAPHIC_H_
#define PDMS_SCHEMA_BIBLIOGRAPHIC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "schema/schema.h"

namespace pdms {

/// Index into the shared bibliographic concept universe.
using ConceptId = uint32_t;

/// One ontology of the synthetic EON-style bibliographic family: a schema
/// plus the hidden concept each attribute denotes. The concept assignment
/// is the ground truth a human expert would judge against (Section 5.2).
struct Ontology {
  Schema schema;
  /// concept_of[attribute id] = concept the attribute denotes.
  std::vector<ConceptId> concept_of;

  /// The attribute of this ontology denoting `concept`, if any (ontologies
  /// deliberately omit a few concepts each, creating ⊥ cases).
  std::optional<AttributeId> AttributeForConcept(ConceptId concept_id) const;
};

/// The shared concept universe of the bibliographic family.
class BibliographicConcepts {
 public:
  /// Canonical English key per concept ("title", "author", ...).
  static const std::vector<std::string>& Keys();
  static size_t Count() { return Keys().size(); }
};

/// Builds the six-ontology bibliographic family standing in for the EON
/// Ontology Alignment Contest set the paper evaluates on (Section 5.2):
/// a reference ontology, its French translation, two BibTeX-derived
/// variants, and two independently-redesigned ontologies — each with about
/// thirty attributes drawn from the shared concept universe.
///
/// The surface vocabularies are engineered so that the simple alignment
/// techniques of `Aligner` reproduce the error modes the paper reports:
/// faux amis across languages, near-miss string matches ("editor" vs
/// "edition"), synonym gaps, and missing concepts.
std::vector<Ontology> MakeBibliographicOntologies();

/// Ground-truth oracle over a family of ontologies: the role of the human
/// expert who judged mapping quality in the paper's experiment.
class GroundTruth {
 public:
  explicit GroundTruth(const std::vector<Ontology>* family) : family_(family) {}

  /// True if attribute `a` of ontology `s1` and attribute `b` of ontology
  /// `s2` denote the same concept.
  bool SameConcept(size_t s1, AttributeId a, size_t s2, AttributeId b) const;

  /// Concept denoted by attribute `a` of ontology `s`.
  ConceptId ConceptOf(size_t s, AttributeId a) const;

 private:
  const std::vector<Ontology>* family_;
};

}  // namespace pdms

#endif  // PDMS_SCHEMA_BIBLIOGRAPHIC_H_
