#ifndef PDMS_SCHEMA_DICTIONARY_H_
#define PDMS_SCHEMA_DICTIONARY_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace pdms {

/// A small translation/synonym dictionary mapping surface tokens to
/// canonical English concept tokens, as shipped with simple alignment tools
/// of the paper's era ([10]).
///
/// The dictionary is *deliberately incomplete and imperfect*: real
/// alignment dictionaries were, and the resulting systematic aligner errors
/// (e.g. the French faux ami "editeur" -> "editor", where editeur actually
/// means publisher) are exactly the erroneous mappings the paper's message
/// passing scheme is designed to catch.
class Dictionary {
 public:
  /// The built-in bibliographic dictionary used by the EON-style workload.
  static const Dictionary& Bibliographic();

  /// An empty dictionary (string similarity only).
  Dictionary() = default;

  /// Registers a translation/synonym entry (token -> canonical token).
  void Add(const std::string& token, const std::string& canonical);

  /// Canonicalizes one lower-case token; returns the input when unknown.
  const std::string& Canonicalize(const std::string& token) const;

  /// Canonicalizes every token of an identifier split on word boundaries,
  /// dropping vacuous affixes ("has", "is", "bibtex", ...).
  std::vector<std::string> CanonicalTokens(const std::string& identifier) const;

  size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<std::string, std::string> entries_;
};

}  // namespace pdms

#endif  // PDMS_SCHEMA_DICTIONARY_H_
