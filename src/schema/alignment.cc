#include "schema/alignment.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace pdms {

std::string_view AlignmentTechniqueName(AlignmentTechnique technique) {
  switch (technique) {
    case AlignmentTechnique::kEditDistance:
      return "edit-distance";
    case AlignmentTechnique::kTrigram:
      return "trigram";
    case AlignmentTechnique::kTokenDictionary:
      return "token-dictionary";
    case AlignmentTechnique::kCombined:
      return "combined";
  }
  return "?";
}

Aligner::Aligner(AlignerOptions options)
    : options_(options),
      dictionary_(options.dictionary != nullptr ? options.dictionary
                                                : &Dictionary::Bibliographic()) {}

double Aligner::TokenSimilarity(const std::string& a, const std::string& b) const {
  const std::vector<std::string> ta = dictionary_->CanonicalTokens(a);
  const std::vector<std::string> tb = dictionary_->CanonicalTokens(b);
  if (ta.empty() || tb.empty()) return 0.0;
  const std::set<std::string> sa(ta.begin(), ta.end());
  const std::set<std::string> sb(tb.begin(), tb.end());
  size_t intersection = 0;
  for (const auto& t : sa) {
    if (sb.count(t) > 0) ++intersection;
  }
  const size_t unions = sa.size() + sb.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(unions);
}

double Aligner::Similarity(const std::string& a, const std::string& b) const {
  const std::string la = ToLower(a);
  const std::string lb = ToLower(b);
  switch (options_.technique) {
    case AlignmentTechnique::kEditDistance:
      return EditSimilarity(la, lb);
    case AlignmentTechnique::kTrigram:
      return TrigramSimilarity(la, lb);
    case AlignmentTechnique::kTokenDictionary:
      return TokenSimilarity(a, b);
    case AlignmentTechnique::kCombined:
      return options_.weight_edit * EditSimilarity(la, lb) +
             options_.weight_trigram * TrigramSimilarity(la, lb) +
             options_.weight_token * TokenSimilarity(a, b);
  }
  return 0.0;
}

std::vector<Correspondence> Aligner::Align(const Schema& source,
                                           const Schema& target) const {
  std::vector<Correspondence> correspondences;
  for (const Attribute& src : source.attributes()) {
    Correspondence best;
    best.source = src.id;
    best.score = -1.0;
    for (const Attribute& dst : target.attributes()) {
      const double score = Similarity(src.name, dst.name);
      if (score > best.score) {
        best.target = dst.id;
        best.score = score;
      }
    }
    if (best.score >= options_.min_score) correspondences.push_back(best);
  }
  return correspondences;
}

}  // namespace pdms
