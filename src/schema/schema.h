#ifndef PDMS_SCHEMA_SCHEMA_H_
#define PDMS_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace pdms {

/// Index of an attribute within one schema.
using AttributeId = uint32_t;

/// A named concept a database stores information about: an attribute in a
/// relational schema, an element/attribute in XML, or a class/property in
/// RDF (Section 2 of the paper treats these uniformly).
struct Attribute {
  AttributeId id = 0;
  /// Identifier as it appears in the schema, e.g. "hasAuthor" or "auteur".
  std::string name;
  /// Optional human-readable annotation (rdfs:comment-like); aligners may
  /// use it as a secondary signal.
  std::string comment;
};

/// An ordered collection of uniquely-named attributes belonging to one peer
/// database.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds an attribute; fails with `AlreadyExists` on duplicate names.
  Result<AttributeId> AddAttribute(std::string attr_name,
                                   std::string comment = "");

  size_t size() const { return attributes_.size(); }
  const Attribute& attribute(AttributeId id) const { return attributes_[id]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Looks an attribute up by exact name.
  Result<AttributeId> Find(const std::string& attr_name) const;
  bool Contains(const std::string& attr_name) const;

  /// Multi-line dump: one "id: name" per attribute.
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, AttributeId> index_;
};

}  // namespace pdms

#endif  // PDMS_SCHEMA_SCHEMA_H_
