#ifndef PDMS_GRAPH_TOPOLOGY_H_
#define PDMS_GRAPH_TOPOLOGY_H_

#include <cstddef>

#include "graph/digraph.h"
#include "util/rng.h"

namespace pdms {
namespace topology {

/// Named edge ids of the paper's running example (Figures 1, 4, 5).
/// Peers are numbered p1..p4 -> nodes 0..3.
struct ExampleEdges {
  EdgeId m12, m23, m34, m41, m24;
  /// Only present in the directed example (Figure 5); otherwise == kAbsent.
  EdgeId m21;
  static constexpr EdgeId kAbsent = static_cast<EdgeId>(-1);
};

/// The five-mapping example network of Figure 4 (used undirected in the
/// paper; edges are stored with the orientations of Figure 5 minus m21).
Digraph ExampleGraph(ExampleEdges* edges);

/// The six-mapping directed example network of Figure 5 (adds m21).
Digraph ExampleGraphDirected(ExampleEdges* edges);

/// The Figure 8 construction: the example network with `inserted` extra
/// peers spliced into the p1 -> p2 mapping, lengthening cycles f1 and f2 by
/// `inserted` hops. With inserted == 0 this equals `ExampleGraph`.
/// `chain` (optional) receives the edge ids of the p1 -> ... -> p2 chain in
/// order; all other example edge ids are returned through `edges` (with
/// m12 == first chain edge).
Digraph ExampleGraphExtended(size_t inserted, ExampleEdges* edges,
                             std::vector<EdgeId>* chain);

/// Directed ring 0 -> 1 -> ... -> n-1 -> 0 (the Figure 10 workload).
/// Requires n >= 2.
Digraph Ring(size_t n);

/// Directed Erdős–Rényi G(n, p): each ordered pair (i, j), i != j, gets an
/// edge independently with probability `p`.
Digraph ErdosRenyi(size_t n, double p, Rng* rng);

/// Scale-free network via Barabási–Albert preferential attachment with `m`
/// links per new node; each undirected link is stored with a random
/// orientation. Requires n >= m + 1 and m >= 1.
Digraph BarabasiAlbert(size_t n, size_t m, Rng* rng);

/// Watts–Strogatz small world: ring of n nodes, each linked to its k/2
/// nearest neighbors on each side, rewired with probability `beta`; random
/// orientations. Requires k even, n > k.
Digraph WattsStrogatz(size_t n, size_t k, double beta, Rng* rng);

/// Adds the reverse of every live edge that lacks one and reports the added
/// ids; models bidirectional mappings.
std::vector<EdgeId> Symmetrize(Digraph* graph);

}  // namespace topology
}  // namespace pdms

#endif  // PDMS_GRAPH_TOPOLOGY_H_
