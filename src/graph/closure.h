#ifndef PDMS_GRAPH_CLOSURE_H_
#define PDMS_GRAPH_CLOSURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.h"

namespace pdms {

/// A *closure* is a structure in the mapping network along which the
/// composition of mappings can be compared against the identity (Section 3
/// of the paper): either a mapping **cycle**, or a pair of **parallel
/// paths** sharing source and destination.
///
/// For a cycle, `edges` lists the mapping edges in traversal order starting
/// at `source` (== `sink`). For parallel paths, `edges[0..split)` is the
/// first path and `edges[split..]` the second, both ordered from `source`
/// to `sink`.
struct Closure {
  enum class Kind : uint8_t { kCycle, kParallelPaths };

  Kind kind = Kind::kCycle;
  std::vector<EdgeId> edges;
  /// Boundary between the two paths; == edges.size() for cycles.
  size_t split = 0;
  NodeId source = 0;
  NodeId sink = 0;

  size_t Length() const { return edges.size(); }

  /// "cycle(e0,e1,e2)" or "parallel(e0 | e1,e2)".
  std::string ToString() const;
};

/// Options bounding the closure search. The paper's peers probe their
/// neighborhood with a TTL and stop expanding once longer cycles stop
/// changing posteriors (Section 5.1.2); `max_cycle_length` plays the role
/// of that TTL.
struct ClosureFinderOptions {
  /// Longest cycle (in mappings) to report.
  size_t max_cycle_length = 8;
  /// Shortest cycle to report. Directed 2-cycles (a mapping and its
  /// inverse) are trivial closures; the paper's example enumerations start
  /// at length 3, which is the default here.
  size_t min_cycle_length = 3;
  /// Longest single path (in mappings) participating in a parallel pair.
  size_t max_path_length = 6;
  /// Safety valve on the number of closures returned.
  size_t max_closures = 1u << 20;
};

/// Enumerates directed simple cycles of the graph, each reported once
/// (canonical rotation starts at the smallest node id).
std::vector<Closure> FindDirectedCycles(const Digraph& graph,
                                        const ClosureFinderOptions& options);

/// Enumerates unordered pairs of directed simple paths with identical
/// source and sink that are edge-disjoint and internally vertex-disjoint —
/// the parallel paths of Section 3.3. Pairs whose union of edges equals the
/// union of a shorter reported pair are still reported (they are distinct
/// evidence). Each pair is reported once.
std::vector<Closure> FindParallelPaths(const Digraph& graph,
                                       const ClosureFinderOptions& options);

/// Enumerates simple cycles of the *underlying undirected* graph (mapping
/// direction ignored), as used for undirected PDMS (Section 3.2). Each
/// cycle is reported once; `edges` holds the mapping edge ids in traversal
/// order (traversal may cross edges against their direction).
std::vector<Closure> FindUndirectedCycles(const Digraph& graph,
                                          const ClosureFinderOptions& options);

/// Convenience: directed cycles plus parallel paths (the full directed-PDMS
/// evidence set of Section 3.3).
std::vector<Closure> FindAllDirectedClosures(const Digraph& graph,
                                             const ClosureFinderOptions& options);

}  // namespace pdms

#endif  // PDMS_GRAPH_CLOSURE_H_
