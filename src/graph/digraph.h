#ifndef PDMS_GRAPH_DIGRAPH_H_
#define PDMS_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace pdms {

/// Index of a peer (node) in a mapping network.
using NodeId = uint32_t;
/// Index of a mapping (directed edge) in a mapping network.
using EdgeId = uint32_t;

/// A directed edge `src -> dst`. In PDMS terms: a pairwise schema mapping
/// allowing queries posed against `src`'s schema to be rewritten into
/// `dst`'s schema.
struct Edge {
  EdgeId id = 0;
  NodeId src = 0;
  NodeId dst = 0;
};

/// Directed multigraph with stable edge identifiers and tombstone removal.
///
/// This is the structural skeleton of a PDMS: nodes are peers, edges are
/// schema mappings. Multiple parallel edges between the same pair of nodes
/// are allowed (independently-authored mappings); self-loops are not.
/// Edge removal (for churn experiments) keeps `EdgeId`s stable: removed ids
/// are never reused and `edge_alive()` reports liveness.
class Digraph {
 public:
  Digraph() = default;
  /// Creates a graph with `node_count` isolated nodes.
  explicit Digraph(size_t node_count) : out_(node_count), in_(node_count) {}

  /// Adds an isolated node and returns its id.
  NodeId AddNode();

  /// Adds a directed edge. Fails with `InvalidArgument` for out-of-range
  /// endpoints or self-loops.
  Result<EdgeId> AddEdge(NodeId src, NodeId dst);

  /// Tombstones an edge. Fails with `NotFound` if already removed or
  /// out of range.
  Status RemoveEdge(EdgeId id);

  /// Snapshot of the liveness flags, one per edge ever added (the EdgeId
  /// space). Together with the stable edge records this is the graph's
  /// entire mutable state.
  const std::vector<bool>& alive_flags() const { return alive_; }

  /// Restores the liveness flags to a previously captured snapshot,
  /// rebuilding the adjacency lists (edges are iterated in id order, so
  /// the rebuilt lists are ascending — exactly the order incremental
  /// `AddEdge` calls produce). Edges added *after* the capture become
  /// tombstones (ids are never reused, so rolling them back is exactly
  /// removal). Fails with `InvalidArgument` when `alive` is longer than
  /// the current EdgeId space.
  Status RestoreEdges(const std::vector<bool>& alive);

  size_t node_count() const { return out_.size(); }
  /// Total edges ever added, including removed ones (the EdgeId space).
  size_t edge_capacity() const { return edges_.size(); }
  /// Currently live edges.
  size_t edge_count() const { return live_edges_; }

  bool edge_alive(EdgeId id) const {
    return id < alive_.size() && alive_[id];
  }
  /// Endpoint record for a live or dead edge id (id must be < capacity).
  const Edge& edge(EdgeId id) const { return edges_[id]; }

  /// Live outgoing edge ids of `node`.
  const std::vector<EdgeId>& out_edges(NodeId node) const { return out_[node]; }
  /// Live incoming edge ids of `node`.
  const std::vector<EdgeId>& in_edges(NodeId node) const { return in_[node]; }

  /// True if at least one live edge `src -> dst` exists.
  bool HasEdge(NodeId src, NodeId dst) const;

  /// First live edge id `src -> dst`, or `NotFound`.
  Result<EdgeId> FindEdge(NodeId src, NodeId dst) const;

  /// All live edge ids, ascending.
  std::vector<EdgeId> LiveEdges() const;

  /// Undirected degree (in + out, counting multi-edges) of `node`.
  size_t Degree(NodeId node) const {
    return out_[node].size() + in_[node].size();
  }

  /// Multi-line human-readable dump ("0 -> 1 [e0]" per edge).
  std::string ToString() const;

 private:
  std::vector<Edge> edges_;
  std::vector<bool> alive_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  size_t live_edges_ = 0;
};

/// Global clustering coefficient of the underlying undirected simple graph
/// (3 × triangles / connected triples). Returns 0 for degenerate graphs.
double ClusteringCoefficient(const Digraph& graph);

/// Undirected degree of every node (multi-edges collapsed).
std::vector<size_t> UndirectedDegrees(const Digraph& graph);

/// Average shortest-path length over reachable ordered pairs of the
/// underlying undirected graph; returns 0 if no pairs are reachable.
double AveragePathLength(const Digraph& graph);

}  // namespace pdms

#endif  // PDMS_GRAPH_DIGRAPH_H_
