#include "graph/closure.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/string_util.h"

namespace pdms {

std::string Closure::ToString() const {
  auto render = [](const std::vector<EdgeId>& ids, size_t from, size_t to) {
    std::vector<std::string> parts;
    for (size_t i = from; i < to; ++i) parts.push_back(StrFormat("e%u", ids[i]));
    return Join(parts, ",");
  };
  if (kind == Kind::kCycle) {
    return "cycle(" + render(edges, 0, edges.size()) + ")";
  }
  return "parallel(" + render(edges, 0, split) + " | " +
         render(edges, split, edges.size()) + ")";
}

namespace {

/// Bounded DFS state for directed cycle enumeration rooted at `root`.
/// Only nodes with id >= root are explored, so every cycle is reported
/// exactly once, rooted at its smallest node.
class DirectedCycleSearch {
 public:
  DirectedCycleSearch(const Digraph& graph, const ClosureFinderOptions& options,
                      std::vector<Closure>* out)
      : graph_(graph), options_(options), out_(out),
        on_path_(graph.node_count(), false) {}

  void Run() {
    for (NodeId root = 0; root < graph_.node_count(); ++root) {
      if (out_->size() >= options_.max_closures) return;
      root_ = root;
      on_path_[root] = true;
      Dfs(root);
      on_path_[root] = false;
    }
  }

 private:
  void Dfs(NodeId node) {
    if (out_->size() >= options_.max_closures) return;
    for (EdgeId eid : graph_.out_edges(node)) {
      const NodeId next = graph_.edge(eid).dst;
      if (next == root_) {
        const size_t length = path_.size() + 1;
        if (length >= options_.min_cycle_length &&
            length <= options_.max_cycle_length) {
          path_.push_back(eid);
          Closure closure;
          closure.kind = Closure::Kind::kCycle;
          closure.edges = path_;
          closure.split = path_.size();
          closure.source = root_;
          closure.sink = root_;
          out_->push_back(std::move(closure));
          path_.pop_back();
        }
        continue;
      }
      if (next < root_ || on_path_[next]) continue;
      if (path_.size() + 1 >= options_.max_cycle_length) continue;
      on_path_[next] = true;
      path_.push_back(eid);
      Dfs(next);
      path_.pop_back();
      on_path_[next] = false;
    }
  }

  const Digraph& graph_;
  const ClosureFinderOptions& options_;
  std::vector<Closure>* out_;
  std::vector<bool> on_path_;
  std::vector<EdgeId> path_;
  NodeId root_ = 0;
};

/// Collects every simple directed path (as an edge sequence) from `source`
/// of length <= max_path_length, bucketed by destination.
void EnumeratePathsFrom(const Digraph& graph, NodeId source, size_t max_length,
                        size_t max_paths,
                        std::map<NodeId, std::vector<std::vector<EdgeId>>>* by_sink) {
  std::vector<EdgeId> path;
  std::vector<bool> on_path(graph.node_count(), false);
  on_path[source] = true;
  size_t emitted = 0;

  // Iterative DFS with explicit frames: (node, next out-edge index).
  struct Frame {
    NodeId node;
    size_t next_index;
  };
  std::vector<Frame> stack{{source, 0}};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const auto& outs = graph.out_edges(frame.node);
    if (frame.next_index >= outs.size()) {
      on_path[frame.node] = false;
      if (!path.empty()) path.pop_back();
      stack.pop_back();
      continue;
    }
    const EdgeId eid = outs[frame.next_index++];
    const NodeId next = graph.edge(eid).dst;
    if (on_path[next]) continue;
    path.push_back(eid);
    (*by_sink)[next].push_back(path);
    if (++emitted >= max_paths) return;
    if (path.size() < max_length) {
      on_path[next] = true;
      stack.push_back(Frame{next, 0});
    } else {
      path.pop_back();
    }
  }
}

/// True if the two paths share no edge and no vertex other than the shared
/// source and sink.
bool PathsIndependent(const Digraph& graph, const std::vector<EdgeId>& a,
                      const std::vector<EdgeId>& b, NodeId source, NodeId sink) {
  std::set<EdgeId> edges_a(a.begin(), a.end());
  for (EdgeId e : b) {
    if (edges_a.count(e) > 0) return false;
  }
  std::set<NodeId> interior_a;
  for (size_t i = 0; i + 1 < a.size(); ++i) {
    interior_a.insert(graph.edge(a[i]).dst);
  }
  for (size_t i = 0; i + 1 < b.size(); ++i) {
    const NodeId v = graph.edge(b[i]).dst;
    if (v == source || v == sink || interior_a.count(v) > 0) return false;
  }
  return true;
}

}  // namespace

std::vector<Closure> FindDirectedCycles(const Digraph& graph,
                                        const ClosureFinderOptions& options) {
  std::vector<Closure> closures;
  DirectedCycleSearch(graph, options, &closures).Run();
  return closures;
}

std::vector<Closure> FindParallelPaths(const Digraph& graph,
                                       const ClosureFinderOptions& options) {
  std::vector<Closure> closures;
  for (NodeId source = 0; source < graph.node_count(); ++source) {
    std::map<NodeId, std::vector<std::vector<EdgeId>>> by_sink;
    EnumeratePathsFrom(graph, source, options.max_path_length,
                       options.max_closures, &by_sink);
    for (const auto& [sink, paths] : by_sink) {
      for (size_t i = 0; i < paths.size(); ++i) {
        for (size_t j = i + 1; j < paths.size(); ++j) {
          if (closures.size() >= options.max_closures) return closures;
          if (!PathsIndependent(graph, paths[i], paths[j], source, sink)) {
            continue;
          }
          Closure closure;
          closure.kind = Closure::Kind::kParallelPaths;
          closure.edges = paths[i];
          closure.edges.insert(closure.edges.end(), paths[j].begin(),
                               paths[j].end());
          closure.split = paths[i].size();
          closure.source = source;
          closure.sink = sink;
          closures.push_back(std::move(closure));
        }
      }
    }
  }
  return closures;
}

std::vector<Closure> FindUndirectedCycles(const Digraph& graph,
                                          const ClosureFinderOptions& options) {
  std::vector<Closure> closures;
  std::set<std::vector<EdgeId>> seen;  // canonical = sorted edge ids

  // Undirected incidence: every live edge is traversable from both ends.
  std::vector<std::vector<EdgeId>> incident(graph.node_count());
  for (EdgeId id : graph.LiveEdges()) {
    incident[graph.edge(id).src].push_back(id);
    incident[graph.edge(id).dst].push_back(id);
  }
  auto other_end = [&graph](EdgeId eid, NodeId from) {
    const Edge& e = graph.edge(eid);
    return e.src == from ? e.dst : e.src;
  };

  std::vector<bool> on_path(graph.node_count(), false);
  std::vector<bool> edge_used(graph.edge_capacity(), false);
  std::vector<EdgeId> path;

  // Recursive lambda via explicit function object.
  struct Search {
    const Digraph& graph;
    const ClosureFinderOptions& options;
    const std::vector<std::vector<EdgeId>>& incident;
    decltype(other_end)& other;
    std::vector<bool>& on_path;
    std::vector<bool>& edge_used;
    std::vector<EdgeId>& path;
    std::set<std::vector<EdgeId>>& seen;
    std::vector<Closure>& out;
    NodeId root = 0;

    void Dfs(NodeId node) {
      if (out.size() >= options.max_closures) return;
      for (EdgeId eid : incident[node]) {
        if (edge_used[eid]) continue;
        const NodeId next = other(eid, node);
        if (next == root) {
          const size_t length = path.size() + 1;
          // An undirected "cycle" of length 2 would reuse logical structure
          // only when two distinct edges join the same node pair; length
          // bounds filter the rest.
          if (length >= std::max<size_t>(2, options.min_cycle_length) &&
              length <= options.max_cycle_length) {
            path.push_back(eid);
            std::vector<EdgeId> canonical = path;
            std::sort(canonical.begin(), canonical.end());
            if (seen.insert(canonical).second) {
              Closure closure;
              closure.kind = Closure::Kind::kCycle;
              closure.edges = path;
              closure.split = path.size();
              closure.source = root;
              closure.sink = root;
              out.push_back(std::move(closure));
            }
            path.pop_back();
          }
          continue;
        }
        if (next < root || on_path[next]) continue;
        if (path.size() + 1 >= options.max_cycle_length) continue;
        on_path[next] = true;
        edge_used[eid] = true;
        path.push_back(eid);
        Dfs(next);
        path.pop_back();
        edge_used[eid] = false;
        on_path[next] = false;
      }
    }
  };

  Search search{graph, options, incident, other_end,
                on_path, edge_used, path,  seen,
                closures};
  for (NodeId root = 0; root < graph.node_count(); ++root) {
    if (closures.size() >= options.max_closures) break;
    search.root = root;
    on_path[root] = true;
    search.Dfs(root);
    on_path[root] = false;
  }
  return closures;
}

std::vector<Closure> FindAllDirectedClosures(const Digraph& graph,
                                             const ClosureFinderOptions& options) {
  std::vector<Closure> closures = FindDirectedCycles(graph, options);
  std::vector<Closure> parallels = FindParallelPaths(graph, options);
  closures.insert(closures.end(), std::make_move_iterator(parallels.begin()),
                  std::make_move_iterator(parallels.end()));
  return closures;
}

}  // namespace pdms
