#include "graph/digraph.h"

#include <algorithm>
#include <deque>
#include <set>

#include "util/string_util.h"

namespace pdms {

NodeId Digraph::AddNode() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

Result<EdgeId> Digraph::AddEdge(NodeId src, NodeId dst) {
  if (src >= node_count() || dst >= node_count()) {
    return Status::InvalidArgument(
        StrFormat("edge endpoint out of range: %u -> %u (nodes: %zu)", src, dst,
                  node_count()));
  }
  if (src == dst) {
    return Status::InvalidArgument(
        StrFormat("self-loop mappings are not allowed (node %u)", src));
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{id, src, dst});
  alive_.push_back(true);
  out_[src].push_back(id);
  in_[dst].push_back(id);
  ++live_edges_;
  return id;
}

Status Digraph::RemoveEdge(EdgeId id) {
  if (id >= edges_.size() || !alive_[id]) {
    return Status::NotFound(StrFormat("edge %u does not exist", id));
  }
  alive_[id] = false;
  auto erase_from = [id](std::vector<EdgeId>* list) {
    list->erase(std::remove(list->begin(), list->end(), id), list->end());
  };
  erase_from(&out_[edges_[id].src]);
  erase_from(&in_[edges_[id].dst]);
  --live_edges_;
  return Status::Ok();
}

Status Digraph::RestoreEdges(const std::vector<bool>& alive) {
  if (alive.size() > edges_.size()) {
    return Status::InvalidArgument(
        StrFormat("liveness snapshot covers %zu edges, graph has %zu",
                  alive.size(), edges_.size()));
  }
  alive_.assign(edges_.size(), false);
  std::copy(alive.begin(), alive.end(), alive_.begin());
  for (auto& list : out_) list.clear();
  for (auto& list : in_) list.clear();
  live_edges_ = 0;
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    if (!alive_[id]) continue;
    out_[edges_[id].src].push_back(id);
    in_[edges_[id].dst].push_back(id);
    ++live_edges_;
  }
  return Status::Ok();
}

bool Digraph::HasEdge(NodeId src, NodeId dst) const {
  for (EdgeId id : out_[src]) {
    if (edges_[id].dst == dst) return true;
  }
  return false;
}

Result<EdgeId> Digraph::FindEdge(NodeId src, NodeId dst) const {
  for (EdgeId id : out_[src]) {
    if (edges_[id].dst == dst) return id;
  }
  return Status::NotFound(StrFormat("no edge %u -> %u", src, dst));
}

std::vector<EdgeId> Digraph::LiveEdges() const {
  std::vector<EdgeId> live;
  live.reserve(live_edges_);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    if (alive_[id]) live.push_back(id);
  }
  return live;
}

std::string Digraph::ToString() const {
  std::string out = StrFormat("Digraph(%zu nodes, %zu edges)\n", node_count(),
                              edge_count());
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    if (!alive_[id]) continue;
    out += StrFormat("  %u -> %u [e%u]\n", edges_[id].src, edges_[id].dst, id);
  }
  return out;
}

namespace {

/// Undirected simple-graph neighbor sets (multi-edges and direction dropped).
std::vector<std::set<NodeId>> UndirectedNeighbors(const Digraph& graph) {
  std::vector<std::set<NodeId>> nbrs(graph.node_count());
  for (EdgeId id : graph.LiveEdges()) {
    const Edge& e = graph.edge(id);
    nbrs[e.src].insert(e.dst);
    nbrs[e.dst].insert(e.src);
  }
  return nbrs;
}

}  // namespace

double ClusteringCoefficient(const Digraph& graph) {
  const auto nbrs = UndirectedNeighbors(graph);
  uint64_t triangles_x3 = 0;
  uint64_t triples = 0;
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    const size_t d = nbrs[v].size();
    if (d < 2) continue;
    triples += d * (d - 1) / 2;
    for (auto it = nbrs[v].begin(); it != nbrs[v].end(); ++it) {
      auto jt = it;
      for (++jt; jt != nbrs[v].end(); ++jt) {
        if (nbrs[*it].count(*jt) > 0) ++triangles_x3;
      }
    }
  }
  if (triples == 0) return 0.0;
  return static_cast<double>(triangles_x3) / static_cast<double>(triples);
}

std::vector<size_t> UndirectedDegrees(const Digraph& graph) {
  const auto nbrs = UndirectedNeighbors(graph);
  std::vector<size_t> degrees(graph.node_count());
  for (NodeId v = 0; v < graph.node_count(); ++v) degrees[v] = nbrs[v].size();
  return degrees;
}

double AveragePathLength(const Digraph& graph) {
  const auto nbrs = UndirectedNeighbors(graph);
  uint64_t total = 0;
  uint64_t pairs = 0;
  std::vector<int64_t> dist(graph.node_count());
  for (NodeId s = 0; s < graph.node_count(); ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    dist[s] = 0;
    std::deque<NodeId> queue{s};
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (NodeId w : nbrs[v]) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
      }
    }
    for (NodeId t = 0; t < graph.node_count(); ++t) {
      if (t != s && dist[t] > 0) {
        total += static_cast<uint64_t>(dist[t]);
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0
                    : static_cast<double>(total) / static_cast<double>(pairs);
}

}  // namespace pdms
