#include "graph/topology.h"

#include <cassert>
#include <set>

namespace pdms {
namespace topology {

namespace {
EdgeId MustAdd(Digraph* graph, NodeId src, NodeId dst) {
  Result<EdgeId> result = graph->AddEdge(src, dst);
  assert(result.ok());
  return *result;
}
}  // namespace

Digraph ExampleGraph(ExampleEdges* edges) {
  Digraph graph(4);  // p1..p4 -> 0..3
  ExampleEdges ids;
  ids.m12 = MustAdd(&graph, 0, 1);
  ids.m23 = MustAdd(&graph, 1, 2);
  ids.m34 = MustAdd(&graph, 2, 3);
  ids.m41 = MustAdd(&graph, 3, 0);
  ids.m24 = MustAdd(&graph, 1, 3);
  ids.m21 = ExampleEdges::kAbsent;
  if (edges != nullptr) *edges = ids;
  return graph;
}

Digraph ExampleGraphDirected(ExampleEdges* edges) {
  ExampleEdges ids;
  Digraph graph = ExampleGraph(&ids);
  ids.m21 = MustAdd(&graph, 1, 0);
  if (edges != nullptr) *edges = ids;
  return graph;
}

Digraph ExampleGraphExtended(size_t inserted, ExampleEdges* edges,
                             std::vector<EdgeId>* chain) {
  Digraph graph(4 + inserted);
  ExampleEdges ids;
  std::vector<EdgeId> chain_ids;
  // p1 -> x1 -> ... -> xk -> p2, where the inserted peers get ids 4..3+k.
  NodeId previous = 0;
  for (size_t i = 0; i < inserted; ++i) {
    const NodeId next = static_cast<NodeId>(4 + i);
    chain_ids.push_back(MustAdd(&graph, previous, next));
    previous = next;
  }
  chain_ids.push_back(MustAdd(&graph, previous, 1));
  ids.m12 = chain_ids.front();
  ids.m23 = MustAdd(&graph, 1, 2);
  ids.m34 = MustAdd(&graph, 2, 3);
  ids.m41 = MustAdd(&graph, 3, 0);
  ids.m24 = MustAdd(&graph, 1, 3);
  ids.m21 = ExampleEdges::kAbsent;
  if (edges != nullptr) *edges = ids;
  if (chain != nullptr) *chain = chain_ids;
  return graph;
}

Digraph Ring(size_t n) {
  assert(n >= 2);
  Digraph graph(n);
  for (size_t i = 0; i < n; ++i) {
    MustAdd(&graph, static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  return graph;
}

Digraph ErdosRenyi(size_t n, double p, Rng* rng) {
  Digraph graph(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i != j && rng->Bernoulli(p)) MustAdd(&graph, i, j);
    }
  }
  return graph;
}

Digraph BarabasiAlbert(size_t n, size_t m, Rng* rng) {
  assert(m >= 1);
  assert(n >= m + 1);
  Digraph graph(n);
  // Repeated-node list implements preferential attachment: a node appears
  // once per incident link, so sampling uniformly from it is
  // degree-proportional.
  std::vector<NodeId> attachment;

  // Seed: a (m+1)-clique of undirected links with random orientation.
  for (NodeId i = 0; i <= m; ++i) {
    for (NodeId j = static_cast<NodeId>(i + 1); j <= m; ++j) {
      const bool flip = rng->Bernoulli(0.5);
      MustAdd(&graph, flip ? j : i, flip ? i : j);
      attachment.push_back(i);
      attachment.push_back(j);
    }
  }
  for (NodeId v = static_cast<NodeId>(m + 1); v < n; ++v) {
    std::set<NodeId> targets;
    while (targets.size() < m) {
      targets.insert(attachment[rng->Index(attachment.size())]);
    }
    for (NodeId t : targets) {
      const bool flip = rng->Bernoulli(0.5);
      MustAdd(&graph, flip ? t : v, flip ? v : t);
      attachment.push_back(v);
      attachment.push_back(t);
    }
  }
  return graph;
}

Digraph WattsStrogatz(size_t n, size_t k, double beta, Rng* rng) {
  assert(k % 2 == 0);
  assert(n > k);
  // Build the undirected link set first so rewiring can avoid duplicates.
  std::set<std::pair<NodeId, NodeId>> links;
  auto canon = [](NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  for (NodeId i = 0; i < n; ++i) {
    for (size_t d = 1; d <= k / 2; ++d) {
      links.insert(canon(i, static_cast<NodeId>((i + d) % n)));
    }
  }
  std::vector<std::pair<NodeId, NodeId>> rewired(links.begin(), links.end());
  for (auto& link : rewired) {
    if (!rng->Bernoulli(beta)) continue;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto target = static_cast<NodeId>(rng->Index(n));
      if (target == link.first) continue;
      const auto candidate = canon(link.first, target);
      if (links.count(candidate) > 0) continue;
      links.erase(canon(link.first, link.second));
      links.insert(candidate);
      link = candidate;
      break;
    }
  }
  Digraph graph(n);
  for (const auto& [a, b] : links) {
    const bool flip = rng->Bernoulli(0.5);
    MustAdd(&graph, flip ? b : a, flip ? a : b);
  }
  return graph;
}

std::vector<EdgeId> Symmetrize(Digraph* graph) {
  std::vector<EdgeId> added;
  for (EdgeId id : graph->LiveEdges()) {
    const Edge& e = graph->edge(id);
    if (!graph->HasEdge(e.dst, e.src)) {
      Result<EdgeId> reverse = graph->AddEdge(e.dst, e.src);
      assert(reverse.ok());
      added.push_back(*reverse);
    }
  }
  return added;
}

}  // namespace topology
}  // namespace pdms
