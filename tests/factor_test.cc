#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "factor/belief.h"
#include "factor/exact.h"
#include "factor/factor.h"
#include "factor/factor_graph.h"
#include "factor/sum_product.h"
#include "graph/closure.h"
#include "graph/digraph.h"
#include "graph/topology.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace pdms {
namespace {

// --- Belief -----------------------------------------------------------------

TEST(BeliefTest, NormalizeAndProbability) {
  Belief b{2.0, 6.0};
  const Belief n = b.Normalized();
  EXPECT_DOUBLE_EQ(n.correct, 0.25);
  EXPECT_DOUBLE_EQ(n.incorrect, 0.75);
  EXPECT_DOUBLE_EQ(b.ProbabilityCorrect(), 0.25);
}

TEST(BeliefTest, ZeroBeliefNormalizesToUniform) {
  Belief zero{0.0, 0.0};
  const Belief n = zero.Normalized();
  EXPECT_DOUBLE_EQ(n.correct, 0.5);
  EXPECT_DOUBLE_EQ(n.incorrect, 0.5);
}

TEST(BeliefTest, ProductCombinesEvidence) {
  const Belief a = Belief::FromProbability(0.8);
  const Belief b = Belief::FromProbability(0.8);
  // Two independent 0.8 evidences: 0.64 / (0.64 + 0.04) = 16/17.
  EXPECT_NEAR((a * b).ProbabilityCorrect(), 16.0 / 17.0, 1e-12);
}

TEST(BeliefTest, RescalePreservesRatio) {
  Belief b{1e-200, 3e-200};
  const Belief r = b.Rescaled();
  EXPECT_DOUBLE_EQ(r.incorrect, 1.0);
  EXPECT_NEAR(r.ProbabilityCorrect(), b.ProbabilityCorrect(), 1e-12);
}

TEST(BeliefTest, DampedTowardInterpolates) {
  const Belief old_belief = Belief::FromProbability(0.0);
  const Belief target = Belief::FromProbability(1.0);
  const Belief damped = old_belief.DampedToward(target, 0.25);
  EXPECT_NEAR(damped.ProbabilityCorrect(), 0.25, 1e-12);
}

// --- CycleFeedbackFactor ----------------------------------------------------

TEST(CycleFeedbackFactorTest, ValueRegimes) {
  CycleFeedbackFactor positive({0, 1, 2}, /*positive=*/true, /*delta=*/0.1);
  EXPECT_DOUBLE_EQ(positive.ValueForIncorrectCount(0), 1.0);
  EXPECT_DOUBLE_EQ(positive.ValueForIncorrectCount(1), 0.0);
  EXPECT_DOUBLE_EQ(positive.ValueForIncorrectCount(2), 0.1);
  EXPECT_DOUBLE_EQ(positive.ValueForIncorrectCount(3), 0.1);

  CycleFeedbackFactor negative({0, 1, 2}, /*positive=*/false, /*delta=*/0.1);
  EXPECT_DOUBLE_EQ(negative.ValueForIncorrectCount(0), 0.0);
  EXPECT_DOUBLE_EQ(negative.ValueForIncorrectCount(1), 1.0);
  EXPECT_DOUBLE_EQ(negative.ValueForIncorrectCount(2), 0.9);
}

TEST(CycleFeedbackFactorTest, EvaluateCountsIncorrect) {
  CycleFeedbackFactor factor({0, 1, 2, 3}, /*positive=*/true, /*delta=*/0.2);
  EXPECT_DOUBLE_EQ(factor.Evaluate({true, true, true, true}), 1.0);
  EXPECT_DOUBLE_EQ(factor.Evaluate({true, false, true, true}), 0.0);
  EXPECT_DOUBLE_EQ(factor.Evaluate({false, false, true, true}), 0.2);
  EXPECT_DOUBLE_EQ(factor.Evaluate({false, false, false, false}), 0.2);
}

/// Property check: the O(n) structured message must match the O(2^n) dense
/// table message for random incoming beliefs, any arity, both signs.
class CycleFactorMessageEquivalence
    : public ::testing::TestWithParam<std::tuple<size_t, bool, double>> {};

TEST_P(CycleFactorMessageEquivalence, MatchesDenseTable) {
  const auto [arity, positive, delta] = GetParam();
  std::vector<VarId> vars(arity);
  for (size_t i = 0; i < arity; ++i) vars[i] = static_cast<VarId>(i);
  CycleFeedbackFactor structured(vars, positive, delta);
  const auto dense = TableFactor::FromFactor(structured);

  Rng rng(1000 + arity * 7 + (positive ? 1 : 0));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Belief> incoming(arity);
    for (auto& b : incoming) {
      b = Belief{rng.NextDouble(), rng.NextDouble()};
    }
    for (size_t position = 0; position < arity; ++position) {
      const Belief fast = structured.MessageTo(position, incoming);
      const Belief slow = dense->MessageTo(position, incoming);
      EXPECT_NEAR(fast.correct, slow.correct, 1e-12);
      EXPECT_NEAR(fast.incorrect, slow.incorrect, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AritySweep, CycleFactorMessageEquivalence,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 3, 4, 5, 8, 12),
                       ::testing::Bool(),
                       ::testing::Values(0.01, 0.1, 0.5)));

// --- TableFactor ------------------------------------------------------------

TEST(TableFactorTest, CreateValidatesShape) {
  EXPECT_FALSE(TableFactor::Create({0, 1}, {1.0, 2.0}).ok());
  EXPECT_FALSE(TableFactor::Create({0}, {1.0, -2.0}).ok());
  EXPECT_TRUE(TableFactor::Create({0, 1}, {1.0, 2.0, 3.0, 4.0}).ok());
}

TEST(TableFactorTest, EvaluateUsesBitOrder) {
  auto factor = std::move(TableFactor::Create({0, 1}, {0.0, 1.0, 2.0, 3.0})).value();
  // Row index bit i = variables()[i]; bit0 = first variable.
  EXPECT_DOUBLE_EQ(factor->Evaluate({false, false}), 0.0);
  EXPECT_DOUBLE_EQ(factor->Evaluate({true, false}), 1.0);
  EXPECT_DOUBLE_EQ(factor->Evaluate({false, true}), 2.0);
  EXPECT_DOUBLE_EQ(factor->Evaluate({true, true}), 3.0);
}

TEST(PriorFactorTest, MessageIsPrior) {
  PriorFactor factor(0, 0.7);
  const std::vector<Belief> unit = {Belief::Unit()};
  const Belief message = factor.MessageTo(0, unit);
  EXPECT_DOUBLE_EQ(message.correct, 0.7);
  EXPECT_DOUBLE_EQ(message.incorrect, 0.3);
  EXPECT_DOUBLE_EQ(factor.Evaluate({true}), 0.7);
  EXPECT_DOUBLE_EQ(factor.Evaluate({false}), 0.3);
}

// --- Factor graph construction ----------------------------------------------

TEST(FactorGraphTest, AddAndQuery) {
  FactorGraph graph;
  const VarId a = graph.AddVariable("m12");
  const VarId b = graph.AddVariable("m23");
  ASSERT_TRUE(graph.AddFactor(std::make_unique<PriorFactor>(a, 0.5)).ok());
  Result<FactorIndex> f = graph.AddFactor(std::make_unique<CycleFeedbackFactor>(
      std::vector<VarId>{a, b}, true, 0.1));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(graph.variable_count(), 2u);
  EXPECT_EQ(graph.factor_count(), 2u);
  EXPECT_EQ(graph.factors_of(a).size(), 2u);
  EXPECT_EQ(graph.factors_of(b).size(), 1u);
  EXPECT_EQ(graph.edge_count(), 3u);
}

TEST(FactorGraphTest, RejectsUnknownVariable) {
  FactorGraph graph;
  graph.AddVariable("only");
  EXPECT_FALSE(graph.AddFactor(std::make_unique<PriorFactor>(5, 0.5)).ok());
}

// --- The paper's Section 4.5 example, exactly ------------------------------

/// Builds the introductory-example factor graph: five mappings, priors
/// `prior` each, ∆ = 0.1, feedback f1+ (m12,m23,m34,m41), f2− (m12,m24,m41),
/// f3− (m24,m23,m34). Variable order: m12,m23,m34,m41,m24.
FactorGraph BuildIntroExample(double prior, double delta = 0.1) {
  FactorGraph graph;
  const VarId m12 = graph.AddVariable("m12");
  const VarId m23 = graph.AddVariable("m23");
  const VarId m34 = graph.AddVariable("m34");
  const VarId m41 = graph.AddVariable("m41");
  const VarId m24 = graph.AddVariable("m24");
  for (VarId v : {m12, m23, m34, m41, m24}) {
    EXPECT_TRUE(graph.AddFactor(std::make_unique<PriorFactor>(v, prior)).ok());
  }
  EXPECT_TRUE(graph.AddFactor(std::make_unique<CycleFeedbackFactor>(
                      std::vector<VarId>{m12, m23, m34, m41}, true, delta))
                  .ok());
  EXPECT_TRUE(graph.AddFactor(std::make_unique<CycleFeedbackFactor>(
                      std::vector<VarId>{m12, m24, m41}, false, delta))
                  .ok());
  EXPECT_TRUE(graph.AddFactor(std::make_unique<CycleFeedbackFactor>(
                      std::vector<VarId>{m24, m23, m34}, false, delta))
                  .ok());
  return graph;
}

TEST(ExactInferenceTest, IntroExampleMatchesPaper) {
  // Hand-derived ground truth (DESIGN.md Section 2): with uniform priors the
  // joint mass is Z = 2.75, P(m23 = correct) = 1.623 / 2.75 = 0.59018...,
  // P(m24 = correct) = 0.841 / 2.75 = 0.30581... — the paper's "0.59 / 0.3".
  const FactorGraph graph = BuildIntroExample(0.5);
  Result<std::vector<Belief>> marginals = ExactMarginalsBruteForce(graph);
  ASSERT_TRUE(marginals.ok());
  EXPECT_NEAR((*marginals)[1].ProbabilityCorrect(), 1.623 / 2.75, 1e-12);
  EXPECT_NEAR((*marginals)[4].ProbabilityCorrect(), 0.841 / 2.75, 1e-12);
  // The three other mappings of cycle f1 share m23's posterior by symmetry.
  EXPECT_NEAR((*marginals)[0].ProbabilityCorrect(), 1.623 / 2.75, 1e-12);
  EXPECT_NEAR((*marginals)[2].ProbabilityCorrect(), 1.623 / 2.75, 1e-12);
  EXPECT_NEAR((*marginals)[3].ProbabilityCorrect(), 1.623 / 2.75, 1e-12);
}

TEST(ExactInferenceTest, PartitionFunctionIntroExample) {
  const FactorGraph graph = BuildIntroExample(0.5);
  Result<double> z = ExactPartitionFunction(graph);
  ASSERT_TRUE(z.ok());
  // Each uniform prior contributes a factor 0.5: Z = 2.75 / 2^5.
  EXPECT_NEAR(*z, 2.75 / 32.0, 1e-12);
}

TEST(ExactInferenceTest, VariableEliminationMatchesBruteForce) {
  const FactorGraph graph = BuildIntroExample(0.7);
  const auto brute = ExactMarginalsBruteForce(graph);
  ASSERT_TRUE(brute.ok());
  for (VarId v = 0; v < graph.variable_count(); ++v) {
    Result<Belief> ve = ExactMarginalVariableElimination(graph, v);
    ASSERT_TRUE(ve.ok());
    EXPECT_NEAR(ve->ProbabilityCorrect(), (*brute)[v].ProbabilityCorrect(),
                1e-10)
        << "variable " << v;
  }
}

TEST(ExactInferenceTest, BruteForceRejectsLargeGraphs) {
  FactorGraph graph;
  for (int i = 0; i < 30; ++i) graph.AddVariable("v");
  EXPECT_FALSE(ExactMarginalsBruteForce(graph).ok());
}

// --- Loopy sum-product -------------------------------------------------------

TEST(SumProductTest, IntroExampleConvergesNearExact) {
  const FactorGraph graph = BuildIntroExample(0.5);
  SumProductOptions options;
  options.max_iterations = 100;
  SumProductEngine engine(graph, options);
  const SumProductResult result = engine.Run();
  EXPECT_TRUE(result.converged);
  // Loopy BP is approximate here (the factor graph has cycles); the paper
  // reports < 6% relative error. Allow a conservative envelope.
  EXPECT_NEAR(result.posteriors[1].ProbabilityCorrect(), 1.623 / 2.75, 0.06);
  EXPECT_NEAR(result.posteriors[4].ProbabilityCorrect(), 0.841 / 2.75, 0.06);
  // The faulty mapping must stay below the paper's θ = 0.5 and the sound
  // ones above, so routing decisions match Section 4.5.
  EXPECT_LT(result.posteriors[4].ProbabilityCorrect(), 0.5);
  EXPECT_GT(result.posteriors[1].ProbabilityCorrect(), 0.5);
}

TEST(SumProductTest, TreeGraphIsExactInTwoIterations) {
  // Single positive cycle of length n: its factor graph (one feedback
  // factor + n priors) is a tree, so flooding is exact after 2 iterations
  // (Section 4.3: "exact messages ... in at most two iterations").
  const size_t n = 6;
  const double delta = 0.1;
  FactorGraph graph;
  std::vector<VarId> vars;
  for (size_t i = 0; i < n; ++i) vars.push_back(graph.AddVariable("m"));
  for (VarId v : vars) {
    ASSERT_TRUE(graph.AddFactor(std::make_unique<PriorFactor>(v, 0.5)).ok());
  }
  ASSERT_TRUE(graph.AddFactor(
                  std::make_unique<CycleFeedbackFactor>(vars, true, delta))
                  .ok());

  SumProductOptions options;
  options.max_iterations = 2;
  SumProductEngine engine(graph, options);
  const SumProductResult result = engine.Run();

  // Closed form (DESIGN.md): P(C) = (1 + ∆(2^{n−1}−n)) /
  //                                 (1 + ∆(2^{n−1}−n) + ∆(2^{n−1}−1)).
  const double half = std::pow(2.0, static_cast<double>(n - 1));
  const double numerator = 1.0 + delta * (half - static_cast<double>(n));
  const double z = numerator + delta * (half - 1.0);
  for (VarId v : vars) {
    EXPECT_NEAR(result.posteriors[v].ProbabilityCorrect(), numerator / z,
                1e-12);
  }
}

TEST(SumProductTest, SchedulesAgreeOnFixedPoint) {
  const FactorGraph graph = BuildIntroExample(0.7);
  std::vector<Belief> reference;
  for (auto schedule : {SumProductSchedule::kFlooding, SumProductSchedule::kSerial,
                        SumProductSchedule::kRandomSerial}) {
    SumProductOptions options;
    options.schedule = schedule;
    options.max_iterations = 200;
    SumProductEngine engine(graph, options);
    const SumProductResult result = engine.Run();
    EXPECT_TRUE(result.converged);
    if (reference.empty()) {
      reference = result.posteriors;
      continue;
    }
    for (VarId v = 0; v < graph.variable_count(); ++v) {
      EXPECT_NEAR(result.posteriors[v].ProbabilityCorrect(),
                  reference[v].ProbabilityCorrect(), 1e-6);
    }
  }
}

TEST(SumProductTest, MessageLossStillConverges) {
  const FactorGraph graph = BuildIntroExample(0.8);
  SumProductOptions baseline_options;
  baseline_options.max_iterations = 300;
  SumProductEngine baseline(graph, baseline_options);
  const SumProductResult reference = baseline.Run();
  ASSERT_TRUE(reference.converged);

  SumProductOptions lossy_options;
  lossy_options.max_iterations = 3000;
  lossy_options.message_send_probability = 0.3;
  lossy_options.seed = 9;
  SumProductEngine lossy(graph, lossy_options);
  const SumProductResult result = lossy.Run();
  EXPECT_TRUE(result.converged);
  // Same fixed point as the lossless run (Section 5.1.3: lost messages
  // only slow convergence down, they do not change the result).
  for (VarId v = 0; v < graph.variable_count(); ++v) {
    EXPECT_NEAR(result.posteriors[v].ProbabilityCorrect(),
                reference.posteriors[v].ProbabilityCorrect(), 1e-3);
  }
  EXPECT_GT(result.iterations, reference.iterations);
}

TEST(SumProductTest, TrajectoryRecordsEveryIteration) {
  const FactorGraph graph = BuildIntroExample(0.7);
  SumProductOptions options;
  options.record_trajectory = true;
  options.max_iterations = 40;
  SumProductEngine engine(graph, options);
  const SumProductResult result = engine.Run();
  ASSERT_EQ(result.trajectory.size(), result.iterations);
  for (const auto& snapshot : result.trajectory) {
    ASSERT_EQ(snapshot.size(), graph.variable_count());
    for (double p : snapshot) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(SumProductTest, DampingReachesSameFixedPoint) {
  const FactorGraph graph = BuildIntroExample(0.6);
  SumProductOptions plain;
  plain.max_iterations = 300;
  const SumProductResult undamped = SumProductEngine(graph, plain).Run();
  SumProductOptions damped_options = plain;
  damped_options.damping = 0.5;
  const SumProductResult damped = SumProductEngine(graph, damped_options).Run();
  ASSERT_TRUE(undamped.converged);
  ASSERT_TRUE(damped.converged);
  for (VarId v = 0; v < graph.variable_count(); ++v) {
    EXPECT_NEAR(damped.posteriors[v].ProbabilityCorrect(),
                undamped.posteriors[v].ProbabilityCorrect(), 1e-5);
  }
}

TEST(SumProductTest, PriorOnlyGraphReturnsPriors) {
  FactorGraph graph;
  const VarId v = graph.AddVariable("m");
  ASSERT_TRUE(graph.AddFactor(std::make_unique<PriorFactor>(v, 0.73)).ok());
  SumProductEngine engine(graph, SumProductOptions{});
  const SumProductResult result = engine.Run();
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.posteriors[v].ProbabilityCorrect(), 0.73, 1e-12);
}

/// Property: on factor graphs with the *structure the paper induces* —
/// cycle-feedback factors coming from closures of a sparse random peer
/// network, with feedback signs generated from a hidden ground-truth
/// assignment — loopy BP posteriors stay close to exact marginals. (On
/// arbitrarily overlapping dense scopes loopy BP is known to deviate much
/// more; that regime does not arise from mapping networks.)
class RandomGraphBpAccuracy : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphBpAccuracy, CloseToExact) {
  Rng rng(GetParam());
  // Sparse random peer network; variables are its mapping edges.
  const Digraph net = topology::ErdosRenyi(6, 0.35, &rng);
  if (net.edge_count() == 0 || net.edge_count() > 20) {
    GTEST_SKIP() << "degenerate draw";
  }
  ClosureFinderOptions closure_options;
  closure_options.max_cycle_length = 6;
  const auto closures = FindDirectedCycles(net, closure_options);

  // Hidden ground truth: each mapping is incorrect with probability 0.25.
  std::vector<bool> truth;
  for (EdgeId e = 0; e < net.edge_capacity(); ++e) {
    truth.push_back(!rng.Bernoulli(0.25));
  }

  FactorGraph graph;
  std::vector<VarId> var_of_edge(net.edge_capacity());
  for (EdgeId e : net.LiveEdges()) {
    var_of_edge[e] = graph.AddVariable(StrFormat("m%u", e));
    ASSERT_TRUE(
        graph.AddFactor(std::make_unique<PriorFactor>(var_of_edge[e], 0.6))
            .ok());
  }
  for (const auto& closure : closures) {
    size_t incorrect = 0;
    std::vector<VarId> scope;
    for (EdgeId e : closure.edges) {
      scope.push_back(var_of_edge[e]);
      if (!truth[e]) ++incorrect;
    }
    // Observed feedback per the paper's model: positive iff the closure
    // composes to the identity (all correct; compensation is rare and
    // ignored in this generator).
    const bool positive = incorrect == 0;
    ASSERT_TRUE(graph
                    .AddFactor(std::make_unique<CycleFeedbackFactor>(
                        scope, positive, 0.1))
                    .ok());
  }

  const auto exact = ExactMarginalsBruteForce(graph);
  ASSERT_TRUE(exact.ok());
  SumProductOptions options;
  options.max_iterations = 500;
  options.damping = 0.3;  // Guards against oscillation on adversarial draws.
  const SumProductResult bp = SumProductEngine(graph, options).Run();
  for (VarId v = 0; v < graph.variable_count(); ++v) {
    EXPECT_NEAR(bp.posteriors[v].ProbabilityCorrect(),
                (*exact)[v].ProbabilityCorrect(), 0.15)
        << "seed " << GetParam() << " variable " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphBpAccuracy,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace pdms
