#include <algorithm>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "core/peer.h"
#include "graph/topology.h"
#include "mapping/mapping_generator.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace pdms {
namespace {

constexpr size_t kAttrs = 4;

/// Harness around one peer of the example graph with direct access to its
/// message-level API (the engine normally drives this).
class PeerTest : public ::testing::Test {
 protected:
  PeerTest() : graph_(topology::ExampleGraph(&edges_)) {
    options_.probe_ttl = 5;
    options_.delta_override = 0.1;
    for (NodeId p = 0; p < graph_.node_count(); ++p) {
      Schema schema(StrFormat("p%u", p + 1));
      for (size_t a = 0; a < kAttrs; ++a) {
        EXPECT_TRUE(schema.AddAttribute(StrFormat("a%zu", a)).ok());
      }
      peers_.push_back(std::make_unique<Peer>(p, std::move(schema), &graph_,
                                              &options_));
    }
    Rng rng(3);
    for (EdgeId e : graph_.LiveEdges()) {
      EXPECT_TRUE(peers_[graph_.edge(e).src]
                      ->AddMapping(e, MakeConceptMapping(
                                          StrFormat("m%u", e), kAttrs,
                                          {}, &rng))
                      .ok());
    }
  }

  /// A positive-feedback announcement for the f1 cycle on attribute 0.
  FeedbackAnnouncement F1Announcement(FeedbackSign sign = FeedbackSign::kPositive) {
    FeedbackAnnouncement announcement;
    announcement.closure.kind = Closure::Kind::kCycle;
    announcement.closure.edges = {edges_.m12, edges_.m23, edges_.m34,
                                  edges_.m41};
    announcement.closure.split = 4;
    announcement.closure.source = 0;
    announcement.closure.sink = 0;
    announcement.delta = 0.1;
    AttributeFeedback feedback;
    feedback.root_attribute = 0;
    feedback.sign = sign;
    for (EdgeId e : announcement.closure.edges) {
      feedback.members.push_back(MappingVarKey{e, 0});
    }
    announcement.feedback = {feedback};
    return announcement;
  }

  topology::ExampleEdges edges_;
  Digraph graph_;
  EngineOptions options_;
  std::vector<std::unique_ptr<Peer>> peers_;
};

TEST_F(PeerTest, AddMappingValidatesOwnership) {
  Rng rng(1);
  // m34 starts at peer 2, not peer 0.
  EXPECT_EQ(peers_[0]
                ->AddMapping(edges_.m34,
                             MakeConceptMapping("x", kAttrs, {}, &rng))
                .code(),
            StatusCode::kInvalidArgument);
  // Duplicate registration.
  EXPECT_EQ(peers_[0]
                ->AddMapping(edges_.m12,
                             MakeConceptMapping("x", kAttrs, {}, &rng))
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(PeerTest, PosteriorWithoutEvidenceIsPrior) {
  const MappingVarKey var{edges_.m12, 0};
  EXPECT_DOUBLE_EQ(peers_[0]->Posterior(var), 0.5);
  peers_[0]->SetPrior(var, 0.8);
  EXPECT_DOUBLE_EQ(peers_[0]->Posterior(var), 0.8);
  EXPECT_FALSE(peers_[0]->HasEvidence(var));
}

TEST_F(PeerTest, IngestFeedbackCreatesReplicaForOwnersOnly) {
  const FeedbackAnnouncement announcement = F1Announcement();
  peers_[0]->IngestFeedback(announcement);  // owns m12: replica
  EXPECT_EQ(peers_[0]->replica_count(), 1u);
  EXPECT_TRUE(peers_[0]->HasEvidence(MappingVarKey{edges_.m12, 0}));
  // Ingesting twice is idempotent.
  peers_[0]->IngestFeedback(announcement);
  EXPECT_EQ(peers_[0]->replica_count(), 1u);
}

TEST_F(PeerTest, NeutralFeedbackCreatesNoReplica) {
  peers_[0]->IngestFeedback(F1Announcement(FeedbackSign::kNeutral));
  EXPECT_EQ(peers_[0]->replica_count(), 0u);
}

TEST_F(PeerTest, ComputeRoundMovesPosteriorTowardEvidence) {
  peers_[0]->IngestFeedback(F1Announcement(FeedbackSign::kPositive));
  peers_[0]->ComputeRound();
  // Positive cycle evidence raises the posterior above the 0.5 prior.
  EXPECT_GT(peers_[0]->Posterior(MappingVarKey{edges_.m12, 0}), 0.5);
  peers_[1]->IngestFeedback(F1Announcement(FeedbackSign::kNegative));
  peers_[1]->ComputeRound();
  EXPECT_LT(peers_[1]->Posterior(MappingVarKey{edges_.m23, 0}), 0.5);
}

TEST_F(PeerTest, AbsorbBeliefUpdateAffectsFactorMessages) {
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();
  const double before = peers_[0]->Posterior(MappingVarKey{edges_.m12, 0});

  // A remote peer reports strong belief that m23 is INCORRECT; under a
  // positive cycle factor this pulls m12 upward (if the cycle still
  // composed to the identity, somebody else's error must compensate) —
  // or at least changes the message. m23 is member position 1 of the f1
  // closure (m12, m23, m34, m41).
  BeliefUpdate update;
  update.factor = FactorId::Make(F1Announcement().closure, 0);
  update.position = 1;
  update.belief = Belief{0.05, 0.95};
  peers_[0]->AbsorbBeliefUpdate(update);
  peers_[0]->ComputeRound();
  EXPECT_NE(peers_[0]->Posterior(MappingVarKey{edges_.m12, 0}), before);
}

TEST_F(PeerTest, AbsorbIgnoresUnknownFactorAndOwnVariables) {
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();
  const double before = peers_[0]->Posterior(MappingVarKey{edges_.m12, 0});

  BeliefUpdate unknown;
  unknown.factor = FactorId{0x9, 0x9};
  unknown.position = 1;
  unknown.belief = Belief{0.0, 1.0};
  peers_[0]->AbsorbBeliefUpdate(unknown);

  // A forged update about the peer's OWN variable (m12 = position 0) must
  // be ignored.
  BeliefUpdate forged;
  forged.factor = FactorId::Make(F1Announcement().closure, 0);
  forged.position = 0;
  forged.belief = Belief{0.0, 1.0};
  peers_[0]->AbsorbBeliefUpdate(forged);

  // As must an update whose position lies outside the factor's scope.
  BeliefUpdate out_of_range;
  out_of_range.factor = FactorId::Make(F1Announcement().closure, 0);
  out_of_range.position = 99;
  out_of_range.belief = Belief{0.0, 1.0};
  peers_[0]->AbsorbBeliefUpdate(out_of_range);

  peers_[0]->ComputeRound();
  EXPECT_NEAR(peers_[0]->Posterior(MappingVarKey{edges_.m12, 0}), before,
              1e-12);
}

TEST_F(PeerTest, CollectOutgoingBeliefsTargetsOtherOwners) {
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();
  const auto outgoing = peers_[0]->CollectOutgoingBeliefs();
  // Other owners of f1's members: peers 1, 2, 3.
  ASSERT_EQ(outgoing.size(), 3u);
  std::set<PeerId> recipients;
  for (const Outgoing& message : outgoing) {
    recipients.insert(message.to);
    const auto& bundle = std::get<BeliefMessage>(message.payload);
    ASSERT_EQ(bundle.groups.size(), 1u);
    ASSERT_EQ(bundle.update_count(), 1u);
    // First mention on every link: the alias binding declares the full
    // fingerprint, and the entry addresses m12 by its member position (0)
    // in f1's scope.
    EXPECT_EQ(bundle.groups[0].alias, 0u);
    ASSERT_FALSE(bundle.groups[0].id.IsNil());
    EXPECT_EQ(bundle.groups[0].id, FactorId::Make(F1Announcement().closure, 0));
    EXPECT_EQ(bundle.entries[0].position, 0u);
  }
  EXPECT_EQ(recipients, (std::set<PeerId>{1, 2, 3}));
}

/// The bundle peers_[from] would send to `to`, or a default-constructed
/// message when no route exists.
BeliefMessage BundleFromTo(Peer& from, PeerId to) {
  for (const Outgoing& message : from.CollectOutgoingBeliefs()) {
    if (message.to == to) return std::get<BeliefMessage>(message.payload);
  }
  return BeliefMessage{};
}

TEST_F(PeerTest, AliasNegotiationReachesBareAliasesAfterAck) {
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[1]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();
  peers_[1]->ComputeRound();

  // First mention p0 -> p1: the binding declares the full fingerprint.
  BeliefMessage first = BundleFromTo(*peers_[0], 1);
  ASSERT_EQ(first.groups.size(), 1u);
  EXPECT_FALSE(first.groups[0].id.IsNil());
  EXPECT_EQ(first.ack, 0u);  // p0 has heard nothing from p1 yet

  // p1 records the binding; its reverse bundle acks the bound prefix.
  ASSERT_TRUE(peers_[1]->AbsorbBeliefBundle(0, first).ok());
  BeliefMessage reverse = BundleFromTo(*peers_[1], 0);
  EXPECT_EQ(reverse.ack, 1u);
  EXPECT_FALSE(reverse.groups[0].id.IsNil());  // p1's own binding unacked

  // Once the ack lands, p0 emits the bare alias — 1 varint byte on the
  // wire where 16 fingerprint bytes used to be.
  ASSERT_TRUE(peers_[0]->AbsorbBeliefBundle(1, reverse).ok());
  BeliefMessage steady = BundleFromTo(*peers_[0], 1);
  ASSERT_EQ(steady.groups.size(), 1u);
  EXPECT_TRUE(steady.groups[0].id.IsNil());
  EXPECT_EQ(steady.groups[0].alias, first.groups[0].alias);
  EXPECT_LT(ApproximateWireSize(Payload{steady}),
            ApproximateWireSize(Payload{first}));

  // The bare-alias bundle still routes to the right factor slot.
  ASSERT_TRUE(peers_[1]->AbsorbBeliefBundle(0, steady).ok());
}

TEST_F(PeerTest, FirstMentionDropRefallsBackToFullId) {
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[1]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();

  // The first mention is lost in transit (never absorbed by p1). With no
  // ack, every subsequent bundle re-declares the full fingerprint — the
  // encoding degrades to full-id traffic under loss, never to an alias
  // the receiver cannot resolve.
  const BeliefMessage dropped = BundleFromTo(*peers_[0], 1);
  ASSERT_FALSE(dropped.groups[0].id.IsNil());
  const BeliefMessage retry = BundleFromTo(*peers_[0], 1);
  ASSERT_FALSE(retry.groups[0].id.IsNil());

  // The retry is self-contained: p1 can absorb it without ever having
  // seen the dropped first mention.
  ASSERT_TRUE(peers_[1]->AbsorbBeliefBundle(0, retry).ok());
  EXPECT_EQ(BundleFromTo(*peers_[1], 0).ack, 1u);
}

TEST_F(PeerTest, UnknownAliasStaleEpochAndOverflowRejectedWithStatus) {
  peers_[1]->IngestFeedback(F1Announcement());
  const FactorId id = FactorId::Make(F1Announcement().closure, 0);

  // Bare alias without a prior binding declaration: rejected, not guessed.
  BeliefMessage unknown;
  unknown.AddGroup(5, FactorId{}, {BeliefEntry{1, Belief{0.1, 0.9}}});
  EXPECT_EQ(peers_[1]->AbsorbBeliefBundle(0, unknown).code(),
            StatusCode::kNotFound);

  // Alias beyond the per-session bound: surfaced as OutOfRange and never
  // stored in the binding table — but the group's full fingerprint is
  // still a valid address, so its updates are absorbed anyway (overflow
  // tail degrades to full-id semantics instead of losing beliefs).
  peers_[1]->ComputeRound();
  const double before_overflow =
      peers_[1]->Posterior(MappingVarKey{edges_.m23, 0});
  BeliefMessage absurd;
  absurd.AddGroup(kMaxAliasesPerSession, id, {BeliefEntry{0, Belief{0.01, 0.99}}});
  EXPECT_EQ(peers_[1]->AbsorbBeliefBundle(0, absurd).code(),
            StatusCode::kOutOfRange);
  peers_[1]->ComputeRound();
  EXPECT_NE(peers_[1]->Posterior(MappingVarKey{edges_.m23, 0}),
            before_overflow);
  EXPECT_EQ(BundleFromTo(*peers_[1], 0).ack, 0u);  // binding not recorded

  // Wrong epoch: the whole bundle refers to a dead numbering.
  BeliefMessage stale;
  stale.epoch = 7;
  stale.AddGroup(0, id, {BeliefEntry{1, Belief{0.1, 0.9}}});
  EXPECT_EQ(peers_[1]->AbsorbBeliefBundle(0, stale).code(),
            StatusCode::kFailedPrecondition);

  // A bad group does not poison the rest of the bundle: the valid binding
  // after it is still absorbed (first-error-wins Status, like ingest).
  BeliefMessage mixed;
  mixed.AddGroup(5, FactorId{}, {BeliefEntry{1, Belief{0.1, 0.9}}});
  mixed.AddGroup(0, id, {BeliefEntry{0, Belief{0.2, 0.8}}});
  EXPECT_EQ(peers_[1]->AbsorbBeliefBundle(0, mixed).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(BundleFromTo(*peers_[1], 0).ack, 1u);  // alias 0 got bound

  // A rebind of an established alias to a different factor is rejected.
  BeliefMessage rebind;
  rebind.AddGroup(0, FactorId{0xdead, 0xbeef}, {BeliefEntry{1, Belief{0.1, 0.9}}});
  EXPECT_EQ(peers_[1]->AbsorbBeliefBundle(0, rebind).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PeerTest, ForgedAckIsCorrectedByTheNextGenuineBundle) {
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[1]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();
  peers_[1]->ComputeRound();
  ASSERT_FALSE(BundleFromTo(*peers_[0], 1).groups[0].id.IsNil());

  // An attacker claiming to be p1 acks a binding p1 never saw: p0 stops
  // declaring the fingerprint for one exchange...
  BeliefMessage forged_ack;
  forged_ack.ack = 1;
  ASSERT_TRUE(peers_[0]->AbsorbBeliefBundle(1, forged_ack).ok());
  EXPECT_TRUE(BundleFromTo(*peers_[0], 1).groups[0].id.IsNil());

  // ...but the next genuine bundle from p1 carries its real ack (0), and
  // latest-wins restores the full-id fallback instead of ratcheting the
  // forgery in forever.
  ASSERT_TRUE(peers_[0]->AbsorbBeliefBundle(1, BundleFromTo(*peers_[1], 0)).ok());
  EXPECT_FALSE(BundleFromTo(*peers_[0], 1).groups[0].id.IsNil());
}

TEST_F(PeerTest, OutOfBoundsEntryRangeRejectedWithStatus) {
  peers_[1]->IngestFeedback(F1Announcement());
  const FactorId id = FactorId::Make(F1Announcement().closure, 0);

  // A group whose entry range lies outside the bundle's flat array is
  // untrusted input like everything else: rejected with a Status, and the
  // well-formed group after it still absorbed.
  BeliefMessage forged;
  forged.AddGroup(0, id, {BeliefEntry{0, Belief{0.2, 0.8}}});
  forged.groups[0].entry_begin = 0xffffffffu;
  forged.AddGroup(1, FactorId{0x7, 0x7}, {BeliefEntry{0, Belief{0.3, 0.7}}});
  EXPECT_EQ(peers_[1]->AbsorbBeliefBundle(0, forged).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BundleFromTo(*peers_[1], 0).ack, 0u);  // alias 0 never bound

  BeliefMessage overflow;
  overflow.AddGroup(0, id, {BeliefEntry{0, Belief{0.2, 0.8}}});
  overflow.groups[0].entry_count = 0xffffffffu;  // begin + count overflows
  EXPECT_EQ(peers_[1]->AbsorbBeliefBundle(0, overflow).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PeerTest, BundleEntriesRespectForgedAndMalformedRules) {
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();
  const double before = peers_[0]->Posterior(MappingVarKey{edges_.m12, 0});
  const FactorId id = FactorId::Make(F1Announcement().closure, 0);

  // Position 0 is p0's own variable (forged) and 99 is out of range: both
  // entries are ignored even though the group itself is well-formed.
  BeliefMessage bundle;
  bundle.AddGroup(0, id,
                  {BeliefEntry{0, Belief{0.0, 1.0}}, BeliefEntry{99, Belief{0.0, 1.0}}});
  EXPECT_TRUE(peers_[0]->AbsorbBeliefBundle(3, bundle).ok());
  peers_[0]->ComputeRound();
  EXPECT_NEAR(peers_[0]->Posterior(MappingVarKey{edges_.m12, 0}), before,
              1e-12);
}

TEST_F(PeerTest, AliasTablesRebuildAfterRemoveMapping) {
  // Establish a fully-acked session between p0 and p1 over f1.
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[1]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();
  peers_[1]->ComputeRound();
  ASSERT_TRUE(peers_[1]->AbsorbBeliefBundle(0, BundleFromTo(*peers_[0], 1)).ok());
  ASSERT_TRUE(peers_[0]->AbsorbBeliefBundle(1, BundleFromTo(*peers_[1], 0)).ok());
  const BeliefMessage steady = BundleFromTo(*peers_[0], 1);
  ASSERT_TRUE(steady.groups[0].id.IsNil());
  ASSERT_EQ(steady.epoch, 0u);

  // Network-wide removal of m24 (not an f1 member): the engine calls
  // RemoveMapping on every peer, so both endpoints bump their epoch and
  // rebuild their tables even though the f1 replica survives.
  peers_[0]->RemoveMapping(edges_.m24);
  peers_[1]->RemoveMapping(edges_.m24);
  EXPECT_EQ(peers_[0]->replica_count(), 1u);

  // An in-flight bundle from the old numbering is rejected, not misrouted.
  EXPECT_EQ(peers_[1]->AbsorbBeliefBundle(0, steady).code(),
            StatusCode::kFailedPrecondition);

  // The fresh session renegotiates deterministically: new epoch, alias
  // re-assigned from replica order, full fingerprint declared again.
  const BeliefMessage fresh = BundleFromTo(*peers_[0], 1);
  EXPECT_EQ(fresh.epoch, 1u);
  ASSERT_EQ(fresh.groups.size(), 1u);
  EXPECT_EQ(fresh.groups[0].alias, 0u);
  EXPECT_FALSE(fresh.groups[0].id.IsNil());
  ASSERT_TRUE(peers_[1]->AbsorbBeliefBundle(0, fresh).ok());
  ASSERT_TRUE(peers_[0]->AbsorbBeliefBundle(1, BundleFromTo(*peers_[1], 0)).ok());
  EXPECT_TRUE(BundleFromTo(*peers_[0], 1).groups[0].id.IsNil());
}

// --- Quantized value precision ------------------------------------------------

TEST(ValueRankTest, TierFormulasClampAndOrder) {
  ValuePrecisionOptions precision;
  precision.error_budget = 1e-3;  // fine tier: ceil(log2(8000)) = 13 bits
  EXPECT_EQ(ValueRankBits(precision, 0), 7u);
  EXPECT_EQ(ValueRankBits(precision, 1), 10u);
  EXPECT_EQ(ValueRankBits(precision, 2), 13u);
  // Without the exact tail, the top rank still ships the fine tier.
  EXPECT_EQ(ValueRankBits(precision, kValueRankExact), 13u);
  precision.exact_at_convergence = true;
  EXPECT_EQ(ValueRankBits(precision, kValueRankExact), 0u);  // raw doubles

  // Non-adaptive sessions pin every rank at the fine tier.
  precision.exact_at_convergence = false;
  precision.adaptive = false;
  for (uint32_t rank = 0; rank < kValueRankCount; ++rank) {
    EXPECT_EQ(ValueRankBits(precision, rank), 13u);
  }

  // Generous budgets hit the 2-bit floor instead of underflowing.
  ValuePrecisionOptions loose;
  loose.error_budget = 1.0;  // fine = 3 bits
  EXPECT_EQ(ValueRankBits(loose, 0), 2u);
  EXPECT_EQ(ValueRankBits(loose, 1), 2u);
  EXPECT_EQ(ValueRankBits(loose, 2), 3u);

  // A zero budget means quantization is off at every rank.
  ValuePrecisionOptions off;
  for (uint32_t rank = 0; rank < kValueRankCount; ++rank) {
    EXPECT_EQ(ValueRankBits(off, rank), 0u);
  }
}

TEST(ValueRankTest, TargetTracksTheResidual) {
  ValuePrecisionOptions precision;
  precision.error_budget = 1e-3;
  const double tolerance = 1e-7;
  EXPECT_EQ(ValueRankTarget(precision, 1.0, tolerance), 0u);    // > 64eps
  EXPECT_EQ(ValueRankTarget(precision, 1e-2, tolerance), 1u);   // > 8eps
  EXPECT_EQ(ValueRankTarget(precision, 1e-4, tolerance), 2u);   // near done
  // The exact tail engages only below the convergence tolerance.
  EXPECT_EQ(ValueRankTarget(precision, 1e-8, tolerance), 2u);
  precision.exact_at_convergence = true;
  EXPECT_EQ(ValueRankTarget(precision, 1e-8, tolerance), kValueRankExact);
  EXPECT_EQ(ValueRankTarget(precision, 1.0, tolerance), 0u);
  // Non-adaptive: always the fine tier (the exact tail still applies).
  precision.exact_at_convergence = false;
  precision.adaptive = false;
  EXPECT_EQ(ValueRankTarget(precision, 1.0, tolerance), 2u);
}

TEST_F(PeerTest, QuantizedLinksStepUpMonotonicallyToTheFineTier) {
  options_.value_precision.error_budget = 1e-3;
  peers_[0]->IngestFeedback(F1Announcement());
  uint32_t previous_bits = 0;
  for (int round = 0; round < 60; ++round) {
    peers_[0]->ComputeRound();
    const BeliefMessage bundle = BundleFromTo(*peers_[0], 1);
    // Precision only ever ratchets up: a receiver never sees the wire
    // degrade mid-session.
    EXPECT_GE(bundle.value_bits, previous_bits) << "round " << round;
    previous_bits = bundle.value_bits;
    // Every entry ships its dequantized realization: re-quantizing it is a
    // fixed point, so sim (struct-passing) and socket (codec) transports
    // deliver identical values.
    for (const BeliefEntry& entry : bundle.entries) {
      EXPECT_EQ(QuantizeLogOdds(entry.belief, bundle.value_bits), entry.quant);
    }
  }
  EXPECT_EQ(previous_bits, 13u);  // residual shrank: fine tier reached
}

TEST_F(PeerTest, ExactTailRestoresRawDoublesAtConvergence) {
  options_.tolerance = 1e-4;
  options_.value_precision.error_budget = 1e-3;
  options_.value_precision.exact_at_convergence = true;
  peers_[0]->IngestFeedback(F1Announcement());
  double change = 1.0;
  for (int round = 0; round < 2000 && change >= options_.tolerance; ++round) {
    change = peers_[0]->ComputeRound();
  }
  ASSERT_LT(change, options_.tolerance);
  // The converged round ratcheted the link to the exact rank: bundles ship
  // raw doubles (value format 0) from here on.
  EXPECT_EQ(BundleFromTo(*peers_[0], 1).value_bits, 0u);
}

TEST_F(PeerTest, RestoredPeerContinuesThePrecisionTrajectoryIdentically) {
  options_.value_precision.error_budget = 1e-3;
  peers_[0]->IngestFeedback(F1Announcement());
  for (int round = 0; round < 5; ++round) peers_[0]->ComputeRound();
  const Peer::Image image = peers_[0]->CaptureImage();

  Schema schema("p1");
  for (size_t a = 0; a < kAttrs; ++a) {
    ASSERT_TRUE(schema.AddAttribute(StrFormat("a%zu", a)).ok());
  }
  Peer restored(0, std::move(schema), &graph_, &options_);
  restored.RestoreImage(image);

  // The restored peer emits bitwise-identical bundles — same precision
  // tier, same quanta — and keeps stepping up in lockstep with the
  // original run.
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(peers_[0]->ComputeRound(), restored.ComputeRound());
    const BeliefMessage original = BundleFromTo(*peers_[0], 1);
    const BeliefMessage resumed = BundleFromTo(restored, 1);
    EXPECT_EQ(original.value_bits, resumed.value_bits) << "round " << round;
    ASSERT_EQ(original.entries.size(), resumed.entries.size());
    for (size_t i = 0; i < original.entries.size(); ++i) {
      EXPECT_EQ(original.entries[i].quant, resumed.entries[i].quant);
      EXPECT_EQ(original.entries[i].belief.correct,
                resumed.entries[i].belief.correct);
      EXPECT_EQ(original.entries[i].belief.incorrect,
                resumed.entries[i].belief.incorrect);
    }
  }
}

TEST_F(PeerTest, MixedPrecisionBundlesAbsorbAcrossTierChanges) {
  // p1 receives one coarse bundle and one fine bundle for the same factor
  // (a sender stepping up mid-session): both absorb cleanly, latest wins.
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[1]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();
  peers_[1]->ComputeRound();

  BeliefMessage coarse = BundleFromTo(*peers_[0], 1);
  coarse.QuantizeValues(7);
  ASSERT_TRUE(peers_[1]->AbsorbBeliefBundle(0, coarse).ok());
  const double after_coarse = peers_[1]->ComputeRound();

  BeliefMessage fine = BundleFromTo(*peers_[0], 1);
  fine.QuantizeValues(13);
  ASSERT_TRUE(peers_[1]->AbsorbBeliefBundle(0, fine).ok());
  (void)after_coarse;

  // A raw (format 0) bundle still interleaves with quantized ones.
  BeliefMessage raw = BundleFromTo(*peers_[0], 1);
  ASSERT_EQ(raw.value_bits, 0u);
  ASSERT_TRUE(peers_[1]->AbsorbBeliefBundle(0, raw).ok());
}

TEST_F(PeerTest, PiggybackUpdatesFilteredByEdge) {
  peers_[1]->IngestFeedback(F1Announcement());  // p2 owns m23 in f1
  peers_[1]->ComputeRound();
  EXPECT_EQ(peers_[1]->PiggybackUpdatesFor(edges_.m23).size(), 1u);
  EXPECT_TRUE(peers_[1]->PiggybackUpdatesFor(edges_.m24).empty());
}

TEST_F(PeerTest, RemoveMappingPurgesReplicas) {
  peers_[1]->IngestFeedback(F1Announcement());
  EXPECT_EQ(peers_[1]->replica_count(), 1u);
  peers_[1]->RemoveMapping(edges_.m23);
  EXPECT_EQ(peers_[1]->replica_count(), 0u);
  EXPECT_EQ(peers_[1]->mapping(edges_.m23), nullptr);
  EXPECT_FALSE(peers_[1]->HasEvidence(MappingVarKey{edges_.m23, 0}));
}

TEST_F(PeerTest, StartProbesCarryMappingImages) {
  const auto probes = peers_[1]->StartProbes();  // p2 owns m23 and m24
  ASSERT_EQ(probes.size(), 2u);
  for (const Outgoing& message : probes) {
    const auto& probe = std::get<ProbeMessage>(message.payload);
    EXPECT_EQ(probe.origin, 1u);
    EXPECT_EQ(probe.ttl, options_.probe_ttl - 1);
    ASSERT_EQ(probe.route.size(), 1u);
    ASSERT_EQ(probe.trail.size(), 1u);
    ASSERT_EQ(probe.trail[0].size(), kAttrs);
    // Identity mappings: every image equals the source attribute.
    for (AttributeId a = 0; a < kAttrs; ++a) {
      EXPECT_EQ(probe.trail[0][a], std::optional<AttributeId>(a));
    }
  }
}

TEST_F(PeerTest, HandleProbeForwardsWithDecrementedTtl) {
  ProbeMessage probe;
  probe.origin = 0;
  probe.ttl = 3;
  probe.route = {edges_.m12};
  probe.trail = {std::vector<std::optional<AttributeId>>(kAttrs, 1)};
  const auto actions = peers_[1]->HandleProbe(probe);
  // p2 forwards through m23 and m24 (origin p1 not revisited).
  ASSERT_EQ(actions.size(), 2u);
  for (const Outgoing& message : actions) {
    const auto& forwarded = std::get<ProbeMessage>(message.payload);
    EXPECT_EQ(forwarded.ttl, 2u);
    EXPECT_EQ(forwarded.route.size(), 2u);
    EXPECT_EQ(forwarded.trail.size(), 2u);
  }
}

TEST_F(PeerTest, HandleProbeStopsAtTtlZero) {
  ProbeMessage probe;
  probe.origin = 0;
  probe.ttl = 0;
  probe.route = {edges_.m12};
  probe.trail = {std::vector<std::optional<AttributeId>>(kAttrs, 0)};
  EXPECT_TRUE(peers_[1]->HandleProbe(probe).empty());
}

TEST_F(PeerTest, CycleAnnouncedOnlyByMinimumPeer) {
  // A probe from p2 (id 1) closing the 4-cycle back at p2: peer 1 is NOT
  // the minimum id on the cycle (p1 = 0 is), so it must stay silent.
  ProbeMessage probe;
  probe.origin = 1;
  probe.ttl = 2;
  probe.route = {edges_.m23, edges_.m34, edges_.m41, edges_.m12};
  probe.trail.assign(4, std::vector<std::optional<AttributeId>>(kAttrs, 0));
  for (AttributeId a = 0; a < kAttrs; ++a) probe.trail[3][a] = a;
  EXPECT_TRUE(peers_[1]->HandleProbe(probe).empty());

  // The same physical cycle closing at p1 (the minimum) is announced to
  // all four member owners.
  ProbeMessage canonical;
  canonical.origin = 0;
  canonical.ttl = 2;
  canonical.route = {edges_.m12, edges_.m23, edges_.m34, edges_.m41};
  canonical.trail.assign(4, std::vector<std::optional<AttributeId>>(kAttrs, 0));
  for (AttributeId a = 0; a < kAttrs; ++a) canonical.trail[3][a] = a;
  const auto actions = peers_[0]->HandleProbe(canonical);
  ASSERT_EQ(actions.size(), 4u);
  for (const Outgoing& message : actions) {
    EXPECT_TRUE(std::holds_alternative<FeedbackAnnouncement>(message.payload));
  }
}

TEST_F(PeerTest, BrokenChainYieldsNeutralFeedback) {
  // The probe's trail hits ⊥ at hop 2 for attribute 1.
  ProbeMessage probe;
  probe.origin = 0;
  probe.ttl = 2;
  probe.route = {edges_.m12, edges_.m23, edges_.m34, edges_.m41};
  probe.trail.assign(4, std::vector<std::optional<AttributeId>>(kAttrs, 0));
  for (AttributeId a = 0; a < kAttrs; ++a) {
    probe.trail[3][a] = a;  // cycle closes on the identity
  }
  probe.trail[1][1] = std::nullopt;  // ⊥ at hop 2 for attribute 1
  const auto actions = peers_[0]->HandleProbe(probe);
  ASSERT_FALSE(actions.empty());
  const auto& announcement =
      std::get<FeedbackAnnouncement>(actions[0].payload);
  ASSERT_EQ(announcement.feedback.size(), kAttrs);
  EXPECT_EQ(announcement.feedback[1].sign, FeedbackSign::kNeutral);
  EXPECT_EQ(announcement.feedback[0].sign, FeedbackSign::kPositive);
}

TEST_F(PeerTest, UpdatePriorsOnlyTouchesVariablesWithEvidence) {
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();
  peers_[0]->UpdatePriorsFromPosteriors();
  // Evidence variable moved off 0.5; attribute 1 (no evidence) unchanged.
  EXPECT_NE(peers_[0]->Prior(MappingVarKey{edges_.m12, 0}), 0.5);
  EXPECT_DOUBLE_EQ(peers_[0]->Prior(MappingVarKey{edges_.m12, 1}), 0.5);
}

TEST_F(PeerTest, SetPriorResetsEvidenceHistory) {
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();
  peers_[0]->UpdatePriorsFromPosteriors();
  peers_[0]->SetPrior(MappingVarKey{edges_.m12, 0}, 0.9);
  EXPECT_DOUBLE_EQ(peers_[0]->Prior(MappingVarKey{edges_.m12, 0}), 0.9);
}

TEST_F(PeerTest, ReplicaViewsExposeStoredFactors) {
  peers_[0]->IngestFeedback(F1Announcement());
  const auto views = peers_[0]->ReplicaViews();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].sign, FeedbackSign::kPositive);
  EXPECT_EQ(views[0].members.size(), 4u);
  EXPECT_DOUBLE_EQ(views[0].delta, 0.1);
  EXPECT_EQ(views[0].kind, Closure::Kind::kCycle);
}

TEST_F(PeerTest, FingerprintStableAcrossPeersAndDiscoveryOrder) {
  // Every member owner derives the identical FactorId for the same
  // announced closure — that is what routes remote µ-messages without
  // central coordination.
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[1]->IngestFeedback(F1Announcement());
  const auto views0 = peers_[0]->ReplicaViews();
  const auto views1 = peers_[1]->ReplicaViews();
  ASSERT_EQ(views0.size(), 1u);
  ASSERT_EQ(views1.size(), 1u);
  EXPECT_EQ(views0[0].id, views1[0].id);
  EXPECT_EQ(views0[0].root_attribute, 0u);

  // A peer that saw the closure's edge list in a different permutation
  // (e.g. announced from a different discovery round) still derives the
  // same fingerprint: the id hashes the canonicalized edge set.
  FeedbackAnnouncement rotated = F1Announcement();
  std::rotate(rotated.closure.edges.begin(),
              rotated.closure.edges.begin() + 2, rotated.closure.edges.end());
  EXPECT_EQ(FactorId::Make(rotated.closure, 0),
            FactorId::Make(F1Announcement().closure, 0));
  // Re-ingesting under the permuted edge order is recognized as the same
  // content (idempotent), not flagged as a collision.
  EXPECT_TRUE(peers_[0]->IngestFeedback(rotated).ok());
  EXPECT_EQ(peers_[0]->replica_count(), 1u);
}

TEST_F(PeerTest, ForcedFingerprintCollisionSurfacesStatus) {
  // Bind an id to the f1 closure through the explicit-id seam, then try
  // to bind *different* closure content to the same id — the ingest-time
  // collision check must reject it instead of cross-wiring messages.
  const FeedbackAnnouncement announcement = F1Announcement();
  const FactorId id = FactorId::Make(announcement.closure, 0);
  ASSERT_TRUE(peers_[0]
                  ->IngestFactor(id, announcement.closure,
                                 announcement.feedback[0], 0.1)
                  .ok());
  EXPECT_EQ(peers_[0]->replica_count(), 1u);

  Closure different = announcement.closure;
  different.edges = {edges_.m12, edges_.m24};  // not f1's edge set
  AttributeFeedback feedback = announcement.feedback[0];
  feedback.members = {MappingVarKey{edges_.m12, 0}, MappingVarKey{edges_.m24, 0}};
  const Status collision =
      peers_[0]->IngestFactor(id, different, feedback, 0.1);
  EXPECT_EQ(collision.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(collision.message().find("collision"), std::string::npos);
  EXPECT_EQ(peers_[0]->replica_count(), 1u);  // nothing was stored

  // Same id and closure but a permuted member sequence: position-based
  // addressing would cross-wire µ-messages, so this too must be rejected.
  AttributeFeedback permuted = announcement.feedback[0];
  std::swap(permuted.members[0], permuted.members[1]);
  EXPECT_EQ(peers_[0]
                ->IngestFactor(id, announcement.closure, permuted, 0.1)
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(peers_[0]->replica_count(), 1u);

  // Same id, same content: idempotent, still fine.
  EXPECT_TRUE(peers_[0]
                  ->IngestFactor(id, announcement.closure,
                                 announcement.feedback[0], 0.1)
                  .ok());
  EXPECT_EQ(peers_[0]->replica_count(), 1u);

  // Sign and ∆ are observations, not identity: a re-announcement with a
  // flipped sign is not a collision, and the first observation wins
  // (exactly the pre-fingerprint first-wins semantics).
  AttributeFeedback flipped = announcement.feedback[0];
  flipped.sign = FeedbackSign::kNegative;
  EXPECT_TRUE(
      peers_[0]->IngestFactor(id, announcement.closure, flipped, 0.4).ok());
  const auto views = peers_[0]->ReplicaViews();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].sign, FeedbackSign::kPositive);
  EXPECT_DOUBLE_EQ(views[0].delta, 0.1);
}

// --- Byzantine guard ---------------------------------------------------------

TEST_F(PeerTest, GuardRejectsMalformedMeasures) {
  options_.byzantine_guard.enabled = true;
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();
  const double before = peers_[0]->Posterior(MappingVarKey{edges_.m12, 0});
  const FactorId id = FactorId::Make(F1Announcement().closure, 0);

  // NaN, infinite and all-zero measures never reach the factor pool, but
  // they are honest-fallout shapes (a poisoned upstream product collapses
  // to {0,0} or overflows one hop later), so they are refused WITHOUT a
  // Status and WITHOUT feeding the sender's misbehavior score.
  BeliefMessage degenerate;
  degenerate.AddGroup(
      0, id,
      {BeliefEntry{3, Belief{std::numeric_limits<double>::quiet_NaN(), 1.0}},
       BeliefEntry{3, Belief{std::numeric_limits<double>::infinity(), 1.0}},
       BeliefEntry{3, Belief{0.0, 0.0}}});
  EXPECT_TRUE(peers_[0]->AbsorbBeliefBundle(3, degenerate).ok());
  EXPECT_EQ(peers_[0]->guard_rejected_entries(), 3u);
  {
    const auto views = peers_[0]->GuardViews();
    const auto sender = std::find_if(
        views.begin(), views.end(),
        [](const Peer::GuardLinkView& v) { return v.peer == 3; });
    ASSERT_NE(sender, views.end());
    EXPECT_EQ(sender->rejections, 3u);
    EXPECT_EQ(sender->score, 0.0);
  }

  // A negative measure cannot arise from honest arithmetic — it is a
  // protocol violation: refused with a Status AND scored.
  BeliefMessage negative;
  negative.AddGroup(0, id, {BeliefEntry{3, Belief{-0.5, 1.0}}});
  EXPECT_EQ(peers_[0]->AbsorbBeliefBundle(3, negative).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(peers_[0]->guard_rejected_entries(), 4u);
  const auto views = peers_[0]->GuardViews();
  const auto guilty = std::find_if(
      views.begin(), views.end(),
      [](const Peer::GuardLinkView& v) { return v.peer == 3; });
  ASSERT_NE(guilty, views.end());
  EXPECT_EQ(guilty->rejections, 4u);
  EXPECT_GT(guilty->score, 0.0);

  peers_[0]->ComputeRound();
  EXPECT_NEAR(peers_[0]->Posterior(MappingVarKey{edges_.m12, 0}), before,
              1e-12);
}

TEST_F(PeerTest, GuardEnforcesSlotOwnership) {
  options_.byzantine_guard.enabled = true;
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();
  const FactorId id = FactorId::Make(F1Announcement().closure, 0);

  // In f1, position i is owned by peer i. Peer 3 writing position 1
  // is a third-party overwrite: without this check an impersonator
  // could both poison the slot AND frame its honest owner for
  // equivocation (slot history is per-slot, not per-link).
  BeliefMessage forged;
  forged.AddGroup(0, id, {BeliefEntry{1, Belief{0.9, 0.1}}});
  EXPECT_EQ(peers_[0]->AbsorbBeliefBundle(3, forged).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(peers_[0]->guard_rejected_entries(), 1u);

  // Claiming the RECEIVER's own variable is equally rejected.
  BeliefMessage own;
  own.AddGroup(0, id, {BeliefEntry{0, Belief{0.9, 0.1}}});
  EXPECT_EQ(peers_[0]->AbsorbBeliefBundle(3, own).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(peers_[0]->guard_rejected_entries(), 2u);

  const auto views = peers_[0]->GuardViews();
  const auto guilty = std::find_if(
      views.begin(), views.end(),
      [](const Peer::GuardLinkView& v) { return v.peer == 3; });
  ASSERT_NE(guilty, views.end());
  EXPECT_EQ(guilty->rejections, 2u);
  EXPECT_GT(guilty->score, 0.0);

  // The same value from the slot's actual owner is admitted untouched.
  BeliefMessage honest;
  honest.AddGroup(0, id, {BeliefEntry{1, Belief{0.9, 0.1}}});
  EXPECT_TRUE(peers_[0]->AbsorbBeliefBundle(1, honest).ok());
  EXPECT_EQ(peers_[0]->guard_rejected_entries(), 2u);
}

TEST_F(PeerTest, GuardFlagsSameRoundEquivocationAndKeepsFirstValue) {
  options_.byzantine_guard.enabled = true;
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();
  const FactorId id = FactorId::Make(F1Announcement().closure, 0);

  BeliefMessage first;
  first.AddGroup(0, id, {BeliefEntry{1, Belief{0.2, 0.8}}});
  ASSERT_TRUE(peers_[0]->AbsorbBeliefBundle(1, first).ok());
  // An identical re-delivery (the retransmission layer's duplicate) is
  // NOT equivocation — only a conflicting same-round value is.
  ASSERT_TRUE(peers_[0]->AbsorbBeliefBundle(1, first).ok());
  EXPECT_EQ(peers_[0]->guard_rejected_entries(), 0u);

  BeliefMessage conflicting;
  conflicting.AddGroup(0, id, {BeliefEntry{1, Belief{0.8, 0.2}}});
  EXPECT_EQ(peers_[0]->AbsorbBeliefBundle(1, conflicting).code(),
            StatusCode::kFailedPrecondition);
  const auto views = peers_[0]->GuardViews();
  const auto guilty = std::find_if(
      views.begin(), views.end(),
      [](const Peer::GuardLinkView& v) { return v.peer == 1; });
  ASSERT_NE(guilty, views.end());
  EXPECT_EQ(guilty->equivocations, 1u);

  // First-value-wins: re-delivering the ORIGINAL value after the
  // conflicting one is still consistent with what the pool holds.
  ASSERT_TRUE(peers_[0]->AbsorbBeliefBundle(1, first).ok());
  EXPECT_GE(peers_[0]->ComputeRound(), 0.0);
}

TEST_F(PeerTest, GuardRejectsQuantInconsistentValues) {
  options_.byzantine_guard.enabled = true;
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();
  const FactorId id = FactorId::Make(F1Announcement().closure, 0);

  // A tier-consistent quantized bundle is admitted...
  BeliefMessage honest;
  honest.AddGroup(0, id, {BeliefEntry{3, Belief{0.3, 0.7}}});
  honest.QuantizeValues(10);
  ASSERT_TRUE(peers_[0]->AbsorbBeliefBundle(3, honest).ok());
  EXPECT_EQ(peers_[0]->guard_rejected_entries(), 0u);

  // ...but a belief that is not the exact realization of its declared
  // quantum is a lie about the wire encoding and is rejected.
  BeliefMessage tampered;
  tampered.AddGroup(0, id, {BeliefEntry{3, Belief{0.3, 0.7}}});
  tampered.QuantizeValues(10);
  tampered.entries[0].belief = Belief{0.31, 0.69};
  EXPECT_EQ(peers_[0]->AbsorbBeliefBundle(3, tampered).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(peers_[0]->guard_rejected_entries(), 1u);

  // A quantum outside the tier's representable range is equally invalid
  // (unless it is one of the ±inf sentinels).
  BeliefMessage out_of_tier;
  out_of_tier.AddGroup(0, id, {BeliefEntry{3, Belief{0.3, 0.7}}});
  out_of_tier.QuantizeValues(10);
  out_of_tier.entries[0].quant = QuantBound(10) + 1;
  EXPECT_EQ(peers_[0]->AbsorbBeliefBundle(3, out_of_tier).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(peers_[0]->guard_rejected_entries(), 2u);
}

TEST_F(PeerTest, GuardDemotesOscillatingNeighborStickily) {
  options_.byzantine_guard.enabled = true;
  // One full flip streak should cross the soft threshold by itself.
  options_.byzantine_guard.oscillation_weight =
      options_.byzantine_guard.soft_threshold;
  peers_[0]->IngestFeedback(F1Announcement());
  peers_[0]->ComputeRound();
  const FactorId id = FactorId::Make(F1Announcement().closure, 0);

  // Alternate a strong pro / strong con value every round: each round
  // reverses the slot's direction, and after `oscillation_bound`
  // reversals the streak scores one oscillation event.
  uint32_t demoted_at = 0;
  for (uint32_t round = 0; round < 32; ++round) {
    BeliefMessage swing;
    const Belief value =
        (round % 2 == 0) ? Belief{0.99, 0.01} : Belief{0.01, 0.99};
    swing.AddGroup(0, id, {BeliefEntry{3, value}});
    ASSERT_TRUE(peers_[0]->AbsorbBeliefBundle(3, swing).ok());
    peers_[0]->ComputeRound();
    if (peers_[0]->guard_demoted_links() > 0) {
      demoted_at = round;
      break;
    }
  }
  EXPECT_GT(demoted_at, 0u);
  const auto views = peers_[0]->GuardViews();
  const auto guilty = std::find_if(
      views.begin(), views.end(),
      [](const Peer::GuardLinkView& v) { return v.peer == 3; });
  ASSERT_NE(guilty, views.end());
  EXPECT_GE(guilty->oscillations, 1u);
  EXPECT_EQ(guilty->demote_level, 1u);

  // Demotion is sticky: honest rounds afterwards do not parole the link
  // even as the score decays below the threshold.
  for (uint32_t round = 0; round < 40; ++round) {
    peers_[0]->ComputeRound();
  }
  EXPECT_EQ(peers_[0]->guard_demoted_links(), 1u);
}

TEST_F(PeerTest, GuardedCleanAbsorbMatchesUnguardedBitwise) {
  // Clone peer 0's exact state into a twin that runs with the guard on;
  // feed both the identical honest traffic. The guard must be a pure
  // observer on clean input: posteriors stay bitwise-identical.
  peers_[0]->IngestFeedback(F1Announcement());
  const Peer::Image image = peers_[0]->CaptureImage();
  EngineOptions guarded_options = options_;
  guarded_options.byzantine_guard.enabled = true;
  Schema schema("p1");
  for (size_t a = 0; a < kAttrs; ++a) {
    ASSERT_TRUE(schema.AddAttribute(StrFormat("a%zu", a)).ok());
  }
  Peer guarded(0, std::move(schema), &graph_, &guarded_options);
  guarded.RestoreImage(image);

  const FactorId id = FactorId::Make(F1Announcement().closure, 0);
  for (uint32_t round = 0; round < 12; ++round) {
    // Honest traffic: each owner sends its own position's value.
    BeliefMessage from1;
    const double pro = 0.3 + 0.04 * round;
    from1.AddGroup(0, id, {BeliefEntry{1, Belief{pro, 1.0 - pro}}});
    BeliefMessage from2;
    from2.AddGroup(0, id, {BeliefEntry{2, Belief{0.6, 0.4}}});
    ASSERT_TRUE(peers_[0]->AbsorbBeliefBundle(1, from1).ok());
    ASSERT_TRUE(peers_[0]->AbsorbBeliefBundle(2, from2).ok());
    ASSERT_TRUE(guarded.AbsorbBeliefBundle(1, from1).ok());
    ASSERT_TRUE(guarded.AbsorbBeliefBundle(2, from2).ok());
    EXPECT_EQ(peers_[0]->ComputeRound(), guarded.ComputeRound());
  }
  EXPECT_EQ(peers_[0]->Posterior(MappingVarKey{edges_.m12, 0}),
            guarded.Posterior(MappingVarKey{edges_.m12, 0}));
  EXPECT_EQ(guarded.guard_rejected_entries(), 0u);
  EXPECT_EQ(guarded.guard_demoted_links(), 0u);
}

TEST_F(PeerTest, ProcessQueryDeduplicatesByQueryId) {
  peers_[0]->store().Insert(1, {{0, "value"}});
  QueryMessage message;
  message.query_id = 7;
  message.ttl = 0;
  message.query.AddProjection(0);
  const QueryActions first = peers_[0]->ProcessQuery(message, false);
  EXPECT_EQ(first.rows.size(), 1u);
  const QueryActions second = peers_[0]->ProcessQuery(message, false);
  EXPECT_TRUE(second.rows.empty());
  EXPECT_TRUE(peers_[0]->SawQuery(7));
}

}  // namespace
}  // namespace pdms
